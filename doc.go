// Package repro is a from-scratch Go reproduction of "Parallel Program
// Archetypes" by Berna L. Massingill and K. Mani Chandy (IPPS 1999).
//
// A parallel program archetype combines a computational pattern with a
// parallelization strategy to produce a pattern of dataflow and
// communication. This repository implements the paper's two archetypes —
// one-deep divide and conquer (§2) and mesh-spectral (§3) — together with
// every substrate they need (an SPMD runtime with virtual-time machine
// models standing in for the paper's Intel Delta and IBM SP, a collective
// communication library, distributed grids) and every application the
// paper evaluates (mergesort, quicksort, skyline, convex hull, closest
// pair, 2D FFT, Poisson solver, compressible-flow CFD, 3D electromagnetic
// FDTD, a spectral swirling-flow code, and an airshed smog model).
//
// The public entry point is package arch: typed Program[In, Out] values
// (wrapping both version-1 parfor programs and version-2 SPMD programs),
// a context-aware option-based runner (arch.Run with WithProcs,
// WithMachine, WithBackend, WithMode, WithSize), and an application
// registry every app package self-registers into (populate it with
// `import _ "repro/arch/apps"`). Messaging is typed and self-metering:
// payload sizes are priced through spmd.BytesOf rather than hand-counted
// at call sites.
//
// Programs run on pluggable execution backends: the virtual-time
// simulator prices every run on a machine model's clocks (deterministic,
// paper-shaped curves); the real shared-memory backend runs the same
// program text as goroutines over native channels at hardware speed with
// wall-clock metering; and the distributed backend routes the same
// program's messages across worker OS processes over TCP (self-spawned
// localhost workers by default, attachable cmd/archworker processes
// otherwise); and the elastic fault-tolerant backend runs ranks as
// tasks on a work queue leased to whatever workers are alive, with
// delivery-log checkpoint/replay so a worker killed mid-run triggers
// re-execution of its ranks instead of failing the world — heartbeats
// declare dead workers, reconnects back off with jitter, and workers
// joining mid-run pull queued rank tasks. Computational results and
// message/byte meters are identical on all four (including elastic runs
// that survived a kill). Experiment matrices (program × machine model
// × process count × backend) are swept concurrently by a worker-pool
// scheduler; sweeps and runs are cancellable mid-flight through their
// context.
//
// The registry can also be served: cmd/archserve is a long-lived HTTP
// daemon (package internal/serve) accepting serialized run specs
// (arch.Spec), with bounded admission over the sched worker pool,
// singleflight coalescing of identical in-flight requests, and a
// content-addressed persistent result cache (internal/rescache, keyed
// by SHA-256 of the canonical spec) that makes repeated requests
// near-free across process restarts. archdemo -remote is the matching
// client.
//
// Every backend is instrumented with a flight recorder (internal/obs):
// a run whose context carries an obs.Collector records typed events —
// sends/recvs with byte counts, barriers, dist batching, elastic
// recovery (leases, declared-dead, replay, suppressed resends),
// scheduler activity, injected faults — into per-rank lock-free ring
// buffers, exportable as Chrome trace-event JSON (archdemo -trace,
// archbench -trace, open in ui.perfetto.dev) and summarized on
// arch.Report. Without a collector the recorder is nil and recording
// is free; CI gates the disabled-path overhead against the committed
// benchmark baselines. archserve additionally exposes a Prometheus
// text endpoint (GET /metrics) and serves per-job traces for
// trace:true submissions (GET /runs/{id}/trace).
//
// Beyond batch runs, internal/stream adds the streaming archetype:
// elements flow through a typed stage graph with bounded per-stage
// buffers, credit-based backpressure (a stalled sink provably stalls
// the source), element batching, and order-restoring farm stages.
// Streaming apps are a first-class registry kind (arch.App.Kind,
// arch.RunAppStream/RunSpecStream with a windowed StreamObserver);
// archserve runs them as long-lived jobs with SSE progress, excluded
// from the result cache.
//
// Layout:
//
//	arch                  public facade: typed programs, option-based runs,
//	                      application registry, machine/backend resolvers
//	arch/apps             blank-import package registering every application
//	internal/core         the archetype method: ParFor (version-1 programs),
//	                      SPMD experiments, speedup curves, cost metering
//	internal/machine      LogGP-style machine models (Delta, SP, paging)
//	internal/backend      pluggable execution backends: the Transport/Runner
//	                      seam, the virtual-time simulator, and the real
//	                      shared-memory backend (wall-clock metering)
//	internal/backend/dist distributed backend: worker OS processes over TCP
//	                      (framing, rank handshake, crash fail-fast)
//	internal/elastic      fault-tolerant backend: rank tasks on a work
//	                      queue, checkpoint/replay, heartbeats, mid-run join
//	internal/faultinject  fault-injection rules (kill/drop/delay at a
//	                      point/rank/epoch), hooked by dist and elastic
//	internal/backoff      exponential backoff with jitter for dials and
//	                      worker reconnects
//	internal/obs          flight recorder: per-rank event rings behind a
//	                      context-carried collector seam (nil = free),
//	                      Chrome trace export, Prometheus text registry
//	internal/sched        concurrent sweep scheduler: bounded worker pool,
//	                      deduplicating result cache (LRU-bounded), string-
//	                      keyed Flight singleflight, streamed curves
//	internal/serve        the archetype service: HTTP/JSON submissions, SSE
//	                      progress, admission control, result deduplication
//	internal/rescache     content-addressed persistent result cache
//	                      (canonical spec -> SHA-256 -> atomic JSON blob)
//	internal/stream       streaming archetype runtime: typed stage graphs,
//	                      batching, credit backpressure, order-restoring
//	                      farm stages, windowed progress
//	internal/streamfft    streaming app: FFT frames through row/column farms
//	internal/streamhist   streaming app: windowed histogram aggregation
//	internal/spmd         SPMD process runtime over any backend; typed,
//	                      self-metering messaging (SendT, Chan, BytesOf)
//	internal/collective   broadcast/gather/scatter/all-to-all/reduce/barrier
//	internal/onedeep      one-deep divide-and-conquer archetype + the
//	                      traditional recursive baseline
//	internal/meshspectral distributed 2D/3D grids: ghost exchange,
//	                      redistribution, row/column ops, globals, grid I/O
//	internal/<app>        the applications listed above, each registering
//	                      itself with the arch facade
//	internal/figures      regenerates every evaluation figure of the paper
//	internal/pipeline     archetype composition: task-parallel pipeline of
//	                      data-parallel stages over process groups
//	internal/bnb          the nondeterministic branch-and-bound archetype
//	internal/perfmodel    closed-form performance models, simulator-validated
//	cmd/archbench         CLI for the figures
//	cmd/archdemo          registry-driven CLI running any application,
//	                      locally or against archserve (-remote)
//	cmd/archserve         the archetype service daemon
//	cmd/archworker        standalone worker (dist attach/join, elastic join)
//	examples/             twelve runnable walkthroughs; quickstart, sorting,
//	                      and poisson go through the arch facade
//
// The benchmarks in bench_test.go regenerate one figure each; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// curves.
package repro
