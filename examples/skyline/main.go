// Skyline: the §2.6.1 application. Computes the skyline of a random
// collection of buildings with the one-deep archetype, verifies it
// against the sequential divide and conquer, and renders it as ASCII art.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/skyline"
	"repro/internal/spmd"
)

func main() {
	const nBuildings = 400
	const procs = 8
	bs := skyline.RandomBuildings(nBuildings, 11, 1000)

	want := skyline.Compute(core.Nop, bs)

	spec := skyline.Spec(onedeep.Centralized)
	blocks := make([][]skyline.Building, procs)
	for i := range blocks {
		blocks[i] = bs[i*len(bs)/procs : (i+1)*len(bs)/procs]
	}
	outs := make([]skyline.Skyline, procs)
	res, err := core.Simulate(procs, machine.IntelDelta(), func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	got := skyline.Assemble(outs)
	if !skyline.Equal(got, want) {
		fmt.Fprintln(os.Stderr, "one-deep skyline differs from sequential!")
		os.Exit(1)
	}
	fmt.Printf("skyline of %d buildings: %d critical points, one-deep == sequential\n",
		nBuildings, len(got))
	fmt.Printf("simulated time on %d procs: %.4fs (%d msgs)\n\n", procs, res.Makespan, res.Msgs)

	render(got, 72, 14)
}

// render draws the skyline as ASCII art.
func render(s skyline.Skyline, width, height int) {
	if len(s) == 0 {
		return
	}
	x0 := s[0].X
	x1 := s[len(s)-1].X
	maxH := 0.0
	for _, p := range s {
		if p.H > maxH {
			maxH = p.H
		}
	}
	rows := make([][]byte, height)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(" ", width))
	}
	for c := 0; c < width; c++ {
		x := x0 + (x1-x0)*float64(c)/float64(width-1)
		h := skyline.HeightAt(s, x)
		top := int(h / maxH * float64(height-1))
		for r := 0; r <= top; r++ {
			rows[height-1-r][c] = '#'
		}
	}
	for _, row := range rows {
		fmt.Println(string(row))
	}
	fmt.Println(strings.Repeat("-", width))
}
