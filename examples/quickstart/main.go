// Quickstart: develop a parallel program with the one-deep
// divide-and-conquer archetype, following the paper's method end to end —
// version 1 (parfor, debuggable sequentially), version 2 (SPMD
// message-passing), and a speedup measurement on a simulated Intel Delta
// — entirely through the public arch facade: typed Programs, option-based
// runs, and a Report instead of hand-wired worlds.
package main

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/arch"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
)

func main() {
	const n = 1 << 18
	const procs = 16
	data := sortapp.RandomInts(n, 42)

	// Step 1-2: the sequential algorithm is mergesort; the archetype is
	// one-deep divide and conquer with a degenerate split (§2.5).
	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	blocks := sortapp.BlockDistribute(data, procs)

	// Step 3: the initial archetype-based version (Figure 4) as a typed
	// version-1 Program: the same text runs sequentially for debugging
	// (WithMode(Sequential)) and concurrently for confidence, with
	// identical results.
	v1 := arch.ParFor(func(mode arch.Mode, blocks [][]int32) [][]int32 {
		return onedeep.RunV1(mode, spec, blocks)
	})
	ctx := context.Background()
	v1Seq, _, err := arch.Run(ctx, v1, blocks, arch.WithMode(arch.Sequential))
	check(err)
	v1Con, _, err := arch.Run(ctx, v1, blocks, arch.WithMode(arch.Concurrent))
	check(err)
	if !reflect.DeepEqual(v1Seq, v1Con) {
		fmt.Fprintln(os.Stderr, "version 1 is not deterministic!")
		os.Exit(1)
	}
	fmt.Printf("version 1: sequential and concurrent runs identical (%d elements)\n", n)

	// Step 4: the SPMD version (Figure 5) as a typed version-2 Program on
	// a simulated distributed-memory machine. The combine stage collects
	// every rank's sorted block.
	model := machine.IntelDelta()
	v2 := arch.SPMD(
		func(p *arch.Proc, blocks [][]int32) []int32 {
			return onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		},
		func(parts [][]int32) [][]int32 { return parts })
	outs, rep, err := arch.Run(ctx, v2, blocks,
		arch.WithProcs(procs), arch.WithMachine(model))
	check(err)
	if !reflect.DeepEqual(outs, v1Seq) {
		fmt.Fprintln(os.Stderr, "SPMD version differs from version 1!")
		os.Exit(1)
	}
	fmt.Println("version 2 (SPMD): identical results to version 1")

	// Speedup the way the paper's figures define it, from the Report.
	seq := core.NewTally(model)
	sortapp.MergeSort(seq, data)
	fmt.Printf("simulated %s: T_seq = %.3fs, T_%d = %.3fs, speedup = %.1fx (%d msgs, %.1f MB)\n",
		model.Name, seq.Seconds, procs, rep.Makespan, seq.Seconds/rep.Makespan,
		rep.Msgs, float64(rep.Bytes)/1e6)

	// Where does the time go? The archetype's phase anatomy (Figure 2),
	// measured with a phase timer: local solve dominates, the merge
	// exchange is the parallel overhead.
	fmt.Println("\nphase breakdown:")
	phases := arch.SPMDRoot(func(p *arch.Proc, blocks [][]int32) string {
		pt := core.NewPhaseTimer(p)
		sorted := sortapp.MergeSort(p, blocks[p.Rank()])
		pt.Mark("local solve")
		onedeep.RunSPMD(p, spec, sorted) // resort is cheap; exchange dominates
		pt.Mark("merge exchange")
		if p.Rank() != 0 {
			return ""
		}
		var sb strings.Builder
		if err := pt.WriteBreakdown(&sb); err != nil {
			return ""
		}
		return sb.String()
	})
	breakdown, _, err := arch.Run(ctx, phases, blocks,
		arch.WithProcs(procs), arch.WithMachine(model))
	check(err)
	fmt.Print(breakdown)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
