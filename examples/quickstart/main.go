// Quickstart: develop a parallel program with the one-deep
// divide-and-conquer archetype, following the paper's method end to end —
// version 1 (parfor, debuggable sequentially), version 2 (SPMD
// message-passing), and a speedup measurement on a simulated Intel Delta.
package main

import (
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

func main() {
	const n = 1 << 18
	const procs = 16
	data := sortapp.RandomInts(n, 42)

	// Step 1-2: the sequential algorithm is mergesort; the archetype is
	// one-deep divide and conquer with a degenerate split (§2.5).
	spec := sortapp.OneDeepMergesort(onedeep.Centralized)

	// Step 3: the initial archetype-based version (Figure 4), executed
	// sequentially for debugging and concurrently for confidence.
	blocks := sortapp.BlockDistribute(data, procs)
	v1Seq := onedeep.RunV1(core.Sequential, spec, blocks)
	v1Con := onedeep.RunV1(core.Concurrent, spec, blocks)
	if !reflect.DeepEqual(v1Seq, v1Con) {
		fmt.Fprintln(os.Stderr, "version 1 is not deterministic!")
		os.Exit(1)
	}
	fmt.Printf("version 1: sequential and concurrent runs identical (%d elements)\n", n)

	// Step 4: the SPMD version (Figure 5) on a simulated
	// distributed-memory machine.
	model := machine.IntelDelta()
	outs := make([][]int32, procs)
	res, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !reflect.DeepEqual(outs, v1Seq) {
		fmt.Fprintln(os.Stderr, "SPMD version differs from version 1!")
		os.Exit(1)
	}
	fmt.Println("version 2 (SPMD): identical results to version 1")

	// Speedup the way the paper's figures define it.
	seq := core.NewTally(model)
	sortapp.MergeSort(seq, data)
	fmt.Printf("simulated %s: T_seq = %.3fs, T_%d = %.3fs, speedup = %.1fx (%d msgs, %.1f MB)\n",
		model.Name, seq.Seconds, procs, res.Makespan, seq.Seconds/res.Makespan,
		res.Msgs, float64(res.Bytes)/1e6)

	// Where does the time go? The archetype's phase anatomy (Figure 2),
	// measured with a phase timer: local solve dominates, the merge
	// exchange is the parallel overhead.
	fmt.Println("\nphase breakdown:")
	var breakdown string
	if _, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		pt := core.NewPhaseTimer(p)
		sorted := sortapp.MergeSort(p, blocks[p.Rank()])
		pt.Mark("local solve")
		onedeep.RunSPMD(p, spec, sorted) // resort is cheap; exchange dominates
		pt.Mark("merge exchange")
		if p.Rank() == 0 {
			var sb strings.Builder
			if err := pt.WriteBreakdown(&sb); err == nil {
				breakdown = sb.String()
			}
		}
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(breakdown)
}
