// Sorting: the paper's §2 applications side by side — one-deep mergesort,
// one-deep quicksort (non-trivial split, degenerate merge), and the
// traditional recursive parallelization (Figure 1) — with simulated
// speedups on the Intel Delta model (a compact Figure 6). Each algorithm
// is an arch.Program run through the facade at every process count.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/arch"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
)

// oneDeep wraps a one-deep sorting spec as a Program over the full input:
// each rank takes its block of the per-run distribution and the combine
// stage verifies global sortedness.
func oneDeep(spec *onedeep.Spec[[]int32, []int32, []int32, []int32]) arch.Program[[]int32, bool] {
	return arch.SPMD(
		func(p *arch.Proc, data []int32) []int32 {
			blocks := sortapp.BlockDistribute(data, p.N())
			return onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		},
		sortapp.IsGloballySorted)
}

// traditional wraps the paper's Figure 1 recursive tree parallelization.
func traditional() arch.Program[[]int32, bool] {
	rec := sortapp.TraditionalMergesort(32)
	return arch.SPMDRoot(func(p *arch.Proc, data []int32) bool {
		out := rec.RunSPMD(p, data)
		return p.Rank() != 0 || sortapp.IsSorted(out)
	})
}

func main() {
	const n = 1 << 19
	data := sortapp.RandomInts(n, 7)
	model := machine.IntelDelta()
	procs := []int{1, 4, 16, 64}
	ctx := context.Background()

	seq := core.NewTally(model)
	sortapp.MergeSort(seq, data)
	fmt.Printf("sorting %d int32; sequential mergesort on %s: %.2fs simulated\n\n",
		n, model.Name, seq.Seconds)

	type alg struct {
		name string
		prog arch.Program[[]int32, bool]
	}
	algs := []alg{
		{"one-deep mergesort", oneDeep(sortapp.OneDeepMergesort(onedeep.Centralized))},
		{"one-deep quicksort", oneDeep(sortapp.OneDeepQuicksort(onedeep.Centralized))},
		{"traditional mergesort", traditional()},
	}

	fmt.Printf("%8s", "procs")
	for _, a := range algs {
		fmt.Printf(" %24s", a.name)
	}
	fmt.Println()
	for _, np := range procs {
		fmt.Printf("%8d", np)
		for _, a := range algs {
			sorted, rep, err := arch.Run(ctx, a.prog, data,
				arch.WithProcs(np), arch.WithMachine(model))
			if err == nil && !sorted {
				err = fmt.Errorf("%s output unsorted", a.name)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf(" %17.2fx (%3.0f%%)", seq.Seconds/rep.Makespan,
				100*seq.Seconds/rep.Makespan/float64(np))
		}
		fmt.Println()
	}
	fmt.Println("\n(percentages are parallel efficiency; the one-deep versions stay")
	fmt.Println("efficient while the traditional tree saturates — the paper's Figure 6)")
}
