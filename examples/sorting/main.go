// Sorting: the paper's §2 applications side by side — one-deep mergesort,
// one-deep quicksort (non-trivial split, degenerate merge), and the
// traditional recursive parallelization (Figure 1) — with simulated
// speedups on the Intel Delta model (a compact Figure 6).
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

func main() {
	const n = 1 << 19
	data := sortapp.RandomInts(n, 7)
	model := machine.IntelDelta()
	procs := []int{1, 4, 16, 64}

	seq := core.NewTally(model)
	sortapp.MergeSort(seq, data)
	fmt.Printf("sorting %d int32; sequential mergesort on %s: %.2fs simulated\n\n",
		n, model.Name, seq.Seconds)

	type alg struct {
		name string
		run  func(np int) (*spmd.Result, error)
	}
	algs := []alg{
		{"one-deep mergesort", func(np int) (*spmd.Result, error) {
			spec := sortapp.OneDeepMergesort(onedeep.Centralized)
			blocks := sortapp.BlockDistribute(data, np)
			outs := make([][]int32, np)
			res, err := core.Simulate(np, model, func(p *spmd.Proc) {
				outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
			})
			if err == nil && !sortapp.IsGloballySorted(outs) {
				return nil, fmt.Errorf("one-deep mergesort output unsorted")
			}
			return res, err
		}},
		{"one-deep quicksort", func(np int) (*spmd.Result, error) {
			spec := sortapp.OneDeepQuicksort(onedeep.Centralized)
			blocks := sortapp.BlockDistribute(data, np)
			outs := make([][]int32, np)
			res, err := core.Simulate(np, model, func(p *spmd.Proc) {
				outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
			})
			if err == nil && !sortapp.IsGloballySorted(outs) {
				return nil, fmt.Errorf("one-deep quicksort output unsorted")
			}
			return res, err
		}},
		{"traditional mergesort", func(np int) (*spmd.Result, error) {
			rec := sortapp.TraditionalMergesort(32)
			return core.Simulate(np, model, func(p *spmd.Proc) {
				out := rec.RunSPMD(p, data)
				if p.Rank() == 0 && !sortapp.IsSorted(out) {
					panic("traditional output unsorted")
				}
			})
		}},
	}

	fmt.Printf("%8s", "procs")
	for _, a := range algs {
		fmt.Printf(" %24s", a.name)
	}
	fmt.Println()
	for _, np := range procs {
		fmt.Printf("%8d", np)
		for _, a := range algs {
			res, err := a.run(np)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf(" %17.2fx (%3.0f%%)", seq.Seconds/res.Makespan,
				100*seq.Seconds/res.Makespan/float64(np))
		}
		fmt.Println()
	}
	fmt.Println("\n(percentages are parallel efficiency; the one-deep versions stay")
	fmt.Println("efficient while the traditional tree saturates — the paper's Figure 6)")
}
