// CFD: the §3.7.1 application. Runs the Mach-1.5 shock / sinusoidal
// interface problem on the distributed mesh archetype and writes density
// and vorticity images (the paper's Figures 19-20).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/array"
	"repro/internal/cfd"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func main() {
	dir := flag.String("dir", ".", "output directory for PGM images")
	steps := flag.Int("steps", 300, "time steps")
	size := flag.Int("size", 192, "grid points along x (y = x/2)")
	flag.Parse()

	nx, ny := *size, *size/2
	pm := cfd.DefaultParams(nx, ny)
	const procs = 4

	var snap *array.Dense2D[cfd.Cell]
	var simTime float64
	res, err := core.Simulate(procs, machine.IntelDelta(), func(p *spmd.Proc) {
		s := cfd.NewSPMD(p, pm, meshspectral.Blocks(2, 2))
		t := s.Run(*steps)
		full := meshspectral.GatherGrid(s.U, 0)
		if p.Rank() == 0 {
			snap, simTime = full, t
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("shock/interface on %dx%d grid, %d steps, t = %.4f\n", nx, ny, *steps, simTime)
	fmt.Printf("simulated machine time on %d procs: %.2fs (%d msgs)\n", procs, res.Makespan, res.Msgs)
	fmt.Printf("total mass (grows with post-shock inflow): %.4f\n", cfd.TotalMass(snap))

	for name, field := range map[string]*array.Dense2D[float64]{
		"cfd_density.pgm":   cfd.Density(snap).Transpose(),
		"cfd_vorticity.pgm": cfd.Vorticity(snap).Transpose(),
	} {
		path := filepath.Join(*dir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := meshspectral.WritePGM(field, f, 0, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
}
