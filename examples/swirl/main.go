// Swirl: the §3.7.3 spectral application. Spins up an axisymmetric
// swirling flow under a stirring force, prints the kinetic-energy trace,
// and writes the azimuthal-velocity image (the paper's Figure 21).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
	"repro/internal/swirl"
)

func main() {
	dir := flag.String("dir", ".", "output directory for the PGM image")
	flag.Parse()

	const nr, nz = 129, 128
	const steps = 150
	const procs = 8
	pm := swirl.DefaultParams(nr, nz)

	var field *array.Dense2D[float64]
	var energies []float64
	res, err := core.Simulate(procs, machine.IBMSP(), func(p *spmd.Proc) {
		s := swirl.NewSPMD(p, pm)
		for i := 0; i < steps; i++ {
			s.Step()
			if (i+1)%30 == 0 {
				full := meshspectral.GatherGrid(s.U, 0)
				if p.Rank() == 0 {
					energies = append(energies, swirl.KineticEnergy(full))
					if i+1 == steps {
						field = swirl.AzimuthalVelocity(full)
					}
				}
			}
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("swirling flow %dx%d, nu=%g, dt=%.2e, %d steps on %d procs\n",
		nr, nz, pm.Nu, pm.Dt, steps, procs)
	fmt.Printf("%8s %14s\n", "step", "kinetic energy")
	for i, e := range energies {
		fmt.Printf("%8d %14.6f\n", (i+1)*30, e)
	}
	fmt.Printf("simulated machine time: %.3fs (%d msgs — two redistributions per step)\n",
		res.Makespan, res.Msgs)

	path := filepath.Join(*dir, "swirl_utheta.pgm")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := meshspectral.WritePGM(field, f, 0, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (azimuthal velocity, r vertical, z horizontal)\n", path)
}
