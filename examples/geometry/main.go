// Geometry: the other one-deep problems §2.6 names — convex hull and
// closest pair of points — solved with the archetype's communication
// library and verified against sequential oracles.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/closest"
	"repro/internal/core"
	"repro/internal/hull"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func main() {
	const n = 20000
	const procs = 8
	model := machine.IBMSP()

	// --- Convex hull: degenerate split, local hulls, replicated global
	// hull from the all-gathered union.
	pts := hull.RandomPoints(n, 3, 1000)
	want := hull.MonotoneChain(core.Nop, pts)
	blocks := make([][]hull.Pt, procs)
	for i := range blocks {
		blocks[i] = pts[i*n/procs : (i+1)*n/procs]
	}
	outs := make([]hull.Pts, procs)
	res, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		outs[p.Rank()] = hull.OneDeepSPMD(p, blocks[p.Rank()])
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var got hull.Pts
	for _, o := range outs {
		got = append(got, o...)
	}
	match := len(got) == len(want)
	for i := range got {
		if !match || got[i] != want[i] {
			match = false
			break
		}
	}
	if !match {
		fmt.Fprintln(os.Stderr, "one-deep hull differs from sequential!")
		os.Exit(1)
	}
	fmt.Printf("convex hull of %d points: %d vertices, one-deep == sequential (%.4fs simulated on %d procs)\n",
		n, len(got), res.Makespan, procs)

	// --- Closest pair: non-trivial split into x-strips, local divide and
	// conquer, δ-band exchange across splitters.
	cpts := closest.RandomPoints(n, 4, 1000)
	seqPair := closest.DivideAndConquer(core.Nop, cpts)
	cblocks := make([][]closest.Pt, procs)
	for i := range cblocks {
		cblocks[i] = cpts[i*n/procs : (i+1)*n/procs]
	}
	pairs := make([]closest.Pair, procs)
	res, err = core.Simulate(procs, model, func(p *spmd.Proc) {
		pairs[p.Rank()] = closest.OneDeepSPMD(p, cblocks[p.Rank()])
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if pairs[0].Dist2 != seqPair.Dist2 {
		fmt.Fprintln(os.Stderr, "one-deep closest pair differs from sequential!")
		os.Exit(1)
	}
	fmt.Printf("closest pair of %d points: distance %.5f between (%.1f,%.1f) and (%.1f,%.1f)\n",
		n, math.Sqrt(pairs[0].Dist2), pairs[0].A.X, pairs[0].A.Y, pairs[0].B.X, pairs[0].B.Y)
	fmt.Printf("one-deep == sequential D&C == every rank agrees (%.4fs simulated on %d procs)\n",
		res.Makespan, procs)
}
