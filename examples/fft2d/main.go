// FFT2D: the §3.5 application (Figures 10-11). Transforms a 2D grid with
// the mesh-spectral archetype — row FFTs, rows→columns redistribution,
// column FFTs — verifies a forward+inverse roundtrip, and shows why the
// paper's Figure 12 speedups disappoint (communication-heavy transpose).
package main

import (
	"fmt"
	"math"
	"math/cmplx"
	"os"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func main() {
	const n = 256
	const procs = 8
	model := machine.IBMSP()

	src := array.New2D[complex128](n, n)
	src.Fill(func(i, j int) complex128 {
		return complex(math.Sin(0.3*float64(i))*math.Cos(0.2*float64(j)), 0)
	})

	var roundtripErr float64
	var fwd *array.Dense2D[complex128]
	res, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		var full *array.Dense2D[complex128]
		if p.Rank() == 0 {
			full = src
		}
		g := meshspectral.ScatterGrid(p, full, 0, meshspectral.Rows(procs), 0)
		f := fft.TwoDSPMD(p, g, false)
		spectrum := meshspectral.GatherGrid(f, 0)
		inv := fft.TwoDSPMD(p, f, true)
		back := meshspectral.GatherGrid(inv, 0)
		if p.Rank() == 0 {
			fwd = spectrum
			for k := range back.Data {
				roundtripErr = math.Max(roundtripErr, cmplx.Abs(back.Data[k]-src.Data[k]))
			}
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("2D FFT %dx%d on %d simulated procs: roundtrip max error %.2e\n", n, n, procs, roundtripErr)
	if roundtripErr > 1e-9 {
		fmt.Fprintln(os.Stderr, "roundtrip error too large!")
		os.Exit(1)
	}

	// Where does the energy land? The input is a product of two near-pure
	// tones, so a handful of bins dominate.
	peak := 0.0
	var pi, pj int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a := cmplx.Abs(fwd.At(i, j)); a > peak {
				peak, pi, pj = a, i, j
			}
		}
	}
	fmt.Printf("dominant spectral bin: (%d, %d) with |X| = %.1f\n", pi, pj, peak)

	// Cost anatomy: compare against the sequential transform.
	seq := core.NewTally(model)
	work := src.Clone()
	fft.TwoDSeq(seq, work, false)
	fft.TwoDSeq(seq, work, true)
	fmt.Printf("simulated: T_seq = %.4fs, T_%d = %.4fs, speedup %.1fx (%d msgs, %.1f MB moved)\n",
		seq.Seconds, procs, res.Makespan, seq.Seconds/res.Makespan, res.Msgs, float64(res.Bytes)/1e6)
	fmt.Println("the transpose (redistribution) traffic is why Figure 12 saturates early")
}
