// Knapsack: the branch-and-bound archetype — the paper's named example
// of a *nondeterministic* archetype. Solves a 0/1 knapsack with the
// sequential solver, the deterministic bulk-synchronous parallel
// strategy, and the nondeterministic manager/worker strategy, verifying
// all three against dynamic programming.
package main

import (
	"fmt"
	"os"

	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func main() {
	const nItems = 26
	const capacity = 200
	const procs = 8
	items := bnb.RandomItems(nItems, 40, 99)
	spec := bnb.Knapsack(items, capacity)
	model := machine.IBMSP()

	oracle := bnb.KnapsackDP(items, capacity)
	fmt.Printf("0/1 knapsack: %d items, capacity %d, DP optimum = %d\n\n", nItems, capacity, oracle)

	seqTally := core.NewTally(model)
	seq := bnb.SolveSeq(seqTally, spec)
	fmt.Printf("sequential best-first:   value %.0f, %6d nodes, %.4fs simulated\n",
		seq.Best, seq.Expanded, seqTally.Seconds)

	var sync bnb.Result
	resSync, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		r := bnb.SolveSync(p, spec, 16)
		if p.Rank() == 0 {
			sync = r
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("synchronous   (%d procs): value %.0f, %6d nodes, %.4fs simulated (deterministic)\n",
		procs, sync.Best, sync.Expanded, resSync.Makespan)

	var async bnb.Result
	resAsync, err := core.Simulate(procs, model, func(p *spmd.Proc) {
		r := bnb.SolveAsync(p, spec, 64)
		if p.Rank() == 0 {
			async = r
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("manager/worker (%d procs): value %.0f, %6d nodes, %.4fs simulated (nondeterministic timing)\n",
		procs, async.Best, async.Expanded, resAsync.Makespan)

	for _, r := range []bnb.Result{seq, sync, async} {
		if !r.Found || r.Best != float64(oracle) {
			fmt.Fprintln(os.Stderr, "a solver missed the optimum!")
			os.Exit(1)
		}
	}
	fmt.Println("\nall three strategies found the DP optimum")
}
