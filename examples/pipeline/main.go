// Pipeline: archetype composition (the paper's future-work direction) —
// a stream of 2D FFT frames flows through two process groups, stage A
// doing row FFTs while stage B does the column FFTs of the previous
// frame. Overlapped (task-parallel) execution is compared against
// lockstep execution of the same decomposition.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/machine"
	"repro/internal/pipeline"
)

func main() {
	const procs = 8
	const n = 128
	const frames = 8
	fill := func(f, i, j int) complex128 {
		return complex(math.Sin(float64(f+1)*0.1*float64(i)), math.Cos(0.05*float64(j)))
	}
	model := machine.IBMSP()

	over, outs, err := pipeline.Makespan(procs, n, frames, pipeline.Overlapped, model, fill)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lock, _, err := pipeline.Makespan(procs, n, frames, pipeline.Lockstep, model, fill)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("two-stage FFT pipeline: %d frames of %dx%d over %d procs (two groups of %d)\n",
		frames, n, n, procs, procs/2)
	fmt.Printf("  lockstep   (no overlap): %.4fs simulated\n", lock)
	fmt.Printf("  overlapped (composed):   %.4fs simulated\n", over)
	fmt.Printf("  task-parallel composition saved %.0f%%\n", 100*(1-over/lock))
	fmt.Printf("transformed frames delivered: %d (each bit-identical to the sequential 2D FFT)\n", len(outs))
}
