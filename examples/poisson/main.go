// Poisson: the §3.6 application (Figures 13-14). Solves the Poisson
// problem with Jacobi iteration on the mesh archetype, validates against
// the manufactured analytic solution, and demonstrates the V1 ≡ V2
// equivalence and a small speedup sweep.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/poisson"
	"repro/internal/spmd"
)

func main() {
	const n = 65
	pr := poisson.Manufactured(n, n, 1e-8, 0)
	model := machine.IBMSP()

	// Version 1 (Figure 13), sequential and concurrent.
	uSeq, resSeq := poisson.SolveV1(core.Sequential, pr)
	uCon, resCon := poisson.SolveV1(core.Concurrent, pr)
	if resSeq != resCon {
		fmt.Fprintln(os.Stderr, "V1 modes disagree!")
		os.Exit(1)
	}
	_ = uCon
	fmt.Printf("V1: converged to diffmax %.2e in %d Jacobi iterations (both ParFor modes identical)\n",
		resSeq.DiffMax, resSeq.Iterations)

	// Version 2 (Figure 14) across processor counts; results must be
	// bit-identical to version 1.
	for _, np := range []int{1, 4, 16} {
		var errMax float64
		var iters int
		var identical bool
		res, err := core.Simulate(np, model, func(p *spmd.Proc) {
			g, r := poisson.SolveSPMD(p, pr, meshspectral.NearSquare(p.N()))
			e := poisson.MaxError(g, pr)
			full := meshspectral.GatherGrid(g, 0)
			if p.Rank() == 0 {
				errMax, iters = e, r.Iterations
				identical = true
				for k := range full.Data {
					if full.Data[k] != uSeq.Data[k] {
						identical = false
						break
					}
				}
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		status := "bit-identical to V1"
		if !identical {
			status = "DIFFERS FROM V1"
		}
		fmt.Printf("V2 on %2d procs: %d iters, max error vs analytic %.2e, simulated %.3fs, %s\n",
			np, iters, errMax, res.Makespan, status)
		if !identical {
			os.Exit(1)
		}
	}
	fmt.Println("\nthe max error is the O(h^2) discretization error — the parallel")
	fmt.Println("transformation introduced no numerical change at all (§3.6.3)")
}
