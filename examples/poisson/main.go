// Poisson: the §3.6 application (Figures 13-14). Solves the Poisson
// problem with Jacobi iteration on the mesh archetype, validates against
// the manufactured analytic solution, and demonstrates the V1 ≡ V2
// equivalence and a small speedup sweep — through the arch facade: the
// SPMD solve is a typed Program run at several process counts with
// option-based configuration.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/arch"
	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/poisson"
)

// solveOut is one SPMD solve's root-rank summary: the gathered solution
// plus convergence and accuracy numbers.
type solveOut struct {
	Full   *array.Dense2D[float64]
	Iters  int
	ErrMax float64
}

func main() {
	const n = 65
	pr := poisson.Manufactured(n, n, 1e-8, 0)
	model := machine.IBMSP()
	ctx := context.Background()

	// Version 1 (Figure 13), sequential and concurrent.
	uSeq, resSeq := poisson.SolveV1(core.Sequential, pr)
	uCon, resCon := poisson.SolveV1(core.Concurrent, pr)
	if resSeq != resCon {
		fmt.Fprintln(os.Stderr, "V1 modes disagree!")
		os.Exit(1)
	}
	_ = uCon
	fmt.Printf("V1: converged to diffmax %.2e in %d Jacobi iterations (both ParFor modes identical)\n",
		resSeq.DiffMax, resSeq.Iterations)

	// Version 2 (Figure 14) as a typed Program: solve, measure the error
	// against the analytic solution, gather the full grid at rank 0.
	v2 := arch.SPMDRoot(func(p *arch.Proc, pr *poisson.Problem) solveOut {
		g, r := poisson.SolveSPMD(p, pr, meshspectral.NearSquare(p.N()))
		e := poisson.MaxError(g, pr)
		full := meshspectral.GatherGrid(g, 0)
		return solveOut{Full: full, Iters: r.Iterations, ErrMax: e}
	})

	// Across processor counts the results must be bit-identical to V1.
	for _, np := range []int{1, 4, 16} {
		out, rep, err := arch.Run(ctx, v2, pr,
			arch.WithProcs(np), arch.WithMachine(model))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		identical := true
		for k := range out.Full.Data {
			if out.Full.Data[k] != uSeq.Data[k] {
				identical = false
				break
			}
		}
		status := "bit-identical to V1"
		if !identical {
			status = "DIFFERS FROM V1"
		}
		fmt.Printf("V2 on %2d procs: %d iters, max error vs analytic %.2e, simulated %.3fs, %s\n",
			np, out.Iters, out.ErrMax, rep.Makespan, status)
		if !identical {
			os.Exit(1)
		}
	}
	fmt.Println("\nthe max error is the O(h^2) discretization error — the parallel")
	fmt.Println("transformation introduced no numerical change at all (§3.6.3)")
}
