// Airshed: the §3.7.4 smog-model application. Simulates a photochemical
// episode — urban NOx emissions advected across the basin, titrating the
// ozone background — and renders the NO₂ plume and the urban "ozone
// hole" as ASCII maps.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/airshed"
	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func main() {
	const n = 48
	const steps = 200
	const procs = 4
	pm := airshed.DefaultParams(n, n)

	var snap *array.Dense2D[airshed.Conc]
	res, err := core.Simulate(procs, machine.IBMSP(), func(p *spmd.Proc) {
		s := airshed.NewSPMD(p, pm, meshspectral.Blocks(2, 2))
		s.Run(steps)
		full := meshspectral.GatherGrid(s.C, 0)
		if p.Rank() == 0 {
			snap = full
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("airshed episode: %dx%d basin, %d steps (dt=%.2e), %d simulated procs, %.3fs machine time\n\n",
		n, n, steps, pm.Dt, procs, res.Makespan)
	fmt.Printf("mean NOx loading: %.4f\n\n", airshed.TotalNOx(snap))

	fmt.Println("NO2 plume (emissions at city, blown downwind):")
	render(airshed.Field(snap, airshed.NO2))
	fmt.Println("\nozone (note the titration hole over the city):")
	render(airshed.Field(snap, airshed.O3))
}

// render prints a coarse ASCII density map (y up, x right).
func render(f *array.Dense2D[float64]) {
	const shades = " .:-=+*#%@"
	lo, hi := f.Data[0], f.Data[0]
	for _, v := range f.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	// Downsample to ~24 columns.
	stepI := max(f.NX/24, 1)
	stepJ := max(f.NY/24, 1)
	for j := f.NY - stepJ; j >= 0; j -= stepJ {
		var sb strings.Builder
		for i := 0; i < f.NX; i += stepI {
			v := (f.At(i, j) - lo) / (hi - lo)
			idx := int(v * float64(len(shades)-1))
			sb.WriteByte(shades[idx])
			sb.WriteByte(shades[idx])
		}
		fmt.Println(sb.String())
	}
	fmt.Printf("range [%.3f, %.3f]\n", lo, hi)
}
