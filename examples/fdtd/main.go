// FDTD: the §3.7.2 application. A Gaussian pulse rings in a perfectly
// conducting cavity; the example prints the energy trace (bounded — the
// Yee scheme is stable below the Courant limit) and verifies that the
// parallel fields match the sequential ones bit for bit, the property
// that let the paper's electromagnetics code run "correctly on the first
// execution".
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fdtd"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func main() {
	const n = 24
	const steps = 60
	const procs = 4
	pm := fdtd.DefaultParams(n)

	seq := fdtd.NewSeq(pm)
	fmt.Printf("FDTD cavity %d^3, Courant %.3f, initial energy %.4f\n", n, pm.Courant, seq.Energy())
	fmt.Printf("%8s %12s\n", "step", "energy")
	for s := 0; s <= steps; s += 10 {
		if s > 0 {
			seq.Run(core.Nop, 10)
		}
		fmt.Printf("%8d %12.6f\n", s, seq.Energy())
	}

	var identical bool
	var energy float64
	res, err := core.Simulate(procs, machine.IBMSP(), func(p *spmd.Proc) {
		sim := fdtd.NewSPMD(p, pm)
		sim.Run(steps)
		e := sim.Energy()
		ef := meshspectral.GatherGrid3(sim.E, 0)
		hf := meshspectral.GatherGrid3(sim.H, 0)
		if p.Rank() == 0 {
			energy = e
			identical = true
			for k := range ef.Data {
				if ef.Data[k] != seq.E.Data[k] || hf.Data[k] != seq.H.Data[k] {
					identical = false
					break
				}
			}
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nSPMD on %d procs after %d steps: energy %.6f, simulated %.3fs\n",
		procs, steps, energy, res.Makespan)
	if identical {
		fmt.Println("parallel E and H fields are bit-identical to the sequential run")
	} else {
		fmt.Fprintln(os.Stderr, "FIELDS DIFFER — transformation broke semantics")
		os.Exit(1)
	}
}
