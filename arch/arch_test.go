package arch_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/arch"
	_ "repro/arch/apps"
	"repro/internal/machine"
)

// everyApp lists the applications the registry must hold after importing
// repro/arch/apps.
var everyApp = []string{
	"airshed", "cfd", "closest", "fdtd", "fft", "hull",
	"mergesort", "poisson", "quicksort", "skyline", "swirl",
}

func TestRegistryComplete(t *testing.T) {
	apps := arch.Apps()
	byName := map[string]arch.App{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	for _, name := range everyApp {
		a, ok := byName[name]
		if !ok {
			t.Errorf("app %q not registered", name)
			continue
		}
		if a.Desc == "" || a.DefaultSize <= 0 || a.Run == nil {
			t.Errorf("app %q registered incompletely: %+v", name, a)
		}
		if len(a.BackendNames()) == 0 {
			t.Errorf("app %q reports no backends", name)
		}
	}
	for i := 1; i < len(apps); i++ {
		if apps[i-1].Name >= apps[i].Name {
			t.Fatalf("Apps() not sorted: %q before %q", apps[i-1].Name, apps[i].Name)
		}
	}
}

// TestResolveBackendErrorDeterministic pins the exact "have: ..." list:
// sorted name order, so typo errors are stable across runs and map
// iteration orders (and prove dist is registered through the facade).
func TestResolveBackendErrorDeterministic(t *testing.T) {
	_, err := arch.ResolveBackend("quantum")
	if err == nil {
		t.Fatal("ResolveBackend(quantum) succeeded")
	}
	want := `unknown backend "quantum" (have: dist, elastic, real, sim)`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
	names := arch.BackendNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("BackendNames() not sorted: %v", names)
		}
	}
	for _, name := range []string{"dist", "elastic", "real", "sim"} {
		r, err := arch.ResolveBackend(name)
		if err != nil || r.Name() != name {
			t.Errorf("ResolveBackend(%q) = %v, %v", name, r, err)
		}
	}
}

// TestRunAppOnDist runs a registry app end to end on the distributed
// backend resolved by name through the facade: worker processes
// self-spawn from this test binary (see TestMain).
func TestRunAppOnDist(t *testing.T) {
	dist, err := arch.ResolveBackend("dist")
	if err != nil {
		t.Fatal(err)
	}
	summary, rep, err := arch.RunApp(context.Background(), "mergesort",
		arch.WithProcs(2), arch.WithSize(1<<10), arch.WithBackend(dist))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "verified sorted") {
		t.Errorf("summary = %q, want verification note", summary)
	}
	if rep.Backend != "dist" || rep.Virtual || rep.Makespan <= 0 {
		t.Errorf("report = %+v, want wall-clock dist report", rep)
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := arch.ResolveApp("nope"); err == nil || !strings.Contains(err.Error(), "unknown app") || !strings.Contains(err.Error(), "have:") {
		t.Errorf("ResolveApp error = %v, want unknown-app with listing", err)
	}
	if _, err := arch.ResolveMachine("vax"); err == nil || !strings.Contains(err.Error(), "unknown machine") || !strings.Contains(err.Error(), "have:") {
		t.Errorf("ResolveMachine error = %v, want unknown-machine with listing", err)
	}
	if _, err := arch.ResolveBackend("quantum"); err == nil || !strings.Contains(err.Error(), "unknown backend") || !strings.Contains(err.Error(), "have:") {
		t.Errorf("ResolveBackend error = %v, want unknown-backend with listing", err)
	}
	if m, err := arch.ResolveMachine("ibm-sp"); err != nil || m.Name != "ibm-sp" {
		t.Errorf("ResolveMachine(ibm-sp) = %v, %v", m, err)
	}
	if r, err := arch.ResolveBackend("sim"); err != nil || r.Name() != "sim" {
		t.Errorf("ResolveBackend(sim) = %v, %v", r, err)
	}
}

func TestRunAppEndToEnd(t *testing.T) {
	summary, rep, err := arch.RunApp(context.Background(), "mergesort",
		arch.WithProcs(4), arch.WithSize(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "verified sorted") {
		t.Errorf("summary = %q, want verification note", summary)
	}
	if rep.Procs != 4 || rep.Backend != "sim" || !rep.Virtual || rep.Makespan <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunAppDefaultSize(t *testing.T) {
	// WithSize(0) means the app's registered default: the skyline app's
	// summary names its input size.
	summary, _, err := arch.RunApp(context.Background(), "skyline", arch.WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "2000 buildings") {
		t.Errorf("summary = %q, want the 2000-building default", summary)
	}
}

func TestRunTypedProgram(t *testing.T) {
	// A facade-only SPMD program: every rank contributes rank+1, the
	// combine stage sums.
	prog := arch.SPMD(
		func(p *arch.Proc, in int) int { return in * (p.Rank() + 1) },
		func(parts []int) int {
			sum := 0
			for _, v := range parts {
				sum += v
			}
			return sum
		})
	out, rep, err := arch.Run(context.Background(), prog, 10, arch.WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if out != 10*(1+2+3+4) {
		t.Errorf("out = %d, want 100", out)
	}
	if rep.Procs != 4 {
		t.Errorf("report procs = %d", rep.Procs)
	}
}

func TestParForModes(t *testing.T) {
	prog := arch.ParFor(func(mode arch.Mode, n int) string {
		return mode.String()
	})
	for _, tc := range []struct {
		opt  arch.Option
		want string
	}{
		{arch.WithMode(arch.Sequential), "sequential"},
		{arch.WithMode(arch.Concurrent), "concurrent"},
	} {
		got, _, err := arch.Run(context.Background(), prog, 1, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("mode = %q, want %q", got, tc.want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	prog := arch.SPMDRoot(func(p *arch.Proc, in int) int { return in })
	if _, _, err := arch.Run(context.Background(), prog, 1, arch.WithProcs(-2)); err == nil {
		t.Error("negative procs should return an error")
	}
	if _, _, err := arch.Run(context.Background(), prog, 1, arch.WithMachine(nil)); err == nil {
		t.Error("nil machine should return an error")
	}
	if _, _, err := arch.Run(context.Background(), prog, 1, arch.WithBackend(nil)); err == nil {
		t.Error("nil backend should return an error")
	}
	var zero arch.Program[int, int]
	if _, _, err := arch.Run(context.Background(), zero, 1); err == nil {
		t.Error("zero Program should return an error")
	}
}

func TestRunCancellation(t *testing.T) {
	// A program whose rank 0 blocks forever in Recv: only cancellation
	// can unwind it. Run must return ctx.Err() promptly without leaking
	// the process goroutines.
	prog := arch.SPMDRoot(func(p *arch.Proc, in int) int {
		if p.Rank() == 0 {
			p.Recv(1, 1) // rank 1 never sends
		}
		return in
	})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := arch.Run(ctx, prog, 1, arch.WithProcs(2), arch.WithMachine(machine.IBMSP()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt", d)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines leaked after cancelled Run: %d before, %d after", before, n)
	}
}

func TestReportString(t *testing.T) {
	rep := arch.Report{Backend: "sim", Machine: "ibm-sp", Virtual: true, Procs: 8, Makespan: 1.5, Msgs: 10, Bytes: 2e6}
	s := rep.String()
	for _, want := range []string{"8 ibm-sp processes", "sim backend", "virtual", "10 msgs", "2.00 MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String() = %q, missing %q", s, want)
		}
	}
}

// TestRunAppUnsupportedBackendListingDeterministic pins RunApp's
// `does not support backend %q (have: ...)` listing: sorted name order,
// matching the ResolveBackend convention, no matter how the app
// declared its Backends slice.
func TestRunAppUnsupportedBackendListingDeterministic(t *testing.T) {
	arch.Register(arch.App{
		Name:        "backendpin",
		Desc:        "test app with a deliberately unsorted backend list",
		DefaultSize: 1,
		Backends:    []string{"sim", "dist"}, // unsorted on purpose
		Run: func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
			return "ran", arch.Report{}, nil
		},
	})
	real_, err := arch.ResolveBackend("real")
	if err != nil {
		t.Fatalf("ResolveBackend(real): %v", err)
	}
	want := `app "backendpin" does not support backend "real" (have: dist, sim)`
	for i := 0; i < 3; i++ {
		_, _, err := arch.RunApp(context.Background(), "backendpin", arch.WithBackend(real_))
		if err == nil {
			t.Fatal("RunApp on unsupported backend succeeded")
		}
		if got := err.Error(); got != want {
			t.Fatalf("run %d: error = %q, want %q", i, got, want)
		}
	}
}
