package arch

import (
	"context"
	"fmt"
	"strings"
)

// App kinds: the two program shapes the registry serves. A batch app
// runs to one result (the paper's archetypes as originally reproduced);
// a stream app is long-lived — elements flow through a stage graph and
// progress is observable in windows while it runs (internal/stream).
const (
	// KindBatch is the default: one input, one output, one Report.
	KindBatch = "batch"
	// KindStream marks a streaming app: registered with RunStream, run
	// as a long-lived job with windowed progress.
	KindStream = "stream"
)

// KindNames returns the valid app kind names, sorted.
func KindNames() []string { return []string{KindBatch, KindStream} }

// StreamWindow is one progress window of a streaming run: the visible
// heartbeat of a long-lived job. Windows are observations on the host
// wall clock, not part of the run's deterministic cost accounting.
type StreamWindow struct {
	// Index is the 1-based window number.
	Index int `json:"window"`
	// Elems is the cumulative count of elements through the stream's
	// sink.
	Elems int64 `json:"elems"`
	// Elapsed is wall-clock seconds since the stream started.
	Elapsed float64 `json:"elapsed"`
	// Rate is elements per second within this window.
	Rate float64 `json:"rate"`
}

// StreamObserver receives progress windows from a streaming run. It is
// called synchronously from the stream's sink: a blocking observer
// backpressures the pipeline (which is what lets a slow consumer of the
// progress feed slow the stream instead of growing a queue).
type StreamObserver func(StreamWindow)

// RunAppStream resolves and runs a registered streaming application,
// exactly as RunApp does for its kind, additionally delivering progress
// windows to obs (nil is allowed: the app runs unobserved). It rejects
// batch apps: their runs have no stream to observe.
func RunAppStream(ctx context.Context, name string, obs StreamObserver, opts ...Option) (string, Report, error) {
	a, err := ResolveApp(name)
	if err != nil {
		return "", Report{}, err
	}
	if a.KindName() != KindStream {
		return "", Report{}, fmt.Errorf("app %q is a %s app, not %s", name, a.KindName(), KindStream)
	}
	s := NewSettings(opts...)
	if s.Size <= 0 {
		s.Size = a.DefaultSize
	}
	if err := s.Validate(); err != nil {
		return "", Report{}, err
	}
	if !a.SupportsBackend(s.Backend.Name()) {
		return "", Report{}, fmt.Errorf("app %q does not support backend %q (have: %s)",
			name, s.Backend.Name(), strings.Join(a.BackendNames(), ", "))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return a.RunStream(ctx, s, obs)
}

// RunSpecStream canonicalizes sp — which must name a streaming app —
// and runs it with progress windows delivered to obs: the execution
// entry point for long-lived stream jobs (the archetype service's
// streaming job bodies).
func RunSpecStream(ctx context.Context, sp Spec, obs StreamObserver) (string, Report, error) {
	c, err := sp.Canonical()
	if err != nil {
		return "", Report{}, err
	}
	if c.Kind != KindStream {
		return "", Report{}, fmt.Errorf("app %q is a %s app, not %s", c.App, c.Kind, KindStream)
	}
	s, err := c.Settings()
	if err != nil {
		return "", Report{}, err
	}
	a, err := ResolveApp(c.App)
	if err != nil {
		return "", Report{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return a.RunStream(ctx, s, obs)
}
