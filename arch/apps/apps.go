// Package apps populates the arch application registry: importing it for
// side effects pulls in every application package, whose init functions
// self-register with arch.Register. Drivers (archdemo, examples, tests)
// import it once instead of maintaining their own app lists:
//
//	import _ "repro/arch/apps"
package apps

import (
	_ "repro/internal/airshed"
	_ "repro/internal/cfd"
	_ "repro/internal/closest"
	_ "repro/internal/fdtd"
	_ "repro/internal/fft"
	_ "repro/internal/hull"
	_ "repro/internal/poisson"
	_ "repro/internal/skyline"
	_ "repro/internal/sortapp"
	_ "repro/internal/streamfft"
	_ "repro/internal/streamhist"
	_ "repro/internal/swirl"
)
