package arch

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
)

// Spec names one registry-app run in flag-level, serializable terms: the
// app name plus the five knobs every driver exposes (size, procs,
// machine, backend, mode). It is the wire form of a run — what the
// archetype service accepts over HTTP, what the persistent result cache
// derives its content address from, and what a client would replay to
// reproduce a result. A Spec carries names, not resolved objects, so two
// processes (or two runs of one process) agree on what it means.
//
// The zero value of every field means "the default": Canonical fills
// them in (per-app default size, 8 procs, the default machine profile
// and backend, concurrent mode) so that a partially-specified Spec and
// its fully-spelled-out equivalent canonicalize — and therefore hash —
// identically.
type Spec struct {
	// App is the registry name of the application ("mergesort", ...).
	App string `json:"app"`
	// Size is the problem size; 0 means the app's default.
	Size int `json:"size"`
	// Procs is the SPMD process count; 0 means the default (8).
	Procs int `json:"procs"`
	// Machine is the machine-profile name; "" means the default profile.
	Machine string `json:"machine"`
	// Backend is the execution-backend name; "" means the default
	// backend.
	Backend string `json:"backend"`
	// Mode is the version-1 execution mode name ("sequential" or
	// "concurrent"); "" means concurrent.
	Mode string `json:"mode"`
	// Kind is the app kind this spec expects, "batch" or "stream"; ""
	// means whatever kind the named app registered. Canonical fills it
	// from the registry and rejects a mismatch, so the service can
	// dispatch a spec to the batch or the streaming path before running
	// anything.
	Kind string `json:"kind"`
	// Trace asks the service to run the job under the flight recorder
	// and retain its Chrome trace (GET /runs/{id}/trace). Omitted from
	// JSON when false so untraced Specs hash to the same content
	// address they always have; traced jobs bypass the result cache
	// entirely (see internal/serve).
	Trace bool `json:"trace,omitempty"`
}

// ModeNames returns the valid version-1 execution mode names, sorted.
func ModeNames() []string { return []string{"concurrent", "sequential"} }

// ResolveMode looks up a version-1 execution mode by flag-level name,
// returning a uniform "unknown mode (have: ...)" error for typos.
func ResolveMode(name string) (Mode, error) {
	switch name {
	case "sequential":
		return core.Sequential, nil
	case "concurrent":
		return core.Concurrent, nil
	}
	return 0, fmt.Errorf("unknown mode %q (have: %s)", name, strings.Join(ModeNames(), ", "))
}

// Canonical resolves sp against the registry and the defaults and
// returns the normalized Spec: every field filled in with its effective
// value, every name validated. Two Specs that would run the same
// experiment canonicalize to the same value, which is what makes the
// canonical form safe to hash as a content address (see
// internal/rescache). It rejects unknown apps, machines, backends and
// modes, non-positive procs/size, and app/backend combinations the app
// does not support, with the same errors a direct RunApp would produce.
func (sp Spec) Canonical() (Spec, error) {
	a, err := ResolveApp(sp.App)
	if err != nil {
		return Spec{}, err
	}
	if sp.Size == 0 {
		sp.Size = a.DefaultSize
	}
	if sp.Size <= 0 {
		return Spec{}, fmt.Errorf("spec: problem size must be positive, got %d", sp.Size)
	}
	if sp.Procs == 0 {
		sp.Procs = defaultProcs
	}
	if sp.Procs <= 0 {
		return Spec{}, fmt.Errorf("spec: process count must be positive, got %d", sp.Procs)
	}
	if sp.Machine == "" {
		sp.Machine = machine.IBMSP().Name
	}
	if _, err := ResolveMachine(sp.Machine); err != nil {
		return Spec{}, err
	}
	if sp.Backend == "" {
		sp.Backend = backend.Default().Name()
	}
	if _, err := ResolveBackend(sp.Backend); err != nil {
		return Spec{}, err
	}
	if !a.SupportsBackend(sp.Backend) {
		return Spec{}, fmt.Errorf("app %q does not support backend %q (have: %s)",
			sp.App, sp.Backend, strings.Join(a.BackendNames(), ", "))
	}
	if sp.Mode == "" {
		sp.Mode = "concurrent"
	}
	if _, err := ResolveMode(sp.Mode); err != nil {
		return Spec{}, err
	}
	if sp.Kind == "" {
		sp.Kind = a.KindName()
	}
	switch sp.Kind {
	case KindBatch, KindStream:
	default:
		return Spec{}, fmt.Errorf("unknown kind %q (have: %s)", sp.Kind, strings.Join(KindNames(), ", "))
	}
	if sp.Kind != a.KindName() {
		return Spec{}, fmt.Errorf("app %q is a %s app, not %s", sp.App, a.KindName(), sp.Kind)
	}
	if sp.Trace && sp.Kind == KindStream {
		return Spec{}, fmt.Errorf("spec: trace is not supported for stream apps")
	}
	return sp, nil
}

// defaultProcs is NewSettings' process-count default, shared so Spec
// canonicalization and option-based runs agree on what "unspecified"
// means.
const defaultProcs = 8

// CanonicalJSON canonicalizes sp and renders it as deterministic JSON:
// fixed field order, no whitespace. Byte-identical output for equivalent
// Specs is the contract the content-addressed result cache hashes
// against.
func (sp Spec) CanonicalJSON() ([]byte, error) {
	c, err := sp.Canonical()
	if err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// Settings resolves the canonical spec's names into runnable Settings.
// It must be called on a canonical Spec (it re-canonicalizes to be
// safe) so name resolution cannot fail halfway.
func (sp Spec) Settings() (Settings, error) {
	c, err := sp.Canonical()
	if err != nil {
		return Settings{}, err
	}
	m, err := ResolveMachine(c.Machine)
	if err != nil {
		return Settings{}, err
	}
	b, err := ResolveBackend(c.Backend)
	if err != nil {
		return Settings{}, err
	}
	mode, err := ResolveMode(c.Mode)
	if err != nil {
		return Settings{}, err
	}
	return Settings{
		Procs:   c.Procs,
		Machine: m,
		Backend: b,
		Mode:    mode,
		Size:    c.Size,
	}, nil
}

// RunSpec canonicalizes sp and runs it through the registry, exactly as
// RunApp with the equivalent options would: same app dispatch, same
// validation, same summary and Report. It is the execution entry point
// for serialized run requests (the archetype service's job bodies).
func RunSpec(ctx context.Context, sp Spec) (string, Report, error) {
	c, err := sp.Canonical()
	if err != nil {
		return "", Report{}, err
	}
	s, err := c.Settings()
	if err != nil {
		return "", Report{}, err
	}
	a, err := ResolveApp(c.App)
	if err != nil {
		return "", Report{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return a.Run(ctx, s)
}
