package arch_test

import (
	"os"
	"testing"

	"repro/internal/backend/dist"
	"repro/internal/elastic"
)

// TestMain lets this test binary self-spawn as dist workers for the
// facade-level dist tests.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	os.Exit(m.Run())
}
