package arch_test

import (
	"os"
	"testing"

	"repro/internal/backend/dist"
)

// TestMain lets this test binary self-spawn as dist workers for the
// facade-level dist tests.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}
