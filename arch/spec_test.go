package arch_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/arch"
	_ "repro/arch/apps"
)

// TestSpecCanonicalFillsDefaults: a Spec naming only the app
// canonicalizes to the fully-spelled-out defaults, and the two forms
// produce byte-identical canonical JSON.
func TestSpecCanonicalFillsDefaults(t *testing.T) {
	c, err := arch.Spec{App: "mergesort"}.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	want := arch.Spec{App: "mergesort", Size: 1 << 19, Procs: 8, Machine: "ibm-sp", Backend: "sim", Mode: "concurrent", Kind: arch.KindBatch}
	if c != want {
		t.Fatalf("Canonical = %+v, want %+v", c, want)
	}
	short, err := arch.Spec{App: "mergesort"}.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON(short): %v", err)
	}
	long, err := want.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON(long): %v", err)
	}
	if !bytes.Equal(short, long) {
		t.Fatalf("canonical JSON differs:\n short: %s\n long:  %s", short, long)
	}
}

// TestSpecCanonicalIdempotent: canonicalizing a canonical Spec is the
// identity, so hashing is stable no matter how many times a spec has
// been normalized on its way through the service.
func TestSpecCanonicalIdempotent(t *testing.T) {
	c, err := arch.Spec{App: "fft", Procs: 4}.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	c2, err := c.Canonical()
	if err != nil {
		t.Fatalf("Canonical(canonical): %v", err)
	}
	if c != c2 {
		t.Fatalf("Canonical not idempotent: %+v != %+v", c, c2)
	}
}

// TestSpecCanonicalRejects: every invalid field fails canonicalization
// with the facade's uniform resolver errors.
func TestSpecCanonicalRejects(t *testing.T) {
	cases := []struct {
		name string
		sp   arch.Spec
		want string
	}{
		{"unknown app", arch.Spec{App: "nope"}, "unknown app"},
		{"empty app", arch.Spec{}, "unknown app"},
		{"unknown machine", arch.Spec{App: "mergesort", Machine: "vax"}, "unknown machine"},
		{"unknown backend", arch.Spec{App: "mergesort", Backend: "quantum"}, "unknown backend"},
		{"unknown mode", arch.Spec{App: "mergesort", Mode: "turbo"}, "unknown mode"},
		{"negative procs", arch.Spec{App: "mergesort", Procs: -1}, "process count"},
		{"negative size", arch.Spec{App: "mergesort", Size: -5}, "problem size"},
		{"unknown kind", arch.Spec{App: "mergesort", Kind: "firehose"}, "unknown kind"},
		{"kind mismatch", arch.Spec{App: "mergesort", Kind: "stream"}, "is a batch app"},
	}
	for _, tc := range cases {
		_, err := tc.sp.Canonical()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Canonical() err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestResolveMode pins the mode resolver and its sorted error listing to
// the facade's "unknown X (have: ...)" convention.
func TestResolveMode(t *testing.T) {
	if m, err := arch.ResolveMode("sequential"); err != nil || m != arch.Sequential {
		t.Errorf("ResolveMode(sequential) = %v, %v", m, err)
	}
	if m, err := arch.ResolveMode("concurrent"); err != nil || m != arch.Concurrent {
		t.Errorf("ResolveMode(concurrent) = %v, %v", m, err)
	}
	_, err := arch.ResolveMode("turbo")
	if err == nil {
		t.Fatal("ResolveMode(turbo) succeeded")
	}
	if got, want := err.Error(), `unknown mode "turbo" (have: concurrent, sequential)`; got != want {
		t.Errorf("error = %q, want %q", got, want)
	}
}

// TestRunSpecMatchesRunApp: RunSpec is RunApp over a serialized request
// — identical summary and identical Report, meters included.
func TestRunSpecMatchesRunApp(t *testing.T) {
	sp := arch.Spec{App: "mergesort", Size: 1 << 12, Procs: 4}
	sum1, rep1, err := arch.RunSpec(context.Background(), sp)
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	sum2, rep2, err := arch.RunApp(context.Background(), "mergesort",
		arch.WithSize(1<<12), arch.WithProcs(4))
	if err != nil {
		t.Fatalf("RunApp: %v", err)
	}
	if sum1 != sum2 {
		t.Errorf("summary differs: %q vs %q", sum1, sum2)
	}
	if rep1 != rep2 {
		t.Errorf("report differs: %+v vs %+v", rep1, rep2)
	}
}
