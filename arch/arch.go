// Package arch is the public facade of the archetype reproduction: the
// single way to define and run an archetype application.
//
// The paper's central claim is that an archetype is a reusable interface —
// one pattern of dataflow and communication instantiated by many
// applications. This package is that interface's front door:
//
//   - Program[In, Out] abstracts a runnable parallel program over typed
//     input and output, wrapping both the paper's version-1 data-parallel
//     (parfor) programs and version-2 SPMD message-passing programs
//     (constructors ParFor, SPMD, SPMDRoot).
//   - Run executes a Program under a context with functional options
//     (WithProcs, WithMachine, WithBackend, WithMode, WithSize) and
//     returns the typed output together with a Report of the run's cost.
//   - The application registry (Register / Apps / RunApp) holds every
//     application in the repository; each app package self-registers from
//     its init, so drivers (archdemo, archbench, figures) dispatch off the
//     registry instead of hand-maintained tables. Importing repro/arch/apps
//     for side effects populates the registry.
//   - ResolveMachine and ResolveBackend translate the flag-level names
//     ("ibm-sp"; "sim", "real", "dist") into models and runners with
//     uniform "unknown X (have: ...)" errors whose alternatives are
//     listed in sorted order.
//
// Everything a facade user needs is re-exported here (Proc, Comm, Mode,
// ...), so application code imports only this package plus the archetype
// libraries it builds on. Misuse returns errors rather than panicking,
// and cancelling the run's context aborts a run mid-flight with ctx.Err().
package arch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"

	// The distributed backend registers itself ("dist") so every facade
	// user can resolve it; its default self-spawn mode additionally needs
	// the host binary's main to call dist.MaybeWorker (see cmd/archdemo).
	_ "repro/internal/backend/dist"
	// The elastic (fault-tolerant task-queue) backend registers itself
	// ("elastic"); its default self-spawn mode likewise needs main to
	// call elastic.MaybeWorker.
	_ "repro/internal/elastic"
)

// Re-exports: the types facade users write programs against, aliased so
// application code needs no internal imports.
type (
	// Proc is one logical process of an SPMD computation.
	Proc = spmd.Proc
	// Comm is the communication-and-cost interface archetype code is
	// written against (a world process or a subgroup view of one).
	Comm = spmd.Comm
	// Machine is a LogGP-style machine cost model.
	Machine = machine.Model
	// Backend is a named execution substrate: the virtual-time simulator
	// ("sim"), the shared-memory real backend ("real"), or the
	// distributed TCP backend ("dist").
	Backend = backend.Runner
	// Mode selects sequential or concurrent execution for version-1
	// (parfor) programs.
	Mode = core.Mode
	// Result is the raw summary of one SPMD run.
	Result = spmd.Result
)

// Version-1 execution modes, re-exported.
const (
	Sequential = core.Sequential
	Concurrent = core.Concurrent
)

// ResolveMachine looks up a machine profile by flag-level name, returning
// a uniform "unknown machine (have: ...)" error for typos.
func ResolveMachine(name string) (*Machine, error) {
	if m, ok := machine.Profiles()[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("unknown machine %q (have: %s)", name, strings.Join(MachineNames(), ", "))
}

// MachineNames returns every built-in machine profile name, sorted.
func MachineNames() []string {
	profiles := machine.Profiles()
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ResolveBackend looks up an execution backend by name, returning a
// uniform "unknown backend (have: ...)" error for typos.
func ResolveBackend(name string) (Backend, error) {
	if r, ok := backend.ByName(name); ok {
		return r, nil
	}
	return nil, fmt.Errorf("unknown backend %q (have: %s)", name, strings.Join(backend.Names(), ", "))
}

// BackendNames returns every registered backend name, sorted.
func BackendNames() []string { return backend.Names() }
