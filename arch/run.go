package arch

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Settings is the resolved configuration of one Run: what NewSettings
// produces after applying defaults and options. App registry entries
// receive a Settings; generic callers usually pass Options to Run and
// never touch it directly.
type Settings struct {
	// Procs is the process count SPMD programs run on.
	Procs int
	// Machine is the cost model pricing the run.
	Machine *Machine
	// Backend is the execution substrate (virtual-time simulator by
	// default).
	Backend Backend
	// Mode is the execution mode for version-1 (parfor) programs;
	// SPMD programs ignore it.
	Mode Mode
	// Size is the problem size for registry apps that generate their own
	// input; 0 means the app's default. Programs run through the generic
	// Run carry their input in In and usually ignore Size.
	Size int
	// TracePath, when non-empty, turns on the flight recorder for the
	// run and writes the resulting Chrome trace-event JSON (loadable in
	// ui.perfetto.dev) to this path when the run finishes. If the run's
	// context already carries an obs.Collector (a driver tracing a whole
	// sweep), that collector records the run and no file is written here.
	TracePath string
}

// Option adjusts one Run's Settings.
type Option func(*Settings)

// WithProcs sets the SPMD process count (default 8).
func WithProcs(n int) Option { return func(s *Settings) { s.Procs = n } }

// WithMachine sets the machine cost model (default the IBM SP profile).
func WithMachine(m *Machine) Option { return func(s *Settings) { s.Machine = m } }

// WithBackend sets the execution backend (default the virtual-time
// simulator).
func WithBackend(r Backend) Option { return func(s *Settings) { s.Backend = r } }

// WithMode sets the version-1 execution mode (default Concurrent).
func WithMode(m Mode) Option { return func(s *Settings) { s.Mode = m } }

// WithSize sets the problem size for registry apps that generate their
// own input (0 keeps the app's default).
func WithSize(n int) Option { return func(s *Settings) { s.Size = n } }

// WithTrace enables the flight recorder and writes the run's Chrome
// trace-event JSON to path ("" keeps tracing off, the default).
func WithTrace(path string) Option { return func(s *Settings) { s.TracePath = path } }

// NewSettings applies opts over the defaults: 8 processes on the IBM SP
// model, the default backend, concurrent version-1 mode, per-app size.
func NewSettings(opts ...Option) Settings {
	s := Settings{
		Procs:   defaultProcs,
		Machine: machine.IBMSP(),
		Backend: backend.Default(),
		Mode:    core.Concurrent,
	}
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// Validate reports the first configuration error: Run refuses invalid
// settings with an error instead of panicking downstream.
func (s Settings) Validate() error {
	if s.Procs <= 0 {
		return fmt.Errorf("arch: process count must be positive, got %d", s.Procs)
	}
	if s.Backend == nil {
		return fmt.Errorf("arch: nil backend")
	}
	if s.Machine == nil {
		return fmt.Errorf("arch: nil machine model")
	}
	if err := s.Machine.Validate(); err != nil {
		return fmt.Errorf("arch: %w", err)
	}
	if s.Mode != core.Sequential && s.Mode != core.Concurrent {
		return fmt.Errorf("arch: invalid mode %d", int(s.Mode))
	}
	return nil
}

// Report summarizes one Run's execution cost: where it ran and what it
// spent. It is the facade-level view of a backend Result.
type Report struct {
	// Backend and Machine name the execution substrate and cost model.
	Backend string
	Machine string
	// Virtual reports whether Makespan is virtual time (simulator) or
	// wall-clock time (real backend).
	Virtual bool
	// Procs is the process count the program ran on.
	Procs int
	// Makespan is the run's execution time in seconds.
	Makespan float64
	// Msgs and Bytes count all cross-process point-to-point messages.
	Msgs  int64
	Bytes int64
	// Obs is the flight-recorder summary (per-rank busy/blocked/comm
	// split, message matrix, critical-path estimate) when the run was
	// traced, nil otherwise. Omitted from JSON when nil so untraced
	// reports serialize exactly as they did before tracing existed.
	Obs *obs.Summary `json:",omitempty"`
}

// String renders the report as the one-line summary the CLIs print.
func (r Report) String() string {
	unit := "virtual"
	if !r.Virtual {
		unit = "wall-clock"
	}
	mach := r.Machine
	if mach != "" {
		mach += " "
	}
	return fmt.Sprintf("%d %sprocesses (%s backend): %.4fs %s, %d msgs, %.2f MB",
		r.Procs, mach, r.Backend, r.Makespan, unit, r.Msgs, float64(r.Bytes)/1e6)
}

// report builds the facade Report for a finished SPMD run.
func report(s Settings, res *Result) Report {
	return Report{
		Backend:  s.Backend.Name(),
		Machine:  s.Machine.Name,
		Virtual:  s.Backend.Virtual(),
		Procs:    s.Procs,
		Makespan: res.Makespan,
		Msgs:     res.Msgs,
		Bytes:    res.Bytes,
	}
}

// Program is a runnable archetype application over typed input and
// output. Construct one with SPMD (a version-2 message-passing program)
// or ParFor (a version-1 data-parallel program); run it with Run. The
// zero Program is invalid and Run reports it as an error.
type Program[In, Out any] struct {
	run func(ctx context.Context, s Settings, in In) (Out, Report, error)
}

// SPMD wraps a version-2 message-passing program body as a Program. body
// runs once per process and returns that rank's partial (type Part);
// combine folds the rank-indexed partials into the program's output —
// verification (global sortedness, assembling distributed pieces) lives
// naturally there. Programs that already gather their result at rank 0
// can use SPMDRoot instead.
func SPMD[In, Part, Out any](body func(p *Proc, in In) Part, combine func(parts []Part) Out) Program[In, Out] {
	return Program[In, Out]{run: func(ctx context.Context, s Settings, in In) (Out, Report, error) {
		var zero Out
		if err := s.Validate(); err != nil {
			return zero, Report{}, err
		}
		if combine == nil {
			return zero, Report{}, fmt.Errorf("arch: SPMD with nil combine (use SPMDRoot for rank-0 results)")
		}
		// A TracePath without a collector already on the context means
		// this run is its own traced scope: make a collector, record
		// into it, and write the file on the way out. When the context
		// carries one (a driver tracing a whole sweep), record into
		// that and leave exporting to its owner.
		col := obs.FromContext(ctx)
		ownCol := s.TracePath != "" && col == nil
		if ownCol {
			col = obs.NewCollector()
			ctx = obs.NewContext(ctx, col)
		}
		parts := make([]Part, s.Procs)
		res, err := core.Run(ctx, s.Backend, s.Procs, s.Machine, func(p *Proc) {
			parts[p.Rank()] = body(p, in)
		})
		if err != nil {
			return zero, Report{}, err
		}
		rep := report(s, res)
		if res.Recorder != nil {
			rep.Obs = res.Recorder.Summary()
		}
		if ownCol {
			if err := col.WriteChromeFile(s.TracePath); err != nil {
				return zero, Report{}, fmt.Errorf("arch: writing trace: %w", err)
			}
		}
		return combine(parts), rep, nil
	}}
}

// SPMDRoot wraps a message-passing program whose result is already
// produced at rank 0 (the common shape after a gather or reduction): the
// program's output is rank 0's return value.
func SPMDRoot[In, Out any](body func(p *Proc, in In) Out) Program[In, Out] {
	return SPMD(body, func(parts []Out) Out { return parts[0] })
}

// ParFor wraps a version-1 data-parallel program as a Program: body runs
// once on the calling goroutine with the configured execution Mode
// (Sequential for debugging, Concurrent for execution) and computes the
// output directly. Version-1 programs are the method's debugging stage:
// they run in-process on no execution backend and unmetered, so their
// Report names the "inline" pseudo-backend and carries no cost
// accounting.
func ParFor[In, Out any](body func(mode Mode, in In) Out) Program[In, Out] {
	return Program[In, Out]{run: func(ctx context.Context, s Settings, in In) (Out, Report, error) {
		var zero Out
		if err := s.Validate(); err != nil {
			return zero, Report{}, err
		}
		if err := ctx.Err(); err != nil {
			return zero, Report{}, err
		}
		out := body(s.Mode, in)
		return out, Report{Backend: "inline", Virtual: true, Procs: 1}, nil
	}}
}

// Run executes prog on in under ctx with the given options and returns
// the typed output plus a cost Report. Cancelling ctx aborts the run
// mid-flight: blocked processes unwind and Run returns ctx.Err().
func Run[In, Out any](ctx context.Context, prog Program[In, Out], in In, opts ...Option) (Out, Report, error) {
	return RunWith(ctx, prog, NewSettings(opts...), in)
}

// RunWith is Run over already-resolved Settings: the entry point registry
// apps use so one resolved configuration serves input generation and
// execution.
func RunWith[In, Out any](ctx context.Context, prog Program[In, Out], s Settings, in In) (Out, Report, error) {
	if prog.run == nil {
		var zero Out
		return zero, Report{}, fmt.Errorf("arch: zero Program")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return prog.run(ctx, s, in)
}
