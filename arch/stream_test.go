package arch_test

import (
	"context"
	"strings"
	"testing"

	"repro/arch"
)

// TestRegisterKindValidation: the registry rejects malformed app kinds
// at registration time — stream apps must carry RunStream, batch apps
// must not.
func TestRegisterKindValidation(t *testing.T) {
	run := func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
		return "", arch.Report{}, nil
	}
	runStream := func(ctx context.Context, s arch.Settings, obs arch.StreamObserver) (string, arch.Report, error) {
		return "", arch.Report{}, nil
	}
	cases := []struct {
		name string
		app  arch.App
		want string
	}{
		{"stream without RunStream", arch.App{Name: "t1", DefaultSize: 1, Kind: arch.KindStream, Run: run}, "nil RunStream"},
		{"batch with RunStream", arch.App{Name: "t2", DefaultSize: 1, Run: run, RunStream: runStream}, "batch app with RunStream"},
		{"unknown kind", arch.App{Name: "t3", DefaultSize: 1, Kind: "firehose", Run: run}, "unknown kind"},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: Register did not panic", tc.name)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, tc.want) {
					t.Errorf("%s: panic %v, want containing %q", tc.name, r, tc.want)
				}
			}()
			arch.Register(tc.app)
		}()
	}
}

// TestKindName: the zero Kind normalizes to batch.
func TestKindName(t *testing.T) {
	if got := (arch.App{}).KindName(); got != arch.KindBatch {
		t.Errorf("zero-kind KindName = %q, want %q", got, arch.KindBatch)
	}
	if got := (arch.App{Kind: arch.KindStream}).KindName(); got != arch.KindStream {
		t.Errorf("stream KindName = %q", got)
	}
}

// TestRunAppStreamRejectsBatchApps: observing a batch app's stream is a
// type error, reported before anything runs.
func TestRunAppStreamRejectsBatchApps(t *testing.T) {
	_, _, err := arch.RunAppStream(context.Background(), "mergesort", nil)
	if err == nil || !strings.Contains(err.Error(), "not stream") {
		t.Fatalf("RunAppStream(mergesort) err = %v, want 'not stream'", err)
	}
}

// TestRunSpecStreamMatchesRunSpec: for a streaming app, the observed
// entry point and the batch entry point run the identical experiment —
// same summary, same meters — the observer being a pure tap.
func TestRunSpecStreamMatchesRunSpec(t *testing.T) {
	sp := arch.Spec{App: "streamhist", Size: 4096, Procs: 5}
	var wins int
	sum1, rep1, err := arch.RunSpecStream(context.Background(), sp, func(arch.StreamWindow) { wins++ })
	if err != nil {
		t.Fatalf("RunSpecStream: %v", err)
	}
	if wins == 0 {
		t.Error("observer saw no windows")
	}
	sum2, rep2, err := arch.RunSpec(context.Background(), sp)
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	if sum1 != sum2 {
		t.Errorf("summary differs: %q vs %q", sum1, sum2)
	}
	if rep1.Msgs != rep2.Msgs || rep1.Bytes != rep2.Bytes {
		t.Errorf("meters differ: %+v vs %+v", rep1, rep2)
	}
}

// TestSpecCanonicalFillsStreamKind: a spec naming a streaming app
// canonicalizes with kind "stream", and the kind participates in the
// canonical JSON (so stream and batch addresses can never collide).
func TestSpecCanonicalFillsStreamKind(t *testing.T) {
	c, err := arch.Spec{App: "streamfft"}.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if c.Kind != arch.KindStream {
		t.Errorf("Kind = %q, want %q", c.Kind, arch.KindStream)
	}
	blob, err := c.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"kind":"stream"`) {
		t.Errorf("canonical JSON misses kind: %s", blob)
	}
}
