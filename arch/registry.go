package arch

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// App is one registered archetype application: the unit the CLIs and
// figure drivers dispatch on. Each app package registers itself from an
// init function; importing repro/arch/apps for side effects populates the
// registry with every application in the repository.
type App struct {
	// Name is the registry key ("mergesort", "poisson", ...).
	Name string
	// Desc is the one-line description -list prints, conventionally with
	// the paper section it reproduces.
	Desc string
	// DefaultSize is the problem size used when the caller doesn't choose
	// one (WithSize(0)). Its unit is app-specific: element count, grid
	// edge, and so on.
	DefaultSize int
	// Backends lists the supported backend names; nil or empty means
	// every registered backend.
	Backends []string
	// Kind classifies the app: KindBatch (the default, "" included) or
	// KindStream for long-lived streaming apps.
	Kind string
	// Run generates the app's input at the configured size, executes it,
	// verifies the result, and returns a one-line human summary of what
	// was computed and verified. Streaming apps provide it too (it is
	// RunStream without an observer) so batch drivers can run every app.
	Run func(ctx context.Context, s Settings) (string, Report, error)
	// RunStream is the streaming entry point, required exactly when Kind
	// is KindStream: the same contract as Run plus progress windows
	// delivered to obs while elements flow (nil obs is allowed).
	RunStream func(ctx context.Context, s Settings, obs StreamObserver) (string, Report, error)
}

// KindName returns the app's effective kind: Kind with the empty string
// normalized to KindBatch.
func (a App) KindName() string {
	if a.Kind == "" {
		return KindBatch
	}
	return a.Kind
}

// SupportsBackend reports whether the app runs on the named backend.
func (a App) SupportsBackend(name string) bool {
	if len(a.Backends) == 0 {
		return true
	}
	for _, b := range a.Backends {
		if b == name {
			return true
		}
	}
	return false
}

// BackendNames returns the names of the backends the app supports
// ("all registered" spelled out when unrestricted), for -list displays.
func (a App) BackendNames() []string {
	if len(a.Backends) == 0 {
		return BackendNames()
	}
	out := append([]string(nil), a.Backends...)
	sort.Strings(out)
	return out
}

var (
	appsMu sync.RWMutex
	apps   = map[string]App{}
)

// Register adds an application to the registry. It panics on an empty
// name, a nil Run, or a duplicate: registration happens in init
// functions, where these are programming errors, not runtime conditions.
func Register(a App) {
	if a.Name == "" {
		panic("arch: Register with empty app name")
	}
	if a.Run == nil {
		panic("arch: Register " + a.Name + " with nil Run")
	}
	switch a.Kind {
	case "", KindBatch:
		if a.RunStream != nil {
			panic("arch: Register " + a.Name + ": batch app with RunStream")
		}
	case KindStream:
		if a.RunStream == nil {
			panic("arch: Register " + a.Name + ": stream app with nil RunStream")
		}
	default:
		panic("arch: Register " + a.Name + ": unknown kind " + a.Kind)
	}
	appsMu.Lock()
	defer appsMu.Unlock()
	if _, dup := apps[a.Name]; dup {
		panic("arch: duplicate app " + a.Name)
	}
	apps[a.Name] = a
}

// Apps returns every registered application sorted by name.
func Apps() []App {
	appsMu.RLock()
	defer appsMu.RUnlock()
	out := make([]App, 0, len(apps))
	for _, a := range apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResolveApp looks an application up by name, returning a uniform
// "unknown app (have: ...)" error for typos.
func ResolveApp(name string) (App, error) {
	appsMu.RLock()
	a, ok := apps[name]
	appsMu.RUnlock()
	if !ok {
		regs := Apps()
		names := make([]string, len(regs))
		for i, reg := range regs {
			names[i] = reg.Name
		}
		return App{}, fmt.Errorf("unknown app %q (have: %s)", name, strings.Join(names, ", "))
	}
	return a, nil
}

// RunApp resolves and runs a registered application: it fills the app's
// default problem size, checks backend support, and invokes the app's Run
// under ctx. It returns the app's one-line summary and the run's Report.
func RunApp(ctx context.Context, name string, opts ...Option) (string, Report, error) {
	a, err := ResolveApp(name)
	if err != nil {
		return "", Report{}, err
	}
	s := NewSettings(opts...)
	if s.Size <= 0 {
		s.Size = a.DefaultSize
	}
	if err := s.Validate(); err != nil {
		return "", Report{}, err
	}
	if !a.SupportsBackend(s.Backend.Name()) {
		return "", Report{}, fmt.Errorf("app %q does not support backend %q (have: %s)",
			name, s.Backend.Name(), strings.Join(a.BackendNames(), ", "))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return a.Run(ctx, s)
}
