// Command archserve is the archetype service daemon: the app registry
// behind a long-lived HTTP/JSON server with bounded admission and a
// content-addressed persistent result cache.
//
// Usage:
//
//	archserve                              # serve on :8080, cache under the user cache dir
//	archserve -addr 127.0.0.1:9090
//	archserve -cache /var/lib/archserve    # share the cache between restarts/processes
//	archserve -cache off                   # memoryless: recompute every cold request
//	archserve -workers 4 -queue 128       # admission bounds
//
// Endpoints (see internal/serve):
//
//	GET  /apps              the registry
//	POST /runs              submit {"app":..., "size":..., "procs":..., "machine":..., "backend":..., "mode":..., "trace":...}
//	GET  /runs/{id}         poll a job
//	GET  /runs/{id}/events  stream a job (SSE)
//	GET  /runs/{id}/trace   Chrome trace JSON of a trace:true job
//	GET  /metrics           Prometheus metrics
//	GET  /healthz           liveness (uptime, build info, job gauges)
//
// Identical submissions coalesce while in flight and hit the persistent
// cache once finished — across restarts too, since the cache key is the
// SHA-256 of the canonical run spec, not anything process-local.
// Submissions naming a streaming app (kind "stream") become long-lived
// jobs instead: bounded by -streams, never cached, with per-window
// throughput on the SSE feed and -keepalive comments between events. On
// SIGINT/SIGTERM the daemon stops admitting (503), drains in-flight
// jobs, and exits 0; -drain bounds how long the drain may take before
// remaining jobs are cancelled.
//
// archserve can run "dist"-backend jobs: like archdemo, it self-spawns
// worker processes by re-executing its own binary (dist.MaybeWorker).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	_ "repro/arch/apps"
	"repro/internal/backend/dist"
	"repro/internal/elastic"
	"repro/internal/rescache"
	"repro/internal/serve"
)

func main() {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cache", "", `persistent result cache directory ("" = per-user default, "off" = disabled)`)
		workers  = flag.Int("workers", 0, "max runs executing concurrently (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "max admitted pending jobs before 429 (0 = 64)")
		streams  = flag.Int("streams", 0, "max stream jobs running concurrently before 429 (0 = 4)")
		keep     = flag.Duration("keepalive", 0, "SSE keep-alive comment interval (0 = 15s, negative = off)")
		drain    = flag.Duration("drain", 30*time.Second, "max time to drain in-flight jobs on shutdown")
		quiet    = flag.Bool("quiet", false, "suppress per-request access logging")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "archserve: ", log.LstdFlags)

	var cache *rescache.Cache
	if *cacheDir != "off" {
		dir := *cacheDir
		if dir == "" {
			base, err := os.UserCacheDir()
			if err != nil {
				base = os.TempDir()
			}
			dir = filepath.Join(base, "archserve")
		}
		var err error
		cache, err = rescache.Open(dir)
		if err != nil {
			logger.Fatalf("open result cache: %v", err)
		}
		logger.Printf("result cache at %s", cache.Dir())
	} else {
		logger.Printf("result cache disabled")
	}

	svc := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		StreamJobs:  *streams,
		KeepAlive:   *keep,
		Cache:       cache,
		LogRequests: !*quiet,
		Log:         logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutdown signal received")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the jobs first while the listener stays up: pollers can
	// still fetch results and new submissions get an honest 503. Only
	// then stop the HTTP server.
	drainErr := svc.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		logger.Printf("drain incomplete: %v", drainErr)
		os.Exit(1)
	}
	fmt.Println("archserve: drained and stopped")
}
