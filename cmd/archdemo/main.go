// Command archdemo runs any one of the reproduction's applications once
// on a simulated machine and prints a verification summary. It is a thin
// shell over the arch facade: the application list, per-app defaults, and
// supported backends all come from the arch registry, which every app
// package populates from its init (pulled in via repro/arch/apps).
//
// Usage:
//
//	archdemo -list
//	archdemo -app mergesort -procs 16
//	archdemo -app poisson -procs 9 -size 65
//	archdemo -app fdtd -machine ibm-sp
//	archdemo -app fft -backend real    # run at hardware speed
//	archdemo -app fft -backend dist    # ... across OS processes over TCP
//
// -backend selects the execution substrate: "sim" prices the run on the
// machine model's virtual clock; "real" runs the processes as goroutines
// over native channels and reports wall-clock time; "dist" self-spawns
// one worker OS process per rank (re-executing archdemo itself) and
// routes every message over loopback TCP. The computational result (and
// its verification) is identical on all of them. Interrupting the
// process (Ctrl-C) cancels the run's context and aborts it mid-flight.
//
// archdemo can also serve as a bare dist worker: -worker ADDR joins the
// coordinator listening at ADDR for one world and exits (the self-spawn
// path does this automatically through dist.MaybeWorker).
//
// With -remote URL, archdemo runs nothing locally: it submits the run
// to an archserve daemon at URL (POST /runs), polls to completion, and
// prints the served summary and report — marked "(cached)" when the
// service answered from its persistent result cache instead of
// executing. The names in -app/-machine/-backend are validated by the
// service in that mode, so the client works against any archserve,
// whatever apps and backends it registers.
//
//	archdemo -remote http://localhost:8080 -app mergesort -procs 16
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/arch"
	_ "repro/arch/apps"
	"repro/internal/backend/dist"
	"repro/internal/elastic"
	"repro/internal/serve"
)

func main() {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	var (
		name   = flag.String("app", "", "application to run (see -list)")
		list   = flag.Bool("list", false, "list applications")
		procs  = flag.Int("procs", 8, "simulated process count")
		size   = flag.Int("size", 0, "problem size (0 = per-app default)")
		mach   = flag.String("machine", "ibm-sp", "machine profile: "+strings.Join(arch.MachineNames(), ", "))
		back   = flag.String("backend", "sim", "execution backend: "+strings.Join(arch.BackendNames(), ", "))
		worker = flag.String("worker", "", "serve as a dist worker for the coordinator at this address, then exit")
		remote = flag.String("remote", "", "submit the run to the archserve daemon at this URL instead of running locally")
		trace  = flag.String("trace", "", "record the run and write Chrome trace-event JSON (ui.perfetto.dev) to this path")
	)
	flag.Parse()

	if *worker != "" {
		if err := dist.JoinWorld(*worker, ""); err != nil {
			fmt.Fprintf(os.Stderr, "archdemo: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list && *remote == "" {
		fmt.Printf("%-10s %-6s %9s  %-13s %s\n", "app", "kind", "size", "backends", "description")
		for _, a := range arch.Apps() {
			fmt.Printf("%-10s %-6s %9d  %-13s %s\n",
				a.Name, a.KindName(), a.DefaultSize, strings.Join(a.BackendNames(), ","), a.Desc)
		}
		return
	}

	if *remote != "" {
		if *trace != "" {
			fmt.Fprintln(os.Stderr, "archdemo: -trace records local runs; for remote traces submit trace:true and GET /runs/{id}/trace")
			os.Exit(2)
		}
		if err := runRemote(*remote, *list, *name, *procs, *size, *mach, *back); err != nil {
			fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
			os.Exit(1)
		}
		return
	}
	model, err := arch.ResolveMachine(*mach)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
		os.Exit(2)
	}
	runner, err := arch.ResolveBackend(*back)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
		os.Exit(2)
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "archdemo: no -app given (use -list)")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	summary, rep, err := arch.RunApp(ctx, *name,
		arch.WithProcs(*procs),
		arch.WithSize(*size),
		arch.WithMachine(model),
		arch.WithBackend(runner),
		arch.WithTrace(*trace),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
		if _, resolveErr := arch.ResolveApp(*name); resolveErr != nil {
			os.Exit(2)
		}
		os.Exit(1)
	}
	fmt.Printf("%s on %s\n", summary, rep)
	if *trace != "" {
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", *trace)
	}
}

// runRemote is archdemo's client mode: list the remote registry or
// submit one run to an archserve daemon and wait for its result. Name
// resolution happens server-side; the flag defaults ("ibm-sp", "sim")
// are sent as-is and the service canonicalizes them.
func runRemote(base string, list bool, name string, procs, size int, mach, back string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	client := &serve.Client{Base: base}

	if list {
		apps, err := client.Apps(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-6s %9s  %-13s %s\n", "app", "kind", "size", "backends", "description")
		for _, a := range apps {
			fmt.Printf("%-10s %-6s %9d  %-13s %s\n",
				a.Name, a.Kind, a.DefaultSize, strings.Join(a.Backends, ","), a.Desc)
		}
		return nil
	}
	if name == "" {
		return fmt.Errorf("no -app given (use -list)")
	}
	st, err := client.Submit(ctx, arch.Spec{
		App: name, Size: size, Procs: procs, Machine: mach, Backend: back,
	})
	if err != nil {
		return err
	}
	switch {
	case st.Terminal():
		// Answered at submission (a cache hit or a failed admission).
	case st.Kind == arch.KindStream:
		// A live stream job: follow its SSE feed and narrate each
		// progress window instead of polling quietly.
		last := 0
		st, err = client.Follow(ctx, st.ID, func(ev serve.JobStatus) {
			if ev.Stream != nil && ev.Stream.Window > last {
				last = ev.Stream.Window
				fmt.Printf("window %d: %d elems, %.0f elems/s\n", ev.Stream.Window, ev.Stream.Elems, ev.Stream.Rate)
			}
		})
		if err != nil {
			return err
		}
	default:
		st, err = client.Wait(ctx, st.ID)
		if err != nil {
			return err
		}
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("run %s %s: %s", st.ID[:12], st.State, st.Error)
	}
	tag := ""
	if st.Cached {
		tag = " (cached)"
	}
	fmt.Printf("%s on %s%s\n", st.Summary, *st.Report, tag)
	return nil
}
