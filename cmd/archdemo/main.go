// Command archdemo runs any one of the reproduction's applications once
// on a simulated machine and prints a verification summary.
//
// Usage:
//
//	archdemo -list
//	archdemo -app mergesort -procs 16
//	archdemo -app poisson -procs 9 -size 65
//	archdemo -app fdtd -machine ibm-sp
//	archdemo -app fft -backend real   # run at hardware speed
//
// -backend selects the execution substrate: "sim" prices the run on the
// machine model's virtual clock; "real" runs the processes as goroutines
// over native channels and reports wall-clock time. The computational
// result (and its verification) is identical on both.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/airshed"
	"repro/internal/backend"
	"repro/internal/cfd"
	"repro/internal/closest"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fdtd"
	"repro/internal/fft"
	"repro/internal/hull"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/onedeep"
	"repro/internal/poisson"
	"repro/internal/skyline"
	"repro/internal/sortapp"
	"repro/internal/spmd"
	"repro/internal/swirl"
)

type app struct {
	name string
	desc string
	run  func(r backend.Runner, m *machine.Model, procs, size int) error
}

func apps() []app {
	return []app{
		{"mergesort", "one-deep mergesort (§2.5)", runMergesort},
		{"quicksort", "one-deep quicksort (§2.6.2)", runQuicksort},
		{"skyline", "one-deep skyline (§2.6.1)", runSkyline},
		{"hull", "one-deep convex hull (§2.6)", runHull},
		{"closest", "one-deep closest pair (§2.6)", runClosest},
		{"fft", "2D FFT on the mesh-spectral archetype (§3.5)", runFFT},
		{"poisson", "Jacobi Poisson solver (§3.6)", runPoisson},
		{"cfd", "compressible shock/interface flow (§3.7.1)", runCFD},
		{"fdtd", "3D electromagnetic cavity (§3.7.2)", runFDTD},
		{"swirl", "axisymmetric spectral swirl (§3.7.3)", runSwirl},
		{"airshed", "photochemical smog episode (§3.7.4)", runAirshed},
	}
}

func main() {
	var (
		name  = flag.String("app", "", "application to run (see -list)")
		list  = flag.Bool("list", false, "list applications")
		procs = flag.Int("procs", 8, "simulated process count")
		size  = flag.Int("size", 0, "problem size (0 = per-app default)")
		mach  = flag.String("machine", "ibm-sp", "machine profile: intel-delta, ibm-sp, workstations, smp")
		back  = flag.String("backend", "sim", "execution backend: "+strings.Join(backend.Names(), ", "))
	)
	flag.Parse()

	if *list {
		for _, a := range apps() {
			fmt.Printf("%-10s %s\n", a.name, a.desc)
		}
		return
	}
	model, ok := machine.Profiles()[*mach]
	if !ok {
		fmt.Fprintf(os.Stderr, "archdemo: unknown machine %q\n", *mach)
		os.Exit(2)
	}
	runner, ok := backend.ByName(*back)
	if !ok {
		fmt.Fprintf(os.Stderr, "archdemo: unknown backend %q (have: %s)\n", *back, strings.Join(backend.Names(), ", "))
		os.Exit(2)
	}
	for _, a := range apps() {
		if a.name == *name {
			if err := a.run(runner, model, *procs, *size); err != nil {
				fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "archdemo: unknown app %q (use -list)\n", *name)
	os.Exit(2)
}

func defSize(size, def int) int {
	if size <= 0 {
		return def
	}
	return size
}

func report(r backend.Runner, model *machine.Model, procs int, res *spmd.Result, what string) {
	unit := "virtual"
	if !r.Virtual() {
		unit = "wall-clock"
	}
	fmt.Printf("%s on %d %s processes (%s backend): %.4fs %s, %d msgs, %.2f MB\n",
		what, procs, model.Name, r.Name(), res.Makespan, unit, res.Msgs, float64(res.Bytes)/1e6)
}

func runMergesort(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 1<<19)
	data := sortapp.RandomInts(n, 1)
	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	blocks := sortapp.BlockDistribute(data, procs)
	outs := make([][]int32, procs)
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		return err
	}
	if !sortapp.IsGloballySorted(outs) {
		return fmt.Errorf("mergesort: output not sorted")
	}
	report(r, m, procs, res, fmt.Sprintf("one-deep mergesort of %d int32 (verified sorted)", n))
	return nil
}

func runQuicksort(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 1<<19)
	data := sortapp.RandomInts(n, 2)
	spec := sortapp.OneDeepQuicksort(onedeep.Centralized)
	blocks := sortapp.BlockDistribute(data, procs)
	outs := make([][]int32, procs)
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		return err
	}
	if !sortapp.IsGloballySorted(outs) {
		return fmt.Errorf("quicksort: output not sorted")
	}
	report(r, m, procs, res, fmt.Sprintf("one-deep quicksort of %d int32 (verified sorted)", n))
	return nil
}

func runSkyline(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 2000)
	bs := skyline.RandomBuildings(n, 3, 5000)
	want := skyline.Compute(core.Nop, bs)
	spec := skyline.Spec(onedeep.Centralized)
	blocks := make([][]skyline.Building, procs)
	for i := range blocks {
		blocks[i] = bs[i*n/procs : (i+1)*n/procs]
	}
	outs := make([]skyline.Skyline, procs)
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		return err
	}
	if !skyline.Equal(skyline.Assemble(outs), want) {
		return fmt.Errorf("skyline: parallel result differs from sequential")
	}
	report(r, m, procs, res, fmt.Sprintf("skyline of %d buildings (%d points, verified)", n, len(want)))
	return nil
}

func runHull(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 50000)
	pts := hull.RandomPoints(n, 4, 1000)
	outs := make([]hull.Pts, procs)
	blocks := make([][]hull.Pt, procs)
	for i := range blocks {
		blocks[i] = pts[i*n/procs : (i+1)*n/procs]
	}
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		outs[p.Rank()] = hull.OneDeepSPMD(p, blocks[p.Rank()])
	})
	if err != nil {
		return err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	want := hull.MonotoneChain(core.Nop, pts)
	if total != len(want) {
		return fmt.Errorf("hull: %d vertices, sequential found %d", total, len(want))
	}
	report(r, m, procs, res, fmt.Sprintf("convex hull of %d points (%d vertices, verified)", n, total))
	return nil
}

func runClosest(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 50000)
	pts := closest.RandomPoints(n, 5, 1000)
	want := closest.DivideAndConquer(core.Nop, pts)
	blocks := make([][]closest.Pt, procs)
	for i := range blocks {
		blocks[i] = pts[i*n/procs : (i+1)*n/procs]
	}
	pairs := make([]closest.Pair, procs)
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		pairs[p.Rank()] = closest.OneDeepSPMD(p, blocks[p.Rank()])
	})
	if err != nil {
		return err
	}
	if pairs[0].Dist2 != want.Dist2 {
		return fmt.Errorf("closest: %g != sequential %g", pairs[0].Dist2, want.Dist2)
	}
	report(r, m, procs, res, fmt.Sprintf("closest pair of %d points (dist %.5f, verified)", n, math.Sqrt(pairs[0].Dist2)))
	return nil
}

func runFFT(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 256)
	if n&(n-1) != 0 {
		return fmt.Errorf("fft: size must be a power of two")
	}
	var errMax float64
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		g := meshspectral.New2D[complex128](p, n, n, meshspectral.Rows(p.N()), 0)
		g.Fill(func(i, j int) complex128 {
			return complex(math.Sin(float64(i)*0.11)+math.Cos(float64(j)*0.23), 0)
		})
		orig := g.LocalDense()
		f := fft.TwoDSPMD(p, g, false)
		inv := fft.TwoDSPMD(p, f, true)
		back := inv.LocalDense()
		local := 0.0
		for k := range back.Data {
			d := back.Data[k] - orig.Data[k]
			local = math.Max(local, math.Hypot(real(d), imag(d)))
		}
		e := collective.AllReduce(p, local, math.Max)
		if p.Rank() == 0 {
			errMax = e
		}
	})
	if err != nil {
		return err
	}
	if errMax > 1e-9 {
		return fmt.Errorf("fft: roundtrip error %g", errMax)
	}
	report(r, m, procs, res, fmt.Sprintf("2D FFT %dx%d forward+inverse (roundtrip error %.1e)", n, n, errMax))
	return nil
}

func runPoisson(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 65)
	pr := poisson.Manufactured(n, n, 1e-7, 20000)
	var iters int
	var errMax float64
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		g, r := poisson.SolveSPMD(p, pr, meshspectral.NearSquare(p.N()))
		e := poisson.MaxError(g, pr)
		if p.Rank() == 0 {
			iters, errMax = r.Iterations, e
		}
	})
	if err != nil {
		return err
	}
	report(r, m, procs, res, fmt.Sprintf("Poisson %dx%d, %d Jacobi iterations, max error %.2e", n, n, iters, errMax))
	return nil
}

func runCFD(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 128)
	pm := cfd.DefaultParams(n, n/2)
	var t float64
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		s := cfd.NewSPMD(p, pm, meshspectral.NearSquare(p.N()))
		tt := s.Run(100)
		if p.Rank() == 0 {
			t = tt
		}
	})
	if err != nil {
		return err
	}
	report(r, m, procs, res, fmt.Sprintf("CFD shock/interface %dx%d, 100 steps to t=%.4f", n, n/2, t))
	return nil
}

func runFDTD(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 32)
	pm := fdtd.DefaultParams(n)
	var energy float64
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		s := fdtd.NewSPMD(p, pm)
		s.Run(50)
		e := s.Energy()
		if p.Rank() == 0 {
			energy = e
		}
	})
	if err != nil {
		return err
	}
	report(r, m, procs, res, fmt.Sprintf("FDTD cavity %d^3, 50 steps, energy %.4f", n, energy))
	return nil
}

func runSwirl(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 128)
	pm := swirl.DefaultParams(n+1, n)
	var energy float64
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		s := swirl.NewSPMD(p, pm)
		s.Run(50)
		full := meshspectral.GatherGrid(s.U, 0)
		if p.Rank() == 0 {
			energy = swirl.KineticEnergy(full)
		}
	})
	if err != nil {
		return err
	}
	report(r, m, procs, res, fmt.Sprintf("swirl %dx%d, 50 steps, kinetic energy %.4f", n+1, n, energy))
	return nil
}

func runAirshed(r backend.Runner, m *machine.Model, procs, size int) error {
	n := defSize(size, 48)
	pm := airshed.DefaultParams(n, n)
	var nox float64
	res, err := core.Run(r, procs, m, func(p *spmd.Proc) {
		s := airshed.NewSPMD(p, pm, meshspectral.NearSquare(p.N()))
		s.Run(100)
		full := meshspectral.GatherGrid(s.C, 0)
		if p.Rank() == 0 {
			nox = airshed.TotalNOx(full)
		}
	})
	if err != nil {
		return err
	}
	report(r, m, procs, res, fmt.Sprintf("airshed %dx%d, 100 steps, mean NOx %.4f", n, n, nox))
	return nil
}
