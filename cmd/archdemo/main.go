// Command archdemo runs any one of the reproduction's applications once
// on a simulated machine and prints a verification summary. It is a thin
// shell over the arch facade: the application list, per-app defaults, and
// supported backends all come from the arch registry, which every app
// package populates from its init (pulled in via repro/arch/apps).
//
// Usage:
//
//	archdemo -list
//	archdemo -app mergesort -procs 16
//	archdemo -app poisson -procs 9 -size 65
//	archdemo -app fdtd -machine ibm-sp
//	archdemo -app fft -backend real    # run at hardware speed
//	archdemo -app fft -backend dist    # ... across OS processes over TCP
//
// -backend selects the execution substrate: "sim" prices the run on the
// machine model's virtual clock; "real" runs the processes as goroutines
// over native channels and reports wall-clock time; "dist" self-spawns
// one worker OS process per rank (re-executing archdemo itself) and
// routes every message over loopback TCP. The computational result (and
// its verification) is identical on all of them. Interrupting the
// process (Ctrl-C) cancels the run's context and aborts it mid-flight.
//
// archdemo can also serve as a bare dist worker: -worker ADDR joins the
// coordinator listening at ADDR for one world and exits (the self-spawn
// path does this automatically through dist.MaybeWorker).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/arch"
	_ "repro/arch/apps"
	"repro/internal/backend/dist"
)

func main() {
	dist.MaybeWorker()
	var (
		name   = flag.String("app", "", "application to run (see -list)")
		list   = flag.Bool("list", false, "list applications")
		procs  = flag.Int("procs", 8, "simulated process count")
		size   = flag.Int("size", 0, "problem size (0 = per-app default)")
		mach   = flag.String("machine", "ibm-sp", "machine profile: "+strings.Join(arch.MachineNames(), ", "))
		back   = flag.String("backend", "sim", "execution backend: "+strings.Join(arch.BackendNames(), ", "))
		worker = flag.String("worker", "", "serve as a dist worker for the coordinator at this address, then exit")
	)
	flag.Parse()

	if *worker != "" {
		if err := dist.JoinWorld(*worker, ""); err != nil {
			fmt.Fprintf(os.Stderr, "archdemo: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Printf("%-10s %9s  %-10s %s\n", "app", "size", "backends", "description")
		for _, a := range arch.Apps() {
			fmt.Printf("%-10s %9d  %-10s %s\n",
				a.Name, a.DefaultSize, strings.Join(a.BackendNames(), ","), a.Desc)
		}
		return
	}
	model, err := arch.ResolveMachine(*mach)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
		os.Exit(2)
	}
	runner, err := arch.ResolveBackend(*back)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
		os.Exit(2)
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "archdemo: no -app given (use -list)")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	summary, rep, err := arch.RunApp(ctx, *name,
		arch.WithProcs(*procs),
		arch.WithSize(*size),
		arch.WithMachine(model),
		arch.WithBackend(runner),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archdemo: %v\n", err)
		if _, resolveErr := arch.ResolveApp(*name); resolveErr != nil {
			os.Exit(2)
		}
		os.Exit(1)
	}
	fmt.Printf("%s on %s\n", summary, rep)
}
