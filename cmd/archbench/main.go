// Command archbench regenerates the evaluation figures of "Parallel
// Program Archetypes" (Massingill & Chandy, 1999) on simulated machines.
//
// Usage:
//
//	archbench -list
//	archbench -fig 6            # one figure
//	archbench -all              # everything
//	archbench -fig 16 -scale 0.5 -maxprocs 36 -dir /tmp
//	archbench -fig 12 -backend real   # run at hardware speed
//	archbench -json BENCH_fabric.json # record the host-cost baseline
//
// Table figures print speedup tables; image figures (19, 20, 21) write
// PGM files into -dir. -scale shrinks the workloads for quick runs.
// -backend selects the execution substrate: "sim" (the default
// virtual-time simulator, deterministic paper-shaped curves) or "real"
// (goroutines over native channels, wall-clock makespans). Sweeps run
// concurrently through the internal/sched worker pool on either backend;
// interrupting the process (Ctrl-C) cancels the sweep's context and stops
// it mid-flight. Figures dispatch off the figures registry, backends off
// the backend registry — there are no hand-maintained tables here.
//
// -json switches to host-cost mode: instead of simulated figures it runs
// the internal/hostbench suite (the Real* microbenchmarks plus two timed
// figure sweeps) and writes the measurements to the given file. The
// committed BENCH_fabric.json is this mode's output; CI regenerates it
// every run and uploads it as an artifact, so the fabric's host cost has
// a recorded trajectory. With -backend=dist the host-cost mode runs the
// Dist* suite instead — the same fabric micros across worker OS
// processes over loopback TCP (workers self-spawn from this binary) —
// producing the committed BENCH_dist.json:
//
//	archbench -json BENCH_dist.json -backend=dist
//
// -family selects the host-cost family: "micro" (the latency suites
// above); "stream", the streaming subsystem's sustained-throughput
// matrix (elements/sec and msgs/sec at varying batch sizes and farm
// widths across all three backends), producing the committed
// BENCH_stream.json (-scale shrinks the stream element counts for smoke
// runs); or "elastic", the fault-tolerant backend's recovery-latency
// table (wall-clock cost of an injected worker kill versus the
// uninterrupted run, with meter parity re-asserted), producing the
// committed BENCH_elastic.json:
//
//	archbench -json BENCH_stream.json -family stream
//	archbench -json BENCH_elastic.json -family elastic
//
// -compare turns a -json run into a regression gate: after writing the
// fresh report it is checked against the given baseline file, and the
// process exits 1 if any gated micro's ns/op exceeds the baseline by
// more than -slack (default 20%, headroom for host noise). -gate
// restricts the check to named benchmarks — CI gates the dist data plane
// on its two latency-critical micros rather than the noisier
// startup-dominated ones:
//
//	archbench -json fresh.json -backend=dist \
//	    -compare BENCH_dist.json -gate DistPingPong,DistAllReduce
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/arch"
	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/figures"
	"repro/internal/hostbench"
	"repro/internal/obs"
)

func main() {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	var (
		fig      = flag.String("fig", "", "figure ID to run (see -list)")
		all      = flag.Bool("all", false, "run every figure")
		list     = flag.Bool("list", false, "list available figures")
		scale    = flag.Float64("scale", 1, "workload scale factor (1 = paper-shaped default)")
		maxProcs = flag.Int("maxprocs", 0, "cap the simulated processor sweep (0 = figure default)")
		dir      = flag.String("dir", ".", "output directory for image figures")
		csvOut   = flag.Bool("csv", false, "also write <dir>/fig<ID>.csv for table figures")
		backName = flag.String("backend", "sim", "execution backend: "+strings.Join(arch.BackendNames(), ", "))
		jsonOut  = flag.String("json", "", "write the host-cost benchmark baseline to this file and exit")
		family   = flag.String("family", "micro", `host-cost family for -json: "micro" (latency suite), "stream" (sustained throughput matrix), or "elastic" (recovery-latency table)`)
		compare  = flag.String("compare", "", "with -json: baseline BENCH_*.json to gate the fresh micros against (exit 1 on regression)")
		gate     = flag.String("gate", "", "with -compare: comma-separated benchmark names to gate on (default: all shared micros)")
		slack    = flag.Float64("slack", 0.20, "with -compare: allowed fractional slowdown before a micro counts as regressed")
		traceOut = flag.String("trace", "", "record figure runs (first 256) and write Chrome trace-event JSON to this path")
	)
	flag.Parse()

	if *jsonOut != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		collect := hostbench.Collect
		switch *family {
		case "micro":
			if *backName == "dist" {
				collect = hostbench.CollectDist
			}
		case "stream":
			collect = func(ctx context.Context, log io.Writer) (*hostbench.Report, error) {
				return hostbench.CollectStream(ctx, log, *scale)
			}
		case "elastic":
			collect = hostbench.CollectElastic
		default:
			fmt.Fprintf(os.Stderr, "archbench: unknown family %q (have: elastic, micro, stream)\n", *family)
			os.Exit(2)
		}
		rep, err := collect(ctx, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "archbench: host benchmarks: %v\n", err)
			os.Exit(1)
		}
		out, err := os.Create(*jsonOut)
		if err == nil {
			err = rep.WriteJSON(out)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "archbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		if *compare != "" {
			in, err := os.Open(*compare)
			var base *hostbench.Report
			if err == nil {
				base, err = hostbench.ReadJSON(in)
				in.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "archbench: %v\n", err)
				os.Exit(1)
			}
			var names []string
			if *gate != "" {
				names = strings.Split(*gate, ",")
			}
			if err := hostbench.CompareMicros(rep, base, names, *slack); err != nil {
				fmt.Fprintf(os.Stderr, "archbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("no regressions against %s\n", *compare)
		}
		return
	}

	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return
	}

	back, err := arch.ResolveBackend(*backName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "archbench: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var col *obs.Collector
	if *traceOut != "" {
		col = obs.NewCollector()
		ctx = obs.NewContext(ctx, col)
	}

	opts := figures.Options{Ctx: ctx, Out: os.Stdout, Dir: *dir, Scale: *scale, MaxProcs: *maxProcs, Backend: back}
	run := func(f figures.Figure) {
		res, err := f.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "archbench: figure %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		if *csvOut && res != nil && len(res.Curves) > 0 {
			path := filepath.Join(*dir, "fig"+f.ID+".csv")
			out, err := os.Create(path)
			if err == nil {
				err = core.WriteCSV(out, res.Curves...)
				out.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "archbench: csv for figure %s: %v\n", f.ID, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}

	switch {
	case *all:
		for _, f := range figures.All() {
			run(f)
		}
	case *fig != "":
		f, ok := figures.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "archbench: unknown figure %q (use -list)\n", *fig)
			os.Exit(2)
		}
		run(f)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if col != nil {
		if err := col.WriteChromeFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "archbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in ui.perfetto.dev)\n", *traceOut)
	}
}
