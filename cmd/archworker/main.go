// Command archworker is a standalone worker for the dist and elastic
// execution backends: a message endpoint run as its own OS process.
//
// Both backends usually self-spawn workers by re-executing the
// coordinator's binary (any binary whose main calls dist.MaybeWorker and
// elastic.MaybeWorker supports that, including archdemo and archbench).
// archworker is the standalone alternative — workers started ahead of
// time, possibly under their own supervisor or on another host — and a
// minimal join client for debugging:
//
//	archworker -listen 127.0.0.1:9101            # serve dist worlds until killed
//	archworker -join  127.0.0.1:54321            # join one dist world, then exit
//	archworker -elastic -join 127.0.0.1:54321    # serve an elastic coordinator
//
// A listening worker serves each incoming coordinator connection as one
// world membership (concurrently, so overlapping runs work) and keeps
// listening; a coordinator attaches with the dist backend's WithWorkers
// option, e.g. dist.New(dist.WithWorkers("127.0.0.1:9101", ...)).
//
// Joins retry their initial dial with exponential backoff and jitter, so
// a worker launched moments before its coordinator attaches instead of
// dying on the first connection-refused. An elastic join additionally
// reconnects after a lost coordinator connection, rejoining the world as
// a fresh worker (the coordinator reschedules whatever it hosted); it can
// be started mid-run and immediately pulls queued rank tasks. The world
// token travels in -token or the backend's token environment variable.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/backend/dist"
	"repro/internal/elastic"
)

func main() {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	var (
		listen    = flag.String("listen", "", "serve dist worlds for coordinators that dial this address")
		join      = flag.String("join", "", "join the coordinator at this address for one world, then exit")
		useElast  = flag.Bool("elastic", false, "join an elastic coordinator instead of a dist one")
		joinToken = flag.String("token", "", "world token for -elastic -join (default: ARCHELASTIC_TOKEN)")
	)
	flag.Parse()

	switch {
	case *listen != "" && *join == "" && !*useElast:
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "archworker: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("archworker: serving dist worlds on %s\n", ln.Addr())
		if err := dist.Serve(ln); err != nil {
			fmt.Fprintf(os.Stderr, "archworker: %v\n", err)
			os.Exit(1)
		}
	case *join != "" && *listen == "" && !*useElast:
		if err := dist.JoinWorld(*join, ""); err != nil {
			fmt.Fprintf(os.Stderr, "archworker: %v\n", err)
			os.Exit(1)
		}
	case *join != "" && *listen == "" && *useElast:
		token := *joinToken
		if token == "" {
			token = os.Getenv("ARCHELASTIC_TOKEN")
		}
		if err := elastic.Join(context.Background(), *join, token); err != nil {
			fmt.Fprintf(os.Stderr, "archworker: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "archworker: exactly one of -listen or -join is required (-elastic applies to -join)")
		flag.Usage()
		os.Exit(2)
	}
}
