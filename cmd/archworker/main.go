// Command archworker is a standalone worker for the dist execution
// backend: one rank's message endpoint, run as its own OS process.
//
// The dist backend usually self-spawns workers by re-executing the
// coordinator's binary (any binary whose main calls dist.MaybeWorker
// supports that, including archdemo and archbench). archworker is the
// standalone alternative for attach mode — workers started ahead of time,
// possibly under their own supervisor or on another host — and a minimal
// join client for debugging:
//
//	archworker -listen 127.0.0.1:9101     # serve worlds until killed
//	archworker -join  127.0.0.1:54321     # join one world, then exit
//
// A listening worker serves each incoming coordinator connection as one
// world membership (concurrently, so overlapping runs work) and keeps
// listening; a coordinator attaches with the dist backend's WithWorkers
// option, e.g. dist.New(dist.WithWorkers("127.0.0.1:9101", ...)).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/backend/dist"
)

func main() {
	dist.MaybeWorker()
	var (
		listen = flag.String("listen", "", "serve worlds for coordinators that dial this address")
		join   = flag.String("join", "", "join the coordinator at this address for one world, then exit")
	)
	flag.Parse()

	switch {
	case *listen != "" && *join == "":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "archworker: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("archworker: serving dist worlds on %s\n", ln.Addr())
		if err := dist.Serve(ln); err != nil {
			fmt.Fprintf(os.Stderr, "archworker: %v\n", err)
			os.Exit(1)
		}
	case *join != "" && *listen == "":
		if err := dist.JoinWorld(*join, ""); err != nil {
			fmt.Fprintf(os.Stderr, "archworker: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "archworker: exactly one of -listen or -join is required")
		flag.Usage()
		os.Exit(2)
	}
}
