package hostbench

// The elastic family measures what fault tolerance costs: the
// recovery-latency table behind EXPERIMENTS.md's "elastic" section. Each
// scenario runs the same deterministic one-deep mergesort world on the
// elastic backend, once uninterrupted and once per injected kill, and
// records wall-clock seconds plus the recovery activity — so the
// overhead column is re-execution + re-lease cost, isolated from the
// workload itself. Scenarios also re-assert the parity invariant
// (identical message/byte meters) so a regression in replay suppression
// fails the benchmark rather than skewing its numbers.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// RecoveryResult is one elastic recovery-latency scenario's measurement.
type RecoveryResult struct {
	// Scenario names the run: "uninterrupted" or "kill-rank<R>@epoch<E>".
	Scenario string `json:"scenario"`
	// Procs is the world size.
	Procs int `json:"procs"`
	// Seconds is the run's wall-clock time (median of Rounds runs).
	Seconds float64 `json:"seconds"`
	// Restarts is the number of rank re-executions the run performed.
	Restarts int `json:"restarts"`
	// OverheadPct is the wall-clock overhead versus the uninterrupted
	// scenario, in percent (0 for the uninterrupted row itself).
	OverheadPct float64 `json:"overhead_pct"`
}

// elasticKill is one injected-kill scenario of the recovery table.
type elasticKill struct {
	rank, epoch int
}

// elasticRounds is how many times each scenario runs; the median lands
// in the report so one scheduler hiccup cannot skew the table.
const elasticRounds = 3

// CollectElastic measures the elastic backend's recovery latency: the
// committed BENCH_elastic.json baseline and the chaos CI job's artifact.
// Workers run as in-process goroutines over loopback TCP so the kill
// cost measured is the substrate's (detection + re-lease + replay), not
// process-spawn noise.
func CollectElastic(ctx context.Context, log io.Writer) (*Report, error) {
	if log == nil {
		log = io.Discard
	}
	rep := &Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	const np = 4
	base, err := runElasticScenario(ctx, np, nil)
	if err != nil {
		return nil, fmt.Errorf("hostbench: elastic uninterrupted: %w", err)
	}
	base.Scenario = "uninterrupted"
	logRecovery(log, base)
	rep.Recovery = append(rep.Recovery, base)

	for _, k := range []elasticKill{{rank: 1, epoch: 0}, {rank: 0, epoch: 2}} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := runElasticScenario(ctx, np, &k)
		if err != nil {
			return nil, fmt.Errorf("hostbench: elastic kill rank %d epoch %d: %w", k.rank, k.epoch, err)
		}
		r.Scenario = fmt.Sprintf("kill-rank%d@epoch%d", k.rank, k.epoch)
		if base.Seconds > 0 {
			r.OverheadPct = (r.Seconds - base.Seconds) / base.Seconds * 100
		}
		logRecovery(log, r)
		rep.Recovery = append(rep.Recovery, r)
	}
	return rep, nil
}

func logRecovery(log io.Writer, r RecoveryResult) {
	fmt.Fprintf(log, "elastic %-22s P=%d %10.4fs %3d restarts %+7.1f%%\n",
		r.Scenario, r.Procs, r.Seconds, r.Restarts, r.OverheadPct)
}

// runElasticScenario runs the recovery workload elasticRounds times on a
// fresh elastic world (with the given kill injected, or none) and
// reports the median wall-clock time. Every round re-checks the parity
// invariant: killed runs must move exactly as many messages and bytes as
// the uninterrupted ones.
func runElasticScenario(ctx context.Context, np int, kill *elasticKill) (RecoveryResult, error) {
	data := sortapp.RandomInts(1<<15, 7)
	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	blocks := sortapp.BlockDistribute(data, np)
	model := machine.IBMSP()

	var wantMsgs, wantBytes int64
	ref, err := core.Simulate(np, model, func(p *spmd.Proc) {
		onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		return RecoveryResult{}, err
	}
	wantMsgs, wantBytes = ref.Msgs, ref.Bytes

	secs := make([]float64, 0, elasticRounds)
	var restarts int
	for round := 0; round < elasticRounds; round++ {
		if err := ctx.Err(); err != nil {
			return RecoveryResult{}, err
		}
		var inj *faultinject.Injector
		opts := []elastic.Option{
			elastic.WithLocalWorkers(false),
			elastic.WithWorkerCount(2),
		}
		var stats elastic.Stats
		opts = append(opts, elastic.WithObserver(func(s elastic.Stats) { stats = s }))
		if kill != nil {
			inj = faultinject.New(faultinject.Rule{
				Point: "elastic.rank.op", Rank: kill.rank, Epoch: kill.epoch,
				Action: faultinject.Kill,
			})
			opts = append(opts, elastic.WithInjector(inj))
		}
		start := time.Now()
		res, err := core.Run(ctx, elastic.New(opts...), np, model, func(p *spmd.Proc) {
			onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		})
		if err != nil {
			return RecoveryResult{}, err
		}
		if res.Msgs != wantMsgs || res.Bytes != wantBytes {
			return RecoveryResult{}, fmt.Errorf("meter parity broken: %d msgs/%d bytes, want %d/%d",
				res.Msgs, res.Bytes, wantMsgs, wantBytes)
		}
		if kill != nil {
			if fired := inj.Fired("elastic.rank.op"); fired != 1 {
				return RecoveryResult{}, fmt.Errorf("kill fired %d times, want 1", fired)
			}
			if stats.Restarts < 1 {
				return RecoveryResult{}, fmt.Errorf("kill caused no restarts: %+v", stats)
			}
		}
		secs = append(secs, time.Since(start).Seconds())
		restarts += stats.Restarts
	}
	return RecoveryResult{Procs: np, Seconds: median(secs), Restarts: restarts / elasticRounds}, nil
}

// median of a small measurement set (insertion sort; len <= elasticRounds).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
