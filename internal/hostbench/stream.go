package hostbench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
	"repro/internal/stream"
)

// StreamResult is one sustained-throughput measurement: a fixed element
// count pushed through a one-farm stream pipeline, reported as
// elements/sec and msgs/sec of wall clock. Unlike the latency micros
// (ns per round trip), these measure the streaming subsystem's steady
// cruise: how batch size amortizes per-message cost and how farm width
// scales it, on each substrate.
type StreamResult struct {
	Name        string  `json:"name"`
	Backend     string  `json:"backend"`
	Workers     int     `json:"workers"`
	Batch       int     `json:"batch"`
	Elems       int64   `json:"elems"`
	Seconds     float64 `json:"seconds"`
	ElemsPerSec float64 `json:"elems_per_sec"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	Msgs        int64   `json:"msgs"`
	Bytes       int64   `json:"bytes"`
}

// streamSpec is one cell of the throughput matrix.
type streamSpec struct {
	backend string
	workers int
	batch   int
	elems   int64
}

// streamSpecs is the committed BENCH_stream.json matrix: batch size ×
// farm width per backend. Element counts shrink where a cell is
// genuinely expensive (dist at batch 1 pays two ~40µs loopback hops per
// element); rates normalize across counts. The dist pair (batch 1 vs
// 64 at the same width) is the headline comparison: batching must beat
// batch-size-1 by roughly the per-message amortization factor.
func streamSpecs() []streamSpec {
	return []streamSpec{
		{"sim", 4, 64, 1 << 16},
		{"real", 1, 1, 1 << 14},
		{"real", 1, 64, 1 << 17},
		{"real", 4, 1, 1 << 14},
		{"real", 4, 64, 1 << 17},
		{"real", 4, 512, 1 << 17},
		{"dist", 1, 1, 1 << 12},
		{"dist", 1, 64, 1 << 17},
		{"dist", 4, 1, 1 << 12},
		{"dist", 4, 64, 1 << 17},
	}
}

// streamCredits is the flow-control window every throughput cell runs
// under: deep enough not to throttle a healthy pipeline, bounded so the
// measurement exercises the credit protocol it ships with.
const streamCredits = 8

// scalePipeline is the synthetic workload: scalar elements through one
// farm stage that doubles them — all fabric, no compute, so the
// measurement isolates the streaming machinery itself.
func scalePipeline(workers int) *stream.Pipeline[float64] {
	return &stream.Pipeline[float64]{
		Name:  "scale",
		Width: 1,
		Source: func(c spmd.Comm, i int64, dst []float64) []float64 {
			return append(dst, float64(i))
		},
		Stages: []stream.Stage[float64]{{
			Name:    "scale",
			Workers: workers,
			Fn: func(c spmd.Comm, _ any, in []float64) []float64 {
				for k := range in {
					in[k] *= 2
				}
				return in
			},
		}},
	}
}

// streamRunner resolves a throughput cell's backend name.
func streamRunner(name string) (backend.Runner, error) {
	switch name {
	case "sim":
		return backend.Sim(), nil
	case "real":
		return backend.Real(), nil
	case "dist":
		return dist.New(), nil
	}
	return nil, fmt.Errorf("hostbench: unknown stream backend %q", name)
}

// CollectStream measures the sustained-throughput matrix and returns it
// as a Report (Streams only); its output is the committed
// BENCH_stream.json baseline. scale (0 < scale <= 1) shrinks the
// element counts for quick smoke runs; 0 means 1. Dist cells self-spawn
// workers, so the caller's binary must support it (archbench does).
func CollectStream(ctx context.Context, log io.Writer, scale float64) (*Report, error) {
	if log == nil {
		log = io.Discard
	}
	if scale <= 0 {
		scale = 1
	}
	model := machine.IBMSP()
	rep := &Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, sp := range streamSpecs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := streamRunner(sp.backend)
		if err != nil {
			return nil, err
		}
		elems := int64(float64(sp.elems) * scale)
		if elems < 1 {
			elems = 1
		}
		pl := scalePipeline(sp.workers)
		cfg := stream.Config{Elems: elems, Batch: sp.batch, Credits: streamCredits}
		var got int
		start := time.Now()
		res, err := core.Run(ctx, r, pl.Procs(), model, func(p *spmd.Proc) {
			if out := stream.Run(p, pl, cfg); out != nil {
				got = len(out)
			}
		})
		secs := time.Since(start).Seconds()
		name := fmt.Sprintf("Stream/%s/w%d/b%d", sp.backend, sp.workers, sp.batch)
		if err != nil {
			return nil, fmt.Errorf("hostbench: %s: %w", name, err)
		}
		if int64(got) != elems {
			return nil, fmt.Errorf("hostbench: %s: sink collected %d elems, want %d", name, got, elems)
		}
		sr := StreamResult{
			Name: name, Backend: sp.backend, Workers: sp.workers, Batch: sp.batch,
			Elems: elems, Seconds: secs,
			ElemsPerSec: float64(elems) / secs,
			MsgsPerSec:  float64(res.Msgs) / secs,
			Msgs:        res.Msgs, Bytes: res.Bytes,
		}
		fmt.Fprintf(log, "%-22s %12.0f elems/s %10.0f msgs/s %10d msgs %8.3fs\n",
			sr.Name, sr.ElemsPerSec, sr.MsgsPerSec, sr.Msgs, sr.Seconds)
		rep.Streams = append(rep.Streams, sr)
	}
	return rep, nil
}
