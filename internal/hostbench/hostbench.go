// Package hostbench measures the reproduction's host cost — real
// nanoseconds and allocations, not simulated seconds — so the message
// fabric and the compute kernels have a recorded performance trajectory.
//
// The package has two halves. The Micro list defines the Real*
// microbenchmarks as ordinary testing.B bodies; the repository's
// bench_test.go runs them under `go test -bench` and cmd/archbench runs
// the same bodies through testing.Benchmark for its -json mode, so the
// numbers in BENCH_fabric.json and the numbers a developer sees locally
// come from one source of truth. Collect assembles a Report (micro
// results plus wall-clock timings of two figure sweeps) and WriteJSON
// serializes it; CI uploads the file as the run's perf artifact.
package hostbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// Micro is one host-cost microbenchmark. The body returns an error
// instead of calling b.Fatal: under `go test` the exported Bench*
// wrappers turn errors into test failures, while Collect — which drives
// the same bodies through testing.Benchmark inside a plain binary,
// where b.Fatal would dereference a nil test context — reports them as
// ordinary errors.
type Micro struct {
	Name string
	body func(b *testing.B) error
}

// Micros returns the Real* microbenchmark suite in report order.
func Micros() []Micro {
	return []Micro{
		{"RealSequentialMergesort", benchSequentialMergesort},
		{"RealOneDeepWorld", benchOneDeepWorld},
		{"RealAllReduce", benchAllReduce},
		{"RealWorldConstruction256", benchWorldConstruction256},
		{"RealPingPong", benchRealPingPong},
	}
}

// DistMicros returns the Dist* suite: the distributed backend's
// equivalents of the Real* fabric micros, run with self-spawned
// localhost worker processes (unix-domain control sockets) on a pooled
// runner — iterations after the first reuse warm worker processes, so
// the numbers measure the message fabric and the per-world handshake
// rather than process spawns. World sizes are smaller than the Real*
// ones; the ping-pong micro is the directly comparable pair (same
// program, same world size, substrate swapped), which is what the
// loopback-vs-shared-memory latency table in EXPERIMENTS.md is built
// from.
func DistMicros() []Micro {
	return []Micro{
		{"DistWorldStartup4", benchDistWorldStartup},
		{"DistOneDeepWorld", benchDistOneDeepWorld},
		{"DistAllReduce", benchDistAllReduce},
		{"DistPingPong", benchDistPingPong},
	}
}

// mustBench adapts an error-returning body to the `go test` driver.
func mustBench(b *testing.B, body func(b *testing.B) error) {
	if err := body(b); err != nil {
		b.Fatal(err)
	}
}

// BenchSequentialMergesort measures the real sequential mergesort kernel
// on 2^17 random int32 values.
func BenchSequentialMergesort(b *testing.B) { mustBench(b, benchSequentialMergesort) }

func benchSequentialMergesort(b *testing.B) error {
	data := sortapp.RandomInts(1<<17, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sortapp.MergeSort(core.Nop, data)
	}
	return nil
}

// BenchOneDeepWorld measures the end-to-end host cost of one simulated
// 16-process one-deep mergesort world (goroutines + fabric + real
// sorting).
func BenchOneDeepWorld(b *testing.B) { mustBench(b, benchOneDeepWorld) }

func benchOneDeepWorld(b *testing.B) error {
	data := sortapp.RandomInts(1<<16, 6)
	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	blocks := sortapp.BlockDistribute(data, 16)
	model := machine.IntelDelta()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(16, model, func(p *spmd.Proc) {
			onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		}); err != nil {
			return err
		}
	}
	return nil
}

// BenchAllReduce measures the host cost of the recursive-doubling
// all-reduce across 32 goroutine processes.
func BenchAllReduce(b *testing.B) { mustBench(b, benchAllReduce) }

func benchAllReduce(b *testing.B) error {
	model := machine.IBMSP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(32, model, func(p *spmd.Proc) {
			collective.AllReduce(p, float64(p.Rank()), math.Max)
		}); err != nil {
			return err
		}
	}
	return nil
}

// BenchWorldConstruction256 measures building and tearing down a
// 256-process world whose processes do nothing: pure fabric construction
// cost, the term that used to dominate large sweeps.
func BenchWorldConstruction256(b *testing.B) { mustBench(b, benchWorldConstruction256) }

func benchWorldConstruction256(b *testing.B) error {
	model := machine.IBMSP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(256, model, func(p *spmd.Proc) {}); err != nil {
			return err
		}
	}
	return nil
}

// pingPongRounds is the number of send/recv round trips one ping-pong
// benchmark iteration performs; per-message one-way latency is
// ns_per_op / (2 * pingPongRounds).
const pingPongRounds = 1000

// benchPingPong runs a 2-process ping-pong of a one-word payload on the
// given backend: the standard latency microbenchmark, identical program
// on every substrate.
func benchPingPong(b *testing.B, r backend.Runner) error {
	model := machine.IBMSP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), r, 2, model, func(p *spmd.Proc) {
			peer := 1 - p.Rank()
			msg := []float64{1}
			for round := 0; round < pingPongRounds; round++ {
				if p.Rank() == 0 {
					spmd.SendT(p, peer, 1, msg)
					spmd.Recv[[]float64](p, peer, 1)
				} else {
					spmd.Recv[[]float64](p, peer, 1)
					spmd.SendT(p, peer, 1, msg)
				}
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// BenchRealPingPong measures per-message latency on the shared-memory
// backend (1000 round trips per op).
func BenchRealPingPong(b *testing.B) { mustBench(b, benchRealPingPong) }

func benchRealPingPong(b *testing.B) error { return benchPingPong(b, backend.Real()) }

// BenchDistPingPong measures per-message latency across worker processes
// over loopback (1000 round trips per op, pooled-world acquisition
// included).
func BenchDistPingPong(b *testing.B) { mustBench(b, benchDistPingPong) }

func benchDistPingPong(b *testing.B) error {
	return benchPingPong(b, dist.New(dist.WithWorkerPool()))
}

// BenchDistWorldStartup measures acquiring, handshaking, and releasing a
// 4-worker dist world whose processes do nothing: the distributed
// analogue of RealWorldConstruction256 (pure substrate cost). With the
// worker pool, iterations after the first measure the warm path — a
// hello/assign/ready handshake per worker instead of a process spawn.
func BenchDistWorldStartup(b *testing.B) { mustBench(b, benchDistWorldStartup) }

func benchDistWorldStartup(b *testing.B) error {
	model := machine.IBMSP()
	r := dist.New(dist.WithWorkerPool())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), r, 4, model, func(p *spmd.Proc) {}); err != nil {
			return err
		}
	}
	return nil
}

// BenchDistOneDeepWorld measures an end-to-end 4-process one-deep
// mergesort with every message crossing process boundaries (the
// distributed equivalent of RealOneDeepWorld, at a smaller world and
// input because each iteration spawns real processes).
func BenchDistOneDeepWorld(b *testing.B) { mustBench(b, benchDistOneDeepWorld) }

func benchDistOneDeepWorld(b *testing.B) error {
	data := sortapp.RandomInts(1<<14, 6)
	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	blocks := sortapp.BlockDistribute(data, 4)
	model := machine.IntelDelta()
	r := dist.New(dist.WithWorkerPool())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), r, 4, model, func(p *spmd.Proc) {
			onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		}); err != nil {
			return err
		}
	}
	return nil
}

// BenchDistAllReduce measures the recursive-doubling all-reduce across 8
// worker processes over loopback (the distributed equivalent of
// RealAllReduce's 32-goroutine world).
func BenchDistAllReduce(b *testing.B) { mustBench(b, benchDistAllReduce) }

func benchDistAllReduce(b *testing.B) error {
	model := machine.IBMSP()
	r := dist.New(dist.WithWorkerPool())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), r, 8, model, func(p *spmd.Proc) {
			collective.AllReduce(p, float64(p.Rank()), math.Max)
		}); err != nil {
			return err
		}
	}
	return nil
}

// sweepSpec is one wall-clock figure sweep of the report: a figure run
// end to end through the concurrent scheduler at reduced scale.
type sweepSpec struct {
	figure   string
	scale    float64
	maxProcs int
}

func sweepSpecs() []sweepSpec {
	return []sweepSpec{
		{figure: "6", scale: 0.25, maxProcs: 64},
		{figure: "15", scale: 0.5, maxProcs: 36},
	}
}

// MicroResult is one microbenchmark's measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepResult is one figure sweep's wall-clock measurement.
type SweepResult struct {
	Figure   string  `json:"figure"`
	Scale    float64 `json:"scale"`
	MaxProcs int     `json:"max_procs"`
	Seconds  float64 `json:"seconds"`
}

// Report is one host-cost baseline as serialized to the committed
// BENCH_*.json files: latency micros and figure sweeps
// (BENCH_fabric.json, BENCH_dist.json), the streaming throughput matrix
// (BENCH_stream.json), or the elastic recovery-latency table
// (BENCH_elastic.json), whichever the collector filled.
type Report struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Micros     []MicroResult    `json:"micros,omitempty"`
	Sweeps     []SweepResult    `json:"sweeps,omitempty"`
	Streams    []StreamResult   `json:"streams,omitempty"`
	Recovery   []RecoveryResult `json:"recovery,omitempty"`
}

// Collect runs the default microbenchmark suite through
// testing.Benchmark and times the figure sweeps, reporting progress
// lines to log (nil suppresses them). Cancelling ctx stops between
// measurements and aborts a sweep in flight.
func Collect(ctx context.Context, log io.Writer) (*Report, error) {
	return collectSuite(ctx, log, Micros(), sweepSpecs())
}

// CollectDist runs the distributed-backend suite (see DistMicros); its
// output is the committed BENCH_dist.json baseline. The caller's binary
// must support dist self-spawn (main calls dist.MaybeWorker) — archbench
// does. No figure sweeps: dist figure sweeps would measure process spawn
// rates, not the fabric.
func CollectDist(ctx context.Context, log io.Writer) (*Report, error) {
	return collectSuite(ctx, log, DistMicros(), nil)
}

// microRounds is how many times collectSuite measures each micro,
// keeping the fastest round. Host interference (scheduler, cgroup
// throttling, co-tenant load) is strictly additive on these latency
// micros, so the minimum is the least-noisy estimator — it is what lets
// the CI overhead gates run at tight slack instead of absorbing
// run-to-run noise into the threshold.
const microRounds = 5

func collectSuite(ctx context.Context, log io.Writer, micros []Micro, sweeps []sweepSpec) (*Report, error) {
	if log == nil {
		log = io.Discard
	}
	rep := &Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, m := range micros {
		var mr MicroResult
		for round := 0; round < microRounds; round++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// testing.Benchmark has no failure channel outside a test
			// binary (b.Fatal would nil-deref), so the body's error is
			// captured on the side: once set, remaining calibration
			// rounds return immediately and the error surfaces after
			// Benchmark returns.
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				if benchErr != nil {
					return
				}
				benchErr = m.body(b)
			})
			if benchErr != nil {
				return nil, fmt.Errorf("hostbench: %s: %w", m.Name, benchErr)
			}
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if round == 0 || ns < mr.NsPerOp {
				mr = MicroResult{
					Name:        m.Name,
					NsPerOp:     ns,
					AllocsPerOp: int64(res.AllocsPerOp()),
					BytesPerOp:  int64(res.AllocedBytesPerOp()),
				}
			}
		}
		fmt.Fprintf(log, "%-26s %12.0f ns/op %8d B/op %6d allocs/op\n",
			mr.Name, mr.NsPerOp, mr.BytesPerOp, mr.AllocsPerOp)
		rep.Micros = append(rep.Micros, mr)
	}
	for _, s := range sweeps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f, ok := figures.ByID(s.figure)
		if !ok {
			return nil, fmt.Errorf("hostbench: figure %s not registered", s.figure)
		}
		opts := figures.Options{
			Ctx: ctx, Out: io.Discard, Scale: s.scale,
			MaxProcs: s.maxProcs, Backend: backend.Sim(),
		}
		start := time.Now()
		if _, err := f.Run(opts); err != nil {
			return nil, fmt.Errorf("hostbench: figure %s sweep: %w", s.figure, err)
		}
		sr := SweepResult{Figure: s.figure, Scale: s.scale, MaxProcs: s.maxProcs, Seconds: time.Since(start).Seconds()}
		fmt.Fprintf(log, "figure %-3s sweep (scale %g, maxprocs %d) %10.3fs\n",
			sr.Figure, sr.Scale, sr.MaxProcs, sr.Seconds)
		rep.Sweeps = append(rep.Sweeps, sr)
	}
	return rep, nil
}

// WriteJSON serializes the report with stable indentation (the file is
// committed and diffed).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
