package hostbench

import (
	"context"
	"math"
	"testing"

	"repro/internal/backend"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/spmd"
)

// These benchmarks price the flight recorder itself: the same fabric
// micros with recording enabled (a collector in the run's context) and
// disabled (the committed-baseline configuration, nil recorder). The
// disabled variants are redundant with RealPingPong/RealAllReduce on
// purpose — running both side by side is what makes the enabled delta
// readable:
//
//	go test ./internal/hostbench -bench 'Trace' -run '^$'
//
// The disabled path is gated in CI through archbench -compare; the
// enabled path is informational (tracing is opt-in per run).

func benchTracedPingPong(b *testing.B, traced bool) error {
	model := machine.IBMSP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		if traced {
			ctx = obs.NewContext(ctx, obs.NewCollector())
		}
		if _, err := core.Run(ctx, backend.Real(), 2, model, func(p *spmd.Proc) {
			peer := 1 - p.Rank()
			msg := []float64{1}
			for round := 0; round < pingPongRounds; round++ {
				if p.Rank() == 0 {
					spmd.SendT(p, peer, 1, msg)
					spmd.Recv[[]float64](p, peer, 1)
				} else {
					spmd.Recv[[]float64](p, peer, 1)
					spmd.SendT(p, peer, 1, msg)
				}
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

func benchTracedAllReduce(b *testing.B, traced bool) error {
	model := machine.IBMSP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		if traced {
			ctx = obs.NewContext(ctx, obs.NewCollector())
		}
		if _, err := core.Run(ctx, backend.Real(), 32, model, func(p *spmd.Proc) {
			collective.AllReduce(p, float64(p.Rank()), math.Max)
		}); err != nil {
			return err
		}
	}
	return nil
}

func BenchmarkTraceOffPingPong(b *testing.B) {
	mustBench(b, func(b *testing.B) error { return benchTracedPingPong(b, false) })
}

func BenchmarkTraceOnPingPong(b *testing.B) {
	mustBench(b, func(b *testing.B) error { return benchTracedPingPong(b, true) })
}

func BenchmarkTraceOffAllReduce(b *testing.B) {
	mustBench(b, func(b *testing.B) error { return benchTracedAllReduce(b, false) })
}

func BenchmarkTraceOnAllReduce(b *testing.B) {
	mustBench(b, func(b *testing.B) error { return benchTracedAllReduce(b, true) })
}
