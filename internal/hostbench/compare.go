package hostbench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReadJSON parses a report previously serialized by WriteJSON (a
// committed BENCH_*.json baseline).
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("hostbench: parsing baseline: %w", err)
	}
	return &rep, nil
}

// CompareMicros checks a fresh report's latency micros against a
// baseline: a benchmark regresses when its ns/op exceeds the baseline's
// by more than slack (0.20 = 20% headroom for host noise). names
// restricts the comparison to those benchmarks — the regression gate for
// a suite whose other entries are too noisy to gate on — and empty names
// compares every benchmark the two reports share. A named benchmark
// missing from either report is an error: a gate that silently compares
// nothing is worse than no gate. Improvements never fail, whatever their
// size; the returned error aggregates every regression so a failing run
// reports the whole picture at once.
func CompareMicros(fresh, base *Report, names []string, slack float64) error {
	baseline := make(map[string]MicroResult, len(base.Micros))
	for _, m := range base.Micros {
		baseline[m.Name] = m
	}
	if len(names) == 0 {
		for _, m := range fresh.Micros {
			if _, shared := baseline[m.Name]; shared {
				names = append(names, m.Name)
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("hostbench: baseline and fresh report share no benchmarks")
		}
	}
	current := make(map[string]MicroResult, len(fresh.Micros))
	for _, m := range fresh.Micros {
		current[m.Name] = m
	}
	var regressions []string
	for _, name := range names {
		b, ok := baseline[name]
		if !ok {
			return fmt.Errorf("hostbench: benchmark %q not in baseline", name)
		}
		f, ok := current[name]
		if !ok {
			return fmt.Errorf("hostbench: benchmark %q not in fresh report", name)
		}
		if limit := b.NsPerOp * (1 + slack); f.NsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s regressed: %.0f ns/op vs baseline %.0f ns/op (limit %.0f at %+.0f%% slack)",
				name, f.NsPerOp, b.NsPerOp, limit, slack*100))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("hostbench: %s", strings.Join(regressions, "; "))
	}
	return nil
}
