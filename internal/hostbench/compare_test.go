package hostbench

import (
	"strings"
	"testing"
)

func report(pairs ...any) *Report {
	r := &Report{}
	for i := 0; i < len(pairs); i += 2 {
		r.Micros = append(r.Micros, MicroResult{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareMicros(t *testing.T) {
	base := report("DistPingPong", 100.0, "DistAllReduce", 50.0, "DistOneDeepWorld", 10.0)

	t.Run("within-slack-passes", func(t *testing.T) {
		fresh := report("DistPingPong", 115.0, "DistAllReduce", 55.0)
		if err := CompareMicros(fresh, base, []string{"DistPingPong", "DistAllReduce"}, 0.20); err != nil {
			t.Errorf("within slack: %v", err)
		}
	})
	t.Run("improvement-passes", func(t *testing.T) {
		fresh := report("DistPingPong", 10.0)
		if err := CompareMicros(fresh, base, []string{"DistPingPong"}, 0.20); err != nil {
			t.Errorf("improvement: %v", err)
		}
	})
	t.Run("regression-fails-with-every-offender", func(t *testing.T) {
		fresh := report("DistPingPong", 130.0, "DistAllReduce", 80.0)
		err := CompareMicros(fresh, base, []string{"DistPingPong", "DistAllReduce"}, 0.20)
		if err == nil {
			t.Fatal("regression passed the gate")
		}
		for _, name := range []string{"DistPingPong", "DistAllReduce"} {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %q omits regressed %s", err, name)
			}
		}
	})
	t.Run("empty-names-compares-intersection", func(t *testing.T) {
		fresh := report("DistPingPong", 99.0, "DistSomethingNew", 1.0, "DistOneDeepWorld", 100.0)
		err := CompareMicros(fresh, base, nil, 0.20)
		if err == nil || !strings.Contains(err.Error(), "DistOneDeepWorld") {
			t.Errorf("err = %v, want DistOneDeepWorld regression", err)
		}
	})
	t.Run("missing-from-baseline-errors", func(t *testing.T) {
		fresh := report("DistSomethingNew", 1.0)
		if err := CompareMicros(fresh, base, []string{"DistSomethingNew"}, 0.20); err == nil {
			t.Error("gating on a benchmark absent from the baseline must error")
		}
	})
	t.Run("missing-from-fresh-errors", func(t *testing.T) {
		fresh := report("DistPingPong", 99.0)
		if err := CompareMicros(fresh, base, []string{"DistAllReduce"}, 0.20); err == nil {
			t.Error("gating on a benchmark absent from the fresh report must error")
		}
	})
	t.Run("no-shared-benchmarks-errors", func(t *testing.T) {
		fresh := report("Other", 1.0)
		if err := CompareMicros(fresh, base, nil, 0.20); err == nil {
			t.Error("disjoint reports must error rather than gate nothing")
		}
	})
}

func TestReadJSONRoundTrip(t *testing.T) {
	rep := report("DistPingPong", 100.0)
	rep.GoVersion, rep.GOMAXPROCS = "go-test", 1
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.GoVersion != "go-test" || len(got.Micros) != 1 || got.Micros[0].NsPerOp != 100 {
		t.Errorf("round trip mangled the report: %+v", got)
	}
}
