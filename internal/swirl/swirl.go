// Package swirl implements the incompressible-flow application of §3.7.3:
// an axisymmetric swirling flow, periodic in the axial direction, solved
// with a Fourier spectral method in the periodic direction and
// finite differences in the radial direction, on the 2D spectral
// archetype.
//
// The model is the azimuthal-velocity equation of an axisymmetric
// incompressible swirl driven by a steady stirring force:
//
//	∂u/∂t = ν(∂²u/∂z² + ∂²u/∂r² + (1/r)∂u/∂r − u/r²) + F(r, z)
//
// with u(r=0) = u(r=R) = 0 (axis regularity and no-slip wall) and
// periodicity in z. Each step is pure spectral archetype (§3.2):
//
//  1. a row operation — FFT each radial ring along z, apply the exact
//     integrating factor exp(−ν kz² dt) per mode, inverse FFT — on data
//     distributed by rows;
//  2. a redistribution from rows to columns (Figure 7);
//  3. a column operation — fourth-order finite-difference radial
//     diffusion — on data distributed by columns;
//  4. a grid operation adding the forcing, and the redistribution back.
//
// The sequential and SPMD versions advance bit-identically (shared
// per-row/per-column kernels; redistribution moves data without
// arithmetic). Figure 18's speedup experiment runs this code with the
// machine's paging model enabled, reproducing the paper's super-linear
// small-P anomaly; Figure 21's sample output is its u(r, z) field.
package swirl

import (
	"math"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

// Params configures a swirl simulation on an NR×NZ grid (NR radial rings
// including axis and wall, NZ axial points; NZ must be a power of two).
type Params struct {
	NR, NZ int
	// Nu is the kinematic viscosity.
	Nu float64
	// Dt is the time step; DefaultParams picks a stable one.
	Dt float64
	// Amp is the stirring-force amplitude.
	Amp float64
}

// DefaultParams returns a stable configuration.
func DefaultParams(nr, nz int) Params {
	dr := 1 / float64(nr-1)
	nu := 5e-3
	return Params{
		NR: nr, NZ: nz,
		Nu: nu,
		// Explicit radial diffusion stability: dt < dr²/(4ν) with the
		// curvature terms; keep a wide margin.
		Dt:  0.2 * dr * dr / nu,
		Amp: 1,
	}
}

// dr returns the radial spacing (domain radius 1).
func (pm *Params) dr() float64 { return 1 / float64(pm.NR-1) }

// forcing is the steady azimuthal stirring force at ring i, axial j.
func (pm *Params) forcing(i, j int) float64 {
	r := float64(i) * pm.dr()
	z := float64(j) / float64(pm.NZ)
	return pm.Amp * r * (1 - r*r) * (1 + 0.6*math.Sin(2*math.Pi*z)) * math.Exp(-8*(r-0.5)*(r-0.5))
}

// stepZSpectral advances the axial diffusion of one ring exactly in
// Fourier space: û_k *= exp(−ν kz² dt). Shared by both program versions
// so they advance bit-identically.
func stepZSpectral(m core.Meter, row []complex128, nu, dt float64) {
	n := len(row)
	fft.Transform(m, row, false)
	for k := range row {
		// Wavenumber with the usual aliasing fold: modes above n/2
		// represent negative frequencies.
		kk := k
		if kk > n/2 {
			kk = n - kk
		}
		kz := 2 * math.Pi * float64(kk)
		row[k] *= complex(math.Exp(-nu*kz*kz*dt), 0)
	}
	m.Flops(float64(6 * n))
	fft.Transform(m, row, true)
}

// stepRFD advances the radial diffusion of one axial station with
// fourth-order central differences (second-order one level from the
// boundaries), explicit Euler. col[0] and col[NR-1] stay pinned at zero.
// newCol receives the result; both slices have length NR.
func stepRFD(m core.Meter, col, newCol []complex128, nu, dt, dr float64) {
	n := len(col)
	newCol[0] = 0
	newCol[n-1] = 0
	inv12dr2 := 1 / (12 * dr * dr)
	inv12dr := 1 / (12 * dr)
	inv2dr := 1 / (2 * dr)
	invdr2 := 1 / (dr * dr)
	for i := 1; i < n-1; i++ {
		r := float64(i) * dr
		var d2, d1 complex128
		if i >= 2 && i <= n-3 {
			d2 = (-col[i-2] + 16*col[i-1] - 30*col[i] + 16*col[i+1] - col[i+2]) * complex(inv12dr2, 0)
			d1 = (col[i-2] - 8*col[i-1] + 8*col[i+1] - col[i+2]) * complex(inv12dr, 0)
		} else {
			d2 = (col[i-1] - 2*col[i] + col[i+1]) * complex(invdr2, 0)
			d1 = (col[i+1] - col[i-1]) * complex(inv2dr, 0)
		}
		lap := d2 + d1*complex(1/r, 0) - col[i]*complex(1/(r*r), 0)
		newCol[i] = col[i] + complex(nu*dt, 0)*lap
	}
	m.Flops(float64(22 * n))
}

// Sim is the distributed (SPMD) simulation. U is held distributed by
// rows between steps.
type Sim struct {
	Pm Params
	U  *meshspectral.Grid2D[complex128]
}

// ResidentBytes returns the per-process resident-set estimate declared to
// the paging model: two copies of the local section (the grid plus the
// redistribution target), complex128 elements.
func (pm *Params) ResidentBytes(nprocs int) float64 {
	return 2 * 16 * float64(pm.NR) * float64(pm.NZ) / float64(nprocs)
}

// NewSPMD builds the distributed simulation as process p's body and
// declares its resident set to the machine's paging model.
func NewSPMD(p spmd.Comm, pm Params) *Sim {
	s := &Sim{Pm: pm}
	s.U = meshspectral.New2D[complex128](p, pm.NR, pm.NZ, meshspectral.Rows(p.N()), 0)
	s.U.Fill(func(gi, gj int) complex128 { return 0 })
	p.SetResident(pm.ResidentBytes(p.N()))
	return s
}

// Step advances one time step.
func (s *Sim) Step() {
	p := s.U.Proc()
	pm := s.Pm

	// Row operation: exact axial diffusion per ring (rows distribution).
	s.U.RowOp(func(gi int, row []complex128) {
		stepZSpectral(p, row, pm.Nu, pm.Dt)
	})

	// Redistribute rows → columns for the radial operation (Figure 7).
	cols := s.U.Redistribute(meshspectral.Cols(p.N()))
	buf := make([]complex128, pm.NR)
	cols.ColOp(func(gj int, col []complex128) {
		stepRFD(p, col, buf, pm.Nu, pm.Dt, pm.dr())
		copy(col, buf)
	})

	// Grid operation: add the stirring force (no distribution
	// requirement; done while by columns).
	cols.Assign(4, func(gi, gj int) complex128 {
		return cols.At(gi, gj) + complex(pm.forcing(gi, gj)*pm.Dt, 0)
	})

	// Restore the row distribution.
	s.U = cols.Redistribute(meshspectral.Rows(p.N()))
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// SeqSim is the sequential version, advancing bit-identically to the
// SPMD one.
type SeqSim struct {
	Pm Params
	U  *array.Dense2D[complex128]
}

// NewSeq builds the sequential simulation.
func NewSeq(pm Params) *SeqSim {
	return &SeqSim{Pm: pm, U: array.New2D[complex128](pm.NR, pm.NZ)}
}

// Step advances one time step, charging m.
func (s *SeqSim) Step(m core.Meter) {
	pm := s.Pm
	for i := 0; i < pm.NR; i++ {
		stepZSpectral(m, s.U.Row(i), pm.Nu, pm.Dt)
	}
	col := make([]complex128, pm.NR)
	buf := make([]complex128, pm.NR)
	for j := 0; j < pm.NZ; j++ {
		s.U.Col(j, col)
		stepRFD(m, col, buf, pm.Nu, pm.Dt, pm.dr())
		s.U.SetCol(j, buf)
	}
	for i := 0; i < pm.NR; i++ {
		row := s.U.Row(i)
		for j := 0; j < pm.NZ; j++ {
			row[j] += complex(pm.forcing(i, j)*pm.Dt, 0)
		}
	}
	m.MemWords(float64(4 * pm.NR * pm.NZ))
	m.Flops(float64(4 * pm.NR * pm.NZ))
}

// Run advances n steps.
func (s *SeqSim) Run(m core.Meter, n int) {
	for i := 0; i < n; i++ {
		s.Step(m)
	}
}

// AzimuthalVelocity extracts the real u(r, z) field from a gathered
// complex array — the Figure 21 sample output.
func AzimuthalVelocity(u *array.Dense2D[complex128]) *array.Dense2D[float64] {
	out := array.New2D[float64](u.NX, u.NY)
	for k, v := range u.Data {
		out.Data[k] = real(v)
	}
	return out
}

// KineticEnergy returns ½Σ|u|² over the field.
func KineticEnergy(u *array.Dense2D[complex128]) float64 {
	sum := 0.0
	for _, v := range u.Data {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return 0.5 * sum
}
