package swirl

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/meshspectral"
)

func init() {
	arch.Register(arch.App{
		Name:        "swirl",
		Desc:        "axisymmetric spectral swirl (§3.7.3)",
		DefaultSize: 128,
		Run:         runApp,
	})
}

// Program advances the swirling-flow code the given number of steps,
// gathers the field at rank 0, and returns its kinetic energy.
func Program(steps int) arch.Program[Params, float64] {
	return arch.SPMDRoot(func(p *arch.Proc, pm Params) float64 {
		s := NewSPMD(p, pm)
		s.Run(steps)
		full := meshspectral.GatherGrid(s.U, 0)
		if p.Rank() != 0 {
			return 0
		}
		return KineticEnergy(full)
	})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	const steps = 50
	energy, rep, err := arch.RunWith(ctx, Program(steps), s, DefaultParams(n+1, n))
	if err != nil {
		return "", rep, err
	}
	return fmt.Sprintf("swirl %dx%d, %d steps, kinetic energy %.4f", n+1, n, steps, energy), rep, nil
}
