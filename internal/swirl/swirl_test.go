package swirl

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func TestStepZSpectralSingleMode(t *testing.T) {
	// A pure Fourier mode decays by exactly exp(-ν kz² dt).
	const n = 32
	nu, dt := 0.01, 0.05
	row := make([]complex128, n)
	for j := range row {
		row[j] = cmplx.Exp(complex(0, 2*math.Pi*float64(j)/n))
	}
	orig := append([]complex128(nil), row...)
	stepZSpectral(core.Nop, row, nu, dt)
	decay := math.Exp(-nu * 4 * math.Pi * math.Pi * dt)
	for j := range row {
		want := orig[j] * complex(decay, 0)
		if cmplx.Abs(row[j]-want) > 1e-10 {
			t.Fatalf("mode decay wrong at %d: %v vs %v", j, row[j], want)
		}
	}
}

func TestStepZSpectralConstantModeUnchanged(t *testing.T) {
	row := []complex128{3, 3, 3, 3, 3, 3, 3, 3}
	stepZSpectral(core.Nop, row, 0.1, 0.1)
	for j, v := range row {
		if cmplx.Abs(v-3) > 1e-12 {
			t.Fatalf("DC mode changed at %d: %v", j, v)
		}
	}
}

func TestStepRFDBoundariesPinned(t *testing.T) {
	const n = 17
	col := make([]complex128, n)
	buf := make([]complex128, n)
	for i := range col {
		col[i] = complex(float64(i), 0)
	}
	stepRFD(core.Nop, col, buf, 0.01, 0.001, 1.0/(n-1))
	if buf[0] != 0 || buf[n-1] != 0 {
		t.Errorf("boundaries not pinned: %v %v", buf[0], buf[n-1])
	}
}

func TestStepRFDDecaysEnergy(t *testing.T) {
	// Radial diffusion with pinned ends must not increase the energy of
	// a smooth profile (stable explicit step).
	const n = 33
	dr := 1.0 / (n - 1)
	pm := DefaultParams(n, 8)
	col := make([]complex128, n)
	for i := 1; i < n-1; i++ {
		r := float64(i) * dr
		col[i] = complex(math.Sin(math.Pi*r)*r, 0)
	}
	buf := make([]complex128, n)
	e0 := 0.0
	for _, v := range col {
		e0 += real(v) * real(v)
	}
	for step := 0; step < 50; step++ {
		stepRFD(core.Nop, col, buf, pm.Nu, pm.Dt, dr)
		copy(col, buf)
	}
	e1 := 0.0
	for _, v := range col {
		e1 += real(v) * real(v)
	}
	if e1 >= e0 {
		t.Errorf("radial diffusion grew energy: %g -> %g", e0, e1)
	}
}

func TestUnforcedDecay(t *testing.T) {
	pm := DefaultParams(17, 16)
	pm.Amp = 0
	s := NewSeq(pm)
	// Seed with the forcing shape.
	s.U.Fill(func(i, j int) complex128 {
		forced := DefaultParams(17, 16)
		return complex(forced.forcing(i, j), 0)
	})
	e0 := KineticEnergy(s.U)
	s.Run(core.Nop, 30)
	e1 := KineticEnergy(s.U)
	if e1 >= e0 {
		t.Errorf("unforced flow should decay: %g -> %g", e0, e1)
	}
	if e1 <= 0 {
		t.Errorf("energy went non-positive: %g", e1)
	}
}

func TestForcedSpinUp(t *testing.T) {
	pm := DefaultParams(17, 16)
	s := NewSeq(pm)
	s.Run(core.Nop, 30)
	if e := KineticEnergy(s.U); e <= 0 {
		t.Errorf("forced flow failed to spin up: energy %g", e)
	}
	// The field stays essentially real.
	for k, v := range s.U.Data {
		if math.Abs(imag(v)) > 1e-10 {
			t.Fatalf("imaginary residue at %d: %g", k, imag(v))
		}
	}
	// Boundaries pinned.
	for j := 0; j < pm.NZ; j++ {
		if s.U.At(0, j) != 0 || s.U.At(pm.NR-1, j) != 0 {
			t.Fatal("boundary rings not pinned at zero")
		}
	}
}

func TestSPMDMatchesSeqBitIdentical(t *testing.T) {
	pm := DefaultParams(17, 16)
	const steps = 8
	seq := NewSeq(pm)
	seq.Run(core.Nop, steps)

	for _, n := range []int{1, 2, 4} {
		var got *array.Dense2D[complex128]
		_, err := spmd.MustWorld(n, machine.IBMSP()).Run(func(p *spmd.Proc) {
			s := NewSPMD(p, pm)
			s.Run(steps)
			full := meshspectral.GatherGrid(s.U, 0)
			if p.Rank() == 0 {
				got = full
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := range seq.U.Data {
			if got.Data[k] != seq.U.Data[k] {
				t.Fatalf("n=%d: field differs at %d (not bit-identical)", n, k)
			}
		}
	}
}

func TestPagingModelEngages(t *testing.T) {
	// Identical work must take longer on a paged machine when the
	// resident set exceeds capacity — the Figure 18 mechanism.
	pm := DefaultParams(17, 16)
	runOn := func(m *machine.Model) float64 {
		res, err := spmd.MustWorld(2, m).Run(func(p *spmd.Proc) {
			s := NewSPMD(p, pm)
			s.Run(3)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	normal := runOn(machine.IBMSP())
	paged := runOn(machine.IBMSPPaged(pm.ResidentBytes(2)/2, 4))
	if paged <= normal*1.5 {
		t.Errorf("paging model had no effect: %g vs %g", paged, normal)
	}
}

func TestAzimuthalVelocityExtract(t *testing.T) {
	u := array.New2D[complex128](2, 2)
	u.Set(1, 0, complex(2.5, 1e-13))
	v := AzimuthalVelocity(u)
	if v.At(1, 0) != 2.5 || v.At(0, 0) != 0 {
		t.Error("extraction wrong")
	}
}

func TestResidentBytes(t *testing.T) {
	pm := DefaultParams(65, 64)
	if pm.ResidentBytes(1) != 2*16*65*64 {
		t.Errorf("ResidentBytes(1) = %g", pm.ResidentBytes(1))
	}
	if pm.ResidentBytes(4) != pm.ResidentBytes(1)/4 {
		t.Error("resident set should scale with 1/P")
	}
}
