package figures

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/array"
	"repro/internal/backend"
	"repro/internal/cfd"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
	"repro/internal/swirl"
)

func init() {
	register(Figure{
		ID:    "19",
		Title: "CFD output: density as a shock interacts with a sinusoidal density gradient",
		Caption: "Reproduced as a PGM image from the same shock-interface problem " +
			"run on the distributed mesh archetype.",
		Run: runFig19,
	})
	register(Figure{
		ID:    "20",
		Title: "CFD output: density and vorticity, shock / sinusoidal interface, early and late times",
		Caption: "Four panels: density and vorticity at an early time (shock " +
			"reaching the interface) and a late time (after interaction).",
		Run: runFig20,
	})
	register(Figure{
		ID:    "21",
		Title: "Spectral-code output: azimuthal velocity in a swirling flow",
		Caption: "The swirl code's u(r, z) field rendered as a PGM image after " +
			"spin-up under the stirring force.",
		Run: runFig21,
	})
}

func writePGM(o Options, name string, a *array.Dense2D[float64]) (string, error) {
	path := filepath.Join(o.dir(), name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("figures: create %s: %w", path, err)
	}
	defer f.Close()
	if err := meshspectral.WritePGM(a, f, 0, 0); err != nil {
		return "", err
	}
	fmt.Fprintf(o.out(), "wrote %s (%dx%d)\n", path, a.NY, a.NX)
	return path, nil
}

// runCFDSnapshots runs the shock-interface problem on 4 simulated
// processes and returns gathered snapshots at the requested step counts.
func runCFDSnapshots(ctx context.Context, nx, ny int, snaps []int) ([]*array.Dense2D[cfd.Cell], error) {
	pm := cfd.DefaultParams(nx, ny)
	out := make([]*array.Dense2D[cfd.Cell], len(snaps))
	_, err := core.Run(ctx, backend.Default(), 4, machine.IntelDelta(), func(p *spmd.Proc) {
		s := cfd.NewSPMD(p, pm, meshspectral.Blocks(2, 2))
		done := 0
		for si, target := range snaps {
			for done < target {
				s.Step()
				done++
			}
			full := meshspectral.GatherGrid(s.U, 0)
			if p.Rank() == 0 {
				out[si] = full
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func runFig19(o Options) (*Result, error) {
	nx := o.scaleInt(256, 32)
	ny := nx / 2
	steps := o.scaleInt(400, 40)
	banner(o, "Figure 19: shock/interface density, %dx%d grid, %d steps", nx, ny, steps)
	snaps, err := runCFDSnapshots(o.ctx(), nx, ny, []int{steps})
	if err != nil {
		return nil, err
	}
	// Transpose so x runs horizontally in the image.
	img := cfd.Density(snaps[0]).Transpose()
	path, err := writePGM(o, "fig19_density.pgm", img)
	if err != nil {
		return nil, err
	}
	return &Result{Files: []string{path}}, nil
}

func runFig20(o Options) (*Result, error) {
	nx := o.scaleInt(256, 32)
	ny := nx / 2
	early := o.scaleInt(150, 15)
	late := o.scaleInt(450, 45)
	banner(o, "Figure 20: density+vorticity at steps %d and %d, %dx%d grid", early, late, nx, ny)
	snaps, err := runCFDSnapshots(o.ctx(), nx, ny, []int{early, late})
	if err != nil {
		return nil, err
	}
	var files []string
	for i, label := range []string{"early", "late"} {
		d, err := writePGM(o, fmt.Sprintf("fig20_density_%s.pgm", label), cfd.Density(snaps[i]).Transpose())
		if err != nil {
			return nil, err
		}
		v, err := writePGM(o, fmt.Sprintf("fig20_vorticity_%s.pgm", label), cfd.Vorticity(snaps[i]).Transpose())
		if err != nil {
			return nil, err
		}
		files = append(files, d, v)
	}
	return &Result{Files: files}, nil
}

func runFig21(o Options) (*Result, error) {
	nr := o.scaleInt(129, 17)
	nz := o.scalePow2(128, 16)
	steps := o.scaleInt(200, 20)
	banner(o, "Figure 21: swirling-flow azimuthal velocity, %dx%d grid, %d steps", nr, nz, steps)
	pm := swirl.DefaultParams(nr, nz)
	var field *array.Dense2D[float64]
	_, err := core.Run(o.ctx(), backend.Default(), 4, machine.IBMSP(), func(p *spmd.Proc) {
		s := swirl.NewSPMD(p, pm)
		s.Run(steps)
		full := meshspectral.GatherGrid(s.U, 0)
		if p.Rank() == 0 {
			field = swirl.AzimuthalVelocity(full)
		}
	})
	if err != nil {
		return nil, err
	}
	path, err := writePGM(o, "fig21_swirl.pgm", field)
	if err != nil {
		return nil, err
	}
	return &Result{Files: []string{path}}, nil
}
