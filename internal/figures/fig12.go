package figures

import (
	"context"
	"math"

	"repro/internal/array"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "12",
		Title: "Speedup of parallel 2D FFT vs sequential 2D FFT",
		Caption: "Paper: repeated 2D FFT on the IBM SP, P = 1..32; the speedup is " +
			"deliberately disappointing (maxing out around 3-5) because the " +
			"computation-to-communication ratio of the transpose-based 2D FFT " +
			"is too low — the paper's own caption makes this point. The " +
			"published caption's grid size is corrupted in the source text; " +
			"128x128 repeated 10x reproduces the reported saturation.",
		Run: runFig12,
	})
}

// Fig12Curve produces the Figure 12 speedup curve for an n×n complex grid
// transformed reps times, over the given processor sweep on the simulator
// backend.
func Fig12Curve(n, reps int, procs []int) (*core.Curve, error) {
	return fig12Curve(context.Background(), backend.Default(), n, reps, procs)
}

func fig12Curve(ctx context.Context, r backend.Runner, n, reps int, procs []int) (*core.Curve, error) {
	model := machine.IBMSP()
	fill := func(gi, gj int) complex128 {
		return complex(math.Sin(float64(gi)*0.37), math.Cos(float64(gj)*0.11))
	}

	// Sequential baseline: really run the sequential 2D FFT reps times.
	seqT, err := seqTime(ctx, r, model, func(m core.Meter) {
		dense := array.New2D[complex128](n, n)
		dense.Fill(fill)
		for rep := 0; rep < reps; rep++ {
			fft.TwoDSeq(m, dense, false)
		}
	})
	if err != nil {
		return nil, err
	}

	return sweepPoints(ctx, r, "2D FFT", seqT, model, procs, func(np int) core.Program {
		return func(p *spmd.Proc) {
			g := meshspectral.New2D[complex128](p, n, n, meshspectral.Rows(p.N()), 0)
			g.Fill(fill)
			for rep := 0; rep < reps; rep++ {
				g = fft.TwoDSPMD(p, g, false)
			}
		}
	})
}

func runFig12(o Options) (*Result, error) {
	n := o.scalePow2(128, 16)
	const reps = 10
	procs := o.procs(core.PowersOfTwo(32))
	banner(o, "Figure 12: 2D FFT speedup, %dx%d complex grid x%d reps, IBM SP model", n, n, reps)
	curve, err := fig12Curve(o.ctx(), o.backend(), n, reps, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curve); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{curve}}, nil
}
