package figures

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/spmd"
	"repro/internal/swirl"
)

func init() {
	register(Figure{
		ID:    "18",
		Title: "Speedup of spectral (swirling-flow) code relative to 5-processor base",
		Caption: "Paper: axisymmetric spectral code on the IBM SP; single-processor " +
			"execution was infeasible (memory), so speedups are relative to 5 " +
			"processors, and the small-P points are BETTER than ideal because " +
			"the base run paged. The machine model's memory-pressure term " +
			"reproduces exactly that: at the 5-processor base the per-process " +
			"resident set exceeds capacity and compute is slowed by the paging " +
			"factor; at 10+ processors it fits.",
		Run: runFig18,
	})
}

// Fig18Curve produces the Figure 18 curve: pairs of (P/base, T_base/T_P)
// encoded as a speedup curve whose Procs field holds P. The paging
// capacity is set so the base paces but 2x the base does not.
func Fig18Curve(nr, nz, steps, base int, procs []int) (*core.Curve, error) {
	return fig18Curve(context.Background(), backend.Default(), nr, nz, steps, base, procs)
}

func fig18Curve(ctx context.Context, r backend.Runner, nr, nz, steps, base int, procs []int) (*core.Curve, error) {
	pm := swirl.DefaultParams(nr, nz)
	// Capacity between resident(base) and resident(2·base): the base run
	// pages, everything from 2x up fits. The factor is calibrated to the
	// paper's mild super-linearity at small P.
	capBytes := pm.ResidentBytes(base + 2)
	model := machine.IBMSPPaged(capBytes, 1.6)

	makespans, err := sched.Map(ctx, schedFor(r), len(procs), func(i int) (float64, error) {
		res, err := core.Run(ctx, r, procs[i], model, func(p *spmd.Proc) {
			s := swirl.NewSPMD(p, pm)
			s.Run(steps)
		})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	times := make(map[int]float64, len(procs))
	for i, np := range procs {
		times[np] = makespans[i]
	}
	baseTime, ok := times[base]
	if !ok {
		return nil, fmt.Errorf("fig 18: base processor count %d not in sweep", base)
	}
	curve := &core.Curve{Name: "spectral (rel. to base)", SeqTime: baseTime}
	for _, np := range procs {
		curve.Points = append(curve.Points, core.Point{
			Procs:   np,
			Time:    times[np],
			Speedup: baseTime / times[np],
		})
	}
	return curve, nil
}

func runFig18(o Options) (*Result, error) {
	nr := o.scaleInt(129, 33)
	nz := o.scalePow2(128, 32)
	const steps, base = 10, 5
	procs := o.procs([]int{5, 10, 15, 20, 25, 30, 35, 40})
	banner(o, "Figure 18: spectral code, %dx%d grid, %d steps, IBM SP + paging model, base %d procs", nr, nz, steps, base)
	curve, err := fig18Curve(o.ctx(), o.backend(), nr, nz, steps, base, procs)
	if err != nil {
		return nil, err
	}
	w := o.out()
	fmt.Fprintf(w, "%10s %10s %12s %10s\n", "procs", "procs/base", "speedup", "perfect")
	for _, pt := range curve.Points {
		fmt.Fprintf(w, "%10d %10.1f %12.2f %10.1f\n",
			pt.Procs, float64(pt.Procs)/float64(base), pt.Speedup, float64(pt.Procs)/float64(base))
	}
	return &Result{Curves: []*core.Curve{curve}}, nil
}
