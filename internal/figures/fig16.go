package figures

import (
	"context"

	"repro/internal/backend"
	"repro/internal/cfd"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "16",
		Title: "Speedup of 2D compressible-flow CFD code",
		Caption: "Paper: 2D CFD on the Intel Delta, P = 1..100, near-linear " +
			"speedup — the stencil computation dominates communication on a " +
			"large grid. The published caption's grid size is corrupted in the " +
			"source text; 384x384 with a 2D block decomposition reproduces the " +
			"near-linear shape to 100 processors.",
		Run: runFig16,
	})
}

// Fig16Curve produces the Figure 16 speedup curve for an n×n grid over
// the given steps and processor sweep.
func Fig16Curve(n, steps int, procs []int) (*core.Curve, error) {
	return fig16Curve(context.Background(), backend.Default(), n, steps, procs)
}

func fig16Curve(ctx context.Context, r backend.Runner, n, steps int, procs []int) (*core.Curve, error) {
	model := machine.IntelDelta()
	pm := cfd.DefaultParams(n, n)

	seqT, err := seqTime(ctx, r, model, func(m core.Meter) {
		cfd.NewSeq(pm).Run(m, steps)
	})
	if err != nil {
		return nil, err
	}

	return sweepPoints(ctx, r, "CFD", seqT, model, procs, func(np int) core.Program {
		l := meshspectral.NearSquare(np)
		return func(p *spmd.Proc) {
			cfd.NewSPMD(p, pm, l).Run(steps)
		}
	})
}

func runFig16(o Options) (*Result, error) {
	n := o.scaleInt(384, 32)
	const steps = 8
	procs := o.procs([]int{1, 4, 16, 36, 64, 100})
	banner(o, "Figure 16: CFD speedup, %dx%d grid, %d steps, Intel Delta model", n, n, steps)
	curve, err := fig16Curve(o.ctx(), o.backend(), n, steps, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curve); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{curve}}, nil
}
