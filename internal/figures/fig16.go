package figures

import (
	"repro/internal/cfd"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "16",
		Title: "Speedup of 2D compressible-flow CFD code",
		Caption: "Paper: 2D CFD on the Intel Delta, P = 1..100, near-linear " +
			"speedup — the stencil computation dominates communication on a " +
			"large grid. The published caption's grid size is corrupted in the " +
			"source text; 384x384 with a 2D block decomposition reproduces the " +
			"near-linear shape to 100 processors.",
		Run: runFig16,
	})
}

// Fig16Curve produces the Figure 16 speedup curve for an n×n grid over
// the given steps and processor sweep.
func Fig16Curve(n, steps int, procs []int) (*core.Curve, error) {
	model := machine.IntelDelta()
	pm := cfd.DefaultParams(n, n)

	seq := core.NewTally(model)
	cfd.NewSeq(pm).Run(seq, steps)

	curve := &core.Curve{Name: "CFD", SeqTime: seq.Seconds}
	for _, np := range procs {
		l := meshspectral.NearSquare(np)
		res, err := core.Simulate(np, model, func(p *spmd.Proc) {
			cfd.NewSPMD(p, pm, l).Run(steps)
		})
		if err != nil {
			return nil, err
		}
		curve.Points = append(curve.Points, core.Point{
			Procs: np, Time: res.Makespan, Speedup: seq.Seconds / res.Makespan,
			Msgs: res.Msgs, Bytes: res.Bytes,
		})
	}
	return curve, nil
}

func runFig16(o Options) (*Result, error) {
	n := o.scaleInt(384, 32)
	const steps = 8
	procs := o.procs([]int{1, 4, 16, 36, 64, 100})
	banner(o, "Figure 16: CFD speedup, %dx%d grid, %d steps, Intel Delta model", n, n, steps)
	curve, err := Fig16Curve(n, steps, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curve); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{curve}}, nil
}
