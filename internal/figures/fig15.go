package figures

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/poisson"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "15",
		Title: "Speedup of parallel Poisson solver vs sequential Poisson solver",
		Caption: "Paper: Jacobi iteration on the IBM SP, P up to ~36, fixed step " +
			"count; modest saturating speedup — every step pays a boundary " +
			"exchange plus a max-reduction against only a few flops per point. " +
			"The published caption's grid size is corrupted in the source " +
			"text; 128x128 x 100 steps reproduces the reported range.",
		Run: runFig15,
	})
}

// Fig15Curve produces the Figure 15 speedup curve for an n×n grid and the
// given fixed iteration count, over the given processor sweep (near-square
// block layouts, as §3.6.3's generic block distribution suggests).
func Fig15Curve(n, steps int, procs []int) (*core.Curve, error) {
	model := machine.IBMSP()
	pr := poisson.Manufactured(n, n, 0, steps) // tolerance 0: fixed step count

	seq := core.NewTally(model)
	if _, res := poisson.SolveSeq(seq, pr); res.Iterations != steps {
		panic("fig 15: sequential solver did not run the fixed step count")
	}

	curve := &core.Curve{Name: "Poisson", SeqTime: seq.Seconds}
	for _, np := range procs {
		l := meshspectral.NearSquare(np)
		res, err := core.Simulate(np, model, func(p *spmd.Proc) {
			poisson.SolveSPMD(p, pr, l)
		})
		if err != nil {
			return nil, err
		}
		curve.Points = append(curve.Points, core.Point{
			Procs: np, Time: res.Makespan, Speedup: seq.Seconds / res.Makespan,
			Msgs: res.Msgs, Bytes: res.Bytes,
		})
	}
	return curve, nil
}

func runFig15(o Options) (*Result, error) {
	n := o.scaleInt(128, 16)
	steps := 100
	if o.scale() < 1 {
		steps = 30
	}
	procs := o.procs([]int{1, 2, 4, 9, 16, 25, 36})
	banner(o, "Figure 15: Poisson speedup, %dx%d grid, %d steps, IBM SP model", n, n, steps)
	curve, err := Fig15Curve(n, steps, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curve); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{curve}}, nil
}
