package figures

import (
	"context"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/poisson"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "15",
		Title: "Speedup of parallel Poisson solver vs sequential Poisson solver",
		Caption: "Paper: Jacobi iteration on the IBM SP, P up to ~36, fixed step " +
			"count; modest saturating speedup — every step pays a boundary " +
			"exchange plus a max-reduction against only a few flops per point. " +
			"The published caption's grid size is corrupted in the source " +
			"text; 128x128 x 100 steps reproduces the reported range.",
		Run: runFig15,
	})
}

// Fig15Curve produces the Figure 15 speedup curve for an n×n grid and the
// given fixed iteration count, over the given processor sweep (near-square
// block layouts, as §3.6.3's generic block distribution suggests).
func Fig15Curve(n, steps int, procs []int) (*core.Curve, error) {
	return fig15Curve(context.Background(), backend.Default(), n, steps, procs)
}

func fig15Curve(ctx context.Context, r backend.Runner, n, steps int, procs []int) (*core.Curve, error) {
	model := machine.IBMSP()
	pr := poisson.Manufactured(n, n, 0, steps) // tolerance 0: fixed step count

	seqT, err := seqTime(ctx, r, model, func(m core.Meter) {
		if _, res := poisson.SolveSeq(m, pr); res.Iterations != steps {
			panic("fig 15: sequential solver did not run the fixed step count")
		}
	})
	if err != nil {
		return nil, err
	}

	return sweepPoints(ctx, r, "Poisson", seqT, model, procs, func(np int) core.Program {
		l := meshspectral.NearSquare(np)
		return func(p *spmd.Proc) {
			poisson.SolveSPMD(p, pr, l)
		}
	})
}

func runFig15(o Options) (*Result, error) {
	n := o.scaleInt(128, 16)
	steps := 100
	if o.scale() < 1 {
		steps = 30
	}
	procs := o.procs([]int{1, 2, 4, 9, 16, 25, 36})
	banner(o, "Figure 15: Poisson speedup, %dx%d grid, %d steps, IBM SP model", n, n, steps)
	curve, err := fig15Curve(o.ctx(), o.backend(), n, steps, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curve); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{curve}}, nil
}
