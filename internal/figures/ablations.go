package figures

import (
	"context"
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/onedeep"
	"repro/internal/poisson"
	"repro/internal/sched"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// The ablations quantify the design alternatives the paper enumerates:
// §3.3's reduction patterns (recursive doubling vs all-to-one/one-to-all),
// §2.3's parameter-computation strategies (centralized vs replicated),
// §2.4's all-gather formulations, and §3.6.3's data-distribution choice.

func init() {
	register(Figure{
		ID:      "A1",
		Title:   "Ablation: recursive-doubling vs gather/broadcast reduction (Figure 9)",
		Caption: "Virtual time of 100 all-reduce operations per process count.",
		Run:     runAblationReduce,
	})
	register(Figure{
		ID:      "A2",
		Title:   "Ablation: centralized vs replicated splitter computation (§2.3)",
		Caption: "One-deep mergesort makespans under both parameter strategies.",
		Run:     runAblationParams,
	})
	register(Figure{
		ID:      "A3",
		Title:   "Ablation: 1D vs near-square 2D decomposition for the Poisson solver (§3.6.3)",
		Caption: "Makespans for distribution by rows vs generic blocks.",
		Run:     runAblationLayout,
	})
	register(Figure{
		ID:      "A4",
		Title:   "Ablation: all-gather via gather+broadcast vs direct exchange (§2.4)",
		Caption: "Virtual time of 100 all-gather operations per process count.",
		Run:     runAblationAllGather,
	})
}

// AblationRow is one comparison row: the same operation priced two ways.
type AblationRow struct {
	Procs int
	A, B  float64 // seconds
}

func writeAblation(o Options, nameA, nameB string, rows []AblationRow) {
	w := o.out()
	fmt.Fprintf(w, "%8s %16s %16s %10s\n", "procs", nameA, nameB, "B/A")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %16.6g %16.6g %10.2f\n", r.Procs, r.A, r.B, r.B/r.A)
	}
}

// ablationRows runs one A-vs-B comparison per process count through the
// backend's scheduler on the given backend.
func ablationRows(ctx context.Context, r backend.Runner, m *machine.Model, procs []int, progA, progB func(np int) core.Program) ([]AblationRow, error) {
	return sched.Map(ctx, schedFor(r), len(procs), func(i int) (AblationRow, error) {
		np := procs[i]
		a, err := core.Run(ctx, r, np, m, progA(np))
		if err != nil {
			return AblationRow{}, err
		}
		b, err := core.Run(ctx, r, np, m, progB(np))
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{Procs: np, A: a.Makespan, B: b.Makespan}, nil
	})
}

// AblationReduce measures both reduction implementations.
func AblationReduce(procs []int, reps int) ([]AblationRow, error) {
	return ablationReduce(context.Background(), backend.Default(), procs, reps)
}

func ablationReduce(ctx context.Context, r backend.Runner, procs []int, reps int) ([]AblationRow, error) {
	return ablationRows(ctx, r, machine.IBMSP(), procs,
		func(np int) core.Program {
			return func(p *spmd.Proc) {
				for i := 0; i < reps; i++ {
					collective.AllReduce(p, float64(p.Rank()), math.Max)
				}
			}
		},
		func(np int) core.Program {
			return func(p *spmd.Proc) {
				for i := 0; i < reps; i++ {
					collective.AllReduceGB(p, float64(p.Rank()), math.Max)
				}
			}
		})
}

func runAblationReduce(o Options) (*Result, error) {
	banner(o, "Ablation A1: reduction strategy (100 all-reduces)")
	rows, err := ablationReduce(o.ctx(), o.backend(), o.procs([]int{4, 8, 16, 32, 64}), 100)
	if err != nil {
		return nil, err
	}
	writeAblation(o, "recursive-dbl", "gather+bcast", rows)
	return &Result{}, nil
}

// AblationParams measures one-deep mergesort under both splitter
// strategies.
func AblationParams(n int, procs []int) ([]AblationRow, error) {
	return ablationParams(context.Background(), backend.Default(), n, procs)
}

func ablationParams(ctx context.Context, r backend.Runner, n int, procs []int) ([]AblationRow, error) {
	data := sortapp.RandomInts(n, 77)
	strat := func(np int, s onedeep.ParamStrategy) core.Program {
		blocks := sortapp.BlockDistribute(data, np)
		spec := sortapp.OneDeepMergesort(s)
		return func(p *spmd.Proc) {
			onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		}
	}
	return ablationRows(ctx, r, machine.IntelDelta(), procs,
		func(np int) core.Program { return strat(np, onedeep.Centralized) },
		func(np int) core.Program { return strat(np, onedeep.Replicated) })
}

func runAblationParams(o Options) (*Result, error) {
	n := o.scaleInt(1<<18, 1<<12)
	banner(o, "Ablation A2: splitter strategy, one-deep mergesort, %d int32", n)
	rows, err := ablationParams(o.ctx(), o.backend(), n, o.procs([]int{4, 16, 64}))
	if err != nil {
		return nil, err
	}
	writeAblation(o, "centralized", "replicated", rows)
	return &Result{}, nil
}

// AblationLayout measures the Poisson solver under 1D and 2D block
// layouts.
func AblationLayout(n, steps int, procs []int) ([]AblationRow, error) {
	return ablationLayout(context.Background(), backend.Default(), n, steps, procs)
}

func ablationLayout(ctx context.Context, r backend.Runner, n, steps int, procs []int) ([]AblationRow, error) {
	pr := poisson.Manufactured(n, n, 0, steps)
	layout := func(l meshspectral.Layout) core.Program {
		return func(p *spmd.Proc) {
			poisson.SolveSPMD(p, pr, l)
		}
	}
	return ablationRows(ctx, r, machine.IBMSP(), procs,
		func(np int) core.Program { return layout(meshspectral.Rows(np)) },
		func(np int) core.Program { return layout(meshspectral.NearSquare(np)) })
}

func runAblationLayout(o Options) (*Result, error) {
	small := o.scaleInt(128, 32)
	large := small * 4
	const steps = 50
	// Two grid sizes bracket the crossover: on small grids the 1D
	// decomposition wins (fewer messages, latency-bound); on large grids
	// the 2D decomposition wins (less boundary data, bandwidth-bound).
	for _, n := range []int{small, large} {
		banner(o, "Ablation A3: Poisson decomposition, %dx%d grid, %d steps", n, n, steps)
		rows, err := ablationLayout(o.ctx(), o.backend(), n, steps, o.procs([]int{16, 36, 64}))
		if err != nil {
			return nil, err
		}
		writeAblation(o, "rows (1D)", "blocks (2D)", rows)
	}
	return &Result{}, nil
}

// AblationAllGather measures both all-gather formulations.
func AblationAllGather(procs []int, reps int) ([]AblationRow, error) {
	return ablationAllGather(context.Background(), backend.Default(), procs, reps)
}

func ablationAllGather(ctx context.Context, r backend.Runner, procs []int, reps int) ([]AblationRow, error) {
	return ablationRows(ctx, r, machine.IBMSP(), procs,
		func(np int) core.Program {
			return func(p *spmd.Proc) {
				for i := 0; i < reps; i++ {
					collective.AllGather(p, p.Rank())
				}
			}
		},
		func(np int) core.Program {
			return func(p *spmd.Proc) {
				for i := 0; i < reps; i++ {
					collective.AllGatherExchange(p, p.Rank())
				}
			}
		})
}

func runAblationAllGather(o Options) (*Result, error) {
	banner(o, "Ablation A4: all-gather formulation (100 all-gathers)")
	rows, err := ablationAllGather(o.ctx(), o.backend(), o.procs([]int{4, 8, 16, 32, 64}), 100)
	if err != nil {
		return nil, err
	}
	writeAblation(o, "gather+bcast", "exchange", rows)
	return &Result{}, nil
}
