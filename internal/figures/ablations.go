package figures

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/onedeep"
	"repro/internal/poisson"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// The ablations quantify the design alternatives the paper enumerates:
// §3.3's reduction patterns (recursive doubling vs all-to-one/one-to-all),
// §2.3's parameter-computation strategies (centralized vs replicated),
// §2.4's all-gather formulations, and §3.6.3's data-distribution choice.

func init() {
	register(Figure{
		ID:      "A1",
		Title:   "Ablation: recursive-doubling vs gather/broadcast reduction (Figure 9)",
		Caption: "Virtual time of 100 all-reduce operations per process count.",
		Run:     runAblationReduce,
	})
	register(Figure{
		ID:      "A2",
		Title:   "Ablation: centralized vs replicated splitter computation (§2.3)",
		Caption: "One-deep mergesort makespans under both parameter strategies.",
		Run:     runAblationParams,
	})
	register(Figure{
		ID:      "A3",
		Title:   "Ablation: 1D vs near-square 2D decomposition for the Poisson solver (§3.6.3)",
		Caption: "Makespans for distribution by rows vs generic blocks.",
		Run:     runAblationLayout,
	})
	register(Figure{
		ID:      "A4",
		Title:   "Ablation: all-gather via gather+broadcast vs direct exchange (§2.4)",
		Caption: "Virtual time of 100 all-gather operations per process count.",
		Run:     runAblationAllGather,
	})
}

// AblationRow is one comparison row: the same operation priced two ways.
type AblationRow struct {
	Procs int
	A, B  float64 // seconds
}

func writeAblation(o Options, nameA, nameB string, rows []AblationRow) {
	w := o.out()
	fmt.Fprintf(w, "%8s %16s %16s %10s\n", "procs", nameA, nameB, "B/A")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %16.6g %16.6g %10.2f\n", r.Procs, r.A, r.B, r.B/r.A)
	}
}

// AblationReduce measures both reduction implementations.
func AblationReduce(procs []int, reps int) ([]AblationRow, error) {
	model := machine.IBMSP()
	var rows []AblationRow
	for _, np := range procs {
		rd, err := core.Simulate(np, model, func(p *spmd.Proc) {
			for i := 0; i < reps; i++ {
				collective.AllReduce(p, float64(p.Rank()), math.Max)
			}
		})
		if err != nil {
			return nil, err
		}
		gb, err := core.Simulate(np, model, func(p *spmd.Proc) {
			for i := 0; i < reps; i++ {
				collective.AllReduceGB(p, float64(p.Rank()), math.Max)
			}
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Procs: np, A: rd.Makespan, B: gb.Makespan})
	}
	return rows, nil
}

func runAblationReduce(o Options) (*Result, error) {
	banner(o, "Ablation A1: reduction strategy (100 all-reduces)")
	rows, err := AblationReduce(o.procs([]int{4, 8, 16, 32, 64}), 100)
	if err != nil {
		return nil, err
	}
	writeAblation(o, "recursive-dbl", "gather+bcast", rows)
	return &Result{}, nil
}

// AblationParams measures one-deep mergesort under both splitter
// strategies.
func AblationParams(n int, procs []int) ([]AblationRow, error) {
	model := machine.IntelDelta()
	data := sortapp.RandomInts(n, 77)
	var rows []AblationRow
	for _, np := range procs {
		blocks := sortapp.BlockDistribute(data, np)
		var times [2]float64
		for i, strat := range []onedeep.ParamStrategy{onedeep.Centralized, onedeep.Replicated} {
			spec := sortapp.OneDeepMergesort(strat)
			res, err := core.Simulate(np, model, func(p *spmd.Proc) {
				onedeep.RunSPMD(p, spec, blocks[p.Rank()])
			})
			if err != nil {
				return nil, err
			}
			times[i] = res.Makespan
		}
		rows = append(rows, AblationRow{Procs: np, A: times[0], B: times[1]})
	}
	return rows, nil
}

func runAblationParams(o Options) (*Result, error) {
	n := o.scaleInt(1<<18, 1<<12)
	banner(o, "Ablation A2: splitter strategy, one-deep mergesort, %d int32", n)
	rows, err := AblationParams(n, o.procs([]int{4, 16, 64}))
	if err != nil {
		return nil, err
	}
	writeAblation(o, "centralized", "replicated", rows)
	return &Result{}, nil
}

// AblationLayout measures the Poisson solver under 1D and 2D block
// layouts.
func AblationLayout(n, steps int, procs []int) ([]AblationRow, error) {
	model := machine.IBMSP()
	pr := poisson.Manufactured(n, n, 0, steps)
	var rows []AblationRow
	for _, np := range procs {
		var times [2]float64
		for i, l := range []meshspectral.Layout{meshspectral.Rows(np), meshspectral.NearSquare(np)} {
			res, err := core.Simulate(np, model, func(p *spmd.Proc) {
				poisson.SolveSPMD(p, pr, l)
			})
			if err != nil {
				return nil, err
			}
			times[i] = res.Makespan
		}
		rows = append(rows, AblationRow{Procs: np, A: times[0], B: times[1]})
	}
	return rows, nil
}

func runAblationLayout(o Options) (*Result, error) {
	small := o.scaleInt(128, 32)
	large := small * 4
	const steps = 50
	// Two grid sizes bracket the crossover: on small grids the 1D
	// decomposition wins (fewer messages, latency-bound); on large grids
	// the 2D decomposition wins (less boundary data, bandwidth-bound).
	for _, n := range []int{small, large} {
		banner(o, "Ablation A3: Poisson decomposition, %dx%d grid, %d steps", n, n, steps)
		rows, err := AblationLayout(n, steps, o.procs([]int{16, 36, 64}))
		if err != nil {
			return nil, err
		}
		writeAblation(o, "rows (1D)", "blocks (2D)", rows)
	}
	return &Result{}, nil
}

// AblationAllGather measures both all-gather formulations.
func AblationAllGather(procs []int, reps int) ([]AblationRow, error) {
	model := machine.IBMSP()
	var rows []AblationRow
	for _, np := range procs {
		gb, err := core.Simulate(np, model, func(p *spmd.Proc) {
			for i := 0; i < reps; i++ {
				collective.AllGather(p, p.Rank())
			}
		})
		if err != nil {
			return nil, err
		}
		ex, err := core.Simulate(np, model, func(p *spmd.Proc) {
			for i := 0; i < reps; i++ {
				collective.AllGatherExchange(p, p.Rank())
			}
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Procs: np, A: gb.Makespan, B: ex.Makespan})
	}
	return rows, nil
}

func runAblationAllGather(o Options) (*Result, error) {
	banner(o, "Ablation A4: all-gather formulation (100 all-gathers)")
	rows, err := AblationAllGather(o.procs([]int{4, 8, 16, 32, 64}), 100)
	if err != nil {
		return nil, err
	}
	writeAblation(o, "gather+bcast", "exchange", rows)
	return &Result{}, nil
}
