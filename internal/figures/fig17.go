package figures

import (
	"context"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/fdtd"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "17",
		Title: "Speedup of 3D electromagnetics (FDTD) code",
		Caption: "Paper: 3D FDTD on the IBM SP, P = 1..18, with performance " +
			"DECREASING past ~16 processors because the ratio of computation " +
			"to communication drops too low (the paper's own caption). Each " +
			"step monitors the total field energy (a recursive-doubling sum " +
			"reduction), as the original code monitored scattering " +
			"quantities; with thin slabs the fixed per-step exchange plus the " +
			"log-P reduction overtakes the shrinking compute share.",
		Run: runFig17,
	})
}

// Fig17Curve produces the Figure 17 speedup curve for an n³ grid over the
// given steps and processor sweep. Every step computes the global field
// energy, like the paper's scattering monitoring.
func Fig17Curve(n, steps int, procs []int) (*core.Curve, error) {
	return fig17Curve(context.Background(), backend.Default(), n, steps, procs)
}

func fig17Curve(ctx context.Context, r backend.Runner, n, steps int, procs []int) (*core.Curve, error) {
	model := machine.IBMSP()
	pm := fdtd.DefaultParams(n)

	seqT, err := seqTime(ctx, r, model, func(m core.Meter) {
		s := fdtd.NewSeq(pm)
		for i := 0; i < steps; i++ {
			s.Step(m)
			s.Energy()
			m.Flops(6 * float64(n) * float64(n) * float64(n))
		}
	})
	if err != nil {
		return nil, err
	}

	return sweepPoints(ctx, r, "FDTD", seqT, model, procs, func(np int) core.Program {
		return func(p *spmd.Proc) {
			s := fdtd.NewSPMD(p, pm)
			for i := 0; i < steps; i++ {
				s.Step()
				s.Energy()
			}
		}
	})
}

func runFig17(o Options) (*Result, error) {
	n := o.scaleInt(32, 10)
	const steps = 50
	procs := o.procs([]int{1, 2, 4, 8, 12, 14, 16, 18})
	banner(o, "Figure 17: FDTD speedup, %d^3 grid, %d steps, IBM SP model", n, steps)
	curve, err := fig17Curve(o.ctx(), o.backend(), n, steps, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curve); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{curve}}, nil
}
