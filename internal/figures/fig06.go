package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "6",
		Title: "Speedups of traditional and one-deep mergesort vs sequential mergesort",
		Caption: "Paper: 10^6 integers on the Intel Delta, P = 1..64; one-deep " +
			"tracks perfect speedup while the traditional tree parallelization " +
			"saturates early (serial split/merge at the top of the tree and " +
			"full-data transfers).",
		Run: runFig6,
	})
}

// Fig6Curves produces the two speedup curves of Figure 6 at the given
// element count over the given processor sweep (exported for tests and
// benchmarks).
func Fig6Curves(n int, procs []int) (oneDeep, traditional *core.Curve, err error) {
	model := machine.IntelDelta()
	data := sortapp.RandomInts(n, 1999)

	// Sequential baseline: the sequential mergesort (as the paper's
	// caption specifies).
	seq := core.NewTally(model)
	sortapp.MergeSort(seq, data)

	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	oneDeep = &core.Curve{Name: "one-deep", SeqTime: seq.Seconds}
	traditional = &core.Curve{Name: "traditional", SeqTime: seq.Seconds}

	for _, np := range procs {
		blocks := sortapp.BlockDistribute(data, np)
		res, err := core.Simulate(np, model, func(p *spmd.Proc) {
			out := onedeep.RunSPMD(p, spec, blocks[p.Rank()])
			if !sortapp.IsSorted(out) {
				panic("one-deep output unsorted")
			}
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fig 6 one-deep at %d procs: %w", np, err)
		}
		oneDeep.Points = append(oneDeep.Points, core.Point{
			Procs: np, Time: res.Makespan, Speedup: seq.Seconds / res.Makespan,
			Msgs: res.Msgs, Bytes: res.Bytes,
		})

		rec := sortapp.TraditionalMergesort(32)
		res, err = core.Simulate(np, model, func(p *spmd.Proc) {
			out := rec.RunSPMD(p, data)
			if p.Rank() == 0 && !sortapp.IsSorted(out) {
				panic("traditional output unsorted")
			}
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fig 6 traditional at %d procs: %w", np, err)
		}
		traditional.Points = append(traditional.Points, core.Point{
			Procs: np, Time: res.Makespan, Speedup: seq.Seconds / res.Makespan,
			Msgs: res.Msgs, Bytes: res.Bytes,
		})
	}
	return oneDeep, traditional, nil
}

func runFig6(o Options) (*Result, error) {
	n := o.scaleInt(1<<20, 1<<12)
	procs := o.procs(core.PowersOfTwo(64))
	banner(o, "Figure 6: mergesort speedups, %d int32, Intel Delta model", n)
	oneDeep, trad, err := Fig6Curves(n, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), trad, oneDeep); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{trad, oneDeep}}, nil
}
