package figures

import (
	"context"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "6",
		Title: "Speedups of traditional and one-deep mergesort vs sequential mergesort",
		Caption: "Paper: 10^6 integers on the Intel Delta, P = 1..64; one-deep " +
			"tracks perfect speedup while the traditional tree parallelization " +
			"saturates early (serial split/merge at the top of the tree and " +
			"full-data transfers).",
		Run: runFig6,
	})
}

// Fig6Curves produces the two speedup curves of Figure 6 at the given
// element count over the given processor sweep on the simulator backend
// (exported for tests and benchmarks).
func Fig6Curves(n int, procs []int) (oneDeep, traditional *core.Curve, err error) {
	return fig6Curves(context.Background(), backend.Default(), n, procs)
}

// fig6Curves runs both Figure 6 sweeps concurrently through the shared
// scheduler on the given backend.
func fig6Curves(ctx context.Context, r backend.Runner, n int, procs []int) (oneDeep, traditional *core.Curve, err error) {
	model := machine.IntelDelta()
	data := sortapp.RandomInts(n, 1999)

	// Sequential baseline: the sequential mergesort (as the paper's
	// caption specifies).
	seqT, err := seqTime(ctx, r, model, func(m core.Meter) { sortapp.MergeSort(m, data) })
	if err != nil {
		return nil, nil, err
	}

	spec := sortapp.OneDeepMergesort(onedeep.Centralized)
	oneDeep, err = sweepPoints(ctx, r, "one-deep", seqT, model, procs, func(np int) core.Program {
		blocks := sortapp.BlockDistribute(data, np)
		return func(p *spmd.Proc) {
			out := onedeep.RunSPMD(p, spec, blocks[p.Rank()])
			if !sortapp.IsSorted(out) {
				panic("one-deep output unsorted")
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	traditional, err = sweepPoints(ctx, r, "traditional", seqT, model, procs, func(np int) core.Program {
		rec := sortapp.TraditionalMergesort(32)
		return func(p *spmd.Proc) {
			out := rec.RunSPMD(p, data)
			if p.Rank() == 0 && !sortapp.IsSorted(out) {
				panic("traditional output unsorted")
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return oneDeep, traditional, nil
}

func runFig6(o Options) (*Result, error) {
	n := o.scaleInt(1<<20, 1<<12)
	procs := o.procs(core.PowersOfTwo(64))
	banner(o, "Figure 6: mergesort speedups, %d int32, Intel Delta model", n)
	oneDeep, trad, err := fig6Curves(o.ctx(), o.backend(), n, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), trad, oneDeep); err != nil {
		return nil, err
	}
	return &Result{Curves: []*core.Curve{trad, oneDeep}}, nil
}
