package figures

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"6", "12", "15", "16", "17", "18", "19", "20", "21", "A1", "A2", "A3", "A4", "A5", "A6"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("figure %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d figures, want at least %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown figure should not resolve")
	}
	for _, f := range All() {
		if f.Title == "" || f.Run == nil {
			t.Errorf("figure %s lacks title or runner", f.ID)
		}
	}
}

func TestOptionsHelpers(t *testing.T) {
	var o Options
	if o.scale() != 1 || o.out() == nil || o.dir() != "." {
		t.Error("zero options defaults wrong")
	}
	o = Options{Scale: 0.5}
	if o.scaleInt(100, 10) != 50 {
		t.Errorf("scaleInt = %d", o.scaleInt(100, 10))
	}
	if o.scaleInt(10, 8) != 8 {
		t.Error("scaleInt floor not applied")
	}
	if o.scalePow2(128, 16) != 64 {
		t.Errorf("scalePow2 = %d", o.scalePow2(128, 16))
	}
	o = Options{MaxProcs: 10}
	got := o.procs([]int{1, 4, 16, 64})
	if len(got) != 2 || got[1] != 4 {
		t.Errorf("procs cap = %v", got)
	}
	if ps := (Options{MaxProcs: 1}).procs([]int{4, 8}); len(ps) != 1 || ps[0] != 1 {
		t.Errorf("empty cap should fall back to {1}, got %v", ps)
	}
}

func TestFig6ShapeOneDeepBeatsTraditional(t *testing.T) {
	oneDeep, trad, err := Fig6Curves(1<<16, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: "the one-deep version performs significantly
	// better".
	spOne, spTrad := oneDeep.SpeedupAt(16), trad.SpeedupAt(16)
	if spOne <= 2*spTrad {
		t.Errorf("one-deep %0.2f should beat traditional %0.2f by >2x at 16 procs", spOne, spTrad)
	}
	if spOne < 6 {
		t.Errorf("one-deep speedup %0.2f at 16 procs too low", spOne)
	}
	if spTrad > 8 {
		t.Errorf("traditional speedup %0.2f at 16 procs implausibly high", spTrad)
	}
	// Both near 1 at a single processor.
	if s := oneDeep.SpeedupAt(1); s < 0.7 || s > 1.2 {
		t.Errorf("one-deep 1-proc speedup %0.2f should be ~1", s)
	}
}

func TestFig12ShapeSaturates(t *testing.T) {
	curve, err := Fig12Curve(64, 3, []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	// "Disappointing performance is a result of too small a ratio of
	// computation to communication": far below perfect at 32.
	if s := curve.SpeedupAt(32); s > 16 {
		t.Errorf("FFT speedup %0.2f at 32 procs should be well below perfect", s)
	}
	// But parallelism still helps at small P.
	if curve.SpeedupAt(8) <= curve.SpeedupAt(1) {
		t.Error("FFT speedup should improve from 1 to 8 procs")
	}
	// Saturation: the 8->32 gain is far below the 4x proc increase.
	if g := curve.SpeedupAt(32) / curve.SpeedupAt(8); g > 3 {
		t.Errorf("FFT gain 8->32 procs = %0.2fx, should show saturation", g)
	}
}

func TestFig15ShapeSublinear(t *testing.T) {
	curve, err := Fig15Curve(64, 20, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if s := curve.SpeedupAt(16); s > 8 {
		t.Errorf("Poisson speedup %0.2f at 16 procs should be clearly sublinear on this grid", s)
	}
	if curve.SpeedupAt(4) <= curve.SpeedupAt(1) {
		t.Error("Poisson speedup should improve from 1 to 4 procs")
	}
}

func TestFig16ShapeNearLinear(t *testing.T) {
	curve, err := Fig16Curve(96, 3, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if eff := curve.SpeedupAt(16) / 16; eff < 0.75 {
		t.Errorf("CFD efficiency %0.2f at 16 procs, want near-linear (>0.75)", eff)
	}
	if s := curve.SpeedupAt(1); s < 0.9 || s > 1.1 {
		t.Errorf("CFD 1-proc speedup %0.2f should be ~1", s)
	}
}

func TestFig17ShapeRollsOverPast16(t *testing.T) {
	curve, err := Fig17Curve(32, 10, []int{8, 16, 18})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's caption: performance decreases for more than ~16
	// processors.
	if curve.SpeedupAt(18) >= curve.SpeedupAt(16) {
		t.Errorf("FDTD should roll over past 16 procs: s(16)=%0.2f s(18)=%0.2f",
			curve.SpeedupAt(16), curve.SpeedupAt(18))
	}
	if curve.SpeedupAt(16) <= curve.SpeedupAt(8) {
		t.Error("FDTD should still improve from 8 to 16 procs")
	}
}

func TestFig18ShapeSuperlinearThenBelow(t *testing.T) {
	curve, err := Fig18Curve(129, 128, 5, 5, []int{5, 10, 40})
	if err != nil {
		t.Fatal(err)
	}
	// Relative to the paged 5-processor base: better than ideal at 2x...
	if s := curve.SpeedupAt(10); s <= 2 {
		t.Errorf("relative speedup at 10 procs = %0.2f, want >2 (paging at base)", s)
	}
	// ...but below ideal at 8x.
	if s := curve.SpeedupAt(40); s >= 8 {
		t.Errorf("relative speedup at 40 procs = %0.2f, want <8", s)
	}
	if curve.SpeedupAt(5) != 1 {
		t.Error("base point should have relative speedup exactly 1")
	}
}

// readPGMHeader validates a PGM file and returns its dimensions.
func readPGMHeader(t *testing.T, path string) (int, int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxv); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if magic != "P5" || maxv != 255 || w <= 0 || h <= 0 {
		t.Fatalf("bad PGM header in %s: %s %d %d %d", path, magic, w, h, maxv)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	// One whitespace byte separates header from pixels.
	if len(rest) < w*h {
		t.Fatalf("%s: %d pixel bytes, want >= %d", path, len(rest), w*h)
	}
	return w, h
}

func TestImageFiguresWriteValidPGMs(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	o := Options{Out: &buf, Dir: dir, Scale: 0.15}
	for _, id := range []string{"19", "20", "21"} {
		f, _ := ByID(id)
		res, err := f.Run(o)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(res.Files) == 0 {
			t.Fatalf("figure %s wrote no files", id)
		}
		for _, path := range res.Files {
			w, h := readPGMHeader(t, path)
			if w < 8 || h < 8 {
				t.Errorf("%s suspiciously small: %dx%d", path, w, h)
			}
			if filepath.Dir(path) != dir {
				t.Errorf("%s written outside requested dir", path)
			}
		}
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Error("image figures should report written files")
	}
}

func TestFig20ImagesDiffer(t *testing.T) {
	dir := t.TempDir()
	f, _ := ByID("20")
	res, err := f.Run(Options{Dir: dir, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 4 {
		t.Fatalf("figure 20 should write 4 panels, wrote %d", len(res.Files))
	}
	early, err := os.ReadFile(res.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	late, err := os.ReadFile(res.Files[2])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(early, late) {
		t.Error("early and late density panels identical — simulation not advancing?")
	}
}

func TestAblationReduceShape(t *testing.T) {
	rows, err := AblationReduce([]int{4, 64}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Gather+broadcast degrades faster with P than recursive doubling.
	small := rows[0].B / rows[0].A
	large := rows[1].B / rows[1].A
	if large <= small {
		t.Errorf("gather+bcast penalty should grow with P: %0.2f -> %0.2f", small, large)
	}
	if large < 1.5 {
		t.Errorf("recursive doubling should clearly win at 64 procs (ratio %0.2f)", large)
	}
}

func TestAblationAllGatherCrossover(t *testing.T) {
	rows, err := AblationAllGather([]int{4, 64}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].B >= rows[0].A {
		t.Errorf("direct exchange should win at 4 procs: %g vs %g", rows[0].B, rows[0].A)
	}
	if rows[1].B <= rows[1].A {
		t.Errorf("gather+bcast should win at 64 procs: %g vs %g", rows[1].A, rows[1].B)
	}
}

func TestModelValidationErrors(t *testing.T) {
	rows, err := ModelValidation(64, 10, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if e := math.Abs(r.Error()); e > 0.3 {
			t.Errorf("P=%d %v: model error %.0f%% exceeds 30%%", r.Procs, r.Layout, 100*e)
		}
	}
}

func TestMachineSweepShape(t *testing.T) {
	curves, err := MachineSweep(1<<14, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("expected 4 machine curves, got %d", len(curves))
	}
	byName := map[string]float64{}
	for _, c := range curves {
		byName[c.Name] = c.SpeedupAt(16)
	}
	// The SMP should scale at least as well as anything; the Ethernet
	// workstation network should be clearly worst.
	if byName["smp"] < byName["workstations"] {
		t.Error("SMP should outscale the workstation network")
	}
	if byName["workstations"] >= byName["intel-delta"] {
		t.Error("workstation network should scale worse than the Delta")
	}
}

func TestTableFiguresRunAtTinyScale(t *testing.T) {
	// Every table figure runs end to end at a tiny scale and prints a
	// table (integration smoke test of the registry plumbing).
	for _, id := range []string{"6", "12", "15", "16", "17", "18", "A2", "A3"} {
		f, _ := ByID(id)
		var buf bytes.Buffer
		if _, err := f.Run(Options{Out: &buf, Scale: 0.1, MaxProcs: 8}); err != nil {
			t.Fatalf("figure %s at tiny scale: %v", id, err)
		}
		if !strings.Contains(buf.String(), "procs") {
			t.Errorf("figure %s printed no table:\n%s", id, buf.String())
		}
	}
}
