package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "A5",
		Title: "Ablation: one archetype program across machine classes",
		Caption: "The paper argues archetype programs port across architectures " +
			"(multicomputers, SMPs, workstation networks) with only the " +
			"communication library re-tuned. The same one-deep mergesort binary " +
			"is costed under all four machine profiles; the program is " +
			"unchanged, only the machine model differs.",
		Run: runMachinesAblation,
	})
}

// MachineSweep runs the one-deep mergesort across every built-in machine
// profile and returns one curve per machine.
func MachineSweep(n int, procs []int) ([]*core.Curve, error) {
	data := sortapp.RandomInts(n, 31)
	models := []*machine.Model{
		machine.IntelDelta(), machine.IBMSP(), machine.Workstations(), machine.SMP(),
	}
	var curves []*core.Curve
	for _, m := range models {
		seq := core.NewTally(m)
		sortapp.MergeSort(seq, data)
		c := &core.Curve{Name: m.Name, SeqTime: seq.Seconds}
		spec := sortapp.OneDeepMergesort(onedeep.Centralized)
		for _, np := range procs {
			blocks := sortapp.BlockDistribute(data, np)
			res, err := core.Simulate(np, m, func(p *spmd.Proc) {
				onedeep.RunSPMD(p, spec, blocks[p.Rank()])
			})
			if err != nil {
				return nil, fmt.Errorf("machine sweep on %s at %d procs: %w", m.Name, np, err)
			}
			c.Points = append(c.Points, core.Point{
				Procs: np, Time: res.Makespan, Speedup: seq.Seconds / res.Makespan,
				Msgs: res.Msgs, Bytes: res.Bytes,
			})
		}
		curves = append(curves, c)
	}
	return curves, nil
}

func runMachinesAblation(o Options) (*Result, error) {
	n := o.scaleInt(1<<19, 1<<12)
	procs := o.procs(core.PowersOfTwo(64))
	banner(o, "Ablation A5: one-deep mergesort, %d int32, across machine classes", n)
	curves, err := MachineSweep(n, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curves...); err != nil {
		return nil, err
	}
	return &Result{Curves: curves}, nil
}
