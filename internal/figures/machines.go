package figures

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "A5",
		Title: "Ablation: one archetype program across machine classes",
		Caption: "The paper argues archetype programs port across architectures " +
			"(multicomputers, SMPs, workstation networks) with only the " +
			"communication library re-tuned. The same one-deep mergesort binary " +
			"is costed under all four machine profiles; the program is " +
			"unchanged, only the machine model differs.",
		Run: runMachinesAblation,
	})
}

// MachineSweep runs the one-deep mergesort across every built-in machine
// profile on the simulator backend and returns one curve per machine.
func MachineSweep(n int, procs []int) ([]*core.Curve, error) {
	return machineSweep(context.Background(), backend.Default(), n, procs)
}

func machineSweep(ctx context.Context, r backend.Runner, n int, procs []int) ([]*core.Curve, error) {
	data := sortapp.RandomInts(n, 31)
	models := []*machine.Model{
		machine.IntelDelta(), machine.IBMSP(), machine.Workstations(), machine.SMP(),
	}
	curves := make([]*core.Curve, len(models))
	for i, m := range models {
		seqT, err := seqTime(ctx, r, m, func(mt core.Meter) { sortapp.MergeSort(mt, data) })
		if err != nil {
			return nil, err
		}
		spec := sortapp.OneDeepMergesort(onedeep.Centralized)
		curves[i], err = sweepPoints(ctx, r, m.Name, seqT, m, procs, func(np int) core.Program {
			blocks := sortapp.BlockDistribute(data, np)
			return func(p *spmd.Proc) {
				onedeep.RunSPMD(p, spec, blocks[p.Rank()])
			}
		})
		if err != nil {
			return nil, fmt.Errorf("machine sweep on %s: %w", m.Name, err)
		}
	}
	return curves, nil
}

func runMachinesAblation(o Options) (*Result, error) {
	n := o.scaleInt(1<<19, 1<<12)
	procs := o.procs(core.PowersOfTwo(64))
	banner(o, "Ablation A5: one-deep mergesort, %d int32, across machine classes", n)
	curves, err := machineSweep(o.ctx(), o.backend(), n, procs)
	if err != nil {
		return nil, err
	}
	if err := core.WriteTable(o.out(), curves...); err != nil {
		return nil, err
	}
	return &Result{Curves: curves}, nil
}
