package figures

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/perfmodel"
	"repro/internal/poisson"
	"repro/internal/sched"
	"repro/internal/spmd"
)

func init() {
	register(Figure{
		ID:    "A6",
		Title: "Validation: archetype performance model vs simulation (Poisson)",
		Caption: "§1.1 claims archetypes help build performance models; the " +
			"closed-form mesh model's predictions are tabulated against the " +
			"simulator for the Poisson solver across processor counts and " +
			"both 1D and 2D decompositions.",
		Run: runModelValidation,
	})
}

// ModelRow is one prediction-vs-measurement comparison.
type ModelRow struct {
	Procs     int
	Layout    meshspectral.Layout
	Predicted float64
	Measured  float64
}

// Error returns the relative prediction error.
func (r ModelRow) Error() float64 {
	return (r.Predicted - r.Measured) / r.Measured
}

// ModelValidation compares the closed-form Poisson model with simulation
// for every (procs, layout) pair. The closed form predicts virtual time,
// so the cells always run on the simulator backend; they run concurrently
// through the shared scheduler.
func ModelValidation(n, steps int, procs []int) ([]ModelRow, error) {
	return modelValidation(context.Background(), n, steps, procs)
}

func modelValidation(ctx context.Context, n, steps int, procs []int) ([]ModelRow, error) {
	m := machine.IBMSP()
	type cell struct {
		np     int
		layout meshspectral.Layout
	}
	var cells []cell
	for _, np := range procs {
		for _, l := range []meshspectral.Layout{meshspectral.Rows(np), meshspectral.NearSquare(np)} {
			cells = append(cells, cell{np, l})
		}
	}
	return sched.Map(ctx, sched.Shared(), len(cells), func(i int) (ModelRow, error) {
		np, l := cells[i].np, cells[i].layout
		pr := poisson.Manufactured(n, n, 0, steps)
		res, err := core.Run(ctx, backend.Default(), np, m, func(p *spmd.Proc) {
			poisson.SolveSPMD(p, pr, l)
		})
		if err != nil {
			return ModelRow{}, err
		}
		return ModelRow{
			Procs:     np,
			Layout:    l,
			Predicted: perfmodel.Poisson(m, n, n, steps, l),
			Measured:  res.Makespan,
		}, nil
	})
}

func runModelValidation(o Options) (*Result, error) {
	n := o.scaleInt(128, 32)
	const steps = 50
	banner(o, "Validation A6: Poisson performance model, %dx%d grid, %d steps, IBM SP model", n, n, steps)
	rows, err := modelValidation(o.ctx(), n, steps, o.procs([]int{4, 9, 16, 25, 36}))
	if err != nil {
		return nil, err
	}
	w := o.out()
	fmt.Fprintf(w, "%8s %8s %14s %14s %8s\n", "procs", "layout", "predicted", "measured", "error")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8s %13.6gs %13.6gs %7.1f%%\n",
			r.Procs, r.Layout.String(), r.Predicted, r.Measured, 100*r.Error())
	}
	return &Result{}, nil
}
