// Package figures regenerates the paper's evaluation artefacts: one
// registered experiment per data figure (6, 12, 15, 16, 17, 18), the
// sample-output images (19, 20, 21) as PGM files, and the design-choice
// ablations DESIGN.md calls out.
//
// Absolute numbers come from the simulated machine models and so are not
// expected to match the 1990s hardware; the curves' shapes — who wins, by
// roughly what factor, where the curves roll over — are the reproduction
// targets. EXPERIMENTS.md records paper-vs-measured for every figure.
package figures

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/spmd"
)

// Options controls a figure run.
type Options struct {
	// Ctx cancels figure sweeps mid-flight (nil means background): cells
	// not yet started are skipped, running cells unwind, and the figure
	// returns the context's error.
	Ctx context.Context
	// Out receives the textual table (defaults to io.Discard).
	Out io.Writer
	// Dir is where image figures write their PGM files (default ".").
	Dir string
	// Scale multiplies the default workload size (grid edge or element
	// count). 1.0 reproduces the paper-shaped default; benchmarks use
	// smaller scales. Values <= 0 mean 1.0.
	Scale float64
	// MaxProcs caps the processor sweep when positive.
	MaxProcs int
	// Backend is the execution backend figure sweeps run on: nil means
	// the virtual-time simulator (deterministic, paper-shaped curves);
	// backend.Real runs every cell at hardware speed with wall-clock
	// makespans.
	Backend backend.Runner
}

func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Options) dir() string {
	if o.Dir == "" {
		return "."
	}
	return o.Dir
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// scaleInt applies the workload scale to a default size with a floor.
func (o Options) scaleInt(def, min int) int {
	n := int(float64(def) * o.scale())
	if n < min {
		n = min
	}
	return n
}

// scalePow2 applies the scale and rounds down to a power of two.
func (o Options) scalePow2(def, min int) int {
	n := o.scaleInt(def, min)
	p := 1
	for p*2 <= n {
		p *= 2
	}
	if p < min {
		p = min
	}
	return p
}

// backend returns the options' execution backend, defaulting to the
// virtual-time simulator.
func (o Options) backend() backend.Runner {
	if o.Backend != nil {
		return o.Backend
	}
	return backend.Default()
}

// seqTime measures a sequential baseline on the given backend by running
// it on a 1-process world: on the simulator the makespan is the sum of
// the metered charges (exactly what a core.Tally accumulates); on the
// real backend it is the wall-clock time of really running the baseline.
func seqTime(ctx context.Context, r backend.Runner, m *machine.Model, run func(core.Meter)) (float64, error) {
	res, err := core.Run(ctx, r, 1, m, func(p *spmd.Proc) { run(p) })
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// schedFor picks the worker pool for a backend: virtual-time cells are
// deterministic and co-schedule freely; wall-clock cells must run one at
// a time or they contend for cores and inflate each other's makespans.
func schedFor(r backend.Runner) *sched.Scheduler {
	if r.Virtual() {
		return sched.Shared()
	}
	return sched.SerialShared()
}

// sweepPoints runs prog(np) for every process count through the backend's
// scheduler (concurrently for virtual time, serially for wall clock) and
// assembles the named speedup curve.
func sweepPoints(ctx context.Context, r backend.Runner, name string, seqT float64, m *machine.Model, procs []int, prog func(np int) core.Program) (*core.Curve, error) {
	return schedFor(r).Points(ctx, name, seqT, procs, func(np int) (*spmd.Result, error) {
		return core.Run(ctx, r, np, m, prog(np))
	})
}

// procs filters a sweep by MaxProcs.
func (o Options) procs(sweep []int) []int {
	if o.MaxProcs <= 0 {
		return sweep
	}
	var out []int
	for _, p := range sweep {
		if p <= o.MaxProcs {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Result is what a figure run produces.
type Result struct {
	// Curves holds the speedup series (nil for image figures).
	Curves []*core.Curve
	// Files lists image files written (nil for table figures).
	Files []string
}

// Figure is one registered experiment.
type Figure struct {
	ID      string
	Title   string
	Caption string
	Run     func(o Options) (*Result, error)
}

var registry []Figure

func register(f Figure) { registry = append(registry, f) }

// All returns every registered figure sorted by ID.
func All() []Figure {
	out := append([]Figure(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// Numeric-ish ordering: pad short IDs.
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// ByID looks a figure up.
func ByID(id string) (Figure, bool) {
	for _, f := range registry {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// banner prints the figure header to the options' writer.
func banner(o Options, f string, args ...any) {
	fmt.Fprintf(o.out(), "=== "+f+" ===\n", args...)
}
