package fdtd

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func TestPulseInitialization(t *testing.T) {
	pm := DefaultParams(16)
	s := NewSeq(pm)
	center := s.E.At(8, 8, 8)
	corner := s.E.At(0, 0, 0)
	if center[2] < 0.7*pm.Amplitude {
		t.Errorf("center Ez = %g, want near %g", center[2], pm.Amplitude)
	}
	if corner[2] > 0.01 {
		t.Errorf("corner Ez = %g, want near 0", corner[2])
	}
	if center[0] != 0 || center[1] != 0 {
		t.Error("only Ez should be excited initially")
	}
	if s.Energy() <= 0 {
		t.Error("initial energy must be positive")
	}
}

func TestEnergyBoundedOverTime(t *testing.T) {
	pm := DefaultParams(16)
	s := NewSeq(pm)
	e0 := s.Energy()
	for step := 0; step < 100; step++ {
		s.Step(core.Nop)
		e := s.Energy()
		if e > 1.10*e0 {
			t.Fatalf("step %d: energy grew to %g (initial %g) — unstable", step, e, e0)
		}
		if math.IsNaN(e) {
			t.Fatalf("step %d: energy is NaN", step)
		}
	}
	if e := s.Energy(); e < 0.2*e0 {
		t.Errorf("energy decayed to %g of initial — cavity should be nearly lossless", e/e0)
	}
}

func TestPulsePropagates(t *testing.T) {
	pm := DefaultParams(24)
	pm.PulseWidth = 0.08 // narrow pulse so the probe starts quiet
	s := NewSeq(pm)
	// A probe point away from the pulse starts quiet...
	probe := s.E.At(4, 12, 12)
	if math.Abs(probe[2]) > 1e-3 {
		t.Fatalf("probe not quiet initially: %g", probe[2])
	}
	s.Run(core.Nop, 40)
	probe = s.E.At(4, 12, 12)
	h := s.H.At(4, 12, 12)
	mag := math.Abs(probe[0]) + math.Abs(probe[1]) + math.Abs(probe[2]) +
		math.Abs(h[0]) + math.Abs(h[1]) + math.Abs(h[2])
	if mag < 1e-6 {
		t.Errorf("wave has not reached the probe after 40 steps (|field| = %g)", mag)
	}
}

func TestDivergenceFreeH(t *testing.T) {
	// H starts zero and gains only discrete curls, so the matching
	// forward-difference divergence stays exactly zero in the interior.
	pm := DefaultParams(16)
	s := NewSeq(pm)
	s.Run(core.Nop, 30)
	n := pm.N
	for i := 2; i < n-3; i++ {
		for j := 2; j < n-3; j++ {
			for k := 2; k < n-3; k++ {
				div := (s.H.At(i+1, j, k)[0] - s.H.At(i, j, k)[0]) +
					(s.H.At(i, j+1, k)[1] - s.H.At(i, j, k)[1]) +
					(s.H.At(i, j, k+1)[2] - s.H.At(i, j, k)[2])
				if math.Abs(div) > 1e-12 {
					t.Fatalf("div H at (%d,%d,%d) = %g, want 0", i, j, k, div)
				}
			}
		}
	}
}

func TestSPMDMatchesSeqBitIdentical(t *testing.T) {
	pm := DefaultParams(12)
	const steps = 10
	seq := NewSeq(pm)
	seq.Run(core.Nop, steps)

	for _, n := range []int{1, 2, 3, 4} {
		var eField, hField [][3]float64
		_, err := spmd.MustWorld(n, machine.IBMSP()).Run(func(p *spmd.Proc) {
			s := NewSPMD(p, pm)
			s.Run(steps)
			ef := meshspectral.GatherGrid3(s.E, 0)
			hf := meshspectral.GatherGrid3(s.H, 0)
			if p.Rank() == 0 {
				eField, hField = ef.Data, hf.Data
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := range seq.E.Data {
			if eField[k] != seq.E.Data[k] {
				t.Fatalf("n=%d: E differs at %d (not bit-identical)", n, k)
			}
			if hField[k] != seq.H.Data[k] {
				t.Fatalf("n=%d: H differs at %d (not bit-identical)", n, k)
			}
		}
	}
}

func TestSPMDEnergyConsistentAcrossRanks(t *testing.T) {
	pm := DefaultParams(12)
	energies := make([]float64, 3)
	_, err := spmd.MustWorld(3, machine.IBMSP()).Run(func(p *spmd.Proc) {
		s := NewSPMD(p, pm)
		s.Run(5)
		energies[p.Rank()] = s.Energy()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 3; r++ {
		if energies[r] != energies[0] {
			t.Errorf("rank %d energy %g != rank 0 %g", r, energies[r], energies[0])
		}
	}
	// And it matches the sequential energy to reduction-order tolerance.
	seq := NewSeq(pm)
	seq.Run(core.Nop, 5)
	if rel := math.Abs(energies[0]-seq.Energy()) / seq.Energy(); rel > 1e-12 {
		t.Errorf("SPMD energy differs from sequential by %g relative", rel)
	}
}

func TestCourantStabilityLimit(t *testing.T) {
	// Above the 3D Courant limit the scheme must blow up; this guards
	// against the update signs/stencils being subtly wrong (a wrong
	// sign often *stabilizes* everything by damping).
	pm := DefaultParams(12)
	pm.Courant = 0.9 // > 1/sqrt(3) ≈ 0.577
	s := NewSeq(pm)
	e0 := s.Energy()
	s.Run(core.Nop, 120)
	if e := s.Energy(); e < 10*e0 {
		t.Errorf("unstable Courant number did not blow up: %g -> %g", e0, e)
	}
}
