// Package fdtd implements the electromagnetic-scattering application of
// §3.7.2: numerical simulation of electromagnetic fields with a
// finite-difference time-domain (Yee) technique on the three-dimensional
// mesh archetype.
//
// The solver advances Maxwell's curl equations in a vacuum cavity with
// perfectly conducting walls (tangential E pinned to zero) in normalized
// units (c = ε₀ = μ₀ = 1) on a uniform N³ grid, excited by an initial
// Gaussian pulse. Each time step is two mesh-archetype phases: exchange E
// ghosts → update H from curl E; exchange H ghosts → update E from curl
// H. The grid is slab-decomposed along x as in the paper's 3D mesh
// archetype. Figure 17's speedup experiment runs this code.
//
// Sequential and SPMD versions advance bit-identically (no reductions
// appear in the time loop and per-point arithmetic is shared), which the
// tests assert — the paper's transformation-correctness story; the actual
// electromagnetics code was validated the same way ("the final parallel
// version needed no debugging; it ran correctly on the first execution").
package fdtd

import (
	"math"

	"repro/internal/array"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

// Vec3 holds the three components of a field at one grid point.
type Vec3 = [3]float64

// Params configures a cavity simulation on an N×N×N grid.
type Params struct {
	N int
	// Courant is dt/Δ; stability requires Courant < 1/√3.
	Courant float64
	// PulseWidth is the Gaussian source width as a fraction of the
	// domain; Amplitude its peak Ez.
	PulseWidth float64
	Amplitude  float64
}

// DefaultParams returns a stable cavity configuration.
func DefaultParams(n int) Params {
	return Params{N: n, Courant: 0.5 / math.Sqrt(3), PulseWidth: 0.12, Amplitude: 1}
}

// pulse is the initial Ez distribution.
func (pm *Params) pulse(i, j, k int) float64 {
	n := float64(pm.N)
	x := (float64(i) + 0.5) / n
	y := (float64(j) + 0.5) / n
	z := (float64(k) + 0.5) / n
	r2 := (x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5)
	return pm.Amplitude * math.Exp(-r2/(pm.PulseWidth*pm.PulseWidth))
}

// updateFlops is the per-point cost of one curl update (three components,
// six adds/subs and two multiplies each).
const updateFlops = 24

// curlH computes the H update at a point from E values (Yee scheme,
// uniform spacing absorbed into s = dt/Δ).
func curlH(h, e, exp, eyp, ezp Vec3, s float64) Vec3 {
	// exp/eyp/ezp are E at (i+1), (j+1), (k+1) respectively.
	return Vec3{
		h[0] - s*((eyp[2]-e[2])-(ezp[1]-e[1])), // Hx -= s·(dEz/dy - dEy/dz)
		h[1] - s*((ezp[0]-e[0])-(exp[2]-e[2])), // Hy -= s·(dEx/dz - dEz/dx)
		h[2] - s*((exp[1]-e[1])-(eyp[0]-e[0])), // Hz -= s·(dEy/dx - dEx/dy)
	}
}

// curlE computes the E update at a point from H values.
func curlE(e, h, hxm, hym, hzm Vec3, s float64) Vec3 {
	// hxm/hym/hzm are H at (i-1), (j-1), (k-1) respectively.
	return Vec3{
		e[0] + s*((h[2]-hym[2])-(h[1]-hzm[1])), // Ex += s·(dHz/dy - dHy/dz)
		e[1] + s*((h[0]-hzm[0])-(h[2]-hxm[2])), // Ey += s·(dHx/dz - dHz/dx)
		e[2] + s*((h[1]-hxm[1])-(h[0]-hym[0])), // Ez += s·(dHy/dx - dHx/dy)
	}
}

// Sim is the distributed (SPMD) cavity simulation.
type Sim struct {
	Pm   Params
	E, H *meshspectral.Grid3D[Vec3]
}

// NewSPMD builds the distributed simulation as process p's body.
func NewSPMD(p spmd.Comm, pm Params) *Sim {
	s := &Sim{Pm: pm}
	s.E = meshspectral.New3D[Vec3](p, pm.N, pm.N, pm.N, 1)
	s.H = meshspectral.New3D[Vec3](p, pm.N, pm.N, pm.N, 1)
	s.E.Fill(func(gi, gj, gk int) Vec3 {
		return Vec3{0, 0, pm.pulse(gi, gj, gk)}
	})
	s.H.Fill(func(gi, gj, gk int) Vec3 { return Vec3{} })
	return s
}

// Step advances one Yee time step.
func (s *Sim) Step() {
	n := s.Pm.N
	cdt := s.Pm.Courant

	// Half-step 1: H from curl E. Needs E at +1 in each axis.
	s.E.ExchangeBoundary()
	s.H.AssignRegion(0, n-1, 0, n-1, 0, n-1, updateFlops, func(gi, gj, gk int) Vec3 {
		return curlH(s.H.At(gi, gj, gk), s.E.At(gi, gj, gk),
			s.E.At(gi+1, gj, gk), s.E.At(gi, gj+1, gk), s.E.At(gi, gj, gk+1), cdt)
	})

	// Half-step 2: E from curl H on the interior (tangential E at the
	// cavity walls stays zero — PEC boundary). Needs H at -1.
	s.H.ExchangeBoundary()
	s.E.AssignRegion(1, n-1, 1, n-1, 1, n-1, updateFlops, func(gi, gj, gk int) Vec3 {
		return curlE(s.E.At(gi, gj, gk), s.H.At(gi, gj, gk),
			s.H.At(gi-1, gj, gk), s.H.At(gi, gj-1, gk), s.H.At(gi, gj, gk-1), cdt)
	})
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Energy returns the total field energy ½Σ(E²+H²), identical on every
// process (sum reduction; floating-point order fixed by the reduction
// tree).
func (s *Sim) Energy() float64 {
	x0, x1 := s.E.OwnedX()
	local := 0.0
	for gi := x0; gi < x1; gi++ {
		for j := 0; j < s.Pm.N; j++ {
			for k := 0; k < s.Pm.N; k++ {
				e := s.E.At(gi, j, k)
				h := s.H.At(gi, j, k)
				local += e[0]*e[0] + e[1]*e[1] + e[2]*e[2] + h[0]*h[0] + h[1]*h[1] + h[2]*h[2]
			}
		}
	}
	p := s.E.Proc()
	p.Flops(6 * float64((x1-x0)*s.Pm.N*s.Pm.N))
	return 0.5 * collective.AllReduce(p, local, func(a, b float64) float64 { return a + b })
}

// SeqSim is the sequential simulation, advancing bit-identically to the
// SPMD version.
type SeqSim struct {
	Pm   Params
	E, H *array.Dense3D[Vec3]
}

// NewSeq builds the sequential simulation.
func NewSeq(pm Params) *SeqSim {
	s := &SeqSim{Pm: pm}
	s.E = array.New3D[Vec3](pm.N, pm.N, pm.N)
	s.H = array.New3D[Vec3](pm.N, pm.N, pm.N)
	s.E.Fill(func(i, j, k int) Vec3 { return Vec3{0, 0, pm.pulse(i, j, k)} })
	return s
}

// Step advances one Yee time step, charging m.
func (s *SeqSim) Step(m core.Meter) {
	n := s.Pm.N
	cdt := s.Pm.Courant
	for i := 0; i < n-1; i++ {
		for j := 0; j < n-1; j++ {
			for k := 0; k < n-1; k++ {
				s.H.Set(i, j, k, curlH(s.H.At(i, j, k), s.E.At(i, j, k),
					s.E.At(i+1, j, k), s.E.At(i, j+1, k), s.E.At(i, j, k+1), cdt))
			}
		}
	}
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				s.E.Set(i, j, k, curlE(s.E.At(i, j, k), s.H.At(i, j, k),
					s.H.At(i-1, j, k), s.H.At(i, j-1, k), s.H.At(i, j, k-1), cdt))
			}
		}
	}
	hPts := float64((n - 1) * (n - 1) * (n - 1))
	ePts := float64((n - 2) * (n - 2) * (n - 2))
	m.Flops(updateFlops * (hPts + ePts))
}

// Run advances n steps.
func (s *SeqSim) Run(m core.Meter, n int) {
	for i := 0; i < n; i++ {
		s.Step(m)
	}
}

// Energy returns the sequential total field energy.
func (s *SeqSim) Energy() float64 {
	sum := 0.0
	for idx := range s.E.Data {
		e, h := s.E.Data[idx], s.H.Data[idx]
		sum += e[0]*e[0] + e[1]*e[1] + e[2]*e[2] + h[0]*h[0] + h[1]*h[1] + h[2]*h[2]
	}
	return 0.5 * sum
}
