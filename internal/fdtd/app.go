package fdtd

import (
	"context"
	"fmt"

	"repro/arch"
)

func init() {
	arch.Register(arch.App{
		Name:        "fdtd",
		Desc:        "3D electromagnetic cavity (§3.7.2)",
		DefaultSize: 32,
		Run:         runApp,
	})
}

// Program advances the cavity the given number of steps and returns the
// total field energy (a global reduction, known at every rank).
func Program(steps int) arch.Program[Params, float64] {
	return arch.SPMDRoot(func(p *arch.Proc, pm Params) float64 {
		s := NewSPMD(p, pm)
		s.Run(steps)
		return s.Energy()
	})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	const steps = 50
	energy, rep, err := arch.RunWith(ctx, Program(steps), s, DefaultParams(n))
	if err != nil {
		return "", rep, err
	}
	return fmt.Sprintf("FDTD cavity %d^3, %d steps, energy %.4f", n, steps, energy), rep, nil
}
