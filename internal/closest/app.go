package closest

import (
	"context"
	"fmt"
	"math"

	"repro/arch"
	"repro/internal/core"
)

func init() {
	arch.Register(arch.App{
		Name:        "closest",
		Desc:        "one-deep closest pair (§2.6)",
		DefaultSize: 50000,
		Run:         runApp,
	})
}

// Program runs the one-deep closest-pair computation over pre-distributed
// point blocks; the result is known at every rank after the final merge.
func Program() arch.Program[[][]Pt, Pair] {
	return arch.SPMDRoot(func(p *arch.Proc, blocks [][]Pt) Pair {
		return OneDeepSPMD(p, blocks[p.Rank()])
	})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	pts := RandomPoints(n, 5, 1000)
	want := DivideAndConquer(core.Nop, pts)
	blocks := make([][]Pt, s.Procs)
	for i := range blocks {
		blocks[i] = pts[i*n/s.Procs : (i+1)*n/s.Procs]
	}
	pair, rep, err := arch.RunWith(ctx, Program(), s, blocks)
	if err != nil {
		return "", rep, err
	}
	if pair.Dist2 != want.Dist2 {
		return "", rep, fmt.Errorf("closest: %g != sequential %g", pair.Dist2, want.Dist2)
	}
	return fmt.Sprintf("closest pair of %d points (dist %.5f, verified)", n, math.Sqrt(pair.Dist2)), rep, nil
}
