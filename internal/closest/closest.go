// Package closest implements the closest pair of points in the plane, the
// other problem §2.6 lists as amenable to a one-deep solution.
//
// The sequential algorithm is the classic O(n log n) divide and conquer
// (split by x, recurse, check the δ-strip around the median in y order).
// The one-deep version has a non-trivial split like quicksort's: sample
// x-coordinates, choose N-1 vertical splitters, and redistribute so
// process i owns strip i. Each process solves its strip sequentially; the
// merge phase reduces the global candidate distance δ and then exchanges
// splitter bands — every point within δ of splitter k is delivered to
// process k+1, which checks cross-strip pairs — followed by a final
// min-reduction. Any cross-strip pair closer than δ lies within δ of some
// splitter separating its endpoints, so the band exchange is exhaustive.
package closest

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/spmd"
)

// Pt is a point in the plane.
type Pt struct {
	X, Y float64
}

// Pts is a point list payload with known wire size.
type Pts []Pt

// VBytes implements spmd.Sized.
func (p Pts) VBytes() int { return 16 * len(p) }

// Pair is a candidate closest pair; Dist2 is the squared distance.
// The zero pair is "no pair found" (infinite distance).
type Pair struct {
	A, B  Pt
	Dist2 float64
	Valid bool
}

// VBytes implements spmd.Sized.
func (Pair) VBytes() int { return 5 * 8 }

func dist2(a, b Pt) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// better returns the closer of two candidates; ties resolve to a for
// determinism of reductions.
func better(a, b Pair) Pair {
	switch {
	case !a.Valid:
		return b
	case !b.Valid:
		return a
	case b.Dist2 < a.Dist2:
		return b
	default:
		return a
	}
}

// BruteForce checks all pairs — O(n²), the testing oracle.
func BruteForce(pts []Pt) Pair {
	best := Pair{Dist2: math.Inf(1)}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := dist2(pts[i], pts[j]); !best.Valid || d < best.Dist2 {
				best = Pair{pts[i], pts[j], d, true}
			}
		}
	}
	return best
}

// DivideAndConquer returns the closest pair in O(n log n), charging m.
// Inputs with fewer than two points return an invalid pair.
func DivideAndConquer(m core.Meter, pts []Pt) Pair {
	if len(pts) < 2 {
		return Pair{Dist2: math.Inf(1)}
	}
	byX := make([]Pt, len(pts))
	copy(byX, pts)
	sort.Slice(byX, func(i, j int) bool {
		if byX[i].X != byX[j].X {
			return byX[i].X < byX[j].X
		}
		return byX[i].Y < byX[j].Y
	})
	m.Cmps(float64(len(pts)) * math.Log2(float64(len(pts))+2))
	var flops float64
	best, _ := rec(byX, &flops)
	m.Flops(flops)
	return best
}

// rec returns the closest pair within byX (sorted by x) and the same
// points sorted by y.
func rec(byX []Pt, flops *float64) (Pair, []Pt) {
	n := len(byX)
	if n <= 3 {
		best := BruteForce(byX)
		*flops += float64(n * n * 4)
		byY := make([]Pt, n)
		copy(byY, byX)
		sort.Slice(byY, func(i, j int) bool { return byY[i].Y < byY[j].Y })
		return best, byY
	}
	mid := n / 2
	midX := byX[mid].X
	left, leftY := rec(byX[:mid], flops)
	right, rightY := rec(byX[mid:], flops)
	best := better(left, right)

	// Merge by y.
	merged := make([]Pt, 0, n)
	i, j := 0, 0
	for i < len(leftY) && j < len(rightY) {
		if leftY[i].Y <= rightY[j].Y {
			merged = append(merged, leftY[i])
			i++
		} else {
			merged = append(merged, rightY[j])
			j++
		}
	}
	merged = append(merged, leftY[i:]...)
	merged = append(merged, rightY[j:]...)
	*flops += float64(n)

	// Strip check: points within sqrt(best) of the split line, in y
	// order; each needs comparing with at most the next 7.
	d := math.Sqrt(best.Dist2)
	strip := make([]Pt, 0, 16)
	for _, p := range merged {
		if math.Abs(p.X-midX) < d {
			strip = append(strip, p)
		}
	}
	for i := 0; i < len(strip); i++ {
		for j := i + 1; j < len(strip) && strip[j].Y-strip[i].Y < d; j++ {
			if dd := dist2(strip[i], strip[j]); dd < best.Dist2 {
				best = Pair{strip[i], strip[j], dd, true}
				d = math.Sqrt(dd)
			}
			*flops += 6
		}
	}
	return best, merged
}

// samplesPerProc is the x-sample count per process for splitter planning.
const samplesPerProc = 16

// OneDeepSPMD runs the one-deep closest-pair algorithm as process p's
// body over its local points; every process returns the same global
// closest pair. A world with fewer than two points total returns an
// invalid pair everywhere.
func OneDeepSPMD(p spmd.Comm, local []Pt) Pair {
	n := p.N()

	// --- Split phase (non-trivial, like quicksort's §2.6.2): sample x,
	// plan splitters, redistribute into strips.
	sample := make([]float64, 0, samplesPerProc)
	for i := 1; i <= samplesPerProc && len(local) > 0; i++ {
		sample = append(sample, local[(i-1)*len(local)/samplesPerProc].X)
	}
	allSamples := collective.AllGather(p, sample)
	var pool []float64
	for _, s := range allSamples {
		pool = append(pool, s...)
	}
	sort.Float64s(pool)
	p.Cmps(float64(len(pool)) * math.Log2(float64(len(pool))+2))
	splitters := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		if len(pool) == 0 {
			splitters = append(splitters, 0)
			continue
		}
		idx := i * len(pool) / n
		if idx >= len(pool) {
			idx = len(pool) - 1
		}
		splitters = append(splitters, pool[idx])
	}

	parts := make([]Pts, n)
	for _, pt := range local {
		b := sort.SearchFloat64s(splitters, pt.X)
		// Points equal to a splitter go to the right strip, so strip k
		// is [s_{k-1}, s_k).
		for b < len(splitters) && pt.X == splitters[b] {
			b++
		}
		parts[b] = append(parts[b], pt)
	}
	p.Cmps(float64(len(local)) * math.Log2(float64(n)+2))
	recv := collective.AllToAll(p, parts)
	var strip Pts
	for _, r := range recv {
		strip = append(strip, r...)
	}
	p.MemWords(float64(len(strip)) * 2)

	// --- Solve phase: sequential divide and conquer within the strip.
	best := DivideAndConquer(p, strip)

	// --- Merge phase: global candidate δ, then band exchange across
	// splitters, then the final reduction.
	best = collective.AllReduce(p, best, better)
	d := math.Inf(1)
	if best.Valid {
		d = math.Sqrt(best.Dist2)
	}

	// Each process contributes its points within δ of splitter k to the
	// band owned by process k+1.
	bands := make([]Pts, n)
	for k, s := range splitters {
		if math.IsInf(d, 1) {
			// No candidate yet (fewer than 2 points in every strip):
			// fall back to shipping everything so correctness holds.
			bands[k+1] = append(bands[k+1], strip...)
			continue
		}
		for _, pt := range strip {
			if math.Abs(pt.X-s) < d {
				bands[k+1] = append(bands[k+1], pt)
			}
		}
	}
	p.Flops(float64(len(strip) * len(splitters)))
	got := collective.AllToAll(p, bands)
	var band Pts
	for _, g := range got {
		band = append(band, g...)
	}
	if len(band) > 1 {
		cand := DivideAndConquer(p, band)
		best = better(best, cand)
	}
	return collective.AllReduce(p, best, better)
}

// RandomPoints returns n deterministic pseudo-random points in
// [0,span)×[0,span).
func RandomPoints(n int, seed int64, span float64) []Pt {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pt, n)
	for i := range out {
		out[i] = Pt{rng.Float64() * span, rng.Float64() * span}
	}
	return out
}
