package closest

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func TestBruteForceKnown(t *testing.T) {
	pts := []Pt{{0, 0}, {10, 10}, {1, 0}, {5, 5}}
	p := BruteForce(pts)
	if !p.Valid || p.Dist2 != 1 {
		t.Errorf("closest = %+v, want dist2 1", p)
	}
}

func TestBruteForceDegenerate(t *testing.T) {
	if BruteForce(nil).Valid {
		t.Error("empty input should be invalid")
	}
	if BruteForce([]Pt{{1, 1}}).Valid {
		t.Error("single point should be invalid")
	}
	dup := BruteForce([]Pt{{1, 1}, {1, 1}})
	if !dup.Valid || dup.Dist2 != 0 {
		t.Error("duplicate points should give zero distance")
	}
}

func TestDivideAndConquerMatchesBrute(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		pts := RandomPoints(trial*7+2, int64(trial), 100)
		want := BruteForce(pts)
		got := DivideAndConquer(core.Nop, pts)
		if got.Dist2 != want.Dist2 {
			t.Fatalf("trial %d: D&C dist2 %g != brute %g", trial, got.Dist2, want.Dist2)
		}
	}
}

func TestDivideAndConquerPropertyQuick(t *testing.T) {
	f := func(raw []struct{ X, Y int8 }) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Pt, len(raw))
		for i, r := range raw {
			pts[i] = Pt{float64(r.X), float64(r.Y)}
		}
		return DivideAndConquer(core.Nop, pts).Dist2 == BruteForce(pts).Dist2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDivideAndConquerClusteredData(t *testing.T) {
	// Clustered points stress the strip logic.
	var pts []Pt
	for i := 0; i < 50; i++ {
		pts = append(pts, Pt{float64(i) * 10, 0})
		pts = append(pts, Pt{float64(i)*10 + 0.001*float64(i+1), 0.001})
	}
	want := BruteForce(pts)
	got := DivideAndConquer(core.Nop, pts)
	if got.Dist2 != want.Dist2 {
		t.Fatalf("clustered: %g != %g", got.Dist2, want.Dist2)
	}
}

func runOneDeep(t *testing.T, pts []Pt, n int) Pair {
	t.Helper()
	blocks := make([][]Pt, n)
	for i := range blocks {
		blocks[i] = pts[i*len(pts)/n : (i+1)*len(pts)/n]
	}
	results := make([]Pair, n)
	w := spmd.MustWorld(n, machine.IBMSP())
	if _, err := w.Run(func(p *spmd.Proc) {
		results[p.Rank()] = OneDeepSPMD(p, blocks[p.Rank()])
	}); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		if results[r] != results[0] {
			t.Fatalf("rank %d result %+v != rank 0 %+v", r, results[r], results[0])
		}
	}
	return results[0]
}

func TestOneDeepMatchesSequential(t *testing.T) {
	pts := RandomPoints(800, 5, 1000)
	want := BruteForce(pts)
	for _, n := range []int{1, 2, 3, 5, 8} {
		got := runOneDeep(t, pts, n)
		if got.Dist2 != want.Dist2 {
			t.Fatalf("n=%d: one-deep dist2 %g != %g", n, got.Dist2, want.Dist2)
		}
	}
}

func TestOneDeepCrossStripPair(t *testing.T) {
	// Construct data whose closest pair straddles a strip boundary:
	// uniform spread plus a tight pair in the middle.
	pts := RandomPoints(400, 6, 1000)
	pts = append(pts, Pt{500.0, 30}, Pt{500.01, 30})
	want := BruteForce(pts)
	if want.Dist2 > 0.001 {
		t.Fatalf("test setup wrong: planted pair not closest (%g)", want.Dist2)
	}
	for _, n := range []int{2, 4, 7} {
		got := runOneDeep(t, pts, n)
		if got.Dist2 != want.Dist2 {
			t.Fatalf("n=%d: missed cross-strip pair: %g != %g", n, got.Dist2, want.Dist2)
		}
	}
}

func TestOneDeepTinyInputs(t *testing.T) {
	for _, count := range []int{0, 1, 2, 3} {
		pts := RandomPoints(count, 7, 100)
		want := BruteForce(pts)
		got := runOneDeep(t, pts, 4)
		if got.Valid != want.Valid {
			t.Fatalf("count=%d: validity mismatch", count)
		}
		if want.Valid && got.Dist2 != want.Dist2 {
			t.Fatalf("count=%d: %g != %g", count, got.Dist2, want.Dist2)
		}
	}
}

func TestOneDeepPropertyQuick(t *testing.T) {
	f := func(raw []struct{ X, Y int16 }, nraw uint8) bool {
		n := int(nraw)%6 + 1
		pts := make([]Pt, len(raw))
		for i, r := range raw {
			pts[i] = Pt{float64(r.X), float64(r.Y)}
		}
		blocks := make([][]Pt, n)
		for i := range blocks {
			blocks[i] = pts[i*len(pts)/n : (i+1)*len(pts)/n]
		}
		results := make([]Pair, n)
		if _, err := spmd.MustWorld(n, machine.IBMSP()).Run(func(p *spmd.Proc) {
			results[p.Rank()] = OneDeepSPMD(p, blocks[p.Rank()])
		}); err != nil {
			return false
		}
		want := BruteForce(pts)
		if !want.Valid {
			return !results[0].Valid
		}
		return results[0].Valid && results[0].Dist2 == want.Dist2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBetter(t *testing.T) {
	a := Pair{Dist2: 1, Valid: true}
	b := Pair{Dist2: 2, Valid: true}
	if better(a, b) != a || better(b, a) != a {
		t.Error("better should pick the smaller distance")
	}
	if better(Pair{}, b) != b || better(b, Pair{}) != b {
		t.Error("better should skip invalid pairs")
	}
	tie := Pair{A: Pt{9, 9}, Dist2: 1, Valid: true}
	if better(a, tie) != a {
		t.Error("ties should resolve to the first argument")
	}
	if got := better(Pair{}, Pair{}); got.Valid {
		t.Error("two invalid pairs should stay invalid")
	}
	inf := Pair{Dist2: math.Inf(1), Valid: true}
	if better(inf, a) != a {
		t.Error("infinite distance should lose to finite")
	}
}
