// Package sched is the concurrent sweep scheduler: it runs matrices of
// archetype experiments (program × machine model × process count ×
// backend) through a bounded worker pool.
//
// Every cell of a sweep — one program on one backend at one process count
// — is an independent world, so simulator cells can run concurrently on
// the host without changing their results: they are deterministic in
// virtual time no matter how the host schedules them. The scheduler
// exploits that: it dispatches cells to a worker pool bounded by Workers
// (default GOMAXPROCS), deduplicates identical cells singleflight-style
// through a result cache (the same experiment swept twice, or a baseline
// that coincides with the 1-process cell, runs once), and streams
// finished core.Curve values as they complete.
//
// Every entry point takes a context.Context and is cancellable mid-flight:
// cells not yet started are skipped, running cells unwind through the
// transport's cancellation path, and the sweep returns ctx.Err().
// Cancellation results are never cached, so a later sweep with a live
// context re-runs the affected cells.
//
// Real-backend cells are wall-clock measurements: co-scheduling them
// would let cells contend for cores and inflate each other's makespans.
// Route those through SerialShared (or any Workers=1 Scheduler), which
// still pipelines the sweep machinery but runs one cell at a time.
//
// The state-access discipline follows the embarrassingly-parallel worker
// pool pattern: workers share nothing but the cache, cells own their
// worlds outright, and results flow through channels.
package sched

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spmd"
)

// Scheduler runs sweep cells through a bounded worker pool with a
// deduplicating result cache. The zero value is ready to use; one
// Scheduler may serve many sweeps concurrently and its cache spans them.
type Scheduler struct {
	// Workers bounds the number of cells running at once. Zero means
	// runtime.GOMAXPROCS(0).
	Workers int

	// MaxCells bounds how many completed cell results the in-memory
	// cache retains, evicted least-recently-used. Zero means unbounded
	// (the historical behavior, fine for one-shot sweeps; long-lived
	// servers should set it). Only completed cells are counted and
	// evicted — in-flight singleflight entries always stay so concurrent
	// claimants keep coalescing.
	MaxCells int

	initOnce sync.Once
	slots    chan struct{}

	mu    sync.Mutex
	cache map[cellKey]*cell
	// lru orders completed cellKeys most-recently-used first; in-flight
	// cells are not in it (their elem is nil until completion).
	lru *list.List
}

// cellKey identifies one cell of the experiment matrix. Experiments are
// identified by pointer: two sweeps naming the same *Experiment share
// results, distinct experiments never collide.
type cellKey struct {
	exp      *core.Experiment
	backend  string
	procs    int
	baseline bool
}

// cell is a singleflight entry: the first claimant runs the cell, later
// claimants wait for done.
type cell struct {
	done chan struct{}
	// elem is the cell's LRU node, set (under the scheduler's mu) when
	// the cell completes and enters the bounded cache; nil while the
	// cell is in flight.
	elem *list.Element
	res  *spmd.Result
	err  error
}

func (s *Scheduler) init() {
	s.initOnce.Do(func() {
		n := s.Workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.slots = make(chan struct{}, n)
		s.cache = make(map[cellKey]*cell)
		s.lru = list.New()
	})
}

// acquire takes a worker slot; release returns it. Cells hold a slot only
// while running, never while waiting on another cell's result, so the
// pool cannot deadlock on itself.
func (s *Scheduler) acquire() { s.slots <- struct{}{} }
func (s *Scheduler) release() { <-s.slots }

// run executes one cached matrix cell: the first caller for a key runs it
// under a worker slot, every later caller gets the memoized result. A
// cell that fails with the context's cancellation error is evicted from
// the cache so a later sweep under a live context re-runs it.
func (s *Scheduler) run(ctx context.Context, key cellKey, f func() (*spmd.Result, error)) (*spmd.Result, error) {
	s.init()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	col := obs.FromContext(ctx)
	s.mu.Lock()
	c, hit := s.cache[key]
	if !hit {
		c = &cell{done: make(chan struct{})}
		s.cache[key] = c
	} else if c.elem != nil {
		s.lru.MoveToFront(c.elem)
	}
	s.mu.Unlock()
	if hit {
		select {
		case <-c.done:
			// The runner's context may have been cancelled while ours is
			// alive: the runner evicted the key (below), so re-enter and
			// run the cell ourselves rather than inheriting a foreign
			// cancellation.
			if c.err != nil && isCancellation(c.err) && ctx.Err() == nil {
				return s.run(ctx, key, f)
			}
			col.Emit(obs.Event{Rank: -1, Peer: int32(key.procs), Kind: obs.KindCacheHit})
			return c.res, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	col.Emit(obs.Event{Rank: -1, Peer: int32(key.procs), Kind: obs.KindEnqueue})
	s.acquire()
	start := col.Now()
	func() {
		defer s.release()
		defer close(c.done)
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("sched: cell panicked: %v", r)
			}
			s.mu.Lock()
			if c.err != nil && ctx.Err() != nil {
				// Cancelled, not failed: forget the cell so a live
				// context can run it later.
				c.err = ctx.Err()
				delete(s.cache, key)
			} else if s.cache[key] == c {
				// Completed (result or real failure): enter the LRU and
				// enforce the cap. Eviction targets only completed cells
				// — anything in the lru — so in-flight claimants are
				// never orphaned. A cell orphaned by a concurrent Reset
				// (the map no longer holds it) stays out of the new LRU.
				c.elem = s.lru.PushFront(key)
				if s.MaxCells > 0 {
					for s.lru.Len() > s.MaxCells {
						last := s.lru.Back()
						s.lru.Remove(last)
						delete(s.cache, last.Value.(cellKey))
					}
				}
			}
			s.mu.Unlock()
		}()
		c.res, c.err = f()
		col.Emit(obs.Event{T: start, Dur: col.Now() - start, Rank: -1, Peer: int32(key.procs), Kind: obs.KindExecute})
	}()
	return c.res, c.err
}

// isCancellation reports whether err is a context cancellation (possibly
// wrapped by Experiment error annotations).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// cellKeys returns the baseline and point keys for an experiment. When
// the experiment has no explicit sequential program, its baseline is
// exactly the 1-process cell, so the two share a key and the cache runs
// them once.
func baselineKey(e *core.Experiment) cellKey {
	k := cellKey{exp: e, backend: e.Runner().Name(), procs: 1, baseline: true}
	if e.Seq == nil {
		k.baseline = false
	}
	return k
}

func pointKey(e *core.Experiment, procs int) cellKey {
	return cellKey{exp: e, backend: e.Runner().Name(), procs: procs}
}

// Outcome is one experiment's finished curve, or its failure.
type Outcome struct {
	Experiment *core.Experiment
	Curve      *core.Curve
	Err        error
}

// Stream runs every experiment of the matrix over the process sweep and
// delivers each finished curve on the returned channel in completion
// order. The channel closes when the whole sweep is done. Cells of all
// experiments run concurrently, interleaved across experiments, bounded
// by the worker pool. Cancelling ctx drains the sweep promptly with
// ctx.Err() outcomes.
func (s *Scheduler) Stream(ctx context.Context, exps []*core.Experiment, procs []int) <-chan Outcome {
	s.init()
	// Buffered to len(exps) so producers never block: a consumer that
	// stops reading early (Sweep returning on the first error) must not
	// leak the remaining per-experiment goroutines.
	out := make(chan Outcome, len(exps))
	var wg sync.WaitGroup
	wg.Add(len(exps))
	for _, e := range exps {
		go func() {
			defer wg.Done()
			curve, err := s.Curve(ctx, e, procs)
			out <- Outcome{Experiment: e, Curve: curve, Err: err}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Sweep runs every experiment over the process sweep and returns the
// curves in input order, failing on the first error. It is Stream for
// callers that want the whole matrix at once.
func (s *Scheduler) Sweep(ctx context.Context, exps []*core.Experiment, procs []int) ([]*core.Curve, error) {
	byExp := make(map[*core.Experiment]*core.Curve, len(exps))
	for o := range s.Stream(ctx, exps, procs) {
		if o.Err != nil {
			return nil, o.Err
		}
		byExp[o.Experiment] = o.Curve
	}
	curves := make([]*core.Curve, len(exps))
	for i, e := range exps {
		curves[i] = byExp[e]
	}
	return curves, nil
}

// Curve runs one experiment's baseline and sweep cells concurrently and
// assembles its speedup curve.
func (s *Scheduler) Curve(ctx context.Context, e *core.Experiment, procs []int) (*core.Curve, error) {
	s.init()
	results := make([]*spmd.Result, len(procs))
	errs := make([]error, len(procs)+1)
	var seqRes *spmd.Result
	var wg sync.WaitGroup
	wg.Add(len(procs) + 1)
	go func() {
		defer wg.Done()
		seqRes, errs[len(procs)] = s.run(ctx, baselineKey(e), func() (*spmd.Result, error) {
			return e.Baseline(ctx)
		})
	}()
	for i, np := range procs {
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.run(ctx, pointKey(e, np), func() (*spmd.Result, error) {
				return e.Point(ctx, np)
			})
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c := &core.Curve{Name: e.Name, SeqTime: seqRes.Makespan}
	for i, res := range results {
		c.Points = append(c.Points, core.Point{
			Procs:   procs[i],
			Time:    res.Makespan,
			Speedup: seqRes.Makespan / res.Makespan,
			Msgs:    res.Msgs,
			Bytes:   res.Bytes,
		})
	}
	return c, nil
}

// Map runs f(i) for every i in [0, n) through the scheduler's worker pool
// and returns the results in index order, failing on the first error. It
// is the pool's generic primitive: sweeps whose cells aren't Experiment
// matrix entries (per-np block distributions, (procs, layout) grids,
// strategy ablations) dispatch through it. Cells run uncached: closures
// have no identity to key a cache on. Cells not yet started when ctx is
// cancelled are skipped, and Map returns ctx.Err().
//
// Map spawns min(n, pool size) worker goroutines that pull cell indices
// from a shared counter rather than one goroutine per cell: a 256-cell
// sweep through a 4-slot pool costs 4 goroutines, not 256 parked ones.
// Workers still take a pool slot per cell, so concurrent Maps share the
// scheduler's bound fairly.
func Map[T any](ctx context.Context, s *Scheduler, n int, f func(i int) (T, error)) ([]T, error) {
	s.init()
	results := make([]T, n)
	errs := make([]error, n)
	col := obs.FromContext(ctx)
	runCell := func(i int) {
		col.Emit(obs.Event{Rank: -1, Peer: int32(i), Kind: obs.KindEnqueue})
		s.acquire()
		defer s.release()
		start := col.Now()
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("sched: cell panicked: %v", r)
			}
			col.Emit(obs.Event{T: start, Dur: col.Now() - start, Rank: -1, Peer: int32(i), Kind: obs.KindExecute})
		}()
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = f(i)
	}
	workers := min(n, cap(s.slots))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				runCell(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Points runs one sweep cell per process count through the worker pool —
// run(np) builds and executes the cell — and assembles a curve named name
// against the given sequential-baseline time. It is the entry point for
// sweeps whose per-cell setup depends on the process count (block
// distributions, per-np decompositions), which an Experiment's fixed
// program cannot express.
func (s *Scheduler) Points(ctx context.Context, name string, seqTime float64, procs []int, run func(np int) (*spmd.Result, error)) (*core.Curve, error) {
	results, err := Map(ctx, s, len(procs), func(i int) (*spmd.Result, error) {
		res, err := run(procs[i])
		if err != nil {
			return nil, fmt.Errorf("sched: %s at %d processes: %w", name, procs[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	c := &core.Curve{Name: name, SeqTime: seqTime}
	for i, res := range results {
		c.Points = append(c.Points, core.Point{
			Procs:   procs[i],
			Time:    res.Makespan,
			Speedup: seqTime / res.Makespan,
			Msgs:    res.Msgs,
			Bytes:   res.Bytes,
		})
	}
	return c, nil
}

// Reset discards every cached cell result. Call it after mutating an
// experiment in place (the cache keys on experiment identity, not
// content) or to release the memory a long-lived scheduler has pinned.
func (s *Scheduler) Reset() {
	s.init()
	s.mu.Lock()
	s.cache = make(map[cellKey]*cell)
	s.lru.Init()
	s.mu.Unlock()
}

// shared is the process-wide scheduler the package-level helpers use: one
// pool, one cache, shared by every figure and command in the process.
var shared = &Scheduler{}

// Shared returns the process-wide scheduler.
func Shared() *Scheduler { return shared }

// serialShared is the process-wide one-cell-at-a-time scheduler for
// wall-clock measurement cells.
var serialShared = &Scheduler{Workers: 1}

// SerialShared returns the process-wide serial scheduler: same machinery,
// one worker slot, for cells whose measurements would contaminate each
// other if co-scheduled (real-backend wall-clock runs).
func SerialShared() *Scheduler { return serialShared }

// Sweep runs the experiment matrix on the shared scheduler.
func Sweep(ctx context.Context, exps []*core.Experiment, procs []int) ([]*core.Curve, error) {
	return shared.Sweep(ctx, exps, procs)
}

// Stream streams the experiment matrix on the shared scheduler.
func Stream(ctx context.Context, exps []*core.Experiment, procs []int) <-chan Outcome {
	return shared.Stream(ctx, exps, procs)
}

// Points runs a process-count sweep on the shared scheduler.
func Points(ctx context.Context, name string, seqTime float64, procs []int, run func(np int) (*spmd.Result, error)) (*core.Curve, error) {
	return shared.Points(ctx, name, seqTime, procs, run)
}
