package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// TestFlightCoalesces: N concurrent Do calls with one key run the work
// once; every caller gets the one result and at least one side reports
// it as shared.
func TestFlightCoalesces(t *testing.T) {
	f := &Flight[int]{Sched: &Scheduler{Workers: 4}}
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	const callers = 8
	var shared atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				<-started // ensure caller 0 isn't first: any caller may run it
			}
			v, sh, err := f.Do(context.Background(), "k", func() (int, error) {
				runs.Add(1)
				close(started)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
			if sh {
				shared.Add(1)
			}
		}(i)
	}
	go func() {
		<-started
		// Give waiters a moment to pile onto the in-flight cell.
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("work ran %d times, want 1", got)
	}
	if shared.Load() == 0 {
		t.Error("no caller observed the result as shared")
	}
	if f.Pending() != 0 {
		t.Errorf("Pending = %d after completion, want 0", f.Pending())
	}
}

// TestFlightDropsCompleted: a finished flight is forgotten — the next
// Do with the same key runs the work again (memoization is the
// persistent cache's job, not the flight's).
func TestFlightDropsCompleted(t *testing.T) {
	f := &Flight[string]{Sched: &Scheduler{Workers: 2}}
	var runs atomic.Int32
	for i := 0; i < 3; i++ {
		v, sh, err := f.Do(context.Background(), "k", func() (string, error) {
			runs.Add(1)
			return "v", nil
		})
		if err != nil || v != "v" || sh {
			t.Fatalf("Do #%d = %q, shared=%v, %v", i, v, sh, err)
		}
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("work ran %d times, want 3 (no memoization)", got)
	}
}

// TestFlightErrorsShared: a failing flight hands every coalesced waiter
// the same error, and a panic becomes an error, not a crash.
func TestFlightErrorsShared(t *testing.T) {
	f := &Flight[int]{Sched: &Scheduler{Workers: 2}}
	boom := errors.New("boom")
	if _, _, err := f.Do(context.Background(), "e", func() (int, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
	_, _, err := f.Do(context.Background(), "p", func() (int, error) {
		panic("kaboom")
	})
	if err == nil || err.Error() != `sched: flight "p" panicked: kaboom` {
		t.Errorf("panic err = %v", err)
	}
}

// TestFlightCancelledRunnerNotInherited: a waiter with a live context
// does not inherit the runner's cancellation — it re-runs the work
// itself, mirroring the cell cache's discipline.
func TestFlightCancelledRunnerNotInherited(t *testing.T) {
	f := &Flight[int]{Sched: &Scheduler{Workers: 2}}
	runnerCtx, cancelRunner := context.WithCancel(context.Background())
	inWork := make(chan struct{})
	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		_, _, err := f.Do(runnerCtx, "k", func() (int, error) {
			close(inWork)
			<-runnerCtx.Done()
			return 0, runnerCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("runner err = %v, want Canceled", err)
		}
	}()
	<-inWork
	waiterResult := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "k", func() (int, error) {
			return 7, nil
		})
		waiterResult <- err
	}()
	// Let the waiter join the in-flight cell, then cancel the runner.
	time.Sleep(20 * time.Millisecond)
	cancelRunner()
	<-runnerDone
	if err := <-waiterResult; err != nil {
		t.Errorf("waiter err = %v, want nil (re-run under live context)", err)
	}
}

// TestFlightWaiterCancellation: a waiter whose own context dies stops
// waiting with its ctx.Err() while the flight keeps running.
func TestFlightWaiterCancellation(t *testing.T) {
	f := &Flight[int]{Sched: &Scheduler{Workers: 2}}
	inWork := make(chan struct{})
	release := make(chan struct{})
	go f.Do(context.Background(), "k", func() (int, error) {
		close(inWork)
		<-release
		return 1, nil
	})
	<-inWork
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.Do(ctx, "k", func() (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v, want Canceled", err)
	}
	close(release)
}

// lruExperiments builds n distinct experiments for cache-bound tests.
func lruExperiments(n int) []*core.Experiment {
	exps := make([]*core.Experiment, n)
	for i := range exps {
		exps[i] = &core.Experiment{
			Name:  fmt.Sprintf("lru-%d", i),
			Model: machine.IBMSP(),
			Par: func(p *spmd.Proc) {
				if p.N() > 1 {
					if p.Rank() == 0 {
						p.Send(1, 0, int32(1))
					} else if p.Rank() == 1 {
						p.Recv(0, 0)
					}
				}
			},
		}
	}
	return exps
}

// TestCellCacheLRUBound: a MaxCells scheduler retains at most MaxCells
// completed cells, evicting least-recently-used; re-running an evicted
// cell recomputes it, re-running a retained one is a cache hit.
func TestCellCacheLRUBound(t *testing.T) {
	s := &Scheduler{Workers: 2, MaxCells: 3}
	exps := lruExperiments(5)
	ctx := context.Background()
	run := func(e *core.Experiment) *spmd.Result {
		res, err := s.run(ctx, pointKey(e, 2), func() (*spmd.Result, error) {
			return e.Point(ctx, 2)
		})
		if err != nil {
			t.Fatalf("run %s: %v", e.Name, err)
		}
		return res
	}
	for _, e := range exps {
		run(e)
	}
	s.mu.Lock()
	n, lruLen := len(s.cache), s.lru.Len()
	s.mu.Unlock()
	if n != 3 || lruLen != 3 {
		t.Fatalf("cache holds %d cells (lru %d), want 3", n, lruLen)
	}
	// exps[2..4] survived; exps[4] is MRU. Touch exps[2] (LRU) so
	// exps[3] becomes the eviction victim for the next insertion.
	r2a := run(exps[2])
	r2b := run(exps[2])
	if r2a != r2b {
		t.Error("retained cell recomputed, want pointer-identical cached result")
	}
	run(exps[0]) // re-insert: must evict exps[3], not exps[2]
	s.mu.Lock()
	_, have2 := s.cache[pointKey(exps[2], 2)]
	_, have3 := s.cache[pointKey(exps[3], 2)]
	s.mu.Unlock()
	if !have2 || have3 {
		t.Errorf("LRU order wrong after touch: have2=%v have3=%v, want true/false", have2, have3)
	}
}

// TestCellCacheLRUNeverEvictsInFlight: filling the cache past MaxCells
// while another cell is still running never evicts the in-flight cell —
// its waiters still coalesce onto the single execution.
func TestCellCacheLRUNeverEvictsInFlight(t *testing.T) {
	s := &Scheduler{Workers: 4, MaxCells: 1}
	ctx := context.Background()
	slowKey := cellKey{backend: "test", procs: 99}
	inWork := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int32
	done := make(chan *spmd.Result, 2)
	claim := func() {
		res, err := s.run(ctx, slowKey, func() (*spmd.Result, error) {
			runs.Add(1)
			close(inWork)
			<-release
			return &spmd.Result{Makespan: 1}, nil
		})
		if err != nil {
			t.Errorf("slow cell: %v", err)
		}
		done <- res
	}
	go claim()
	<-inWork
	// Complete enough other cells to trigger eviction pressure.
	for i := 0; i < 4; i++ {
		k := cellKey{backend: "test", procs: i}
		if _, err := s.run(ctx, k, func() (*spmd.Result, error) {
			return &spmd.Result{}, nil
		}); err != nil {
			t.Fatalf("filler cell %d: %v", i, err)
		}
	}
	s.mu.Lock()
	_, inCache := s.cache[slowKey]
	s.mu.Unlock()
	if !inCache {
		t.Fatal("in-flight cell evicted by LRU pressure")
	}
	// A second claimant must coalesce, not re-run.
	go claim()
	time.Sleep(10 * time.Millisecond)
	close(release)
	r1, r2 := <-done, <-done
	if runs.Load() != 1 {
		t.Errorf("in-flight cell ran %d times, want 1", runs.Load())
	}
	if r1 != r2 {
		t.Error("claimants got different results, want coalesced")
	}
}

// TestCellCacheUnboundedByDefault: MaxCells zero keeps every completed
// cell (the historical sweep behavior).
func TestCellCacheUnboundedByDefault(t *testing.T) {
	s := &Scheduler{Workers: 2}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		k := cellKey{backend: "test", procs: i}
		if _, err := s.run(ctx, k, func() (*spmd.Result, error) {
			return &spmd.Result{}, nil
		}); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	s.mu.Lock()
	n := len(s.cache)
	s.mu.Unlock()
	if n != 10 {
		t.Errorf("cache holds %d cells, want all 10", n)
	}
}
