package sched

import (
	"context"
	"fmt"
	"sync"
)

// Flight is a string-keyed singleflight group riding a Scheduler's
// worker pool: concurrent Do calls with the same key run the work once
// — under one pool slot — and every caller gets the one result. It is
// the coalescing seam the archetype service puts in front of run
// execution: the key is a content address (see internal/rescache), so
// identical in-flight requests collapse no matter how many clients
// submitted them.
//
// Unlike the Scheduler's cell cache, a Flight memoizes nothing: entries
// exist only while the work is in flight and are dropped when it
// completes. Completed-result reuse is the persistent cache's job;
// keeping the in-memory side flight-only means a long-lived server's
// coalescing state is bounded by its concurrency, not its history.
//
// Cancellation follows the cell discipline: a waiter whose own context
// dies stops waiting with its ctx.Err(); if the runner was cancelled,
// waiters with live contexts re-enter and run the work themselves
// rather than inheriting a foreign cancellation.
type Flight[V any] struct {
	// Sched provides the bounded worker pool; nil means Shared().
	Sched *Scheduler

	mu       sync.Mutex
	inflight map[string]*flightCell[V]
}

// flightCell is one in-flight computation: the first claimant runs it,
// later claimants wait for done.
type flightCell[V any] struct {
	done chan struct{}
	// joined counts coalescing waiters; guarded by the Flight's mu
	// (written by waiters at join time, read by the runner at drop time).
	joined int
	val    V
	err    error
}

func (f *Flight[V]) scheduler() *Scheduler {
	if f.Sched != nil {
		return f.Sched
	}
	return Shared()
}

// Pending returns the number of keys currently in flight.
func (f *Flight[V]) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.inflight)
}

// Do runs fn under key, coalescing with any in-flight call for the same
// key. It returns fn's result, plus shared=true when this caller got a
// result computed by (or also handed to) another caller — the signal
// the service surfaces as "coalesced". The work runs under one of the
// scheduler's worker slots, so a Flight shares its admission bound with
// every other user of the pool. A panicking fn is reported as an error
// to every waiter, not a crash.
func (f *Flight[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, false, err
	}
	s := f.scheduler()
	s.init()
	f.mu.Lock()
	if f.inflight == nil {
		f.inflight = make(map[string]*flightCell[V])
	}
	c, hit := f.inflight[key]
	if !hit {
		c = &flightCell[V]{done: make(chan struct{})}
		f.inflight[key] = c
	} else {
		c.joined++
	}
	f.mu.Unlock()
	if hit {
		select {
		case <-c.done:
			// The runner may have been cancelled while our context is
			// alive: it already dropped the key, so re-enter and run the
			// work ourselves rather than inheriting the cancellation.
			if c.err != nil && isCancellation(c.err) && ctx.Err() == nil {
				return f.Do(ctx, key, fn)
			}
			return c.val, true, c.err
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
	s.acquire()
	func() {
		defer s.release()
		defer close(c.done)
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("sched: flight %q panicked: %v", key, r)
			}
			if c.err != nil && ctx.Err() != nil {
				c.err = ctx.Err()
			}
			f.mu.Lock()
			// Waiters that joined before this delete share the result;
			// later callers with the same key start a fresh flight.
			shared = c.joined > 0
			delete(f.inflight, key)
			f.mu.Unlock()
		}()
		c.val, c.err = fn()
	}()
	return c.val, shared, c.err
}
