package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// blockingExperiment returns an experiment whose multi-process cells
// block in communication until release is set, plus the release flag.
// While the flag is zero, rank 0 waits for a message that never comes —
// only context cancellation can unwind it.
func blockingExperiment(name string) (*core.Experiment, *atomic.Bool) {
	var release atomic.Bool
	e := &core.Experiment{
		Name:  name,
		Model: machine.IBMSP(),
		Par: func(p *spmd.Proc) {
			if p.N() > 1 && p.Rank() == 0 && !release.Load() {
				p.Recv(1, 99) // rank 1 never sends tag 99
			}
			p.Flops(10)
		},
	}
	return e, &release
}

// TestSweepCancellation: cancelling a sweep's context mid-flight returns
// ctx.Err() promptly, leaks no goroutines, and does not poison the cache
// — the same experiment re-runs successfully under a live context.
func TestSweepCancellation(t *testing.T) {
	e, release := blockingExperiment("cancellable")
	s := &Scheduler{Workers: 2}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := s.Sweep(ctx, []*core.Experiment{e}, []int{1, 2, 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt", d)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines leaked after cancelled sweep: %d before, %d after", before, n)
	}

	// Cancellation must not be memoized: with the block released, the
	// same experiment sweeps cleanly under a fresh context.
	release.Store(true)
	curves, err := s.Sweep(context.Background(), []*core.Experiment{e}, []int{1, 2, 4})
	if err != nil {
		t.Fatalf("re-sweep after cancellation: %v", err)
	}
	if len(curves) != 1 || len(curves[0].Points) != 3 {
		t.Fatalf("re-sweep produced %v", curves)
	}
}

// TestCancellationDoesNotPoisonWaiters: when two sweeps with different
// contexts share a cell singleflight-style and the runner's context is
// cancelled, a waiter whose own context is alive must re-run the cell
// instead of inheriting the foreign cancellation.
func TestCancellationDoesNotPoisonWaiters(t *testing.T) {
	e, release := blockingExperiment("shared-cell")
	s := &Scheduler{Workers: 4}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()

	// Sweep A claims the cells and blocks in communication.
	aDone := make(chan error, 1)
	go func() {
		_, err := s.Sweep(ctxA, []*core.Experiment{e}, []int{2})
		aDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let A claim the cell and block

	// Sweep B, with a live context, waits on A's cells. Release the
	// block just before cancelling A so B's re-run completes.
	bDone := make(chan error, 1)
	go func() {
		_, err := s.Sweep(context.Background(), []*core.Experiment{e}, []int{2})
		bDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let B join the singleflight wait
	release.Store(true)
	cancelA()

	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep A = %v, want context.Canceled", err)
	}
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("sweep B with live context = %v, want success (re-run, not inherited cancellation)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep B hung after A's cancellation")
	}
}

// TestMapCancellation: the generic pool primitive observes its context.
func TestMapCancellation(t *testing.T) {
	s := &Scheduler{Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	var started int64
	gate := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
		close(gate)
	}()
	_, err := Map(ctx, s, 64, func(i int) (int, error) {
		atomic.AddInt64(&started, 1)
		<-gate
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Map = %v, want context.Canceled", err)
	}
	// With 2 workers and a cancelled context, most of the 64 cells must
	// have been skipped without running.
	if n := atomic.LoadInt64(&started); n > 16 {
		t.Errorf("%d cells started after cancellation, want early skip", n)
	}
}

// TestPointsCancellation: a pre-cancelled context refuses the whole sweep.
func TestPointsCancellation(t *testing.T) {
	s := &Scheduler{Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Points(ctx, "pts", 1, []int{1, 2}, func(np int) (*spmd.Result, error) {
		t.Error("cell ran under a pre-cancelled context")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Points = %v, want context.Canceled", err)
	}
}
