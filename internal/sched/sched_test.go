package sched

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// flopsExperiment builds a perfectly parallel experiment: work flops
// split evenly over the processes, with a ring exchange so communication
// is priced too.
func flopsExperiment(name string, work float64) *core.Experiment {
	return &core.Experiment{
		Name:  name,
		Model: machine.IBMSP(),
		Par: func(p *spmd.Proc) {
			p.Flops(work / float64(p.N()))
			if p.N() > 1 {
				next, prev := (p.Rank()+1)%p.N(), (p.Rank()-1+p.N())%p.N()
				p.Send(next, 1, p.Rank())
				spmd.Recv[int](p, prev, 1)
			}
		},
	}
}

// TestSweepMatchesSerialRun is the scheduler's correctness contract: the
// concurrent sweep produces bit-identical curves to Experiment.Run's
// serial loop, because every cell is an independent deterministic world.
func TestSweepMatchesSerialRun(t *testing.T) {
	exps := []*core.Experiment{
		flopsExperiment("a", 1e6),
		flopsExperiment("b", 2e6),
		flopsExperiment("c", 4e6),
	}
	procs := []int{1, 2, 4, 8}

	want := make([]*core.Curve, len(exps))
	for i, e := range exps {
		c, err := e.Run(context.Background(), procs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}

	s := &Scheduler{Workers: 4}
	got, err := s.Sweep(context.Background(), exps, procs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exps {
		if got[i].Name != want[i].Name || got[i].SeqTime != want[i].SeqTime {
			t.Fatalf("curve %d header: got %q/%g, want %q/%g",
				i, got[i].Name, got[i].SeqTime, want[i].Name, want[i].SeqTime)
		}
		for j := range want[i].Points {
			if got[i].Points[j] != want[i].Points[j] {
				t.Fatalf("curve %q point %d: got %+v, want %+v",
					got[i].Name, j, got[i].Points[j], want[i].Points[j])
			}
		}
	}
}

// TestCacheDeduplicatesCells asserts the singleflight cache: sweeping the
// same experiment again — and a baseline that coincides with the
// 1-process cell — must not re-run anything.
func TestCacheDeduplicatesCells(t *testing.T) {
	var runs int64
	e := &core.Experiment{
		Name:  "counted",
		Model: machine.IBMSP(),
		Par: func(p *spmd.Proc) {
			if p.Rank() == 0 {
				atomic.AddInt64(&runs, 1)
			}
			p.Flops(1000)
		},
	}
	procs := []int{1, 2, 4}
	s := &Scheduler{Workers: 2}
	if _, err := s.Sweep(context.Background(), []*core.Experiment{e, e}, procs); err != nil {
		t.Fatal(err)
	}
	// Seq is nil, so the baseline IS the 1-process cell: 3 distinct cells
	// total, listed twice, cached once each.
	if got := atomic.LoadInt64(&runs); got != 3 {
		t.Fatalf("matrix ran %d cells, want 3 (baseline shared with P=1, duplicate experiment cached)", got)
	}
	if _, err := s.Curve(context.Background(), e, procs); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&runs); got != 3 {
		t.Fatalf("re-sweep ran %d cells, want still 3 (cache spans sweeps)", got)
	}
}

// TestStreamDeliversEveryExperiment checks completion-order streaming.
func TestStreamDeliversEveryExperiment(t *testing.T) {
	exps := []*core.Experiment{
		flopsExperiment("s1", 1e5),
		flopsExperiment("s2", 1e5),
		flopsExperiment("s3", 1e5),
	}
	s := &Scheduler{Workers: 2}
	seen := map[string]bool{}
	for o := range s.Stream(context.Background(), exps, []int{1, 2}) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		seen[o.Curve.Name] = true
	}
	if len(seen) != len(exps) {
		t.Fatalf("stream delivered %d curves, want %d: %v", len(seen), len(exps), seen)
	}
}

// TestErrorPropagates: a panicking cell must surface as an error outcome,
// not hang the pool or poison later sweeps.
func TestErrorPropagates(t *testing.T) {
	bad := &core.Experiment{
		Name:  "bad",
		Model: machine.IBMSP(),
		Par: func(p *spmd.Proc) {
			if p.N() == 4 {
				panic("cell failure")
			}
			p.Flops(10)
		},
	}
	s := &Scheduler{Workers: 2}
	before := runtime.NumGoroutine()
	exps := []*core.Experiment{bad, flopsExperiment("ok1", 1e4), flopsExperiment("ok2", 1e4)}
	_, err := s.Sweep(context.Background(), exps, []int{1, 2, 4})
	if err == nil || !strings.Contains(err.Error(), "cell failure") {
		t.Fatalf("want cell failure error, got %v", err)
	}
	// The pool must still work afterwards.
	if _, err := s.Sweep(context.Background(), []*core.Experiment{flopsExperiment("after", 1e4)}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Sweep's early return must not strand the other experiments'
	// producer goroutines (Stream's channel is buffered for this).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines leaked after failed sweep: %d before, %d after", before, n)
	}
}

// TestPointsAssemblesCurve exercises the closure-cell sweep used by the
// figure reproductions (per-np block distributions).
func TestPointsAssemblesCurve(t *testing.T) {
	m := machine.IBMSP()
	procs := []int{1, 2, 4, 8}
	const work = 1e6
	s := &Scheduler{Workers: 4}
	seqTime := work * m.FlopTime
	c, err := s.Points(context.Background(), "pts", seqTime, procs, func(np int) (*spmd.Result, error) {
		return core.Simulate(np, m, func(p *spmd.Proc) {
			p.Flops(work / float64(np))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range c.Points {
		if pt.Procs != procs[i] {
			t.Fatalf("point %d out of order: procs %d, want %d", i, pt.Procs, procs[i])
		}
		if diff := pt.Speedup - float64(pt.Procs); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("point %d speedup %g, want %d", i, pt.Speedup, pt.Procs)
		}
	}
}

// TestSweepRunsConcurrently demonstrates the wall-clock win the scheduler
// exists for: a matrix of cells that each block 10ms completes far faster
// than the serial sum. Sleep-bound cells make the timing robust to host
// load and GOMAXPROCS.
func TestSweepRunsConcurrently(t *testing.T) {
	const cellDelay = 10 * time.Millisecond
	mk := func(name string) *core.Experiment {
		return &core.Experiment{
			Name:  name,
			Model: machine.IBMSP(),
			Par: func(p *spmd.Proc) {
				if p.Rank() == 0 {
					time.Sleep(cellDelay)
				}
				p.Flops(10)
			},
		}
	}
	exps := []*core.Experiment{mk("w"), mk("x"), mk("y"), mk("z")}
	procs := []int{1, 2}
	// 4 experiments × 2 cells (baseline = P=1 cell) = 8 distinct cells.
	serialStart := time.Now()
	for _, e := range exps {
		if _, err := e.Run(context.Background(), procs); err != nil {
			t.Fatal(err)
		}
	}
	serial := time.Since(serialStart)

	s := &Scheduler{Workers: 8}
	concStart := time.Now()
	if _, err := s.Sweep(context.Background(), exps, procs); err != nil {
		t.Fatal(err)
	}
	concurrent := time.Since(concStart)

	t.Logf("serial sweep %v, scheduled sweep %v (%d cells × %v)", serial, concurrent, 8, cellDelay)
	if concurrent >= serial {
		t.Errorf("scheduled sweep (%v) not faster than serial (%v)", concurrent, serial)
	}
}

// busyExperiment burns real CPU per cell so the benchmark measures
// compute-bound scheduling, not sleeps.
func busyExperiment(name string, n int) *core.Experiment {
	return &core.Experiment{
		Name:  name,
		Model: machine.IBMSP(),
		Par: func(p *spmd.Proc) {
			x := 1.0
			for i := 0; i < n; i++ {
				x = x*1.0000001 + 1e-9
			}
			p.Charge(x * 0) // keep x live, charge nothing
			p.Flops(float64(n) / float64(p.N()))
		},
	}
}

// BenchmarkSweepSerial is the baseline: the same matrix the scheduler
// benchmark runs, executed cell after cell.
func BenchmarkSweepSerial(b *testing.B) {
	procs := []int{1, 2, 4}
	for i := 0; i < b.N; i++ {
		for _, e := range []*core.Experiment{
			busyExperiment("a", 1<<20), busyExperiment("b", 1<<20),
			busyExperiment("c", 1<<20), busyExperiment("d", 1<<20),
		} {
			if _, err := e.Run(context.Background(), procs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepScheduler runs the matrix through the worker pool; fresh
// experiments each iteration keep the cache out of the measurement.
func BenchmarkSweepScheduler(b *testing.B) {
	procs := []int{1, 2, 4}
	for i := 0; i < b.N; i++ {
		s := &Scheduler{}
		if _, err := s.Sweep(context.Background(), []*core.Experiment{
			busyExperiment("a", 1<<20), busyExperiment("b", 1<<20),
			busyExperiment("c", 1<<20), busyExperiment("d", 1<<20),
		}, procs); err != nil {
			b.Fatal(err)
		}
	}
}
