package collective

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/spmd"
)

func testModel() *machine.Model {
	return &machine.Model{
		Name: "test", FlopTime: 1e-9, CmpTime: 1e-9, MemTime: 1e-9,
		Latency: 10e-6, Bandwidth: 10e6, SendOverhead: 1e-6, RecvOverhead: 1e-6,
	}
}

// worldSizes covers 1, 2, powers of two, and awkward non-powers.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31}

func runAll(t *testing.T, n int, body func(p *spmd.Proc)) *spmd.Result {
	t.Helper()
	res, err := spmd.MustWorld(n, testModel()).Run(body)
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	return res
}

func TestBroadcastAllRootsAllSizes(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n; root++ {
			got := make([]int, n)
			runAll(t, n, func(p *spmd.Proc) {
				v := -1
				if p.Rank() == root {
					v = 1000 + root
				}
				got[p.Rank()] = Broadcast(p, root, v)
			})
			for r, v := range got {
				if v != 1000+root {
					t.Fatalf("n=%d root=%d rank=%d got %d", n, root, r, v)
				}
			}
		}
	}
}

func TestGatherAllRoots(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n; root++ {
			var gathered []string
			runAll(t, n, func(p *spmd.Proc) {
				g := Gather(p, root, fmt.Sprintf("r%d", p.Rank()))
				if p.Rank() == root {
					gathered = g
				} else if g != nil {
					t.Errorf("non-root got non-nil gather")
				}
			})
			if len(gathered) != n {
				t.Fatalf("n=%d root=%d: gathered %d items", n, root, len(gathered))
			}
			for i, s := range gathered {
				if s != fmt.Sprintf("r%d", i) {
					t.Fatalf("gathered[%d] = %q", i, s)
				}
			}
		}
	}
}

func TestScatter(t *testing.T) {
	for _, n := range worldSizes {
		got := make([]int, n)
		runAll(t, n, func(p *spmd.Proc) {
			var parts []int
			if p.Rank() == 0 {
				parts = make([]int, n)
				for i := range parts {
					parts[i] = i * i
				}
			}
			got[p.Rank()] = Scatter(p, 0, parts)
		})
		for i, v := range got {
			if v != i*i {
				t.Fatalf("n=%d: scatter to %d got %d", n, i, v)
			}
		}
	}
}

func TestAllGatherBothVariants(t *testing.T) {
	for _, n := range worldSizes {
		for _, variant := range []struct {
			name string
			fn   func(p *spmd.Proc, v int) []int
		}{
			{"gather+bcast", func(p *spmd.Proc, v int) []int { return AllGather(p, v) }},
			{"exchange", func(p *spmd.Proc, v int) []int { return AllGatherExchange(p, v) }},
		} {
			results := make([][]int, n)
			runAll(t, n, func(p *spmd.Proc) {
				results[p.Rank()] = variant.fn(p, p.Rank()*7)
			})
			for r, all := range results {
				if len(all) != n {
					t.Fatalf("%s n=%d rank=%d: len %d", variant.name, n, r, len(all))
				}
				for i, v := range all {
					if v != i*7 {
						t.Fatalf("%s n=%d rank=%d: all[%d]=%d", variant.name, n, r, i, v)
					}
				}
			}
		}
	}
}

func TestAllToAll(t *testing.T) {
	for _, n := range worldSizes {
		results := make([][]string, n)
		runAll(t, n, func(p *spmd.Proc) {
			parts := make([]string, n)
			for dst := range parts {
				parts[dst] = fmt.Sprintf("%d->%d", p.Rank(), dst)
			}
			results[p.Rank()] = AllToAll(p, parts)
		})
		for dst := 0; dst < n; dst++ {
			for src := 0; src < n; src++ {
				want := fmt.Sprintf("%d->%d", src, dst)
				if results[dst][src] != want {
					t.Fatalf("n=%d: results[%d][%d]=%q want %q", n, dst, src, results[dst][src], want)
				}
			}
		}
	}
}

func TestReduceDeterministicOrder(t *testing.T) {
	// Reduce at the root folds in ascending rank order; with string
	// concatenation (non-commutative) this is directly observable.
	for _, n := range worldSizes {
		var got string
		runAll(t, n, func(p *spmd.Proc) {
			r := Reduce(p, 0, fmt.Sprintf("%d.", p.Rank()), func(a, b string) string { return a + b })
			if p.Rank() == 0 {
				got = r
			}
		})
		want := ""
		for i := 0; i < n; i++ {
			want += fmt.Sprintf("%d.", i)
		}
		if got != want {
			t.Fatalf("n=%d: reduce = %q, want %q", n, got, want)
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	for _, n := range worldSizes {
		results := make([]int, n)
		runAll(t, n, func(p *spmd.Proc) {
			results[p.Rank()] = AllReduce(p, p.Rank()+1, func(a, b int) int { return a + b })
		})
		want := n * (n + 1) / 2
		for r, v := range results {
			if v != want {
				t.Fatalf("n=%d rank=%d: allreduce = %d, want %d", n, r, v, want)
			}
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	for _, n := range worldSizes {
		results := make([]float64, n)
		runAll(t, n, func(p *spmd.Proc) {
			local := math.Sin(float64(p.Rank()) * 1.7)
			results[p.Rank()] = AllReduce(p, local, math.Max)
		})
		want := results[0]
		var expect float64 = math.Inf(-1)
		for i := 0; i < n; i++ {
			expect = math.Max(expect, math.Sin(float64(i)*1.7))
		}
		for r, v := range results {
			if v != want {
				t.Fatalf("n=%d: rank %d disagrees: %g vs %g", n, r, v, want)
			}
		}
		if want != expect {
			t.Fatalf("n=%d: allreduce max = %g, want %g", n, want, expect)
		}
	}
}

func TestAllReduceIdenticalEverywhereNonCommutative(t *testing.T) {
	// With floating-point addition the tree order is fixed, so every
	// process must get the bit-identical result.
	for _, n := range worldSizes {
		results := make([]float64, n)
		runAll(t, n, func(p *spmd.Proc) {
			local := 1.0 / float64(p.Rank()+3)
			results[p.Rank()] = AllReduce(p, local, func(a, b float64) float64 { return a + b })
		})
		for r := 1; r < n; r++ {
			if results[r] != results[0] {
				t.Fatalf("n=%d: rank %d result %g != rank 0 result %g", n, r, results[r], results[0])
			}
		}
	}
}

func TestAllReduceGBMatchesSequentialFold(t *testing.T) {
	for _, n := range worldSizes {
		results := make([]string, n)
		runAll(t, n, func(p *spmd.Proc) {
			results[p.Rank()] = AllReduceGB(p, fmt.Sprintf("%d.", p.Rank()), func(a, b string) string { return a + b })
		})
		want := ""
		for i := 0; i < n; i++ {
			want += fmt.Sprintf("%d.", i)
		}
		for r, v := range results {
			if v != want {
				t.Fatalf("n=%d rank=%d: %q want %q", n, r, v, want)
			}
		}
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	for _, n := range []int{2, 3, 8, 13} {
		res := runAll(t, n, func(p *spmd.Proc) {
			// Stagger the clocks, then barrier.
			p.Charge(float64(p.Rank()) * 1e-3)
			Barrier(p)
		})
		maxPre := float64(n-1) * 1e-3
		for r, c := range res.Clocks {
			if c < maxPre {
				t.Fatalf("n=%d: rank %d clock %g below pre-barrier max %g", n, r, c, maxPre)
			}
		}
	}
}

func TestMaxClock(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		got := make([]float64, n)
		runAll(t, n, func(p *spmd.Proc) {
			p.Charge(float64(p.Rank()+1) * 1e-3)
			got[p.Rank()] = MaxClock(p)
		})
		for r := 1; r < n; r++ {
			if got[r] != got[0] {
				t.Fatalf("n=%d: MaxClock disagrees across ranks", n)
			}
		}
		if got[0] < float64(n)*1e-3 {
			t.Fatalf("n=%d: MaxClock %g below true max %g", n, got[0], float64(n)*1e-3)
		}
	}
}

func TestBroadcastLogDepth(t *testing.T) {
	// A binomial broadcast of a zero-byte token across n processes should
	// take about ceil(log2 n) message times on the critical path, far
	// less than a linear n-1 chain.
	m := testModel()
	n := 64
	res, err := spmd.MustWorld(n, m).Run(func(p *spmd.Proc) {
		Broadcast(p, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	per := m.MsgTime(8)
	depth := res.Makespan / per
	if depth > 8 { // log2(64)=6, allow slack for overhead accounting
		t.Errorf("broadcast depth = %.1f message times, want ~6", depth)
	}
}

// TestNonPowerOfTwoMessageCounts pins down the communication volume of
// the collectives at awkward process counts (P = 3, 5, 7), where the
// recursive-doubling pre/post adjustment and binomial-tree remainders
// kick in. Counts are exact: the typed, self-metering send layer must
// price exactly the messages the algorithms specify.
func TestNonPowerOfTwoMessageCounts(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		// AllToAll: every process sends to every other, once.
		res := runAll(t, n, func(p *spmd.Proc) {
			parts := make([]int, n)
			AllToAll(p, parts)
		})
		if want := int64(n * (n - 1)); res.Msgs != want {
			t.Errorf("n=%d: AllToAll sent %d msgs, want %d", n, res.Msgs, want)
		}

		// Broadcast: a binomial tree delivers to every non-root exactly
		// once — N-1 messages total.
		res = runAll(t, n, func(p *spmd.Proc) { Broadcast(p, 0, 1.0) })
		if want := int64(n - 1); res.Msgs != want {
			t.Errorf("n=%d: Broadcast sent %d msgs, want %d", n, res.Msgs, want)
		}

		// Gather: linear, N-1 messages into the root.
		res = runAll(t, n, func(p *spmd.Proc) { Gather(p, 0, p.Rank()) })
		if want := int64(n - 1); res.Msgs != want {
			t.Errorf("n=%d: Gather sent %d msgs, want %d", n, res.Msgs, want)
		}

		// AllReduce with recursive doubling and rem = N - 2^floor(log2 N)
		// folded ranks: 2*rem fold/unfold messages plus log2(pof2) rounds
		// of pairwise exchange among the power-of-two survivors.
		pof2 := 1
		log2 := 0
		for pof2*2 <= n {
			pof2 *= 2
			log2++
		}
		rem := n - pof2
		res = runAll(t, n, func(p *spmd.Proc) {
			AllReduce(p, float64(p.Rank()), func(a, b float64) float64 { return a + b })
		})
		if want := int64(2*rem + pof2*log2); res.Msgs != want {
			t.Errorf("n=%d: AllReduce sent %d msgs, want %d", n, res.Msgs, want)
		}

		// Barrier: dissemination, ceil(log2 N) rounds of N messages.
		rounds := 0
		for mask := 1; mask < n; mask <<= 1 {
			rounds++
		}
		res = runAll(t, n, func(p *spmd.Proc) { Barrier(p) })
		if want := int64(rounds * n); res.Msgs != want {
			t.Errorf("n=%d: Barrier sent %d msgs, want %d", n, res.Msgs, want)
		}
	}
}

// TestAllReduceBytesNonPowerOfTwo checks the metered byte volume at
// P = 3, 5, 7: every recursive-doubling partial carries its payload plus
// the 8-byte origin-rank word, priced automatically via spmd.Sized.
func TestAllReduceBytesNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		res := runAll(t, n, func(p *spmd.Proc) {
			AllReduce(p, float64(p.Rank()), func(a, b float64) float64 { return a + b })
		})
		pof2 := 1
		log2 := 0
		for pof2*2 <= n {
			pof2 *= 2
			log2++
		}
		rem := n - pof2
		// Fold-in and exchange messages carry a 16-byte partial (float64
		// + rank word); the unfold result message carries a bare float64.
		want := int64(rem*16 + pof2*log2*16 + rem*8)
		if res.Bytes != want {
			t.Errorf("n=%d: AllReduce moved %d bytes, want %d", n, res.Bytes, want)
		}
	}
}

func TestAllReducePropertyRandomSizes(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%20 + 1
		results := make([]int64, n)
		_, err := spmd.MustWorld(n, testModel()).Run(func(p *spmd.Proc) {
			v := int64(p.Rank()*p.Rank() + 1)
			results[p.Rank()] = AllReduce(p, v, func(a, b int64) int64 { return a + b })
		})
		if err != nil {
			return false
		}
		var want int64
		for i := 0; i < n; i++ {
			want += int64(i*i + 1)
		}
		for _, v := range results {
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
