// Package collective implements the communication operations the paper's
// archetypes require (§2.4, §3.3): broadcast, gather, scatter, all-gather,
// all-to-all, reduction (both all-to-one/one-to-all and recursive-doubling
// forms — Figure 9), and barrier.
//
// All operations are built from spmd point-to-point messages, so their
// virtual-time costs emerge from the machine model rather than being
// asserted: a recursive-doubling reduction really takes ceil(log2 N)
// message rounds, an all-to-all really sends N-1 messages per process, and
// the experiment figures inherit these shapes.
//
// Every process in the world must call the same collective in the same
// order — the usual SPMD contract. Payload sizes for cost accounting come
// from spmd.BytesOf; payload types outside its table should implement
// spmd.Sized.
package collective

import (
	"repro/internal/obs"
	"repro/internal/spmd"
)

// Tag space reserved by this package. Applications should use tags >= TagUser.
const (
	tagBcast = 1 + iota
	tagGather
	tagScatter
	tagAllToAll
	tagReduceUp
	tagReduceDown
	tagBarrierBase // barrier uses tagBarrierBase+round
	tagRDBase      = 32
	// TagUser is the first tag value free for application protocols.
	TagUser = 128
)

// Broadcast distributes root's value to every process using a binomial
// tree (ceil(log2 N) rounds on the critical path) and returns it
// everywhere. Non-root callers' v argument is ignored.
func Broadcast[T any](p spmd.Comm, root int, v T) T {
	n, rank := p.N(), p.Rank()
	if n == 1 {
		return v
	}
	rel := rank - root
	if rel < 0 {
		rel += n
	}
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := rank - mask
			if src < 0 {
				src += n
			}
			v = spmd.Recv[T](p, src, tagBcast)
			break
		}
		mask <<= 1
	}
	// mask is the bit at which this process received (or >= n at root);
	// forward down the remaining subtree.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := rank + mask
			if dst >= n {
				dst -= n
			}
			spmd.SendT(p, dst, tagBcast, v)
		}
		mask >>= 1
	}
	return v
}

// Gather collects one value from every process at root. At root it returns
// a slice indexed by rank; elsewhere it returns nil. The implementation is
// linear (N-1 receives at the root), matching the simple gather the paper's
// archetype libraries provided; the serialization at the root is part of
// the cost the one-deep figures exhibit.
func Gather[T any](p spmd.Comm, root int, v T) []T {
	n, rank := p.N(), p.Rank()
	if rank != root {
		spmd.SendT(p, root, tagGather, v)
		return nil
	}
	out := make([]T, n)
	out[rank] = v
	for src := 0; src < n; src++ {
		if src == rank {
			continue
		}
		out[src] = spmd.Recv[T](p, src, tagGather)
	}
	return out
}

// Scatter distributes parts[i] from root to process i and returns each
// process's part. Only root's parts argument is consulted; it must have
// length N.
func Scatter[T any](p spmd.Comm, root int, parts []T) T {
	n, rank := p.N(), p.Rank()
	if rank == root {
		if len(parts) != n {
			panic("collective: Scatter parts length must equal world size")
		}
		for dst := 0; dst < n; dst++ {
			if dst == rank {
				continue
			}
			spmd.SendT(p, dst, tagScatter, parts[dst])
		}
		return parts[rank]
	}
	return spmd.Recv[T](p, root, tagScatter)
}

// AllGather makes every process's value known to all processes, returning
// a slice indexed by rank. It is implemented as gather-to-0 followed by
// broadcast — option (i) of §2.4. See AllGatherExchange for option (ii).
func AllGather[T any](p spmd.Comm, v T) []T {
	all := Gather(p, 0, v)
	return Broadcast(p, 0, all)
}

// AllGatherExchange is the all-to-all formulation of all-gather — option
// (ii) of §2.4: every process sends its value directly to every other.
// One round of N-1 sends and receives per process; cheaper than
// AllGather for small N on low-latency networks, worse for large N.
func AllGatherExchange[T any](p spmd.Comm, v T) []T {
	n, rank := p.N(), p.Rank()
	out := make([]T, n)
	out[rank] = v
	for k := 1; k < n; k++ {
		spmd.SendT(p, (rank+k)%n, tagAllToAll, v)
	}
	for k := 1; k < n; k++ {
		src := (rank - k + n) % n
		out[src] = spmd.Recv[T](p, src, tagAllToAll)
	}
	return out
}

// AllToAll performs a personalized exchange: parts[dst] travels from this
// process to process dst; the result holds, at index src, the part that
// process src addressed to this process. parts must have length N; the
// rank-th entry is kept locally (copy cost only). This is the
// redistribution primitive of the one-deep split and merge phases and of
// mesh-spectral grid redistribution.
func AllToAll[T any](p spmd.Comm, parts []T) []T {
	n, rank := p.N(), p.Rank()
	if len(parts) != n {
		panic("collective: AllToAll parts length must equal world size")
	}
	out := make([]T, n)
	out[rank] = parts[rank]
	for k := 1; k < n; k++ {
		dst := (rank + k) % n
		spmd.SendT(p, dst, tagAllToAll, parts[dst])
	}
	for k := 1; k < n; k++ {
		src := (rank - k + n) % n
		out[src] = spmd.Recv[T](p, src, tagAllToAll)
	}
	return out
}

// Reduce combines every process's value with op and returns the result at
// root (zero value elsewhere). The combination is performed at the root in
// ascending rank order — the deterministic all-to-one pattern of §3.3 —
// so floating-point results match a sequential left fold over ranks.
func Reduce[T any](p spmd.Comm, root int, v T, op func(a, b T) T) T {
	n, rank := p.N(), p.Rank()
	if rank != root {
		spmd.SendT(p, root, tagReduceUp, v)
		var zero T
		return zero
	}
	parts := make([]T, n)
	parts[rank] = v
	for src := 0; src < n; src++ {
		if src == rank {
			continue
		}
		parts[src] = spmd.Recv[T](p, src, tagReduceUp)
	}
	acc := parts[0]
	for i := 1; i < n; i++ {
		acc = op(acc, parts[i])
	}
	return acc
}

// partial is a recursive-doubling partial: a reduction value tagged with
// the minimum original rank it covers, so combination order is fixed by
// rank. Its wire size is the payload's plus the rank word, matching the
// cost the manual accounting charged.
type partial[T any] struct {
	MinRank int
	V       T
}

// VBytes implements spmd.Sized.
func (x partial[T]) VBytes() int { return spmd.BytesOf(x.V) + 8 }

// AllReduce combines every process's value with op and returns the result
// on all processes, using recursive doubling (Figure 9):
// ceil(log2 N) exchange rounds, with the standard pre/post adjustment for
// non-power-of-two N. op is applied with the lower-origin-rank partial as
// its first argument, so every process computes the identical value (a
// fixed reduction tree), though the tree order differs from Reduce's left
// fold — the paper's "associative or can be so treated" caveat.
func AllReduce[T any](p spmd.Comm, v T, op func(a, b T) T) T {
	n, rank := p.N(), p.Rank()
	if n == 1 {
		return v
	}
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2

	combine := func(a, b partial[T]) partial[T] {
		if a.MinRank < b.MinRank {
			return partial[T]{a.MinRank, op(a.V, b.V)}
		}
		return partial[T]{b.MinRank, op(b.V, a.V)}
	}
	acc := partial[T]{rank, v}

	// Fold the first 2*rem ranks down so a power-of-two subset remains:
	// even ranks < 2*rem ship their value to the next odd rank and sit out.
	newRank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		spmd.SendT(p, rank+1, tagRDBase, acc)
	case rank < 2*rem: // odd
		rv := spmd.Recv[partial[T]](p, rank-1, tagRDBase)
		acc = combine(rv, acc)
		newRank = rank / 2
	default:
		newRank = rank - rem
	}

	if newRank >= 0 {
		realRank := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		round := 1
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := realRank(newRank ^ mask)
			spmd.SendT(p, partner, tagRDBase+round, acc)
			rv := spmd.Recv[partial[T]](p, partner, tagRDBase+round)
			acc = combine(acc, rv)
			round++
		}
	}

	// Ship results back to the ranks folded out in the first step.
	switch {
	case rank < 2*rem && rank%2 == 0:
		acc.V = spmd.Recv[T](p, rank+1, tagReduceDown)
	case rank < 2*rem: // odd
		spmd.SendT(p, rank-1, tagReduceDown, acc.V)
	}
	return acc.V
}

// AllReduceGB is the gather/broadcast formulation of all-reduce (reduce at
// rank 0 in rank order, then broadcast). Deterministic left-fold order;
// used as the ablation baseline against recursive doubling.
func AllReduceGB[T any](p spmd.Comm, v T, op func(a, b T) T) T {
	r := Reduce(p, 0, v, op)
	return Broadcast(p, 0, r)
}

// Barrier synchronizes all processes with a dissemination barrier:
// ceil(log2 N) rounds of zero-byte token exchange. After it returns, every
// process's virtual clock is at least the maximum pre-barrier clock.
// traced is satisfied by a world-level *spmd.Proc when its transport
// records events; group views don't implement it, so sub-communicator
// barriers stay uninstrumented (their sends/recvs are still traced).
type traced interface {
	Recorder() *obs.Recorder
	Stamp() int64
	Rank() int
}

func Barrier(p spmd.Comm) {
	var rec *obs.Recorder
	var start int64
	tp, ok := p.(traced)
	if ok {
		if rec = tp.Recorder(); rec != nil {
			start = tp.Stamp()
		}
	}
	n, rank := p.N(), p.Rank()
	round := 0
	for mask := 1; mask < n; mask <<= 1 {
		p.Send((rank+mask)%n, tagBarrierBase+round, nil)
		p.Recv((rank-mask+n)%n, tagBarrierBase+round)
		round++
	}
	if rec != nil {
		rec.Emit(rank, obs.Event{T: start, Dur: tp.Stamp() - start, Peer: -1, Kind: obs.KindBarrier})
	}
}

// MaxClock returns the maximum virtual clock across all processes and,
// as a side effect of the dissemination pattern, aligns every clock to at
// least that value. Useful for phase-by-phase timing breakdowns.
func MaxClock(p spmd.Comm) float64 {
	c := AllReduce(p, p.Clock(), func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
	p.Idle(c)
	return c
}
