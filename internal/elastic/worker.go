package elastic

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/backend/dist"
	"repro/internal/backoff"
)

// Environment keys of the self-spawn protocol, mirroring the dist
// backend's: the coordinator re-executes its own binary with envWorker
// pointing at its control listener, and MaybeWorker turns that process
// into an elastic worker before the host program's main logic runs.
const (
	envWorker = "ARCHELASTIC_WORKER"
	envToken  = "ARCHELASTIC_TOKEN"
)

// MaybeWorker turns the current process into an elastic worker when it
// was self-spawned by an elastic coordinator (the ARCHELASTIC_WORKER
// environment variable is set) and never returns in that case; otherwise
// it is a no-op. Call it first thing in main (next to dist.MaybeWorker)
// of any binary that should support the elastic backend's default
// self-spawn mode.
func MaybeWorker() {
	addr := os.Getenv(envWorker)
	if addr == "" {
		return
	}
	if err := Join(context.Background(), addr, os.Getenv(envToken)); err != nil {
		fmt.Fprintf(os.Stderr, "elastic worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// reconnectPolicy is the redial schedule after a lost coordinator
// connection: fast, because either the coordinator is still there (an
// injected or real link fault) and the worker should rejoin promptly, or
// it is gone (world over) and the worker should give up promptly.
func reconnectPolicy() backoff.Policy {
	return backoff.Policy{Attempts: 5, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0.5}
}

// Join serves an elastic coordinator as a worker endpoint: it dials addr
// (retrying the initial dial with exponential backoff + jitter, so a
// worker started moments before its coordinator attaches instead of
// dying), attaches, and hosts rank inboxes until the world finishes.
//
// If the connection breaks mid-world the worker redials with backoff and
// re-attaches as a brand-new worker with empty state — the coordinator's
// shadow queues are authoritative, and a lost worker's leases were
// already rescheduled the moment it was declared dead, so a rejoining
// worker simply pulls queued rank tasks like any other mid-run joiner.
// Join returns nil when a world it served finished (or the coordinator
// disappeared after at least one successful attach), and an error only
// when it never managed to attach at all.
func Join(ctx context.Context, addr, token string) error {
	attachedOnce := false
	for {
		var conn net.Conn
		pol := backoff.Dial()
		if attachedOnce {
			pol = reconnectPolicy()
		}
		err := pol.Retry(ctx, func() error {
			var derr error
			conn, derr = net.Dial("tcp", addr)
			return derr
		})
		if err != nil {
			if attachedOnce {
				// Coordinator gone: the world is over (finished, failed, or
				// cancelled); a worker outliving its world exits quietly.
				return nil
			}
			return fmt.Errorf("elastic: dialing coordinator %s: %w", addr, err)
		}
		attached, done, err := serveConn(conn, token)
		attachedOnce = attachedOnce || attached
		if done {
			return err
		}
		// Connection broke mid-world: reconnect as a fresh worker.
	}
}

// serveConn speaks the worker side of the protocol on one established
// coordinator connection. attached reports whether the handshake
// completed; done reports a terminal outcome (finish barrier or protocol
// error) as opposed to a reconnectable link loss.
func serveConn(conn net.Conn, token string) (attached, done bool, err error) {
	defer conn.Close()
	if err := dist.WriteFrame(conn, opHello, helloBody(token, os.Getpid())); err != nil {
		return false, false, nil
	}
	br := bufio.NewReader(conn)
	op, body, err := dist.ReadFrame(br)
	if err != nil {
		return false, false, nil
	}
	if op != opWelcome {
		return false, true, fmt.Errorf("elastic: worker expected welcome, got op %d", op)
	}
	if _, _, err := parseWelcome(body); err != nil {
		return false, true, err
	}

	// Per-(rank, src) FIFO inboxes for the ranks this worker hosts. The
	// coordinator only pops what its shadow queues prove it enqueued, so
	// an empty pop is a protocol violation, not a blocking condition.
	type key struct{ rank, src int }
	inbox := map[key][][]byte{}

	for {
		op, body, err := dist.ReadFrame(br)
		if err != nil {
			return true, false, nil // link lost: reconnectable
		}
		switch op {
		case opEnq:
			rank, src, tag, metered, payload, err := parseEnq(body)
			if err != nil {
				return true, true, err
			}
			k := key{rank, src}
			inbox[k] = append(inbox[k], msgBody(src, tag, metered, payload))
		case opPop:
			rank, src, err := parsePop(body)
			if err != nil {
				return true, true, err
			}
			k := key{rank, src}
			q := inbox[k]
			if len(q) == 0 {
				return true, true, fmt.Errorf("elastic: worker popped empty inbox for rank %d src %d", rank, src)
			}
			m := q[0]
			inbox[k] = q[1:]
			if err := dist.WriteFrame(conn, opMsg, m); err != nil {
				return true, false, nil
			}
		case opPing:
			if err := dist.WriteFrame(conn, opPong, nil); err != nil {
				return true, false, nil
			}
		case opFinish:
			dist.WriteFrame(conn, opBye, nil) //nolint:errcheck // teardown is best-effort
			return true, true, nil
		default:
			return true, true, fmt.Errorf("elastic: worker received unexpected op %d", op)
		}
	}
}
