package elastic

import (
	"encoding/binary"
	"fmt"
	"time"
)

// The elastic control protocol rides the dist backend's length-prefixed
// frame format ([u32 BE length][u8 op][body], see dist.ReadFrame) with
// its own op space. One TCP connection per worker carries everything:
//
//   - handshake: hello (worker → coordinator: token, pid) answered by
//     welcome (worker id, heartbeat interval);
//   - data plane: enq (coordinator → worker, fire-and-forget: store a
//     message in the worker-side inbox of the rank it hosts) and
//     pop (coordinator → worker, request) answered by msg (response) —
//     the coordinator only pops messages its shadow queues prove are
//     present, so a pop never blocks worker-side;
//   - liveness: ping answered by pong;
//   - teardown: finish answered by bye.
//
// The coordinator serializes request/response pairs per connection (one
// outstanding request), so no correlation ids are needed. Payloads are
// spmd wire-codec bytes; workers store and echo them opaquely.
const (
	opHello byte = 64 + iota
	opWelcome
	opEnq
	opPop
	opMsg
	opPing
	opPong
	opFinish
	opBye
)

// maxBody bounds parsed frame fields against corrupt lengths.
const maxBody = 1 << 30

type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("elastic: truncated frame body at offset %d", c.off)
	}
}

func (c *cursor) u32() uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) str() string {
	n, w := binary.Uvarint(c.b[c.off:])
	if c.err != nil || w <= 0 || n > uint64(len(c.b)-c.off-w) {
		c.fail()
		return ""
	}
	s := string(c.b[c.off+w : c.off+w+int(n)])
	c.off += w + int(n)
	return s
}

func (c *cursor) rest() []byte {
	if c.err != nil {
		return nil
	}
	return c.b[c.off:]
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// hello (worker → coordinator): authenticate.
func helloBody(token string, pid int) []byte {
	buf := appendStr(nil, token)
	return binary.BigEndian.AppendUint64(buf, uint64(pid))
}

func parseHello(b []byte) (token string, pid int, err error) {
	c := &cursor{b: b}
	token = c.str()
	pid = int(c.u64())
	return token, pid, c.err
}

// welcome (coordinator → worker): attach acknowledgment.
func welcomeBody(id int, heartbeat time.Duration) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(id))
	return binary.BigEndian.AppendUint64(buf, uint64(heartbeat))
}

func parseWelcome(b []byte) (id int, heartbeat time.Duration, err error) {
	c := &cursor{b: b}
	id = int(c.u32())
	heartbeat = time.Duration(c.u64())
	return id, heartbeat, c.err
}

// enq (coordinator → worker): store a message for a hosted rank. msg
// (worker → coordinator) reuses the same body shape minus the rank field
// prefix — pop names the (rank, src) pair, msg echoes (src, tag, metered,
// payload).
func enqBody(rank, src, tag, metered int, payload []byte) []byte {
	buf := make([]byte, 0, 24+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(src))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(tag)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(metered)))
	return append(buf, payload...)
}

func parseEnq(b []byte) (rank, src, tag, metered int, payload []byte, err error) {
	c := &cursor{b: b}
	rank, src = int(c.u32()), int(c.u32())
	tag = int(int64(c.u64()))
	metered = int(int64(c.u64()))
	return rank, src, tag, metered, c.rest(), c.err
}

func popBody(rank, src int) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(rank))
	return binary.BigEndian.AppendUint32(buf, uint32(src))
}

func parsePop(b []byte) (rank, src int, err error) {
	c := &cursor{b: b}
	rank, src = int(c.u32()), int(c.u32())
	return rank, src, c.err
}

func msgBody(src, tag, metered int, payload []byte) []byte {
	buf := make([]byte, 0, 20+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(src))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(tag)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(metered)))
	return append(buf, payload...)
}

func parseMsg(b []byte) (src, tag, metered int, payload []byte, err error) {
	c := &cursor{b: b}
	src = int(c.u32())
	tag = int(int64(c.u64()))
	metered = int(int64(c.u64()))
	return src, tag, metered, c.rest(), c.err
}
