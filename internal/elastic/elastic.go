// Package elastic is the fault-tolerant execution backend: an SPMD world
// whose ranks are tasks on a work queue rather than pinned processes.
//
// The sim, real, and dist backends bind each rank to one goroutine or
// one OS process for the life of the run; a lost dist worker therefore
// fails the whole world (PR 4's crash monitor). This package turns that
// error path into recovery, productionizing the archetypes paper's
// master/worker pattern as a runner. The coordinator owns the world's
// authoritative state — per-rank shadow queues of undelivered messages
// and a deterministic per-rank delivery log — and leases each rank to
// one of a pool of worker endpoints:
//
//	coordinator ── enq (fire-and-forget) ──> worker hosting dst's inbox
//	coordinator ── pop (request/response) ── worker hosting dst's inbox
//
// Rank bodies execute as goroutines in the coordinating process (as on
// dist); every payload leaves the coordinator as spmd wire-codec bytes,
// is stored in the hosting worker's inbox, and comes back on delivery.
// When a worker dies — detected by connection I/O errors, missed
// heartbeats, or a spawned process exiting — its hosted ranks are
// rescheduled onto any live worker: the rank body re-executes from the
// start, the delivery log replays every message it had already received
// (decoded fresh from the logged bytes), and already-performed sends are
// suppressed (not re-sent, not re-metered). Because rank bodies are
// deterministic, the re-execution reaches the crash point in the same
// state and continues live: the world completes with results and
// msg/byte meters bit-identical to an uninterrupted run.
//
// Elasticity cuts both ways: workers can also join mid-run — anything
// dialing the coordinator's listener with the world token attaches and
// immediately becomes leasable, pulling queued rank tasks. A worker that
// lost its connection redials with exponential backoff + jitter and
// rejoins as a fresh worker. A per-world recovery budget (max restarts
// per rank, overall recovery deadline) degrades pathological loops —
// e.g. a fault injector that kills every host — into a clean error
// instead of a livelock.
//
// Fault injection is first-class: WithInjector installs a
// faultinject.Injector evaluated after every completed rank operation
// ("elastic.rank.op", epoch = the rank's logical operation index), so
// tests and the chaos CI job kill a rank's host at a deterministic
// program point.
//
// Replay correctness requires what all registered archetype apps
// satisfy: rank bodies must be deterministic (no wall-clock or RecvAny
// scheduling decisions feeding results) and their writes into shared
// memory idempotent under re-execution (pure assignment of computed
// values, which re-execution repeats identically).
package elastic

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/faultinject"
	"repro/internal/machine"
)

// runner is the elastic backend: a Transport factory whose pool shape,
// liveness parameters, and recovery budget are fixed at construction.
// The registered default self-spawns localhost worker processes.
type runner struct {
	// workers is the pool size at world start (0 = min(n, 4)).
	workers int
	// local runs workers as goroutines in this process (dialing the
	// coordinator over loopback TCP) instead of spawning OS processes —
	// the test and bench configuration: both protocol sides run under
	// the race detector, and "killing" a worker is closing its
	// connection.
	local bool
	// reconnect lets local workers redial after losing their connection
	// (spawned workers always reconnect; see Join).
	reconnect bool
	// external expects the starting pool to attach from outside (via
	// onAttach or archworker -elastic -join) instead of being spawned.
	external bool
	// workerCmd overrides the spawned command (default: re-execute this
	// binary, relying on MaybeWorker).
	workerCmd []string
	handshake time.Duration
	// hbInterval/hbMiss: ping cadence and consecutive misses before a
	// worker is declared dead.
	hbInterval time.Duration
	hbMiss     int
	// maxRestarts bounds re-executions per rank; deadline bounds the
	// world's total time after its first restart.
	maxRestarts int
	deadline    time.Duration
	inj         *faultinject.Injector
	observer    func(Stats)
	onStarve    func(addr, token string)
	onAttach    func(addr, token string)
}

// Stats summarizes one run's recovery activity, reported through
// WithObserver when the world finishes.
type Stats struct {
	// Workers counts distinct worker endpoints that ever attached.
	Workers int
	// DeclaredDead counts workers declared dead mid-run.
	DeclaredDead int
	// Restarts counts rank re-executions (a rank rescheduled twice
	// counts twice).
	Restarts int
	// JoinPickups counts rescheduled rank attempts leased to workers
	// that attached after world start — the mid-run join payoff.
	JoinPickups int
}

// Option configures an elastic runner.
type Option func(*runner)

// WithWorkerCount sets the worker-pool size at world start (default
// min(n, 4); the pool can grow by mid-run joins regardless).
func WithWorkerCount(w int) Option {
	return func(r *runner) { r.workers = w }
}

// WithLocalWorkers runs the starting pool as goroutines in this process
// over loopback TCP instead of spawning OS processes. reconnect controls
// whether a local worker redials after losing its connection (rejoining
// as a fresh worker), which is what spawned workers always do.
func WithLocalWorkers(reconnect bool) Option {
	return func(r *runner) { r.local = true; r.reconnect = reconnect }
}

// WithWorkerCommand spawns workers by running the given command instead
// of re-executing the current binary; the command's main must call
// MaybeWorker (coordinator address and token travel in the environment).
func WithWorkerCommand(name string, args ...string) Option {
	return func(r *runner) { r.workerCmd = append([]string{name}, args...) }
}

// WithHandshakeTimeout bounds how long NewTransport waits for the
// starting pool to attach (default 30s).
func WithHandshakeTimeout(d time.Duration) Option {
	return func(r *runner) { r.handshake = d }
}

// WithHeartbeat sets the coordinator→worker ping interval and the number
// of consecutive misses after which a silent worker is declared dead
// (defaults 500ms and 4: a worker that stops responding is dead within
// ~2s even if its TCP connection stays open).
func WithHeartbeat(interval time.Duration, miss int) Option {
	return func(r *runner) { r.hbInterval, r.hbMiss = interval, miss }
}

// WithRecoveryBudget bounds recovery: at most maxRestarts re-executions
// per rank, and at most deadline of wall-clock time after the world's
// first restart (defaults 3 and 2min). Exceeding either fails the world
// with a clean error instead of looping.
func WithRecoveryBudget(maxRestarts int, deadline time.Duration) Option {
	return func(r *runner) { r.maxRestarts, r.deadline = maxRestarts, deadline }
}

// WithInjector installs a fault injector evaluated at "elastic.rank.op"
// after every completed rank operation; a Kill kills the host worker of
// the matched rank at that deterministic program point.
func WithInjector(in *faultinject.Injector) Option {
	return func(r *runner) { r.inj = in }
}

// WithObserver reports the run's recovery stats when the world finishes.
func WithObserver(f func(Stats)) Option {
	return func(r *runner) { r.observer = f }
}

// WithExternalWorkers expects the starting pool (WithWorkerCount) to
// attach from outside — workers the caller starts itself, typically via
// WithAttachHook or archworker -elastic -join — instead of spawning
// processes or goroutines. The attach barrier still applies.
func WithExternalWorkers() Option {
	return func(r *runner) { r.external = true }
}

// WithAttachHook calls f as soon as the coordinator's control listener is
// up, before the attach barrier, with the listen address and world token
// — everything a worker needs to Join. Tests and external supervisors
// use it to bring their own workers.
func WithAttachHook(f func(addr, token string)) Option {
	return func(r *runner) { r.onAttach = f }
}

// WithStarveHook calls f (once) when the scheduler has queued rank tasks
// and zero live workers: the moment a mid-run join is the only way
// forward. f receives the coordinator's listen address and world token —
// what a late worker needs to Join. Tests use this to exercise mid-run
// joins deterministically.
func WithStarveHook(f func(addr, token string)) Option {
	return func(r *runner) { r.onStarve = f }
}

// New builds an elastic backend runner. The zero configuration — what
// the registry's "elastic" entry uses — self-spawns localhost worker
// processes by re-executing the current binary, so any binary whose main
// calls MaybeWorker supports it out of the box.
func New(opts ...Option) backend.Runner {
	r := &runner{
		reconnect:   true,
		handshake:   30 * time.Second,
		hbInterval:  500 * time.Millisecond,
		hbMiss:      4,
		maxRestarts: 3,
		deadline:    2 * time.Minute,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

func init() { backend.Register(New()) }

func (r *runner) Name() string { return "elastic" }

// Virtual reports false: elastic runs are wall-clock measurements over
// real worker endpoints, serialized in sweeps like real and dist runs.
func (r *runner) Virtual() bool { return false }

func (r *runner) NewTransport(ctx context.Context, n int, m *machine.Model) backend.Transport {
	t, err := r.start(ctx, n)
	if err != nil {
		return &failedTransport{n: n, err: fmt.Errorf("elastic: world start: %w", err)}
	}
	return t
}

// poolSize resolves the starting worker-pool size for an n-rank world.
func (r *runner) poolSize(n int) int {
	if r.workers > 0 {
		return r.workers
	}
	if n < 4 {
		return n
	}
	return 4
}

// failedTransport reports a world-start failure from every operation (the
// Runner interface has no error channel), exactly as dist does. Drive
// reports it directly without running any rank.
type failedTransport struct {
	n   int
	err error
}

func (f *failedTransport) Charge(rank int, sec float64)         {}
func (f *failedTransport) SetResident(rank int, bytes float64)  {}
func (f *failedTransport) Clock(rank int) float64               { return 0 }
func (f *failedTransport) Idle(rank int, at float64)            {}
func (f *failedTransport) Send(src, dst, tag int, d any, b int) { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Recv(src, dst, tag int) any           { panic(backend.Canceled(f.err)) }
func (f *failedTransport) RecvAny(dst, tag int) (int, any)      { panic(backend.Canceled(f.err)) }
func (f *failedTransport) Drive(run func(rank int) error) error { return f.err }
func (f *failedTransport) Finish() backend.Result {
	return backend.Result{Clocks: make([]float64, f.n)}
}
