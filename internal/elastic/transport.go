package elastic

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/spmd"
)

// pointRankOp is the fault-injection hook point evaluated after every
// completed rank operation.
const pointRankOp = "elastic.rank.op"

// msgRec is one message as the coordinator's shadow state records it:
// the sender, tag, metered byte count, and the encoded payload bytes.
// The same record serves three roles — undelivered shadow-queue entry,
// worker-inbox mirror, and delivery-log entry — so replay redelivers
// exactly what was delivered (decoded fresh, never aliasing a value the
// rank body may have mutated).
type msgRec struct {
	src, tag, metered int
	payload           []byte
}

// rankState is the coordinator's authoritative record of one rank: its
// current lease, the shadow queue of undelivered inbound messages (in
// arrival order), and the checkpoint — the delivery log plus the count
// of live sends performed — from which a re-execution replays.
type rankState struct {
	host     *wlink
	running  bool
	done     bool
	restarts int
	// queue holds undelivered inbound messages; the hosting worker's
	// inbox mirrors it, and it is flushed to the new host on re-lease.
	queue []msgRec
	// log holds delivered messages in program order; cursor is the
	// replay position (== len(log) once the attempt has gone live).
	log    []msgRec
	cursor int
	// sent counts live sends performed across all attempts; sendIdx
	// counts sends seen by the current attempt, which are suppressed
	// (not re-sent, not re-metered) while sendIdx < sent.
	sent, sendIdx int
	// epoch counts this attempt's completed operations — the
	// fault-injection coordinate.
	epoch int
}

// wlink is the coordinator's connection to one worker endpoint. All I/O
// on it happens under the transport mutex: the protocol has at most one
// outstanding request per connection, so request/response pairs complete
// atomically and need no correlation.
type wlink struct {
	id           int
	pid          int
	c            net.Conn
	br           *bufio.Reader
	buf          []byte
	dead         bool
	missed       int
	joinedMidRun bool
	ranks        map[int]struct{}
}

// counter is one rank's message/byte tally (updated under the transport
// mutex, summed in Finish).
type counter struct {
	msgs, bytes int64
}

// rescheduleError is the control-flow sentinel an attempt's transport
// operations raise (wrapped in backend.Canceled) when the rank's host
// worker died: the rank body unwinds, Drive catches the error, and the
// rank is re-executed from its checkpoint on another worker.
type rescheduleError struct {
	rank int
}

func (e *rescheduleError) Error() string {
	return fmt.Sprintf("elastic: rank %d lost its host worker; rescheduling", e.rank)
}

// transport is the coordinator side of one elastic run.
type transport struct {
	ctx   context.Context
	r     *runner
	n     int
	begin time.Time
	ln    net.Listener
	token string

	mu        sync.Mutex
	cond      *sync.Cond
	workers   map[int]*wlink
	nextWID   int
	attached  int
	started   bool
	ranks     []rankState
	counters  []counter
	doneN     int
	err       error
	finishing bool
	starved   bool
	stats     Stats

	deadlineTimer *time.Timer
	stopCancel    func() bool
	procs         []*exec.Cmd
	procWG        sync.WaitGroup
	localWG       sync.WaitGroup

	// rec is the run's flight recorder; nil (free) when tracing is off.
	// Rank events are emitted from attempt goroutines — attempts of one
	// rank never overlap (the running flag serializes them under mu), so
	// the per-rank single-writer ring contract holds. Coordinator events
	// (lease, heartbeat, declared-dead) go to the system ring.
	rec *obs.Recorder
}

// start brings up the coordinator: control listener, worker pool (OS
// processes or in-process goroutines), and the attach barrier for the
// starting pool. Mid-run joins keep arriving through the same listener
// for the life of the run.
func (r *runner) start(ctx context.Context, n int) (*transport, error) {
	t := &transport{
		ctx:      ctx,
		r:        r,
		n:        n,
		workers:  map[int]*wlink{},
		ranks:    make([]rankState, n),
		counters: make([]counter, n),
		rec:      obs.RunRecorder(ctx, n, "elastic"),
	}
	t.cond = sync.NewCond(&t.mu)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("control listener: %w", err)
	}
	t.ln = ln
	var secret [16]byte
	if _, err := rand.Read(secret[:]); err != nil {
		ln.Close()
		return nil, fmt.Errorf("world token: %w", err)
	}
	t.token = hex.EncodeToString(secret[:])
	go t.acceptLoop(ln)
	if r.onAttach != nil {
		r.onAttach(ln.Addr().String(), t.token)
	}

	ok := false
	defer func() {
		if !ok {
			t.teardown()
		}
	}()

	pool := r.poolSize(n)
	if r.external {
		// The caller brings the starting pool (WithAttachHook or
		// archworker -elastic -join); nothing to spawn, the attach
		// barrier below still holds the world until they arrive.
	} else if r.local {
		for i := 0; i < pool; i++ {
			t.localWG.Add(1)
			go func() {
				defer t.localWG.Done()
				if r.reconnect {
					Join(ctx, ln.Addr().String(), t.token) //nolint:errcheck // worker outcome is the coordinator's to judge
				} else {
					joinOnce(ln.Addr().String(), t.token)
				}
			}()
		}
	} else {
		env := append(os.Environ(),
			envWorker+"="+ln.Addr().String(),
			envToken+"="+t.token)
		for i := 0; i < pool; i++ {
			var cmd *exec.Cmd
			if len(r.workerCmd) > 0 {
				cmd = exec.CommandContext(ctx, r.workerCmd[0], r.workerCmd[1:]...)
			} else {
				exe, err := os.Executable()
				if err != nil {
					return nil, fmt.Errorf("locating own binary: %w", err)
				}
				cmd = exec.CommandContext(ctx, exe)
			}
			cmd.Env = env
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, fmt.Errorf("spawning worker %d: %w", i, err)
			}
			t.procs = append(t.procs, cmd)
		}
		// Monitors: a worker process dying is not world-fatal here — it
		// is the recovery trigger. Declare the matching endpoint dead so
		// its leases reschedule even before heartbeats notice.
		for _, cmd := range t.procs {
			t.procWG.Add(1)
			go func(cmd *exec.Cmd) {
				defer t.procWG.Done()
				pid := cmd.Process.Pid
				cmd.Wait() //nolint:errcheck // the exit itself is the event
				t.mu.Lock()
				defer t.mu.Unlock()
				if t.finishing || t.err != nil {
					return
				}
				for _, w := range t.workers {
					if w.pid == pid && !w.dead {
						t.declareDeadLocked(w, fmt.Errorf("worker process %d exited mid-run", pid))
					}
				}
			}(cmd)
		}
	}

	// Attach barrier for the starting pool; joins after this count as
	// mid-run joins.
	deadline := time.Now().Add(r.handshake)
	wake := time.AfterFunc(r.handshake, func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer wake.Stop()
	t.mu.Lock()
	for t.attached < pool && t.err == nil && time.Now().Before(deadline) {
		t.cond.Wait()
	}
	got := t.attached
	t.started = true
	t.mu.Unlock()
	if got < pool {
		return nil, fmt.Errorf("%d of %d workers attached within %v (self-spawned workers re-execute this binary — does its main call elastic.MaybeWorker?)",
			got, pool, r.handshake)
	}
	if ctx.Done() != nil {
		t.stopCancel = context.AfterFunc(ctx, func() { t.fail(ctx.Err()) })
	}
	t.begin = time.Now()
	ok = true
	return t, nil
}

// joinOnce is a non-reconnecting local worker: one dial, one world.
func joinOnce(addr, token string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	serveConn(conn, token) //nolint:errcheck // coordinator-side detection owns the outcome
}

// acceptLoop admits worker endpoints for the life of the run: the
// starting pool, mid-run joiners, and reconnecting workers all arrive
// here. It ends when the listener closes (teardown).
func (t *transport) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go t.admit(c)
	}
}

// admit handshakes one dialing worker and registers it as leasable.
func (t *transport) admit(c net.Conn) {
	c.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck // enforced by the read
	br := bufio.NewReader(c)
	op, body, err := dist.ReadFrame(br)
	if err != nil || op != opHello {
		c.Close()
		return
	}
	token, pid, err := parseHello(body)
	if err != nil || token != t.token {
		// Wrong world (or not a worker at all): drop before it can host
		// anything.
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{}) //nolint:errcheck // cleared for the op stream
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finishing || t.err != nil {
		c.Close()
		return
	}
	w := &wlink{id: t.nextWID, pid: pid, c: c, br: br, ranks: map[int]struct{}{}, joinedMidRun: t.started}
	t.nextWID++
	if t.writeLocked(w, opWelcome, welcomeBody(w.id, t.r.hbInterval)) != nil {
		c.Close()
		return
	}
	t.workers[w.id] = w
	t.attached++
	t.stats.Workers++
	t.cond.Broadcast()
	go t.heartbeat(w)
}

// heartbeat pings one worker on the configured cadence; hbMiss
// consecutive failures (I/O errors or a pong that never arrives within
// an interval) declare it dead. Detection by heartbeat matters for the
// silent-failure mode TCP cannot report: a worker that is alive as a
// connection but wedged as a process.
func (t *transport) heartbeat(w *wlink) {
	tick := time.NewTicker(t.r.hbInterval)
	defer tick.Stop()
	for range tick.C {
		t.mu.Lock()
		if w.dead || t.finishing || t.err != nil {
			t.mu.Unlock()
			return
		}
		err := t.writeLocked(w, opPing, nil)
		if err == nil {
			var op byte
			op, _, err = t.readLocked(w, time.Now().Add(t.r.hbInterval))
			if err == nil && op != opPong {
				err = fmt.Errorf("expected pong, got op %d", op)
			}
		}
		if err != nil {
			w.missed++
			if w.missed >= t.r.hbMiss {
				t.declareDeadLocked(w, fmt.Errorf("missed %d heartbeats: %w", w.missed, err))
				t.mu.Unlock()
				return
			}
		} else {
			w.missed = 0
			if t.rec != nil {
				t.rec.EmitSys(obs.Event{T: t.rec.Now(), Rank: -1, Peer: int32(w.id), Kind: obs.KindHeartbeat})
			}
		}
		t.mu.Unlock()
	}
}

func (t *transport) writeLocked(w *wlink, op byte, body []byte) error {
	w.buf = dist.AppendFrame(w.buf[:0], op, body)
	_, err := w.c.Write(w.buf)
	return err
}

func (t *transport) readLocked(w *wlink, deadline time.Time) (byte, []byte, error) {
	if err := w.c.SetReadDeadline(deadline); err != nil {
		return 0, nil, err
	}
	return dist.ReadFrame(w.br)
}

// declareDeadLocked removes a worker from the leasable pool: its
// connection closes, its hosted ranks lose their lease (their running
// attempts unwind with the reschedule sentinel at their next operation),
// and the scheduler wakes to re-lease them.
func (t *transport) declareDeadLocked(w *wlink, cause error) {
	if w.dead {
		return
	}
	w.dead = true
	delete(t.workers, w.id)
	w.c.Close()
	t.stats.DeclaredDead++
	if t.rec != nil {
		t.rec.EmitSys(obs.Event{T: t.rec.Now(), Rank: -1, Peer: int32(w.id), Kind: obs.KindDeclaredDead})
	}
	_ = cause
	for rank := range w.ranks {
		if rs := &t.ranks[rank]; rs.host == w {
			rs.host = nil
		}
	}
	t.cond.Broadcast()
}

// killLocked terminates a worker outright (fault injection): the spawned
// process is killed when there is one, and the endpoint is declared dead
// immediately so the kill point is deterministic.
func (t *transport) killLocked(w *wlink) {
	for _, cmd := range t.procs {
		if cmd.Process != nil && cmd.Process.Pid == w.pid {
			cmd.Process.Kill() //nolint:errcheck // already-exited is fine
		}
	}
	t.declareDeadLocked(w, errors.New("killed by fault injection"))
}

// fail records the run's first fatal error, severs every worker, and
// wakes everything blocked on world state.
func (t *transport) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failLocked(err)
}

func (t *transport) failLocked(err error) {
	if t.finishing || t.err != nil {
		return
	}
	t.err = err
	for _, w := range t.workers {
		w.c.Close()
	}
	t.cond.Broadcast()
}

// checkLiveLocked gates every data-plane operation: a failed world or
// cancelled context unwinds with the cancellation sentinel, and a lost
// lease unwinds with the reschedule sentinel.
func (t *transport) checkLiveLocked(rank int) *rankState {
	if t.err != nil {
		panic(backend.Canceled(t.err))
	}
	if err := t.ctx.Err(); err != nil {
		t.failLocked(err)
		panic(backend.Canceled(err))
	}
	rs := &t.ranks[rank]
	if rs.host == nil || rs.host.dead {
		panic(backend.Canceled(&rescheduleError{rank: rank}))
	}
	return rs
}

// opDoneLocked advances the rank's epoch and gives the fault injector
// its deterministic shot at the completed operation's program point.
func (t *transport) opDoneLocked(rank int, rs *rankState) {
	e := rs.epoch
	rs.epoch++
	if t.r.inj == nil {
		return
	}
	act, d := t.r.inj.Eval(pointRankOp, rank, e)
	if act != faultinject.None && t.rec != nil {
		t.rec.Emit(rank, obs.Event{T: t.rec.Now(), Peer: -1, Tag: int32(act), Kind: obs.KindFault})
	}
	switch act {
	case faultinject.Kill:
		if w := rs.host; w != nil && !w.dead {
			t.killLocked(w)
		}
	case faultinject.Drop:
		// Sever the link without declaring death: the next I/O error or
		// missed heartbeat must detect it — the detection-path exercise.
		if w := rs.host; w != nil && !w.dead {
			w.c.Close()
		}
	case faultinject.Delay:
		time.Sleep(d)
	}
}

// enqLocked mirrors one shadow-queue message into the hosting worker's
// inbox. An I/O failure declares that worker dead (the message is safe
// in the shadow queue and will be flushed to the next host); the sender
// is unaffected unless the dead worker was its own host.
func (t *transport) enqLocked(w *wlink, rank int, m msgRec) error {
	err := t.writeLocked(w, opEnq, enqBody(rank, m.src, m.tag, m.metered, m.payload))
	if err != nil {
		t.declareDeadLocked(w, fmt.Errorf("enq to worker %d: %w", w.id, err))
	}
	return err
}

// popTimeout bounds a pop's response read: a worker that accepted the
// request but never answers is dead, not slow.
func (t *transport) popTimeout() time.Duration {
	return t.r.hbInterval * time.Duration(t.r.hbMiss+1)
}

// popLocked retrieves the head of the (rank, src) inbox from rank's host
// — guaranteed non-empty by the shadow queue. Stale pongs from a
// previously timed-out heartbeat are skipped.
func (t *transport) popLocked(w *wlink, rank, src int) (msgRec, error) {
	if err := t.writeLocked(w, opPop, popBody(rank, src)); err != nil {
		return msgRec{}, err
	}
	deadline := time.Now().Add(t.popTimeout())
	for {
		op, body, err := t.readLocked(w, deadline)
		if err != nil {
			return msgRec{}, err
		}
		if op == opPong {
			continue
		}
		if op != opMsg {
			return msgRec{}, fmt.Errorf("expected msg frame, got op %d", op)
		}
		msrc, tag, metered, payload, err := parseMsg(body)
		if err != nil {
			return msgRec{}, err
		}
		return msgRec{src: msrc, tag: tag, metered: metered, payload: payload}, nil
	}
}

// Charge discards modeled computation like the real and dist backends.
func (t *transport) Charge(rank int, sec float64) {}

// SetResident is a no-op: the host pages for real.
func (t *transport) SetResident(rank int, bytes float64) {}

func (t *transport) Clock(rank int) float64 { return time.Since(t.begin).Seconds() }

// Recorder implements backend.Traced.
func (t *transport) Recorder() *obs.Recorder { return t.rec }

// Idle cannot advance a wall clock.
func (t *transport) Idle(rank int, at float64) {}

func (t *transport) Send(src, dst, tag int, data any, bytes int) {
	var start int64
	if t.rec != nil {
		start = t.rec.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := t.checkLiveLocked(src)
	if rs.sendIdx < rs.sent {
		// Replay: this send already happened in a previous attempt — its
		// message is in the destination's shadow state (or delivery log)
		// and its meter charge is on the books. Suppress it.
		rs.sendIdx++
		if t.rec != nil {
			t.rec.Emit(src, obs.Event{T: start, Bytes: int64(bytes), Peer: int32(dst), Tag: int32(tag), Kind: obs.KindResendSuppressed})
		}
		t.opDoneLocked(src, rs)
		return
	}
	payload, err := spmd.AppendPayload(nil, data)
	if err != nil {
		// A payload outside the wire codec is a programming error of the
		// same class as a tag mismatch.
		panic(fmt.Sprintf("elastic: process %d: %v", src, err))
	}
	m := msgRec{src: src, tag: tag, metered: bytes, payload: payload}
	ds := &t.ranks[dst]
	ds.queue = append(ds.queue, m)
	if w := ds.host; w != nil && !w.dead {
		t.enqLocked(w, dst, m) //nolint:errcheck // shadow queue keeps the message; dst reschedules
	}
	rs.sent++
	rs.sendIdx++
	if src != dst {
		t.counters[src].msgs++
		t.counters[src].bytes += int64(bytes)
	}
	if t.rec != nil {
		t.rec.Emit(src, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(bytes), Peer: int32(dst), Tag: int32(tag), Kind: obs.KindSend})
	}
	t.cond.Broadcast()
	t.opDoneLocked(src, rs)
}

func (t *transport) Recv(src, dst, tag int) any {
	from, data := t.recv(dst, src, tag)
	_ = from
	return data
}

func (t *transport) RecvAny(dst, tag int) (int, any) {
	return t.recv(dst, -1, tag)
}

// recv delivers the next message for dst (from src, or from anyone in
// arrival order when src < 0): replayed from the delivery log while the
// attempt is behind its checkpoint, popped from the hosting worker's
// inbox once live.
func (t *transport) recv(dst, src, tag int) (int, any) {
	var start int64
	if t.rec != nil {
		start = t.rec.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rs := t.checkLiveLocked(dst)

	if rs.cursor < len(rs.log) {
		d := rs.log[rs.cursor]
		if src >= 0 && d.src != src {
			err := fmt.Errorf("elastic: rank %d replay diverged: log has a message from %d, program asked for %d (rank bodies must be deterministic)", dst, d.src, src)
			t.failLocked(err)
			panic(backend.Canceled(err))
		}
		if d.tag != tag {
			panic(fmt.Sprintf("elastic: process %d expected tag %d from %d, got %d", dst, tag, d.src, d.tag))
		}
		rs.cursor++
		v := t.decode(dst, d.src, d.payload)
		if t.rec != nil {
			t.rec.Emit(dst, obs.Event{T: start, Bytes: int64(d.metered), Peer: int32(d.src), Tag: int32(tag), Kind: obs.KindReplay})
		}
		t.opDoneLocked(dst, rs)
		return d.src, v
	}

	var idx int
	for {
		rs = t.checkLiveLocked(dst)
		idx = -1
		for i := range rs.queue {
			if src < 0 || rs.queue[i].src == src {
				idx = i
				break
			}
		}
		if idx >= 0 {
			break
		}
		t.cond.Wait()
	}
	m := rs.queue[idx]
	if m.tag != tag {
		if src < 0 {
			panic(fmt.Sprintf("elastic: process %d expected tag %d from any source, got %d from %d", dst, tag, m.tag, m.src))
		}
		panic(fmt.Sprintf("elastic: process %d expected tag %d from %d, got %d", dst, tag, src, m.tag))
	}
	w := rs.host
	popped, err := t.popLocked(w, dst, m.src)
	if err != nil {
		// The pop ran on dst's own host: its death is dst's reschedule.
		// The message was not logged and stays in the shadow queue, so
		// the re-execution redelivers it — no loss, no duplicate.
		t.declareDeadLocked(w, fmt.Errorf("pop from worker %d: %w", w.id, err))
		panic(backend.Canceled(&rescheduleError{rank: dst}))
	}
	if popped.src != m.src || popped.tag != m.tag || popped.metered != m.metered || !bytes.Equal(popped.payload, m.payload) {
		perr := fmt.Errorf("elastic: rank %d: worker %d delivered a message diverging from the shadow queue (src %d/%d tag %d/%d)",
			dst, w.id, popped.src, m.src, popped.tag, m.tag)
		t.failLocked(perr)
		panic(backend.Canceled(perr))
	}
	rs.queue = append(rs.queue[:idx], rs.queue[idx+1:]...)
	rs.log = append(rs.log, m)
	rs.cursor++
	v := t.decode(dst, m.src, popped.payload)
	if t.rec != nil {
		kind := obs.KindRecv
		if src < 0 {
			kind = obs.KindRecvAny
		}
		t.rec.Emit(dst, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(m.metered), Peer: int32(m.src), Tag: int32(tag), Kind: kind})
	}
	t.opDoneLocked(dst, rs)
	return m.src, v
}

// decode reconstructs a payload value from wire bytes — a fresh value
// every time, so a replayed delivery can never alias memory the rank
// body mutated in a previous attempt.
func (t *transport) decode(dst, src int, payload []byte) any {
	v, _, err := spmd.DecodePayload(payload)
	if err != nil {
		perr := fmt.Errorf("elastic: rank %d: decoding message from %d: %w", dst, src, err)
		t.failLocked(perr)
		panic(backend.Canceled(perr))
	}
	return v
}

// pickWorkerLocked chooses the live worker hosting the fewest ranks.
func (t *transport) pickWorkerLocked() *wlink {
	var best *wlink
	for _, w := range t.workers {
		if w.dead {
			continue
		}
		if best == nil || len(w.ranks) < len(best.ranks) ||
			(len(w.ranks) == len(best.ranks) && w.id < best.id) {
			best = w
		}
	}
	return best
}

// leaseLocked assigns rank to w and flushes the rank's shadow queue into
// w's inbox. It reports false when w died mid-flush (the scheduler picks
// another worker).
func (t *transport) leaseLocked(rank int, w *wlink) bool {
	rs := &t.ranks[rank]
	rs.host = w
	w.ranks[rank] = struct{}{}
	for _, m := range rs.queue {
		if t.enqLocked(w, rank, m) != nil {
			return false
		}
	}
	if rs.host != w || w.dead {
		return false
	}
	if w.joinedMidRun && rs.restarts > 0 {
		t.stats.JoinPickups++
	}
	if t.rec != nil {
		t.rec.EmitSys(obs.Event{T: t.rec.Now(), Rank: int32(rank), Peer: int32(w.id), Kind: obs.KindLease})
	}
	return true
}

// pendingLocked counts ranks that are neither done nor running — the
// task queue's depth.
func (t *transport) pendingLocked() int {
	p := 0
	for i := range t.ranks {
		if !t.ranks[i].done && !t.ranks[i].running {
			p++
		}
	}
	return p
}

// Drive is the task-queue scheduler: ranks are tasks, live workers are
// the pool, and each attempt leases a rank to a worker and executes the
// rank body (replaying its checkpoint first when it is a re-execution).
// It returns when every rank has completed exactly once from the
// program's point of view, or with the world's first fatal error.
func (t *transport) Drive(run func(rank int) error) error {
	var attempts sync.WaitGroup
	t.mu.Lock()
	for t.err == nil && t.doneN < t.n {
		launched := false
		for r := 0; r < t.n; r++ {
			rs := &t.ranks[r]
			if rs.done || rs.running {
				continue
			}
			w := t.pickWorkerLocked()
			if w == nil {
				break
			}
			// Reset the attempt view of the checkpoint before the body
			// starts: replay from the log head, suppress logged sends.
			rs.cursor, rs.sendIdx, rs.epoch = 0, 0, 0
			if !t.leaseLocked(r, w) {
				// The chosen worker died mid-flush: state changed, so
				// loop again rather than wait on a signal already sent.
				launched = true
				continue
			}
			rs.running = true
			launched = true
			attempts.Add(1)
			go func(rank int) {
				defer attempts.Done()
				err := run(rank)
				t.mu.Lock()
				defer t.mu.Unlock()
				rs := &t.ranks[rank]
				rs.running = false
				if rs.host != nil {
					delete(rs.host.ranks, rank)
					rs.host = nil
				}
				var re *rescheduleError
				switch {
				case err == nil:
					rs.done = true
					t.doneN++
				case errors.As(err, &re):
					rs.restarts++
					t.stats.Restarts++
					if rs.restarts > t.r.maxRestarts {
						t.failLocked(fmt.Errorf("elastic: rank %d exceeded its restart budget (%d restarts): %w",
							rank, t.r.maxRestarts, err))
					} else if t.deadlineTimer == nil {
						// The recovery deadline arms at the first restart
						// and bounds the whole recovery phase: a world
						// that cannot stop restarting fails cleanly.
						d := t.r.deadline
						t.deadlineTimer = time.AfterFunc(d, func() {
							t.fail(fmt.Errorf("elastic: recovery deadline (%v) exceeded", d))
						})
					}
				default:
					t.failLocked(err)
				}
				t.cond.Broadcast()
			}(r)
		}
		if t.err != nil || t.doneN >= t.n {
			break
		}
		if launched {
			continue
		}
		if t.pendingLocked() > 0 && len(t.workers) == 0 && t.r.onStarve != nil && !t.starved {
			// Queued rank tasks and zero live workers: a mid-run join is
			// the only way forward. Tell the hook (outside the lock — it
			// may synchronously dial and handshake a new worker).
			t.starved = true
			hook, addr, tok := t.r.onStarve, t.ln.Addr().String(), t.token
			t.mu.Unlock()
			hook(addr, tok)
			t.mu.Lock()
			continue
		}
		t.cond.Wait()
	}
	err := t.err
	t.mu.Unlock()
	// Every attempt unwinds on its own: blocked receives wake via the
	// broadcast in failLocked/declareDeadLocked and raise a sentinel at
	// checkLiveLocked.
	attempts.Wait()
	return err
}

// Finish runs the finish barrier with the surviving workers, tears the
// substrate down, reports stats, and assembles the run summary.
func (t *transport) Finish() backend.Result {
	elapsed := time.Since(t.begin).Seconds()
	t.mu.Lock()
	t.finishing = true
	if t.deadlineTimer != nil {
		t.deadlineTimer.Stop()
		t.deadlineTimer = nil
	}
	if t.err == nil && t.ctx.Err() == nil {
		deadline := time.Now().Add(10 * time.Second)
		for _, w := range t.workers {
			if w.dead {
				continue
			}
			if t.writeLocked(w, opFinish, nil) != nil {
				continue
			}
			for {
				op, _, err := t.readLocked(w, deadline)
				if err != nil || op == opBye {
					break
				}
				// Stale pongs drain here; anything else ends the read.
				if op != opPong {
					break
				}
			}
		}
	}
	stats := t.stats
	t.mu.Unlock()
	t.teardown()
	if t.r.observer != nil {
		t.r.observer(stats)
	}
	res := backend.Result{Makespan: elapsed, Clocks: make([]float64, t.n)}
	for i := range res.Clocks {
		res.Clocks[i] = elapsed
	}
	for i := range t.counters {
		res.Msgs += t.counters[i].msgs
		res.Bytes += t.counters[i].bytes
	}
	return res
}

// teardown closes the listener and every connection, kills and reaps
// spawned workers, and waits out local worker goroutines.
func (t *transport) teardown() {
	if t.stopCancel != nil {
		t.stopCancel()
		t.stopCancel = nil
	}
	t.mu.Lock()
	t.finishing = true
	if t.ln != nil {
		t.ln.Close()
	}
	for _, w := range t.workers {
		w.c.Close()
	}
	procs := t.procs
	t.procs = nil
	t.mu.Unlock()
	for _, cmd := range procs {
		cmd.Process.Kill() //nolint:errcheck // already-exited is fine
	}
	t.procWG.Wait()
	t.localWG.Wait()
}
