package elastic

// White-box liveness tests: these speak the worker protocol by hand to
// stage failure modes a well-behaved worker cannot produce.

import (
	"bufio"
	"context"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// silentWorker attaches with a valid handshake and then never answers
// anything again — the wedged-process failure mode TCP cannot report: the
// connection stays open, reads succeed, but no pong (or pop response)
// ever comes back.
func silentWorker(addr, token string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	if err := dist.WriteFrame(conn, opHello, helloBody(token, os.Getpid())); err != nil {
		return
	}
	br := bufio.NewReader(conn)
	for {
		if _, _, err := dist.ReadFrame(br); err != nil {
			return
		}
	}
}

// TestHeartbeatDeclaresSilentWorkerDead gives the world a single wedged
// worker: heartbeats must declare it dead after the configured misses,
// and the starve hook's replacement worker must then carry the world to
// completion. The rank bodies idle past the detection window before
// their first operation so the declaration can only come from the
// heartbeat path, never from a data-plane I/O error.
func TestHeartbeatDeclaresSilentWorkerDead(t *testing.T) {
	const np = 2
	var stats Stats
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := New(
		WithWorkerCount(1),
		WithExternalWorkers(),
		WithAttachHook(func(addr, token string) { go silentWorker(addr, token) }),
		WithHeartbeat(25*time.Millisecond, 3),
		WithStarveHook(func(addr, token string) {
			go Join(ctx, addr, token) //nolint:errcheck // completion is the assertion
		}),
		WithObserver(func(s Stats) { stats = s }),
	)
	outs := make([]int, np)
	prog := func(p *spmd.Proc) {
		// Sit out ~6 heartbeat windows so the silent worker is declared
		// dead before any send or receive touches it.
		time.Sleep(150 * time.Millisecond)
		rank, n := p.Rank(), p.N()
		p.Send((rank+1)%n, 7, rank*10)
		outs[rank] = p.Recv((rank+n-1)%n, 7).(int)
	}
	res, err := core.Run(context.Background(), r, np, machine.IBMSP(), prog)
	if err != nil {
		t.Fatalf("run with a silent worker: %v", err)
	}
	if want := []int{10, 0}; !reflect.DeepEqual(outs, want) {
		t.Fatalf("outs = %v, want %v", outs, want)
	}
	if res.Msgs != np {
		t.Errorf("meters = %d msgs, want %d", res.Msgs, np)
	}
	if stats.DeclaredDead < 1 {
		t.Errorf("stats.DeclaredDead = %d, want >= 1: heartbeats never declared the silent worker dead", stats.DeclaredDead)
	}
	if stats.Restarts < 1 {
		t.Errorf("stats.Restarts = %d, want >= 1: the silent worker's leases were never rescheduled", stats.Restarts)
	}
	if stats.Workers < 2 {
		t.Errorf("stats.Workers = %d, want >= 2", stats.Workers)
	}
}

// TestAttachRejectsBadToken proves the world token gates admission: a
// dialer with the wrong token must be dropped before it can host
// anything, without disturbing the real pool.
func TestAttachRejectsBadToken(t *testing.T) {
	const np = 2
	var gotAddr, gotToken string
	r := New(
		WithLocalWorkers(false),
		WithWorkerCount(1),
		WithAttachHook(func(addr, token string) { gotAddr, gotToken = addr, token }),
	)
	prog := func(p *spmd.Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, 42)
		} else {
			if v := p.Recv(0, 1).(int); v != 42 {
				panic("bad payload")
			}
		}
		if p.Rank() == 1 {
			// By now the listener is up: an impostor with a garbage token
			// must be rejected (its conn closes without a welcome).
			conn, err := net.Dial("tcp", gotAddr)
			if err != nil {
				return
			}
			defer conn.Close()
			dist.WriteFrame(conn, opHello, helloBody("not-"+gotToken, 1)) //nolint:errcheck // rejection path
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))         //nolint:errcheck // enforced by the read
			if _, _, err := dist.ReadFrame(bufio.NewReader(conn)); err == nil {
				panic("impostor with a bad token was welcomed")
			}
		}
	}
	if _, err := core.Run(context.Background(), r, np, machine.IBMSP(), prog); err != nil {
		t.Fatalf("run: %v", err)
	}
}
