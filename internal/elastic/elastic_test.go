package elastic_test

import (
	"context"
	"errors"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/faultinject"
	"repro/internal/fft"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/obs"
	"repro/internal/onedeep"
	"repro/internal/poisson"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// TestMain lets this binary serve as its own worker for both self-spawn
// backends (the spawn-mode smoke test re-executes it).
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	os.Exit(m.Run())
}

func TestRegistered(t *testing.T) {
	r, ok := backend.ByName("elastic")
	if !ok {
		t.Fatal("elastic backend not registered")
	}
	if r.Name() != "elastic" || r.Virtual() {
		t.Errorf("elastic registered as name=%q virtual=%v, want non-virtual \"elastic\"", r.Name(), r.Virtual())
	}
}

// parityCase mirrors internal/backend's cross-backend parity programs:
// deterministic archetype apps whose results and meters must be
// bit-identical across backends.
type parityCase struct {
	name string
	prog func(np int) (core.Program, func() any)
}

func parityCases() []parityCase {
	return []parityCase{
		{
			name: "sorting/one-deep-mergesort",
			prog: func(np int) (core.Program, func() any) {
				data := sortapp.RandomInts(20000, 42)
				blocks := sortapp.BlockDistribute(data, np)
				spec := sortapp.OneDeepMergesort(onedeep.Centralized)
				outs := make([][]int32, np)
				return func(p *spmd.Proc) {
					outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
				}, func() any { return outs }
			},
		},
		{
			name: "fft/2d-forward",
			prog: func(np int) (core.Program, func() any) {
				const n = 32
				var out []complex128
				return func(p *spmd.Proc) {
					g := meshspectral.New2D[complex128](p, n, n, meshspectral.Rows(p.N()), 0)
					g.Fill(func(i, j int) complex128 {
						return complex(math.Sin(float64(i)*0.11), math.Cos(float64(j)*0.23))
					})
					f := fft.TwoDSPMD(p, g, false)
					full := meshspectral.GatherGrid(f, 0)
					if p.Rank() == 0 {
						out = full.Data
					}
				}, func() any { return out }
			},
		},
		{
			name: "poisson/jacobi",
			prog: func(np int) (core.Program, func() any) {
				pr := poisson.Manufactured(25, 25, 1e-6, 2000)
				var grid []float64
				var iters int
				return func(p *spmd.Proc) {
						g, r := poisson.SolveSPMD(p, pr, meshspectral.NearSquare(p.N()))
						full := meshspectral.GatherGrid(g, 0)
						if p.Rank() == 0 {
							grid = full.Data
							iters = r.Iterations
						}
					}, func() any {
						return struct {
							Grid  []float64
							Iters int
						}{grid, iters}
					}
			},
		},
	}
}

// TestKillRecoveryParity is the acceptance contract of the elastic
// backend: a world that loses a worker mid-run — killed by the fault
// injector at a deterministic rank operation — completes with results and
// message/byte meters bit-identical to an uninterrupted run. Two distinct
// kill epochs per app, hitting different ranks, exercise recovery at
// different phases of each program; the sim backend supplies the
// uninterrupted reference, and one clean elastic run per app proves the
// substrate itself matches it before any faults are injected.
func TestKillRecoveryParity(t *testing.T) {
	const np = 4
	model := machine.IBMSP()
	kills := []struct {
		rank, epoch int
	}{
		{rank: 1, epoch: 0}, // a leaf rank's first completed operation
		{rank: 0, epoch: 2}, // the root rank, several operations in
	}
	for _, tc := range parityCases() {
		t.Run(tc.name, func(t *testing.T) {
			simProg, simSnap := tc.prog(np)
			simRes, err := core.Run(context.Background(), backend.Sim(), np, model, simProg)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			want := simSnap()

			runOnce := func(inj *faultinject.Injector) (any, *spmd.Result, elastic.Stats) {
				t.Helper()
				var stats elastic.Stats
				opts := []elastic.Option{
					elastic.WithLocalWorkers(false),
					elastic.WithWorkerCount(2),
					// Generous heartbeat: injected kills declare death
					// immediately, so detection latency is irrelevant here,
					// and a tight cadence could mis-declare a worker slow
					// under the race detector.
					elastic.WithHeartbeat(200*time.Millisecond, 5),
					elastic.WithObserver(func(s elastic.Stats) { stats = s }),
				}
				if inj != nil {
					opts = append(opts, elastic.WithInjector(inj))
				}
				prog, snap := tc.prog(np)
				res, err := core.Run(context.Background(), elastic.New(opts...), np, model, prog)
				if err != nil {
					t.Fatalf("elastic: %v", err)
				}
				return snap(), res, stats
			}

			got, res, stats := runOnce(nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatal("uninterrupted elastic results differ from sim")
			}
			if res.Msgs != simRes.Msgs || res.Bytes != simRes.Bytes {
				t.Fatalf("uninterrupted elastic meters %d msgs/%d bytes, sim %d/%d",
					res.Msgs, res.Bytes, simRes.Msgs, simRes.Bytes)
			}
			if stats.Restarts != 0 || stats.DeclaredDead != 0 {
				t.Fatalf("uninterrupted run reported recovery activity: %+v", stats)
			}

			for _, k := range kills {
				inj := faultinject.New(faultinject.Rule{
					Point:  "elastic.rank.op",
					Rank:   k.rank,
					Epoch:  k.epoch,
					Action: faultinject.Kill,
				})
				got, res, stats := runOnce(inj)
				if n := inj.Fired("elastic.rank.op"); n != 1 {
					t.Fatalf("kill rank=%d epoch=%d: injector fired %d times, want 1", k.rank, k.epoch, n)
				}
				if stats.DeclaredDead < 1 || stats.Restarts < 1 {
					t.Fatalf("kill rank=%d epoch=%d: no recovery happened: %+v", k.rank, k.epoch, stats)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("kill rank=%d epoch=%d: recovered results differ from uninterrupted run", k.rank, k.epoch)
				}
				if res.Msgs != simRes.Msgs || res.Bytes != simRes.Bytes {
					t.Fatalf("kill rank=%d epoch=%d: meters %d msgs/%d bytes, want %d/%d (suppressed resends must not be re-metered)",
						k.rank, k.epoch, res.Msgs, res.Bytes, simRes.Msgs, simRes.Bytes)
				}
			}
		})
	}
}

// ringProg builds a deterministic two-round ring exchange: every rank has
// four operations, and the expected output is computable in closed form.
func ringProg(np int) (core.Program, func() []int) {
	outs := make([]int, np)
	return func(p *spmd.Proc) {
		r, n := p.Rank(), p.N()
		acc := r + 1
		for round := 0; round < 2; round++ {
			p.Send((r+1)%n, round, acc)
			acc += p.Recv((r+n-1)%n, round).(int)
		}
		outs[r] = acc
	}, func() []int { return outs }
}

func wantRing(np int) []int {
	want := make([]int, np)
	for r := 0; r < np; r++ {
		prev := (r + np - 1) % np
		prev2 := (r + np - 2) % np
		// round 1 adds prev's start; round 2 adds prev's round-1 sum.
		want[r] = (r + 1) + (prev + 1) + ((prev + 1) + (prev2 + 1))
	}
	return want
}

// TestJoinMidRunPicksUpRescheduledRanks kills the world's only worker
// mid-run, leaving every rank queued with zero live workers; the starve
// hook then brings up a fresh worker via Join — exactly a worker joining
// mid-run — which must pull the queued rank tasks so the world completes.
func TestJoinMidRunPicksUpRescheduledRanks(t *testing.T) {
	const np = 4
	inj := faultinject.New(faultinject.Rule{
		Point:  "elastic.rank.op",
		Rank:   0,
		Epoch:  1,
		Action: faultinject.Kill,
	})
	var stats elastic.Stats
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := elastic.New(
		elastic.WithLocalWorkers(false),
		elastic.WithWorkerCount(1),
		elastic.WithHeartbeat(50*time.Millisecond, 3),
		elastic.WithInjector(inj),
		elastic.WithStarveHook(func(addr, token string) {
			go elastic.Join(ctx, addr, token) //nolint:errcheck // the world's completion is the assertion
		}),
		elastic.WithObserver(func(s elastic.Stats) { stats = s }),
	)
	prog, snap := ringProg(np)
	res, err := core.Run(context.Background(), r, np, machine.IBMSP(), prog)
	if err != nil {
		t.Fatalf("elastic run with mid-run join: %v", err)
	}
	if got, want := snap(), wantRing(np); !reflect.DeepEqual(got, want) {
		t.Fatalf("ring results = %v, want %v", got, want)
	}
	if res.Msgs != int64(2*np) {
		t.Errorf("meters = %d msgs, want %d (replayed sends must not re-meter)", res.Msgs, 2*np)
	}
	if inj.Fired("elastic.rank.op") != 1 {
		t.Fatalf("kill never fired (%d)", inj.Fired("elastic.rank.op"))
	}
	if stats.Restarts < 1 {
		t.Errorf("stats.Restarts = %d, want >= 1", stats.Restarts)
	}
	if stats.JoinPickups < 1 {
		t.Errorf("stats.JoinPickups = %d, want >= 1: the joining worker never picked up a rescheduled rank task", stats.JoinPickups)
	}
	if stats.Workers < 2 {
		t.Errorf("stats.Workers = %d, want >= 2 (starting pool + mid-run joiner)", stats.Workers)
	}
}

// TestRestartBudgetExhausted points the injector at every operation of
// every rank: each attempt's host dies at its first completed operation,
// so recovery can never converge. The per-rank restart budget must turn
// that livelock into a clean error. The reconnecting local worker is what
// keeps the kills coming — each rejoin is a fresh lease to kill — so this
// test also proves worker reconnect with backoff works.
func TestRestartBudgetExhausted(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{
		Point:  "elastic.rank.op",
		Rank:   faultinject.AnyRank,
		Epoch:  faultinject.AnyEpoch,
		Count:  1000,
		Action: faultinject.Kill,
	})
	r := elastic.New(
		elastic.WithLocalWorkers(true),
		elastic.WithWorkerCount(1),
		elastic.WithHeartbeat(50*time.Millisecond, 3),
		elastic.WithRecoveryBudget(2, 30*time.Second),
		elastic.WithInjector(inj),
	)
	prog, _ := ringProg(2)
	_, err := core.Run(context.Background(), r, 2, machine.IBMSP(), prog)
	if err == nil {
		t.Fatal("run with a kill-everything injector succeeded, want restart-budget error")
	}
	if !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("error = %v, want restart-budget exhaustion", err)
	}
	if inj.Fired("elastic.rank.op") < 3 {
		t.Errorf("injector fired %d times, want >= 3 (budget is 2 restarts)", inj.Fired("elastic.rank.op"))
	}
}

// TestCancellationMidRun cancels a world whose rank 0 is blocked in a
// receive that can never be satisfied: Run must return ctx.Err() promptly
// and tear the worker pool down (Run does not return until teardown —
// including reaping local workers — completes).
func TestCancellationMidRun(t *testing.T) {
	r := elastic.New(
		elastic.WithLocalWorkers(true),
		elastic.WithWorkerCount(2),
	)
	prog := func(p *spmd.Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 1) // rank 1 never sends
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := core.Run(ctx, r, 2, machine.IBMSP(), prog)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt", d)
	}
}

// TestSpawnMode runs the registry-default configuration: the coordinator
// re-executes this test binary as worker processes (TestMain calls
// elastic.MaybeWorker), the same path archdemo and archbench users get.
func TestSpawnMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const np = 2
	prog, snap := ringProg(np)
	res, err := core.Run(context.Background(), elastic.New(), np, machine.IBMSP(), prog)
	if err != nil {
		t.Fatalf("spawn-mode elastic run: %v", err)
	}
	if got, want := snap(), wantRing(np); !reflect.DeepEqual(got, want) {
		t.Fatalf("ring results = %v, want %v", got, want)
	}
	if res.Msgs != int64(2*np) {
		t.Errorf("meters = %d msgs, want %d", res.Msgs, 2*np)
	}
}

// TestKillRecoveryTrace pins the flight recorder's view of a recovery:
// an injected kill must leave a causally ordered event chain — the fault
// fires, the host worker is declared dead, the orphaned rank is
// re-leased, and the new attempt replays its logged receives — and the
// replayed attempt's re-executed sends must surface as resend-suppressed
// events (the wire-level proof that recovery does not re-meter).
func TestKillRecoveryTrace(t *testing.T) {
	const np = 4
	model := machine.IBMSP()
	// The poisson workload from the parity table: killing rank 0 a few
	// operations in guarantees its log holds both sends (suppressed on
	// replay) and receives (replayed from the log).
	tc := parityCases()[2]
	inj := faultinject.New(faultinject.Rule{
		Point:  "elastic.rank.op",
		Rank:   0,
		Epoch:  4,
		Action: faultinject.Kill,
	})
	col := obs.NewCollector()
	// The recovery events fire within the first few operations; the
	// default drop-oldest ring would discard them under this workload's
	// tens of thousands of sends, so give the rings room for everything.
	col.RingSize = 1 << 18
	ctx := obs.NewContext(context.Background(), col)
	prog, _ := tc.prog(np)
	_, err := core.Run(ctx, elastic.New(
		elastic.WithLocalWorkers(false),
		elastic.WithWorkerCount(2),
		elastic.WithHeartbeat(200*time.Millisecond, 5),
		elastic.WithInjector(inj),
	), np, model, prog)
	if err != nil {
		t.Fatalf("elastic: %v", err)
	}
	if n := inj.Fired("elastic.rank.op"); n != 1 {
		t.Fatalf("injector fired %d times, want 1", n)
	}
	if s := inj.Stats(); s.Total != 1 || s.ByPoint["elastic.rank.op"] != 1 {
		t.Fatalf("injector stats = %+v, want one elastic.rank.op firing", s)
	}

	rec := col.Last()
	if rec == nil {
		t.Fatal("no recorder registered: the collector context did not reach the transport")
	}
	// AllEvents merges the rank rings and the system ring sorted by
	// timestamp, so first-occurrence scan order is causal order.
	var tFault, tDead, tRelease, tReplay int64 = -1, -1, -1, -1
	suppressed := 0
	for _, e := range rec.AllEvents() {
		switch e.Kind {
		case obs.KindFault:
			if tFault < 0 {
				tFault = e.T
			}
		case obs.KindDeclaredDead:
			if tDead < 0 {
				tDead = e.T
			}
		case obs.KindLease:
			if tDead >= 0 && tRelease < 0 {
				tRelease = e.T
			}
		case obs.KindReplay:
			if tReplay < 0 {
				tReplay = e.T
			}
		case obs.KindResendSuppressed:
			suppressed++
		}
	}
	switch {
	case tFault < 0:
		t.Fatal("no fault event: the injected kill was not recorded")
	case tDead < 0:
		t.Fatal("no declared-dead event")
	case tRelease < 0:
		t.Fatal("no re-lease after declared-dead")
	case tReplay < 0:
		t.Fatal("no replay event: the restarted attempt did not replay its log")
	case suppressed == 0:
		t.Fatal("no resend-suppressed events: replayed sends were not suppressed")
	}
	if !(tFault <= tDead && tDead <= tRelease && tRelease <= tReplay) {
		t.Fatalf("events out of causal order: fault=%d declared-dead=%d re-lease=%d replay=%d",
			tFault, tDead, tRelease, tReplay)
	}
}
