// Package rescache is the content-addressed persistent result cache of
// the archetype service: finished run results keyed by what was
// computed, not when or by whom.
//
// The key is the SHA-256 of the run's canonical spec JSON
// (arch.Spec.CanonicalJSON): every field filled in with its effective
// value, so a request that spells out the defaults and one that omits
// them address the same entry, and perturbing any field — app, size,
// procs, machine, backend, mode — addresses a different one. Because
// the address is derived purely from content, the cache needs no
// invalidation protocol and is safe to share between processes and
// across restarts: an entry is valid exactly as long as its key still
// derives from its spec.
//
// Entries are single JSON files under the cache directory, fanned out
// by the key's first byte (dir/ab/abcdef....json) so a long-lived
// service does not accumulate one giant flat directory. Writes go
// through a temp file in the same directory followed by an atomic
// rename, so readers — concurrent goroutines or concurrent processes —
// never observe a torn entry. Reads re-verify the address: an entry
// whose embedded spec no longer hashes to its key (corruption,
// truncation, hand-editing, a format change) is discarded and reported
// as a miss, never returned and never fatal; the caller just recomputes.
//
// Only simulator results are worth caching unconditionally — they are
// deterministic in virtual time. Wall-clock backends (real, dist)
// produce identical outputs and meters but host-dependent makespans;
// the service caches those too (the meters and verification summary are
// the science), which callers should keep in mind when reading Makespan
// from a warm entry.
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/arch"
)

// Key derives the content address of a run spec: the lowercase-hex
// SHA-256 of its canonical JSON. Specs that canonicalize identically
// key identically; any effective difference changes the key.
func Key(sp arch.Spec) (string, error) {
	blob, err := sp.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Entry is one cached run result: the canonical spec it answers
// (re-hashed on every read to validate the file), the app's
// verification summary, and the full cost Report.
type Entry struct {
	// Spec is the canonical spec this result answers.
	Spec arch.Spec `json:"spec"`
	// Summary is the app's one-line verification summary.
	Summary string `json:"summary"`
	// Report is the run's full cost report, meters included.
	Report arch.Report `json:"report"`
	// Created is when the entry was written (informational only; the
	// content address, not the age, decides validity).
	Created time.Time `json:"created"`
}

// Cache is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use by multiple goroutines and
// multiple processes sharing the directory.
type Cache struct {
	dir string
}

// Open returns a Cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("rescache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its entry file: two-level fanout on the key's
// first byte.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// validKey reports whether key has the shape Key produces: 64 lowercase
// hex characters. Anything else is rejected before it can touch the
// filesystem (and before key[:2] could slice out of range).
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Get looks key up. A hit returns the validated entry; everything else
// — no file, unreadable file, malformed JSON, or an entry whose spec no
// longer hashes to key — is a miss. Invalid files are removed so they
// are not re-parsed on every request; removal failures are ignored (the
// next Put overwrites them anyway).
func (c *Cache) Get(key string) (*Entry, bool) {
	if !validKey(key) {
		return nil, false
	}
	p := c.path(key)
	blob, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(blob, &e); err != nil {
		os.Remove(p)
		return nil, false
	}
	// Re-derive the address from the embedded spec: a mismatch means the
	// file is corrupt, truncated-but-parseable, or stale relative to the
	// canonicalization rules — all misses.
	got, err := Key(e.Spec)
	if err != nil || got != key {
		os.Remove(p)
		return nil, false
	}
	return &e, true
}

// Put stores e under key atomically: marshal, write a temp file in the
// entry's directory, rename over the final path. Concurrent Puts of the
// same key are safe — both write complete entries and the renames
// serialize; since the address is the content, it does not matter whose
// entry wins.
func (c *Cache) Put(key string, e *Entry) error {
	if !validKey(key) {
		return fmt.Errorf("rescache: invalid key %q", key)
	}
	if want, err := Key(e.Spec); err != nil {
		return fmt.Errorf("rescache: entry spec does not canonicalize: %w", err)
	} else if want != key {
		return fmt.Errorf("rescache: entry spec hashes to %s, not %s", want, key)
	}
	blob, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), key+".tmp-*")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("rescache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	return nil
}
