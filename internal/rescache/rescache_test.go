package rescache_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/arch"
	_ "repro/arch/apps"
	"repro/internal/rescache"
)

// base is the fully-spelled-out spec the perturbation tests start from.
var base = arch.Spec{App: "mergesort", Size: 1 << 12, Procs: 4, Machine: "ibm-sp", Backend: "sim", Mode: "concurrent"}

// entryFor builds a well-formed Entry for sp (the report content is
// arbitrary; only the spec participates in addressing).
func entryFor(t *testing.T, sp arch.Spec) (string, *rescache.Entry) {
	t.Helper()
	c, err := sp.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	key, err := rescache.Key(c)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	return key, &rescache.Entry{
		Spec:    c,
		Summary: "test summary",
		Report:  arch.Report{Backend: c.Backend, Machine: c.Machine, Virtual: true, Procs: c.Procs, Makespan: 1.5, Msgs: 7, Bytes: 99},
		Created: time.Now().UTC(),
	}
}

// TestKeyIdenticalSpecs: equivalent specs — defaults omitted vs spelled
// out — derive the identical content address.
func TestKeyIdenticalSpecs(t *testing.T) {
	k1, err := rescache.Key(arch.Spec{App: "mergesort", Size: 1 << 12, Procs: 4})
	if err != nil {
		t.Fatalf("Key(short): %v", err)
	}
	k2, err := rescache.Key(base)
	if err != nil {
		t.Fatalf("Key(long): %v", err)
	}
	if k1 != k2 {
		t.Errorf("equivalent specs keyed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key length = %d, want 64 hex chars", len(k1))
	}
}

// TestKeyPerturbation: changing any single spec field changes the key.
func TestKeyPerturbation(t *testing.T) {
	baseKey, err := rescache.Key(base)
	if err != nil {
		t.Fatalf("Key(base): %v", err)
	}
	perturb := map[string]arch.Spec{
		"app":     {App: "quicksort", Size: base.Size, Procs: base.Procs, Machine: base.Machine, Backend: base.Backend, Mode: base.Mode},
		"size":    {App: base.App, Size: base.Size * 2, Procs: base.Procs, Machine: base.Machine, Backend: base.Backend, Mode: base.Mode},
		"procs":   {App: base.App, Size: base.Size, Procs: base.Procs * 2, Machine: base.Machine, Backend: base.Backend, Mode: base.Mode},
		"machine": {App: base.App, Size: base.Size, Procs: base.Procs, Machine: "intel-delta", Backend: base.Backend, Mode: base.Mode},
		"backend": {App: base.App, Size: base.Size, Procs: base.Procs, Machine: base.Machine, Backend: "real", Mode: base.Mode},
		"mode":    {App: base.App, Size: base.Size, Procs: base.Procs, Machine: base.Machine, Backend: base.Backend, Mode: "sequential"},
	}
	seen := map[string]string{baseKey: "base"}
	for field, sp := range perturb {
		k, err := rescache.Key(sp)
		if err != nil {
			t.Fatalf("Key(perturb %s): %v", field, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collides with %s: key %s", field, prev, k)
		}
		seen[k] = field
	}
}

// TestRoundTrip: Put then Get returns the entry bit-for-bit on the
// fields that matter (spec, summary, report).
func TestRoundTrip(t *testing.T) {
	c, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	key, e := entryFor(t, base)
	if _, ok := c.Get(key); ok {
		t.Fatal("Get on empty cache hit")
	}
	if err := c.Put(key, e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Spec != e.Spec || got.Summary != e.Summary || got.Report != e.Report {
		t.Errorf("round trip mutated entry:\n got  %+v\n want %+v", got, e)
	}
}

// TestCorruptEntryIsMiss: corrupted and truncated entry files are
// discarded as misses (and removed), never a crash, and a fresh Put
// repairs the slot.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := rescache.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	key, e := entryFor(t, base)
	if err := c.Put(key, e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, key[:2], key+".json")

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry file: %v", err)
	}
	corruptions := map[string][]byte{
		"garbage":        []byte("not json at all {{{"),
		"truncated":      blob[:len(blob)/2],
		"empty":          {},
		"wrong spec":     []byte(`{"spec":{"app":"fft","size":64,"procs":8,"machine":"ibm-sp","backend":"sim","mode":"concurrent"},"summary":"forged","report":{}}`),
		"valid but bare": []byte(`{}`),
	}
	for name, bad := range corruptions {
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatalf("%s: write corruption: %v", name, err)
		}
		if got, ok := c.Get(key); ok {
			t.Errorf("%s: Get returned %+v, want miss", name, got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: invalid entry file not removed (err=%v)", name, err)
		}
		// The slot must be writable again after the discard.
		if err := c.Put(key, e); err != nil {
			t.Fatalf("%s: Put after discard: %v", name, err)
		}
		if _, ok := c.Get(key); !ok {
			t.Errorf("%s: Get after repair missed", name)
		}
	}
}

// TestPutRejectsMismatchedKey: an entry may only be stored under the
// address its spec derives — the invariant Get's validation relies on.
func TestPutRejectsMismatchedKey(t *testing.T) {
	c, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_, e := entryFor(t, base)
	otherKey, _ := entryFor(t, arch.Spec{App: "fft"})
	if err := c.Put(otherKey, e); err == nil {
		t.Error("Put under a foreign key succeeded")
	}
	if err := c.Put("zz", e); err == nil {
		t.Error("Put under a malformed key succeeded")
	}
	if _, ok := c.Get("../../etc/passwd"); ok {
		t.Error("Get with a path-shaped key hit")
	}
}

// TestConcurrentAccess: concurrent readers and writers on overlapping
// keys are race-clean and every read observes either a miss or a fully
// valid entry (run under -race in CI).
func TestConcurrentAccess(t *testing.T) {
	c, err := rescache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	specs := []arch.Spec{
		base,
		{App: "mergesort", Size: 1 << 13, Procs: 4},
		{App: "fft", Procs: 4},
		{App: "quicksort", Size: 1 << 12},
	}
	keys := make([]string, len(specs))
	entries := make([]*rescache.Entry, len(specs))
	for i, sp := range specs {
		keys[i], entries[i] = entryFor(t, sp)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % len(keys)
				if w%2 == 0 {
					if err := c.Put(keys[k], entries[k]); err != nil {
						t.Errorf("concurrent Put: %v", err)
						return
					}
				} else if e, ok := c.Get(keys[k]); ok {
					if e.Spec != entries[k].Spec || e.Report != entries[k].Report {
						t.Errorf("concurrent Get observed torn entry: %+v", e)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
