package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/arch"
	_ "repro/arch/apps"
	"repro/internal/rescache"
	"repro/internal/serve"
)

// The "servetest" app counts its executions and can be gated, so tests
// can observe exactly how many times the service really ran the work
// and can hold a job in flight deliberately. Its result is a real SPMD
// run, so reports carry genuine meters.
var (
	testRuns atomic.Int32
	gateMu   sync.Mutex
	gate     chan struct{}
)

// holdRuns gates servetest executions until the returned release func.
func holdRuns() (release func()) {
	g := make(chan struct{})
	gateMu.Lock()
	gate = g
	gateMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			gateMu.Lock()
			gate = nil
			gateMu.Unlock()
			close(g)
		})
	}
}

func init() {
	prog := arch.SPMDRoot(func(p *arch.Proc, size int) int {
		if p.Rank() != 0 {
			p.Send(0, 1, int32(p.Rank()))
			return 0
		}
		sum := size
		for src := 1; src < p.N(); src++ {
			sum += int(p.Recv(src, 1).(int32))
		}
		return sum
	})
	arch.Register(arch.App{
		Name:        "servetest",
		Desc:        "execution-counting test app for the serve package",
		DefaultSize: 64,
		Run: func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
			testRuns.Add(1)
			gateMu.Lock()
			g := gate
			gateMu.Unlock()
			if g != nil {
				select {
				case <-g:
				case <-ctx.Done():
					return "", arch.Report{}, ctx.Err()
				}
			}
			if s.Size == 666 {
				return "", arch.Report{}, fmt.Errorf("servetest: induced failure")
			}
			sum, rep, err := arch.RunWith(ctx, prog, s, s.Size)
			if err != nil {
				return "", rep, err
			}
			return fmt.Sprintf("servetest sum %d", sum), rep, nil
		},
	})
}

// newService boots a Server over httptest and returns it with a client.
func newService(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, &serve.Client{Base: ts.URL, Poll: 5 * time.Millisecond}
}

func openCache(t *testing.T, dir string) *rescache.Cache {
	t.Helper()
	c, err := rescache.Open(dir)
	if err != nil {
		t.Fatalf("rescache.Open: %v", err)
	}
	return c
}

// TestAppsEndpoint: GET /apps lists the registry, including the test
// app, with its backends.
func TestAppsEndpoint(t *testing.T) {
	_, c := newService(t, serve.Config{})
	apps, err := c.Apps(context.Background())
	if err != nil {
		t.Fatalf("Apps: %v", err)
	}
	byName := map[string]serve.AppInfo{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	for _, want := range []string{"mergesort", "fft", "poisson", "servetest"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("GET /apps missing %q", want)
		}
	}
	if got := byName["servetest"].DefaultSize; got != 64 {
		t.Errorf("servetest defaultSize = %d, want 64", got)
	}
}

// TestSubmitRejectsBadSpecs: malformed JSON, unknown fields, and
// unresolvable names are 400s with the facade's error text.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, c := newService(t, serve.Config{})
	ctx := context.Background()
	cases := []struct {
		name string
		sp   arch.Spec
		want string
	}{
		{"unknown app", arch.Spec{App: "nope"}, "unknown app"},
		{"unknown backend", arch.Spec{App: "mergesort", Backend: "quantum"}, "unknown backend"},
		{"unknown mode", arch.Spec{App: "mergesort", Mode: "turbo"}, "unknown mode"},
	}
	for _, tc := range cases {
		_, err := c.Submit(ctx, tc.sp)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Submit err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	resp, err := http.Post(c.Base+"/runs", "application/json", strings.NewReader(`{"app": "mergesort", "turbo": true}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}
	if _, err := c.Status(ctx, "definitely-not-a-key"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("Status(bogus) err = %v, want 404", err)
	}
}

// TestEndToEnd is the acceptance test: two concurrent identical
// submissions run the work once; a post-restart resubmission is served
// from the persistent cache without re-running; and the served result
// is bit-identical to a direct arch.RunApp with identical meters.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, c := newService(t, serve.Config{Cache: openCache(t, dir)})
	ctx := context.Background()
	sp := arch.Spec{App: "servetest", Size: 999, Procs: 4}
	before := testRuns.Load()

	// Phase 1: two concurrent identical submissions, one execution.
	release := holdRuns()
	st1c := make(chan serve.JobStatus, 2)
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, err := c.Submit(ctx, sp)
			errc <- err
			st1c <- st
		}()
	}
	sts := make([]serve.JobStatus, 2)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("Submit: %v", err)
		}
		sts[i] = <-st1c
	}
	if sts[0].ID != sts[1].ID {
		t.Fatalf("identical specs got different job IDs: %s vs %s", sts[0].ID, sts[1].ID)
	}
	release()
	final, err := c.Wait(ctx, sts[0].ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job state = %s (%s), want done", final.State, final.Error)
	}
	if got := testRuns.Load() - before; got != 1 {
		t.Fatalf("two identical submissions ran the work %d times, want 1", got)
	}
	if final.Cached {
		t.Error("first execution reported Cached, want cold run")
	}

	// Bit-identical to the direct facade call, meters included.
	wantSummary, wantRep, err := arch.RunApp(ctx, "servetest",
		arch.WithSize(999), arch.WithProcs(4))
	if err != nil {
		t.Fatalf("direct RunApp: %v", err)
	}
	testRuns.Add(-1) // the direct run above is not service-side work
	if final.Summary != wantSummary {
		t.Errorf("summary = %q, want %q", final.Summary, wantSummary)
	}
	if final.Report == nil || *final.Report != wantRep {
		t.Errorf("report = %+v, want %+v", final.Report, wantRep)
	}

	// Phase 2: restart — a fresh Server over the same cache directory
	// answers the resubmission terminally, from disk, without running.
	_, c2 := newService(t, serve.Config{Cache: openCache(t, dir)})
	before = testRuns.Load()
	st2, err := c2.Submit(ctx, sp)
	if err != nil {
		t.Fatalf("post-restart Submit: %v", err)
	}
	if !st2.Terminal() || st2.State != serve.StateDone {
		t.Fatalf("post-restart submission state = %s, want immediately done", st2.State)
	}
	if !st2.Cached {
		t.Error("post-restart submission not marked Cached")
	}
	if got := testRuns.Load() - before; got != 0 {
		t.Errorf("post-restart submission re-ran the work %d times, want 0", got)
	}
	if st2.Summary != wantSummary || st2.Report == nil || *st2.Report != wantRep {
		t.Errorf("cached result drifted: %q %+v, want %q %+v", st2.Summary, st2.Report, wantSummary, wantRep)
	}

	// Phase 3: a third server can also revive the job by ID alone.
	_, c3 := newService(t, serve.Config{Cache: openCache(t, dir)})
	st3, err := c3.Status(ctx, st2.ID)
	if err != nil {
		t.Fatalf("post-restart Status by ID: %v", err)
	}
	if st3.State != serve.StateDone || !st3.Cached || st3.Summary != wantSummary {
		t.Errorf("revived status = %+v, want cached done", st3)
	}
}

// TestQueueOverloadReturns429: submissions past QueueDepth are refused
// with 429 while the queue is full and accepted after it drains.
func TestQueueOverloadReturns429(t *testing.T) {
	_, c := newService(t, serve.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()
	release := holdRuns()
	st, err := c.Submit(ctx, arch.Spec{App: "servetest", Size: 1001, Procs: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	_, err = c.Submit(ctx, arch.Spec{App: "servetest", Size: 1002, Procs: 2})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("overload Submit err = %v, want 429", err)
	}
	// The same spec as the in-flight job is NOT an overload: it maps to
	// the existing job instead of a new admission.
	dup, err := c.Submit(ctx, arch.Spec{App: "servetest", Size: 1001, Procs: 2})
	if err != nil || dup.ID != st.ID {
		t.Errorf("duplicate Submit = %+v, %v; want existing job %s", dup, err, st.ID)
	}
	release()
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := c.Submit(ctx, arch.Spec{App: "servetest", Size: 1002, Procs: 2}); err != nil {
		t.Errorf("post-drain Submit err = %v, want admitted", err)
	}
}

// TestEventsStream: the SSE endpoint emits status events ending in a
// terminal one.
func TestEventsStream(t *testing.T) {
	_, c := newService(t, serve.Config{})
	ctx := context.Background()
	release := holdRuns()
	st, err := c.Submit(ctx, arch.Spec{App: "servetest", Size: 1003, Procs: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/runs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		release()
	}()
	sc := bufio.NewScanner(resp.Body)
	var events []serve.JobStatus
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	last := events[len(events)-1]
	if !last.Terminal() || last.State != serve.StateDone {
		t.Errorf("final event state = %s, want done", last.State)
	}
	for _, ev := range events {
		if ev.ID != st.ID {
			t.Errorf("event for job %s, want %s", ev.ID, st.ID)
		}
	}
}

// TestEventsStreamTerminalError: a failing job's SSE feed ends with a
// dedicated error event whose data carries the message and the
// structured failure classification.
func TestEventsStreamTerminalError(t *testing.T) {
	_, c := newService(t, serve.Config{})
	ctx := context.Background()
	st, err := c.Submit(ctx, arch.Spec{App: "servetest", Size: 666, Procs: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/runs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var names, payloads []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			names = append(names, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "data: "):
			payloads = append(payloads, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(names) == 0 || names[len(names)-1] != "error" {
		t.Fatalf("event names = %v, want a terminal error event", names)
	}
	var ev struct {
		Error   string             `json:"error"`
		Failure *serve.FailureInfo `json:"failure"`
	}
	if err := json.Unmarshal([]byte(payloads[len(payloads)-1]), &ev); err != nil {
		t.Fatalf("bad error event payload: %v", err)
	}
	if !strings.Contains(ev.Error, "induced failure") {
		t.Errorf("error event message = %q, want the induced failure", ev.Error)
	}
	if ev.Failure == nil || ev.Failure.Reason != serve.ReasonInternal || ev.Failure.Retryable {
		t.Errorf("error event failure = %+v, want {internal false}", ev.Failure)
	}
}

// TestShutdownDrains: Shutdown waits for in-flight jobs (they complete,
// not cancel), refuses new submissions with 503 while draining, and
// returns nil on a clean drain.
func TestShutdownDrains(t *testing.T) {
	s, c := newService(t, serve.Config{})
	ctx := context.Background()
	release := holdRuns()
	st, err := c.Submit(ctx, arch.Spec{App: "servetest", Size: 1004, Procs: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(dctx)
	}()
	time.Sleep(30 * time.Millisecond) // let Shutdown flip draining
	if _, err := c.Submit(ctx, arch.Spec{App: "servetest", Size: 1005, Procs: 2}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("Submit while draining err = %v, want 503", err)
	}
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v before the in-flight job finished", err)
	case <-time.After(30 * time.Millisecond):
	}
	release()
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown = %v, want nil (clean drain)", err)
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatalf("Status after drain: %v", err)
	}
	if final.State != serve.StateDone {
		t.Errorf("drained job state = %s (%s), want done", final.State, final.Error)
	}
}

// TestFailedRunReported: an app error surfaces as state failed with the
// error text, is not persisted to the cache, and a resubmission retries
// instead of pinning the failure.
func TestFailedRunReported(t *testing.T) {
	dir := t.TempDir()
	_, c := newService(t, serve.Config{Cache: openCache(t, dir)})
	ctx := context.Background()
	sp := arch.Spec{App: "servetest", Size: 666, Procs: 2}
	before := testRuns.Load()
	st, err := c.Submit(ctx, sp)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != serve.StateFailed || !strings.Contains(final.Error, "induced failure") {
		t.Fatalf("final = %+v, want failed with induced failure", final)
	}
	if final.Report != nil {
		t.Error("failed job carries a report")
	}
	if final.Failure == nil || final.Failure.Reason != serve.ReasonInternal || final.Failure.Retryable {
		t.Errorf("final.Failure = %+v, want {internal false}", final.Failure)
	}
	// The failure was not persisted: a fresh server over the same cache
	// directory re-runs rather than serving a cached failure.
	_, c2 := newService(t, serve.Config{Cache: openCache(t, dir)})
	st2, err := c2.Submit(ctx, sp)
	if err != nil {
		t.Fatalf("post-restart Submit: %v", err)
	}
	if st2.Cached {
		t.Error("failed result was served from the persistent cache")
	}
	// A resubmission on the original server retries (new execution)
	// instead of returning the pinned failed job.
	st3, err := c.Submit(ctx, sp)
	if err != nil {
		t.Fatalf("retry Submit: %v", err)
	}
	if fin3, err := c.Wait(ctx, st3.ID); err != nil || fin3.State != serve.StateFailed {
		t.Fatalf("retry Wait = %+v, %v", fin3, err)
	}
	if got := testRuns.Load() - before; got < 3 {
		t.Errorf("failing spec ran %d times across three submissions, want 3 (no failure caching)", got)
	}
}
