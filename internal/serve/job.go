package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"repro/arch"
	"repro/internal/rescache"
)

// Job lifecycle states.
const (
	// StateQueued: admitted, waiting for a worker slot.
	StateQueued = "queued"
	// StateRunning: executing (or coalesced onto an identical in-flight
	// execution).
	StateRunning = "running"
	// StateDone: finished with a result.
	StateDone = "done"
	// StateFailed: finished with an error.
	StateFailed = "failed"
)

// Failure reasons: the coarse classification of why a job failed, chosen
// so a client can decide mechanically whether resubmitting can help.
const (
	// ReasonCanceled: the run was cancelled (client disconnect propagated,
	// or the server's drain deadline expired mid-run).
	ReasonCanceled = "canceled"
	// ReasonBackend: the execution substrate failed — workers that never
	// attached, a lost world, an exhausted recovery budget. The spec is
	// fine; the run environment was not.
	ReasonBackend = "backend"
	// ReasonSpec: the spec named something the registry cannot satisfy
	// (unknown app/backend/machine, unsupported backend for the app).
	ReasonSpec = "spec"
	// ReasonInternal: anything else — a failure the server cannot
	// attribute, assumed permanent for the same input.
	ReasonInternal = "internal"
)

// FailureInfo is the structured failure a terminal failed status carries:
// the coarse reason plus whether resubmitting the identical spec can
// plausibly succeed. The server already re-admits failed specs on
// resubmission (failures are not pinned in the job table), so Retryable
// is the client's signal for whether doing so is worthwhile.
type FailureInfo struct {
	// Reason is one of canceled, backend, spec, internal.
	Reason string `json:"reason"`
	// Retryable reports whether the failure is plausibly transient:
	// cancelled runs and substrate failures are; spec errors are not.
	Retryable bool `json:"retryable"`
}

// classifyFailure maps a run error onto the structured failure taxonomy.
// Resolve-time errors carry the registry's "(have: ...)" listings and
// "does not support" phrasing; substrate errors are prefixed by the
// backend that raised them.
func classifyFailure(err error) *FailureInfo {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return &FailureInfo{Reason: ReasonCanceled, Retryable: true}
	case strings.Contains(err.Error(), "(have:") || strings.Contains(err.Error(), "does not support"):
		return &FailureInfo{Reason: ReasonSpec, Retryable: false}
	case strings.HasPrefix(err.Error(), "dist:") || strings.HasPrefix(err.Error(), "elastic:") ||
		strings.Contains(err.Error(), "worker"):
		return &FailureInfo{Reason: ReasonBackend, Retryable: true}
	default:
		return &FailureInfo{Reason: ReasonInternal, Retryable: false}
	}
}

// JobStatus is one job's externally visible state: what GET /runs/{id}
// returns and what each SSE event carries.
type JobStatus struct {
	// ID is the job's content address — the SHA-256 of its canonical
	// spec — so identical experiments have identical IDs by
	// construction.
	ID string `json:"id"`
	// State is one of queued, running, done, failed.
	State string `json:"state"`
	// Spec is the canonical spec the job answers.
	Spec arch.Spec `json:"spec"`
	// Summary is the app's verification summary (terminal states only).
	Summary string `json:"summary,omitempty"`
	// Report is the run's full cost report (state done only).
	Report *arch.Report `json:"report,omitempty"`
	// Error is the failure message (state failed only).
	Error string `json:"error,omitempty"`
	// Failure is the structured classification of Error (state failed
	// only): the coarse reason and whether a resubmission can plausibly
	// succeed.
	Failure *FailureInfo `json:"failure,omitempty"`
	// Cached reports that the result came from the persistent result
	// cache rather than an execution in this process.
	Cached bool `json:"cached"`
	// Coalesced reports that this job shared an identical in-flight
	// execution instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Elapsed is seconds from submission to completion (or to now for
	// live jobs).
	Elapsed float64 `json:"elapsed"`
	// Kind is the spec's app kind ("batch" or "stream"), duplicated out
	// of Spec so clients can dispatch without canonicalizing.
	Kind string `json:"kind,omitempty"`
	// Stream is the latest progress window of a running stream job (and
	// the final one on its terminal status).
	Stream *StreamProgress `json:"stream,omitempty"`
}

// StreamProgress is a stream job's latest progress window: the live
// throughput view a long-lived job exposes while it runs.
type StreamProgress struct {
	// Window is the 1-based progress-window number.
	Window int `json:"window"`
	// Elems is the cumulative count of elements through the stream's
	// sink.
	Elems int64 `json:"elems"`
	// Elapsed is wall-clock seconds of streaming so far.
	Elapsed float64 `json:"elapsed"`
	// Rate is elements per second within the latest window.
	Rate float64 `json:"rate"`
}

// Terminal reports whether the status is final.
func (st JobStatus) Terminal() bool { return st.State == StateDone || st.State == StateFailed }

// job is the server-side state of one admitted (or cache-revived) run.
type job struct {
	id      string
	spec    arch.Spec // canonical
	created time.Time

	mu        sync.Mutex
	state     string
	summary   string
	report    arch.Report
	errMsg    string
	failure   *FailureInfo
	cached    bool
	coalesced bool
	stream    *StreamProgress
	trace     []byte
	finished  time.Time
	// changed is closed and replaced on every state transition; watch
	// hands it to SSE streams so they wake exactly when the status
	// moves.
	changed chan struct{}
}

func newJob(id string, spec arch.Spec) *job {
	return &job{
		id:      id,
		spec:    spec,
		created: time.Now(),
		state:   StateQueued,
		changed: make(chan struct{}),
	}
}

// transition mutates the job under its lock and wakes every watcher.
func (j *job) transition(f func()) {
	j.mu.Lock()
	f()
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

// setRunning marks the job executing. A job that already finished
// (cache-completed at admission) stays terminal.
func (j *job) setRunning() {
	j.transition(func() {
		if j.state == StateQueued {
			j.state = StateRunning
		}
	})
}

// finish resolves the job from a flight outcome.
func (j *job) finish(out runOutcome, coalesced bool, err error) {
	j.transition(func() {
		j.finished = time.Now()
		j.coalesced = coalesced
		if err != nil {
			j.state = StateFailed
			j.errMsg = err.Error()
			j.failure = classifyFailure(err)
			return
		}
		j.state = StateDone
		j.summary = out.summary
		j.report = out.report
		j.cached = out.cached
		j.trace = out.trace
	})
}

// traceJSON returns the job's retained Chrome trace, nil if there is
// none (untraced spec, or not finished yet).
func (j *job) traceJSON() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// progress records a stream job's latest progress window and wakes
// every watcher, so each window is one SSE event.
func (j *job) progress(w arch.StreamWindow) {
	j.transition(func() {
		j.stream = &StreamProgress{Window: w.Index, Elems: w.Elems, Elapsed: w.Elapsed, Rate: w.Rate}
	})
}

// completeCached resolves the job directly from a persistent cache
// entry, never having run.
func (j *job) completeCached(e *rescache.Entry) {
	j.transition(func() {
		j.state = StateDone
		j.summary = e.Summary
		j.report = e.Report
		j.cached = true
		j.finished = time.Now()
	})
}

// snapshot renders the job's current JobStatus.
func (j *job) snapshot() JobStatus {
	st, _ := j.watch()
	return st
}

// watch returns the current status together with the channel that
// closes on the job's next transition.
func (j *job) watch() (JobStatus, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Summary:   j.summary,
		Error:     j.errMsg,
		Failure:   j.failure,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Kind:      j.spec.Kind,
	}
	if j.stream != nil {
		p := *j.stream
		st.Stream = &p
	}
	if j.state == StateDone {
		rep := j.report
		st.Report = &rep
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.Elapsed = end.Sub(j.created).Seconds()
	return st, j.changed
}
