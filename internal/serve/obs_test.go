package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"

	"repro/arch"
	"repro/internal/serve"
)

// get fetches one path from the service and returns the status code and
// body text.
func get(t *testing.T, c *serve.Client, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(strings.TrimRight(c.Base, "/") + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint pins the Prometheus surface: job outcomes, cache
// hits/misses, and the run-duration histogram must appear in valid text
// exposition after the service has done some work.
func TestMetricsEndpoint(t *testing.T) {
	cache := openCache(t, t.TempDir())
	_, c := newService(t, serve.Config{Cache: cache})
	ctx := context.Background()

	// One executed run (a cache miss), one warm resubmission (a hit),
	// one induced failure.
	if st, err := c.Run(ctx, arch.Spec{App: "servetest", Procs: 2}); err != nil || st.State != serve.StateDone {
		t.Fatalf("first run: %v (state %v)", err, st.State)
	}
	if st, err := c.Run(ctx, arch.Spec{App: "servetest", Procs: 2}); err != nil || st.State != serve.StateDone {
		t.Fatalf("resubmission: %v (state %v)", err, st.State)
	}
	if st, err := c.Run(ctx, arch.Spec{App: "servetest", Procs: 2, Size: 666}); err != nil || st.State != serve.StateFailed {
		t.Fatalf("induced failure: err=%v state=%v, want a failed status", err, st.State)
	}

	code, body := get(t, c, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", code, body)
	}
	for _, want := range []string{
		`archserve_jobs_total{state="done"}`,
		`archserve_jobs_total{state="failed"} 1`,
		`archserve_jobs_failed_total{reason="internal"} 1`,
		"archserve_cache_hits_total 1",
		"archserve_cache_misses_total 2",
		`archserve_run_duration_seconds_bucket{le="+Inf"}`,
		"archserve_run_duration_seconds_sum",
		"archserve_run_duration_seconds_count",
		"archserve_queue_depth 0",
		"archserve_queue_limit 64",
		"archserve_stream_jobs_active 0",
		"archserve_jobs_tracked",
		"# TYPE archserve_run_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics is missing %q\n%s", want, body)
		}
	}
}

// TestHealthzEnriched pins the liveness probe's upgraded body: status,
// uptime, build info, and the live gauges.
func TestHealthzEnriched(t *testing.T) {
	_, c := newService(t, serve.Config{})
	code, body := get(t, c, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", code, body)
	}
	var h struct {
		Status     string  `json:"status"`
		UptimeSec  float64 `json:"uptimeSec"`
		Go         string  `json:"go"`
		QueueLimit int     `json:"queueLimit"`
		Jobs       int     `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.UptimeSec < 0 {
		t.Errorf("uptimeSec = %g, want >= 0", h.UptimeSec)
	}
	if !strings.HasPrefix(h.Go, "go") {
		t.Errorf("go = %q, want a runtime version", h.Go)
	}
	if h.QueueLimit != 64 {
		t.Errorf("queueLimit = %d, want the default 64", h.QueueLimit)
	}
}

// TestTraceEndpoint pins the traced-job path: a spec submitted with
// trace:true runs under the flight recorder, bypasses the result cache
// in both directions, and serves Chrome trace JSON at /runs/{id}/trace.
func TestTraceEndpoint(t *testing.T) {
	cache := openCache(t, t.TempDir())
	_, c := newService(t, serve.Config{Cache: cache})
	ctx := context.Background()
	before := testRuns.Load()

	st, err := c.Run(ctx, arch.Spec{App: "servetest", Procs: 2, Trace: true})
	if err != nil || st.State != serve.StateDone {
		t.Fatalf("traced run: %v (state %v)", err, st.State)
	}
	if st.Cached {
		t.Fatal("traced run answered from cache; traced jobs must execute")
	}
	if st.Report == nil || st.Report.Obs == nil {
		t.Fatal("traced run's report carries no obs summary")
	}
	if got := testRuns.Load(); got != before+1 {
		t.Fatalf("traced run executed %d times, want 1", got-before)
	}

	code, body := get(t, c, "/runs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /runs/{id}/trace = %d: %s", code, body)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// The traced result is never persisted: the rescache must have no
	// entry under the job's key (which is the content address), while a
	// resubmission is still answered by the in-memory job — with its
	// trace — not by the cache.
	if e, _ := cache.Get(st.ID); e != nil {
		t.Fatal("traced result was persisted to the rescache")
	}
	st2, err := c.Run(ctx, arch.Spec{App: "servetest", Procs: 2, Trace: true})
	if err != nil || st2.State != serve.StateDone || st2.Cached {
		t.Fatalf("traced resubmission: err=%v state=%v cached=%v, want the live job's result", err, st2.State, st2.Cached)
	}
	if st2.ID != st.ID {
		t.Fatalf("traced resubmission got job %s, want the original %s", st2.ID, st.ID)
	}

	// An untraced job has no trace to serve.
	stPlain, err := c.Run(ctx, arch.Spec{App: "servetest", Procs: 2})
	if err != nil || stPlain.State != serve.StateDone {
		t.Fatalf("untraced run: %v (state %v)", err, stPlain.State)
	}
	if code, _ := get(t, c, "/runs/"+stPlain.ID+"/trace"); code != http.StatusNotFound {
		t.Fatalf("GET trace of untraced run = %d, want 404", code)
	}
}

// TestTraceRejectedForStreams pins spec validation: trace:true on a
// stream app is a 400, not a silent no-op.
func TestTraceRejectedForStreams(t *testing.T) {
	_, c := newService(t, serve.Config{})
	_, err := c.Submit(context.Background(), arch.Spec{App: "servestreamtest", Trace: true})
	if err == nil || !strings.Contains(err.Error(), "not supported for stream") {
		t.Fatalf("traced stream submission error = %v, want a trace-not-supported rejection", err)
	}
}

// TestRequestLogging pins the access log: with LogRequests on, each
// request logs method, path, status, and duration; with it off (the
// config default), nothing is logged per request.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	_, c := newService(t, serve.Config{LogRequests: true, Log: logger})
	if code, _ := get(t, c, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if code, _ := get(t, c, "/nosuch"); code != http.StatusNotFound {
		t.Fatal("expected 404 for unknown path")
	}
	out := buf.String()
	if !strings.Contains(out, "GET /healthz 200") {
		t.Errorf("access log missing healthz line:\n%s", out)
	}
	if !strings.Contains(out, "GET /nosuch 404") {
		t.Errorf("access log missing 404 line:\n%s", out)
	}

	buf.Reset()
	_, cq := newService(t, serve.Config{Log: logger})
	if code, _ := get(t, cq, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if strings.Contains(buf.String(), "/healthz") {
		t.Errorf("quiet server logged a request:\n%s", buf.String())
	}
}
