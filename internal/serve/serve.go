// Package serve is the archetype service: an HTTP/JSON daemon that puts
// the arch app registry behind a long-lived server, so the paper's
// reusable artifacts are served instead of re-built — submit a run,
// watch its progress, fetch its result, and pay for each distinct
// experiment once.
//
// The request surface is small and shaped by the facade it fronts:
//
//	GET  /apps             the registry: name, description, default size, backends
//	POST /runs             submit a run spec {app, size, procs, machine, backend, mode, trace}
//	GET  /runs/{id}        one job's status (poll until state done/failed)
//	GET  /runs/{id}/events the same status stream as server-sent events
//	GET  /runs/{id}/trace  Chrome trace JSON of a job submitted with trace:true
//	GET  /metrics          Prometheus text exposition (jobs, cache, durations)
//	GET  /healthz          liveness probe: uptime, build info, live job gauges
//
// A submission is canonicalized (arch.Spec.Canonical) and addressed by
// content: the job ID is the SHA-256 of the canonical spec
// (rescache.Key), so "the same experiment" is a protocol-level notion,
// not a server-side heuristic. That one decision buys the three layers
// of deduplication the service is built around:
//
//   - Identical requests while a job exists map to the same job — a
//     resubmission is a status read.
//   - Identical requests in flight coalesce through a sched.Flight
//     singleflight keyed by the same address, so the work runs once on
//     the bounded worker pool no matter how many clients asked.
//   - Finished results persist in the content-addressed rescache; a
//     warm request — even in a freshly restarted process — is a file
//     read, never a recomputation.
//
// Admission control is two bounds: the sched worker pool caps how many
// runs execute concurrently, and QueueDepth caps how many admitted jobs
// may be pending at once — past it, POST /runs answers 429 so overload
// is visible back-pressure, not an unbounded queue. Shutdown stops
// admitting (503), drains in-flight jobs, and only cancels them if the
// drain deadline expires.
//
// Specs naming a streaming app (kind "stream") become long-lived jobs
// instead: they run on their own goroutines under the separate
// StreamJobs bound, their SSE feed carries a status event per progress
// window (elements/sec at the sink) with periodic keep-alive comments
// in between, and their results are never persisted to the result cache
// — a stream's value is its progress while running, not a memoizable
// answer. Resubmitting a finished stream spec re-runs it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/arch"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/sched"
)

// Config configures a Server. The zero value is usable: default worker
// pool, default queue depth, no persistent cache.
type Config struct {
	// Workers bounds how many runs execute concurrently (the sched pool
	// size). Zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many admitted jobs may be pending (queued or
	// running) at once; past it POST /runs returns 429. Zero means 64.
	QueueDepth int
	// Cache is the persistent content-addressed result store; nil runs
	// the service memoryless (every cold request recomputes). Stream
	// jobs never touch it: a long-lived run is not a cacheable result.
	Cache *rescache.Cache
	// StreamJobs bounds how many stream jobs may run concurrently;
	// past it POST /runs on a stream spec returns 429. Zero means 4.
	// Stream jobs run on their own goroutines, not the sched pool, so
	// long-lived streams cannot starve batch runs of workers.
	StreamJobs int
	// KeepAlive is the idle interval after which SSE streams emit a
	// keep-alive comment so proxies and idle timeouts don't sever
	// long-lived connections. Zero means 15s; negative disables.
	KeepAlive time.Duration
	// LogRequests turns on per-request access logging (method, path,
	// status, duration) through Log. Off by default; archserve enables
	// it unless started with -quiet.
	LogRequests bool
	// Log receives service events; nil means the standard logger.
	Log *log.Logger
}

// Defaults for Config's zero fields.
const (
	// defaultQueueDepth is the admitted-jobs bound when Config leaves
	// QueueDepth zero.
	defaultQueueDepth = 64
	// defaultStreamJobs is the concurrent stream-job bound when Config
	// leaves StreamJobs zero.
	defaultStreamJobs = 4
	// defaultKeepAlive is the SSE keep-alive interval when Config leaves
	// KeepAlive zero.
	defaultKeepAlive = 15 * time.Second
)

// runOutcome is what one executed (or cache-served) run hands back
// through the singleflight.
type runOutcome struct {
	summary string
	report  arch.Report
	cached  bool
	// trace is the Chrome trace-event JSON of a job submitted with
	// {"trace": true}, served by GET /runs/{id}/trace.
	trace []byte
}

// Server is the archetype service. Create one with New; it implements
// http.Handler.
type Server struct {
	cfg     Config
	logger  *log.Logger
	pool    *sched.Scheduler
	flight  sched.Flight[runOutcome]
	mux     *http.ServeMux
	met     *metrics
	started time.Time

	// runCtx parents every job execution; stopRuns cancels it when a
	// drain deadline expires.
	runCtx   context.Context
	stopRuns context.CancelFunc

	mu           sync.Mutex
	jobs         map[string]*job
	active       int  // admitted batch jobs, not yet terminal — the QueueDepth gauge
	streamActive int  // running stream jobs — the StreamJobs gauge
	draining     bool // true once Shutdown starts: no new admissions

	wg sync.WaitGroup // one count per admitted job, for drain
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	runCtx, stopRuns := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		logger:   logger,
		pool:     &sched.Scheduler{Workers: cfg.Workers},
		mux:      http.NewServeMux(),
		met:      newMetrics(),
		started:  time.Now(),
		runCtx:   runCtx,
		stopRuns: stopRuns,
		jobs:     make(map[string]*job),
	}
	s.flight.Sched = s.pool
	s.registerGauges()
	s.mux.HandleFunc("GET /apps", s.handleApps)
	s.mux.HandleFunc("POST /runs", s.handleSubmit)
	s.mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP dispatches to the service's routes, with per-request access
// logging when configured.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.LogRequests {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.logger.Printf("serve: %s %s %d %.1fms", r.Method, r.URL.Path, sw.code,
		float64(time.Since(start).Microseconds())/1e3)
}

// queueDepth returns the effective admission bound.
func (s *Server) queueDepth() int {
	if s.cfg.QueueDepth > 0 {
		return s.cfg.QueueDepth
	}
	return defaultQueueDepth
}

// streamJobs returns the effective concurrent stream-job bound.
func (s *Server) streamJobs() int {
	if s.cfg.StreamJobs > 0 {
		return s.cfg.StreamJobs
	}
	return defaultStreamJobs
}

// keepAlive returns the effective SSE keep-alive interval; 0 means
// disabled.
func (s *Server) keepAlive() time.Duration {
	switch {
	case s.cfg.KeepAlive > 0:
		return s.cfg.KeepAlive
	case s.cfg.KeepAlive < 0:
		return 0
	}
	return defaultKeepAlive
}

// AppInfo is one registry entry as GET /apps reports it.
type AppInfo struct {
	Name        string   `json:"name"`
	Desc        string   `json:"desc"`
	DefaultSize int      `json:"defaultSize"`
	Backends    []string `json:"backends"`
	Kind        string   `json:"kind"`
}

// handleApps serves the registry listing.
func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	apps := arch.Apps()
	out := make([]AppInfo, len(apps))
	for i, a := range apps {
		out[i] = AppInfo{Name: a.Name, Desc: a.Desc, DefaultSize: a.DefaultSize,
			Backends: a.BackendNames(), Kind: a.KindName()}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSubmit admits one run submission: canonicalize, address, dedup
// against live jobs and the persistent cache, then admit under the
// queue bound.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp arch.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad run spec: %v", err))
		return
	}
	spec, err := sp.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := rescache.Key(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if spec.Kind == arch.KindStream {
		s.submitStream(w, key, spec)
		return
	}

	// Warm path: a persisted result answers immediately, no admission
	// needed. (Checked before the job table so a restarted server's
	// first resubmission short-circuits too.) Traced jobs never consult
	// the cache: the cached entry has no trace, and the point of the
	// submission is the trace.
	var warm *rescache.Entry
	if s.cfg.Cache != nil && !spec.Trace {
		if warm, _ = s.cfg.Cache.Get(key); warm != nil {
			s.met.cacheHits.Inc()
		} else {
			s.met.cacheMisses.Inc()
		}
	}

	s.mu.Lock()
	if j, ok := s.jobs[key]; ok {
		// A live or successful job answers the resubmission. A failed
		// one does not pin its failure: fall through and re-admit, so
		// transient errors are retryable by resubmitting.
		if st := j.snapshot(); !st.Terminal() || st.State != StateFailed {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	if warm != nil {
		j := newJob(key, spec)
		j.completeCached(warm)
		s.jobs[key] = j
		s.mu.Unlock()
		s.recordOutcome(nil, 0)
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.active >= s.queueDepth() {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full: %d jobs pending (limit %d)", s.active, s.queueDepth()))
		return
	}
	j := newJob(key, spec)
	s.jobs[key] = j
	s.active++
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runJob(j)
	w.Header().Set("Location", "/runs/"+key)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// submitStream admits one stream-job submission. Stream jobs bypass the
// batch path's three deduplication layers on purpose: no warm lookup
// and no persistence (a long-lived run is not a cacheable result — only
// non-terminal progress exists while it matters), and no singleflight
// (re-running a stream is the point of resubmitting one). A live stream
// job still answers resubmissions with its status; a terminal one is
// re-admitted, replacing the finished job under the same content
// address.
func (s *Server) submitStream(w http.ResponseWriter, key string, spec arch.Spec) {
	s.mu.Lock()
	if j, ok := s.jobs[key]; ok {
		if st := j.snapshot(); !st.Terminal() {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.streamActive >= s.streamJobs() {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("stream jobs full: %d running (limit %d)", s.streamActive, s.streamJobs()))
		return
	}
	j := newJob(key, spec)
	s.jobs[key] = j
	s.streamActive++
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runStreamJob(j)
	w.Header().Set("Location", "/runs/"+key)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// runStreamJob executes one admitted stream job on its own goroutine
// (not the sched pool — a long-lived stream would pin a worker), feeding
// each progress window into the job so SSE watchers see live
// throughput. The outcome resolves the job but is never persisted.
func (s *Server) runStreamJob(j *job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.streamActive--
		s.mu.Unlock()
	}()
	j.setRunning()
	start := time.Now()
	var lastElems int64
	progress := func(w arch.StreamWindow) {
		s.met.streamWindows.Inc()
		if d := w.Elems - lastElems; d > 0 {
			s.met.newElems.Add(d)
		}
		lastElems = w.Elems
		j.progress(w)
	}
	summary, rep, err := arch.RunSpecStream(s.runCtx, j.spec, progress)
	j.finish(runOutcome{summary: summary, report: rep}, false, err)
	s.recordOutcome(err, time.Since(start).Seconds())
}

// runJob executes one admitted job through the singleflight and the
// worker pool, persists the result, and resolves the job.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()
	j.setRunning()
	start := time.Now()
	out, shared, err := s.flight.Do(s.runCtx, j.id, func() (runOutcome, error) {
		// Traced jobs bypass the persistent cache in both directions: a
		// cached entry has no trace to serve, and an entry persisted
		// from a traced run would claim coverage it doesn't have.
		if j.spec.Trace {
			col := obs.NewCollector()
			summary, rep, err := arch.RunSpec(obs.NewContext(s.runCtx, col), j.spec)
			if err != nil {
				return runOutcome{}, err
			}
			blob, err := col.ChromeJSON()
			if err != nil {
				return runOutcome{}, fmt.Errorf("serve: encoding trace: %w", err)
			}
			return runOutcome{summary: summary, report: rep, trace: blob}, nil
		}
		// Re-check the persistent cache inside the flight: another
		// process sharing the cache directory may have finished this
		// exact experiment since admission.
		if s.cfg.Cache != nil {
			if e, ok := s.cfg.Cache.Get(j.id); ok {
				s.met.cacheHits.Inc()
				return runOutcome{summary: e.Summary, report: e.Report, cached: true}, nil
			}
		}
		summary, rep, err := arch.RunSpec(s.runCtx, j.spec)
		if err != nil {
			return runOutcome{}, err
		}
		if s.cfg.Cache != nil {
			e := &rescache.Entry{Spec: j.spec, Summary: summary, Report: rep, Created: time.Now().UTC()}
			if err := s.cfg.Cache.Put(j.id, e); err != nil {
				s.logger.Printf("serve: persist %s: %v", j.id[:12], err)
			}
		}
		return runOutcome{summary: summary, report: rep}, nil
	})
	j.finish(out, shared, err)
	s.recordOutcome(err, time.Since(start).Seconds())
}

// lookupJob finds the job for id, reviving it from the persistent cache
// if the server has never seen it but a prior process finished it.
func (s *Server) lookupJob(id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		return j, true
	}
	if s.cfg.Cache == nil {
		return nil, false
	}
	e, ok := s.cfg.Cache.Get(id)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok { // lost a revival race; use the winner
		return j, true
	}
	j = newJob(id, e.Spec)
	j.completeCached(e)
	s.jobs[id] = j
	return j, true
}

// handleStatus serves one job's current status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleTrace serves the Chrome trace-event JSON of a finished traced
// job (one submitted with {"trace": true}). Load it in ui.perfetto.dev
// or chrome://tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	blob := j.traceJSON()
	if blob == nil {
		st := j.snapshot()
		switch {
		case !j.spec.Trace:
			writeError(w, http.StatusNotFound, "run was not submitted with trace enabled")
		case !st.Terminal():
			writeError(w, http.StatusConflict, "run is still "+st.State+"; trace is available once it finishes")
		default:
			writeError(w, http.StatusNotFound, "run has no trace (it failed before producing one)")
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// handleEvents streams one job's status transitions as server-sent
// events ("status" events carrying the JobStatus JSON), ending after
// the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")

	// Keep-alive: when a job sits between transitions longer than the
	// interval (a long-lived stream between progress windows, a deep
	// queue), emit an SSE comment so proxies and idle timeouts keep the
	// connection open. Comments are invisible to event parsers.
	var keep <-chan time.Time
	if ka := s.keepAlive(); ka > 0 {
		t := time.NewTicker(ka)
		defer t.Stop()
		keep = t.C
	}
	for {
		st, changed := j.watch()
		if err := writeEvent(w, st); err != nil {
			return
		}
		fl.Flush()
		if st.Terminal() {
			if st.State == StateFailed {
				// A dedicated terminal error event, so SSE consumers can
				// register one onerror-style listener instead of parsing
				// every status; the data is the structured failure.
				writeErrorEvent(w, st) //nolint:errcheck // the stream ends either way
				fl.Flush()
			}
			return
		}
	wait:
		select {
		case <-changed:
		case <-keep:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
			goto wait
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent renders one SSE status event.
func writeEvent(w http.ResponseWriter, st JobStatus) error {
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: status\ndata: %s\n\n", blob)
	return err
}

// sseError is the data payload of the terminal SSE error event: the
// failure message plus its structured classification.
type sseError struct {
	Error   string       `json:"error"`
	Failure *FailureInfo `json:"failure,omitempty"`
}

// writeErrorEvent renders the terminal SSE error event of a failed job.
func writeErrorEvent(w http.ResponseWriter, st JobStatus) error {
	blob, err := json.Marshal(sseError{Error: st.Error, Failure: st.Failure})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: error\ndata: %s\n\n", blob)
	return err
}

// Shutdown stops admitting jobs and drains the in-flight ones. If ctx
// expires first, the remaining runs are cancelled and Shutdown returns
// ctx.Err() once they unwind. The HTTP listener is the caller's to
// close (http.Server.Shutdown); this drains the work behind it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	pending := s.active
	s.mu.Unlock()
	s.logger.Printf("serve: draining %d in-flight jobs", pending)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logger.Printf("serve: drained")
		return nil
	case <-ctx.Done():
		s.stopRuns()
		<-done
		s.logger.Printf("serve: drain deadline expired, cancelled remaining jobs")
		return ctx.Err()
	}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		// The connection is gone; nothing useful to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}
