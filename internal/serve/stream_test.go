package serve_test

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/arch"
	"repro/internal/serve"
)

// The "servestreamtest" app is a controllable streaming app: it emits
// Size progress windows, counts its executions, and can be held
// mid-stream after the first window — the "slow stream" the SSE
// keep-alive and admission tests need.
var (
	streamRuns   atomic.Int32
	streamGateMu sync.Mutex
	streamGate   chan struct{}
)

// holdStreams gates servestreamtest runs after their first window until
// the returned release func.
func holdStreams() (release func()) {
	g := make(chan struct{})
	streamGateMu.Lock()
	streamGate = g
	streamGateMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			streamGateMu.Lock()
			streamGate = nil
			streamGateMu.Unlock()
			close(g)
		})
	}
}

func runStreamTest(ctx context.Context, s arch.Settings, obs arch.StreamObserver) (string, arch.Report, error) {
	streamRuns.Add(1)
	for i := 1; i <= s.Size; i++ {
		if obs != nil {
			obs(arch.StreamWindow{Index: i, Elems: int64(10 * i), Elapsed: float64(i), Rate: 100})
		}
		if i == 1 {
			streamGateMu.Lock()
			g := streamGate
			streamGateMu.Unlock()
			if g != nil {
				select {
				case <-g:
				case <-ctx.Done():
					return "", arch.Report{}, ctx.Err()
				}
			}
		}
	}
	return "servestreamtest streamed", arch.Report{Backend: s.Backend.Name(), Procs: s.Procs, Msgs: int64(s.Size)}, nil
}

func init() {
	arch.Register(arch.App{
		Name:        "servestreamtest",
		Desc:        "controllable streaming test app for the serve package",
		DefaultSize: 4,
		Kind:        arch.KindStream,
		Run: func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
			return runStreamTest(ctx, s, nil)
		},
		RunStream: runStreamTest,
	})
}

// TestStreamJobLifecycle: a stream spec becomes a long-lived job whose
// SSE feed carries windowed progress, whose result is never persisted
// to the rescache, and whose terminal job re-admits (re-runs) on
// resubmission instead of answering from a cache.
func TestStreamJobLifecycle(t *testing.T) {
	cache := openCache(t, t.TempDir())
	_, c := newService(t, serve.Config{Cache: cache})
	streamRuns.Store(0)
	ctx := context.Background()

	st, err := c.Submit(ctx, arch.Spec{App: "servestreamtest", Size: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Kind != arch.KindStream {
		t.Errorf("submitted job kind = %q, want stream", st.Kind)
	}
	var wins []serve.StreamProgress
	final, err := c.Follow(ctx, st.ID, func(ev serve.JobStatus) {
		if ev.Stream != nil {
			wins = append(wins, *ev.Stream)
		}
	})
	if err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Summary != "servestreamtest streamed" {
		t.Errorf("summary = %q", final.Summary)
	}
	if len(wins) == 0 {
		t.Error("SSE feed carried no progress windows")
	}
	if final.Stream == nil || final.Stream.Window != 4 {
		t.Errorf("terminal status stream progress = %+v, want window 4", final.Stream)
	}
	if final.Cached {
		t.Error("stream job reported cached")
	}

	// Never persisted: the content address must miss in the rescache.
	if _, ok := cache.Get(st.ID); ok {
		t.Error("stream job result was persisted to the rescache")
	}
	if got := streamRuns.Load(); got != 1 {
		t.Fatalf("app ran %d times, want 1", got)
	}

	// Resubmission of a finished stream re-runs it (held mid-stream so
	// the re-admission is observable as a live job).
	release := holdStreams()
	defer release()
	st2, err := c.Submit(ctx, arch.Spec{App: "servestreamtest", Size: 4})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st2.ID != st.ID {
		t.Errorf("resubmitted job ID changed: %s vs %s", st2.ID, st.ID)
	}
	if st2.Terminal() {
		t.Fatalf("resubmitted stream answered terminally (%s): stream jobs must re-run", st2.State)
	}
	release()
	if final2, err := c.Follow(ctx, st.ID, nil); err != nil || final2.State != serve.StateDone {
		t.Fatalf("second run: %v / %+v", err, final2)
	}
	if got := streamRuns.Load(); got != 2 {
		t.Errorf("app ran %d times after resubmit, want 2", got)
	}
}

// TestStreamSSEKeepAlive: an idle streaming connection (job held
// mid-stream) receives periodic keep-alive comments so proxies and idle
// timeouts keep it open, and still sees the terminal event after
// release.
func TestStreamSSEKeepAlive(t *testing.T) {
	_, c := newService(t, serve.Config{KeepAlive: 20 * time.Millisecond})
	release := holdStreams()
	defer release()
	ctx := context.Background()

	st, err := c.Submit(ctx, arch.Spec{App: "servestreamtest", Size: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/runs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()

	// Read the feed while the job is stalled: expect keep-alive comments
	// between status events, then a terminal event after release.
	type lineOrErr struct {
		line string
		err  error
	}
	lines := make(chan lineOrErr)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- lineOrErr{line: sc.Text()}
		}
		lines <- lineOrErr{err: sc.Err()}
		close(lines)
	}()

	var keepalives, events int
	released := false
	deadline := time.After(5 * time.Second)
	for {
		select {
		case l, ok := <-lines:
			if !ok || l.err != nil {
				t.Fatalf("feed ended early (err=%v, keepalives=%d)", l.err, keepalives)
			}
			switch {
			case strings.HasPrefix(l.line, ":"):
				keepalives++
				if keepalives >= 2 && !released {
					released = true
					release()
				}
			case strings.HasPrefix(l.line, "data:"):
				events++
				if strings.Contains(l.line, `"done"`) {
					if keepalives < 2 {
						t.Errorf("saw %d keep-alive comments before completion, want >= 2", keepalives)
					}
					if events < 2 {
						t.Errorf("saw %d status events, want >= 2", events)
					}
					return
				}
			}
		case <-deadline:
			t.Fatalf("no terminal event after 5s (keepalives=%d events=%d)", keepalives, events)
		}
	}
}

// TestStreamJobsAdmissionCap: concurrent stream jobs are bounded by
// StreamJobs, separately from the batch queue — the cap answers 429 and
// frees up when a stream finishes.
func TestStreamJobsAdmissionCap(t *testing.T) {
	_, c := newService(t, serve.Config{StreamJobs: 1})
	release := holdStreams()
	defer release()
	ctx := context.Background()

	st1, err := c.Submit(ctx, arch.Spec{App: "servestreamtest", Size: 100})
	if err != nil {
		t.Fatalf("first stream: %v", err)
	}
	// A different stream spec (different size → different address) must
	// bounce off the cap while the first is live.
	_, err = c.Submit(ctx, arch.Spec{App: "servestreamtest", Size: 101})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("second stream err = %v, want 429", err)
	}
	// Batch jobs are not subject to the stream cap.
	if st, err := c.Run(ctx, arch.Spec{App: "servetest", Size: 32, Procs: 2}); err != nil || st.State != serve.StateDone {
		t.Fatalf("batch run under stream cap: %v / %+v", err, st)
	}

	release()
	if final, err := c.Follow(ctx, st1.ID, nil); err != nil || final.State != serve.StateDone {
		t.Fatalf("first stream completion: %v / %+v", err, final)
	}
	// Cap freed: a new stream admits again.
	if _, err := c.Submit(ctx, arch.Spec{App: "servestreamtest", Size: 102}); err != nil {
		t.Fatalf("stream after cap freed: %v", err)
	}
}
