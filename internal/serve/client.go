package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/arch"
)

// Client is a minimal archetype-service client: what archdemo -remote
// uses to submit a spec and wait for its result. The zero value is
// invalid; set Base to the service root (e.g. "http://127.0.0.1:8080").
type Client struct {
	// Base is the service root URL, without a trailing slash.
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Poll is the status polling interval for Wait; zero means 50ms.
	Poll time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string { return strings.TrimRight(c.Base, "/") + path }

// decode reads one JSON response, turning the service's error envelope
// into a Go error for non-2xx statuses.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("serve client: read response: %w", err)
	}
	if resp.StatusCode >= 300 {
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("serve client: %s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("serve client: %s", resp.Status)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve client: decode response: %w", err)
	}
	return nil
}

// Apps fetches the registry listing.
func (c *Client) Apps(ctx context.Context) ([]AppInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/apps"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	var out []AppInfo
	return out, decode(resp, &out)
}

// Submit posts one run spec and returns the job's admission status
// (which may already be terminal on a cache hit).
func (c *Client) Submit(ctx context.Context, sp arch.Spec) (JobStatus, error) {
	blob, err := json.Marshal(sp)
	if err != nil {
		return JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/runs"), bytes.NewReader(blob))
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// Status fetches one job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/runs/"+id), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	return st, decode(resp, &st)
}

// Wait polls the job until it reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
	}
}

// Follow attaches to the job's SSE feed and invokes fn on every status
// event until the job reaches a terminal state, which it returns. It is
// how a client watches a long-lived stream job's windowed progress
// without polling; keep-alive comment lines are consumed silently. A
// feed that ends before a terminal status is an error.
func (c *Client) Follow(ctx context.Context, id string, fn func(JobStatus)) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/runs/"+id+"/events"), nil)
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var st JobStatus
		return st, decode(resp, &st) // reuse the error-envelope path
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // blank line ends one event
			if len(data) == 0 {
				continue
			}
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return JobStatus{}, fmt.Errorf("serve client: decode event: %w", err)
			}
			data = data[:0]
			if fn != nil {
				fn(st)
			}
			if st.Terminal() {
				return st, nil
			}
		case strings.HasPrefix(line, ":"): // keep-alive comment
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		}
	}
	if err := sc.Err(); err != nil {
		return JobStatus{}, fmt.Errorf("serve client: event stream: %w", err)
	}
	return JobStatus{}, fmt.Errorf("serve client: event stream ended before a terminal status")
}

// Run submits sp and waits for its terminal status: the remote
// equivalent of arch.RunSpec.
func (c *Client) Run(ctx context.Context, sp arch.Spec) (JobStatus, error) {
	st, err := c.Submit(ctx, sp)
	if err != nil {
		return JobStatus{}, err
	}
	if st.Terminal() {
		return st, nil
	}
	return c.Wait(ctx, st.ID)
}
