package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		err       error
		reason    string
		retryable bool
	}{
		{context.Canceled, ReasonCanceled, true},
		{fmt.Errorf("running app: %w", context.DeadlineExceeded), ReasonCanceled, true},
		{errors.New(`unknown backend "quantum" (have: dist, elastic, real, sim)`), ReasonSpec, false},
		{errors.New(`app "fft" does not support backend "real" (have: dist, sim)`), ReasonSpec, false},
		{errors.New("elastic: world start: 0 of 2 workers attached within 30s"), ReasonBackend, true},
		{errors.New("elastic: rank 1 exceeded its restart budget (3 restarts): lost host"), ReasonBackend, true},
		{errors.New("dist: worker for process 2 disconnected"), ReasonBackend, true},
		{errors.New("servetest: induced failure"), ReasonInternal, false},
	}
	for _, tc := range cases {
		fi := classifyFailure(tc.err)
		if fi.Reason != tc.reason || fi.Retryable != tc.retryable {
			t.Errorf("classifyFailure(%v) = %+v, want {%s %v}", tc.err, fi, tc.reason, tc.retryable)
		}
	}
}
