package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// metrics is the server's Prometheus registry: every counter the request
// handlers touch, plus scrape-time gauges over the server's admission
// state. The same numbers back /metrics and the enriched /healthz, so
// the two views can never disagree.
type metrics struct {
	reg *obs.Registry
	// jobs counts jobs reaching a terminal state, by state ("done",
	// "failed"); cache-served completions count as done.
	jobs *obs.CounterVec
	// failed refines the failed count by the structured failure reason.
	failed *obs.CounterVec
	// cacheHits / cacheMisses count persistent result-cache lookups on
	// the batch submission path.
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// runDur observes executed (not cache-served) batch run durations.
	runDur *obs.Histogram
	// streamWindows / streamElems count stream-job progress windows and
	// the elements that flowed through their sinks.
	streamWindows *obs.Counter
	newElems      *obs.Counter
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:           reg,
		jobs:          reg.CounterVec("archserve_jobs_total", "Jobs reaching a terminal state.", "state"),
		failed:        reg.CounterVec("archserve_jobs_failed_total", "Failed jobs by structured failure reason.", "reason"),
		cacheHits:     reg.Counter("archserve_cache_hits_total", "Persistent result-cache hits."),
		cacheMisses:   reg.Counter("archserve_cache_misses_total", "Persistent result-cache misses."),
		runDur:        reg.Histogram("archserve_run_duration_seconds", "Executed batch run durations.", obs.DurationBuckets),
		streamWindows: reg.Counter("archserve_stream_windows_total", "Stream-job progress windows."),
		newElems:      reg.Counter("archserve_stream_elems_total", "Elements through stream-job sinks."),
	}
}

// registerGauges adds the scrape-time gauges over the server's live
// admission state. Called once from New, after s.met exists.
func (s *Server) registerGauges() {
	s.met.reg.Gauge("archserve_queue_depth", "Admitted batch jobs not yet terminal.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.active)
	})
	s.met.reg.Gauge("archserve_queue_limit", "Batch admission bound (QueueDepth).", func() float64 {
		return float64(s.queueDepth())
	})
	s.met.reg.Gauge("archserve_stream_jobs_active", "Running stream jobs.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.streamActive)
	})
	s.met.reg.Gauge("archserve_jobs_tracked", "Jobs in the in-memory job table.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.jobs))
	})
	s.met.reg.Gauge("archserve_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.started).Seconds()
	})
}

// handleMetrics serves the registry as Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.reg.WriteText(w)
}

// healthInfo is the enriched /healthz body: liveness plus the identity
// and load facts an operator wants from a probe — uptime, build info,
// and the same live gauges /metrics exposes.
type healthInfo struct {
	Status       string  `json:"status"`
	UptimeSec    float64 `json:"uptimeSec"`
	Go           string  `json:"go"`
	Module       string  `json:"module,omitempty"`
	Revision     string  `json:"revision,omitempty"`
	Jobs         int     `json:"jobs"`
	Active       int     `json:"active"`
	QueueLimit   int     `json:"queueLimit"`
	StreamActive int     `json:"streamActive"`
}

// handleHealthz serves the liveness probe with uptime, build info, and
// live job gauges.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := healthInfo{
		Status:     "ok",
		UptimeSec:  time.Since(s.started).Seconds(),
		Go:         runtime.Version(),
		QueueLimit: s.queueDepth(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				info.Revision = kv.Value
			}
		}
	}
	s.mu.Lock()
	info.Jobs = len(s.jobs)
	info.Active = s.active
	info.StreamActive = s.streamActive
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// statusWriter captures the response code for the request log. It
// forwards Flush so SSE streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// recordOutcome bumps the terminal-state counters for one finished job;
// dur > 0 additionally lands in the run-duration histogram (executed
// runs only — cache-served completions have no run to time).
func (s *Server) recordOutcome(err error, dur float64) {
	if err != nil {
		s.met.jobs.Inc(StateFailed)
		s.met.failed.Inc(classifyFailure(err).Reason)
		return
	}
	s.met.jobs.Inc(StateDone)
	if dur > 0 {
		s.met.runDur.Observe(dur)
	}
}
