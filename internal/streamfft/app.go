// Package streamfft is the streaming FFT-frame application: an
// unbounded sequence of n×n complex frames flows through a two-farm
// stream pipeline (row FFTs, then column FFTs) and comes out 2D-Fourier
// transformed, frame-exact against the sequential §3.5.1 algorithm. It
// generalizes internal/pipeline's fixed two-stage FFT chain to the
// stream archetype: bounded credit windows instead of an implicit
// unbounded buffer, element batching, and a worker farm per stage with
// deterministic order restoration.
package streamfft

import (
	"context"
	"fmt"
	"math"

	"repro/arch"
	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/stream"
)

// Edge is the fixed frame edge: every element of the stream is one
// Edge×Edge complex frame.
const Edge = 32

// Streaming knobs: frames per message and flow-control window, fixed so
// every backend runs the identical protocol.
const (
	frameBatch   = 4
	frameCredits = 4
)

func init() {
	arch.Register(arch.App{
		Name:        "streamfft",
		Desc:        "streaming 2D FFT frames through a two-farm pipeline (stream archetype)",
		DefaultSize: 256,
		Kind:        arch.KindStream,
		Run: func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
			return RunStream(ctx, s, nil)
		},
		RunStream: RunStream,
	})
}

// frameAt generates frame f's element (i, j): a deterministic smooth
// field drifting with the frame index, identical on every rank and in
// the sequential oracle.
func frameAt(f int64, i, j int) complex128 {
	return complex(
		math.Sin(0.11*float64(i)+0.007*float64(f)),
		math.Cos(0.23*float64(j)-0.003*float64(f)),
	)
}

// pipeline builds the stream pipeline for the given per-stage worker
// counts: source emits whole frames, stage "rowfft" transforms each
// frame's rows, stage "colfft" its columns — together exactly
// fft.TwoDSeq's arithmetic per frame, so outputs are bit-identical to
// the sequential algorithm.
func pipeline(workers []int) *stream.Pipeline[complex128] {
	width := Edge * Edge
	return &stream.Pipeline[complex128]{
		Name:  "streamfft",
		Width: width,
		Source: func(c arch.Comm, f int64, dst []complex128) []complex128 {
			for i := 0; i < Edge; i++ {
				for j := 0; j < Edge; j++ {
					dst = append(dst, frameAt(f, i, j))
				}
			}
			return dst
		},
		Stages: []stream.Stage[complex128]{
			{
				Name:    "rowfft",
				Workers: workers[0],
				Fn: func(c arch.Comm, _ any, in []complex128) []complex128 {
					for off := 0; off < len(in); off += width {
						frame := in[off : off+width]
						for i := 0; i < Edge; i++ {
							fft.Transform(c, frame[i*Edge:(i+1)*Edge], false)
						}
					}
					return in
				},
			},
			{
				Name:    "colfft",
				Workers: workers[1],
				Fn: func(c arch.Comm, _ any, in []complex128) []complex128 {
					col := make([]complex128, Edge)
					for off := 0; off < len(in); off += width {
						a := &array.Dense2D[complex128]{NX: Edge, NY: Edge, Data: in[off : off+width]}
						for j := 0; j < Edge; j++ {
							a.Col(j, col)
							fft.Transform(c, col, false)
							a.SetCol(j, col)
						}
						c.MemWords(float64(4 * Edge * Edge)) // column copy traffic
					}
					return in
				},
			},
		},
	}
}

// RunStream runs Size frames through the pipeline on the configured
// world, delivering progress windows to obs (nil for unobserved runs),
// and verifies every output frame bit-exact against fft.TwoDSeq. The
// world needs at least 4 processes: source, one worker per farm, sink.
func RunStream(ctx context.Context, s arch.Settings, obs arch.StreamObserver) (string, arch.Report, error) {
	frames := int64(s.Size)
	if s.Procs < 4 {
		return "", arch.Report{}, fmt.Errorf("streamfft: needs at least 4 processes (source, 2 farms, sink), got %d", s.Procs)
	}
	workers := stream.SplitWorkers(s.Procs-2, 2)
	pl := pipeline(workers)
	cfg := stream.Config{
		Elems:   frames,
		Batch:   frameBatch,
		Credits: frameCredits,
	}
	if obs != nil {
		cfg.Window = windowSize(frames)
		cfg.OnWindow = func(w stream.Window) {
			obs(arch.StreamWindow{Index: w.Index, Elems: w.Elems, Elapsed: w.Elapsed, Rate: w.Rate})
		}
	}

	prog := arch.SPMD(
		func(p *arch.Proc, _ int) []complex128 { return stream.Run(p, pl, cfg) },
		func(parts [][]complex128) []complex128 { return parts[len(parts)-1] },
	)
	out, rep, err := arch.RunWith(ctx, prog, s, 0)
	if err != nil {
		return "", rep, err
	}

	width := Edge * Edge
	if int64(len(out)) != frames*int64(width) {
		return "", rep, fmt.Errorf("streamfft: sink collected %d scalars, want %d", len(out), frames*int64(width))
	}
	want := array.New2D[complex128](Edge, Edge)
	for f := int64(0); f < frames; f++ {
		want.Fill(func(i, j int) complex128 { return frameAt(f, i, j) })
		fft.TwoDSeq(core.Nop, want, false)
		got := out[f*int64(width) : (f+1)*int64(width)]
		for k := range got {
			if got[k] != want.Data[k] {
				return "", rep, fmt.Errorf("streamfft: frame %d scalar %d = %v, want %v (sequential)", f, k, got[k], want.Data[k])
			}
		}
	}
	return fmt.Sprintf("streamed %d %dx%d FFT frames through %d+%d workers (bit-exact vs sequential)",
		frames, Edge, Edge, workers[0], workers[1]), rep, nil
}

// windowSize picks the progress-window size for an observed run: eight
// windows across the stream, at least one frame each.
func windowSize(frames int64) int64 {
	w := frames / 8
	if w < 1 {
		w = 1
	}
	return w
}
