package streamfft

import (
	"context"
	"strings"
	"testing"

	"repro/arch"
)

// TestRunStreamVerifies: a small observed run on the simulator streams
// every frame through the farm pipeline, fires monotone progress
// windows, and passes the internal bit-exact check against the
// sequential 2D FFT.
func TestRunStreamVerifies(t *testing.T) {
	s := arch.NewSettings(arch.WithProcs(6), arch.WithSize(16))
	var wins []arch.StreamWindow
	sum, rep, err := RunStream(context.Background(), s, func(w arch.StreamWindow) {
		wins = append(wins, w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum, "16 32x32 FFT frames") {
		t.Errorf("summary = %q", sum)
	}
	if rep.Msgs == 0 || rep.Bytes == 0 {
		t.Errorf("report carries no communication: %+v", rep)
	}
	if len(wins) == 0 {
		t.Fatal("no progress windows observed")
	}
	last := wins[len(wins)-1]
	if last.Elems != 16 {
		t.Errorf("final window reports %d elems, want 16", last.Elems)
	}
	for i := 1; i < len(wins); i++ {
		if wins[i].Index != wins[i-1].Index+1 || wins[i].Elems <= wins[i-1].Elems {
			t.Errorf("windows not monotone: %+v then %+v", wins[i-1], wins[i])
		}
	}
}

// TestRunStreamRejectsTinyWorlds: fewer than 4 processes cannot host
// source, two farms, and sink.
func TestRunStreamRejectsTinyWorlds(t *testing.T) {
	s := arch.NewSettings(arch.WithProcs(3), arch.WithSize(4))
	if _, _, err := RunStream(context.Background(), s, nil); err == nil {
		t.Fatal("RunStream with 3 procs succeeded, want error")
	}
}
