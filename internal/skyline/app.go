package skyline

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/core"
	"repro/internal/onedeep"
)

func init() {
	arch.Register(arch.App{
		Name:        "skyline",
		Desc:        "one-deep skyline (§2.6.1)",
		DefaultSize: 2000,
		Run:         runApp,
	})
}

// Program runs the skyline computation on the one-deep archetype over
// pre-distributed building blocks and assembles the full skyline.
func Program() arch.Program[[][]Building, Skyline] {
	spec := Spec(onedeep.Centralized)
	return arch.SPMD(
		func(p *arch.Proc, blocks [][]Building) Skyline {
			return onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		},
		Assemble)
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	bs := RandomBuildings(n, 3, 5000)
	want := Compute(core.Nop, bs)
	blocks := make([][]Building, s.Procs)
	for i := range blocks {
		blocks[i] = bs[i*n/s.Procs : (i+1)*n/s.Procs]
	}
	got, rep, err := arch.RunWith(ctx, Program(), s, blocks)
	if err != nil {
		return "", rep, err
	}
	if !Equal(got, want) {
		return "", rep, fmt.Errorf("skyline: parallel result differs from sequential")
	}
	return fmt.Sprintf("skyline of %d buildings (%d points, verified)", n, len(want)), rep, nil
}
