package skyline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/spmd"
)

func TestFromBuilding(t *testing.T) {
	s := FromBuilding(Building{1, 3, 10})
	if len(s) != 2 || s[0] != (Point{1, 10}) || s[1] != (Point{3, 0}) {
		t.Errorf("FromBuilding = %v", s)
	}
	if FromBuilding(Building{3, 1, 10}) != nil {
		t.Error("inverted building should give empty skyline")
	}
	if FromBuilding(Building{1, 3, 0}) != nil {
		t.Error("zero-height building should give empty skyline")
	}
}

func TestMergeTwoClassic(t *testing.T) {
	a := FromBuilding(Building{2, 9, 10})
	b := FromBuilding(Building{3, 7, 15})
	got := MergeTwo(core.Nop, a, b)
	want := Skyline{{2, 10}, {3, 15}, {7, 10}, {9, 0}}
	if !Equal(got, want) {
		t.Errorf("merge = %v, want %v", got, want)
	}
}

func TestMergeTwoIdentity(t *testing.T) {
	a := FromBuilding(Building{1, 5, 7})
	if !Equal(MergeTwo(core.Nop, a, nil), a) {
		t.Error("merge with empty right changed skyline")
	}
	if !Equal(MergeTwo(core.Nop, nil, a), a) {
		t.Error("merge with empty left changed skyline")
	}
	if !Equal(MergeTwo(core.Nop, a, a), a) {
		t.Error("merge with itself changed skyline")
	}
}

func TestComputeMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		n := trial * 3
		bs := RandomBuildings(n, int64(trial), 1000)
		got := Compute(core.Nop, bs)
		want := BruteForce(bs)
		if !Equal(got, want) {
			t.Fatalf("trial %d (n=%d): D&C %v != brute %v", trial, n, got, want)
		}
	}
}

func TestComputePropertyQuick(t *testing.T) {
	f := func(raw []struct {
		L, W uint8
		H    uint8
	}) bool {
		bs := make([]Building, len(raw))
		for i, r := range raw {
			bs[i] = Building{float64(r.L), float64(r.L) + float64(r.W%20), float64(r.H % 50)}
		}
		return Equal(Compute(core.Nop, bs), BruteForce(bs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeightAt(t *testing.T) {
	s := Skyline{{2, 10}, {5, 3}, {8, 0}}
	cases := []struct{ x, want float64 }{
		{0, 0}, {2, 10}, {3, 10}, {5, 3}, {7.9, 3}, {8, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := HeightAt(s, c.x); got != c.want {
			t.Errorf("HeightAt(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestClipReassembles(t *testing.T) {
	bs := RandomBuildings(60, 4, 500)
	s := Compute(core.Nop, bs)
	cuts := []float64{100, 200, 300, 400}
	var parts []Skyline
	lo := math.Inf(-1)
	for _, c := range cuts {
		parts = append(parts, Clip(core.Nop, s, lo, c))
		lo = c
	}
	parts = append(parts, Clip(core.Nop, s, lo, math.Inf(1)))
	if got := Assemble(parts); !Equal(got, s) {
		t.Errorf("clip+assemble != original\ngot  %v\nwant %v", got, s)
	}
}

func TestClipDegenerateInterval(t *testing.T) {
	s := Skyline{{0, 5}, {10, 0}}
	if Clip(core.Nop, s, 3, 3) != nil {
		t.Error("empty interval should clip to nil")
	}
	if Clip(core.Nop, s, 5, 3) != nil {
		t.Error("inverted interval should clip to nil")
	}
}

func TestNormalize(t *testing.T) {
	in := []Point{{1, 5}, {2, 5}, {3, 0}, {4, 0}, {5, 7}, {5, 9}}
	got := Normalize(in)
	want := Skyline{{1, 5}, {3, 0}, {5, 9}}
	if !Equal(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
	if len(Normalize(nil)) != 0 {
		t.Error("Normalize(nil) should be empty")
	}
}

func runSpecSPMD(t *testing.T, bs []Building, nprocs int, strategy onedeep.ParamStrategy) Skyline {
	t.Helper()
	spec := Spec(strategy)
	blocks := make([][]Building, nprocs)
	for i := range blocks {
		lo, hi := i*len(bs)/nprocs, (i+1)*len(bs)/nprocs
		blocks[i] = bs[lo:hi]
	}
	outs := make([]Skyline, nprocs)
	w := spmd.MustWorld(nprocs, machine.IntelDelta())
	if _, err := w.Run(func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	}); err != nil {
		t.Fatal(err)
	}
	return Assemble(outs)
}

func TestOneDeepSkylineMatchesSequential(t *testing.T) {
	bs := RandomBuildings(300, 7, 2000)
	want := Compute(core.Nop, bs)
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, strat := range []onedeep.ParamStrategy{onedeep.Centralized, onedeep.Replicated} {
			got := runSpecSPMD(t, bs, n, strat)
			if !Equal(got, want) {
				t.Fatalf("n=%d strat=%v: one-deep != sequential", n, strat)
			}
		}
	}
}

func TestOneDeepSkylineV1MatchesSPMD(t *testing.T) {
	bs := RandomBuildings(200, 8, 1500)
	const n = 6
	blocks := make([][]Building, n)
	for i := range blocks {
		lo, hi := i*len(bs)/n, (i+1)*len(bs)/n
		blocks[i] = bs[lo:hi]
	}
	spec := Spec(onedeep.Centralized)
	v1 := onedeep.RunV1(core.Sequential, spec, blocks)
	v1c := onedeep.RunV1(core.Concurrent, spec, blocks)
	for i := range v1 {
		if !Equal(v1[i], v1c[i]) {
			t.Fatal("V1 modes disagree")
		}
	}
	got := runSpecSPMD(t, bs, n, onedeep.Centralized)
	if !Equal(got, Assemble(v1)) {
		t.Fatal("V1 and SPMD assemble differently")
	}
}

func TestOneDeepSkylineEmptyAndTinyInputs(t *testing.T) {
	for _, count := range []int{0, 1, 2, 5} {
		bs := RandomBuildings(count, 9, 100)
		want := Compute(core.Nop, bs)
		got := runSpecSPMD(t, bs, 4, onedeep.Centralized)
		if !Equal(got, want) {
			t.Fatalf("count=%d: got %v want %v", count, got, want)
		}
	}
}

func TestSkylineInvariants(t *testing.T) {
	// Canonical skylines: strictly increasing X, no equal consecutive
	// heights, final height 0 when non-empty.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		bs := RandomBuildings(rng.Intn(100)+1, int64(trial), 800)
		s := Compute(core.Nop, bs)
		if len(s) == 0 {
			continue
		}
		for i := 1; i < len(s); i++ {
			if s[i].X <= s[i-1].X {
				t.Fatalf("X not strictly increasing at %d: %v", i, s)
			}
			if s[i].H == s[i-1].H {
				t.Fatalf("consecutive equal heights at %d: %v", i, s)
			}
		}
		if s[len(s)-1].H != 0 {
			t.Fatalf("skyline does not end at height 0: %v", s)
		}
	}
}

func TestVBytes(t *testing.T) {
	s := Skyline{{1, 2}, {3, 0}}
	if s.VBytes() != 32 {
		t.Errorf("VBytes = %d, want 32", s.VBytes())
	}
	if spmd.BytesOf(s) != 32 {
		t.Errorf("BytesOf(Skyline) = %d, want 32", spmd.BytesOf(s))
	}
}
