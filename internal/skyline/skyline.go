// Package skyline implements the skyline problem of §2.6.1: merging a
// collection of rectangular buildings into a single skyline.
//
// The sequential algorithm is the classic divide and conquer (base case:
// one building is a skyline; merge: combine two skylines considering their
// overlap). The one-deep version follows the paper step by step: degenerate
// split (buildings arrive distributed), local solve with the sequential
// algorithm, then a merge phase that samples the local skylines' point
// distribution, computes vertical splitter lines cutting all skylines into
// N regions with approximately equal point counts, redistributes the
// clipped pieces so each process owns one region, and merges locally. The
// final skyline is the concatenation of the local skylines.
package skyline

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/onedeep"
)

// Building is an axis-aligned rectangle sitting on the x-axis.
type Building struct {
	Left, Right, Height float64
}

// Point is a skyline critical point: from X onward the skyline has height
// H, until the next point.
type Point struct {
	X, H float64
}

// Skyline is a sequence of critical points with strictly increasing X and
// no consecutive equal heights; the height before the first point is 0.
// A complete (un-clipped) skyline ends with a point of height 0.
type Skyline []Point

// VBytes implements spmd.Sized for communication cost accounting.
func (s Skyline) VBytes() int { return 16 * len(s) }

// FromBuilding returns the skyline of a single building — the base case of
// the divide and conquer.
func FromBuilding(b Building) Skyline {
	if b.Left >= b.Right || b.Height <= 0 {
		return nil
	}
	return Skyline{{b.Left, b.Height}, {b.Right, 0}}
}

// MergeTwo merges two skylines into one — the conquer step — charging one
// comparison-exchange per point consumed. Unlike Normalize, a leading
// zero-height point is preserved: for clipped regional skylines (see Clip)
// it records that the region starts at ground level, which matters when
// the previous region ended higher.
func MergeTwo(m core.Meter, a, b Skyline) Skyline {
	out := make(Skyline, 0, len(a)+len(b))
	i, j := 0, 0
	ha, hb := 0.0, 0.0
	emitted := false
	lastH := 0.0
	for i < len(a) || j < len(b) {
		var x float64
		switch {
		case j >= len(b) || (i < len(a) && a[i].X < b[j].X):
			x = a[i].X
			ha = a[i].H
			i++
		case i >= len(a) || b[j].X < a[i].X:
			x = b[j].X
			hb = b[j].H
			j++
		default: // equal X: consume both
			x = a[i].X
			ha = a[i].H
			hb = b[j].H
			i++
			j++
		}
		h := math.Max(ha, hb)
		if !emitted || h != lastH {
			out = append(out, Point{x, h})
			lastH = h
			emitted = true
		}
	}
	m.Cmps(float64(len(a) + len(b)))
	return out
}

// Normalize removes redundant critical points (consecutive equal heights,
// duplicate X keeping the last) and returns a canonical skyline.
func Normalize(pts []Point) Skyline {
	out := make(Skyline, 0, len(pts))
	cur := 0.0
	for k := 0; k < len(pts); k++ {
		// Collapse runs with equal X to the final height at that X.
		if k+1 < len(pts) && pts[k+1].X == pts[k].X {
			continue
		}
		if pts[k].H != cur {
			out = append(out, pts[k])
			cur = pts[k].H
		}
	}
	return out
}

// Compute returns the skyline of the buildings using sequential divide and
// conquer, charging m.
func Compute(m core.Meter, bs []Building) Skyline {
	switch len(bs) {
	case 0:
		return nil
	case 1:
		return FromBuilding(bs[0])
	}
	mid := len(bs) / 2
	return MergeTwo(m, Compute(m, bs[:mid]), Compute(m, bs[mid:]))
}

// HeightAt returns the skyline height at x.
func HeightAt(s Skyline, x float64) float64 {
	// Last point with X <= x determines the height.
	idx := sort.Search(len(s), func(i int) bool { return s[i].X > x })
	if idx == 0 {
		return 0
	}
	return s[idx-1].H
}

// Clip returns the restriction of s to the half-open interval [a, b):
// a synthetic point at a carrying the height there (omitted when a is
// -Inf or the height is unchanged from zero), followed by the points with
// a < X < b. The restriction of the global skyline to consecutive regions
// concatenates (after Normalize) back to the global skyline.
func Clip(m core.Meter, s Skyline, a, b float64) Skyline {
	if a >= b {
		return nil
	}
	out := make(Skyline, 0, 4)
	if !math.IsInf(a, -1) {
		out = append(out, Point{a, HeightAt(s, a)})
	}
	lo := sort.Search(len(s), func(i int) bool { return s[i].X > a })
	for k := lo; k < len(s) && s[k].X < b; k++ {
		out = append(out, s[k])
	}
	m.MemWords(float64(len(out)) * 2)
	return out
}

// Assemble concatenates per-region skylines (in region order) and
// normalizes — the paper's final "concatenation of the local skylines".
func Assemble(parts []Skyline) Skyline {
	var all []Point
	for _, p := range parts {
		all = append(all, p...)
	}
	return Normalize(all)
}

// Equal reports whether two skylines describe the same height function.
func Equal(a, b Skyline) bool {
	a, b = Normalize(a), Normalize(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BruteForce computes the skyline by sweeping all critical x-coordinates —
// O(n²), for testing the divide and conquer against.
func BruteForce(bs []Building) Skyline {
	xs := make([]float64, 0, 2*len(bs))
	for _, b := range bs {
		if b.Left < b.Right && b.Height > 0 {
			xs = append(xs, b.Left, b.Right)
		}
	}
	sort.Float64s(xs)
	var pts []Point
	for i, x := range xs {
		if i > 0 && x == xs[i-1] {
			continue
		}
		h := 0.0
		for _, b := range bs {
			if b.Left <= x && x < b.Right && b.Height > h {
				h = b.Height
			}
		}
		pts = append(pts, Point{x, h})
	}
	return Normalize(pts)
}

// samplesPerProc is how many x-coordinate samples each process contributes
// to splitter planning.
const samplesPerProc = 16

// Spec returns the one-deep skyline algorithm of §2.6.1 as an archetype
// spec: degenerate split, sequential-D&C local solve, and a merge phase
// cutting all local skylines at shared vertical splitter lines.
func Spec(strategy onedeep.ParamStrategy) *onedeep.Spec[[]Building, Skyline, struct{}, []float64] {
	return &onedeep.Spec[[]Building, Skyline, struct{}, []float64]{
		Name:  "one-deep skyline",
		Split: nil, // degenerate: buildings arrive distributed
		Solve: func(m core.Meter, local []Building) Skyline {
			return Compute(m, local)
		},
		Merge: &onedeep.Exchange[Skyline, []float64]{
			Strategy: strategy,
			// Sample the local point distribution: regular x samples,
			// always including the leftmost and rightmost points
			// (the paper's step 1).
			Sample: func(m core.Meter, local Skyline) []float64 {
				if len(local) == 0 {
					return nil
				}
				out := []float64{local[0].X, local[len(local)-1].X}
				for i := 1; i <= samplesPerProc; i++ {
					out = append(out, local[i*len(local)/(samplesPerProc+1)].X)
				}
				m.MemWords(float64(len(out)))
				return out
			},
			// Splitters are x-quantiles of the pooled samples: vertical
			// lines cutting all skylines into N regions with
			// approximately equal point counts (the paper's step 2).
			Plan: func(m core.Meter, samples [][]float64) []float64 {
				n := len(samples)
				var all []float64
				for _, s := range samples {
					all = append(all, s...)
				}
				sort.Float64s(all)
				m.Cmps(float64(len(all)) * math.Log2(float64(len(all))+2))
				splitters := make([]float64, 0, n-1)
				for i := 1; i < n; i++ {
					if len(all) == 0 {
						splitters = append(splitters, 0)
						continue
					}
					idx := i * len(all) / n
					if idx >= len(all) {
						idx = len(all) - 1
					}
					splitters = append(splitters, all[idx])
				}
				return splitters
			},
			// Cut the local skyline at the splitters (steps 3-4).
			Partition: func(m core.Meter, local Skyline, splitters []float64, n int) []Skyline {
				parts := make([]Skyline, n)
				lo := math.Inf(-1)
				for i := 0; i < n; i++ {
					hi := math.Inf(1)
					if i < len(splitters) {
						hi = splitters[i]
					}
					parts[i] = Clip(m, local, lo, hi)
					lo = hi
				}
				return parts
			},
			// Merge the pieces that landed in this region (step 5).
			Combine: func(m core.Meter, parts []Skyline) Skyline {
				var acc Skyline
				for _, p := range parts {
					acc = MergeTwo(m, acc, p)
				}
				return acc
			},
		},
	}
}

// RandomBuildings generates n deterministic pseudo-random buildings over
// roughly [0, span].
func RandomBuildings(n int, seed int64, span float64) []Building {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Building, n)
	for i := range out {
		left := rng.Float64() * span
		width := rng.Float64()*span/20 + span/200
		out[i] = Building{Left: left, Right: left + width, Height: rng.Float64()*90 + 10}
	}
	return out
}
