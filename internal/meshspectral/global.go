package meshspectral

import (
	"repro/internal/collective"
	"repro/internal/spmd"
)

// Global is a variable common to all points in the grid — a constant, or
// the result of a reduction — replicated in every process with its copies
// kept consistent (§3.2): the value may only change through operations
// that establish the same value everywhere (initialization, reduction,
// broadcast). The Poisson solver's diffmax (Figure 14) is the canonical
// example.
type Global[T any] struct {
	p spmd.Comm
	v T
}

// NewGlobal creates a replicated global with an initial value; the caller
// must pass the same init on every process (it is a program constant or
// comes from prior consistent state).
func NewGlobal[T any](p spmd.Comm, init T) *Global[T] {
	return &Global[T]{p: p, v: init}
}

// Get returns the current (consistent) value.
func (g *Global[T]) Get() T { return g.v }

// SetReduced establishes a new value by reducing each process's local
// contribution with op (recursive doubling, Figure 9). The postcondition
// is the paper's: all processes have access to the result.
func (g *Global[T]) SetReduced(local T, op func(a, b T) T) T {
	g.v = collective.AllReduce(g.p, local, op)
	return g.v
}

// SetBcast establishes a new value computed (or read from a file) at root
// by broadcasting it — the §3.3 "broadcast of global data" pattern.
func (g *Global[T]) SetBcast(root int, v T) T {
	g.v = collective.Broadcast(g.p, root, v)
	return g.v
}
