package meshspectral

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/array"
	"repro/internal/collective"
	"repro/internal/spmd"
)

// GatherGrid collects the distributed grid into a full dense array at
// root (nil elsewhere) — the §3.1 file-output pattern "operate on all
// data sequentially in a single process", with the implied all-to-one
// data redistribution (§3.3).
func GatherGrid[T any](g *Grid2D[T], root int) *array.Dense2D[T] {
	p := g.p
	mine := g.extract(g.ix0, g.ix1, g.iy0, g.iy1)
	p.MemWords(float64(len(mine.Data)) * g.elemWords())
	blocks := collective.Gather(p, root, mine)
	if p.Rank() != root {
		return nil
	}
	full := array.New2D[T](g.NX, g.NY)
	for _, b := range blocks {
		w := b.Y1 - b.Y0
		k := 0
		for gi := b.X0; gi < b.X1; gi++ {
			copy(full.Row(gi)[b.Y0:b.Y1], b.Data[k:k+w])
			k += w
		}
	}
	return full
}

// ScatterGrid distributes a full dense array held at root into a new
// distributed grid — the file-input pattern. Only root's full argument is
// consulted; its dimensions are broadcast.
func ScatterGrid[T any](p spmd.Comm, full *array.Dense2D[T], root int, l Layout, halo int) *Grid2D[T] {
	type dims struct{ NX, NY int }
	var d dims
	if p.Rank() == root {
		d = dims{full.NX, full.NY}
	}
	d = collective.Broadcast(p, root, d)
	g := New2D[T](p, d.NX, d.NY, l, halo)
	var parts []subBlock[T]
	if p.Rank() == root {
		parts = make([]subBlock[T], p.N())
		for r := 0; r < p.N(); r++ {
			rx, ry := l.Coords(r)
			x0, x1 := blockRange(d.NX, l.PX, rx)
			y0, y1 := blockRange(d.NY, l.PY, ry)
			data := make([]T, 0, (x1-x0)*(y1-y0))
			for gi := x0; gi < x1; gi++ {
				data = append(data, full.Row(gi)[y0:y1]...)
			}
			parts[r] = subBlock[T]{X0: x0, X1: x1, Y0: y0, Y1: y1, Data: data}
		}
	}
	mine := collective.Scatter(p, root, parts)
	g.insert(mine)
	p.MemWords(float64(len(mine.Data)) * g.elemWords())
	return g
}

// WriteBinary writes a float64 grid to w at root as a little-endian
// stream (two int64 dims then row-major values). Every process must call
// it; only root performs I/O.
func WriteBinary(g *Grid2D[float64], root int, w io.Writer) error {
	full := GatherGrid(g, root)
	if g.p.Rank() != root {
		return nil
	}
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, int64(full.NX)); err != nil {
		return fmt.Errorf("meshspectral: write header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(full.NY)); err != nil {
		return fmt.Errorf("meshspectral: write header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, full.Data); err != nil {
		return fmt.Errorf("meshspectral: write data: %w", err)
	}
	return bw.Flush()
}

// ReadBinary reads a grid written by WriteBinary from r at root and
// scatters it. Every process must call it; only root reads.
func ReadBinary(p spmd.Comm, root int, r io.Reader, l Layout, halo int) (*Grid2D[float64], error) {
	var full *array.Dense2D[float64]
	ok := true
	var readErr error
	if p.Rank() == root {
		br := bufio.NewReader(r)
		var nx, ny int64
		if err := binary.Read(br, binary.LittleEndian, &nx); err != nil {
			readErr, ok = fmt.Errorf("meshspectral: read header: %w", err), false
		}
		if ok {
			if err := binary.Read(br, binary.LittleEndian, &ny); err != nil {
				readErr, ok = fmt.Errorf("meshspectral: read header: %w", err), false
			}
		}
		if ok && (nx < 0 || ny < 0 || nx*ny > 1<<30) {
			readErr, ok = fmt.Errorf("meshspectral: implausible grid dims %dx%d", nx, ny), false
		}
		if ok {
			full = array.New2D[float64](int(nx), int(ny))
			if err := binary.Read(br, binary.LittleEndian, full.Data); err != nil {
				readErr, ok = fmt.Errorf("meshspectral: read data: %w", err), false
			}
		}
	}
	ok = collective.Broadcast(p, root, ok)
	if !ok {
		if readErr == nil {
			readErr = fmt.Errorf("meshspectral: read failed at root")
		}
		return nil, readErr
	}
	return ScatterGrid(p, full, root, l, halo), nil
}

// WritePGM renders a float64 dense array to w as a binary 8-bit PGM
// image, mapping [lo, hi] to [0, 255] (values outside clamp). When
// lo >= hi the data range is used. This regenerates the paper's
// sample-output figures (19–21).
func WritePGM(a *array.Dense2D[float64], w io.Writer, lo, hi float64) error {
	if lo >= hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range a.Data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if lo >= hi {
			hi = lo + 1
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", a.NY, a.NX); err != nil {
		return fmt.Errorf("meshspectral: pgm header: %w", err)
	}
	scale := 255 / (hi - lo)
	row := make([]byte, a.NY)
	for i := 0; i < a.NX; i++ {
		src := a.Row(i)
		for j, v := range src {
			x := (v - lo) * scale
			if x < 0 {
				x = 0
			}
			if x > 255 {
				x = 255
			}
			row[j] = byte(x)
		}
		if _, err := bw.Write(row); err != nil {
			return fmt.Errorf("meshspectral: pgm data: %w", err)
		}
	}
	return bw.Flush()
}
