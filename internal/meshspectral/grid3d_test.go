package meshspectral

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/spmd"
)

func TestGrid3DFillGather(t *testing.T) {
	const nx, ny, nz = 10, 4, 3
	val := func(i, j, k int) float64 { return float64(i*100 + j*10 + k) }
	run(t, 4, func(p *spmd.Proc) {
		g := New3D[float64](p, nx, ny, nz, 1)
		g.Fill(val)
		full := GatherGrid3(g, 0)
		if p.Rank() != 0 {
			if full != nil {
				t.Error("non-root got non-nil gather")
			}
			return
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					if full.At(i, j, k) != val(i, j, k) {
						t.Errorf("gathered (%d,%d,%d) = %g", i, j, k, full.At(i, j, k))
					}
				}
			}
		}
	})
}

func TestGrid3DExchange(t *testing.T) {
	const nx, ny, nz = 12, 3, 2
	val := func(i, j, k int) float64 { return float64(i*100 + j*10 + k) }
	for _, n := range []int{1, 2, 3, 4} {
		run(t, n, func(p *spmd.Proc) {
			g := New3D[float64](p, nx, ny, nz, 1)
			g.Fill(val)
			g.ExchangeBoundary()
			x0, x1 := g.OwnedX()
			for gi := x0 - 1; gi < x1+1; gi++ {
				if gi < 0 || gi >= nx {
					continue
				}
				for j := 0; j < ny; j++ {
					for k := 0; k < nz; k++ {
						if got := g.At(gi, j, k); got != val(gi, j, k) {
							t.Errorf("n=%d rank %d: ghost (%d,%d,%d) = %g, want %g",
								n, p.Rank(), gi, j, k, got, val(gi, j, k))
						}
					}
				}
			}
		})
	}
}

func TestGrid3DPeriodicExchange(t *testing.T) {
	const nx = 8
	val := func(i, j, k int) float64 { return float64(i) }
	run(t, 4, func(p *spmd.Proc) {
		g := New3D[float64](p, nx, 2, 2, 1)
		g.SetPeriodic(true)
		g.Fill(val)
		g.ExchangeBoundary()
		x0, x1 := g.OwnedX()
		lo := x0 - 1
		want := float64(((lo % nx) + nx) % nx)
		if g.At(lo, 0, 0) != want {
			t.Errorf("rank %d: periodic low ghost = %g, want %g", p.Rank(), g.At(lo, 0, 0), want)
		}
		hi := x1
		want = float64(hi % nx)
		if g.At(hi, 0, 0) != want {
			t.Errorf("rank %d: periodic high ghost = %g, want %g", p.Rank(), g.At(hi, 0, 0), want)
		}
	})
}

func TestGrid3DAssignStencil(t *testing.T) {
	const nx, ny, nz = 9, 5, 4
	run(t, 3, func(p *spmd.Proc) {
		u := New3D[float64](p, nx, ny, nz, 1)
		u.Fill(func(i, j, k int) float64 { return 1 })
		v := New3D[float64](p, nx, ny, nz, 1)
		u.ExchangeBoundary()
		x0, x1 := v.InteriorX()
		v.AssignRegion(x0, x1, 1, ny-1, 1, nz-1, 6, func(i, j, k int) float64 {
			return u.At(i-1, j, k) + u.At(i+1, j, k) +
				u.At(i, j-1, k) + u.At(i, j+1, k) +
				u.At(i, j, k-1) + u.At(i, j, k+1)
		})
		gx0, gx1 := v.OwnedX()
		for gi := gx0; gi < gx1; gi++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					want := 6.0
					if gi == 0 || gi == nx-1 || j == 0 || j == ny-1 || k == 0 || k == nz-1 {
						want = 0
					}
					if v.At(gi, j, k) != want {
						t.Errorf("rank %d: (%d,%d,%d) = %g, want %g", p.Rank(), gi, j, k, v.At(gi, j, k), want)
					}
				}
			}
		}
	})
}

func TestGrid3DOutOfRangePanics(t *testing.T) {
	if _, err := run3err(2, func(p *spmd.Proc) {
		g := New3D[float64](p, 8, 2, 2, 1)
		g.At(0, 5, 0)
	}); err == nil {
		t.Error("out-of-range j should panic")
	}
}

func run3err(n int, body func(p *spmd.Proc)) (*spmd.Result, error) {
	return spmd.MustWorld(n, testModel3()).Run(body)
}

func testModel3() *machine.Model { return machine.IBMSP() }
