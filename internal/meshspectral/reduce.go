package meshspectral

import "repro/internal/collective"

// Reduce2D performs a grid reduction operation (§3.1: "combine all values
// in a grid into a single value"): fold runs over this process's owned
// points in row-major order, then the partial results are combined with
// the recursive-doubling all-reduce, whose §3.2 postcondition — every
// process has access to the result — makes the returned value
// copy-consistent. combine must be associative (or acceptably treated as
// such, per the paper's floating-point caveat); the reduction tree order
// is fixed by rank, so all processes return the identical value.
// flopsPerPoint is charged for each owned point.
func Reduce2D[T, A any](g *Grid2D[T], init A, fold func(acc A, gi, gj int, v T) A, combine func(a, b A) A, flopsPerPoint float64) A {
	acc := init
	for gi := g.ix0; gi < g.ix1; gi++ {
		row := g.loc.Row(gi - g.ix0 + g.H)
		for gj := g.iy0; gj < g.iy1; gj++ {
			acc = fold(acc, gi, gj, row[gj-g.iy0+g.H])
		}
	}
	if pts := (g.ix1 - g.ix0) * (g.iy1 - g.iy0); pts > 0 {
		g.p.Flops(flopsPerPoint * float64(pts))
	}
	return collective.AllReduce(g.p, acc, combine)
}

// Reduce3D is the 3D form of Reduce2D over a slab-decomposed grid.
func Reduce3D[T, A any](g *Grid3D[T], init A, fold func(acc A, gi, gj, gk int, v T) A, combine func(a, b A) A, flopsPerPoint float64) A {
	acc := init
	for gi := g.ix0; gi < g.ix1; gi++ {
		li := gi - g.ix0 + g.H
		for j := 0; j < g.NY; j++ {
			for k := 0; k < g.NZ; k++ {
				acc = fold(acc, gi, j, k, g.loc.At(li, j, k))
			}
		}
	}
	if pts := (g.ix1 - g.ix0) * g.NY * g.NZ; pts > 0 {
		g.p.Flops(flopsPerPoint * float64(pts))
	}
	return collective.AllReduce(g.p, acc, combine)
}
