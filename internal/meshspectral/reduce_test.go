package meshspectral

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/spmd"
)

func TestReduce2DSum(t *testing.T) {
	const nx, ny = 9, 7
	want := 0.0
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			want += float64(i*ny + j)
		}
	}
	for _, l := range testLayouts6() {
		results := make([]float64, 6)
		run(t, 6, func(p *spmd.Proc) {
			g := New2D[float64](p, nx, ny, l, 0)
			g.Fill(func(i, j int) float64 { return float64(i*ny + j) })
			results[p.Rank()] = Reduce2D(g, 0.0,
				func(acc float64, gi, gj int, v float64) float64 { return acc + v },
				func(a, b float64) float64 { return a + b }, 1)
		})
		for r, v := range results {
			if v != want {
				t.Fatalf("layout %v rank %d: sum %g, want %g", l, r, v, want)
			}
			if v != results[0] {
				t.Fatalf("layout %v: ranks disagree", l)
			}
		}
	}
}

func TestReduce2DArgMax(t *testing.T) {
	// A non-scalar accumulator: find the point with the largest value.
	type argmax struct {
		I, J int
		V    float64
	}
	run(t, 4, func(p *spmd.Proc) {
		g := New2D[float64](p, 8, 8, Blocks(2, 2), 0)
		g.Fill(func(i, j int) float64 { return math.Sin(float64(i)*7 + float64(j)*3) })
		got := Reduce2D(g, argmax{V: math.Inf(-1)},
			func(acc argmax, gi, gj int, v float64) argmax {
				if v > acc.V {
					return argmax{gi, gj, v}
				}
				return acc
			},
			func(a, b argmax) argmax {
				if b.V > a.V {
					return b
				}
				return a
			}, 2)
		// Verify against a direct scan.
		want := argmax{V: math.Inf(-1)}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if v := math.Sin(float64(i)*7 + float64(j)*3); v > want.V {
					want = argmax{i, j, v}
				}
			}
		}
		if got != want {
			t.Errorf("rank %d: argmax %+v, want %+v", p.Rank(), got, want)
		}
	})
}

func TestReduce3DMax(t *testing.T) {
	run(t, 3, func(p *spmd.Proc) {
		g := New3D[float64](p, 6, 4, 5, 0)
		g.Fill(func(i, j, k int) float64 { return float64(i*100 + j*10 + k) })
		got := Reduce3D(g, math.Inf(-1),
			func(acc float64, gi, gj, gk int, v float64) float64 { return math.Max(acc, v) },
			math.Max, 1)
		if got != 534 {
			t.Errorf("max = %g, want 534", got)
		}
	})
}

func TestReduce2DEmptySections(t *testing.T) {
	run(t, 6, func(p *spmd.Proc) {
		g := New2D[float64](p, 2, 2, Rows(6), 0)
		g.Fill(func(i, j int) float64 { return 1 })
		sum := Reduce2D(g, 0.0,
			func(acc float64, gi, gj int, v float64) float64 { return acc + v },
			func(a, b float64) float64 { return a + b }, 1)
		if sum != 4 {
			t.Errorf("sum over mostly-empty sections = %g, want 4", sum)
		}
	})
}

// TestRedistributeChainProperty drives random layout chains over random
// grid shapes — the regression net for the empty-intersection deadlock
// class.
func TestRedistributeChainProperty(t *testing.T) {
	f := func(nxRaw, nyRaw, seed uint8) bool {
		nx := int(nxRaw)%12 + 1
		ny := int(nyRaw)%12 + 1
		const procs = 6
		layouts := []Layout{Rows(procs), Cols(procs), Blocks(2, 3), Blocks(3, 2)}
		ok := true
		_, err := spmd.MustWorld(procs, machine.IBMSP()).Run(func(p *spmd.Proc) {
			g := New2D[float64](p, nx, ny, layouts[int(seed)%len(layouts)], 0)
			g.Fill(func(i, j int) float64 { return float64(i*1000 + j) })
			cur := g
			for s := 1; s <= 3; s++ {
				cur = cur.Redistribute(layouts[(int(seed)+s)%len(layouts)])
			}
			x0, x1 := cur.OwnedX()
			y0, y1 := cur.OwnedY()
			for gi := x0; gi < x1; gi++ {
				for gj := y0; gj < y1; gj++ {
					if cur.At(gi, gj) != float64(gi*1000+gj) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
