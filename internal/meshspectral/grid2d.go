package meshspectral

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/spmd"
)

// Grid2D is one process's view of a distributed NX×NY grid: the owned
// block determined by the layout, surrounded by a ghost boundary of width
// H holding shadow copies of neighbouring processes' boundary values
// (Figure 8). All indices in the API are global.
type Grid2D[T any] struct {
	p      spmd.Comm
	NX, NY int
	L      Layout
	H      int
	perX   bool
	perY   bool

	px, py             int // block coordinates
	ix0, ix1, iy0, iy1 int // owned global ranges [ix0,ix1) × [iy0,iy1)
	loc                *array.Dense2D[T]
}

// New2D creates this process's section of an NX×NY grid distributed
// according to l with ghost width halo.
func New2D[T any](p spmd.Comm, nx, ny int, l Layout, halo int) *Grid2D[T] {
	if err := l.Validate(p.N()); err != nil {
		panic(err.Error())
	}
	if halo < 0 {
		panic("meshspectral: negative halo")
	}
	g := &Grid2D[T]{p: p, NX: nx, NY: ny, L: l, H: halo}
	g.px, g.py = l.Coords(p.Rank())
	g.ix0, g.ix1 = blockRange(nx, l.PX, g.px)
	g.iy0, g.iy1 = blockRange(ny, l.PY, g.py)
	g.loc = array.New2D[T](g.ix1-g.ix0+2*halo, g.iy1-g.iy0+2*halo)
	return g
}

// SetPeriodic configures periodic wrap-around in each dimension for
// boundary exchange.
func (g *Grid2D[T]) SetPeriodic(x, y bool) { g.perX, g.perY = x, y }

// Proc returns the owning process.
func (g *Grid2D[T]) Proc() spmd.Comm { return g.p }

// OwnedX returns the owned global i-range [lo, hi).
func (g *Grid2D[T]) OwnedX() (int, int) { return g.ix0, g.ix1 }

// OwnedY returns the owned global j-range [lo, hi).
func (g *Grid2D[T]) OwnedY() (int, int) { return g.iy0, g.iy1 }

// InteriorX returns the intersection of the owned i-range with the global
// interior [1, NX-1) — the paper's xintersect (Figure 14).
func (g *Grid2D[T]) InteriorX() (int, int) {
	lo, hi := g.ix0, g.ix1
	if lo < 1 {
		lo = 1
	}
	if hi > g.NX-1 {
		hi = g.NX - 1
	}
	return lo, hi
}

// InteriorY returns the intersection of the owned j-range with the global
// interior [1, NY-1) — the paper's yintersect (Figure 14).
func (g *Grid2D[T]) InteriorY() (int, int) {
	lo, hi := g.iy0, g.iy1
	if lo < 1 {
		lo = 1
	}
	if hi > g.NY-1 {
		hi = g.NY - 1
	}
	return lo, hi
}

// Owns reports whether global point (gi, gj) is owned by this process.
func (g *Grid2D[T]) Owns(gi, gj int) bool {
	return gi >= g.ix0 && gi < g.ix1 && gj >= g.iy0 && gj < g.iy1
}

func (g *Grid2D[T]) check(gi, gj int) (int, int) {
	li, lj := gi-g.ix0+g.H, gj-g.iy0+g.H
	if li < 0 || li >= g.loc.NX || lj < 0 || lj >= g.loc.NY {
		panic(fmt.Sprintf("meshspectral: access (%d,%d) outside local section [%d,%d)x[%d,%d) with halo %d",
			gi, gj, g.ix0, g.ix1, g.iy0, g.iy1, g.H))
	}
	return li, lj
}

// At returns the value at global point (gi, gj), which must lie within the
// owned block or its ghost boundary.
func (g *Grid2D[T]) At(gi, gj int) T {
	li, lj := g.check(gi, gj)
	return g.loc.At(li, lj)
}

// Set assigns the value at global point (gi, gj); ghost cells may be
// written (useful for physical boundary conditions).
func (g *Grid2D[T]) Set(gi, gj int, v T) {
	li, lj := g.check(gi, gj)
	g.loc.Set(li, lj, v)
}

// Fill sets every owned point to f(gi, gj) without communication or
// compute charges (initialization).
func (g *Grid2D[T]) Fill(f func(gi, gj int) T) {
	for gi := g.ix0; gi < g.ix1; gi++ {
		row := g.loc.Row(gi - g.ix0 + g.H)
		for gj := g.iy0; gj < g.iy1; gj++ {
			row[gj-g.iy0+g.H] = f(gi, gj)
		}
	}
}

// Assign performs a grid operation (§3.1) over the whole owned block:
// every owned point is set to f(gi, gj). Per the archetype's
// data-dependency rule, f must not read this grid at any point other
// than (gi, gj) itself — neighbour reads must go to other grids
// (typically the previous time level, whose ghosts were refreshed by
// ExchangeBoundary). flopsPerPoint is charged for each owned point.
func (g *Grid2D[T]) Assign(flopsPerPoint float64, f func(gi, gj int) T) {
	g.AssignRegion(g.ix0, g.ix1, g.iy0, g.iy1, flopsPerPoint, f)
}

// AssignRegion is Assign restricted to the intersection of the owned
// block with the global rectangle [x0,x1)×[y0,y1).
func (g *Grid2D[T]) AssignRegion(x0, x1, y0, y1 int, flopsPerPoint float64, f func(gi, gj int) T) {
	if x0 < g.ix0 {
		x0 = g.ix0
	}
	if x1 > g.ix1 {
		x1 = g.ix1
	}
	if y0 < g.iy0 {
		y0 = g.iy0
	}
	if y1 > g.iy1 {
		y1 = g.iy1
	}
	for gi := x0; gi < x1; gi++ {
		row := g.loc.Row(gi - g.ix0 + g.H)
		for gj := y0; gj < y1; gj++ {
			row[gj-g.iy0+g.H] = f(gi, gj)
		}
	}
	if x1 > x0 && y1 > y0 {
		g.p.Flops(flopsPerPoint * float64((x1-x0)*(y1-y0)))
	}
}

// CopyFrom copies the owned block of src (which must share layout and
// dimensions) into this grid, charging data-movement cost — the
// "copy new values to old values" step of the Poisson solver (Figure 14).
func (g *Grid2D[T]) CopyFrom(src *Grid2D[T]) {
	if src.NX != g.NX || src.NY != g.NY || src.L != g.L {
		panic("meshspectral: CopyFrom requires identical shape and layout")
	}
	for gi := g.ix0; gi < g.ix1; gi++ {
		dst := g.loc.Row(gi - g.ix0 + g.H)
		from := src.loc.Row(gi - src.ix0 + src.H)
		copy(dst[g.H:g.H+g.iy1-g.iy0], from[src.H:src.H+src.iy1-src.iy0])
	}
	g.p.MemWords(float64((g.ix1-g.ix0)*(g.iy1-g.iy0)) * g.elemWords())
}

// RowOp applies f to every owned row (§3.1 row operations). The grid must
// be distributed by rows; rows are passed as contiguous slices of length
// NY aliasing local storage, and f may modify them in place. f receives
// the global row index. Work should be charged by the caller through the
// grid's Proc.
func (g *Grid2D[T]) RowOp(f func(gi int, row []T)) {
	if g.L.PY != 1 {
		panic(fmt.Sprintf("meshspectral: row operation requires distribution by rows, grid is %v", g.L))
	}
	for gi := g.ix0; gi < g.ix1; gi++ {
		row := g.loc.Row(gi - g.ix0 + g.H)
		f(gi, row[g.H:g.H+g.NY])
	}
}

// ColOp applies f to every owned column (§3.1 column operations). The
// grid must be distributed by columns. Columns are copied into a
// contiguous buffer for f and copied back afterwards, with the movement
// charged; f receives the global column index.
func (g *Grid2D[T]) ColOp(f func(gj int, col []T)) {
	if g.L.PX != 1 {
		panic(fmt.Sprintf("meshspectral: column operation requires distribution by columns, grid is %v", g.L))
	}
	buf := make([]T, g.NX)
	for gj := g.iy0; gj < g.iy1; gj++ {
		lj := gj - g.iy0 + g.H
		for i := 0; i < g.NX; i++ {
			buf[i] = g.loc.At(i+g.H, lj)
		}
		f(gj, buf)
		for i := 0; i < g.NX; i++ {
			g.loc.Set(i+g.H, lj, buf[i])
		}
	}
	g.p.MemWords(2 * float64(g.NX*(g.iy1-g.iy0)) * g.elemWords())
}

// elemWords estimates 8-byte words per element for cost accounting.
func (g *Grid2D[T]) elemWords() float64 {
	var probe [1]T
	return float64(spmd.BytesOf(probe[:])) / 8
}

// LocalDense returns a copy of the owned block as a dense array (no
// ghosts) — handy for assembling results and for tests.
func (g *Grid2D[T]) LocalDense() *array.Dense2D[T] {
	out := array.New2D[T](g.ix1-g.ix0, g.iy1-g.iy0)
	for gi := g.ix0; gi < g.ix1; gi++ {
		src := g.loc.Row(gi - g.ix0 + g.H)
		copy(out.Row(gi-g.ix0), src[g.H:g.H+g.iy1-g.iy0])
	}
	return out
}

// neighbour returns the rank one step along the given axis (dx, dy ∈
// {-1,0,1}) honouring periodicity, or -1 when there is no neighbour.
func (g *Grid2D[T]) neighbour(dx, dy int) int {
	nx, ny := g.px+dx, g.py+dy
	if nx < 0 || nx >= g.L.PX {
		if !g.perX {
			return -1
		}
		nx = (nx + g.L.PX) % g.L.PX
	}
	if ny < 0 || ny >= g.L.PY {
		if !g.perY {
			return -1
		}
		ny = (ny + g.L.PY) % g.L.PY
	}
	return g.L.Rank(nx, ny)
}

// ExchangeBoundary refreshes the ghost boundary with neighbours' boundary
// values (Figure 8). Two phases — first along i, then along j including
// the freshly received i-ghost rows — so diagonal (corner) ghost cells are
// also correct, supporting 9-point stencils.
func (g *Grid2D[T]) ExchangeBoundary() {
	if g.H == 0 {
		return
	}
	g.exchangeX()
	g.exchangeY()
}

// packRows copies local rows [r0,r1) over local columns [c0,c1) into a
// fresh slice.
func (g *Grid2D[T]) packRows(r0, r1, c0, c1 int) []T {
	out := make([]T, 0, (r1-r0)*(c1-c0))
	for r := r0; r < r1; r++ {
		out = append(out, g.loc.Row(r)[c0:c1]...)
	}
	return out
}

// unpackRows writes buf into local rows [r0,r1) over columns [c0,c1).
func (g *Grid2D[T]) unpackRows(buf []T, r0, r1, c0, c1 int) {
	k := 0
	w := c1 - c0
	for r := r0; r < r1; r++ {
		copy(g.loc.Row(r)[c0:c1], buf[k:k+w])
		k += w
	}
}

func (g *Grid2D[T]) exchangeX() {
	up := g.neighbour(-1, 0)
	down := g.neighbour(1, 0)
	H := g.H
	lnx := g.ix1 - g.ix0
	c0, c1 := H, H+g.iy1-g.iy0
	if up >= 0 {
		buf := g.packRows(H, 2*H, c0, c1)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
		spmd.SendT(g.p, up, tagHaloXLo, buf)
	}
	if down >= 0 {
		buf := g.packRows(lnx, lnx+H, c0, c1)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
		spmd.SendT(g.p, down, tagHaloXHi, buf)
	}
	if down >= 0 {
		buf := spmd.Recv[[]T](g.p, down, tagHaloXLo)
		g.unpackRows(buf, lnx+H, lnx+2*H, c0, c1)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
	}
	if up >= 0 {
		buf := spmd.Recv[[]T](g.p, up, tagHaloXHi)
		g.unpackRows(buf, 0, H, c0, c1)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
	}
}

func (g *Grid2D[T]) exchangeY() {
	left := g.neighbour(0, -1)
	right := g.neighbour(0, 1)
	H := g.H
	lny := g.iy1 - g.iy0
	// Full local height including i-ghost rows so corners are carried.
	r0, r1 := 0, g.loc.NX
	packCols := func(cl0, cl1 int) []T {
		out := make([]T, 0, (r1-r0)*(cl1-cl0))
		for r := r0; r < r1; r++ {
			out = append(out, g.loc.Row(r)[cl0:cl1]...)
		}
		return out
	}
	unpackCols := func(buf []T, cl0, cl1 int) {
		k := 0
		w := cl1 - cl0
		for r := r0; r < r1; r++ {
			copy(g.loc.Row(r)[cl0:cl1], buf[k:k+w])
			k += w
		}
	}
	if left >= 0 {
		buf := packCols(H, 2*H)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
		spmd.SendT(g.p, left, tagHaloYLo, buf)
	}
	if right >= 0 {
		buf := packCols(lny, lny+H)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
		spmd.SendT(g.p, right, tagHaloYHi, buf)
	}
	if right >= 0 {
		buf := spmd.Recv[[]T](g.p, right, tagHaloYLo)
		unpackCols(buf, lny+H, lny+2*H)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
	}
	if left >= 0 {
		buf := spmd.Recv[[]T](g.p, left, tagHaloYHi)
		unpackCols(buf, 0, H)
		g.p.MemWords(float64(len(buf)) * g.elemWords())
	}
}
