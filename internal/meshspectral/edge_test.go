package meshspectral

import (
	"testing"

	"repro/internal/array"
	"repro/internal/spmd"
)

// Edge cases: grids smaller than the process count produce empty local
// sections on some processes; every operation must still work.

func TestEmptyLocalSections(t *testing.T) {
	const nx, ny = 2, 3 // 4 processes by rows: ranks 2,3 own nothing
	val := func(i, j int) float64 { return float64(i*10 + j) }
	run(t, 4, func(p *spmd.Proc) {
		g := New2D[float64](p, nx, ny, Rows(4), 1)
		g.Fill(val)
		x0, x1 := g.OwnedX()
		if x1-x0 > 1 {
			t.Errorf("rank %d owns %d rows of a 2-row grid over 4 procs", p.Rank(), x1-x0)
		}
		g.ExchangeBoundary() // must not deadlock or panic
		g.Assign(1, func(gi, gj int) float64 { return val(gi, gj) + 1 })
		full := GatherGrid(g, 0)
		if p.Rank() == 0 {
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					if full.At(i, j) != val(i, j)+1 {
						t.Errorf("(%d,%d) = %g", i, j, full.At(i, j))
					}
				}
			}
		}
	})
}

func TestRedistributeWithEmptySections(t *testing.T) {
	// 3x8 grid: by rows over 6 procs half the procs are empty; by cols
	// everyone owns something. Round trip through both.
	const nx, ny = 3, 8
	val := func(i, j int) float64 { return float64(i*100 + j) }
	run(t, 6, func(p *spmd.Proc) {
		g := New2D[float64](p, nx, ny, Rows(6), 0)
		g.Fill(val)
		c := g.Redistribute(Cols(6))
		back := c.Redistribute(Rows(6))
		x0, x1 := back.OwnedX()
		for gi := x0; gi < x1; gi++ {
			for gj := 0; gj < ny; gj++ {
				if back.At(gi, gj) != val(gi, gj) {
					t.Errorf("roundtrip (%d,%d) = %g", gi, gj, back.At(gi, gj))
				}
			}
		}
	})
}

func TestRowOpOnEmptySection(t *testing.T) {
	run(t, 4, func(p *spmd.Proc) {
		g := New2D[float64](p, 2, 4, Rows(4), 0)
		calls := 0
		g.RowOp(func(gi int, row []float64) { calls++ })
		x0, x1 := g.OwnedX()
		if calls != x1-x0 {
			t.Errorf("rank %d: RowOp ran %d times for %d rows", p.Rank(), calls, x1-x0)
		}
	})
}

func TestOneByOneGrid(t *testing.T) {
	run(t, 1, func(p *spmd.Proc) {
		g := New2D[float64](p, 1, 1, Rows(1), 1)
		g.Set(0, 0, 42)
		g.ExchangeBoundary()
		if g.At(0, 0) != 42 {
			t.Error("1x1 grid lost its value")
		}
		full := GatherGrid(g, 0)
		if full.At(0, 0) != 42 {
			t.Error("1x1 gather wrong")
		}
	})
}

func TestScatterEmptySections(t *testing.T) {
	full := array.New2D[float64](2, 5)
	full.Fill(func(i, j int) float64 { return float64(i + j) })
	var back *array.Dense2D[float64]
	run(t, 4, func(p *spmd.Proc) {
		var src *array.Dense2D[float64]
		if p.Rank() == 0 {
			src = full
		}
		g := ScatterGrid(p, src, 0, Rows(4), 0)
		out := GatherGrid(g, 0)
		if p.Rank() == 0 {
			back = out
		}
	})
	for k := range full.Data {
		if back.Data[k] != full.Data[k] {
			t.Fatalf("scatter/gather with empty sections mismatch at %d", k)
		}
	}
}

func TestGrid3DEmptySlabs(t *testing.T) {
	const nx = 2
	run(t, 4, func(p *spmd.Proc) {
		g := New3D[float64](p, nx, 3, 3, 1)
		g.Fill(func(i, j, k int) float64 { return float64(i) })
		g.ExchangeBoundary()
		full := GatherGrid3(g, 0)
		if p.Rank() == 0 {
			if full.At(0, 0, 0) != 0 || full.At(1, 0, 0) != 1 {
				t.Error("3D gather with empty slabs wrong")
			}
		}
	})
}

func TestInteriorOnEmptySection(t *testing.T) {
	run(t, 4, func(p *spmd.Proc) {
		g := New2D[float64](p, 2, 2, Rows(4), 1)
		lo, hi := g.InteriorX()
		if lo > hi {
			// Empty is fine, inverted is fine to iterate (no-op), but
			// AssignRegion must tolerate it:
			g.AssignRegion(lo, hi, 0, 2, 1, func(gi, gj int) float64 { return 0 })
		}
	})
}
