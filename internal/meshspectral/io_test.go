package meshspectral

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func TestScatterGatherRoundtrip(t *testing.T) {
	full := array.New2D[float64](11, 7)
	full.Fill(func(i, j int) float64 { return float64(i)*13 + float64(j) })
	for _, l := range []Layout{Rows(6), Cols(6), Blocks(2, 3)} {
		var back *array.Dense2D[float64]
		run(t, 6, func(p *spmd.Proc) {
			var src *array.Dense2D[float64]
			if p.Rank() == 0 {
				src = full
			}
			g := ScatterGrid(p, src, 0, l, 1)
			out := GatherGrid(g, 0)
			if p.Rank() == 0 {
				back = out
			}
		})
		for k := range full.Data {
			if back.Data[k] != full.Data[k] {
				t.Fatalf("layout %v: roundtrip mismatch at %d", l, k)
			}
		}
	}
}

func TestBinaryIORoundtrip(t *testing.T) {
	var buf bytes.Buffer
	want := array.New2D[float64](5, 6)
	want.Fill(func(i, j int) float64 { return float64(i*10+j) * 0.5 })
	run(t, 3, func(p *spmd.Proc) {
		var src *array.Dense2D[float64]
		if p.Rank() == 0 {
			src = want
		}
		g := ScatterGrid(p, src, 0, Rows(3), 0)
		if err := WriteBinary(g, 0, &buf); err != nil {
			t.Errorf("WriteBinary: %v", err)
		}
	})
	var back *array.Dense2D[float64]
	run(t, 3, func(p *spmd.Proc) {
		var r *bytes.Reader
		if p.Rank() == 0 {
			r = bytes.NewReader(buf.Bytes())
		}
		g, err := ReadBinary(p, 0, r, Cols(3), 0)
		if err != nil {
			t.Errorf("ReadBinary: %v", err)
			return
		}
		full := GatherGrid(g, 0)
		if p.Rank() == 0 {
			back = full
		}
	})
	if back == nil {
		t.Fatal("no grid read back")
	}
	for k := range want.Data {
		if back.Data[k] != want.Data[k] {
			t.Fatalf("binary roundtrip mismatch at %d", k)
		}
	}
}

func TestReadBinaryBadInput(t *testing.T) {
	_, err := spmd.MustWorld(2, machine.IBMSP()).Run(func(p *spmd.Proc) {
		var r io.Reader
		if p.Rank() == 0 {
			r = strings.NewReader("short")
		}
		if _, err := ReadBinary(p, 0, r, Rows(2), 0); err == nil {
			t.Error("truncated input should error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWritePGM(t *testing.T) {
	a := array.New2D[float64](2, 3)
	a.Fill(func(i, j int) float64 { return float64(i*3 + j) })
	var buf bytes.Buffer
	if err := WritePGM(a, &buf, 0, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pix := out[len("P5\n3 2\n255\n"):]
	if len(pix) != 6 {
		t.Fatalf("want 6 pixels, got %d", len(pix))
	}
	if pix[0] != 0 || pix[5] != 255 {
		t.Errorf("pixel scaling wrong: %v", pix)
	}
}

func TestWritePGMAutoRange(t *testing.T) {
	a := array.New2D[float64](1, 2)
	a.Set(0, 0, -3)
	a.Set(0, 1, 7)
	var buf bytes.Buffer
	if err := WritePGM(a, &buf, 0, 0); err != nil { // lo >= hi: auto range
		t.Fatal(err)
	}
	pix := buf.Bytes()[len("P5\n2 1\n255\n"):]
	if pix[0] != 0 || pix[1] != 255 {
		t.Errorf("auto-range scaling wrong: %v", pix)
	}
	// Constant data must not divide by zero.
	b := array.New2D[float64](1, 1)
	var buf2 bytes.Buffer
	if err := WritePGM(b, &buf2, 0, 0); err != nil {
		t.Fatal(err)
	}
}
