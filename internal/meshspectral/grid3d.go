package meshspectral

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/collective"
	"repro/internal/spmd"
)

// Grid3D is one process's slab of a distributed NX×NY×NZ grid. The grid
// is decomposed along the first (i) dimension into N contiguous slabs —
// the decomposition used by the paper's three-dimensional mesh archetype
// applications (the electromagnetics code of §3.7.2). Ghost planes of
// width H sit on both sides of the slab.
type Grid3D[T any] struct {
	p          spmd.Comm
	NX, NY, NZ int
	H          int
	perX       bool

	ix0, ix1 int
	loc      *array.Dense3D[T]
}

// New3D creates this process's slab of an NX×NY×NZ grid with ghost width
// halo.
func New3D[T any](p spmd.Comm, nx, ny, nz, halo int) *Grid3D[T] {
	if halo < 0 {
		panic("meshspectral: negative halo")
	}
	g := &Grid3D[T]{p: p, NX: nx, NY: ny, NZ: nz, H: halo}
	g.ix0, g.ix1 = blockRange(nx, p.N(), p.Rank())
	g.loc = array.New3D[T](g.ix1-g.ix0+2*halo, ny, nz)
	return g
}

// SetPeriodic configures periodic wrap-around along the decomposed
// dimension.
func (g *Grid3D[T]) SetPeriodic(x bool) { g.perX = x }

// Proc returns the owning process.
func (g *Grid3D[T]) Proc() spmd.Comm { return g.p }

// OwnedX returns the owned global i-range [lo, hi).
func (g *Grid3D[T]) OwnedX() (int, int) { return g.ix0, g.ix1 }

// InteriorX returns the intersection of the owned i-range with the global
// interior [1, NX-1).
func (g *Grid3D[T]) InteriorX() (int, int) {
	lo, hi := g.ix0, g.ix1
	if lo < 1 {
		lo = 1
	}
	if hi > g.NX-1 {
		hi = g.NX - 1
	}
	return lo, hi
}

func (g *Grid3D[T]) check(gi, gj, gk int) int {
	li := gi - g.ix0 + g.H
	if li < 0 || li >= g.loc.NX || gj < 0 || gj >= g.NY || gk < 0 || gk >= g.NZ {
		panic(fmt.Sprintf("meshspectral: access (%d,%d,%d) outside slab [%d,%d) (halo %d) of %dx%dx%d",
			gi, gj, gk, g.ix0, g.ix1, g.H, g.NX, g.NY, g.NZ))
	}
	return li
}

// At returns the value at global point (gi, gj, gk); gi may reach into
// the ghost planes.
func (g *Grid3D[T]) At(gi, gj, gk int) T {
	return g.loc.At(g.check(gi, gj, gk), gj, gk)
}

// Set assigns the value at global point (gi, gj, gk).
func (g *Grid3D[T]) Set(gi, gj, gk int, v T) {
	g.loc.Set(g.check(gi, gj, gk), gj, gk, v)
}

// Fill sets every owned point to f(gi, gj, gk) (initialization; not
// charged).
func (g *Grid3D[T]) Fill(f func(gi, gj, gk int) T) {
	for gi := g.ix0; gi < g.ix1; gi++ {
		for j := 0; j < g.NY; j++ {
			for k := 0; k < g.NZ; k++ {
				g.loc.Set(gi-g.ix0+g.H, j, k, f(gi, j, k))
			}
		}
	}
}

// AssignRegion performs a grid operation over the intersection of the
// owned slab with [x0,x1)×[y0,y1)×[z0,z1): each point is set to f. f must
// not read this grid at points other than (gi, gj, gk) itself (the
// archetype's disjointness rule; same-point in-place updates are safe).
func (g *Grid3D[T]) AssignRegion(x0, x1, y0, y1, z0, z1 int, flopsPerPoint float64, f func(gi, gj, gk int) T) {
	if x0 < g.ix0 {
		x0 = g.ix0
	}
	if x1 > g.ix1 {
		x1 = g.ix1
	}
	if y0 < 0 {
		y0 = 0
	}
	if y1 > g.NY {
		y1 = g.NY
	}
	if z0 < 0 {
		z0 = 0
	}
	if z1 > g.NZ {
		z1 = g.NZ
	}
	for gi := x0; gi < x1; gi++ {
		li := gi - g.ix0 + g.H
		for j := y0; j < y1; j++ {
			for k := z0; k < z1; k++ {
				g.loc.Set(li, j, k, f(gi, j, k))
			}
		}
	}
	if x1 > x0 && y1 > y0 && z1 > z0 {
		g.p.Flops(flopsPerPoint * float64((x1-x0)*(y1-y0)*(z1-z0)))
	}
}

// Assign performs a grid operation over the whole owned slab.
func (g *Grid3D[T]) Assign(flopsPerPoint float64, f func(gi, gj, gk int) T) {
	g.AssignRegion(g.ix0, g.ix1, 0, g.NY, 0, g.NZ, flopsPerPoint, f)
}

func (g *Grid3D[T]) elemWords() float64 {
	var probe [1]T
	return float64(spmd.BytesOf(probe[:])) / 8
}

// ExchangeBoundary refreshes the ghost planes with the neighbouring
// slabs' boundary planes.
func (g *Grid3D[T]) ExchangeBoundary() {
	if g.H == 0 {
		return
	}
	p := g.p
	n := p.N()
	rank := p.Rank()
	up, down := rank-1, rank+1
	if g.perX {
		up = (up + n) % n
		down = down % n
	} else {
		if up < 0 {
			up = -1
		}
		if down >= n {
			down = -1
		}
	}
	H := g.H
	lnx := g.ix1 - g.ix0
	plane := g.NY * g.NZ
	words := g.elemWords()
	pack := func(l0 int) []T {
		out := make([]T, 0, H*plane)
		for l := l0; l < l0+H; l++ {
			out = append(out, g.loc.Plane(l)...)
		}
		return out
	}
	unpack := func(buf []T, l0 int) {
		for h := 0; h < H; h++ {
			copy(g.loc.Plane(l0+h), buf[h*plane:(h+1)*plane])
		}
	}
	if up >= 0 {
		buf := pack(H)
		p.MemWords(float64(len(buf)) * words)
		spmd.SendT(p, up, tagHalo3Lo, buf)
	}
	if down >= 0 {
		buf := pack(lnx)
		p.MemWords(float64(len(buf)) * words)
		spmd.SendT(p, down, tagHalo3Hi, buf)
	}
	if down >= 0 {
		buf := spmd.Recv[[]T](p, down, tagHalo3Lo)
		unpack(buf, lnx+H)
		p.MemWords(float64(len(buf)) * words)
	}
	if up >= 0 {
		buf := spmd.Recv[[]T](p, up, tagHalo3Hi)
		unpack(buf, 0)
		p.MemWords(float64(len(buf)) * words)
	}
}

// slab3 is a contiguous range of i-planes in transit during gather.
type slab3[T any] struct {
	X0, X1 int
	Data   []T
}

// VBytes implements spmd.Sized.
func (s slab3[T]) VBytes() int { return 16 + spmd.BytesOf(s.Data) }

// GatherGrid3 collects the slabs into a full dense array at root (nil
// elsewhere).
func GatherGrid3[T any](g *Grid3D[T], root int) *array.Dense3D[T] {
	p := g.p
	mine := make([]T, 0, (g.ix1-g.ix0)*g.NY*g.NZ)
	for gi := g.ix0; gi < g.ix1; gi++ {
		mine = append(mine, g.loc.Plane(gi-g.ix0+g.H)...)
	}
	p.MemWords(float64(len(mine)) * g.elemWords())
	blocks := collective.Gather(p, root, slab3[T]{g.ix0, g.ix1, mine})
	if p.Rank() != root {
		return nil
	}
	full := array.New3D[T](g.NX, g.NY, g.NZ)
	plane := g.NY * g.NZ
	for _, b := range blocks {
		copy(full.Data[b.X0*plane:b.X1*plane], b.Data)
	}
	return full
}
