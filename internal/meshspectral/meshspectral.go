// Package meshspectral implements the paper's mesh-spectral archetype
// (§3): computations on N-dimensional grids structured as sequences of
// grid operations, row/column operations, reductions, and file I/O, with
// global variables kept copy-consistent across processes.
//
// The archetype's communication operations (§3.3) are provided exactly as
// the paper enumerates them:
//
//   - grid redistribution (rows↔columns↔blocks) — Grid2D.Redistribute;
//   - exchange of boundary values via ghost boundaries —
//     Grid2D.ExchangeBoundary / Grid3D.ExchangeBoundary (Figure 8);
//   - broadcast of global data — Global.SetBcast;
//   - reductions (recursive doubling, Figure 9) — Global.SetReduced and
//     package collective;
//   - file input/output — GatherGrid / ScatterGrid plus encoding helpers.
//
// Data-distribution preconditions are enforced at runtime: a row operation
// panics unless the grid is distributed by rows, matching the paper's
// "row operations require that data be distributed by rows" (§3.2); the
// redistribution operation is what satisfies the precondition, as in the
// 2D FFT example (Figures 10–11).
package meshspectral

import (
	"fmt"

	"repro/internal/collective"
)

// Layout describes how a 2D grid is distributed over PX×PY processes:
// the i (row-index) dimension is split into PX blocks and the j dimension
// into PY blocks. Process rank r holds block (r/PY, r%PY).
type Layout struct {
	PX, PY int
}

// Rows returns the distribution-by-rows layout over n processes (each
// process owns full rows — the precondition for row operations).
func Rows(n int) Layout { return Layout{PX: n, PY: 1} }

// Cols returns the distribution-by-columns layout over n processes (each
// process owns full columns — the precondition for column operations).
func Cols(n int) Layout { return Layout{PX: 1, PY: n} }

// Blocks returns a general block layout over px×py processes.
func Blocks(px, py int) Layout { return Layout{PX: px, PY: py} }

// NearSquare returns the most nearly square px×py factorization of n,
// the "generic block distribution" the Poisson example adjusts for
// performance (§3.6.3).
func NearSquare(n int) Layout {
	best := Layout{PX: 1, PY: n}
	for px := 1; px*px <= n; px++ {
		if n%px == 0 {
			best = Layout{PX: px, PY: n / px}
		}
	}
	return best
}

// Validate reports an error unless the layout covers exactly n processes.
func (l Layout) Validate(n int) error {
	if l.PX <= 0 || l.PY <= 0 || l.PX*l.PY != n {
		return fmt.Errorf("meshspectral: layout %dx%d does not match %d processes", l.PX, l.PY, n)
	}
	return nil
}

// Coords returns the (px, py) block coordinates of rank r.
func (l Layout) Coords(r int) (int, int) { return r / l.PY, r % l.PY }

// Rank returns the rank owning block (px, py).
func (l Layout) Rank(px, py int) int { return px*l.PY + py }

// blockRange splits [0, n) into parts blocks and returns block b's
// half-open range (balanced: sizes differ by at most one).
func blockRange(n, parts, b int) (int, int) {
	return b * n / parts, (b + 1) * n / parts
}

// String returns "PXxPY".
func (l Layout) String() string { return fmt.Sprintf("%dx%d", l.PX, l.PY) }

// Tag space used by this package.
const (
	tagHaloXLo = collective.TagUser + 40 + iota
	tagHaloXHi
	tagHaloYLo
	tagHaloYHi
	tagRedist
	tagGatherGrid
	tagScatterGrid
	tagHalo3Lo
	tagHalo3Hi
)
