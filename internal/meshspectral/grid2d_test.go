package meshspectral

import (
	"testing"

	"repro/internal/array"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func run(t *testing.T, n int, body func(p *spmd.Proc)) *spmd.Result {
	t.Helper()
	res, err := spmd.MustWorld(n, machine.IBMSP()).Run(body)
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	return res
}

func TestLayoutBasics(t *testing.T) {
	if Rows(4) != (Layout{4, 1}) || Cols(4) != (Layout{1, 4}) || Blocks(2, 3) != (Layout{2, 3}) {
		t.Error("layout constructors wrong")
	}
	if Rows(4).Validate(4) != nil || Blocks(2, 3).Validate(6) != nil {
		t.Error("valid layouts rejected")
	}
	if Blocks(2, 3).Validate(5) == nil || (Layout{0, 5}).Validate(5) == nil {
		t.Error("invalid layouts accepted")
	}
	l := Blocks(3, 4)
	for r := 0; r < 12; r++ {
		px, py := l.Coords(r)
		if l.Rank(px, py) != r {
			t.Fatalf("Coords/Rank roundtrip broken at %d", r)
		}
	}
	if l.String() != "3x4" {
		t.Errorf("String = %q", l.String())
	}
}

func TestNearSquare(t *testing.T) {
	cases := map[int]Layout{
		1:  {1, 1},
		4:  {2, 2},
		6:  {2, 3},
		12: {3, 4},
		16: {4, 4},
		7:  {1, 7}, // prime
		36: {6, 6},
	}
	for n, want := range cases {
		if got := NearSquare(n); got != want {
			t.Errorf("NearSquare(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestBlockRangeCoversAll(t *testing.T) {
	for _, n := range []int{1, 5, 7, 16, 100} {
		for _, parts := range []int{1, 2, 3, 7} {
			prev := 0
			for b := 0; b < parts; b++ {
				lo, hi := blockRange(n, parts, b)
				if lo != prev {
					t.Fatalf("gap at block %d of %d/%d", b, n, parts)
				}
				if hi < lo {
					t.Fatalf("negative block %d", b)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("blocks don't cover [0,%d)", n)
			}
		}
	}
}

// testLayouts enumerates layouts for a 6-process world.
func testLayouts6() []Layout {
	return []Layout{Rows(6), Cols(6), Blocks(2, 3), Blocks(3, 2)}
}

func TestFillGatherRoundtrip(t *testing.T) {
	const nx, ny = 13, 9
	want := array.New2D[float64](nx, ny)
	want.Fill(func(i, j int) float64 { return float64(i*100 + j) })
	for _, l := range testLayouts6() {
		var got *array.Dense2D[float64]
		run(t, 6, func(p *spmd.Proc) {
			g := New2D[float64](p, nx, ny, l, 1)
			g.Fill(func(gi, gj int) float64 { return float64(gi*100 + gj) })
			full := GatherGrid(g, 0)
			if p.Rank() == 0 {
				got = full
			} else if full != nil {
				t.Errorf("non-root got non-nil gather")
			}
		})
		for k := range want.Data {
			if got.Data[k] != want.Data[k] {
				t.Fatalf("layout %v: gathered grid wrong at %d", l, k)
			}
		}
	}
}

func TestExchangeBoundaryAllLayouts(t *testing.T) {
	const nx, ny = 12, 12
	val := func(i, j int) float64 { return float64(i*1000 + j) }
	for _, l := range testLayouts6() {
		for _, halo := range []int{1, 2} {
			run(t, 6, func(p *spmd.Proc) {
				g := New2D[float64](p, nx, ny, l, halo)
				g.Fill(val)
				g.ExchangeBoundary()
				// Every ghost cell whose global point exists must hold
				// the global value — including corners.
				x0, x1 := g.OwnedX()
				y0, y1 := g.OwnedY()
				for gi := x0 - halo; gi < x1+halo; gi++ {
					for gj := y0 - halo; gj < y1+halo; gj++ {
						if gi < 0 || gi >= nx || gj < 0 || gj >= ny {
							continue
						}
						if got := g.At(gi, gj); got != val(gi, gj) {
							t.Errorf("layout %v halo %d rank %d: ghost (%d,%d) = %g, want %g",
								l, halo, p.Rank(), gi, gj, got, val(gi, gj))
						}
					}
				}
			})
		}
	}
}

func TestExchangeBoundaryPeriodic(t *testing.T) {
	const nx, ny = 8, 8
	val := func(i, j int) float64 { return float64(i*1000 + j) }
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	for _, l := range []Layout{Rows(4), Cols(4), Blocks(2, 2)} {
		run(t, 4, func(p *spmd.Proc) {
			g := New2D[float64](p, nx, ny, l, 1)
			g.SetPeriodic(true, true)
			g.Fill(val)
			g.ExchangeBoundary()
			x0, x1 := g.OwnedX()
			y0, y1 := g.OwnedY()
			for gi := x0 - 1; gi < x1+1; gi++ {
				for gj := y0 - 1; gj < y1+1; gj++ {
					want := val(wrap(gi, nx), wrap(gj, ny))
					if got := g.At(gi, gj); got != want {
						t.Errorf("layout %v rank %d: periodic ghost (%d,%d) = %g, want %g",
							l, p.Rank(), gi, gj, got, want)
					}
				}
			}
		})
	}
}

func TestExchangeBoundarySingleProcPeriodic(t *testing.T) {
	run(t, 1, func(p *spmd.Proc) {
		g := New2D[float64](p, 5, 5, Rows(1), 1)
		g.SetPeriodic(true, true)
		g.Fill(func(i, j int) float64 { return float64(i*10 + j) })
		g.ExchangeBoundary()
		if g.At(-1, 0) != 40 { // wraps to row 4
			t.Errorf("self-periodic top ghost = %g, want 40", g.At(-1, 0))
		}
		if g.At(5, 2) != 2 { // wraps to row 0
			t.Errorf("self-periodic bottom ghost = %g, want 2", g.At(5, 2))
		}
		if g.At(0, -1) != 4 {
			t.Errorf("self-periodic left ghost = %g, want 4", g.At(0, -1))
		}
	})
}

func TestRedistributeRoundtrip(t *testing.T) {
	const nx, ny = 10, 14
	val := func(i, j int) float64 { return float64(i)*3.5 + float64(j)*0.25 }
	run(t, 6, func(p *spmd.Proc) {
		g := New2D[float64](p, nx, ny, Rows(6), 1)
		g.Fill(val)
		chain := []Layout{Cols(6), Blocks(2, 3), Blocks(3, 2), Rows(6)}
		cur := g
		for _, l := range chain {
			cur = cur.Redistribute(l)
			x0, x1 := cur.OwnedX()
			y0, y1 := cur.OwnedY()
			for gi := x0; gi < x1; gi++ {
				for gj := y0; gj < y1; gj++ {
					if cur.At(gi, gj) != val(gi, gj) {
						t.Errorf("after redistribute to %v: (%d,%d) = %g, want %g",
							l, gi, gj, cur.At(gi, gj), val(gi, gj))
						return
					}
				}
			}
		}
	})
}

func TestRedistributeSameLayoutIsCopy(t *testing.T) {
	res := run(t, 4, func(p *spmd.Proc) {
		g := New2D[float64](p, 8, 8, Rows(4), 0)
		g.Fill(func(i, j int) float64 { return float64(i + j) })
		h := g.Redistribute(Rows(4))
		x0, x1 := h.OwnedX()
		for gi := x0; gi < x1; gi++ {
			for gj := 0; gj < 8; gj++ {
				if h.At(gi, gj) != g.At(gi, gj) {
					t.Error("same-layout redistribute lost data")
					return
				}
			}
		}
	})
	if res.Msgs != 0 {
		t.Errorf("same-layout redistribute sent %d messages, want 0", res.Msgs)
	}
}

func TestRowOpAndColOp(t *testing.T) {
	const nx, ny = 8, 8
	reverse := func(row []float64) {
		for i, j := 0, len(row)-1; i < j; i, j = i+1, j-1 {
			row[i], row[j] = row[j], row[i]
		}
	}
	// Sequential reference: reverse rows then reverse columns.
	ref := array.New2D[float64](nx, ny)
	ref.Fill(func(i, j int) float64 { return float64(i*100 + j) })
	for i := 0; i < nx; i++ {
		reverse(ref.Row(i))
	}
	for j := 0; j < ny; j++ {
		col := ref.Col(j, nil)
		reverse(col)
		ref.SetCol(j, col)
	}

	var got *array.Dense2D[float64]
	run(t, 4, func(p *spmd.Proc) {
		g := New2D[float64](p, nx, ny, Rows(4), 0)
		g.Fill(func(i, j int) float64 { return float64(i*100 + j) })
		g.RowOp(func(gi int, row []float64) { reverse(row) })
		gc := g.Redistribute(Cols(4))
		gc.ColOp(func(gj int, col []float64) { reverse(col) })
		full := GatherGrid(gc, 0)
		if p.Rank() == 0 {
			got = full
		}
	})
	for k := range ref.Data {
		if got.Data[k] != ref.Data[k] {
			t.Fatalf("row+col op mismatch at %d: %g vs %g", k, got.Data[k], ref.Data[k])
		}
	}
}

func TestRowOpRequiresRowDistribution(t *testing.T) {
	_, err := spmd.MustWorld(4, machine.IBMSP()).Run(func(p *spmd.Proc) {
		g := New2D[float64](p, 8, 8, Cols(4), 0)
		g.RowOp(func(int, []float64) {})
	})
	if err == nil {
		t.Error("RowOp on column distribution should panic")
	}
	_, err = spmd.MustWorld(4, machine.IBMSP()).Run(func(p *spmd.Proc) {
		g := New2D[float64](p, 8, 8, Rows(4), 0)
		g.ColOp(func(int, []float64) {})
	})
	if err == nil {
		t.Error("ColOp on row distribution should panic")
	}
}

func TestAssignAndInterior(t *testing.T) {
	const nx, ny = 9, 7
	run(t, 3, func(p *spmd.Proc) {
		g := New2D[float64](p, nx, ny, Rows(3), 1)
		g.Fill(func(i, j int) float64 { return 1 })
		h := New2D[float64](p, nx, ny, Rows(3), 1)
		h.Fill(func(i, j int) float64 { return 0 })
		g.ExchangeBoundary()
		ix0, ix1 := h.InteriorX()
		iy0, iy1 := h.InteriorY()
		h.AssignRegion(ix0, ix1, iy0, iy1, 4, func(gi, gj int) float64 {
			return g.At(gi-1, gj) + g.At(gi+1, gj) + g.At(gi, gj-1) + g.At(gi, gj+1)
		})
		x0, x1 := h.OwnedX()
		y0, y1 := h.OwnedY()
		for gi := x0; gi < x1; gi++ {
			for gj := y0; gj < y1; gj++ {
				want := 4.0
				if gi == 0 || gi == nx-1 || gj == 0 || gj == ny-1 {
					want = 0 // boundary untouched
				}
				if h.At(gi, gj) != want {
					t.Errorf("rank %d: (%d,%d) = %g, want %g", p.Rank(), gi, gj, h.At(gi, gj), want)
				}
			}
		}
	})
}

func TestInteriorIntersection(t *testing.T) {
	// First and last processes clip at the global boundary.
	run(t, 4, func(p *spmd.Proc) {
		g := New2D[float64](p, 8, 8, Rows(4), 1)
		lo, hi := g.InteriorX()
		x0, x1 := g.OwnedX()
		wantLo, wantHi := x0, x1
		if p.Rank() == 0 {
			wantLo = 1
		}
		if p.Rank() == 3 {
			wantHi = 7
		}
		if lo != wantLo || hi != wantHi {
			t.Errorf("rank %d: InteriorX = [%d,%d), want [%d,%d)", p.Rank(), lo, hi, wantLo, wantHi)
		}
	})
}

func TestCopyFrom(t *testing.T) {
	run(t, 4, func(p *spmd.Proc) {
		a := New2D[float64](p, 8, 8, Blocks(2, 2), 1)
		a.Fill(func(i, j int) float64 { return float64(i * j) })
		b := New2D[float64](p, 8, 8, Blocks(2, 2), 1)
		b.CopyFrom(a)
		x0, x1 := b.OwnedX()
		y0, y1 := b.OwnedY()
		for gi := x0; gi < x1; gi++ {
			for gj := y0; gj < y1; gj++ {
				if b.At(gi, gj) != a.At(gi, gj) {
					t.Errorf("CopyFrom mismatch at (%d,%d)", gi, gj)
				}
			}
		}
	})
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	_, err := spmd.MustWorld(2, machine.IBMSP()).Run(func(p *spmd.Proc) {
		g := New2D[float64](p, 8, 8, Rows(2), 1)
		g.At(7, 7) // rank 0 owns rows [0,4): row 7 is out of halo reach
	})
	if err == nil {
		t.Error("out-of-section access should panic")
	}
}

func TestOwns(t *testing.T) {
	run(t, 2, func(p *spmd.Proc) {
		g := New2D[float64](p, 4, 4, Rows(2), 1)
		owned := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if g.Owns(i, j) {
					owned++
				}
			}
		}
		if owned != 8 {
			t.Errorf("rank %d owns %d points, want 8", p.Rank(), owned)
		}
	})
}

func TestGlobalVariable(t *testing.T) {
	run(t, 5, func(p *spmd.Proc) {
		dm := NewGlobal(p, 1.0)
		if dm.Get() != 1.0 {
			t.Error("initial value lost")
		}
		v := dm.SetReduced(float64(p.Rank()), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if v != 4 || dm.Get() != 4 {
			t.Errorf("rank %d: reduced max = %g, want 4", p.Rank(), v)
		}
		v = dm.SetBcast(2, float64(p.Rank()*100))
		if v != 200 {
			t.Errorf("rank %d: broadcast = %g, want 200", p.Rank(), v)
		}
	})
}
