package meshspectral

import (
	"repro/internal/spmd"
)

// subBlock is a rectangular fragment of a grid in transit during
// redistribution, gather, or scatter.
type subBlock[T any] struct {
	X0, X1, Y0, Y1 int
	Data           []T
}

// VBytes implements spmd.Sized: four header ints plus the payload.
func (b subBlock[T]) VBytes() int { return 32 + spmd.BytesOf(b.Data) }

// extract packs the intersection of this grid's owned block with the
// rectangle [x0,x1)×[y0,y1); it returns an empty block when disjoint.
func (g *Grid2D[T]) extract(x0, x1, y0, y1 int) subBlock[T] {
	if x0 < g.ix0 {
		x0 = g.ix0
	}
	if x1 > g.ix1 {
		x1 = g.ix1
	}
	if y0 < g.iy0 {
		y0 = g.iy0
	}
	if y1 > g.iy1 {
		y1 = g.iy1
	}
	if x0 >= x1 || y0 >= y1 {
		return subBlock[T]{}
	}
	data := make([]T, 0, (x1-x0)*(y1-y0))
	for gi := x0; gi < x1; gi++ {
		row := g.loc.Row(gi - g.ix0 + g.H)
		data = append(data, row[y0-g.iy0+g.H:y1-g.iy0+g.H]...)
	}
	return subBlock[T]{X0: x0, X1: x1, Y0: y0, Y1: y1, Data: data}
}

// insert writes a received fragment into the owned block.
func (g *Grid2D[T]) insert(b subBlock[T]) {
	if len(b.Data) == 0 {
		return
	}
	w := b.Y1 - b.Y0
	k := 0
	for gi := b.X0; gi < b.X1; gi++ {
		row := g.loc.Row(gi - g.ix0 + g.H)
		copy(row[b.Y0-g.iy0+g.H:b.Y1-g.iy0+g.H], b.Data[k:k+w])
		k += w
	}
}

// Redistribute returns a new grid with the same global contents
// distributed according to newL — the archetype's general
// data-redistribution operation (§3.3, Figure 7), used for example
// between the row FFTs and column FFTs of the 2D FFT (Figure 11). Only
// the point-to-point messages with non-empty intersections are sent.
// Ghost contents are not transferred; call ExchangeBoundary on the result
// if needed.
func (g *Grid2D[T]) Redistribute(newL Layout) *Grid2D[T] {
	p := g.p
	n := p.N()
	out := New2D[T](p, g.NX, g.NY, newL, g.H)
	out.perX, out.perY = g.perX, g.perY
	if newL == g.L {
		out.CopyFrom(g)
		return out
	}

	// Send my intersection with every destination's new block, ascending
	// rank order, skipping empty pieces; self-intersection is copied.
	words := g.elemWords()
	for dst := 0; dst < n; dst++ {
		dx, dy := newL.Coords(dst)
		x0, x1 := blockRange(g.NX, newL.PX, dx)
		y0, y1 := blockRange(g.NY, newL.PY, dy)
		b := g.extract(x0, x1, y0, y1)
		if len(b.Data) == 0 {
			continue
		}
		p.MemWords(float64(len(b.Data)) * words)
		if dst == p.Rank() {
			out.insert(b)
			continue
		}
		spmd.SendT(p, dst, tagRedist, b)
	}

	// Receive from every source whose old block intersects my new block,
	// ascending rank order (deterministic timing).
	for src := 0; src < n; src++ {
		if src == p.Rank() {
			continue
		}
		sx, sy := g.L.Coords(src)
		x0, x1 := blockRange(g.NX, g.L.PX, sx)
		y0, y1 := blockRange(g.NY, g.L.PY, sy)
		if !rectsIntersect(x0, x1, y0, y1, out.ix0, out.ix1, out.iy0, out.iy1) {
			continue
		}
		b := spmd.Recv[subBlock[T]](p, src, tagRedist)
		out.insert(b)
		p.MemWords(float64(len(b.Data)) * words)
	}
	return out
}

// rectsIntersect reports whether the two rectangles share at least one
// point. The overlap-width formulation handles empty rectangles
// (x0 == x1) correctly — an empty block intersects nothing, matching the
// sender-side emptiness test exactly (a mismatch would deadlock the
// redistribution).
func rectsIntersect(ax0, ax1, ay0, ay1, bx0, bx1, by0, by1 int) bool {
	return max(ax0, bx0) < min(ax1, bx1) && max(ay0, by0) < min(ay1, by1)
}
