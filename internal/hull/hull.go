// Package hull implements the planar convex hull, one of the problems
// §2.6 lists as amenable to one-deep divide and conquer.
//
// The sequential algorithm is Andrew's monotone chain. The one-deep
// version has a degenerate split (points arrive distributed), a local
// solve computing each process's hull, and a merge phase in which the
// local hulls — already small — are all-gathered, the global hull is
// computed from their union (replicated in every process, one of the
// paper's §2.3 parameter strategies), and each process keeps its block of
// the result; the global hull is the rank-order concatenation.
package hull

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/spmd"
)

// Pt is a point in the plane.
type Pt struct {
	X, Y float64
}

// Pts is a point list payload with known wire size.
type Pts []Pt

// VBytes implements spmd.Sized.
func (p Pts) VBytes() int { return 16 * len(p) }

// cross returns the z-component of (a-o)×(b-o): positive for a left turn.
func cross(o, a, b Pt) float64 {
	return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
}

// MonotoneChain returns the convex hull of pts in counter-clockwise order
// starting from the lexicographically smallest point, excluding collinear
// interior points. The input is not modified. Degenerate inputs (fewer
// than 3 distinct points, or all collinear) return the extreme points.
func MonotoneChain(m core.Meter, pts []Pt) Pts {
	n := len(pts)
	if n == 0 {
		return nil
	}
	ps := make(Pts, n)
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Dedupe.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	n = len(ps)
	m.Cmps(float64(n) * math.Log2(float64(n)+2))
	if n < 3 {
		out := make(Pts, n)
		copy(out, ps)
		return out
	}
	hull := make(Pts, 0, 2*n)
	var flops float64
	// Lower chain.
	for _, p := range ps {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
			flops += 7
		}
		hull = append(hull, p)
		flops += 7
	}
	// Upper chain.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
			flops += 7
		}
		hull = append(hull, p)
		flops += 7
	}
	m.Flops(flops)
	out := hull[:len(hull)-1] // last point repeats the first
	if len(out) == 2 && out[0] == out[1] {
		out = out[:1]
	}
	return out
}

// OneDeepSPMD is the SPMD one-deep hull: local hull, all-gather of local
// hulls, replicated global hull, block-distributed result. The global
// hull is the rank-order concatenation of the returned pieces.
func OneDeepSPMD(p spmd.Comm, local []Pt) Pts {
	lh := MonotoneChain(p, local)
	all := collective.AllGather(p, lh)
	var union Pts
	for _, h := range all {
		union = append(union, h...)
	}
	global := MonotoneChain(p, union)
	lo := p.Rank() * len(global) / p.N()
	hi := (p.Rank() + 1) * len(global) / p.N()
	return global[lo:hi]
}

// OneDeepV1 is the version-1 (parfor) form of the same algorithm,
// executable sequentially or concurrently with identical results.
func OneDeepV1(mode core.Mode, blocks [][]Pt) []Pts {
	n := len(blocks)
	locals := make([]Pts, n)
	core.ParFor(mode, n, func(i int) {
		locals[i] = MonotoneChain(core.Nop, blocks[i])
	})
	var union Pts
	for _, h := range locals {
		union = append(union, h...)
	}
	global := MonotoneChain(core.Nop, union)
	out := make([]Pts, n)
	core.ParFor(mode, n, func(i int) {
		out[i] = global[i*len(global)/n : (i+1)*len(global)/n]
	})
	return out
}

// Contains reports whether q lies inside or on the hull polygon (given in
// CCW order).
func Contains(hull Pts, q Pt) bool {
	if len(hull) == 0 {
		return false
	}
	if len(hull) == 1 {
		return hull[0] == q
	}
	if len(hull) == 2 {
		// On-segment test.
		if cross(hull[0], hull[1], q) != 0 {
			return false
		}
		minX, maxX := hull[0].X, hull[1].X
		if minX > maxX {
			minX, maxX = maxX, minX
		}
		minY, maxY := hull[0].Y, hull[1].Y
		if minY > maxY {
			minY, maxY = maxY, minY
		}
		return q.X >= minX && q.X <= maxX && q.Y >= minY && q.Y <= maxY
	}
	for i := range hull {
		j := (i + 1) % len(hull)
		if cross(hull[i], hull[j], q) < 0 {
			return false
		}
	}
	return true
}

// IsConvexCCW reports whether the polygon is strictly convex in CCW order.
func IsConvexCCW(hull Pts) bool {
	if len(hull) < 3 {
		return true
	}
	for i := range hull {
		a := hull[i]
		b := hull[(i+1)%len(hull)]
		c := hull[(i+2)%len(hull)]
		if cross(a, b, c) <= 0 {
			return false
		}
	}
	return true
}

// RandomPoints returns n deterministic pseudo-random points in
// [0,span)×[0,span).
func RandomPoints(n int, seed int64, span float64) []Pt {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pt, n)
	for i := range out {
		out[i] = Pt{rng.Float64() * span, rng.Float64() * span}
	}
	return out
}
