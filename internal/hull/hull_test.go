package hull

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func checkHull(t *testing.T, pts []Pt, h Pts, label string) {
	t.Helper()
	if !IsConvexCCW(h) {
		t.Fatalf("%s: hull not convex CCW: %v", label, h)
	}
	inputSet := make(map[Pt]bool, len(pts))
	for _, p := range pts {
		inputSet[p] = true
	}
	for _, v := range h {
		if !inputSet[v] {
			t.Fatalf("%s: hull vertex %v not an input point", label, v)
		}
	}
	for _, p := range pts {
		if !Contains(h, p) {
			t.Fatalf("%s: input point %v outside hull %v", label, p, h)
		}
	}
}

func TestMonotoneChainKnown(t *testing.T) {
	square := []Pt{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}}
	h := MonotoneChain(core.Nop, square)
	want := Pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if !reflect.DeepEqual(h, want) {
		t.Errorf("square hull = %v, want %v", h, want)
	}
}

func TestMonotoneChainDegenerate(t *testing.T) {
	if MonotoneChain(core.Nop, nil) != nil {
		t.Error("empty input should give nil hull")
	}
	one := MonotoneChain(core.Nop, []Pt{{1, 2}})
	if len(one) != 1 || one[0] != (Pt{1, 2}) {
		t.Errorf("single point hull = %v", one)
	}
	dup := MonotoneChain(core.Nop, []Pt{{1, 2}, {1, 2}, {1, 2}})
	if len(dup) != 1 {
		t.Errorf("all-duplicates hull = %v", dup)
	}
	collinear := MonotoneChain(core.Nop, []Pt{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(collinear) != 2 || collinear[0] != (Pt{0, 0}) || collinear[1] != (Pt{3, 3}) {
		t.Errorf("collinear hull = %v, want extremes", collinear)
	}
	two := MonotoneChain(core.Nop, []Pt{{5, 5}, {0, 0}})
	if len(two) != 2 {
		t.Errorf("two-point hull = %v", two)
	}
}

func TestMonotoneChainRandom(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		pts := RandomPoints(50+trial*13, int64(trial), 100)
		h := MonotoneChain(core.Nop, pts)
		checkHull(t, pts, h, "random")
	}
}

func TestMonotoneChainPropertyQuick(t *testing.T) {
	f := func(raw []struct{ X, Y int8 }) bool {
		pts := make([]Pt, len(raw))
		for i, r := range raw {
			pts[i] = Pt{float64(r.X), float64(r.Y)}
		}
		h := MonotoneChain(core.Nop, pts)
		if !IsConvexCCW(h) {
			return false
		}
		for _, p := range pts {
			if len(h) >= 3 && !Contains(h, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOneDeepMatchesSequential(t *testing.T) {
	pts := RandomPoints(500, 3, 1000)
	want := MonotoneChain(core.Nop, pts)
	for _, n := range []int{1, 2, 3, 6, 8} {
		blocks := make([][]Pt, n)
		for i := range blocks {
			blocks[i] = pts[i*len(pts)/n : (i+1)*len(pts)/n]
		}
		outs := make([]Pts, n)
		w := spmd.MustWorld(n, machine.IBMSP())
		if _, err := w.Run(func(p *spmd.Proc) {
			outs[p.Rank()] = OneDeepSPMD(p, blocks[p.Rank()])
		}); err != nil {
			t.Fatal(err)
		}
		var got Pts
		for _, o := range outs {
			got = append(got, o...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: one-deep hull != sequential\ngot  %v\nwant %v", n, got, want)
		}
	}
}

func TestOneDeepV1Modes(t *testing.T) {
	pts := RandomPoints(300, 4, 500)
	const n = 5
	blocks := make([][]Pt, n)
	for i := range blocks {
		blocks[i] = pts[i*len(pts)/n : (i+1)*len(pts)/n]
	}
	a := OneDeepV1(core.Sequential, blocks)
	b := OneDeepV1(core.Concurrent, blocks)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("V1 modes disagree")
	}
	// And V1 assembles to the sequential hull.
	var got Pts
	for _, o := range a {
		got = append(got, o...)
	}
	want := MonotoneChain(core.Nop, pts)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("V1 hull != sequential hull")
	}
}

func TestContains(t *testing.T) {
	h := Pts{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	if !Contains(h, Pt{2, 2}) || !Contains(h, Pt{0, 0}) || !Contains(h, Pt{4, 2}) {
		t.Error("Contains false negatives")
	}
	if Contains(h, Pt{5, 2}) || Contains(h, Pt{-0.1, 0}) {
		t.Error("Contains false positives")
	}
	if Contains(nil, Pt{0, 0}) {
		t.Error("empty hull contains nothing")
	}
}

func TestVBytes(t *testing.T) {
	if (Pts{{1, 2}, {3, 4}}).VBytes() != 32 {
		t.Error("Pts.VBytes wrong")
	}
}
