package hull

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/core"
)

func init() {
	arch.Register(arch.App{
		Name:        "hull",
		Desc:        "one-deep convex hull (§2.6)",
		DefaultSize: 50000,
		Run:         runApp,
	})
}

// Program runs the one-deep convex hull over pre-distributed point blocks
// and reports the total vertex count across ranks.
func Program() arch.Program[[][]Pt, int] {
	return arch.SPMD(
		func(p *arch.Proc, blocks [][]Pt) Pts {
			return OneDeepSPMD(p, blocks[p.Rank()])
		},
		func(parts []Pts) int {
			total := 0
			for _, o := range parts {
				total += len(o)
			}
			return total
		})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	pts := RandomPoints(n, 4, 1000)
	blocks := make([][]Pt, s.Procs)
	for i := range blocks {
		blocks[i] = pts[i*n/s.Procs : (i+1)*n/s.Procs]
	}
	total, rep, err := arch.RunWith(ctx, Program(), s, blocks)
	if err != nil {
		return "", rep, err
	}
	want := MonotoneChain(core.Nop, pts)
	if total != len(want) {
		return "", rep, fmt.Errorf("hull: %d vertices, sequential found %d", total, len(want))
	}
	return fmt.Sprintf("convex hull of %d points (%d vertices, verified)", n, total), rep, nil
}
