// Package streamhist is the windowed histogram-aggregation application:
// an unbounded stream of scalar samples flows through a scoring farm
// (sample → bucket) into a stateful single-worker windowing stage that
// emits one bins-wide histogram per fixed window of samples. It is the
// stream archetype's aggregation shape — a cardinality-changing,
// stateful stage downstream of an embarrassingly parallel one (the
// state access patterns of Danelutto et al.): the farm carries no
// state, the window stage sees the whole stream and so runs with one
// worker.
package streamhist

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/stream"
)

// Shape of the computation: histogram bins, samples aggregated per
// histogram, and the streaming knobs (samples per message, flow-control
// window) — fixed so every backend runs the identical protocol.
const (
	Bins          = 32
	SamplesPerWin = 1024
	sampleBatch   = 256
	sampleCredits = 4
)

func init() {
	arch.Register(arch.App{
		Name:        "streamhist",
		Desc:        "windowed histogram aggregation over a sample stream (stream archetype)",
		DefaultSize: 1 << 16,
		Kind:        arch.KindStream,
		Run: func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
			return RunStream(ctx, s, nil)
		},
		RunStream: RunStream,
	})
}

// sampleAt generates sample i: a splitmix64-style hash of the index
// mapped to [0, 1), identical on every rank and in the sequential
// oracle.
func sampleAt(i int64) float64 {
	z := uint64(i+1) * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// bucket scores one sample into its histogram bin.
func bucket(x float64) int {
	b := int(x * Bins)
	if b >= Bins { // x == 1.0 cannot happen, but guard the edge
		b = Bins - 1
	}
	return b
}

// winState is the windowing stage's private state: the histogram being
// accumulated and how many samples it has absorbed.
type winState struct {
	counts [Bins]float64
	seen   int
}

// pipeline builds the stream pipeline: source emits raw samples, the
// "score" farm maps each to its bucket index, the stateful "window"
// stage (one worker — it must see the whole stream) folds buckets into
// per-window histograms, emitting one Bins-wide element per
// SamplesPerWin samples and flushing the final partial window.
func pipeline(scoreWorkers int) *stream.Pipeline[float64] {
	return &stream.Pipeline[float64]{
		Name:  "streamhist",
		Width: 1,
		Source: func(c arch.Comm, i int64, dst []float64) []float64 {
			return append(dst, sampleAt(i))
		},
		Stages: []stream.Stage[float64]{
			{
				Name:    "score",
				Workers: scoreWorkers,
				Fn: func(c arch.Comm, _ any, in []float64) []float64 {
					for k, x := range in {
						in[k] = float64(bucket(x))
					}
					c.Flops(float64(len(in)))
					return in
				},
			},
			{
				Name:     "window",
				OutWidth: Bins,
				State:    func(c arch.Comm) any { return &winState{} },
				Fn: func(c arch.Comm, state any, in []float64) []float64 {
					st := state.(*winState)
					var out []float64
					for _, b := range in {
						st.counts[int(b)]++
						st.seen++
						if st.seen == SamplesPerWin {
							out = append(out, st.counts[:]...)
							st.counts = [Bins]float64{}
							st.seen = 0
						}
					}
					c.MemWords(float64(len(in)))
					return out
				},
				Flush: func(c arch.Comm, state any) []float64 {
					st := state.(*winState)
					if st.seen == 0 {
						return nil
					}
					return st.counts[:]
				},
			},
		},
	}
}

// RunStream runs Size samples through the pipeline on the configured
// world, delivering progress windows to obs (nil for unobserved runs),
// and verifies every emitted histogram exactly against a sequential
// recount. The world needs at least 4 processes: source, one score
// worker, the window worker, sink.
func RunStream(ctx context.Context, s arch.Settings, obs arch.StreamObserver) (string, arch.Report, error) {
	samples := int64(s.Size)
	if s.Procs < 4 {
		return "", arch.Report{}, fmt.Errorf("streamhist: needs at least 4 processes (source, score, window, sink), got %d", s.Procs)
	}
	pl := pipeline(s.Procs - 3)
	cfg := stream.Config{
		Elems:   samples,
		Batch:   sampleBatch,
		Credits: sampleCredits,
	}
	if obs != nil {
		cfg.Window = histWindow(samples)
		cfg.OnWindow = func(w stream.Window) {
			obs(arch.StreamWindow{Index: w.Index, Elems: w.Elems, Elapsed: w.Elapsed, Rate: w.Rate})
		}
	}

	prog := arch.SPMD(
		func(p *arch.Proc, _ int) []float64 { return stream.Run(p, pl, cfg) },
		func(parts [][]float64) []float64 { return parts[len(parts)-1] },
	)
	out, rep, err := arch.RunWith(ctx, prog, s, 0)
	if err != nil {
		return "", rep, err
	}

	wantHists := (samples + SamplesPerWin - 1) / SamplesPerWin
	if int64(len(out)) != wantHists*Bins {
		return "", rep, fmt.Errorf("streamhist: sink collected %d scalars, want %d histograms x %d bins", len(out), wantHists, Bins)
	}
	var want [Bins]float64
	var seen int
	var hist int64
	for i := int64(0); i < samples; i++ {
		want[bucket(sampleAt(i))]++
		seen++
		if seen == SamplesPerWin || i == samples-1 {
			got := out[hist*Bins : (hist+1)*Bins]
			for b := range got {
				if got[b] != want[b] {
					return "", rep, fmt.Errorf("streamhist: window %d bin %d = %g, want %g (sequential)", hist, b, got[b], want[b])
				}
			}
			want = [Bins]float64{}
			seen = 0
			hist++
		}
	}
	return fmt.Sprintf("streamed %d samples into %d windowed %d-bin histograms through %d score workers (exact vs sequential)",
		samples, wantHists, Bins, s.Procs-3), rep, nil
}

// histWindow picks the progress-window size in output histograms for an
// observed run: eight windows across the stream, at least one each.
func histWindow(samples int64) int64 {
	hists := (samples + SamplesPerWin - 1) / SamplesPerWin
	w := hists / 8
	if w < 1 {
		w = 1
	}
	return w
}
