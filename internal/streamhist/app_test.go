package streamhist

import (
	"context"
	"strings"
	"testing"

	"repro/arch"
)

// TestRunStreamVerifies: a small observed run on the simulator windows
// the sample stream into exact histograms (the app's internal
// sequential recount), including a final partial window, and reports
// progress.
func TestRunStreamVerifies(t *testing.T) {
	// 2.5 windows of samples: exercises the Flush path for the partial
	// final histogram.
	size := SamplesPerWin*2 + SamplesPerWin/2
	s := arch.NewSettings(arch.WithProcs(5), arch.WithSize(size))
	var wins []arch.StreamWindow
	sum, rep, err := RunStream(context.Background(), s, func(w arch.StreamWindow) {
		wins = append(wins, w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum, "3 windowed 32-bin histograms") {
		t.Errorf("summary = %q", sum)
	}
	if rep.Msgs == 0 {
		t.Errorf("report carries no communication: %+v", rep)
	}
	if len(wins) == 0 {
		t.Fatal("no progress windows observed")
	}
	if last := wins[len(wins)-1]; last.Elems != 3 {
		t.Errorf("final window reports %d histograms, want 3", last.Elems)
	}
}

// TestBucketEdges pins the scoring function's boundaries.
func TestBucketEdges(t *testing.T) {
	if b := bucket(0); b != 0 {
		t.Errorf("bucket(0) = %d", b)
	}
	if b := bucket(0.999999999); b != Bins-1 {
		t.Errorf("bucket(~1) = %d, want %d", b, Bins-1)
	}
}

// TestSampleDeterministic: the source hash is a pure function of the
// index in [0, 1) — the property every backend's bit-identical replay
// rests on.
func TestSampleDeterministic(t *testing.T) {
	for _, i := range []int64{0, 1, 12345, 1 << 40} {
		a, b := sampleAt(i), sampleAt(i)
		if a != b {
			t.Fatalf("sampleAt(%d) not deterministic", i)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("sampleAt(%d) = %g out of [0,1)", i, a)
		}
	}
}
