package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	e := 0.0
	for i := range a {
		e = math.Max(e, cmplx.Abs(a[i]-b[i]))
	}
	return e
}

func TestTransformMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		a := randComplex(n, int64(n))
		want := DFT(a, false)
		got := append([]complex128(nil), a...)
		Transform(core.Nop, got, false)
		if e := maxErr(got, want); e > 1e-9 {
			t.Errorf("n=%d: FFT vs DFT max error %g", n, e)
		}
	}
}

func TestInverseMatchesDFT(t *testing.T) {
	a := randComplex(32, 3)
	want := DFT(a, true)
	got := append([]complex128(nil), a...)
	Transform(core.Nop, got, true)
	if e := maxErr(got, want); e > 1e-9 {
		t.Errorf("inverse FFT vs DFT max error %g", e)
	}
}

func TestRoundtrip(t *testing.T) {
	for _, n := range []int{2, 16, 256, 1024} {
		a := randComplex(n, int64(n)+7)
		b := append([]complex128(nil), a...)
		Transform(core.Nop, b, false)
		Transform(core.Nop, b, true)
		if e := maxErr(a, b); e > 1e-9 {
			t.Errorf("n=%d: roundtrip max error %g", n, e)
		}
	}
}

func TestImpulseAndConstant(t *testing.T) {
	// Impulse transforms to all-ones.
	a := make([]complex128, 8)
	a[0] = 1
	Transform(core.Nop, a, false)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
	// Constant transforms to a single spike of n at DC.
	b := []complex128{2, 2, 2, 2}
	Transform(core.Nop, b, false)
	if cmplx.Abs(b[0]-8) > 1e-12 {
		t.Errorf("DC bin = %v, want 8", b[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(b[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, b[i])
		}
	}
}

func TestParseval(t *testing.T) {
	a := randComplex(128, 5)
	var timeEnergy float64
	for _, v := range a {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	Transform(core.Nop, a, false)
	var freqEnergy float64
	for _, v := range a {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqEnergy/float64(len(a))-timeEnergy) > 1e-9*timeEnergy {
		t.Errorf("Parseval violated: time %g vs freq/N %g", timeEnergy, freqEnergy/128)
	}
}

func TestLinearityQuick(t *testing.T) {
	f := func(seedA, seedB int16, ca, cb int8) bool {
		const n = 64
		a := randComplex(n, int64(seedA))
		b := randComplex(n, int64(seedB))
		alpha := complex(float64(ca), 0)
		beta := complex(float64(cb), 0)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = alpha*a[i] + beta*b[i]
		}
		Transform(core.Nop, a, false)
		Transform(core.Nop, b, false)
		Transform(core.Nop, sum, false)
		for i := range sum {
			if cmplx.Abs(sum[i]-(alpha*a[i]+beta*b[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length 3 should panic")
		}
	}()
	Transform(core.Nop, make([]complex128, 3), false)
}

func TestEmptyTransform(t *testing.T) {
	Transform(core.Nop, nil, false) // must not panic
}

func TestTransformCharges(t *testing.T) {
	m := machine.IBMSP()
	tally := core.NewTally(m)
	Transform(tally, randComplex(1024, 1), false)
	want := 5.0 * 1024 * 10 * m.FlopTime
	if math.Abs(tally.Seconds-want) > 1e-12 {
		t.Errorf("charge %g, want %g", tally.Seconds, want)
	}
}

func fill2D(nx, ny int, seed int64) *array.Dense2D[complex128] {
	a := array.New2D[complex128](nx, ny)
	vals := randComplex(nx*ny, seed)
	copy(a.Data, vals)
	return a
}

func TestTwoDSeqRoundtrip(t *testing.T) {
	a := fill2D(16, 8, 2)
	orig := a.Clone()
	TwoDSeq(core.Nop, a, false)
	TwoDSeq(core.Nop, a, true)
	if e := maxErr(a.Data, orig.Data); e > 1e-9 {
		t.Errorf("2D roundtrip error %g", e)
	}
}

func TestTwoDV1ModesMatch(t *testing.T) {
	a := fill2D(16, 16, 3)
	b := a.Clone()
	TwoDV1(core.Sequential, a, false)
	TwoDV1(core.Concurrent, b, false)
	for k := range a.Data {
		if a.Data[k] != b.Data[k] {
			t.Fatal("V1 modes differ")
		}
	}
}

func TestTwoDV1MatchesSeq(t *testing.T) {
	a := fill2D(8, 32, 4)
	b := a.Clone()
	TwoDSeq(core.Nop, a, false)
	TwoDV1(core.Sequential, b, false)
	for k := range a.Data {
		if a.Data[k] != b.Data[k] {
			t.Fatal("V1 != sequential")
		}
	}
}

func TestTwoDSPMDMatchesV1(t *testing.T) {
	const nx, ny = 16, 16
	ref := fill2D(nx, ny, 5)
	TwoDV1(core.Sequential, ref, false)
	for _, n := range []int{1, 2, 4, 8} {
		src := fill2D(nx, ny, 5)
		var got *array.Dense2D[complex128]
		_, err := spmd.MustWorld(n, machine.IBMSP()).Run(func(p *spmd.Proc) {
			var full *array.Dense2D[complex128]
			if p.Rank() == 0 {
				full = src
			}
			g := meshspectral.ScatterGrid(p, full, 0, meshspectral.Rows(n), 0)
			out := TwoDSPMD(p, g, false)
			res := meshspectral.GatherGrid(out, 0)
			if p.Rank() == 0 {
				got = res
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref.Data {
			if got.Data[k] != ref.Data[k] {
				t.Fatalf("n=%d: SPMD differs from V1 at %d (not bit-identical)", n, k)
			}
		}
	}
}

func TestTwoDSPMDInverseRoundtrip(t *testing.T) {
	const nx, ny = 32, 32
	src := fill2D(nx, ny, 6)
	orig := src.Clone()
	var got *array.Dense2D[complex128]
	_, err := spmd.MustWorld(4, machine.IBMSP()).Run(func(p *spmd.Proc) {
		var full *array.Dense2D[complex128]
		if p.Rank() == 0 {
			full = src
		}
		g := meshspectral.ScatterGrid(p, full, 0, meshspectral.Rows(4), 0)
		fwd := TwoDSPMD(p, g, false)
		inv := TwoDSPMD(p, fwd, true)
		res := meshspectral.GatherGrid(inv, 0)
		if p.Rank() == 0 {
			got = res
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(got.Data, orig.Data); e > 1e-9 {
		t.Errorf("SPMD 2D roundtrip error %g", e)
	}
}
