package fft

import (
	"context"
	"fmt"
	"math"

	"repro/arch"
	"repro/internal/collective"
	"repro/internal/meshspectral"
)

func init() {
	arch.Register(arch.App{
		Name:        "fft",
		Desc:        "2D FFT on the mesh-spectral archetype (§3.5)",
		DefaultSize: 256,
		Run:         runApp,
	})
}

// Program runs a forward+inverse 2D FFT of an n×n grid on the
// mesh-spectral archetype and returns the maximum roundtrip error,
// all-reduced so every rank knows it.
func Program() arch.Program[int, float64] {
	return arch.SPMDRoot(func(p *arch.Proc, n int) float64 {
		g := meshspectral.New2D[complex128](p, n, n, meshspectral.Rows(p.N()), 0)
		g.Fill(func(i, j int) complex128 {
			return complex(math.Sin(float64(i)*0.11)+math.Cos(float64(j)*0.23), 0)
		})
		orig := g.LocalDense()
		f := TwoDSPMD(p, g, false)
		inv := TwoDSPMD(p, f, true)
		back := inv.LocalDense()
		local := 0.0
		for k := range back.Data {
			d := back.Data[k] - orig.Data[k]
			local = math.Max(local, math.Hypot(real(d), imag(d)))
		}
		return collective.AllReduce(p, local, math.Max)
	})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	if n&(n-1) != 0 {
		return "", arch.Report{}, fmt.Errorf("fft: size must be a power of two, got %d", n)
	}
	errMax, rep, err := arch.RunWith(ctx, Program(), s, n)
	if err != nil {
		return "", rep, err
	}
	if errMax > 1e-9 {
		return "", rep, fmt.Errorf("fft: roundtrip error %g", errMax)
	}
	return fmt.Sprintf("2D FFT %dx%d forward+inverse (roundtrip error %.1e)", n, n, errMax), rep, nil
}
