// Package fft implements the two-dimensional discrete Fourier transform
// of §3.5: a 1D radix-2 FFT applied to every row, a redistribution from
// rows to columns, the 1D FFT applied to every column, and a final
// redistribution restoring the original distribution (Figures 10 and 11).
//
// Both program versions of the paper's method are provided: TwoDV1 is the
// initial forall-based version (Figure 10), executable sequentially, and
// TwoDSPMD is the SPMD message-passing version (Figure 11) built on the
// mesh-spectral archetype. They produce bit-identical results because the
// per-row/per-column arithmetic is identical and redistribution moves data
// without arithmetic.
package fft

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

// Transform performs an in-place radix-2 decimation-in-time FFT of a,
// whose length must be a power of two (or zero). With inverse set, the
// inverse transform is computed including the 1/n scaling. The standard
// ~5·n·log2(n) floating-point operations are charged to m.
func Transform(m core.Meter, a []complex128, inverse bool) {
	n := len(a)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	logn := bits.TrailingZeros(uint(n))

	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logn))
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}

	sign := -1.0 // forward: e^{-2πi/n}
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wstep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
	m.Flops(5 * float64(n) * float64(logn))
}

// DFT computes the discrete Fourier transform directly in O(n²) — the
// testing oracle for Transform.
func DFT(a []complex128, inverse bool) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += a[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

// TwoDSeq performs the 2D transform of a dense array sequentially (row
// FFTs then column FFTs) — the original sequential algorithm of §3.5.1.
func TwoDSeq(m core.Meter, a *array.Dense2D[complex128], inverse bool) {
	for i := 0; i < a.NX; i++ {
		Transform(m, a.Row(i), inverse)
	}
	col := make([]complex128, a.NX)
	for j := 0; j < a.NY; j++ {
		a.Col(j, col)
		Transform(m, col, inverse)
		a.SetCol(j, col)
	}
	m.MemWords(float64(4 * a.NX * a.NY)) // column copy traffic (complex = 2 words)
}

// TwoDV1 is the initial archetype-based version (Figure 10): a forall
// over row FFTs followed by a forall over column FFTs. mode selects
// sequential (debugging) or concurrent execution with identical results.
func TwoDV1(mode core.Mode, a *array.Dense2D[complex128], inverse bool) {
	core.ParFor(mode, a.NX, func(i int) {
		Transform(core.Nop, a.Row(i), inverse)
	})
	core.ParFor(mode, a.NY, func(j int) {
		col := a.Col(j, nil)
		Transform(core.Nop, col, inverse)
		a.SetCol(j, col)
	})
}

// TwoDSPMD is the SPMD version (Figure 11) as process p's body. rows is
// this process's section of the grid distributed by rows; the transform
// happens in place through redistribution: row FFTs, redistribute to
// columns, column FFTs, redistribute back to the original distribution.
// The returned grid holds the transformed data distributed by rows.
func TwoDSPMD(p spmd.Comm, rows *meshspectral.Grid2D[complex128], inverse bool) *meshspectral.Grid2D[complex128] {
	rows.RowOp(func(gi int, row []complex128) {
		Transform(p, row, inverse)
	})
	cols := rows.Redistribute(meshspectral.Cols(p.N()))
	cols.ColOp(func(gj int, col []complex128) {
		Transform(p, col, inverse)
	})
	return cols.Redistribute(meshspectral.Rows(p.N()))
}
