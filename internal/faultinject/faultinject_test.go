package faultinject

import (
	"testing"
	"time"
)

func TestEvalMatching(t *testing.T) {
	in := New(
		Rule{Point: "elastic.rank.op", Rank: 2, Epoch: 7, Action: Kill},
		Rule{Point: "dist.send", Rank: AnyRank, Epoch: AnyEpoch, Count: 2, Action: Delay, Delay: 5 * time.Millisecond},
	)

	// Wrong point, wrong rank, wrong epoch: no fire.
	for _, probe := range []struct {
		point       string
		rank, epoch int
	}{
		{"dist.recv", 2, 7},
		{"elastic.rank.op", 1, 7},
		{"elastic.rank.op", 2, 6},
	} {
		if act, _ := in.Eval(probe.point, probe.rank, probe.epoch); act != None {
			t.Errorf("Eval(%q, %d, %d) = %v, want None", probe.point, probe.rank, probe.epoch, act)
		}
	}

	// Exact match fires once (Count 0 means once), then is consumed: the
	// same epoch passing again — a replayed rank — must not re-fire.
	if act, _ := in.Eval("elastic.rank.op", 2, 7); act != Kill {
		t.Fatalf("exact match = %v, want Kill", act)
	}
	if act, _ := in.Eval("elastic.rank.op", 2, 7); act != None {
		t.Errorf("consumed rule re-fired: %v", act)
	}
	if n := in.Fired("elastic.rank.op"); n != 1 {
		t.Errorf("Fired(elastic.rank.op) = %d, want 1", n)
	}

	// Wildcards match any rank/epoch; Count bounds total firings.
	if act, d := in.Eval("dist.send", 0, 0); act != Delay || d != 5*time.Millisecond {
		t.Errorf("wildcard = %v/%v, want Delay/5ms", act, d)
	}
	if act, _ := in.Eval("dist.send", 9, 123); act != Delay {
		t.Errorf("second firing within Count = %v, want Delay", act)
	}
	if act, _ := in.Eval("dist.send", 1, 1); act != None {
		t.Errorf("firing beyond Count = %v, want None", act)
	}
	if n := in.Fired("dist.send"); n != 2 {
		t.Errorf("Fired(dist.send) = %d, want 2", n)
	}
}

func TestFirstMatchWins(t *testing.T) {
	in := New(
		Rule{Point: "p", Rank: AnyRank, Epoch: AnyEpoch, Action: Drop},
		Rule{Point: "p", Rank: AnyRank, Epoch: AnyEpoch, Action: Kill},
	)
	if act, _ := in.Eval("p", 0, 0); act != Drop {
		t.Fatalf("first Eval = %v, want the first rule (Drop)", act)
	}
	// With the first rule consumed, the second becomes the first match.
	if act, _ := in.Eval("p", 0, 0); act != Kill {
		t.Fatalf("second Eval = %v, want the second rule (Kill)", act)
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if act, d := in.Eval("p", 0, 0); act != None || d != 0 {
		t.Errorf("nil Eval = %v/%v, want None/0", act, d)
	}
	if n := in.Fired("p"); n != 0 {
		t.Errorf("nil Fired = %d, want 0", n)
	}
}

func TestStats(t *testing.T) {
	in := New(
		Rule{Point: "dist.send", Rank: AnyRank, Epoch: AnyEpoch, Count: 2, Action: Delay},
		Rule{Point: "elastic.rank.op", Rank: 0, Epoch: 3, Action: Kill},
		Rule{Point: "dist.recv", Rank: AnyRank, Epoch: AnyEpoch, Action: Drop},
	)
	in.Eval("dist.send", 0, 0)
	in.Eval("dist.send", 1, 5)
	in.Eval("dist.send", 2, 9) // beyond Count: no fire
	in.Eval("elastic.rank.op", 0, 3)

	s := in.Stats()
	if s.Total != 3 {
		t.Errorf("Total = %d, want 3", s.Total)
	}
	if s.ByPoint["dist.send"] != 2 || s.ByPoint["elastic.rank.op"] != 1 {
		t.Errorf("ByPoint = %v, want dist.send:2 elastic.rank.op:1", s.ByPoint)
	}
	if _, present := s.ByPoint["dist.recv"]; present {
		t.Errorf("ByPoint has an entry for a point that never fired: %v", s.ByPoint)
	}
	want := []int{2, 1, 0}
	for i, n := range s.ByRule {
		if n != want[i] {
			t.Errorf("ByRule = %v, want %v", s.ByRule, want)
			break
		}
	}

	// The snapshot is detached: later firings don't mutate it.
	in.Eval("dist.recv", 0, 0)
	if s.Total != 3 || s.ByPoint["dist.recv"] != 0 {
		t.Errorf("snapshot mutated by later Eval: %+v", s)
	}

	var nilIn *Injector
	ns := nilIn.Stats()
	if ns.Total != 0 || ns.ByPoint == nil || len(ns.ByPoint) != 0 || ns.ByRule != nil {
		t.Errorf("nil Stats = %+v, want zero with empty ByPoint", ns)
	}
}

func TestActionString(t *testing.T) {
	for act, want := range map[Action]string{None: "none", Kill: "kill", Drop: "drop", Delay: "delay"} {
		if got := act.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(act), got, want)
		}
	}
}
