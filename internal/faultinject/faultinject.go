// Package faultinject is the deterministic fault-injection seam for the
// distributed backends: tests (and the chaos CI job) declare faults as
// data — "kill rank 2's host worker at epoch 7", "drop the connection on
// rank 0's third send" — and the dist and elastic substrates consult the
// injector at their hook points instead of being killed by hand.
//
// Hook points are named by the package that owns them:
//
//   - elastic.rank.op — evaluated by the elastic coordinator after every
//     completed rank operation (send or receive); epoch is the rank's
//     logical operation index, so Kill at a given epoch deterministically
//     kills the rank's host worker at the same program point on every
//     run, including replays. Rules default to firing once (Count 1), so
//     a replayed rank passing the same epoch again does not re-fire.
//   - dist.send / dist.recv — evaluated by the dist coordinator before
//     the rank's control-connection I/O; epoch counts that rank's
//     operations. Drop closes the connection (the run fails through the
//     existing lost-worker path), Delay sleeps before the I/O.
//
// A nil *Injector is valid everywhere and injects nothing, so production
// paths carry no fault logic beyond one nil check.
package faultinject

import (
	"sync"
	"time"
)

// Action is what happens when a rule fires.
type Action int

const (
	// None: no fault (the zero value).
	None Action = iota
	// Kill terminates the target: the host worker of the rank whose
	// operation matched (elastic).
	Kill
	// Drop closes the matched connection, simulating a link loss.
	Drop
	// Delay sleeps the rule's Delay before the matched operation.
	Delay
)

func (a Action) String() string {
	switch a {
	case Kill:
		return "kill"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	default:
		return "none"
	}
}

// Rule is one declared fault. Zero values widen the match: Rank -1 (or
// unset via AnyRank) matches every rank, Epoch -1 every epoch. Count
// bounds how many times the rule fires; 0 means once.
type Rule struct {
	// Point names the hook ("elastic.rank.op", "dist.send", "dist.recv").
	Point string
	// Rank matches the operating rank; -1 matches all.
	Rank int
	// Epoch matches the rank's logical operation index; -1 matches all.
	Epoch int
	// Count is the maximum number of firings (0 = 1).
	Count int
	// Action is the fault to inject.
	Action Action
	// Delay is the sleep for Action Delay.
	Delay time.Duration
}

// AnyRank / AnyEpoch are the wildcard values for Rule.Rank and Rule.Epoch.
const (
	AnyRank  = -1
	AnyEpoch = -1
)

// Injector evaluates declared rules at hook points. It is safe for
// concurrent use; a nil Injector never fires.
type Injector struct {
	mu    sync.Mutex
	rules []Rule
	fired []int
	byPt  map[string]int
}

// New builds an injector over the given rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, fired: make([]int, len(rules)), byPt: map[string]int{}}
}

// Eval reports the action to inject at the hook point for the given rank
// and epoch (None when no rule matches or the injector is nil), consuming
// one firing of the first matching rule.
func (in *Injector) Eval(point string, rank, epoch int) (Action, time.Duration) {
	if in == nil {
		return None, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.rules {
		if r.Point != point || r.Action == None {
			continue
		}
		if r.Rank != AnyRank && r.Rank != rank {
			continue
		}
		if r.Epoch != AnyEpoch && r.Epoch != epoch {
			continue
		}
		max := r.Count
		if max <= 0 {
			max = 1
		}
		if in.fired[i] >= max {
			continue
		}
		in.fired[i]++
		in.byPt[point]++
		return r.Action, r.Delay
	}
	return None, 0
}

// Fired returns how many rules have fired at the hook point — test
// observability that an injected fault actually happened.
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.byPt[point]
}

// Stats is a snapshot of an injector's firing counters.
type Stats struct {
	// Total is the number of rule firings across all hook points.
	Total int
	// ByPoint counts firings per hook point name.
	ByPoint map[string]int
	// ByRule counts firings per rule, in the order rules were declared.
	ByRule []int
}

// Stats returns a snapshot of the injector's firing counters. A nil
// injector returns zero Stats with a non-nil empty ByPoint map.
func (in *Injector) Stats() Stats {
	s := Stats{ByPoint: map[string]int{}}
	if in == nil {
		return s
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s.ByRule = make([]int, len(in.fired))
	copy(s.ByRule, in.fired)
	for pt, n := range in.byPt {
		s.ByPoint[pt] = n
		s.Total += n
	}
	return s
}
