package bnb

import (
	"math/rand"
	"sort"

	"repro/internal/core"
)

// Item is a 0/1-knapsack item.
type Item struct {
	Weight, Value int
}

// KnapNode is a partial knapsack decision: items before Idx are decided,
// with accumulated Weight and Value.
type KnapNode struct {
	Idx, Weight, Value int
}

// Knapsack returns the branch-and-bound spec for the 0/1 knapsack with
// the given items and capacity, maximizing total value. Items are
// branched in value-density order and bounded by the fractional
// (linear-relaxation) bound.
func Knapsack(items []Item, capacity int) *Spec[KnapNode] {
	ordered := append([]Item(nil), items...)
	sort.SliceStable(ordered, func(i, j int) bool {
		// Density descending; weight ascending as tie-break.
		return ordered[i].Value*ordered[j].Weight > ordered[j].Value*ordered[i].Weight
	})
	n := len(ordered)
	return &Spec[KnapNode]{
		Name: "knapsack",
		Root: KnapNode{},
		Branch: func(m core.Meter, nd KnapNode) []KnapNode {
			if nd.Idx >= n {
				return nil
			}
			m.Flops(4)
			it := ordered[nd.Idx]
			out := make([]KnapNode, 0, 2)
			if nd.Weight+it.Weight <= capacity {
				out = append(out, KnapNode{nd.Idx + 1, nd.Weight + it.Weight, nd.Value + it.Value})
			}
			out = append(out, KnapNode{nd.Idx + 1, nd.Weight, nd.Value})
			return out
		},
		Bound: func(m core.Meter, nd KnapNode) float64 {
			bound := float64(nd.Value)
			room := capacity - nd.Weight
			flops := 0.0
			for i := nd.Idx; i < n && room > 0; i++ {
				it := ordered[i]
				flops += 3
				if it.Weight <= room {
					room -= it.Weight
					bound += float64(it.Value)
				} else {
					bound += float64(it.Value) * float64(room) / float64(it.Weight)
					room = 0
				}
			}
			m.Flops(flops)
			return bound
		},
		Value: func(m core.Meter, nd KnapNode) (float64, bool) {
			return float64(nd.Value), nd.Idx >= n
		},
	}
}

// KnapsackDP solves the 0/1 knapsack exactly by dynamic programming —
// the testing oracle (O(n·capacity)).
func KnapsackDP(items []Item, capacity int) int {
	if capacity < 0 {
		return 0
	}
	best := make([]int, capacity+1)
	for _, it := range items {
		if it.Weight < 0 {
			continue
		}
		for c := capacity; c >= it.Weight; c-- {
			if v := best[c-it.Weight] + it.Value; v > best[c] {
				best[c] = v
			}
		}
	}
	return best[capacity]
}

// RandomItems generates n deterministic pseudo-random items with weights
// in [1, maxW] and loosely weight-correlated values (which makes the
// instances non-trivial for branch and bound).
func RandomItems(n int, maxW int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Item, n)
	for i := range out {
		w := rng.Intn(maxW) + 1
		out[i] = Item{Weight: w, Value: w + rng.Intn(maxW)}
	}
	return out
}
