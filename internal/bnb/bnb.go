// Package bnb implements a branch-and-bound archetype — the example the
// paper's Conclusions give of a *nondeterministic* archetype that a
// complete archetype library should include ("some problems are better
// suited to nondeterministic archetypes — for example, branch and
// bound").
//
// The computational pattern: maximize over a tree of partial solutions,
// expanding nodes, pruning any whose upper bound cannot beat the
// incumbent. Two parallelizations are provided:
//
//   - SolveSync — a deterministic bulk-synchronous strategy in the spirit
//     of the paper's other archetypes: rounds of local best-first
//     expansion, an all-reduce of the incumbent, and a deterministic
//     all-to-all rebalance of open nodes. Like the deterministic
//     archetypes, it gives identical results and virtual times on every
//     run, so it can be debugged like a sequential program.
//
//   - SolveAsync — the classic nondeterministic manager/worker strategy:
//     a manager hands out work reactively (spmd.Proc.RecvAny), workers
//     expand subtrees against their last-known incumbent. Execution
//     order and makespan vary run to run; the optimum does not.
//
// The two strategies bracket exactly the trade-off the paper describes:
// determinism (and sequential debuggability) versus reactive load
// balance.
package bnb

import (
	"fmt"
	"sort"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/spmd"
)

// Spec describes a maximization branch-and-bound problem over nodes of
// type N.
type Spec[N any] struct {
	Name string
	// Root is the initial node.
	Root N
	// Branch expands a node into children; empty means the node is a
	// dead end or fully expanded.
	Branch func(m core.Meter, n N) []N
	// Bound returns an upper bound on the value of any completion of n;
	// nodes with Bound <= incumbent are pruned.
	Bound func(m core.Meter, n N) float64
	// Value returns n's value and whether n is a complete solution.
	Value func(m core.Meter, n N) (float64, bool)
}

func (s *Spec[N]) validate() {
	if s.Branch == nil || s.Bound == nil || s.Value == nil {
		panic(fmt.Sprintf("bnb: spec %q must define Branch, Bound and Value", s.Name))
	}
}

// Result reports a solve.
type Result struct {
	// Best is the optimum value found (negative infinity if the tree
	// holds no complete solution — see Found).
	Best float64
	// Found reports whether any complete solution exists.
	Found bool
	// Expanded counts node expansions (a work measure).
	Expanded int64
}

const negInf = -1e308

// SolveSeq runs the sequential best-first branch and bound, charging m.
func SolveSeq[N any](m core.Meter, spec *Spec[N]) Result {
	spec.validate()
	res := Result{Best: negInf}
	pq := &boundHeap[N]{}
	pushNode(m, spec, pq, &res, spec.Root)
	for pq.Len() > 0 {
		nd := heapPop(pq)
		if nd.bound <= res.Best && res.Found {
			continue // pruned after incumbent improved
		}
		res.Expanded++
		for _, c := range spec.Branch(m, nd.n) {
			pushNode(m, spec, pq, &res, c)
		}
	}
	return res
}

// node pairs a problem node with its cached bound.
type node[N any] struct {
	n     N
	bound float64
}

// pushNode evaluates a node (value + bound), updates the incumbent, and
// queues it if it survives pruning.
func pushNode[N any](m core.Meter, spec *Spec[N], pq *boundHeap[N], res *Result, n N) {
	if v, complete := spec.Value(m, n); complete {
		if !res.Found || v > res.Best {
			res.Best, res.Found = v, true
		}
		return
	}
	b := spec.Bound(m, n)
	if res.Found && b <= res.Best {
		return
	}
	heapPush(pq, node[N]{n, b})
}

// boundHeap is a max-heap on bound (ties broken by insertion order for
// determinism).
type boundHeap[N any] struct {
	items []node[N]
}

func (h *boundHeap[N]) Len() int { return len(h.items) }

func heapPush[N any](h *boundHeap[N], nd node[N]) {
	h.items = append(h.items, nd)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].bound >= h.items[i].bound {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func heapPop[N any](h *boundHeap[N]) node[N] {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.items[l].bound > h.items[big].bound {
			big = l
		}
		if r < last && h.items[r].bound > h.items[big].bound {
			big = r
		}
		if big == i {
			break
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
	return top
}

// Tags for the async protocol.
const (
	tagWork = collective.TagUser + 70 + iota
	tagToManager
)

// SolveSync runs the deterministic bulk-synchronous parallel branch and
// bound as process p's body. Every process returns the identical Result
// (Expanded is the global total). chunk controls how many nodes each
// process expands per round.
func SolveSync[N any](p spmd.Comm, spec *Spec[N], chunk int) Result {
	spec.validate()
	if chunk < 1 {
		chunk = 1
	}
	n := p.N()
	res := Result{Best: negInf}
	pq := &boundHeap[N]{}
	if p.Rank() == 0 {
		pushNode(p, spec, pq, &res, spec.Root)
	}

	for {
		// Expand up to chunk nodes locally, best-first.
		var children []N
		expanded := 0
		for pq.Len() > 0 && expanded < chunk {
			nd := heapPop(pq)
			if res.Found && nd.bound <= res.Best {
				continue
			}
			expanded++
			children = append(children, spec.Branch(p, nd.n)...)
		}

		// Establish the global incumbent (recursive doubling), then
		// queue surviving children.
		type inc struct {
			V     float64
			Found bool
		}
		localBest := inc{res.Best, res.Found}
		for _, c := range children {
			if v, complete := spec.Value(p, c); complete {
				if !localBest.Found || v > localBest.V {
					localBest = inc{v, true}
				}
			}
		}
		best := collective.AllReduce(p, localBest, func(a, b inc) inc {
			switch {
			case !a.Found:
				return b
			case !b.Found:
				return a
			case b.V > a.V:
				return b
			default:
				return a
			}
		})
		res.Best, res.Found = best.V, best.Found

		// Rebalance: deal surviving open children round-robin across
		// processes by bound order (deterministic).
		open := make([]node[N], 0, len(children))
		for _, c := range children {
			if _, complete := spec.Value(core.Nop, c); complete {
				continue
			}
			b := spec.Bound(p, c)
			if res.Found && b <= res.Best {
				continue
			}
			open = append(open, node[N]{c, b})
		}
		sort.SliceStable(open, func(i, j int) bool { return open[i].bound > open[j].bound })
		parts := make([][]N, n)
		for i, nd := range open {
			dst := i % n
			parts[dst] = append(parts[dst], nd.n)
		}
		recv := collective.AllToAll(p, parts)
		for _, batch := range recv {
			for _, c := range batch {
				pushNode(p, spec, pq, &res, c)
			}
		}

		// Count work and check termination.
		totals := collective.AllReduce(p, [2]int64{int64(expanded), int64(pq.Len())},
			func(a, b [2]int64) [2]int64 { return [2]int64{a[0] + b[0], a[1] + b[1]} })
		res.Expanded += totals[0]
		if totals[1] == 0 {
			// Queues may still be non-empty locally only with nodes
			// that will all be pruned; totals counts them, so zero
			// means done everywhere.
			return res
		}
	}
}

// asyncMsg is the manager/worker protocol message.
type asyncMsg[N any] struct {
	// Kind: 0 = worker requests work / returns results; 1 = manager
	// assigns nodes; 2 = manager says stop.
	Kind int
	// Nodes carries assigned work (manager→worker) or new frontier
	// nodes (worker→manager).
	Nodes []N
	// Best carries the sender's incumbent knowledge.
	Best     float64
	Found    bool
	Expanded int64
}

// VBytes implements spmd.Sized: estimate one word per node plus header.
func (m asyncMsg[N]) VBytes() int { return 32 + 8*len(m.Nodes) }

// SolveAsync runs the nondeterministic manager/worker branch and bound on
// a world of at least two processes: rank 0 manages the queue and the
// incumbent; other ranks expand subtrees of up to budget nodes per
// assignment. Every process returns the identical Result; execution
// order (and hence virtual makespan) varies run to run, the optimum does
// not.
func SolveAsync[N any](p *spmd.Proc, spec *Spec[N], budget int) Result {
	spec.validate()
	if p.N() < 2 {
		panic("bnb: SolveAsync needs at least two processes (manager + worker)")
	}
	if budget < 1 {
		budget = 1
	}
	if p.Rank() == 0 {
		return runManager(p, spec)
	}
	return runWorker(p, spec, budget)
}

func runManager[N any](p *spmd.Proc, spec *Spec[N]) Result {
	res := Result{Best: negInf}
	pq := &boundHeap[N]{}
	pushNode(p, spec, pq, &res, spec.Root)

	workers := p.N() - 1
	idle := make([]int, 0, workers)   // workers waiting for work
	outstanding := make(map[int]bool) // workers holding assignments

	finish := func() Result {
		for w := 1; w < p.N(); w++ {
			spmd.SendT(p, w, tagWork, asyncMsg[N]{Kind: 2, Best: res.Best, Found: res.Found, Expanded: res.Expanded})
		}
		return res
	}

	for {
		// Hand work to every idle worker while any exists.
		for len(idle) > 0 && pq.Len() > 0 {
			nd := heapPop(pq)
			if res.Found && nd.bound <= res.Best {
				continue
			}
			w := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			msg := asyncMsg[N]{Kind: 1, Nodes: []N{nd.n}, Best: res.Best, Found: res.Found}
			spmd.SendT(p, w, tagWork, msg)
			outstanding[w] = true
		}
		if pq.Len() == 0 && len(outstanding) == 0 {
			return finish()
		}

		src, raw := p.RecvAny(tagToManager)
		msg := raw.(asyncMsg[N])
		delete(outstanding, src)
		idle = append(idle, src)
		res.Expanded += msg.Expanded
		if msg.Found && (!res.Found || msg.Best > res.Best) {
			res.Best, res.Found = msg.Best, true
		}
		for _, c := range msg.Nodes {
			pushNode(p, spec, pq, &res, c)
		}
	}
}

func runWorker[N any](p *spmd.Proc, spec *Spec[N], budget int) Result {
	// Announce availability.
	spmd.SendT(p, 0, tagToManager, asyncMsg[N]{Kind: 0, Best: negInf})
	for {
		msg := spmd.Recv[asyncMsg[N]](p, 0, tagWork)
		if msg.Kind == 2 {
			return Result{Best: msg.Best, Found: msg.Found, Expanded: msg.Expanded}
		}
		// Expand a subtree of up to budget nodes, best-first, against
		// the incumbent the manager shipped.
		local := Result{Best: msg.Best, Found: msg.Found}
		pq := &boundHeap[N]{}
		for _, nd := range msg.Nodes {
			pushNode(p, spec, pq, &local, nd)
		}
		var frontier []N
		var expanded int64
		for pq.Len() > 0 && expanded < int64(budget) {
			nd := heapPop(pq)
			if local.Found && nd.bound <= local.Best {
				continue
			}
			expanded++
			for _, c := range spec.Branch(p, nd.n) {
				pushNode(p, spec, pq, &local, c)
			}
		}
		// Whatever survives goes back to the manager.
		for pq.Len() > 0 {
			nd := heapPop(pq)
			if local.Found && nd.bound <= local.Best {
				continue
			}
			frontier = append(frontier, nd.n)
		}
		reply := asyncMsg[N]{Kind: 0, Nodes: frontier, Best: local.Best, Found: local.Found, Expanded: expanded}
		spmd.SendT(p, 0, tagToManager, reply)
	}
}
