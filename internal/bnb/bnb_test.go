package bnb

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

func TestKnapsackDPKnown(t *testing.T) {
	items := []Item{{2, 3}, {3, 4}, {4, 5}, {5, 6}}
	if got := KnapsackDP(items, 5); got != 7 {
		t.Errorf("DP = %d, want 7 (items 1+2)", got)
	}
	if KnapsackDP(items, 0) != 0 {
		t.Error("zero capacity should give 0")
	}
	if KnapsackDP(nil, 10) != 0 {
		t.Error("no items should give 0")
	}
}

func TestSolveSeqMatchesDP(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		items := RandomItems(14, 20, int64(trial))
		capacity := 60 + trial*3
		want := KnapsackDP(items, capacity)
		res := SolveSeq(core.Nop, Knapsack(items, capacity))
		if !res.Found || res.Best != float64(want) {
			t.Fatalf("trial %d: B&B = %v, DP = %d", trial, res, want)
		}
		if res.Expanded <= 0 {
			t.Fatalf("trial %d: no nodes expanded", trial)
		}
	}
}

func TestSolveSeqPropertyQuick(t *testing.T) {
	f := func(seed int16, nRaw, capRaw uint8) bool {
		n := int(nRaw)%12 + 1
		capacity := int(capRaw) + 1
		items := RandomItems(n, 15, int64(seed))
		res := SolveSeq(core.Nop, Knapsack(items, capacity))
		return res.Found && res.Best == float64(KnapsackDP(items, capacity))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSolveSeqDegenerate(t *testing.T) {
	// Everything too heavy: the only solution is the empty set.
	items := []Item{{100, 5}, {200, 9}}
	res := SolveSeq(core.Nop, Knapsack(items, 10))
	if !res.Found || res.Best != 0 {
		t.Errorf("all-too-heavy: %v, want 0", res)
	}
	// No items: value 0.
	res = SolveSeq(core.Nop, Knapsack(nil, 10))
	if !res.Found || res.Best != 0 {
		t.Errorf("no items: %v, want 0", res)
	}
}

func TestSolveSyncMatchesDP(t *testing.T) {
	items := RandomItems(18, 25, 7)
	const capacity = 120
	want := float64(KnapsackDP(items, capacity))
	for _, n := range []int{1, 2, 4, 7} {
		results := make([]Result, n)
		_, err := spmd.MustWorld(n, machine.IBMSP()).Run(func(p *spmd.Proc) {
			results[p.Rank()] = SolveSync(p, Knapsack(items, capacity), 8)
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			if results[r] != results[0] {
				t.Fatalf("n=%d: rank %d result %+v != rank 0 %+v", n, r, results[r], results[0])
			}
		}
		if !results[0].Found || results[0].Best != want {
			t.Fatalf("n=%d: sync B&B = %+v, DP = %g", n, results[0], want)
		}
	}
}

func TestSolveSyncDeterministicMakespan(t *testing.T) {
	items := RandomItems(14, 20, 9)
	var first float64
	for trial := 0; trial < 4; trial++ {
		res, err := spmd.MustWorld(4, machine.IBMSP()).Run(func(p *spmd.Proc) {
			SolveSync(p, Knapsack(items, 80), 4)
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("sync B&B makespan varies: %g vs %g — determinism broken", res.Makespan, first)
		}
	}
}

func TestSolveAsyncMatchesDP(t *testing.T) {
	items := RandomItems(18, 25, 11)
	const capacity = 120
	want := float64(KnapsackDP(items, capacity))
	for _, n := range []int{2, 4, 8} {
		results := make([]Result, n)
		_, err := spmd.MustWorld(n, machine.IBMSP()).Run(func(p *spmd.Proc) {
			results[p.Rank()] = SolveAsync(p, Knapsack(items, capacity), 16)
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			if results[r].Best != want || !results[r].Found {
				t.Fatalf("n=%d rank %d: async B&B = %+v, DP = %g", n, r, results[r], want)
			}
			if results[r].Expanded != results[0].Expanded {
				t.Fatalf("n=%d: expansion counts not shared at shutdown", n)
			}
		}
	}
}

func TestSolveAsyncRepeatedRunsAgreeOnOptimum(t *testing.T) {
	// The nondeterministic archetype's contract: execution varies, the
	// answer does not.
	items := RandomItems(16, 20, 13)
	want := float64(KnapsackDP(items, 90))
	for trial := 0; trial < 5; trial++ {
		var got Result
		_, err := spmd.MustWorld(5, machine.IBMSP()).Run(func(p *spmd.Proc) {
			r := SolveAsync(p, Knapsack(items, 90), 8)
			if p.Rank() == 0 {
				got = r
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Best != want {
			t.Fatalf("trial %d: optimum %g != %g", trial, got.Best, want)
		}
	}
}

func TestSolveAsyncRequiresTwoProcs(t *testing.T) {
	_, err := spmd.MustWorld(1, machine.IBMSP()).Run(func(p *spmd.Proc) {
		SolveAsync(p, Knapsack(RandomItems(4, 5, 1), 10), 4)
	})
	if err == nil {
		t.Error("single-process async solve should panic")
	}
}

func TestSpecValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incomplete spec should panic")
		}
	}()
	SolveSeq(core.Nop, &Spec[int]{Name: "broken"})
}

func TestPruningReducesWork(t *testing.T) {
	// With the fractional bound, B&B should expand far fewer nodes than
	// the full 2^n tree.
	items := RandomItems(20, 30, 17)
	res := SolveSeq(core.Nop, Knapsack(items, 150))
	if res.Expanded >= 1<<20/4 {
		t.Errorf("expanded %d nodes of a 2^20 tree — bound is not pruning", res.Expanded)
	}
}

func TestBoundIsAdmissible(t *testing.T) {
	// The bound at the root must never be below the DP optimum.
	f := func(seed int16, capRaw uint8) bool {
		items := RandomItems(10, 12, int64(seed))
		capacity := int(capRaw) + 1
		spec := Knapsack(items, capacity)
		bound := spec.Bound(core.Nop, spec.Root)
		return bound >= float64(KnapsackDP(items, capacity))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := &boundHeap[int]{}
	for _, b := range []float64{3, 9, 1, 7, 5, 9} {
		heapPush(h, node[int]{0, b})
	}
	prev := 1e18
	for h.Len() > 0 {
		nd := heapPop(h)
		if nd.bound > prev {
			t.Fatalf("heap not max-ordered: %g after %g", nd.bound, prev)
		}
		prev = nd.bound
	}
}
