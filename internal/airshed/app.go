package airshed

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/meshspectral"
)

func init() {
	arch.Register(arch.App{
		Name:        "airshed",
		Desc:        "photochemical smog episode (§3.7.4)",
		DefaultSize: 48,
		Run:         runApp,
	})
}

// Program advances the smog episode the given number of steps on a
// near-square decomposition, gathers the concentration field at rank 0,
// and returns its mean NOx.
func Program(steps int) arch.Program[Params, float64] {
	return arch.SPMDRoot(func(p *arch.Proc, pm Params) float64 {
		s := NewSPMD(p, pm, meshspectral.NearSquare(p.N()))
		s.Run(steps)
		full := meshspectral.GatherGrid(s.C, 0)
		if p.Rank() != 0 {
			return 0
		}
		return TotalNOx(full)
	})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	const steps = 100
	nox, rep, err := arch.RunWith(ctx, Program(steps), s, DefaultParams(n, n))
	if err != nil {
		return "", rep, err
	}
	return fmt.Sprintf("airshed %dx%d, %d steps, mean NOx %.4f", n, n, steps, nox), rep, nil
}
