// Package airshed implements the smog-model application of §3.7.4: the
// paper's CIT airshed code modelled photochemical smog in the Los Angeles
// basin on (conceptually) the mesh-spectral archetype. This reproduction
// is a multi-species photochemical transport model on a 2D grid with
// operator splitting — advection by a prescribed wind field (first-order
// upwind), turbulent diffusion (explicit), and a simplified NO/NO₂/O₃
// photochemical cycle with urban emissions:
//
//	NO₂ + hν → NO + O₃   (rate k1·[NO₂], daylight photolysis)
//	NO + O₃ → NO₂        (rate k2·[NO]·[O₃], titration)
//
// Each time step is mesh archetype throughout: one ghost exchange, then
// grid operations for the three split operators. Sequential and SPMD
// versions advance bit-identically.
package airshed

import (
	"math"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

// Species indices in a concentration cell.
const (
	NO = iota
	NO2
	O3
	NumSpecies
)

// Conc holds the species concentrations at one grid cell.
type Conc = [3]float64

// Params configures an airshed episode on the unit-square basin,
// discretized NX×NY.
type Params struct {
	NX, NY int
	// Wind is the prescribed velocity field (sea breeze plus a basin
	// recirculation vortex).
	WindU, WindV float64 // base wind components
	Vortex       float64 // recirculation strength
	// K is the turbulent diffusivity.
	K float64
	// K1 is the NO₂ photolysis rate, K2 the titration rate.
	K1, K2 float64
	// EmitNO and EmitNO2 are urban emission rates; the city occupies a
	// Gaussian patch centred at (CityX, CityY) with radius CityR.
	EmitNO, EmitNO2     float64
	CityX, CityY, CityR float64
	// O3Background is the initial/boundary ozone concentration.
	O3Background float64
	// Dt is the time step; DefaultParams picks a stable one.
	Dt float64
}

// DefaultParams returns a stable smog-episode configuration.
func DefaultParams(nx, ny int) Params {
	h := 1 / float64(nx)
	pm := Params{
		NX: nx, NY: ny,
		WindU: 0.6, WindV: 0.15, Vortex: 0.4,
		K:  2e-3,
		K1: 0.8, K2: 4.0,
		EmitNO: 2.0, EmitNO2: 0.4,
		CityX: 0.3, CityY: 0.4, CityR: 0.12,
		O3Background: 0.4,
	}
	// CFL for advection (|u|max ~ 1.2) and diffusion.
	advDt := 0.4 * h / 1.2
	difDt := 0.2 * h * h / pm.K
	pm.Dt = math.Min(advDt, difDt)
	return pm
}

// Wind returns the wind vector at (x, y): the base flow plus a solid-body
// recirculation about the basin centre.
func (pm *Params) Wind(x, y float64) (float64, float64) {
	u := pm.WindU - pm.Vortex*(y-0.5)
	v := pm.WindV + pm.Vortex*(x-0.5)
	return u, v
}

// emission returns the per-species emission rate at (x, y).
func (pm *Params) emission(x, y float64) Conc {
	d2 := (x-pm.CityX)*(x-pm.CityX) + (y-pm.CityY)*(y-pm.CityY)
	w := math.Exp(-d2 / (pm.CityR * pm.CityR))
	return Conc{pm.EmitNO * w, pm.EmitNO2 * w, 0}
}

// initial returns the initial concentrations.
func (pm *Params) initial() Conc {
	return Conc{0, 0, pm.O3Background}
}

// advectFlops etc. are per-point cost estimates for the split operators.
const (
	advectFlops  = 30
	diffuseFlops = 24
	reactFlops   = 18
)

// upwind computes one first-order upwind advection step for every species
// at a point. cm/cp are the −/+ neighbours along each axis.
func upwind(c, xm, xp, ym, yp Conc, u, v, dtdx, dtdy float64) Conc {
	var out Conc
	for s := 0; s < NumSpecies; s++ {
		ddx := c[s] - xm[s]
		if u < 0 {
			ddx = xp[s] - c[s]
		}
		ddy := c[s] - ym[s]
		if v < 0 {
			ddy = yp[s] - c[s]
		}
		out[s] = c[s] - dtdx*u*ddx - dtdy*v*ddy
	}
	return out
}

// diffuse computes one explicit diffusion step at a point.
func diffuse(c, xm, xp, ym, yp Conc, kdtdx2, kdtdy2 float64) Conc {
	var out Conc
	for s := 0; s < NumSpecies; s++ {
		out[s] = c[s] + kdtdx2*(xm[s]-2*c[s]+xp[s]) + kdtdy2*(ym[s]-2*c[s]+yp[s])
	}
	return out
}

// react advances the photochemistry and emissions at a point, clamping
// concentrations at zero (explicit chemistry can overshoot at large k2).
func react(c, emit Conc, k1, k2, dt float64) Conc {
	photo := k1 * c[NO2] * dt
	titr := k2 * c[NO] * c[O3] * dt
	out := Conc{
		c[NO] + photo - titr + emit[NO]*dt,
		c[NO2] - photo + titr + emit[NO2]*dt,
		c[O3] + photo - titr + emit[O3]*dt,
	}
	for s := 0; s < NumSpecies; s++ {
		if out[s] < 0 {
			out[s] = 0
		}
	}
	return out
}

// Sim is the distributed (SPMD) episode.
type Sim struct {
	Pm   Params
	C    *meshspectral.Grid2D[Conc]
	work *meshspectral.Grid2D[Conc]
}

// NewSPMD builds the distributed simulation over layout l as process p's
// body.
func NewSPMD(p spmd.Comm, pm Params, l meshspectral.Layout) *Sim {
	s := &Sim{Pm: pm}
	s.C = meshspectral.New2D[Conc](p, pm.NX, pm.NY, l, 1)
	s.work = meshspectral.New2D[Conc](p, pm.NX, pm.NY, l, 1)
	s.C.Fill(func(gi, gj int) Conc { return pm.initial() })
	return s
}

// fillOpen writes zero-gradient ghost cells at the global boundaries
// (pollutants advect out freely; backgrounds flow in).
func fillOpen(g *meshspectral.Grid2D[Conc], nx, ny int) {
	x0, x1 := g.OwnedX()
	y0, y1 := g.OwnedY()
	if x0 == 0 {
		for gj := y0; gj < y1; gj++ {
			g.Set(-1, gj, g.At(0, gj))
		}
	}
	if x1 == nx {
		for gj := y0; gj < y1; gj++ {
			g.Set(nx, gj, g.At(nx-1, gj))
		}
	}
	if y0 == 0 {
		for gi := x0 - 1; gi < x1+1; gi++ {
			if gi >= -1 && gi <= nx {
				g.Set(gi, -1, g.At(gi, 0))
			}
		}
	}
	if y1 == ny {
		for gi := x0 - 1; gi < x1+1; gi++ {
			if gi >= -1 && gi <= nx {
				g.Set(gi, ny, g.At(gi, ny-1))
			}
		}
	}
}

// Step advances one operator-split time step.
func (s *Sim) Step() {
	pm := s.Pm
	h := 1 / float64(pm.NX)
	hy := 1 / float64(pm.NY)
	dtdx, dtdy := pm.Dt/h, pm.Dt/hy
	kdtdx2 := pm.K * pm.Dt / (h * h)
	kdtdy2 := pm.K * pm.Dt / (hy * hy)
	pos := func(gi, gj int) (float64, float64) {
		return (float64(gi) + 0.5) * h, (float64(gj) + 0.5) * hy
	}

	// Advection.
	s.C.ExchangeBoundary()
	fillOpen(s.C, pm.NX, pm.NY)
	s.work.Assign(advectFlops, func(gi, gj int) Conc {
		x, y := pos(gi, gj)
		u, v := pm.Wind(x, y)
		return upwind(s.C.At(gi, gj),
			s.C.At(gi-1, gj), s.C.At(gi+1, gj),
			s.C.At(gi, gj-1), s.C.At(gi, gj+1),
			u, v, dtdx, dtdy)
	})
	s.C, s.work = s.work, s.C

	// Diffusion.
	s.C.ExchangeBoundary()
	fillOpen(s.C, pm.NX, pm.NY)
	s.work.Assign(diffuseFlops, func(gi, gj int) Conc {
		return diffuse(s.C.At(gi, gj),
			s.C.At(gi-1, gj), s.C.At(gi+1, gj),
			s.C.At(gi, gj-1), s.C.At(gi, gj+1),
			kdtdx2, kdtdy2)
	})
	s.C, s.work = s.work, s.C

	// Chemistry and emissions (point-local; no exchange needed).
	s.work.Assign(reactFlops, func(gi, gj int) Conc {
		x, y := pos(gi, gj)
		return react(s.C.At(gi, gj), pm.emission(x, y), pm.K1, pm.K2, pm.Dt)
	})
	s.C, s.work = s.work, s.C
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// SeqSim is the sequential episode, advancing bit-identically to the
// SPMD version.
type SeqSim struct {
	Pm   Params
	C    *array.Dense2D[Conc]
	work *array.Dense2D[Conc]
}

// NewSeq builds the sequential simulation.
func NewSeq(pm Params) *SeqSim {
	s := &SeqSim{Pm: pm}
	s.C = array.New2D[Conc](pm.NX, pm.NY)
	s.work = array.New2D[Conc](pm.NX, pm.NY)
	s.C.Fill(func(i, j int) Conc { return pm.initial() })
	return s
}

// at reads with clamped indices (zero-gradient boundaries), matching the
// distributed ghost contents exactly.
func (s *SeqSim) at(i, j int) Conc {
	if i < 0 {
		i = 0
	}
	if i >= s.Pm.NX {
		i = s.Pm.NX - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= s.Pm.NY {
		j = s.Pm.NY - 1
	}
	return s.C.At(i, j)
}

// Step advances one time step sequentially, charging m.
func (s *SeqSim) Step(m core.Meter) {
	pm := s.Pm
	h := 1 / float64(pm.NX)
	hy := 1 / float64(pm.NY)
	dtdx, dtdy := pm.Dt/h, pm.Dt/hy
	kdtdx2 := pm.K * pm.Dt / (h * h)
	kdtdy2 := pm.K * pm.Dt / (hy * hy)
	pos := func(i, j int) (float64, float64) {
		return (float64(i) + 0.5) * h, (float64(j) + 0.5) * hy
	}
	for i := 0; i < pm.NX; i++ {
		for j := 0; j < pm.NY; j++ {
			x, y := pos(i, j)
			u, v := pm.Wind(x, y)
			s.work.Set(i, j, upwind(s.C.At(i, j),
				s.at(i-1, j), s.at(i+1, j), s.at(i, j-1), s.at(i, j+1),
				u, v, dtdx, dtdy))
		}
	}
	s.C, s.work = s.work, s.C
	for i := 0; i < pm.NX; i++ {
		for j := 0; j < pm.NY; j++ {
			s.work.Set(i, j, diffuse(s.C.At(i, j),
				s.at(i-1, j), s.at(i+1, j), s.at(i, j-1), s.at(i, j+1),
				kdtdx2, kdtdy2))
		}
	}
	s.C, s.work = s.work, s.C
	for i := 0; i < pm.NX; i++ {
		for j := 0; j < pm.NY; j++ {
			x, y := pos(i, j)
			s.work.Set(i, j, react(s.C.At(i, j), pm.emission(x, y), pm.K1, pm.K2, pm.Dt))
		}
	}
	s.C, s.work = s.work, s.C
	m.Flops(float64((advectFlops + diffuseFlops + reactFlops) * pm.NX * pm.NY))
}

// Run advances n steps.
func (s *SeqSim) Run(m core.Meter, n int) {
	for i := 0; i < n; i++ {
		s.Step(m)
	}
}

// Field extracts one species' concentration field from a gathered array.
func Field(c *array.Dense2D[Conc], species int) *array.Dense2D[float64] {
	out := array.New2D[float64](c.NX, c.NY)
	for k, v := range c.Data {
		out.Data[k] = v[species]
	}
	return out
}

// TotalNOx returns the domain total of NO+NO₂ (conserved by the
// chemistry; changed only by emissions and boundary outflow).
func TotalNOx(c *array.Dense2D[Conc]) float64 {
	sum := 0.0
	for _, v := range c.Data {
		sum += v[NO] + v[NO2]
	}
	return sum / float64(c.NX*c.NY)
}
