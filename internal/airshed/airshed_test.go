package airshed

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func TestChemistryConservesNOx(t *testing.T) {
	// The two reactions exchange NO and NO₂ one for one: without
	// emissions, NO+NO₂ is pointwise invariant.
	c := Conc{0.3, 0.7, 0.5}
	out := react(c, Conc{}, 0.8, 4.0, 0.01)
	if math.Abs((out[NO]+out[NO2])-(c[NO]+c[NO2])) > 1e-15 {
		t.Errorf("NOx not conserved: %g -> %g", c[NO]+c[NO2], out[NO]+out[NO2])
	}
}

func TestChemistryDirections(t *testing.T) {
	// Pure NO₂ photolyses into NO and O₃.
	out := react(Conc{0, 1, 0}, Conc{}, 0.5, 4, 0.1)
	if out[NO] <= 0 || out[O3] <= 0 || out[NO2] >= 1 {
		t.Errorf("photolysis direction wrong: %v", out)
	}
	// NO titrates O₃ into NO₂.
	out = react(Conc{1, 0, 1}, Conc{}, 0, 4, 0.01)
	if out[NO] >= 1 || out[O3] >= 1 || out[NO2] <= 0 {
		t.Errorf("titration direction wrong: %v", out)
	}
}

func TestReactClampsNegative(t *testing.T) {
	// Overshooting titration must clamp at zero, not go negative.
	out := react(Conc{10, 0, 10}, Conc{}, 0, 100, 1)
	for s := 0; s < NumSpecies; s++ {
		if out[s] < 0 {
			t.Fatalf("species %d negative: %g", s, out[s])
		}
	}
}

func TestUpwindTransportsDownwind(t *testing.T) {
	// A blob advected by positive u moves toward +x.
	pm := DefaultParams(32, 8)
	pm.K = 0
	pm.Vortex = 0
	pm.WindV = 0
	pm.EmitNO = 0
	pm.EmitNO2 = 0
	s := NewSeq(pm)
	s.C.Fill(func(i, j int) Conc {
		if i == 8 {
			return Conc{1, 0, 0}
		}
		return Conc{}
	})
	s.Run(core.Nop, 20)
	var left, right float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			left += s.C.At(i, j)[NO]
		}
	}
	for i := 9; i < 32; i++ {
		for j := 0; j < 8; j++ {
			right += s.C.At(i, j)[NO]
		}
	}
	if right <= left {
		t.Errorf("blob did not move downwind: left %g right %g", left, right)
	}
}

func TestPositivityAndStability(t *testing.T) {
	pm := DefaultParams(32, 32)
	s := NewSeq(pm)
	s.Run(core.Nop, 100)
	for k, c := range s.C.Data {
		for sp := 0; sp < NumSpecies; sp++ {
			if c[sp] < 0 || math.IsNaN(c[sp]) || c[sp] > 1e3 {
				t.Fatalf("cell %d species %d out of range: %g", k, sp, c[sp])
			}
		}
	}
}

func TestEmissionsCreatePlume(t *testing.T) {
	pm := DefaultParams(48, 48)
	s := NewSeq(pm)
	s.Run(core.Nop, 120)
	nox := Field(s.C, NO)
	// The city cell and a downwind cell should carry NO; a far upwind
	// corner should stay clean.
	ci, cj := int(pm.CityX*48), int(pm.CityY*48)
	if nox.At(ci, cj) < 1e-3 {
		t.Errorf("no NO at the city: %g", nox.At(ci, cj))
	}
	if nox.At(2, 2) > nox.At(ci, cj)/10 {
		t.Errorf("upwind corner polluted: %g vs city %g", nox.At(2, 2), nox.At(ci, cj))
	}
	// Ozone is depleted near the fresh-NO city relative to background
	// (titration) — the classic urban ozone hole.
	o3 := Field(s.C, O3)
	if o3.At(ci, cj) >= pm.O3Background {
		t.Errorf("no ozone depletion at the city: %g vs background %g", o3.At(ci, cj), pm.O3Background)
	}
}

func TestNOxBudget(t *testing.T) {
	// With no emissions and no wind, NOx is exactly conserved
	// (diffusion with zero-gradient boundaries and chemistry both
	// conserve it).
	pm := DefaultParams(24, 24)
	pm.EmitNO, pm.EmitNO2 = 0, 0
	pm.WindU, pm.WindV, pm.Vortex = 0, 0, 0
	s := NewSeq(pm)
	s.C.Fill(func(i, j int) Conc {
		return Conc{0.1 * float64(i%3), 0.05 * float64(j%2), 0.3}
	})
	n0 := TotalNOx(s.C)
	s.Run(core.Nop, 50)
	n1 := TotalNOx(s.C)
	if math.Abs(n1-n0)/n0 > 1e-12 {
		t.Errorf("NOx drifted with closed budget: %g -> %g", n0, n1)
	}
}

func TestSPMDMatchesSeqBitIdentical(t *testing.T) {
	pm := DefaultParams(24, 16)
	const steps = 10
	seq := NewSeq(pm)
	seq.Run(core.Nop, steps)
	for _, tc := range []struct {
		n int
		l meshspectral.Layout
	}{
		{1, meshspectral.Rows(1)},
		{2, meshspectral.Cols(2)},
		{4, meshspectral.Blocks(2, 2)},
		{6, meshspectral.Blocks(2, 3)},
	} {
		var got *array.Dense2D[Conc]
		_, err := spmd.MustWorld(tc.n, machine.IntelDelta()).Run(func(p *spmd.Proc) {
			s := NewSPMD(p, pm, tc.l)
			s.Run(steps)
			full := meshspectral.GatherGrid(s.C, 0)
			if p.Rank() == 0 {
				got = full
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := range seq.C.Data {
			if got.Data[k] != seq.C.Data[k] {
				t.Fatalf("n=%d %v: field differs at %d (not bit-identical)", tc.n, tc.l, k)
			}
		}
	}
}

func TestWindField(t *testing.T) {
	pm := DefaultParams(16, 16)
	// At the basin centre the vortex contributes nothing.
	u, v := pm.Wind(0.5, 0.5)
	if u != pm.WindU || v != pm.WindV {
		t.Errorf("centre wind = (%g,%g), want (%g,%g)", u, v, pm.WindU, pm.WindV)
	}
	// The vortex is a rotation: velocity difference across the centre
	// is antisymmetric.
	u1, v1 := pm.Wind(0.7, 0.5)
	u2, v2 := pm.Wind(0.3, 0.5)
	if math.Abs((u1-pm.WindU)+(u2-pm.WindU)) > 1e-15 || math.Abs((v1-pm.WindV)+(v2-pm.WindV)) > 1e-15 {
		t.Error("vortex not antisymmetric about centre")
	}
}
