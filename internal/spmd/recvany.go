package spmd

import (
	"fmt"
	"reflect"
)

// RecvAny receives the next message from any source carrying the given
// tag and returns the sender's rank with the payload.
//
// Unlike Recv, the choice among concurrently available messages depends
// on host scheduling, so programs using RecvAny are nondeterministic in
// execution order (their virtual makespans can vary run to run). This is
// deliberate: it supports the paper's nondeterministic archetypes
// (branch and bound is the example § Conclusions names), which trade the
// sequential-debuggability guarantee for reactive work distribution.
// The virtual clock still advances consistently: to at least the chosen
// message's availability time plus receive overhead.
func (p *Proc) RecvAny(tag int) (int, any) {
	w := p.world
	cases := make([]reflect.SelectCase, w.n)
	for src := 0; src < w.n; src++ {
		cases[src] = reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(w.mail[src*w.n+p.rank]),
		}
	}
	chosen, val, ok := reflect.Select(cases)
	if !ok {
		panic("spmd: mailbox closed") // cannot happen: mailboxes are never closed
	}
	msg := val.Interface().(message)
	if msg.tag != tag {
		panic(fmt.Sprintf("spmd: process %d expected tag %d from any source, got %d from %d",
			p.rank, tag, msg.tag, chosen))
	}
	if msg.avail > p.clock {
		p.clock = msg.avail
	}
	if chosen != p.rank {
		p.clock += w.model.RecvOverhead
	}
	return chosen, msg.data
}
