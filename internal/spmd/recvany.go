package spmd

// RecvAny receives the next message from any source carrying the given
// tag and returns the sender's rank with the payload.
//
// Unlike Recv, the choice among concurrently available messages depends
// on host scheduling, so programs using RecvAny are nondeterministic in
// execution order (their virtual makespans can vary run to run). This is
// deliberate: it supports the paper's nondeterministic archetypes
// (branch and bound is the example § Conclusions names), which trade the
// sequential-debuggability guarantee for reactive work distribution.
// The virtual clock still advances consistently: to at least the chosen
// message's availability time plus receive overhead.
func (p *Proc) RecvAny(tag int) (int, any) {
	return p.world.t.RecvAny(p.rank, tag)
}
