package spmd

import (
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
)

// testModel returns a model with simple round numbers so expected virtual
// times can be computed by hand.
func testModel() *machine.Model {
	return &machine.Model{
		Name: "test", FlopTime: 1e-9, CmpTime: 1e-9, MemTime: 1e-9,
		Latency: 10e-6, Bandwidth: 1e6, SendOverhead: 1e-6, RecvOverhead: 1e-6,
	}
}

func TestPingTiming(t *testing.T) {
	w := MustWorld(2, testModel())
	res, err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			payload := make([]byte, 1000)
			copy(payload, "hi")
			p.Send(1, 7, payload) // BytesOf prices the 1000-byte slice
		} else {
			got := Recv[[]byte](p, 0, 7)
			if string(got[:2]) != "hi" {
				t.Errorf("payload = %q", got[:2])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver clock: send overhead 1us + latency 10us + 1000B/1MBps=1ms + recv 1us.
	want := 1e-6 + 10e-6 + 1e-3 + 1e-6
	if math.Abs(res.Clocks[1]-want) > 1e-12 {
		t.Errorf("receiver clock = %g, want %g", res.Clocks[1], want)
	}
	// Sender only pays its overhead.
	if math.Abs(res.Clocks[0]-1e-6) > 1e-15 {
		t.Errorf("sender clock = %g, want 1e-6", res.Clocks[0])
	}
	if res.Msgs != 1 || res.Bytes != 1000 {
		t.Errorf("stats = %d msgs %d bytes, want 1/1000", res.Msgs, res.Bytes)
	}
}

func TestRecvWaitsForBusyReceiver(t *testing.T) {
	// If the receiver is already past the arrival time, it pays only
	// receive overhead.
	w := MustWorld(2, testModel())
	res, err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, nil)
		} else {
			p.Charge(1.0) // busy for a full virtual second
			p.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 1e-6
	if math.Abs(res.Clocks[1]-want) > 1e-9 {
		t.Errorf("busy receiver clock = %g, want %g", res.Clocks[1], want)
	}
}

func TestComputeCharges(t *testing.T) {
	m := testModel()
	w := MustWorld(1, m)
	res, err := w.Run(func(p *Proc) {
		p.Flops(100)
		p.Cmps(50)
		p.MemWords(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 100*m.FlopTime + 50*m.CmpTime + 10*m.MemTime
	if math.Abs(res.Makespan-want) > 1e-15 {
		t.Errorf("makespan = %g, want %g", res.Makespan, want)
	}
}

func TestPagingMultiplier(t *testing.T) {
	m := testModel()
	m.MemPerProc = 1000
	m.PagingFactor = 4
	w := MustWorld(1, m)
	res, err := w.Run(func(p *Proc) {
		p.SetResident(500) // under capacity: no paging
		p.Charge(1)
		p.SetResident(2000) // over capacity: 4x
		p.Charge(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-5) > 1e-12 {
		t.Errorf("makespan = %g, want 5 (1 + 4)", res.Makespan)
	}
}

func TestSelfSendIsCopy(t *testing.T) {
	m := testModel()
	w := MustWorld(1, m)
	res, err := w.Run(func(p *Proc) {
		p.Send(0, 3, []float64{1, 2})
		v := Recv[[]float64](p, 0, 3)
		if len(v) != 2 || v[0] != 1 {
			t.Errorf("self-send payload corrupted: %v", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cost is 2 words of copy, no latency, no overheads.
	if math.Abs(res.Makespan-2*m.MemTime) > 1e-15 {
		t.Errorf("self-send makespan = %g, want %g", res.Makespan, 2*m.MemTime)
	}
	if res.Msgs != 0 {
		t.Errorf("self-send should not count as a message, got %d", res.Msgs)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	// The same program must yield bit-identical makespans run after run,
	// regardless of goroutine scheduling: this is what makes the figure
	// reproductions stable.
	prog := func(p *Proc) {
		n := p.N()
		next := (p.Rank() + 1) % n
		prev := (p.Rank() - 1 + n) % n
		for round := 0; round < 5; round++ {
			p.Flops(float64(1000 * (p.Rank() + 1)))
			p.Send(next, 9, p.Rank())
			Recv[int](p, prev, 9)
		}
	}
	var first float64
	for trial := 0; trial < 10; trial++ {
		res, err := MustWorld(7, testModel()).Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("trial %d makespan %g != first %g", trial, res.Makespan, first)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	w := MustWorld(3, testModel())
	_, err := w.Run(func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
	if !strings.Contains(err.Error(), "process 1") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error should name process and cause: %v", err)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	w := MustWorld(2, testModel())
	_, err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 5, nil)
		} else {
			p.Recv(0, 6)
		}
	})
	if err == nil {
		t.Fatal("expected tag mismatch to panic")
	}
}

func TestInvalidRankPanics(t *testing.T) {
	w := MustWorld(2, testModel())
	if _, err := w.Run(func(p *Proc) { p.Send(5, 0, nil) }); err == nil {
		t.Error("send to invalid rank should fail")
	}
	w2 := MustWorld(2, testModel())
	if _, err := w2.Run(func(p *Proc) { p.Recv(-1, 0) }); err == nil {
		t.Error("recv from invalid rank should fail")
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, testModel()); err == nil {
		t.Error("NewWorld with n=0 should return an error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWorld with n=0 should panic")
		}
	}()
	MustWorld(0, testModel())
}

func TestIdleOnlyMovesForward(t *testing.T) {
	w := MustWorld(1, testModel())
	res, err := w.Run(func(p *Proc) {
		p.Charge(2)
		p.Idle(1) // in the past: no effect
		p.Idle(3) // future: advances
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3 {
		t.Errorf("makespan = %g, want 3", res.Makespan)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	w := MustWorld(1, testModel())
	if _, err := w.Run(func(p *Proc) { p.Charge(-1) }); err == nil {
		t.Error("negative charge should panic")
	}
}

func TestManyProcsExchange(t *testing.T) {
	// Smoke test at the scale of the paper's largest figure (100 procs).
	const n = 100
	w := MustWorld(n, testModel())
	res, err := w.Run(func(p *Proc) {
		// Everyone sends its rank to everyone else, then sums receipts.
		for k := 1; k < n; k++ {
			p.Send((p.Rank()+k)%n, 11, p.Rank())
		}
		sum := p.Rank()
		for k := 1; k < n; k++ {
			sum += Recv[int](p, (p.Rank()-k+n)%n, 11)
		}
		if sum != n*(n-1)/2 {
			panic("wrong sum")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Msgs != n*(n-1) {
		t.Errorf("msgs = %d, want %d", res.Msgs, n*(n-1))
	}
}
