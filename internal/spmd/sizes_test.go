package spmd

import "testing"

type sizedThing struct{ n int }

func (s sizedThing) VBytes() int { return s.n }

func TestBytesOf(t *testing.T) {
	cases := []struct {
		in   any
		want int
	}{
		{nil, 0},
		{[]byte{1, 2, 3}, 3},
		{[]int32{1, 2}, 8},
		{[]uint32{1}, 4},
		{[]int64{1, 2, 3}, 24},
		{[]int{1}, 8},
		{[]float32{1, 2}, 8},
		{[]float64{1, 2}, 16},
		{[]complex64{1}, 8},
		{[]complex128{1, 2}, 32},
		{[][]float64{{1, 2}, {3}}, 24},
		{[][]complex128{{1}, {2, 3}}, 48},
		{true, 1},
		{int8(1), 1},
		{uint16(1), 2},
		{int32(1), 4},
		{float32(1), 4},
		{int(1), 8},
		{int64(1), 8},
		{float64(1), 8},
		{complex64(1), 8},
		{complex128(1), 16},
		{"abcd", 4},
		{[2]int64{1, 2}, 16},
		{[3]float64{1, 2, 3}, 24},
		{[4]float64{1, 2, 3, 4}, 32},
		{[][3]float64{{1, 2, 3}}, 24},
		{[][4]float64{{1, 2, 3, 4}}, 32},
		{sizedThing{42}, 42},
		{struct{ X int }{1}, 8}, // unknown type: one-word estimate
	}
	for _, tc := range cases {
		if got := BytesOf(tc.in); got != tc.want {
			t.Errorf("BytesOf(%T %v) = %d, want %d", tc.in, tc.in, got, tc.want)
		}
	}
}

// TestSizeKnown: the one-word default is detectable, so coverage tests
// (see payload_sizes_test.go at the repository root) can assert no app
// payload silently falls through to it.
func TestSizeKnown(t *testing.T) {
	if !SizeKnown([]float64{1}) || !SizeKnown(sizedThing{1}) || !SizeKnown(nil) {
		t.Error("explicitly priced types must report SizeKnown")
	}
	if SizeKnown(struct{ X int }{1}) || SizeKnown(map[int]int{}) {
		t.Error("unknown types must not report SizeKnown")
	}
}
