package spmd

// sizedComm is the internal fast-path seam of the typed send layer: a
// communicator that accepts a payload the caller has already priced, so
// the send skips the dynamic BytesOf switch. *Proc and *Group implement
// it; foreign Comm implementations simply take the ordinary Send path.
type sizedComm interface {
	sendSized(dst, tag int, data any, bytes int)
}

// sendFast boxes v exactly once, prices the boxed value through
// BytesOf's explicit table, and hands the pre-priced payload to the
// communicator's sendSized seam, skipping Send's second boxing and
// pricing pass. Unknown types (and foreign Comm implementations) take
// the ordinary Send path; metering is identical either way because both
// paths price through the same table.
func sendFast[T any](c Comm, dst, tag int, v T) {
	data := any(v)
	if sc, ok := c.(sizedComm); ok {
		if n, known := bytesOfKnown(data); known {
			sc.sendSized(dst, tag, data, n)
			return
		}
	}
	c.Send(dst, tag, data)
}

// SendT is the typed send over any communicator: the static counterpart
// of Recv. The payload's wire size is metered automatically, like every
// send. Using SendT (or a Chan) on both ends of a protocol makes a
// payload-type mismatch a compile error instead of a runtime panic in
// Recv.
func SendT[T any](c Comm, dst, tag int, v T) { sendFast(c, dst, tag, v) }

// Chan is a typed, tagged point-to-point link between this process and
// one peer rank of a communicator: the pair (peer, tag) with the payload
// type fixed at construction. Protocols that repeatedly exchange one
// payload type with one partner (halo exchanges, pipeline stages)
// construct their Chans once and can no longer send the wrong type or
// mistype a tag at an individual call site.
type Chan[T any] struct {
	c    Comm
	peer int
	tag  int
}

// NewChan binds a typed channel to the peer rank and tag within c. Both
// endpoints must construct the channel with the same tag and each other's
// rank — the usual SPMD contract.
func NewChan[T any](c Comm, peer, tag int) Chan[T] {
	return Chan[T]{c: c, peer: peer, tag: tag}
}

// Send transmits v to the channel's peer on the typed fast path.
func (ch Chan[T]) Send(v T) { sendFast(ch.c, ch.peer, ch.tag, v) }

// Recv receives the next value from the channel's peer.
func (ch Chan[T]) Recv() T { return Recv[T](ch.c, ch.peer, ch.tag) }
