package spmd

import (
	"strings"
	"testing"
)

func TestGroupRankMapping(t *testing.T) {
	w := MustWorld(6, testModel())
	_, err := w.Run(func(p *Proc) {
		g := NewGroup(p, []int{1, 3, 5, 0, 2, 4}) // unsorted on purpose
		if g.N() != 6 {
			t.Errorf("group N = %d", g.N())
		}
		if g.Rank() != p.Rank() {
			t.Errorf("full-world group rank %d != world rank %d", g.Rank(), p.Rank())
		}
		if g.WorldRank(g.Rank()) != p.Rank() {
			t.Error("WorldRank roundtrip broken")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupSubsetCommunication(t *testing.T) {
	// Odd ranks form a group and ring-pass a token among themselves.
	w := MustWorld(6, testModel())
	_, err := w.Run(func(p *Proc) {
		if p.Rank()%2 == 0 {
			return // not a member; does nothing
		}
		g := NewGroup(p, []int{1, 3, 5})
		next := (g.Rank() + 1) % g.N()
		prev := (g.Rank() - 1 + g.N()) % g.N()
		g.Send(next, 50, g.Rank()*10)
		got := Recv[int](g, prev, 50)
		if got != prev*10 {
			t.Errorf("group rank %d got %d, want %d", g.Rank(), got, prev*10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartition(t *testing.T) {
	w := MustWorld(7, testModel())
	_, err := w.Run(func(p *Proc) {
		g, idx := Partition(p, 3, 4)
		switch {
		case p.Rank() < 3:
			if idx != 0 || g.N() != 3 || g.Rank() != p.Rank() {
				t.Errorf("rank %d: group %d size %d grank %d", p.Rank(), idx, g.N(), g.Rank())
			}
		default:
			if idx != 1 || g.N() != 4 || g.Rank() != p.Rank()-3 {
				t.Errorf("rank %d: group %d size %d grank %d", p.Rank(), idx, g.N(), g.Rank())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionValidation(t *testing.T) {
	w := MustWorld(4, testModel())
	if _, err := w.Run(func(p *Proc) { Partition(p, 2, 3) }); err == nil {
		t.Error("mismatched sizes should panic")
	}
	w2 := MustWorld(4, testModel())
	if _, err := w2.Run(func(p *Proc) { Partition(p, 4, 0) }); err == nil {
		t.Error("zero size should panic")
	}
}

func TestGroupValidation(t *testing.T) {
	w := MustWorld(4, testModel())
	if _, err := w.Run(func(p *Proc) { NewGroup(p, []int{0, 9}) }); err == nil {
		t.Error("out-of-world rank should panic")
	}
	w2 := MustWorld(4, testModel())
	if _, err := w2.Run(func(p *Proc) { NewGroup(p, []int{0, 0, 1, 2, 3}) }); err == nil {
		t.Error("duplicate rank should panic")
	}
	w3 := MustWorld(4, testModel())
	_, err := w3.Run(func(p *Proc) {
		if p.Rank() == 3 {
			NewGroup(p, []int{0, 1, 2}) // 3 is not a member
		}
	})
	if err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Errorf("non-member construction should panic, got %v", err)
	}
}

func TestGroupInheritsMetering(t *testing.T) {
	w := MustWorld(2, testModel())
	res, err := w.Run(func(p *Proc) {
		g := NewGroup(p, []int{0, 1})
		g.Flops(1000) // charges the underlying process clock
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 1000*testModel().FlopTime {
		t.Errorf("makespan = %g", res.Makespan)
	}
}

func TestDisjointGroupsIndependent(t *testing.T) {
	// Two disjoint groups run different-length computations; neither
	// blocks the other, and messages stay within groups.
	w := MustWorld(6, testModel())
	res, err := w.Run(func(p *Proc) {
		g, idx := Partition(p, 3, 3)
		if idx == 0 {
			g.Charge(1e-3)
		} else {
			g.Charge(5e-3)
		}
		// Ring within the group.
		g.Send((g.Rank()+1)%g.N(), 60, idx)
		got := Recv[int](g, (g.Rank()-1+g.N())%g.N(), 60)
		if got != idx {
			t.Errorf("cross-group message leak: got %d in group %d", got, idx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Makespan is the slow group's, not the sum.
	if res.Makespan > 6e-3 {
		t.Errorf("groups appear serialized: makespan %g", res.Makespan)
	}
}
