package spmd

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/backend"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack or the deadline passes, returning the final count.
func waitGoroutines(base, slack int, deadline time.Duration) int {
	limit := time.Now().Add(deadline)
	for runtime.NumGoroutine() > base+slack && time.Now().Before(limit) {
		time.Sleep(5 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

// TestCancelUnblocksReceive: a process blocked forever in Recv unwinds
// when the world's context is cancelled; Run returns ctx.Err() promptly
// and no process goroutine leaks.
func TestCancelUnblocksReceive(t *testing.T) {
	for _, name := range []string{"sim", "real"} {
		r, ok := backend.ByName(name)
		if !ok {
			t.Fatalf("backend %q missing", name)
		}
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		w, err := NewWorldOn(ctx, r, 2, testModel())
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err = w.Run(func(p *Proc) {
			if p.Rank() == 0 {
				p.Recv(1, 1) // rank 1 never sends
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Run after cancel = %v, want context.Canceled", name, err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("%s: cancellation took %v, want prompt", name, d)
		}
		if n := waitGoroutines(before, 1, 2*time.Second); n > before+1 {
			t.Errorf("%s: goroutines leaked after cancel: %d before, %d after", name, before, n)
		}
	}
}

// TestCancelUnblocksSend: inboxes are unbounded so senders never block,
// but a sender still in its send loop when the run is cancelled must
// unwind promptly through the entry check instead of queueing forever
// into a world nobody will drain.
func TestCancelUnblocksSend(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	w, err := NewWorldOn(ctx, backend.Sim(), 2, testModel())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err = w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; ; i++ { // rank 1 never receives: the FIFO fills
				p.Send(1, 1, i)
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
	if n := waitGoroutines(before, 1, 2*time.Second); n > before+1 {
		t.Errorf("goroutines leaked after cancel: %d before, %d after", before, n)
	}
}

// TestPreCancelledContext: a world whose context is already cancelled
// refuses to run.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := NewWorldOn(ctx, backend.Sim(), 2, testModel())
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if _, err := w.Run(func(p *Proc) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("body ran under a cancelled context")
	}
}

// TestNewWorldOnValidation: constructor misuse returns errors, not panics.
func TestNewWorldOnValidation(t *testing.T) {
	if _, err := NewWorldOn(context.Background(), nil, 2, testModel()); err == nil {
		t.Error("nil runner should return an error")
	}
	if _, err := NewWorldOn(context.Background(), backend.Sim(), -3, testModel()); err == nil {
		t.Error("negative world size should return an error")
	}
}

// TestTypedChan: the typed channel endpoints carry values with automatic
// byte metering identical to a plain send.
func TestTypedChan(t *testing.T) {
	res, err := MustWorld(2, testModel()).Run(func(p *Proc) {
		peer := 1 - p.Rank()
		ch := NewChan[[]float64](p, peer, 42)
		if p.Rank() == 0 {
			ch.Send([]float64{1, 2, 3})
		} else {
			got := ch.Recv()
			if len(got) != 3 || got[2] != 3 {
				panic("typed chan payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Msgs != 1 || res.Bytes != 24 {
		t.Errorf("stats = %d msgs %d bytes, want 1/24 (BytesOf-metered)", res.Msgs, res.Bytes)
	}
}

// TestSendTMetersLikeSend: SendT and Send are the same wire operation.
func TestSendTMetersLikeSend(t *testing.T) {
	run := func(body func(p *Proc)) *Result {
		res, err := MustWorld(2, testModel()).Run(body)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(func(p *Proc) {
		if p.Rank() == 0 {
			SendT(p, 1, 7, []int32{1, 2, 3, 4})
		} else {
			Recv[[]int32](p, 0, 7)
		}
	})
	b := run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, []int32{1, 2, 3, 4})
		} else {
			Recv[[]int32](p, 0, 7)
		}
	})
	if a.Makespan != b.Makespan || a.Bytes != b.Bytes || a.Msgs != b.Msgs {
		t.Errorf("SendT run %+v differs from Send run %+v", a, b)
	}
}
