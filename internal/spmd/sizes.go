package spmd

// Sized is implemented by application payload types that know their own
// wire size for cost accounting.
type Sized interface {
	VBytes() int
}

// BytesOf estimates the wire size of common payload types for cost
// accounting. Types not covered here should implement Sized. Unknown types
// are priced at one word, which under-counts — implement Sized for any
// payload whose size matters to an experiment.
func BytesOf(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case Sized:
		return x.VBytes()
	case []byte:
		return len(x)
	case []int32:
		return 4 * len(x)
	case []uint32:
		return 4 * len(x)
	case []int64:
		return 8 * len(x)
	case []int:
		return 8 * len(x)
	case []float32:
		return 4 * len(x)
	case []float64:
		return 8 * len(x)
	case []complex64:
		return 8 * len(x)
	case []complex128:
		return 16 * len(x)
	case [][]float64:
		n := 0
		for _, row := range x {
			n += 8 * len(row)
		}
		return n
	case [][3]float64:
		return 24 * len(x)
	case [][4]float64:
		return 32 * len(x)
	case [][]complex128:
		n := 0
		for _, row := range x {
			n += 16 * len(row)
		}
		return n
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, int64, uint64, float64, uintptr:
		return 8
	case complex64:
		return 8
	case complex128:
		return 16
	case string:
		return len(x)
	default:
		return 8
	}
}
