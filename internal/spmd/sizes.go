package spmd

// Sized is implemented by application payload types that know their own
// wire size for cost accounting. Implement VBytes with a value receiver:
// payloads travel by value, so a pointer-receiver VBytes would be
// invisible to BytesOf (the boxed value would not implement Sized and
// would silently price at one word).
type Sized interface {
	VBytes() int
}

// BytesOf estimates the wire size of common payload types for cost
// accounting. Types not covered here should implement Sized.
//
// Unknown types are priced at one word. That default is silent and
// under-counts anything bigger than a scalar, so it is a trap for new
// payload types: payload_sizes_test.go (repository root) asserts that
// every payload type the registered apps actually put on the wire hits
// an explicit case below or implements Sized, which keeps the default
// from ever pricing real traffic.
func BytesOf(v any) int {
	if n, ok := bytesOfKnown(v); ok {
		return n
	}
	return 8
}

// bytesOfKnown is BytesOf without the one-word fallback: it reports
// whether the payload type is explicitly priced (including via Sized).
func bytesOfKnown(v any) (int, bool) {
	switch x := v.(type) {
	case nil:
		return 0, true
	case Sized:
		return x.VBytes(), true
	case []byte:
		return len(x), true
	case []int32:
		return 4 * len(x), true
	case []uint32:
		return 4 * len(x), true
	case []int64:
		return 8 * len(x), true
	case []int:
		return 8 * len(x), true
	case []float32:
		return 4 * len(x), true
	case []float64:
		return 8 * len(x), true
	case []complex64:
		return 8 * len(x), true
	case []complex128:
		return 16 * len(x), true
	case [][]float64:
		n := 0
		for _, row := range x {
			n += 8 * len(row)
		}
		return n, true
	case [][3]float64:
		return 24 * len(x), true
	case [][4]float64:
		return 32 * len(x), true
	case [][]complex128:
		n := 0
		for _, row := range x {
			n += 16 * len(row)
		}
		return n, true
	case bool, int8, uint8:
		return 1, true
	case int16, uint16:
		return 2, true
	case int32, uint32, float32:
		return 4, true
	case int, int64, uint64, float64, uintptr:
		return 8, true
	case complex64:
		return 8, true
	case complex128:
		return 16, true
	case [2]int64:
		return 16, true
	case [3]float64:
		return 24, true
	case [4]float64:
		return 32, true
	case string:
		return len(x), true
	default:
		return 0, false
	}
}

// SizeKnown reports whether BytesOf prices v explicitly — through a
// dedicated case or the Sized interface — rather than through the silent
// one-word default. Tests use it to assert that every payload type the
// apps actually send is priced deliberately.
func SizeKnown(v any) bool {
	_, ok := bytesOfKnown(v)
	return ok
}
