package spmd

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// This file is the wire codec seam beside sendSized: transports whose
// ranks do not share an address space (backend/dist) cannot hand payload
// values across a channel, so they serialize them with AppendPayload and
// reconstruct them with DecodePayload. The codec covers exactly the
// payload vocabulary the pricing table covers — every type BytesOf prices
// explicitly has a dedicated fast case below, and Sized application types
// (structs of exported scalar/slice fields, including generic wrappers
// like collective's partial[T]) go through a reflection fallback — so any
// payload that is priced deliberately also crosses process boundaries
// faithfully. Metering is untouched by encoding: the priced byte count
// travels beside the encoded payload in the transport's frame header, so
// message/byte meters are identical to the in-process backends.
//
// The encoding is self-describing for the table types (one kind byte,
// then fixed-width little-endian data). Fallback types are tagged with an
// identifier from a process-local type registry, which makes the fallback
// decodable only by the process that encoded it. That is exactly the dist
// backend's shape — the coordinator encodes on Send and decodes on Recv
// while worker processes forward opaque bytes — and it is what lets the
// codec handle unexported generic types that no cross-process registry
// could name.

// Wire kind bytes. The numeric values are part of no on-disk format and
// may change freely; both codec ends always run the same build.
const (
	wNil byte = iota
	wBool
	wInt8
	wInt16
	wInt32
	wInt64
	wInt
	wUint8
	wUint16
	wUint32
	wUint64
	wUintptr
	wFloat32
	wFloat64
	wComplex64
	wComplex128
	wString
	wBytes
	wInt32s
	wUint32s
	wInt64s
	wInts
	wFloat32s
	wFloat64s
	wComplex64s
	wComplex128s
	wFloat64ss
	wComplex128ss
	wVec3s // [][3]float64
	wVec4s // [][4]float64
	wPair64
	wVec3
	wVec4
	wReflect
)

func appendUvarint(buf []byte, n uint64) []byte {
	return binary.AppendUvarint(buf, n)
}

// appendSliceLen encodes a slice length with the nil distinction: 0 means
// nil, k+1 means a (possibly empty) slice of length k. DeepEqual-grade
// parity across backends needs nil and empty to survive the round trip.
func appendSliceLen(buf []byte, n int, isNil bool) []byte {
	if isNil {
		return appendUvarint(buf, 0)
	}
	return appendUvarint(buf, uint64(n)+1)
}

func appendU16(buf []byte, v uint16) []byte  { return binary.LittleEndian.AppendUint16(buf, v) }
func appendU32(buf []byte, v uint32) []byte  { return binary.LittleEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(buf, v) }
func appendF32(buf []byte, v float32) []byte { return appendU32(buf, math.Float32bits(v)) }
func appendF64(buf []byte, v float64) []byte { return appendU64(buf, math.Float64bits(v)) }

func appendC64(buf []byte, v complex64) []byte {
	return appendF32(appendF32(buf, real(v)), imag(v))
}

func appendC128(buf []byte, v complex128) []byte {
	return appendF64(appendF64(buf, real(v)), imag(v))
}

// AppendPayload appends the wire encoding of payload v to buf and returns
// the extended buffer. It errors on payload types outside the codec's
// vocabulary (anything BytesOf would price by its silent default plus
// types the reflection fallback cannot faithfully rebuild: pointers,
// maps, channels, funcs, interfaces, structs with unexported fields).
func AppendPayload(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, wNil), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, wBool, b), nil
	case int8:
		return append(buf, wInt8, byte(x)), nil
	case int16:
		return appendU16(append(buf, wInt16), uint16(x)), nil
	case int32:
		return appendU32(append(buf, wInt32), uint32(x)), nil
	case int64:
		return appendU64(append(buf, wInt64), uint64(x)), nil
	case int:
		return appendU64(append(buf, wInt), uint64(x)), nil
	case uint8:
		return append(buf, wUint8, x), nil
	case uint16:
		return appendU16(append(buf, wUint16), x), nil
	case uint32:
		return appendU32(append(buf, wUint32), x), nil
	case uint64:
		return appendU64(append(buf, wUint64), x), nil
	case uintptr:
		return appendU64(append(buf, wUintptr), uint64(x)), nil
	case float32:
		return appendF32(append(buf, wFloat32), x), nil
	case float64:
		return appendF64(append(buf, wFloat64), x), nil
	case complex64:
		return appendC64(append(buf, wComplex64), x), nil
	case complex128:
		return appendC128(append(buf, wComplex128), x), nil
	case string:
		buf = appendUvarint(append(buf, wString), uint64(len(x)))
		return append(buf, x...), nil
	case []byte:
		buf = appendSliceLen(append(buf, wBytes), len(x), x == nil)
		return append(buf, x...), nil
	case []int32:
		buf = appendSliceLen(append(buf, wInt32s), len(x), x == nil)
		for _, e := range x {
			buf = appendU32(buf, uint32(e))
		}
		return buf, nil
	case []uint32:
		buf = appendSliceLen(append(buf, wUint32s), len(x), x == nil)
		for _, e := range x {
			buf = appendU32(buf, e)
		}
		return buf, nil
	case []int64:
		buf = appendSliceLen(append(buf, wInt64s), len(x), x == nil)
		for _, e := range x {
			buf = appendU64(buf, uint64(e))
		}
		return buf, nil
	case []int:
		buf = appendSliceLen(append(buf, wInts), len(x), x == nil)
		for _, e := range x {
			buf = appendU64(buf, uint64(e))
		}
		return buf, nil
	case []float32:
		buf = appendSliceLen(append(buf, wFloat32s), len(x), x == nil)
		for _, e := range x {
			buf = appendF32(buf, e)
		}
		return buf, nil
	case []float64:
		buf = appendSliceLen(append(buf, wFloat64s), len(x), x == nil)
		for _, e := range x {
			buf = appendF64(buf, e)
		}
		return buf, nil
	case []complex64:
		buf = appendSliceLen(append(buf, wComplex64s), len(x), x == nil)
		for _, e := range x {
			buf = appendC64(buf, e)
		}
		return buf, nil
	case []complex128:
		buf = appendSliceLen(append(buf, wComplex128s), len(x), x == nil)
		for _, e := range x {
			buf = appendC128(buf, e)
		}
		return buf, nil
	case [][]float64:
		buf = appendSliceLen(append(buf, wFloat64ss), len(x), x == nil)
		for _, row := range x {
			buf = appendSliceLen(buf, len(row), row == nil)
			for _, e := range row {
				buf = appendF64(buf, e)
			}
		}
		return buf, nil
	case [][]complex128:
		buf = appendSliceLen(append(buf, wComplex128ss), len(x), x == nil)
		for _, row := range x {
			buf = appendSliceLen(buf, len(row), row == nil)
			for _, e := range row {
				buf = appendC128(buf, e)
			}
		}
		return buf, nil
	case [][3]float64:
		buf = appendSliceLen(append(buf, wVec3s), len(x), x == nil)
		for _, e := range x {
			buf = appendF64(appendF64(appendF64(buf, e[0]), e[1]), e[2])
		}
		return buf, nil
	case [][4]float64:
		buf = appendSliceLen(append(buf, wVec4s), len(x), x == nil)
		for _, e := range x {
			buf = appendF64(appendF64(appendF64(appendF64(buf, e[0]), e[1]), e[2]), e[3])
		}
		return buf, nil
	case [2]int64:
		return appendU64(appendU64(append(buf, wPair64), uint64(x[0])), uint64(x[1])), nil
	case [3]float64:
		return appendF64(appendF64(appendF64(append(buf, wVec3), x[0]), x[1]), x[2]), nil
	case [4]float64:
		return appendF64(appendF64(appendF64(appendF64(append(buf, wVec4), x[0]), x[1]), x[2]), x[3]), nil
	default:
		return appendReflect(buf, v)
	}
}

// wireTypes is the process-local registry backing the reflection
// fallback: encode interns the payload's reflect.Type and ships the
// identifier; decode resolves the identifier back. Identifiers are only
// meaningful within the process that assigned them (see the file
// comment).
var wireTypes struct {
	mu     sync.RWMutex
	byType map[reflect.Type]uint64
	types  []reflect.Type
}

func wireTypeID(t reflect.Type) uint64 {
	wireTypes.mu.RLock()
	id, ok := wireTypes.byType[t]
	wireTypes.mu.RUnlock()
	if ok {
		return id
	}
	wireTypes.mu.Lock()
	defer wireTypes.mu.Unlock()
	if id, ok := wireTypes.byType[t]; ok {
		return id
	}
	if wireTypes.byType == nil {
		wireTypes.byType = map[reflect.Type]uint64{}
	}
	id = uint64(len(wireTypes.types))
	wireTypes.types = append(wireTypes.types, t)
	wireTypes.byType[t] = id
	return id
}

func wireTypeByID(id uint64) (reflect.Type, bool) {
	wireTypes.mu.RLock()
	defer wireTypes.mu.RUnlock()
	if id >= uint64(len(wireTypes.types)) {
		return nil, false
	}
	return wireTypes.types[id], true
}

func appendReflect(buf []byte, v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if err := checkWireable(rv.Type()); err != nil {
		return nil, fmt.Errorf("spmd: unencodable payload %T: %w", v, err)
	}
	buf = appendUvarint(append(buf, wReflect), wireTypeID(rv.Type()))
	return appendReflectValue(buf, rv), nil
}

// checkWireable validates a fallback payload type up front so encoding
// never half-writes: every reachable field must be an exported
// scalar/string/slice/array/struct.
func checkWireable(t reflect.Type) error {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return nil
	case reflect.Slice, reflect.Array:
		return checkWireable(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("struct %s has unexported field %s", t, f.Name)
			}
			if err := checkWireable(f.Type); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("kind %s is not wireable", t.Kind())
	}
}

func appendReflectValue(buf []byte, rv reflect.Value) []byte {
	switch rv.Kind() {
	case reflect.Bool:
		b := byte(0)
		if rv.Bool() {
			b = 1
		}
		return append(buf, b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return appendU64(buf, uint64(rv.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return appendU64(buf, rv.Uint())
	case reflect.Float32:
		return appendF32(buf, float32(rv.Float()))
	case reflect.Float64:
		return appendF64(buf, rv.Float())
	case reflect.Complex64:
		return appendC64(buf, complex64(rv.Complex()))
	case reflect.Complex128:
		return appendC128(buf, rv.Complex())
	case reflect.String:
		s := rv.String()
		buf = appendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case reflect.Slice:
		buf = appendSliceLen(buf, rv.Len(), rv.IsNil())
		for i := 0; i < rv.Len(); i++ {
			buf = appendReflectValue(buf, rv.Index(i))
		}
		return buf
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			buf = appendReflectValue(buf, rv.Index(i))
		}
		return buf
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			buf = appendReflectValue(buf, rv.Field(i))
		}
		return buf
	default:
		// checkWireable rejected these before any byte was written.
		panic(fmt.Sprintf("spmd: unreachable wire kind %s", rv.Kind()))
	}
}

// decoder walks an encoded payload; all take methods error (via the err
// field, checked once at the end) on truncated input instead of panicking
// so a corrupt frame surfaces as an error, not a crash.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("spmd: truncated payload at offset %d", d.off)
	}
}

func (d *decoder) take(n int) []byte {
	// n > len-off (not off+n > len) so a corrupt huge length cannot
	// overflow the addition into a passing check; n < 0 rejects lengths
	// that overflowed an int conversion upstream.
	if d.err != nil || n < 0 || n > len(d.b)-d.off {
		d.fail()
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) byte() byte {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// sliceLen undoes appendSliceLen: (length, isNil).
func (d *decoder) sliceLen() (int, bool) {
	v := d.uvarint()
	if v == 0 {
		return 0, true
	}
	// Guard against corrupt lengths pre-allocating absurd slices (or
	// overflowing the int conversion into a negative length): a length
	// cannot exceed the remaining bytes, compared in uint64 space so a
	// huge uvarint cannot slip through.
	if v-1 > uint64(len(d.b)-d.off) {
		d.fail()
		return 0, true
	}
	return int(v - 1), false
}

func (d *decoder) u16() uint16 {
	if s := d.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (d *decoder) u32() uint32 {
	if s := d.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (d *decoder) u64() uint64 {
	if s := d.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (d *decoder) f32() float32 { return math.Float32frombits(d.u32()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) c64() complex64 {
	re := d.f32()
	return complex(re, d.f32())
}
func (d *decoder) c128() complex128 {
	re := d.f64()
	return complex(re, d.f64())
}

// DecodePayload decodes one payload produced by AppendPayload from the
// front of b, returning the value and the number of bytes consumed.
// Payloads that used the reflection fallback are only decodable in the
// process that encoded them (the dist coordinator encodes and decodes at
// the same end, see the file comment).
func DecodePayload(b []byte) (any, int, error) {
	d := &decoder{b: b}
	v := d.value()
	if d.err != nil {
		return nil, 0, d.err
	}
	return v, d.off, nil
}

func (d *decoder) value() any {
	switch kind := d.byte(); kind {
	case wNil:
		return nil
	case wBool:
		return d.byte() != 0
	case wInt8:
		return int8(d.byte())
	case wInt16:
		return int16(d.u16())
	case wInt32:
		return int32(d.u32())
	case wInt64:
		return int64(d.u64())
	case wInt:
		return int(d.u64())
	case wUint8:
		return d.byte()
	case wUint16:
		return d.u16()
	case wUint32:
		return d.u32()
	case wUint64:
		return d.u64()
	case wUintptr:
		return uintptr(d.u64())
	case wFloat32:
		return d.f32()
	case wFloat64:
		return d.f64()
	case wComplex64:
		return d.c64()
	case wComplex128:
		return d.c128()
	case wString:
		return string(d.take(int(d.uvarint())))
	case wBytes:
		n, isNil := d.sliceLen()
		if isNil {
			return []byte(nil)
		}
		out := make([]byte, n)
		copy(out, d.take(n))
		return out
	case wInt32s:
		n, isNil := d.sliceLen()
		if isNil {
			return []int32(nil)
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(d.u32())
		}
		return out
	case wUint32s:
		n, isNil := d.sliceLen()
		if isNil {
			return []uint32(nil)
		}
		out := make([]uint32, n)
		for i := range out {
			out[i] = d.u32()
		}
		return out
	case wInt64s:
		n, isNil := d.sliceLen()
		if isNil {
			return []int64(nil)
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(d.u64())
		}
		return out
	case wInts:
		n, isNil := d.sliceLen()
		if isNil {
			return []int(nil)
		}
		out := make([]int, n)
		for i := range out {
			out[i] = int(d.u64())
		}
		return out
	case wFloat32s:
		n, isNil := d.sliceLen()
		if isNil {
			return []float32(nil)
		}
		out := make([]float32, n)
		for i := range out {
			out[i] = d.f32()
		}
		return out
	case wFloat64s:
		n, isNil := d.sliceLen()
		if isNil {
			return []float64(nil)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = d.f64()
		}
		return out
	case wComplex64s:
		n, isNil := d.sliceLen()
		if isNil {
			return []complex64(nil)
		}
		out := make([]complex64, n)
		for i := range out {
			out[i] = d.c64()
		}
		return out
	case wComplex128s:
		n, isNil := d.sliceLen()
		if isNil {
			return []complex128(nil)
		}
		out := make([]complex128, n)
		for i := range out {
			out[i] = d.c128()
		}
		return out
	case wFloat64ss:
		n, isNil := d.sliceLen()
		if isNil {
			return [][]float64(nil)
		}
		out := make([][]float64, n)
		for i := range out {
			rn, rowNil := d.sliceLen()
			if rowNil {
				continue
			}
			row := make([]float64, rn)
			for j := range row {
				row[j] = d.f64()
			}
			out[i] = row
		}
		return out
	case wComplex128ss:
		n, isNil := d.sliceLen()
		if isNil {
			return [][]complex128(nil)
		}
		out := make([][]complex128, n)
		for i := range out {
			rn, rowNil := d.sliceLen()
			if rowNil {
				continue
			}
			row := make([]complex128, rn)
			for j := range row {
				row[j] = d.c128()
			}
			out[i] = row
		}
		return out
	case wVec3s:
		n, isNil := d.sliceLen()
		if isNil {
			return [][3]float64(nil)
		}
		out := make([][3]float64, n)
		for i := range out {
			out[i] = [3]float64{d.f64(), d.f64(), d.f64()}
		}
		return out
	case wVec4s:
		n, isNil := d.sliceLen()
		if isNil {
			return [][4]float64(nil)
		}
		out := make([][4]float64, n)
		for i := range out {
			out[i] = [4]float64{d.f64(), d.f64(), d.f64(), d.f64()}
		}
		return out
	case wPair64:
		return [2]int64{int64(d.u64()), int64(d.u64())}
	case wVec3:
		return [3]float64{d.f64(), d.f64(), d.f64()}
	case wVec4:
		return [4]float64{d.f64(), d.f64(), d.f64(), d.f64()}
	case wReflect:
		id := d.uvarint()
		if d.err != nil {
			return nil
		}
		t, ok := wireTypeByID(id)
		if !ok {
			d.err = fmt.Errorf("spmd: unknown wire type id %d (fallback payloads decode only in the encoding process)", id)
			return nil
		}
		rv := reflect.New(t).Elem()
		d.reflectValue(rv)
		return rv.Interface()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("spmd: unknown wire kind %d", kind)
		}
		return nil
	}
}

func (d *decoder) reflectValue(rv reflect.Value) {
	if d.err != nil {
		return
	}
	switch rv.Kind() {
	case reflect.Bool:
		rv.SetBool(d.byte() != 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		rv.SetInt(int64(d.u64()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		rv.SetUint(d.u64())
	case reflect.Float32, reflect.Float64:
		rv.SetFloat(d.f64ForKind(rv.Kind()))
	case reflect.Complex64:
		rv.SetComplex(complex128(d.c64()))
	case reflect.Complex128:
		rv.SetComplex(d.c128())
	case reflect.String:
		rv.SetString(string(d.take(int(d.uvarint()))))
	case reflect.Slice:
		n, isNil := d.sliceLen()
		if isNil {
			return
		}
		s := reflect.MakeSlice(rv.Type(), n, n)
		for i := 0; i < n; i++ {
			d.reflectValue(s.Index(i))
		}
		rv.Set(s)
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			d.reflectValue(rv.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			d.reflectValue(rv.Field(i))
		}
	default:
		d.err = fmt.Errorf("spmd: undecodable wire kind %s", rv.Kind())
	}
}

func (d *decoder) f64ForKind(k reflect.Kind) float64 {
	if k == reflect.Float32 {
		return float64(d.f32())
	}
	return d.f64()
}
