package spmd

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// sizedVec mimics the apps' Sized wrapper payloads (collective's
// partial[T], meshspectral's subBlock[T]): a generic struct of exported
// header fields plus an inner payload, priced via BytesOf.
type sizedVec[T any] struct {
	MinRank int
	Data    []T
}

func (s sizedVec[T]) VBytes() int { return 8 + BytesOf(s.Data) }

type unexportedField struct {
	A int
	b int //nolint:unused // exists to be rejected by the codec
}

func (unexportedField) VBytes() int { return 16 }

// TestWireRoundTrip pins the codec contract the dist backend relies on:
// every payload type BytesOf prices explicitly survives
// AppendPayload/DecodePayload with reflect.DeepEqual identity (including
// the nil/empty slice distinction) and unchanged BytesOf pricing.
func TestWireRoundTrip(t *testing.T) {
	payloads := []any{
		nil,
		true, false,
		int8(-5), int16(-300), int32(-70000), int64(-1 << 40), int(42),
		uint8(5), uint16(300), uint32(70000), uint64(1 << 40), uintptr(7),
		float32(1.5), float64(math.Pi), math.NaN(), math.Inf(-1),
		complex64(complex(1, -2)), complex(3.5, -4.5),
		"", "hello",
		[]byte(nil), []byte{}, []byte{1, 2, 3},
		[]int32(nil), []int32{}, []int32{-1, 0, 1 << 30},
		[]uint32{0, 1, math.MaxUint32},
		[]int64{-1 << 60, 1 << 60}, []int{1, 2, 3},
		[]float32{1.25, -2.5}, []float64(nil), []float64{0.1, 0.2, math.NaN()},
		[]complex64{complex(1, 2)}, []complex128(nil), []complex128{complex(0.5, -0.5)},
		[][]float64(nil), [][]float64{{1, 2}, nil, {}},
		[][]complex128{{complex(1, 1)}, nil},
		[][3]float64{{1, 2, 3}, {4, 5, 6}},
		[][4]float64{{1, 2, 3, 4}},
		[2]int64{3, -4},
		[3]float64{1.5, 2.5, 3.5},
		[4]float64{1, 2, 3, 4},
		sizedVec[float64]{MinRank: 3, Data: []float64{1.5, -2.5}},
		sizedVec[int32]{MinRank: 1, Data: nil},
	}
	for _, v := range payloads {
		buf, err := AppendPayload(nil, v)
		if err != nil {
			t.Fatalf("AppendPayload(%T %v): %v", v, v, err)
		}
		got, n, err := DecodePayload(buf)
		if err != nil {
			t.Fatalf("DecodePayload(%T %v): %v", v, v, err)
		}
		if n != len(buf) {
			t.Errorf("DecodePayload(%T): consumed %d of %d bytes", v, n, len(buf))
		}
		if !deepEqualNaN(got, v) {
			t.Errorf("round trip of %T: got %#v, want %#v", v, got, v)
		}
		if BytesOf(got) != BytesOf(v) {
			t.Errorf("round trip of %T changed pricing: %d != %d", v, BytesOf(got), BytesOf(v))
		}
	}
}

// deepEqualNaN is reflect.DeepEqual except NaN floats compare equal by
// bit pattern (the codec must preserve them; DeepEqual would reject).
func deepEqualNaN(a, b any) bool {
	if f, ok := a.(float64); ok {
		g, ok2 := b.(float64)
		return ok2 && math.Float64bits(f) == math.Float64bits(g)
	}
	if fs, ok := a.([]float64); ok {
		gs, ok2 := b.([]float64)
		if !ok2 || len(fs) != len(gs) || (fs == nil) != (gs == nil) {
			return false
		}
		for i := range fs {
			if math.Float64bits(fs[i]) != math.Float64bits(gs[i]) {
				return false
			}
		}
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestWireRejectsUnencodable pins the failure mode: payloads the codec
// cannot rebuild faithfully error instead of half-encoding.
func TestWireRejectsUnencodable(t *testing.T) {
	for _, v := range []any{
		map[string]int{"a": 1},
		make(chan int),
		func() {},
		&struct{ A int }{1},
		unexportedField{A: 1},
	} {
		if _, err := AppendPayload(nil, v); err == nil {
			t.Errorf("AppendPayload(%T): want error, got nil", v)
		}
	}
}

// TestWireTruncated pins that corrupt frames surface as errors, not
// panics or giant allocations.
func TestWireTruncated(t *testing.T) {
	buf, err := AppendPayload(nil, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodePayload(buf[:cut]); err == nil {
			t.Errorf("DecodePayload of %d/%d bytes: want error", cut, len(buf))
		}
	}
	if _, _, err := DecodePayload([]byte{255}); err == nil {
		t.Error("unknown kind byte: want error")
	}
	// Forged huge lengths must fail cleanly, not overflow the int
	// conversion into a panic or a giant allocation (the dist
	// coordinator decodes frames that crossed the network).
	huge := binary.AppendUvarint(nil, 1<<62)
	for _, kind := range []byte{wString, wBytes, wFloat64s, wReflect} {
		if _, _, err := DecodePayload(append([]byte{kind}, huge...)); err == nil {
			t.Errorf("kind %d with huge length: want error", kind)
		}
	}
}

// TestWireSizedTypesDecodeInProcess documents the fallback's scope: the
// decoder resolves type identifiers from the process-local registry, so
// a value encoded here decodes here (the dist coordinator's shape).
func TestWireSizedTypesDecodeInProcess(t *testing.T) {
	v := sizedVec[complex128]{MinRank: 2, Data: []complex128{complex(1, -1)}}
	buf, err := AppendPayload(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Errorf("got %#v, want %#v", got, v)
	}
	if got.(sizedVec[complex128]).Data[0] != complex(1, -1) {
		t.Error("typed access after decode failed")
	}
}
