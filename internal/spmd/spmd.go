// Package spmd provides the SPMD (single-program multiple-data) process
// runtime on which archetype programs execute.
//
// A World runs N logical processes, one goroutine each, connected by
// dedicated FIFO channels — the "multicomputer" of the paper. Every process
// carries a virtual clock advanced by explicit compute charges and by
// message-passing costs taken from a machine.Model, so the same program
// yields deterministic makespans for any process count regardless of how
// the host schedules goroutines. The paper's speedup figures (6, 12, 15,
// 16, 17, 18) are regenerated from these virtual makespans.
//
// Programs written against Proc are ordinary Go: they really compute their
// results (sorts really sort, solvers really solve); the virtual clock is
// bookkeeping layered on top.
package spmd

import (
	"fmt"
	"sync"

	"repro/internal/machine"
)

// pairBuffer is the per-(src,dst) channel capacity. Archetype communication
// patterns (collectives, boundary exchange, all-to-all) keep at most a
// handful of outstanding messages per ordered pair; the buffer merely lets
// everyone complete a send phase before the matching receive phase begins.
const pairBuffer = 32

type message struct {
	tag   int
	data  any
	bytes int
	// avail is the virtual time at which the message is available at the
	// receiver (sender clock after send overhead, plus latency and
	// serialization time).
	avail float64
}

// World is a set of N communicating processes plus the machine model that
// prices their communication and computation.
type World struct {
	n     int
	model *machine.Model
	// mail[src*n+dst] is the FIFO channel from src to dst.
	mail []chan message

	mu         sync.Mutex
	totalMsgs  int64
	totalBytes int64
}

// NewWorld creates a world of n processes over the given machine model.
// It panics on an invalid model or non-positive n: both are programming
// errors, not runtime conditions.
func NewWorld(n int, m *machine.Model) *World {
	if n <= 0 {
		panic(fmt.Sprintf("spmd: world size must be positive, got %d", n))
	}
	if err := m.Validate(); err != nil {
		panic("spmd: " + err.Error())
	}
	w := &World{n: n, model: m, mail: make([]chan message, n*n)}
	for i := range w.mail {
		w.mail[i] = make(chan message, pairBuffer)
	}
	return w
}

// N returns the number of processes in the world.
func (w *World) N() int { return w.n }

// Model returns the world's machine model.
func (w *World) Model() *machine.Model { return w.model }

// Result summarizes one SPMD run.
type Result struct {
	// Makespan is the maximum final virtual clock across processes: the
	// simulated parallel execution time.
	Makespan float64
	// Clocks holds every process's final virtual clock.
	Clocks []float64
	// Msgs and Bytes count all point-to-point messages sent (self-sends
	// excluded).
	Msgs  int64
	Bytes int64
}

// Run executes body on every process concurrently and waits for all of
// them. A panic in any process is recovered and returned as an error
// naming the process; the remaining processes are not cancelled (they
// either finish or would deadlock — tests rely on `go test` timeouts for
// the latter, which indicates a protocol bug).
func (w *World) Run(body func(p *Proc)) (*Result, error) {
	procs := make([]*Proc, w.n)
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for rank := 0; rank < w.n; rank++ {
		p := &Proc{world: w, rank: rank}
		procs[rank] = p
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[p.rank] = fmt.Errorf("spmd: process %d panicked: %v", p.rank, r)
				}
			}()
			body(p)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Clocks: make([]float64, w.n)}
	for i, p := range procs {
		res.Clocks[i] = p.clock
		if p.clock > res.Makespan {
			res.Makespan = p.clock
		}
	}
	w.mu.Lock()
	res.Msgs, res.Bytes = w.totalMsgs, w.totalBytes
	w.mu.Unlock()
	return res, nil
}

// Proc is one logical process of an SPMD computation. Methods on Proc must
// only be called from the goroutine running that process.
type Proc struct {
	world *World
	rank  int

	clock    float64
	resident float64 // bytes declared resident, for the paging model

	msgs  int64
	bytes int64
}

// Rank returns this process's index in [0, N).
func (p *Proc) Rank() int { return p.rank }

// N returns the number of processes in the world.
func (p *Proc) N() int { return p.world.n }

// Model returns the machine model pricing this process's work.
func (p *Proc) Model() *machine.Model { return p.world.model }

// Clock returns the process's current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// pagingFactor is the compute-cost multiplier implied by the current
// resident-set declaration.
func (p *Proc) pagingFactor() float64 {
	m := p.world.model
	if m.MemPerProc > 0 && p.resident > m.MemPerProc {
		return m.PagingFactor
	}
	return 1
}

// SetResident declares the process's resident data size in bytes. When the
// machine model has a memory capacity and the declaration exceeds it, all
// subsequent compute charges are multiplied by the model's PagingFactor.
// This implements the paper's Figure 18 paging explanation.
func (p *Proc) SetResident(bytes float64) { p.resident = bytes }

// Charge advances the virtual clock by sec seconds of computation,
// subject to the paging multiplier.
func (p *Proc) Charge(sec float64) {
	if sec < 0 {
		panic(fmt.Sprintf("spmd: negative charge %g on process %d", sec, p.rank))
	}
	p.clock += sec * p.pagingFactor()
}

// Flops charges n floating-point operations.
func (p *Proc) Flops(n float64) { p.Charge(n * p.world.model.FlopTime) }

// Cmps charges n comparison/exchange steps (sorting workloads).
func (p *Proc) Cmps(n float64) { p.Charge(n * p.world.model.CmpTime) }

// MemWords charges n words of pure data movement (pack/unpack/copy).
func (p *Proc) MemWords(n float64) { p.Charge(n * p.world.model.MemTime) }

// Idle advances the clock to at least t (used by receives; exported for
// cost-model extensions such as modelling I/O devices).
func (p *Proc) Idle(t float64) {
	if t > p.clock {
		p.clock = t
	}
}

// Send transmits data to process dst. bytes is the payload size used for
// cost accounting (see Bytes helpers). tag is a protocol check: the
// matching Recv must ask for the same tag. Send to self is a memory copy:
// it costs copy time but no latency, and is delivered through the same
// FIFO so program structure is uniform.
func (p *Proc) Send(dst, tag int, data any, bytes int) {
	w := p.world
	if dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("spmd: process %d sent to invalid rank %d (world size %d)", p.rank, dst, w.n))
	}
	m := w.model
	if dst == p.rank {
		p.MemWords(float64(bytes) / 8)
		w.mail[p.rank*w.n+dst] <- message{tag: tag, data: data, bytes: bytes, avail: p.clock}
		return
	}
	p.clock += m.SendOverhead
	avail := p.clock + m.Latency + float64(bytes)/m.Bandwidth
	p.msgs++
	p.bytes += int64(bytes)
	w.mu.Lock()
	w.totalMsgs++
	w.totalBytes += int64(bytes)
	w.mu.Unlock()
	w.mail[p.rank*w.n+dst] <- message{tag: tag, data: data, bytes: bytes, avail: avail}
}

// Recv receives the next message from src, which must carry the given tag
// (tags are order checks over the per-pair FIFO, not a matching mechanism;
// a mismatch means the program's communication protocol is broken and
// panics). The virtual clock advances to the message's availability time
// plus receive overhead.
func (p *Proc) Recv(src, tag int) any {
	w := p.world
	if src < 0 || src >= w.n {
		panic(fmt.Sprintf("spmd: process %d received from invalid rank %d (world size %d)", p.rank, src, w.n))
	}
	msg := <-w.mail[src*w.n+p.rank]
	if msg.tag != tag {
		panic(fmt.Sprintf("spmd: process %d expected tag %d from %d, got %d", p.rank, tag, src, msg.tag))
	}
	if msg.avail > p.clock {
		p.clock = msg.avail
	}
	if src != p.rank {
		p.clock += w.model.RecvOverhead
	}
	return msg.data
}

// Recv is the typed receive over any communicator (a world process or a
// group).
func Recv[T any](c Comm, src, tag int) T {
	raw := c.Recv(src, tag)
	v, ok := raw.(T)
	if !ok {
		panic(fmt.Sprintf("spmd: rank %d: message from %d (tag %d) has unexpected type %T", c.Rank(), src, tag, raw))
	}
	return v
}
