// Package spmd provides the SPMD (single-program multiple-data) process
// runtime on which archetype programs execute.
//
// A World runs N logical processes, one goroutine each, connected by
// per-pair FIFO message queues — the "multicomputer" of the paper. The
// message fabric, clock, and pricing live behind a backend.Transport, so
// the same program text runs on different execution substrates:
//
//   - backend.Sim (the default) carries a virtual clock per process,
//     advanced by explicit compute charges and by message costs from a
//     machine.Model, so the same program yields deterministic makespans
//     for any process count regardless of how the host schedules
//     goroutines. The paper's speedup figures (6, 12, 15, 16, 17, 18)
//     are regenerated from these virtual makespans.
//   - backend.Real runs the processes at hardware speed over native
//     channels and meters the run with the wall clock.
//   - backend/dist routes the same operations across worker OS processes
//     over TCP (payloads travel through this package's wire codec,
//     AppendPayload/DecodePayload).
//
// Programs written against Proc are ordinary Go: they really compute their
// results (sorts really sort, solvers really solve); the clock — virtual
// or wall — is bookkeeping layered on top.
//
// Messaging is typed and self-metering: Send prices every payload through
// BytesOf (payload types outside its table implement Sized), so call
// sites never hand-count bytes; SendT and Chan add static payload typing
// on top, pairing with the typed Recv.
package spmd

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/backend"
	"repro/internal/machine"
	"repro/internal/obs"
)

// World is a set of N communicating processes plus the machine model that
// prices their communication and computation. The transport is created
// when Run starts, not at construction: a world that is never run costs
// nothing and registers no context watcher.
type World struct {
	ctx    context.Context
	runner backend.Runner
	n      int
	model  *machine.Model
	t      backend.Transport
	ran    bool
	// rec is the run's flight recorder, taken from the transport when it
	// implements backend.Traced; nil when tracing is off (the normal,
	// free case).
	rec *obs.Recorder
}

// NewWorld creates a world of n processes over the given machine model on
// the default virtual-time simulator backend with a background context.
// It returns an error on an invalid model or non-positive n.
func NewWorld(n int, m *machine.Model) (*World, error) {
	return NewWorldOn(context.Background(), backend.Default(), n, m)
}

// NewWorldOn creates a world of n processes over the given machine model
// on the given execution backend. Cancelling ctx aborts a run in flight:
// processes blocked in (or entering) communication unwind, and Run
// returns the context's error.
func NewWorldOn(ctx context.Context, r backend.Runner, n int, m *machine.Model) (*World, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r == nil {
		return nil, fmt.Errorf("spmd: nil backend runner")
	}
	if n <= 0 {
		return nil, fmt.Errorf("spmd: world size must be positive, got %d", n)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("spmd: %w", err)
	}
	return &World{ctx: ctx, runner: r, n: n, model: m}, nil
}

// MustWorld is NewWorld for static configurations known to be valid
// (tests, examples): it panics on error.
func MustWorld(n int, m *machine.Model) *World {
	w, err := NewWorld(n, m)
	if err != nil {
		panic(err)
	}
	return w
}

// MustWorldOn is NewWorldOn with a background context for static
// configurations known to be valid: it panics on error.
func MustWorldOn(r backend.Runner, n int, m *machine.Model) *World {
	w, err := NewWorldOn(context.Background(), r, n, m)
	if err != nil {
		panic(err)
	}
	return w
}

// N returns the number of processes in the world.
func (w *World) N() int { return w.n }

// Model returns the world's machine model.
func (w *World) Model() *machine.Model { return w.model }

// Result summarizes one SPMD run.
type Result struct {
	// Makespan is the run's execution time in seconds: the maximum final
	// virtual clock across processes on the simulator backend, elapsed
	// wall-clock time on the real backend.
	Makespan float64
	// Clocks holds every process's final clock reading.
	Clocks []float64
	// Msgs and Bytes count all point-to-point messages sent (self-sends
	// excluded).
	Msgs  int64
	Bytes int64
	// Recorder is the run's flight recorder when the run was traced
	// (the transport was created under a context carrying an
	// obs.Collector); nil otherwise. The recorder outlives the
	// transport, so callers may read events and build summaries from it
	// after the run.
	Recorder *obs.Recorder
}

// Run executes body on every process concurrently and waits for all of
// them. A panic in any process is recovered and returned as an error
// naming the process; the remaining processes are not cancelled (they
// either finish or would deadlock — tests rely on `go test` timeouts for
// the latter, which indicates a protocol bug). When the world's context
// is cancelled, processes blocked in communication unwind and Run returns
// the context's error.
func (w *World) Run(body func(p *Proc)) (*Result, error) {
	if w.ran {
		// A world is one run: Finish releases the transport's fabric for
		// reuse, so running again would race a recycled substrate.
		return nil, fmt.Errorf("spmd: world already run; create a new world per run")
	}
	w.ran = true
	if err := w.ctx.Err(); err != nil {
		return nil, err
	}
	w.t = w.runner.NewTransport(w.ctx, w.n, w.model)
	if tr, ok := w.t.(backend.Traced); ok {
		w.rec = tr.Recorder()
	}
	if w.rec != nil {
		w.rec.EmitSys(obs.Event{T: w.rec.Now(), Rank: -1, Kind: obs.KindStart})
	}

	// runRank executes the body for one rank, translating panics the same
	// way the per-goroutine path below does: the cancellation sentinel
	// becomes its carried error, anything else a process-panic error.
	runRank := func(rank int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				if cerr, ok := backend.AsCanceled(r); ok {
					err = cerr
					return
				}
				err = fmt.Errorf("spmd: process %d panicked: %v", rank, r)
			}
		}()
		body(&Proc{world: w, rank: rank})
		if w.rec != nil {
			// The body returned normally: stamp the rank's finish on its
			// own ring (virtual time on the simulator, wall otherwise).
			w.rec.Emit(rank, obs.Event{T: w.stamp(rank), Peer: -1, Kind: obs.KindFinish})
		}
		return nil
	}

	if d, ok := w.t.(backend.Driver); ok {
		// The transport owns rank scheduling (elastic backends): it decides
		// when and how often each rank body executes, and may re-execute a
		// rank after its host worker dies. The Finish-on-every-exit-path
		// contract is unchanged. A driving transport that also observes
		// rank returns gets the same final-flush callback as the
		// goroutine-per-rank path below — once per executed attempt, on
		// the attempt's goroutine.
		run := runRank
		if ro, ok := w.t.(backend.RankObserver); ok {
			run = func(rank int) error {
				err := runRank(rank)
				ro.RankReturned(rank)
				return err
			}
		}
		err := d.Drive(run)
		if cerr := w.ctx.Err(); cerr != nil {
			w.t.Finish()
			return nil, cerr
		}
		if err != nil {
			w.t.Finish()
			return nil, err
		}
		return w.finishResult(), nil
	}

	errs := make([]error, w.n)
	ro, _ := w.t.(backend.RankObserver)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for rank := 0; rank < w.n; rank++ {
		rank := rank
		go func() {
			defer wg.Done()
			errs[rank] = runRank(rank)
			if ro != nil {
				// The rank's last word to the transport: flush whatever
				// its body left buffered while its peers still run.
				ro.RankReturned(rank)
			}
		}()
	}
	wg.Wait()
	// Every process has returned, so the transport must be finished on
	// every exit path — Finish releases the fabric (and deregisters the
	// context watcher) for reuse; skipping it on errors would pin the
	// fabric and any undrained payloads to the run's context.
	if err := w.ctx.Err(); err != nil {
		w.t.Finish()
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			w.t.Finish()
			return nil, err
		}
	}
	return w.finishResult(), nil
}

// stamp returns rank's current trace timestamp: virtual time on
// virtual-time backends (so sim traces sit on the modeled timeline),
// recorder wall time otherwise. Only valid while the transport is live
// and only from the rank's own goroutine.
func (w *World) stamp(rank int) int64 {
	if w.runner.Virtual() {
		return int64(w.t.Clock(rank) * 1e9)
	}
	return w.rec.Now()
}

// finishResult finishes the transport and assembles the Result,
// stamping the world-finish trace event (the transport is dead after
// Finish, so the stamp comes from the finished makespan on virtual
// backends).
func (w *World) finishResult() *Result {
	fin := w.t.Finish()
	if w.rec != nil {
		t := w.rec.Now()
		if w.runner.Virtual() {
			t = int64(fin.Makespan * 1e9)
		}
		w.rec.EmitSys(obs.Event{T: t, Rank: -1, Kind: obs.KindFinish})
	}
	return &Result{
		Makespan: fin.Makespan,
		Clocks:   fin.Clocks,
		Msgs:     fin.Msgs,
		Bytes:    fin.Bytes,
		Recorder: w.rec,
	}
}

// Proc is one logical process of an SPMD computation: a rank's view of the
// world's execution backend. Methods on Proc must only be called from the
// goroutine running that process.
type Proc struct {
	world *World
	rank  int
}

// Rank returns this process's index in [0, N).
func (p *Proc) Rank() int { return p.rank }

// Recorder returns the run's flight recorder, nil when tracing is off.
// Layers above the transport (collectives) use it to bracket compound
// operations — e.g. a barrier — as single trace events.
func (p *Proc) Recorder() *obs.Recorder { return p.world.rec }

// Stamp returns this rank's current trace timestamp (virtual ns on the
// simulator backend, recorder wall ns otherwise). Only meaningful while
// tracing is on; like all Proc methods it must be called from the
// process's own goroutine.
func (p *Proc) Stamp() int64 { return p.world.stamp(p.rank) }

// N returns the number of processes in the world.
func (p *Proc) N() int { return p.world.n }

// Model returns the machine model pricing this process's work.
func (p *Proc) Model() *machine.Model { return p.world.model }

// Clock returns the process's current time in seconds (virtual on the
// simulator backend, elapsed wall-clock on the real backend).
func (p *Proc) Clock() float64 { return p.world.t.Clock(p.rank) }

// SetResident declares the process's resident data size in bytes. When the
// machine model has a memory capacity and the declaration exceeds it, all
// subsequent compute charges are multiplied by the model's PagingFactor.
// This implements the paper's Figure 18 paging explanation. (The real
// backend ignores the declaration: the host pages for real.)
func (p *Proc) SetResident(bytes float64) { p.world.t.SetResident(p.rank, bytes) }

// Charge advances the virtual clock by sec seconds of computation, subject
// to the paging multiplier. On the real backend the charge is discarded:
// the computation itself already took the time.
func (p *Proc) Charge(sec float64) {
	if sec < 0 {
		panic(fmt.Sprintf("spmd: negative charge %g on process %d", sec, p.rank))
	}
	p.world.t.Charge(p.rank, sec)
}

// Flops charges n floating-point operations.
func (p *Proc) Flops(n float64) { p.Charge(n * p.world.model.FlopTime) }

// Cmps charges n comparison/exchange steps (sorting workloads).
func (p *Proc) Cmps(n float64) { p.Charge(n * p.world.model.CmpTime) }

// MemWords charges n words of pure data movement (pack/unpack/copy).
func (p *Proc) MemWords(n float64) { p.Charge(n * p.world.model.MemTime) }

// Idle advances the clock to at least t (used by receives; exported for
// cost-model extensions such as modelling I/O devices).
func (p *Proc) Idle(t float64) { p.world.t.Idle(p.rank, t) }

// Send transmits data to process dst. The payload's wire size for cost
// accounting is computed by BytesOf — payload types outside its table
// implement Sized. tag is a protocol check: the matching Recv must ask
// for the same tag. Send to self is a memory copy: it costs copy time but
// no latency, and is delivered through the same FIFO so program structure
// is uniform.
func (p *Proc) Send(dst, tag int, data any) {
	p.sendSized(dst, tag, data, BytesOf(data))
}

// sendSized is the typed-send fast path: the caller (SendT, Chan) already
// sized the payload statically, so the dynamic BytesOf switch is skipped.
// The bytes value must equal BytesOf(data) — the typed layer guarantees it
// so metering is identical on both paths.
func (p *Proc) sendSized(dst, tag int, data any, bytes int) {
	if dst < 0 || dst >= p.world.n {
		panic(fmt.Sprintf("spmd: process %d sent to invalid rank %d (world size %d)", p.rank, dst, p.world.n))
	}
	p.world.t.Send(p.rank, dst, tag, data, bytes)
}

// Recv receives the next message from src, which must carry the given tag
// (tags are order checks over the per-pair FIFO, not a matching mechanism;
// a mismatch means the program's communication protocol is broken and
// panics). On the simulator backend the virtual clock advances to the
// message's availability time plus receive overhead; on the real backend
// the receive blocks for real.
func (p *Proc) Recv(src, tag int) any {
	if src < 0 || src >= p.world.n {
		panic(fmt.Sprintf("spmd: process %d received from invalid rank %d (world size %d)", p.rank, src, p.world.n))
	}
	return p.world.t.Recv(src, p.rank, tag)
}

// Recv is the typed receive over any communicator (a world process or a
// group).
func Recv[T any](c Comm, src, tag int) T {
	raw := c.Recv(src, tag)
	v, ok := raw.(T)
	if !ok {
		panic(fmt.Sprintf("spmd: rank %d: message from %d (tag %d) has unexpected type %T", c.Rank(), src, tag, raw))
	}
	return v
}
