package spmd

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Comm is the communication-and-cost interface archetype code is written
// against: a full world process (*Proc) or a subgroup view of one
// (*Group). It supports the paper's future-work direction of "archetype
// composition" — task-parallel compositions of data-parallel computations
// (and the group-communication archetype the paper cites): a world is
// split into groups, each group runs a data-parallel archetype, and the
// groups cooperate through ordinary point-to-point messages.
type Comm interface {
	// N is the number of processes in this communicator; Rank is this
	// process's index within it.
	N() int
	Rank() int
	// Send and Recv address ranks within this communicator. Payload
	// sizes for cost accounting are computed by BytesOf; payload types
	// outside its table implement Sized.
	Send(dst, tag int, data any)
	Recv(src, tag int) any

	// Cost accounting (core.Meter plus the clock/paging extras).
	Charge(sec float64)
	Flops(n float64)
	Cmps(n float64)
	MemWords(n float64)
	Idle(t float64)
	Clock() float64
	SetResident(bytes float64)
	Model() *machine.Model
}

var (
	_ Comm = (*Proc)(nil)
	_ Comm = (*Group)(nil)
)

// Group is a subcommunicator: a view of a Proc restricted to a subset of
// world ranks, with ranks renumbered 0..len(ranks)-1 in ascending world
// order. Collectives and distributed grids built on a Group involve only
// its members, so disjoint groups compute independently and concurrently.
type Group struct {
	*Proc
	ranks []int // sorted world ranks
	rank  int   // my index within ranks
}

// NewGroup creates this process's view of the group containing exactly
// the given world ranks (duplicates are an error), which must include the
// calling process. Every member must construct the group with the same
// rank set — the usual SPMD contract.
func NewGroup(p *Proc, worldRanks []int) *Group {
	ranks := append([]int(nil), worldRanks...)
	sort.Ints(ranks)
	g := &Group{Proc: p, rank: -1}
	for i, r := range ranks {
		if r < 0 || r >= p.world.n {
			panic(fmt.Sprintf("spmd: group rank %d outside world of %d", r, p.world.n))
		}
		if i > 0 && ranks[i-1] == r {
			panic(fmt.Sprintf("spmd: duplicate rank %d in group", r))
		}
		if r == p.rank {
			g.rank = i
		}
	}
	if g.rank < 0 {
		panic(fmt.Sprintf("spmd: process %d is not a member of group %v", p.rank, ranks))
	}
	g.ranks = ranks
	return g
}

// Partition splits the world into contiguous groups of the given sizes
// (which must sum to N) and returns the group containing this process
// along with its index among the groups. It is the convenience used by
// task-parallel pipelines: Partition(p, n/2, n/2) gives two equal stages.
func Partition(p *Proc, sizes ...int) (*Group, int) {
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			panic("spmd: group sizes must be positive")
		}
		total += s
	}
	if total != p.world.n {
		panic(fmt.Sprintf("spmd: group sizes sum to %d, world has %d", total, p.world.n))
	}
	lo := 0
	for gi, s := range sizes {
		if p.rank < lo+s {
			ranks := make([]int, s)
			for i := range ranks {
				ranks[i] = lo + i
			}
			return NewGroup(p, ranks), gi
		}
		lo += s
	}
	panic("unreachable")
}

// N returns the group size.
func (g *Group) N() int { return len(g.ranks) }

// Rank returns this process's rank within the group.
func (g *Group) Rank() int { return g.rank }

// WorldRank translates a group rank to the underlying world rank.
func (g *Group) WorldRank(groupRank int) int {
	if groupRank < 0 || groupRank >= len(g.ranks) {
		panic(fmt.Sprintf("spmd: group rank %d outside group of %d", groupRank, len(g.ranks)))
	}
	return g.ranks[groupRank]
}

// World returns the underlying full-world process (for inter-group
// communication).
func (g *Group) World() *Proc { return g.Proc }

// Send sends to a group rank.
func (g *Group) Send(dst, tag int, data any) {
	g.Proc.Send(g.WorldRank(dst), tag, data)
}

// sendSized translates the group rank and forwards to the world process's
// typed-send fast path.
func (g *Group) sendSized(dst, tag int, data any, bytes int) {
	g.Proc.sendSized(g.WorldRank(dst), tag, data, bytes)
}

// Recv receives from a group rank.
func (g *Group) Recv(src, tag int) any {
	return g.Proc.Recv(g.WorldRank(src), tag)
}
