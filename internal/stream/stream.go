// Package stream is the streaming archetype: unbounded element streams
// flowing through a typed stage graph on an SPMD world, with bounded
// per-stage buffers enforced by credit-based flow control, element
// batching to amortize per-message cost, and per-stage parallelism (farm
// stages fanning batches across worker ranks with deterministic order
// restoration).
//
// Where every other archetype in this repository is batch — one input,
// one output, one makespan — a stream program is long-lived: a source
// produces elements indefinitely (bounded here by Config.Elems so runs
// terminate), stages transform them, and a sink consumes them while the
// source is still producing. This is the stream-parallelism pattern of
// the pipeline archetype generalized: internal/pipeline's two fixed FFT
// stages become an arbitrary stage list, its implicit unbounded
// inter-stage buffer becomes an explicit credit window, and its
// one-rank-per-stage layout becomes a per-stage worker farm.
//
// # Topology
//
// A Pipeline maps onto world ranks in order: rank 0 is the source, each
// stage takes Workers consecutive ranks, and the last rank is the sink —
// Procs reports the required world size. Elements travel in batches (a
// flat []T of whole elements, Width scalars each); a batch is one
// message, so Config.Batch is the knob that trades per-message overhead
// against pipeline granularity.
//
// # Order restoration
//
// Every edge between consecutive layers (kIn producer ranks feeding kOut
// consumer ranks) is deterministic: global batch j is produced by
// producer j%kIn and consumed by consumer j%kOut, so each pair
// communicates over a plain FIFO and the interleave — not tags, not
// sequence numbers — restores global order exactly. The protocol
// requires every stage to emit exactly one output batch per input batch
// (possibly empty: nil from Fn is sent as an empty, non-nil slice), so
// local batch indices stay aligned with global ones even through
// cardinality-changing stages. End of stream is a nil batch, sent once
// per reachable consumer.
//
// # Backpressure
//
// The mailbox fabric underneath is unbounded, so boundedness is enforced
// here: a producer may have at most Config.Credits unacknowledged
// batches outstanding to any one consumer, and blocks (in an ordinary
// Recv) for a credit when the window is full. A consumer returns one
// credit per batch after fully processing it — after its own downstream
// send, so a batch occupies its stage until it has moved on. Stalling
// the sink therefore provably stalls the source: with S stages the
// source can run at most (S+1)·Credits + S+1 batches ahead before its
// first credit Recv blocks. Producers drain their outstanding credits
// before sending EOS, so a finished stream leaves no undelivered
// messages in the fabric.
//
// Per-stage state (Danelutto et al.'s state access patterns) is
// per-worker: a Stage's State constructor runs once on each worker rank,
// and Fn/Flush receive that worker's value. Stateful stages that must
// see the whole stream run with Workers=1; farms carry independent
// per-worker state.
package stream

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/spmd"
)

// Stage is one transformation layer of a pipeline.
type Stage[T any] struct {
	// Name labels the stage in diagnostics.
	Name string
	// Workers is the stage's parallelism: how many consecutive world
	// ranks process its batches (a farm when > 1). Zero means 1.
	Workers int
	// OutWidth is the number of scalars per output element; 0 means the
	// stage preserves the element width it receives.
	OutWidth int
	// State optionally builds this worker's private stage state before
	// the first batch; Fn and Flush receive the built value.
	State func(c spmd.Comm) any
	// Fn transforms one input batch (whole elements, owned by the stage:
	// it may mutate or retain in) into one output batch — a multiple of
	// OutWidth scalars, possibly empty, possibly the input slice itself.
	// It runs once per input batch, in stream order per worker.
	Fn func(c spmd.Comm, state any, in []T) []T
	// Flush optionally emits one final batch (buffered state, partial
	// windows) after the worker's last input batch and before EOS.
	Flush func(c spmd.Comm, state any) []T
}

// Pipeline is a stage graph: a source generating fixed-width elements,
// an ordered stage list, and an implicit collecting sink.
type Pipeline[T any] struct {
	// Name labels the pipeline in diagnostics.
	Name string
	// Width is the number of scalars per source element.
	Width int
	// Source appends element i (Width scalars) to dst and returns it; it
	// runs on the source rank in element order.
	Source func(c spmd.Comm, i int64, dst []T) []T
	// Stages is the transformation layers in flow order.
	Stages []Stage[T]
}

// Config sets one run's streaming knobs. The zero value means: no
// elements, DefaultBatch-element batches, DefaultCredits-batch windows,
// no progress windows.
type Config struct {
	// Elems is the total number of elements the source produces.
	Elems int64
	// Batch is the number of elements per source batch (one message);
	// <= 0 means DefaultBatch.
	Batch int
	// Credits is the per-producer-consumer-pair flow-control window in
	// batches — the bounded buffer size; <= 0 means DefaultCredits.
	Credits int
	// Window is the progress-window size in sink-side output elements;
	// <= 0 disables windows.
	Window int64
	// OnWindow, if set, observes each completed progress window. It is
	// called synchronously from the sink rank's goroutine (host wall
	// clock, not part of the metered run); a blocking OnWindow
	// backpressures the whole pipeline.
	OnWindow func(Window)
}

// Defaults for Config's zero fields.
const (
	DefaultBatch   = 32
	DefaultCredits = 4
)

// Window is one sink-side progress report: the stream's visible
// heartbeat for long-lived jobs.
type Window struct {
	// Index is the 1-based window number.
	Index int
	// Elems is the cumulative count of output elements through the sink.
	Elems int64
	// Elapsed is wall-clock seconds since the sink started.
	Elapsed float64
	// Rate is output elements per wall-clock second within this window.
	Rate float64
}

// norm returns cfg with defaults filled in.
func (cfg Config) norm() Config {
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Credits <= 0 {
		cfg.Credits = DefaultCredits
	}
	return cfg
}

// Tag space: each edge e uses tagBase+2e for data batches and
// tagBase+2e+1 for the credits flowing back.
const tagBase = collective.TagUser + 100

// plan is the resolved rank layout and per-layer element widths of a
// pipeline, identical on every rank by construction.
type plan struct {
	workers []int // per stage, normalized >= 1
	starts  []int // first world rank of each stage
	widths  []int // widths[s] = input width of stage s; widths[len] = sink width
	procs   int
}

func (pl *Pipeline[T]) plan() plan {
	if pl.Width <= 0 {
		panic(fmt.Sprintf("stream: pipeline %q: element width must be positive, got %d", pl.Name, pl.Width))
	}
	if pl.Source == nil {
		panic(fmt.Sprintf("stream: pipeline %q has no source", pl.Name))
	}
	p := plan{procs: 1} // source
	w := pl.Width
	p.widths = append(p.widths, w)
	for i, st := range pl.Stages {
		if st.Fn == nil {
			panic(fmt.Sprintf("stream: pipeline %q stage %d (%s) has no Fn", pl.Name, i, st.Name))
		}
		k := st.Workers
		if k <= 0 {
			k = 1
		}
		p.workers = append(p.workers, k)
		p.starts = append(p.starts, p.procs)
		p.procs += k
		if st.OutWidth > 0 {
			w = st.OutWidth
		}
		p.widths = append(p.widths, w)
	}
	p.procs++ // sink
	return p
}

// Procs returns the world size the pipeline requires: one source rank,
// each stage's workers, and one sink rank.
func (pl *Pipeline[T]) Procs() int { return pl.plan().procs }

// OutWidth returns the number of scalars per element of the sink's
// output stream.
func (pl *Pipeline[T]) OutWidth() int {
	ws := pl.plan().widths
	return ws[len(ws)-1]
}

// SplitWorkers divides avail worker ranks as evenly as possible among
// nstages stages, earlier stages taking the extras. It panics when avail
// cannot give every stage at least one worker — callers validate their
// process budget first.
func SplitWorkers(avail, nstages int) []int {
	if nstages <= 0 {
		panic("stream: SplitWorkers with no stages")
	}
	if avail < nstages {
		panic(fmt.Sprintf("stream: %d worker ranks cannot cover %d stages", avail, nstages))
	}
	out := make([]int, nstages)
	for i := range out {
		out[i] = avail / nstages
		if i < avail%nstages {
			out[i]++
		}
	}
	return out
}

// layer identifies one end of an edge: consecutive world ranks.
type layer struct {
	start, n int
}

func (l layer) rank(i int) int { return l.start + i }

// gcd of two positive ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// reaches reports whether producer index q and consumer index c of a
// kIn×kOut edge ever exchange a batch: global indices j with j≡q (mod
// kIn) and j≡c (mod kOut) exist iff gcd | (q-c).
func reaches(q, c, g int) bool { return (q-c)%g == 0 }

// sender is a producer's view of one edge: round-robin dispatch with a
// per-consumer credit window.
type sender[T any] struct {
	p           *spmd.Proc
	q           int // my producer index within the edge
	kIn         int
	cons        layer
	dataTag     int
	creditTag   int
	credits     int
	m           int64 // local batches sent
	outstanding []int // unacknowledged batches per consumer
}

func newSender[T any](p *spmd.Proc, q, kIn int, cons layer, edge, credits int) *sender[T] {
	return &sender[T]{
		p: p, q: q, kIn: kIn, cons: cons,
		dataTag: tagBase + 2*edge, creditTag: tagBase + 2*edge + 1,
		credits: credits, outstanding: make([]int, cons.n),
	}
}

// send ships one batch to the consumer that owns its global index,
// first blocking for a credit if that consumer's window is full. A nil
// batch is sent as empty — nil on the wire means EOS.
func (s *sender[T]) send(batch []T) {
	if batch == nil {
		batch = []T{}
	}
	c := int((s.m*int64(s.kIn) + int64(s.q)) % int64(s.cons.n))
	if s.outstanding[c] == s.credits {
		s.p.Recv(s.cons.rank(c), s.creditTag)
		s.outstanding[c]--
	}
	spmd.SendT(s.p, s.cons.rank(c), s.dataTag, batch)
	s.outstanding[c]++
	s.m++
}

// close drains every outstanding credit and then sends EOS (a nil
// batch) to each consumer this producer can reach, leaving the edge's
// FIFOs empty.
func (s *sender[T]) close() {
	g := gcd(s.kIn, s.cons.n)
	for c := 0; c < s.cons.n; c++ {
		for s.outstanding[c] > 0 {
			s.p.Recv(s.cons.rank(c), s.creditTag)
			s.outstanding[c]--
		}
		if reaches(s.q, c, g) {
			spmd.SendT[[]T](s.p, s.cons.rank(c), s.dataTag, nil)
		}
	}
}

// receiver is a consumer's view of one edge: round-robin collection in
// global batch order, returning credits after each batch is processed.
type receiver[T any] struct {
	p         *spmd.Proc
	c         int // my consumer index within the edge
	kOut      int
	prods     layer
	dataTag   int
	creditTag int
	done      []bool
	live      int
	j         int64 // next expected global batch index (≡ c mod kOut)
	last      int   // producer index of the batch pending acknowledgement
}

func newReceiver[T any](p *spmd.Proc, c, kOut int, prods layer, edge int) *receiver[T] {
	r := &receiver[T]{
		p: p, c: c, kOut: kOut, prods: prods,
		dataTag: tagBase + 2*edge, creditTag: tagBase + 2*edge + 1,
		done: make([]bool, prods.n), j: int64(c), last: -1,
	}
	g := gcd(prods.n, kOut)
	for q := 0; q < prods.n; q++ {
		if reaches(q, c, g) {
			r.live++
		} else {
			r.done[q] = true // never sends to us, not even EOS
		}
	}
	return r
}

// next returns the next batch in global order, or ok=false once every
// reachable producer has sent EOS.
func (r *receiver[T]) next() ([]T, bool) {
	for r.live > 0 {
		q := int(r.j % int64(r.prods.n))
		r.j += int64(r.kOut)
		if r.done[q] {
			continue
		}
		batch := spmd.Recv[[]T](r.p, r.prods.rank(q), r.dataTag)
		if batch == nil { // EOS from this producer
			r.done[q] = true
			r.live--
			continue
		}
		r.last = q
		return batch, true
	}
	return nil, false
}

// ack returns one credit for the batch last returned by next. Call it
// after the batch has been fully processed (including any downstream
// send), so the credit window measures true occupancy.
func (r *receiver[T]) ack() {
	if r.last < 0 {
		panic("stream: ack with no batch pending")
	}
	r.p.Send(r.prods.rank(r.last), r.creditTag, nil)
	r.last = -1
}

// Run executes the pipeline as world process p's body. The world size
// must equal pl.Procs(); Config.Elems elements flow source→stages→sink
// in Batch-element batches under Credits-batch flow-control windows.
// The sink rank returns the output stream (whole elements, OutWidth
// scalars each); every other rank returns nil.
//
// The protocol is deterministic — plain Recv only, no RecvAny — so the
// same pipeline produces element-exact outputs and identical
// message/byte meters on every backend; only the meaning of time
// differs. Cancelling the world's context unwinds all ranks mid-stream.
func Run[T any](p *spmd.Proc, pl *Pipeline[T], cfg Config) []T {
	lay := pl.plan()
	if p.N() != lay.procs {
		panic(fmt.Sprintf("stream: pipeline %q needs exactly %d processes (source + %v + sink), world has %d",
			pl.Name, lay.procs, lay.workers, p.N()))
	}
	if cfg.Elems < 0 {
		panic(fmt.Sprintf("stream: negative element count %d", cfg.Elems))
	}
	cfg = cfg.norm()

	rank := p.Rank()
	nStages := len(pl.Stages)
	layerOf := func(s int) layer { // s in [0, nStages); source/sink are explicit
		return layer{start: lay.starts[s], n: lay.workers[s]}
	}
	sink := layer{start: lay.procs - 1, n: 1}
	source := layer{start: 0, n: 1}
	consOf := func(edge int) layer { // edge e feeds stage e, or the sink
		if edge == nStages {
			return sink
		}
		return layerOf(edge)
	}
	prodsOf := func(edge int) layer { // edge e is fed by stage e-1, or the source
		if edge == 0 {
			return source
		}
		return layerOf(edge - 1)
	}

	switch {
	case rank == 0:
		runSource(p, pl, cfg, consOf(0))
		return nil
	case rank == lay.procs-1:
		return runSink[T](p, cfg, prodsOf(nStages), nStages, lay.widths[nStages])
	default:
		s := 0
		for rank >= lay.starts[s]+lay.workers[s] {
			s++
		}
		runWorker(p, &pl.Stages[s], rank-lay.starts[s], lay.workers[s], cfg,
			prodsOf(s), consOf(s+1), s, lay.widths[s], lay.widths[s+1])
		return nil
	}
}

// runSource generates elements in order, batches them, and ships them
// into the first edge. It blocks — and therefore stops generating —
// whenever the edge's credit window is exhausted.
func runSource[T any](p *spmd.Proc, pl *Pipeline[T], cfg Config, cons layer) {
	out := newSender[T](p, 0, 1, cons, 0, cfg.Credits)
	capScalars := cfg.Batch * pl.Width
	buf := make([]T, 0, capScalars)
	inBatch := 0
	for i := int64(0); i < cfg.Elems; i++ {
		buf = pl.Source(p, i, buf)
		if len(buf) != (inBatch+1)*pl.Width {
			panic(fmt.Sprintf("stream: pipeline %q source emitted %d scalars for element %d, want %d",
				pl.Name, len(buf)-inBatch*pl.Width, i, pl.Width))
		}
		inBatch++
		if inBatch == cfg.Batch {
			out.send(buf)
			// The sent batch is owned by the receiver now; start fresh.
			buf = make([]T, 0, capScalars)
			inBatch = 0
		}
	}
	if inBatch > 0 {
		out.send(buf)
	}
	out.close()
}

// runWorker is one stage worker (worker w of k): receive batches in
// order, transform, forward exactly one output batch per input batch,
// acknowledge.
func runWorker[T any](p *spmd.Proc, st *Stage[T], w, k int, cfg Config, prods, cons layer, edge, inWidth, outWidth int) {
	in := newReceiver[T](p, w, k, prods, edge)
	out := newSender[T](p, w, k, cons, edge+1, cfg.Credits)
	var state any
	if st.State != nil {
		state = st.State(p)
	}
	for {
		batch, ok := in.next()
		if !ok {
			break
		}
		if len(batch)%inWidth != 0 {
			panic(fmt.Sprintf("stream: stage %q received %d scalars, not a multiple of element width %d",
				st.Name, len(batch), inWidth))
		}
		res := st.Fn(p, state, batch)
		if len(res)%outWidth != 0 {
			panic(fmt.Sprintf("stream: stage %q emitted %d scalars, not a multiple of element width %d",
				st.Name, len(res), outWidth))
		}
		out.send(res)
		in.ack()
	}
	if st.Flush != nil {
		if res := st.Flush(p, state); len(res) > 0 {
			if len(res)%outWidth != 0 {
				panic(fmt.Sprintf("stream: stage %q flushed %d scalars, not a multiple of element width %d",
					st.Name, len(res), outWidth))
			}
			out.send(res)
		}
	}
	out.close()
}

// runSink collects the output stream in order, fires progress windows,
// and returns the collected elements.
func runSink[T any](p *spmd.Proc, cfg Config, prods layer, edge, width int) []T {
	in := newReceiver[T](p, 0, 1, prods, edge)
	var out []T
	start := time.Now()
	winStart := start
	var winIdx int
	var fired int64 // elements already attributed to fired windows
	for {
		batch, ok := in.next()
		if !ok {
			break
		}
		if len(batch)%width != 0 {
			panic(fmt.Sprintf("stream: sink received %d scalars, not a multiple of element width %d",
				len(batch), width))
		}
		out = append(out, batch...)
		if cfg.Window > 0 && cfg.OnWindow != nil {
			elems := int64(len(out) / width)
			for elems-fired >= cfg.Window {
				fired += cfg.Window
				winIdx++
				now := time.Now()
				fire(cfg, winIdx, fired, start, winStart, now, cfg.Window)
				winStart = now
			}
		}
		in.ack()
	}
	elems := int64(len(out) / width)
	if cfg.Window > 0 && cfg.OnWindow != nil && elems > fired {
		winIdx++
		fire(cfg, winIdx, elems, start, winStart, time.Now(), elems-fired)
	}
	return out
}

// fire reports one completed progress window.
func fire(cfg Config, idx int, elems int64, start, winStart, now time.Time, winElems int64) {
	dt := now.Sub(winStart).Seconds()
	rate := 0.0
	if dt > 0 {
		rate = float64(winElems) / dt
	}
	cfg.OnWindow(Window{
		Index:   idx,
		Elems:   elems,
		Elapsed: now.Sub(start).Seconds(),
		Rate:    rate,
	})
}
