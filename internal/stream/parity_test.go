package stream_test

import (
	"context"
	"reflect"
	"testing"

	"repro/arch"
	_ "repro/arch/apps"
	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/spmd"
	"repro/internal/stream"
)

// TestStreamParity extends the repository's cross-backend contract to
// the streaming archetype: the same pipeline, run on the virtual-time
// simulator, the shared-memory backend, and the distributed backend,
// must deliver the element-exact output stream with identical
// message/byte meters. The stream runtime uses only plain Recv (no
// RecvAny), so its protocol is deterministic by construction; this pins
// it.
func TestStreamParity(t *testing.T) {
	cases := []struct {
		name string
		pl   func() *stream.Pipeline[float64]
		cfg  stream.Config
	}{
		{
			name: "farm/doubling",
			pl:   func() *stream.Pipeline[float64] { return countingPipeline(3, nil) },
			cfg:  stream.Config{Elems: 300, Batch: 7, Credits: 2},
		},
		{
			name: "two-stage/uneven-farms",
			pl: func() *stream.Pipeline[float64] {
				return &stream.Pipeline[float64]{
					Name:  "two",
					Width: 1,
					Source: func(c spmd.Comm, i int64, dst []float64) []float64 {
						return append(dst, float64(i))
					},
					Stages: []stream.Stage[float64]{
						{Name: "inc", Workers: 3, Fn: func(c spmd.Comm, _ any, in []float64) []float64 {
							for k := range in {
								in[k]++
							}
							return in
						}},
						{Name: "neg", Workers: 2, Fn: func(c spmd.Comm, _ any, in []float64) []float64 {
							for k := range in {
								in[k] = -in[k]
							}
							return in
						}},
					},
				}
			},
			cfg: stream.Config{Elems: 257, Batch: 5, Credits: 3},
		},
	}

	backends := []backend.Runner{backend.Sim(), backend.Real(), dist.New()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want []float64
			var wantRes *spmd.Result
			for i, b := range backends {
				pl := tc.pl()
				var out []float64
				res, err := core.Run(context.Background(), b, pl.Procs(), model(), func(p *spmd.Proc) {
					if r := stream.Run(p, pl, tc.cfg); r != nil {
						out = r
					}
				})
				if err != nil {
					t.Fatalf("%s: %v", b.Name(), err)
				}
				if i == 0 {
					want, wantRes = out, res
					if int64(len(out)) < tc.cfg.Elems {
						t.Fatalf("sim produced %d scalars, want at least %d", len(out), tc.cfg.Elems)
					}
					continue
				}
				if !reflect.DeepEqual(want, out) {
					t.Fatalf("%s output differs from sim", b.Name())
				}
				if res.Msgs != wantRes.Msgs || res.Bytes != wantRes.Bytes {
					t.Fatalf("communication volume differs: sim %d msgs/%d bytes, %s %d msgs/%d bytes",
						wantRes.Msgs, wantRes.Bytes, b.Name(), res.Msgs, res.Bytes)
				}
			}
		})
	}
}

// TestStreamAppParity runs both registered streaming apps end to end on
// all three backends: each app verifies its own output bit-exact
// against the sequential oracle internally, and this test additionally
// requires the deterministic summary and the message/byte meters to
// agree across substrates.
func TestStreamAppParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns dist worker processes")
	}
	cases := []arch.Spec{
		{App: "streamfft", Size: 24, Procs: 6},
		{App: "streamhist", Size: 6000, Procs: 5},
	}
	for _, base := range cases {
		t.Run(base.App, func(t *testing.T) {
			var wantSum string
			var want arch.Report
			for i, b := range []string{"sim", "real", "dist"} {
				sp := base
				sp.Backend = b
				sum, rep, err := arch.RunSpec(context.Background(), sp)
				if err != nil {
					t.Fatalf("%s: %v", b, err)
				}
				if i == 0 {
					wantSum, want = sum, rep
					continue
				}
				if sum != wantSum {
					t.Errorf("%s summary %q differs from sim %q", b, sum, wantSum)
				}
				if rep.Msgs != want.Msgs || rep.Bytes != want.Bytes {
					t.Errorf("%s meters %d msgs/%d bytes differ from sim %d/%d",
						b, rep.Msgs, rep.Bytes, want.Msgs, want.Bytes)
				}
			}
		})
	}
}
