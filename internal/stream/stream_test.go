package stream_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
	"repro/internal/stream"
)

// countingPipeline is the test workload: int64-ish floats through a
// doubling farm, with the source counting every element it generates so
// tests can observe how far ahead of the sink it ran.
func countingPipeline(workers int, produced *atomic.Int64) *stream.Pipeline[float64] {
	return &stream.Pipeline[float64]{
		Name:  "count",
		Width: 1,
		Source: func(c spmd.Comm, i int64, dst []float64) []float64 {
			if produced != nil {
				produced.Add(1)
			}
			return append(dst, float64(i))
		},
		Stages: []stream.Stage[float64]{{
			Name:    "double",
			Workers: workers,
			Fn: func(c spmd.Comm, _ any, in []float64) []float64 {
				for k := range in {
					in[k] *= 2
				}
				return in
			},
		}},
	}
}

// TestOrderRestoration: a farm of any width must deliver the stream to
// the sink in exact global element order, whatever the batch size —
// including batches that don't divide the element count.
func TestOrderRestoration(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5} {
		for _, batch := range []int{1, 7, 32} {
			pl := countingPipeline(workers, nil)
			cfg := stream.Config{Elems: 1000, Batch: batch, Credits: 2}
			var out []float64
			_, err := core.Run(context.Background(), backend.Real(), pl.Procs(), model(), func(p *spmd.Proc) {
				if res := stream.Run(p, pl, cfg); res != nil {
					out = res
				}
			})
			if err != nil {
				t.Fatalf("w=%d b=%d: %v", workers, batch, err)
			}
			if len(out) != 1000 {
				t.Fatalf("w=%d b=%d: sink got %d elems, want 1000", workers, batch, len(out))
			}
			for i, v := range out {
				if v != float64(2*i) {
					t.Fatalf("w=%d b=%d: out[%d] = %g, want %d (order not restored)", workers, batch, i, v, 2*i)
				}
			}
		}
	}
}

// TestStagesReshapeStream: a cardinality-changing stateful stage
// (pairwise sum, half the elements, width change) composed after a farm
// keeps exact semantics, with Flush emitting the buffered tail.
func TestStagesReshapeStream(t *testing.T) {
	// Stage 2 sums non-overlapping pairs into 2-wide elements
	// (sum, count), carrying an odd leftover across batches in state and
	// flushing it at end of stream.
	type carry struct {
		have bool
		val  float64
	}
	pl := &stream.Pipeline[float64]{
		Name:  "reshape",
		Width: 1,
		Source: func(c spmd.Comm, i int64, dst []float64) []float64 {
			return append(dst, float64(i))
		},
		Stages: []stream.Stage[float64]{
			{
				Name:    "inc",
				Workers: 3,
				Fn: func(c spmd.Comm, _ any, in []float64) []float64 {
					for k := range in {
						in[k]++
					}
					return in
				},
			},
			{
				Name:     "pairs",
				OutWidth: 2,
				State:    func(c spmd.Comm) any { return &carry{} },
				Fn: func(c spmd.Comm, state any, in []float64) []float64 {
					st := state.(*carry)
					var out []float64
					for _, v := range in {
						if st.have {
							out = append(out, st.val+v, 2)
							st.have = false
						} else {
							st.val, st.have = v, true
						}
					}
					return out
				},
				Flush: func(c spmd.Comm, state any) []float64 {
					st := state.(*carry)
					if !st.have {
						return nil
					}
					return []float64{st.val, 1}
				},
			},
		},
	}
	if got, want := pl.OutWidth(), 2; got != want {
		t.Fatalf("OutWidth = %d, want %d", got, want)
	}
	const elems = 101 // odd: exercises the flush path
	cfg := stream.Config{Elems: elems, Batch: 7, Credits: 3}
	var out []float64
	_, err := core.Run(context.Background(), backend.Real(), pl.Procs(), model(), func(p *spmd.Proc) {
		if res := stream.Run(p, pl, cfg); res != nil {
			out = res
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != (elems/2)*2+2 {
		t.Fatalf("sink got %d scalars, want %d", len(out), (elems/2)*2+2)
	}
	for k := 0; k < elems/2; k++ {
		// Pair k sums elements 2k and 2k+1, each incremented by one.
		if want := float64(2*k+1) + float64(2*k+2); out[2*k] != want || out[2*k+1] != 2 {
			t.Fatalf("pair %d = (%g, %g), want (%g, 2)", k, out[2*k], out[2*k+1], want)
		}
	}
	if out[len(out)-2] != float64(elems) || out[len(out)-1] != 1 {
		t.Fatalf("flushed tail = (%g, %g), want (%d, 1)", out[len(out)-2], out[len(out)-1], elems)
	}
}

func model() *machine.Model { return machine.IBMSP() }

// TestBackpressureStallsSource is the bounded-buffer invariant: with the
// sink withholding acknowledgements (a blocking OnWindow), the source
// must stop producing once every credit window in the pipeline is full —
// at most (S+1)·Credits + S+1 elements at batch size 1 — instead of
// running ahead through the unbounded fabric.
func TestBackpressureStallsSource(t *testing.T) {
	const credits = 2
	const elems = 500
	bound := int64(2*credits + 2) // S=1 stage: (S+1)*credits + S+1

	var produced atomic.Int64
	pl := countingPipeline(1, &produced)
	release := make(chan struct{})
	var windows atomic.Int64
	cfg := stream.Config{
		Elems: elems, Batch: 1, Credits: credits,
		Window: 1,
		OnWindow: func(w stream.Window) {
			if windows.Add(1) == 1 {
				<-release // stall the sink on its first window
			}
		},
	}
	var out []float64
	done := make(chan error, 1)
	go func() {
		_, err := core.Run(context.Background(), backend.Real(), pl.Procs(), model(), func(p *spmd.Proc) {
			if res := stream.Run(p, pl, cfg); res != nil {
				out = res
			}
		})
		done <- err
	}()

	// Give the stalled pipeline ample time to overrun the bound if it
	// were going to (an unbounded pipeline drains 500 elements in well
	// under a millisecond here).
	time.Sleep(200 * time.Millisecond)
	if got := produced.Load(); got > bound {
		t.Errorf("stalled sink: source produced %d elements, bound is %d", got, bound)
	} else if got == elems {
		t.Errorf("source finished all %d elements against a stalled sink", elems)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if produced.Load() != elems {
		t.Errorf("after release: produced %d, want %d", produced.Load(), elems)
	}
	if len(out) != elems {
		t.Fatalf("sink got %d elems, want %d", len(out), elems)
	}
	for i, v := range out {
		if v != float64(2*i) {
			t.Fatalf("out[%d] = %g, want %d after stall/release", i, v, 2*i)
		}
	}
}

// TestCancelMidStream: cancelling the world's context while elements
// are in flight unwinds every rank — source, farm workers, sink — with
// no goroutine leaks and a prompt context.Canceled from the run.
func TestCancelMidStream(t *testing.T) {
	before := runtime.NumGoroutine()
	var produced atomic.Int64
	pl := countingPipeline(3, &produced)
	cfg := stream.Config{Elems: 1 << 40, Batch: 4, Credits: 2} // far more than any test will stream
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := core.Run(ctx, backend.Real(), pl.Procs(), model(), func(p *spmd.Proc) {
		stream.Run(p, pl, cfg)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt", d)
	}
	if produced.Load() == 0 {
		t.Error("cancelled before any element flowed; test proved nothing")
	}
	limit := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > before+1 && time.Now().Before(limit) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before+1 {
		t.Errorf("goroutines leaked after cancel: %d before, %d after", before, n)
	}
}

// TestSplitWorkers pins the even-split-with-extras-first rule and the
// too-few-ranks panic.
func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		avail, stages int
		want          []int
	}{
		{2, 2, []int{1, 1}},
		{5, 2, []int{3, 2}},
		{7, 3, []int{3, 2, 2}},
		{6, 2, []int{3, 3}},
	}
	for _, tc := range cases {
		got := stream.SplitWorkers(tc.avail, tc.stages)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("SplitWorkers(%d, %d) = %v, want %v", tc.avail, tc.stages, got, tc.want)
		}
	}
	for _, fn := range []func(){
		func() { stream.SplitWorkers(1, 2) },
		func() { stream.SplitWorkers(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("SplitWorkers misuse did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestPipelineValidation: malformed pipelines panic at plan time, not
// deep inside a running world.
func TestPipelineValidation(t *testing.T) {
	for name, pl := range map[string]*stream.Pipeline[float64]{
		"zero width": {Width: 0, Source: func(c spmd.Comm, i int64, dst []float64) []float64 { return dst }},
		"no source":  {Width: 1},
		"no fn": {Width: 1,
			Source: func(c spmd.Comm, i int64, dst []float64) []float64 { return append(dst, 0) },
			Stages: []stream.Stage[float64]{{Name: "hole"}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Procs() did not panic", name)
				}
			}()
			pl.Procs()
		}()
	}
}

// TestProcsLayout: world size is source + workers + sink.
func TestProcsLayout(t *testing.T) {
	pl := countingPipeline(4, nil)
	if got := pl.Procs(); got != 6 {
		t.Errorf("Procs() = %d, want 6 (source + 4 workers + sink)", got)
	}
}
