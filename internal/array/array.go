// Package array provides dense row-major 2D and 3D arrays used as the
// local sections of distributed grids and as whole grids in sequential
// (version-1) programs.
package array

import "fmt"

// Dense2D is a dense NX×NY array stored row-major: element (i,j) lives at
// Data[i*NY+j].
type Dense2D[T any] struct {
	NX, NY int
	Data   []T
}

// New2D allocates a zeroed NX×NY array.
func New2D[T any](nx, ny int) *Dense2D[T] {
	if nx < 0 || ny < 0 {
		panic(fmt.Sprintf("array: invalid dims %dx%d", nx, ny))
	}
	return &Dense2D[T]{NX: nx, NY: ny, Data: make([]T, nx*ny)}
}

// At returns element (i, j).
func (a *Dense2D[T]) At(i, j int) T { return a.Data[i*a.NY+j] }

// Set assigns element (i, j).
func (a *Dense2D[T]) Set(i, j int, v T) { a.Data[i*a.NY+j] = v }

// Row returns row i as a slice aliasing the array's storage.
func (a *Dense2D[T]) Row(i int) []T { return a.Data[i*a.NY : (i+1)*a.NY] }

// Col copies column j into dst (length NX) and returns it; dst may be nil.
func (a *Dense2D[T]) Col(j int, dst []T) []T {
	if dst == nil {
		dst = make([]T, a.NX)
	}
	for i := 0; i < a.NX; i++ {
		dst[i] = a.Data[i*a.NY+j]
	}
	return dst
}

// SetCol writes src (length NX) into column j.
func (a *Dense2D[T]) SetCol(j int, src []T) {
	for i := 0; i < a.NX; i++ {
		a.Data[i*a.NY+j] = src[i]
	}
}

// Fill sets every element to f(i, j).
func (a *Dense2D[T]) Fill(f func(i, j int) T) {
	for i := 0; i < a.NX; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] = f(i, j)
		}
	}
}

// Clone returns a deep copy.
func (a *Dense2D[T]) Clone() *Dense2D[T] {
	out := New2D[T](a.NX, a.NY)
	copy(out.Data, a.Data)
	return out
}

// Transpose returns a new NY×NX array with out(j,i) = a(i,j).
func (a *Dense2D[T]) Transpose() *Dense2D[T] {
	out := New2D[T](a.NY, a.NX)
	for i := 0; i < a.NX; i++ {
		for j := 0; j < a.NY; j++ {
			out.Data[j*a.NX+i] = a.Data[i*a.NY+j]
		}
	}
	return out
}

// Dense3D is a dense NX×NY×NZ array stored with x slowest: element
// (i,j,k) lives at Data[(i*NY+j)*NZ+k].
type Dense3D[T any] struct {
	NX, NY, NZ int
	Data       []T
}

// New3D allocates a zeroed NX×NY×NZ array.
func New3D[T any](nx, ny, nz int) *Dense3D[T] {
	if nx < 0 || ny < 0 || nz < 0 {
		panic(fmt.Sprintf("array: invalid dims %dx%dx%d", nx, ny, nz))
	}
	return &Dense3D[T]{NX: nx, NY: ny, NZ: nz, Data: make([]T, nx*ny*nz)}
}

// At returns element (i, j, k).
func (a *Dense3D[T]) At(i, j, k int) T { return a.Data[(i*a.NY+j)*a.NZ+k] }

// Set assigns element (i, j, k).
func (a *Dense3D[T]) Set(i, j, k int, v T) { a.Data[(i*a.NY+j)*a.NZ+k] = v }

// Plane returns the (j,k) plane at index i as a slice aliasing storage.
func (a *Dense3D[T]) Plane(i int) []T { return a.Data[i*a.NY*a.NZ : (i+1)*a.NY*a.NZ] }

// Fill sets every element to f(i, j, k).
func (a *Dense3D[T]) Fill(f func(i, j, k int) T) {
	idx := 0
	for i := 0; i < a.NX; i++ {
		for j := 0; j < a.NY; j++ {
			for k := 0; k < a.NZ; k++ {
				a.Data[idx] = f(i, j, k)
				idx++
			}
		}
	}
}

// Clone returns a deep copy.
func (a *Dense3D[T]) Clone() *Dense3D[T] {
	out := New3D[T](a.NX, a.NY, a.NZ)
	copy(out.Data, a.Data)
	return out
}
