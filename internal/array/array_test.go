package array

import (
	"testing"
	"testing/quick"
)

func TestDense2DBasics(t *testing.T) {
	a := New2D[float64](3, 4)
	if a.NX != 3 || a.NY != 4 || len(a.Data) != 12 {
		t.Fatalf("bad dims: %+v", a)
	}
	a.Set(1, 2, 7.5)
	if a.At(1, 2) != 7.5 {
		t.Error("Set/At roundtrip failed")
	}
	if a.At(0, 0) != 0 {
		t.Error("fresh array not zeroed")
	}
	row := a.Row(1)
	if len(row) != 4 || row[2] != 7.5 {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 1 // rows alias storage
	if a.At(1, 0) != 1 {
		t.Error("Row should alias storage")
	}
}

func TestDense2DFillAndClone(t *testing.T) {
	a := New2D[int](4, 5)
	a.Fill(func(i, j int) int { return 10*i + j })
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if a.At(i, j) != 10*i+j {
				t.Fatalf("Fill wrong at (%d,%d)", i, j)
			}
		}
	}
	b := a.Clone()
	b.Set(0, 0, -1)
	if a.At(0, 0) == -1 {
		t.Error("Clone should not share storage")
	}
}

func TestDense2DColOps(t *testing.T) {
	a := New2D[int](3, 3)
	a.Fill(func(i, j int) int { return i*3 + j })
	col := a.Col(1, nil)
	if len(col) != 3 || col[0] != 1 || col[1] != 4 || col[2] != 7 {
		t.Errorf("Col = %v", col)
	}
	a.SetCol(1, []int{9, 9, 9})
	if a.At(0, 1) != 9 || a.At(2, 1) != 9 {
		t.Error("SetCol failed")
	}
	// Reuse buffer path.
	buf := make([]int, 3)
	got := a.Col(0, buf)
	if &got[0] != &buf[0] {
		t.Error("Col should use provided buffer")
	}
}

func TestTranspose(t *testing.T) {
	a := New2D[int](2, 3)
	a.Fill(func(i, j int) int { return i*3 + j })
	b := a.Transpose()
	if b.NX != 3 || b.NY != 2 {
		t.Fatalf("transpose dims %dx%d", b.NX, b.NY)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if b.At(j, i) != a.At(i, j) {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
	// Double transpose is identity.
	c := b.Transpose()
	for k := range a.Data {
		if c.Data[k] != a.Data[k] {
			t.Fatal("double transpose != identity")
		}
	}
}

func TestTransposePropertyQuick(t *testing.T) {
	f := func(nx, ny uint8) bool {
		a := New2D[int](int(nx%20), int(ny%20))
		a.Fill(func(i, j int) int { return i*1000 + j })
		b := a.Transpose().Transpose()
		if b.NX != a.NX || b.NY != a.NY {
			return false
		}
		for k := range a.Data {
			if a.Data[k] != b.Data[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInvalidDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dims should panic")
		}
	}()
	New2D[int](-1, 2)
}

func TestDense3DBasics(t *testing.T) {
	a := New3D[float64](2, 3, 4)
	if len(a.Data) != 24 {
		t.Fatalf("bad size %d", len(a.Data))
	}
	a.Set(1, 2, 3, 9)
	if a.At(1, 2, 3) != 9 {
		t.Error("3D Set/At roundtrip failed")
	}
	a.Fill(func(i, j, k int) float64 { return float64(i*100 + j*10 + k) })
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if a.At(i, j, k) != float64(i*100+j*10+k) {
					t.Fatalf("3D Fill wrong at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	p := a.Plane(1)
	if len(p) != 12 || p[0] != 100 {
		t.Errorf("Plane = %v", p)
	}
	b := a.Clone()
	b.Set(0, 0, 0, -5)
	if a.At(0, 0, 0) == -5 {
		t.Error("3D Clone should not share storage")
	}
}
