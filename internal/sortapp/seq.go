// Package sortapp implements the paper's sorting applications: the
// one-deep mergesort developed in §2.5 (Figures 4 and 5), the one-deep
// quicksort of §2.6.2 (non-trivial split, degenerate merge), and the
// traditional recursive parallel mergesort (Figure 1) that Figure 6 uses
// as the baseline.
//
// The sequential algorithms here really sort; their virtual cost is the
// count of comparison-exchange steps actually performed, charged to a
// core.Meter, so the simulated times respond to real algorithmic behaviour
// (e.g. presorted inputs are cheaper).
package sortapp

import (
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
)

// scratchPool recycles merge scratch buffers across MergeSort calls. The
// scratch never escapes a call, so pooling only trades allocator+zeroing
// work for a Get/Put pair — a measurable win when a 16-process world
// sorts 16 blocks per run.
var scratchPool sync.Pool

func getScratch(n int) []int32 {
	if v := scratchPool.Get(); v != nil {
		if s := v.(*[]int32); cap(*s) >= n {
			return (*s)[:n]
		}
	}
	return make([]int32, n)
}

func putScratch(s []int32) {
	scratchPool.Put(&s)
}

// MergeSort sorts a into a new slice using bottom-up mergesort — the
// paper's sequential mergesort — charging the comparisons and element
// moves performed to m. The input is not modified.
//
// The charged costs are exactly those of the textbook formulation (one
// comparison per element emitted while both runs are live, one move per
// element per pass); only the host-side constant factor is tuned. The
// width-1 pass reads the input directly (saving the up-front copy) and
// compare-swaps pairs in place of the general merge.
func MergeSort(m core.Meter, a []int32) []int32 {
	n := len(a)
	out := make([]int32, n)
	if n < 2 {
		copy(out, a)
		return out
	}
	buf := getScratch(n)
	defer putScratch(buf)
	var cmps, moves int64
	// Width-1 pass, straight off the input: each pair costs exactly the
	// one comparison mergeInto would charge for it; an odd tail element
	// is carried over comparison-free.
	for lo := 0; lo+1 < n; lo += 2 {
		x, y := a[lo], a[lo+1]
		if y < x {
			x, y = y, x
		}
		buf[lo], buf[lo+1] = x, y
	}
	if n%2 == 1 {
		buf[n-1] = a[n-1]
	}
	cmps += int64(n / 2)
	moves += int64(n)
	src, dst := buf, out
	for width := 2; width < n; width *= 2 {
		step := 2 * width
		// Adjacent merges within a pass are independent, so running two
		// at once overlaps their serial compare→advance→load chains —
		// the comparisons performed (and charged) are exactly those of
		// merging each pair alone.
		lo := 0
		for ; lo+step < n; lo += 2 * step {
			hi1 := lo + step
			lo2 := lo + step
			mid2 := min(lo2+width, n)
			hi2 := min(lo2+step, n)
			cmps += mergePairInto(
				dst[lo:hi1], src[lo:lo+width], src[lo+width:hi1],
				dst[lo2:hi2], src[lo2:mid2], src[mid2:hi2])
		}
		for ; lo < n; lo += step {
			mid := min(lo+width, n)
			hi := min(lo+step, n)
			cmps += mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		moves += int64(n)
		src, dst = dst, src
	}
	m.Cmps(float64(cmps))
	m.MemWords(float64(moves) / 2) // int32: two elements per word
	if &src[0] != &out[0] {
		copy(out, src)
	}
	return out
}

// mergeInto merges sorted runs a and b into dst (len(dst) == len(a)+len(b))
// and returns the number of comparisons performed.
//
// The merge loop is written branchlessly: on random data the taken side
// of a conditional merge is unpredictable, so the classic if/else form
// spends most of its time in branch mispredictions. Selecting the smaller
// head and advancing the cursors with conditional moves keeps the charged
// comparison count identical (one comparison per emitted element while
// both runs are live, exactly as before — the count is the loop trip
// count, recovered as i+j on exit) while roughly halving the host cost.
func mergeInto(dst, a, b []int32) int64 {
	return mergeResume(dst, a, b, 0, 0, 0)
}

// mergeResume runs the merge from cursor state (i into a, j into b, k into
// dst) to completion and returns the total comparisons for the whole
// merge (i+j when one run exhausts — each both-live iteration costs
// exactly one comparison, wherever it was executed). Chunking by
// min(remaining, remaining) lets the inner loop run with a single counter
// because neither cursor can leave its run within the chunk.
func mergeResume(dst, a, b []int32, i, j, k int) int64 {
	for {
		m := min(len(a)-i, len(b)-j)
		if m == 0 {
			break
		}
		for t := 0; t < m; t++ {
			av, bv := a[i], b[j]
			v := av
			if bv < av {
				v = bv
			}
			adv := 0
			if bv < av {
				adv = 1
			}
			dst[k] = v
			k++
			j += adv
			i += 1 - adv
		}
	}
	cmps := int64(i + j)
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
	return cmps
}

// mergePairInto merges (a1,b1)→d1 and (a2,b2)→d2 — two independent merges
// — in one interleaved loop. A lone merge is latency-bound on its
// compare→advance→load chain; interleaving two lets the chains overlap.
// The comparison count (and the merged output) is exactly the sum of the
// two merges run alone.
func mergePairInto(d1, a1, b1, d2, a2, b2 []int32) int64 {
	i1, j1, k1 := 0, 0, 0
	i2, j2, k2 := 0, 0, 0
	for {
		m := min(min(len(a1)-i1, len(b1)-j1), min(len(a2)-i2, len(b2)-j2))
		if m == 0 {
			break
		}
		for t := 0; t < m; t++ {
			av1, bv1 := a1[i1], b1[j1]
			av2, bv2 := a2[i2], b2[j2]
			v1 := av1
			if bv1 < av1 {
				v1 = bv1
			}
			v2 := av2
			if bv2 < av2 {
				v2 = bv2
			}
			adv1 := 0
			if bv1 < av1 {
				adv1 = 1
			}
			adv2 := 0
			if bv2 < av2 {
				adv2 = 1
			}
			d1[k1] = v1
			d2[k2] = v2
			k1++
			k2++
			j1 += adv1
			i1 += 1 - adv1
			j2 += adv2
			i2 += 1 - adv2
		}
	}
	return mergeResume(d1, a1, b1, i1, j1, k1) + mergeResume(d2, a2, b2, i2, j2, k2)
}

// Merge merges two sorted slices into a new sorted slice, charging m.
func Merge(m core.Meter, a, b []int32) []int32 {
	dst := make([]int32, len(a)+len(b))
	cmps := mergeInto(dst, a, b)
	m.Cmps(float64(cmps))
	m.MemWords(float64(len(dst)) / 2)
	return dst
}

// QuickSort sorts a in place using median-of-three quicksort with an
// insertion-sort tail for small ranges, charging the work performed to m.
func QuickSort(m core.Meter, a []int32) {
	var cmps int64
	quicksort(a, &cmps)
	m.Cmps(float64(cmps))
}

const insertionCutoff = 16

func quicksort(a []int32, cmps *int64) {
	for len(a) > insertionCutoff {
		p := partition(a, cmps)
		// Recurse into the smaller half to bound stack depth.
		if p < len(a)-p-1 {
			quicksort(a[:p], cmps)
			a = a[p+1:]
		} else {
			quicksort(a[p+1:], cmps)
			a = a[:p]
		}
	}
	insertionSort(a, cmps)
}

func insertionSort(a []int32, cmps *int64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 {
			*cmps++
			if a[j] <= v {
				break
			}
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// partition uses the median of first, middle and last elements as pivot
// and returns the pivot's final index.
func partition(a []int32, cmps *int64) int {
	hi := len(a) - 1
	mid := hi / 2
	*cmps += 3
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi-1] = a[hi-1], a[mid]
	i := 0
	for j := 0; j < hi-1; j++ {
		*cmps++
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

// KWayMerge merges k sorted lists into one sorted slice through a
// balanced tree of two-way merges: ⌈log2 k⌉ levels, each a pass of
// independent branchless pair merges. It charges exactly the comparisons
// it performs — at most one per element per level, i.e. ~log2(k) per
// output element — and one element move per level, the honest cost of
// the tree. (The previous binary-heap formulation probed both children at
// every sift step, charging ~2·log2(k) comparisons per element, and its
// data-dependent probe chain resisted the hardware; the tree halves the
// charged comparisons and merges several times faster on the host.)
// Output order is identical to the heap's: the merge is stable, with
// ties broken by list index.
func KWayMerge(m core.Meter, lists [][]int32) []int32 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]int32, total)
	var cmps, moves int64
	if len(lists) <= 1 {
		// The merge degenerates to a copy.
		if len(lists) == 1 {
			copy(out, lists[0])
		}
		m.Cmps(0)
		m.MemWords(float64(total) / 2)
		return out
	}
	cur := make([][]int32, len(lists))
	copy(cur, lists)
	// Two scratch arenas alternate between levels; the final level merges
	// straight into out. Every list occupies the subrange of an arena
	// matching its global element range (offsets are cumulative lengths
	// and element order never changes), so a level's writes — which cover
	// exactly the element ranges of the lists it merges — can never
	// clobber a list carried over from an earlier level: the carry is
	// always the trailing list, disjoint from every merged range. When an
	// arena-resident carry is finally merged as the second operand of a
	// pair, its storage tail-aligns with the destination range; a forward
	// merge is safe in that layout because each iteration reads both run
	// heads before it stores, and the store index never passes the unread
	// second-run cursor.
	var arenas [2][]int32
	ai := 0
	for len(cur) > 1 {
		var dst []int32
		if len(cur) <= 2 {
			dst = out
		} else {
			if arenas[ai] == nil {
				arenas[ai] = getScratch(total)
			}
			dst = arenas[ai]
			ai ^= 1
		}
		next := make([][]int32, 0, (len(cur)+1)/2)
		off := 0
		p := 0
		// Adjacent pair merges are independent: run them two at a time so
		// their latency chains overlap, exactly as MergeSort's passes do.
		for ; p+3 < len(cur); p += 4 {
			a1, b1 := cur[p], cur[p+1]
			a2, b2 := cur[p+2], cur[p+3]
			n1, n2 := len(a1)+len(b1), len(a2)+len(b2)
			d1 := dst[off : off+n1]
			d2 := dst[off+n1 : off+n1+n2]
			cmps += mergePairInto(d1, a1, b1, d2, a2, b2)
			next = append(next, d1, d2)
			off += n1 + n2
		}
		for ; p+1 < len(cur); p += 2 {
			a, b := cur[p], cur[p+1]
			n := len(a) + len(b)
			d := dst[off : off+n]
			cmps += mergeInto(d, a, b)
			next = append(next, d)
			off += n
		}
		moves += int64(off)
		if p < len(cur) {
			next = append(next, cur[p])
		}
		cur = next
	}
	for i := range arenas {
		if arenas[i] != nil {
			putScratch(arenas[i])
		}
	}
	m.Cmps(float64(cmps))
	m.MemWords(float64(moves) / 2)
	return out
}

// Concat concatenates parts into a new slice, charging copy cost.
func Concat(m core.Meter, parts [][]int32) []int32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	m.MemWords(float64(total) / 2)
	return out
}

// IsSorted reports whether a is in ascending order.
func IsSorted(a []int32) bool {
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			return false
		}
	}
	return true
}

// IsGloballySorted reports whether the rank-order concatenation of parts
// is sorted: each part sorted, and part boundaries in order.
func IsGloballySorted(parts [][]int32) bool {
	var last int32
	have := false
	for _, p := range parts {
		if !IsSorted(p) {
			return false
		}
		if len(p) == 0 {
			continue
		}
		if have && p[0] < last {
			return false
		}
		last = p[len(p)-1]
		have = true
	}
	return true
}

// RandomInts returns n pseudo-random int32 values from the given seed
// (deterministic across runs).
func RandomInts(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Uint32())
	}
	return out
}

// BlockDistribute splits data into n contiguous blocks as evenly as
// possible (the paper's assumed initial distribution).
func BlockDistribute(data []int32, n int) [][]int32 {
	parts := make([][]int32, n)
	for i := 0; i < n; i++ {
		lo := i * len(data) / n
		hi := (i + 1) * len(data) / n
		parts[i] = data[lo:hi]
	}
	return parts
}

// searchGreater returns the first index in sorted a whose value exceeds s.
func searchGreater(a []int32, s int32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] > s })
}
