// Package sortapp implements the paper's sorting applications: the
// one-deep mergesort developed in §2.5 (Figures 4 and 5), the one-deep
// quicksort of §2.6.2 (non-trivial split, degenerate merge), and the
// traditional recursive parallel mergesort (Figure 1) that Figure 6 uses
// as the baseline.
//
// The sequential algorithms here really sort; their virtual cost is the
// count of comparison-exchange steps actually performed, charged to a
// core.Meter, so the simulated times respond to real algorithmic behaviour
// (e.g. presorted inputs are cheaper).
package sortapp

import (
	"math/rand"
	"sort"

	"repro/internal/core"
)

// MergeSort sorts a into a new slice using bottom-up mergesort — the
// paper's sequential mergesort — charging the comparisons and element
// moves performed to m. The input is not modified.
func MergeSort(m core.Meter, a []int32) []int32 {
	n := len(a)
	out := make([]int32, n)
	copy(out, a)
	if n < 2 {
		return out
	}
	buf := make([]int32, n)
	src, dst := out, buf
	var cmps, moves int64
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			c := mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi])
			cmps += c
			moves += int64(hi - lo)
		}
		src, dst = dst, src
	}
	m.Cmps(float64(cmps))
	m.MemWords(float64(moves) / 2) // int32: two elements per word
	if &src[0] != &out[0] {
		copy(out, src)
	}
	return out
}

// mergeInto merges sorted runs a and b into dst (len(dst) == len(a)+len(b))
// and returns the number of comparisons performed.
func mergeInto(dst, a, b []int32) int64 {
	i, j, k := 0, 0, 0
	var cmps int64
	for i < len(a) && j < len(b) {
		cmps++
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
	return cmps
}

// Merge merges two sorted slices into a new sorted slice, charging m.
func Merge(m core.Meter, a, b []int32) []int32 {
	dst := make([]int32, len(a)+len(b))
	cmps := mergeInto(dst, a, b)
	m.Cmps(float64(cmps))
	m.MemWords(float64(len(dst)) / 2)
	return dst
}

// QuickSort sorts a in place using median-of-three quicksort with an
// insertion-sort tail for small ranges, charging the work performed to m.
func QuickSort(m core.Meter, a []int32) {
	var cmps int64
	quicksort(a, &cmps)
	m.Cmps(float64(cmps))
}

const insertionCutoff = 16

func quicksort(a []int32, cmps *int64) {
	for len(a) > insertionCutoff {
		p := partition(a, cmps)
		// Recurse into the smaller half to bound stack depth.
		if p < len(a)-p-1 {
			quicksort(a[:p], cmps)
			a = a[p+1:]
		} else {
			quicksort(a[p+1:], cmps)
			a = a[:p]
		}
	}
	insertionSort(a, cmps)
}

func insertionSort(a []int32, cmps *int64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 {
			*cmps++
			if a[j] <= v {
				break
			}
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// partition uses the median of first, middle and last elements as pivot
// and returns the pivot's final index.
func partition(a []int32, cmps *int64) int {
	hi := len(a) - 1
	mid := hi / 2
	*cmps += 3
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi-1] = a[hi-1], a[mid]
	i := 0
	for j := 0; j < hi-1; j++ {
		*cmps++
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

// KWayMerge merges k sorted lists into one sorted slice with a binary
// heap of list heads, charging ~log2(k) comparisons per output element.
func KWayMerge(m core.Meter, lists [][]int32) []int32 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]int32, 0, total)
	// heap of (value, list index); pos tracks each list's cursor.
	type head struct {
		v    int32
		list int
	}
	var cmps int64
	heap := make([]head, 0, len(lists))
	pos := make([]int, len(lists))
	less := func(a, b head) bool {
		cmps++
		if a.v != b.v {
			return a.v < b.v
		}
		return a.list < b.list // tie-break for stable, deterministic output
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	for li, l := range lists {
		if len(l) > 0 {
			heap = append(heap, head{l[0], li})
			pos[li] = 1
			up(len(heap) - 1)
		}
	}
	for len(heap) > 0 {
		h := heap[0]
		out = append(out, h.v)
		li := h.list
		if pos[li] < len(lists[li]) {
			heap[0] = head{lists[li][pos[li]], li}
			pos[li]++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			down(0)
		}
	}
	m.Cmps(float64(cmps))
	m.MemWords(float64(total) / 2)
	return out
}

// Concat concatenates parts into a new slice, charging copy cost.
func Concat(m core.Meter, parts [][]int32) []int32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	m.MemWords(float64(total) / 2)
	return out
}

// IsSorted reports whether a is in ascending order.
func IsSorted(a []int32) bool {
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			return false
		}
	}
	return true
}

// IsGloballySorted reports whether the rank-order concatenation of parts
// is sorted: each part sorted, and part boundaries in order.
func IsGloballySorted(parts [][]int32) bool {
	var last int32
	have := false
	for _, p := range parts {
		if !IsSorted(p) {
			return false
		}
		if len(p) == 0 {
			continue
		}
		if have && p[0] < last {
			return false
		}
		last = p[len(p)-1]
		have = true
	}
	return true
}

// RandomInts returns n pseudo-random int32 values from the given seed
// (deterministic across runs).
func RandomInts(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Uint32())
	}
	return out
}

// BlockDistribute splits data into n contiguous blocks as evenly as
// possible (the paper's assumed initial distribution).
func BlockDistribute(data []int32, n int) [][]int32 {
	parts := make([][]int32, n)
	for i := 0; i < n; i++ {
		lo := i * len(data) / n
		hi := (i + 1) * len(data) / n
		parts[i] = data[lo:hi]
	}
	return parts
}

// searchGreater returns the first index in sorted a whose value exceeds s.
func searchGreater(a []int32, s int32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] > s })
}
