package sortapp

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/onedeep"
)

// The sorting applications of §2 self-register with the arch facade:
// one-deep mergesort and one-deep quicksort, both verified globally
// sorted after the run.

func init() {
	arch.Register(arch.App{
		Name:        "mergesort",
		Desc:        "one-deep mergesort (§2.5)",
		DefaultSize: 1 << 19,
		Run: func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
			return runSortApp(ctx, s, "mergesort", 1, OneDeepMergesort(onedeep.Centralized))
		},
	})
	arch.Register(arch.App{
		Name:        "quicksort",
		Desc:        "one-deep quicksort (§2.6.2)",
		DefaultSize: 1 << 19,
		Run: func(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
			return runSortApp(ctx, s, "quicksort", 2, OneDeepQuicksort(onedeep.Centralized))
		},
	})
}

// sortOut is one run's verification summary: every rank's sorted block,
// combined into a global sortedness check.
type sortOut struct {
	Sorted bool
}

// SortProgram wraps a one-deep sorting spec as an arch.Program over
// pre-distributed blocks: each rank sorts its block through the archetype
// and the combine stage verifies the blocks are globally sorted.
func SortProgram(spec *onedeep.Spec[[]int32, []int32, []int32, []int32]) arch.Program[[][]int32, sortOut] {
	return arch.SPMD(
		func(p *arch.Proc, blocks [][]int32) []int32 {
			return onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		},
		func(parts [][]int32) sortOut {
			return sortOut{Sorted: IsGloballySorted(parts)}
		})
}

func runSortApp(ctx context.Context, s arch.Settings, name string, seed int64, spec *onedeep.Spec[[]int32, []int32, []int32, []int32]) (string, arch.Report, error) {
	n := s.Size
	data := RandomInts(n, seed)
	blocks := BlockDistribute(data, s.Procs)
	out, rep, err := arch.RunWith(ctx, SortProgram(spec), s, blocks)
	if err != nil {
		return "", rep, err
	}
	if !out.Sorted {
		return "", rep, fmt.Errorf("%s: output not sorted", name)
	}
	return fmt.Sprintf("one-deep %s of %d int32 (verified sorted)", name, n), rep, nil
}
