package sortapp

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/onedeep"
	"repro/internal/spmd"
)

// runOneDeepSPMD runs the given spec over nprocs simulated processes on
// block-distributed data and returns the concatenated result.
func runOneDeepSPMD(t *testing.T, spec *onedeep.Spec[[]int32, []int32, []int32, []int32], data []int32, nprocs int) [][]int32 {
	t.Helper()
	blocks := BlockDistribute(data, nprocs)
	outs := make([][]int32, nprocs)
	w := spmd.MustWorld(nprocs, machine.IntelDelta())
	_, err := w.Run(func(p *spmd.Proc) {
		outs[p.Rank()] = onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		t.Fatalf("SPMD run failed: %v", err)
	}
	return outs
}

func concatAll(parts [][]int32) []int32 {
	var all []int32
	for _, p := range parts {
		all = append(all, p...)
	}
	return all
}

func TestOneDeepMergesortAllWorldSizes(t *testing.T) {
	data := RandomInts(5000, 11)
	want := sortedCopy(data)
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for _, strat := range []onedeep.ParamStrategy{onedeep.Centralized, onedeep.Replicated} {
			outs := runOneDeepSPMD(t, OneDeepMergesort(strat), data, n)
			if !IsGloballySorted(outs) {
				t.Fatalf("n=%d strat=%v: output not globally sorted", n, strat)
			}
			if got := concatAll(outs); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d strat=%v: wrong multiset or order", n, strat)
			}
		}
	}
}

func TestOneDeepQuicksortAllWorldSizes(t *testing.T) {
	data := RandomInts(5000, 12)
	want := sortedCopy(data)
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		outs := runOneDeepSPMD(t, OneDeepQuicksort(onedeep.Centralized), data, n)
		if !IsGloballySorted(outs) {
			t.Fatalf("n=%d: output not globally sorted", n)
		}
		if got := concatAll(outs); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: wrong result", n)
		}
	}
}

func TestOneDeepPostcondition(t *testing.T) {
	// "After the algorithm terminates, process i has a sorted list whose
	// elements are larger than the elements of process i-1's list" (§2.5.2)
	data := RandomInts(4000, 13)
	outs := runOneDeepSPMD(t, OneDeepMergesort(onedeep.Centralized), data, 8)
	for i := 1; i < len(outs); i++ {
		if len(outs[i-1]) == 0 || len(outs[i]) == 0 {
			continue
		}
		if outs[i][0] < outs[i-1][len(outs[i-1])-1] {
			t.Fatalf("process %d's first element precedes process %d's last", i, i-1)
		}
	}
}

func TestV1MatchesSPMD(t *testing.T) {
	// The paper's semantics-preservation claim: version 1 (parfor) and
	// version 2 (SPMD) give identical results, in both ParFor modes.
	data := RandomInts(3000, 14)
	for _, nlogical := range []int{1, 4, 7} {
		blocks := BlockDistribute(data, nlogical)
		for _, spec := range []*onedeep.Spec[[]int32, []int32, []int32, []int32]{
			OneDeepMergesort(onedeep.Centralized),
			OneDeepQuicksort(onedeep.Centralized),
		} {
			seqOut := onedeep.RunV1(core.Sequential, spec, blocks)
			conOut := onedeep.RunV1(core.Concurrent, spec, blocks)
			if !reflect.DeepEqual(seqOut, conOut) {
				t.Fatalf("%s n=%d: sequential and concurrent V1 differ", spec.Name, nlogical)
			}
			spmdOut := runOneDeepSPMD(t, spec, data, nlogical)
			if !reflect.DeepEqual(seqOut, spmdOut) {
				t.Fatalf("%s n=%d: V1 and SPMD differ", spec.Name, nlogical)
			}
		}
	}
}

func TestCentralizedAndReplicatedAgree(t *testing.T) {
	data := RandomInts(2000, 15)
	a := runOneDeepSPMD(t, OneDeepMergesort(onedeep.Centralized), data, 6)
	b := runOneDeepSPMD(t, OneDeepMergesort(onedeep.Replicated), data, 6)
	if !reflect.DeepEqual(a, b) {
		t.Error("parameter strategies changed the result")
	}
}

func TestTraditionalMergesortSeq(t *testing.T) {
	r := TraditionalMergesort(16)
	for i, in := range awkwardInputs {
		got := r.SolveSeq(core.Nop, in)
		if !reflect.DeepEqual(got, sortedCopy(in)) {
			t.Errorf("case %d: SolveSeq wrong", i)
		}
	}
}

func TestTraditionalMergesortSPMD(t *testing.T) {
	data := RandomInts(4096, 16)
	want := sortedCopy(data)
	for _, n := range []int{1, 2, 4, 8, 16} {
		r := TraditionalMergesort(16)
		var got []int32
		w := spmd.MustWorld(n, machine.IntelDelta())
		_, err := w.Run(func(p *spmd.Proc) {
			out := r.RunSPMD(p, data)
			if p.Rank() == 0 {
				got = out
			} else if out != nil {
				t.Errorf("non-root rank %d returned non-nil", p.Rank())
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: traditional SPMD sort wrong", n)
		}
	}
}

func TestTraditionalRejectsNonPowerOfTwo(t *testing.T) {
	r := TraditionalMergesort(16)
	w := spmd.MustWorld(3, machine.IntelDelta())
	_, err := w.Run(func(p *spmd.Proc) { r.RunSPMD(p, RandomInts(100, 1)) })
	if err == nil {
		t.Error("expected power-of-two requirement to be enforced")
	}
}

func TestOneDeepBeatsTraditionalOnDelta(t *testing.T) {
	// The paper's Figure 6 headline: one-deep mergesort speeds up far
	// better than the traditional parallelization. Shape assertion at a
	// modest size so the test stays fast.
	const n = 1 << 17
	data := RandomInts(n, 99)
	model := machine.IntelDelta()
	seq := core.NewTally(model)
	MergeSort(seq, data)

	const procs = 16
	spec := OneDeepMergesort(onedeep.Centralized)
	blocks := BlockDistribute(data, procs)
	w := spmd.MustWorld(procs, model)
	resOne, err := w.Run(func(p *spmd.Proc) {
		onedeep.RunSPMD(p, spec, blocks[p.Rank()])
	})
	if err != nil {
		t.Fatal(err)
	}
	r := TraditionalMergesort(32)
	w2 := spmd.MustWorld(procs, model)
	resTrad, err := w2.Run(func(p *spmd.Proc) { r.RunSPMD(p, data) })
	if err != nil {
		t.Fatal(err)
	}
	spOne := seq.Seconds / resOne.Makespan
	spTrad := seq.Seconds / resTrad.Makespan
	if spOne <= spTrad {
		t.Errorf("one-deep speedup %.2f should exceed traditional %.2f", spOne, spTrad)
	}
	if spOne < 6 {
		t.Errorf("one-deep speedup %.2f at 16 procs implausibly low", spOne)
	}
}

func TestOneDeepFewerElementsThanProcs(t *testing.T) {
	// Empty local blocks everywhere possible: the exchanges must still
	// terminate and the result must still be the sorted input.
	for _, n := range []int{0, 1, 3, 7} {
		data := RandomInts(n, 55)
		want := sortedCopy(data)
		for _, spec := range []*onedeep.Spec[[]int32, []int32, []int32, []int32]{
			OneDeepMergesort(onedeep.Centralized),
			OneDeepQuicksort(onedeep.Replicated),
		} {
			outs := runOneDeepSPMD(t, spec, data, 8)
			got := concatAll(outs)
			if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("%s with %d elements on 8 procs: got %v want %v", spec.Name, n, got, want)
			}
		}
	}
}

func TestOneDeepDeterministicMakespan(t *testing.T) {
	data := RandomInts(2000, 17)
	spec := OneDeepMergesort(onedeep.Centralized)
	blocks := BlockDistribute(data, 8)
	var first float64
	for trial := 0; trial < 5; trial++ {
		w := spmd.MustWorld(8, machine.IntelDelta())
		res, err := w.Run(func(p *spmd.Proc) {
			onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("makespan varies across runs: %g vs %g", res.Makespan, first)
		}
	}
}
