package sortapp

import (
	"math"

	"repro/internal/core"
	"repro/internal/onedeep"
)

// regularSamples picks k elements of a at regular positions — the "small
// sample of the problem data" from which split/merge parameters are
// computed (§2.2). Works on sorted or unsorted data.
func regularSamples(m core.Meter, a []int32, k int) []int32 {
	out := make([]int32, 0, k)
	for i := 0; i < k; i++ {
		idx := (i + 1) * len(a) / (k + 1)
		if idx >= len(a) {
			idx = len(a) - 1
		}
		if idx >= 0 {
			out = append(out, a[idx])
		}
	}
	m.MemWords(float64(len(out)) / 2)
	return out
}

// planSplitters combines per-process samples into n-1 global splitters by
// sorting all samples and picking regularly spaced elements — the
// regular-sampling strategy (cf. Shi & Schaeffer, cited by the paper).
func planSplitters(m core.Meter, samples [][]int32, n int) []int32 {
	all := Concat(m, samples)
	sorted := MergeSort(m, all)
	splitters := make([]int32, 0, n-1)
	for i := 1; i < n; i++ {
		idx := i*len(sorted)/n - 1
		if idx < 0 {
			idx = 0
		}
		if len(sorted) > 0 {
			splitters = append(splitters, sorted[idx])
		}
	}
	return splitters
}

// partitionSorted cuts a sorted list into n contiguous pieces at the
// splitters ("elements with values at most s_i belong to the i-th list",
// §2.5.2), via binary search — ~(n-1)·log2(len) comparisons.
func partitionSorted(m core.Meter, a []int32, splitters []int32, n int) [][]int32 {
	parts := make([][]int32, n)
	lo := 0
	cmps := 0.0
	for i := 0; i < n-1; i++ {
		var hi int
		if i < len(splitters) {
			hi = lo + searchGreater(a[lo:], splitters[i])
			cmps += math.Log2(float64(len(a) - lo + 2))
		} else {
			hi = len(a)
		}
		parts[i] = a[lo:hi]
		lo = hi
	}
	parts[n-1] = a[lo:]
	m.Cmps(cmps)
	return parts
}

// partitionUnsorted buckets unsorted data by the n-1 pivots: each element
// binary-searches its bucket (~log2 n comparisons per element).
func partitionUnsorted(m core.Meter, a []int32, pivots []int32, n int) [][]int32 {
	parts := make([][]int32, n)
	if n == 1 {
		parts[0] = a
		return parts
	}
	counts := make([]int, n)
	buckets := make([]int, len(a))
	var cmps int64
	for i, v := range a {
		lo, hi := 0, len(pivots)
		for lo < hi {
			mid := (lo + hi) / 2
			cmps++
			if v <= pivots[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		buckets[i] = lo
		counts[lo]++
	}
	for b := 0; b < n; b++ {
		parts[b] = make([]int32, 0, counts[b])
	}
	for i, v := range a {
		parts[buckets[i]] = append(parts[buckets[i]], v)
	}
	m.Cmps(float64(cmps))
	m.MemWords(float64(len(a)) / 2)
	return parts
}

// OneDeepMergesort returns the one-deep mergesort of §2.5: degenerate
// split (the initial distribution is the split), local sequential sort,
// and a merge phase that computes splitters from samples, repartitions
// all-to-all, and k-way-merges locally. strategy selects how splitters
// are computed and distributed.
func OneDeepMergesort(strategy onedeep.ParamStrategy) *onedeep.Spec[[]int32, []int32, []int32, []int32] {
	return &onedeep.Spec[[]int32, []int32, []int32, []int32]{
		Name:  "one-deep mergesort",
		Split: nil, // degenerate: data arrives distributed
		Solve: func(m core.Meter, local []int32) []int32 {
			return MergeSort(m, local)
		},
		Merge: &onedeep.Exchange[[]int32, []int32]{
			Strategy: strategy,
			Sample: func(m core.Meter, local []int32) []int32 {
				// n samples per process would need n, which Sample
				// doesn't receive; a fixed modest sample count works
				// for any process count (splitter quality degrades
				// gracefully).
				return regularSamples(m, local, sampleCount)
			},
			Plan: func(m core.Meter, samples [][]int32) []int32 {
				return planSplitters(m, samples, len(samples))
			},
			Partition: func(m core.Meter, local []int32, splitters []int32, n int) [][]int32 {
				return partitionSorted(m, local, splitters, n)
			},
			Combine: func(m core.Meter, parts [][]int32) []int32 {
				return KWayMerge(m, parts)
			},
		},
	}
}

// sampleCount is the number of sample elements each process contributes to
// splitter computation.
const sampleCount = 32

// OneDeepQuicksort returns the one-deep quicksort of §2.6.2: a non-trivial
// split phase that selects pivots and redistributes raw data so process i
// holds exactly the elements between pivot i-1 and pivot i, a local
// sequential sort, and a degenerate merge (the sorted result is the
// rank-order concatenation of the local lists).
func OneDeepQuicksort(strategy onedeep.ParamStrategy) *onedeep.Spec[[]int32, []int32, []int32, []int32] {
	return &onedeep.Spec[[]int32, []int32, []int32, []int32]{
		Name: "one-deep quicksort",
		Split: &onedeep.Exchange[[]int32, []int32]{
			Strategy: strategy,
			Sample: func(m core.Meter, local []int32) []int32 {
				return regularSamples(m, local, sampleCount)
			},
			Plan: func(m core.Meter, samples [][]int32) []int32 {
				return planSplitters(m, samples, len(samples))
			},
			Partition: func(m core.Meter, local []int32, pivots []int32, n int) [][]int32 {
				return partitionUnsorted(m, local, pivots, n)
			},
			Combine: func(m core.Meter, parts [][]int32) []int32 {
				return Concat(m, parts)
			},
		},
		Solve: func(m core.Meter, local []int32) []int32 {
			out := make([]int32, len(local))
			copy(out, local)
			QuickSort(m, out)
			return out
		},
		Merge: nil, // degenerate: concatenation
	}
}

// TraditionalMergesort returns the traditional recursive mergesort
// parallelized per Figure 1 — the Figure 6 baseline. threshold is the
// sequential base-case size.
func TraditionalMergesort(threshold int) *onedeep.Recursive[[]int32, []int32] {
	return &onedeep.Recursive[[]int32, []int32]{
		Name:      "traditional mergesort",
		Threshold: threshold,
		Size:      func(d []int32) int { return len(d) },
		Split: func(m core.Meter, d []int32) ([]int32, []int32) {
			mid := len(d) / 2
			return d[:mid], d[mid:]
		},
		Base: func(m core.Meter, d []int32) []int32 {
			out := make([]int32, len(d))
			copy(out, d)
			var cmps int64
			insertionSort(out, &cmps)
			m.Cmps(float64(cmps))
			return out
		},
		Merge: func(m core.Meter, a, b []int32) []int32 {
			return Merge(m, a, b)
		},
	}
}
