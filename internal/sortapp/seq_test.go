package sortapp

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/machine"
)

func sortedCopy(a []int32) []int32 {
	out := make([]int32, len(a))
	copy(out, a)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var awkwardInputs = [][]int32{
	nil,
	{},
	{5},
	{2, 1},
	{1, 2},
	{3, 3, 3, 3},
	{5, 4, 3, 2, 1},
	{1, 2, 3, 4, 5},
	{0, -1, 1, -2, 2},
	RandomInts(1000, 7),
	RandomInts(1023, 8), // non-power-of-two
	RandomInts(1024, 9),
}

func TestMergeSortMatchesStdlib(t *testing.T) {
	for i, in := range awkwardInputs {
		orig := make([]int32, len(in))
		copy(orig, in)
		got := MergeSort(core.Nop, in)
		if !reflect.DeepEqual(got, sortedCopy(orig)) {
			t.Errorf("case %d: MergeSort wrong", i)
		}
		if len(in) > 0 && !reflect.DeepEqual(in, orig) {
			t.Errorf("case %d: MergeSort mutated its input", i)
		}
	}
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	for i, in := range awkwardInputs {
		a := make([]int32, len(in))
		copy(a, in)
		QuickSort(core.Nop, a)
		if !reflect.DeepEqual(a, sortedCopy(in)) {
			t.Errorf("case %d: QuickSort wrong", i)
		}
	}
}

func TestSortPropertyQuick(t *testing.T) {
	f := func(a []int32) bool {
		want := sortedCopy(a)
		ms := MergeSort(core.Nop, a)
		qs := make([]int32, len(a))
		copy(qs, a)
		QuickSort(core.Nop, qs)
		return reflect.DeepEqual(ms, want) && reflect.DeepEqual(qs, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortChargesNLogN(t *testing.T) {
	m := machine.IBMSP()
	n := 1 << 14
	tally := core.NewTally(m)
	MergeSort(tally, RandomInts(n, 3))
	// Comparisons should be within [n/2 log n, n log n] roughly; the
	// charge should therefore be within a factor of a few of
	// n log2 n CmpTime.
	ideal := float64(n) * 14 * m.CmpTime
	if tally.Seconds < ideal/4 || tally.Seconds > 4*ideal {
		t.Errorf("mergesort charge %g not within 4x of n log n estimate %g", tally.Seconds, ideal)
	}
}

func TestMergeSortCheaperOnPresorted(t *testing.T) {
	m := machine.IBMSP()
	n := 1 << 14
	random := RandomInts(n, 3)
	presorted := sortedCopy(random)
	tr, tp := core.NewTally(m), core.NewTally(m)
	MergeSort(tr, random)
	MergeSort(tp, presorted)
	if tp.Seconds >= tr.Seconds {
		t.Errorf("presorted input should charge fewer comparisons: %g vs %g", tp.Seconds, tr.Seconds)
	}
}

func TestMerge(t *testing.T) {
	a := []int32{1, 3, 5}
	b := []int32{2, 3, 4, 6}
	got := Merge(core.Nop, a, b)
	want := []int32{1, 2, 3, 3, 4, 5, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merge = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(Merge(core.Nop, nil, b), b) {
		t.Error("Merge with empty left failed")
	}
	if !reflect.DeepEqual(Merge(core.Nop, a, nil), a) {
		t.Error("Merge with empty right failed")
	}
}

func TestKWayMerge(t *testing.T) {
	cases := [][][]int32{
		{},
		{{1, 2, 3}},
		{{1, 4}, {2, 5}, {3, 6}},
		{{}, {1}, {}, {0, 2}},
		{{5, 5, 5}, {5, 5}},
	}
	for i, lists := range cases {
		var all []int32
		for _, l := range lists {
			all = append(all, l...)
		}
		got := KWayMerge(core.Nop, lists)
		if !reflect.DeepEqual(got, sortedCopy(all)) {
			t.Errorf("case %d: KWayMerge = %v", i, got)
		}
	}
}

func TestKWayMergePropertyQuick(t *testing.T) {
	f := func(raw [][]int32) bool {
		lists := make([][]int32, len(raw))
		var all []int32
		for i, l := range raw {
			lists[i] = sortedCopy(l)
			all = append(all, l...)
		}
		return reflect.DeepEqual(KWayMerge(core.Nop, lists), sortedCopy(all))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcat(t *testing.T) {
	got := Concat(core.Nop, [][]int32{{1, 2}, nil, {3}})
	if !reflect.DeepEqual(got, []int32{1, 2, 3}) {
		t.Errorf("Concat = %v", got)
	}
}

func TestIsSortedAndGloballySorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]int32{1}) || !IsSorted([]int32{1, 1, 2}) {
		t.Error("IsSorted false negatives")
	}
	if IsSorted([]int32{2, 1}) {
		t.Error("IsSorted false positive")
	}
	if !IsGloballySorted([][]int32{{1, 2}, {}, {2, 3}}) {
		t.Error("IsGloballySorted false negative")
	}
	if IsGloballySorted([][]int32{{1, 5}, {4, 6}}) {
		t.Error("IsGloballySorted should reject overlapping parts")
	}
	if IsGloballySorted([][]int32{{2, 1}}) {
		t.Error("IsGloballySorted should reject unsorted part")
	}
}

func TestBlockDistribute(t *testing.T) {
	data := RandomInts(10, 1)
	parts := BlockDistribute(data, 3)
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	var back []int32
	for _, p := range parts {
		back = append(back, p...)
	}
	if !reflect.DeepEqual(back, data) {
		t.Error("concatenated blocks != original")
	}
	// Sizes must differ by at most 1.
	for _, p := range parts {
		if len(p) < 3 || len(p) > 4 {
			t.Errorf("uneven block size %d", len(p))
		}
	}
}

func TestRandomIntsDeterministic(t *testing.T) {
	a := RandomInts(100, 42)
	b := RandomInts(100, 42)
	c := RandomInts(100, 43)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed should give same data")
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should give different data")
	}
}

func TestPartitionSorted(t *testing.T) {
	a := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	parts := partitionSorted(core.Nop, a, []int32{3, 6}, 3)
	want := [][]int32{{1, 2, 3}, {4, 5, 6}, {7, 8}}
	if !reflect.DeepEqual(parts, want) {
		t.Errorf("partitionSorted = %v, want %v", parts, want)
	}
	// Splitter below all data: first part empty.
	parts = partitionSorted(core.Nop, a, []int32{0, 100}, 3)
	if len(parts[0]) != 0 || len(parts[1]) != 8 || len(parts[2]) != 0 {
		t.Errorf("extreme splitters: %v", parts)
	}
}

func TestPartitionUnsortedPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		nparts := rng.Intn(8) + 1
		data := RandomInts(n, int64(trial))
		pivots := sortedCopy(RandomInts(nparts-1, int64(trial+1000)))
		parts := partitionUnsorted(core.Nop, data, pivots, nparts)
		var all []int32
		for b, p := range parts {
			for _, v := range p {
				// Bucket invariant: pivots[b-1] < v <= pivots[b].
				if b > 0 && v <= pivots[b-1] {
					t.Fatalf("trial %d: value %d too small for bucket %d", trial, v, b)
				}
				if b < len(pivots) && v > pivots[b] {
					t.Fatalf("trial %d: value %d too large for bucket %d", trial, v, b)
				}
			}
			all = append(all, p...)
		}
		if !reflect.DeepEqual(sortedCopy(all), sortedCopy(data)) {
			t.Fatalf("trial %d: multiset not preserved", trial)
		}
	}
}

func TestPlanSplittersSortedAndBounded(t *testing.T) {
	samples := [][]int32{{5, 1, 9}, {2, 8}, {7}}
	sp := planSplitters(core.Nop, samples, 3)
	if len(sp) != 2 {
		t.Fatalf("want 2 splitters, got %d", len(sp))
	}
	if !IsSorted(sp) {
		t.Errorf("splitters not sorted: %v", sp)
	}
}
