// Package backoff implements capped exponential backoff with jitter for
// retrying transient failures: worker dials racing coordinator startup,
// and worker reconnects after a lost coordinator connection (the elastic
// backend's workers redial instead of dying with the link).
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Policy describes a retry schedule: Attempts tries, sleeping
// Base·Factor^i (capped at Max) between consecutive tries, with the sleep
// perturbed by ±Jitter (a fraction in [0, 1]) of itself so a fleet of
// retriers does not reconnect in lockstep.
type Policy struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
	Factor   float64
	Jitter   float64
}

// Dial is the schedule for initial connection attempts racing a
// coordinator's startup: ~6 s worst-case total wait.
func Dial() Policy {
	return Policy{Attempts: 8, Base: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.5}
}

// Delay returns the backoff delay after attempt i (0-based), jittered.
func (p Policy) Delay(i int) time.Duration {
	d := float64(p.Base)
	for ; i > 0 && d < float64(p.Max); i-- {
		d *= p.Factor
	}
	if m := float64(p.Max); p.Max > 0 && d > m {
		d = m
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	return time.Duration(d)
}

// Retry runs f up to p.Attempts times, sleeping the jittered schedule
// between failures, and returns nil on the first success or the last
// error. Cancelling ctx ends the wait early with the context's error.
func (p Policy) Retry(ctx context.Context, f func() error) error {
	attempts := p.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = f(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		select {
		case <-time.After(p.Delay(i)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return err
}
