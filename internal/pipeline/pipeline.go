// Package pipeline demonstrates archetype composition — the paper's
// future-work direction of "task-parallel compositions of data-parallel
// computations" (§ Conclusions; also the group-communication archetype of
// the authors' companion work).
//
// A stream of 2D frames flows through a two-stage pipeline. The world is
// partitioned into two equal process groups: stage A performs the row
// FFTs of each frame (a data-parallel mesh-spectral row operation over
// its group) and ships its blocks to stage B, which performs the
// within-group rows→columns redistribution and the column FFTs, then
// gathers the transformed frame. Because the stages run in different
// groups, frame k+1's row FFTs overlap frame k's column FFTs — task
// parallelism between data-parallel archetype computations.
//
// Lockstep mode disables the overlap (stage A waits for an
// acknowledgement per frame) so the benefit of composition is measurable:
// the overlapped makespan must beat the lockstep one for any stream
// longer than one frame.
package pipeline

import (
	"fmt"

	"repro/internal/array"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

// Mode selects whether the two stages overlap across frames.
type Mode int

const (
	// Overlapped lets stage A run ahead of stage B — the composed,
	// task-parallel execution.
	Overlapped Mode = iota
	// Lockstep serializes frames across the stages (stage A waits for a
	// per-frame acknowledgement); the baseline that quantifies overlap.
	Lockstep
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Overlapped:
		return "overlapped"
	case Lockstep:
		return "lockstep"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

const (
	tagBlock = collective.TagUser + 60
	tagAck   = collective.TagUser + 61
)

// Fill provides frame data: the value of frame f at grid point (i, j).
type Fill func(frame, i, j int) complex128

// FFTStream runs a stream of frames×(n×n) 2D FFTs through the two-stage
// pipeline as world process p's body. The world size must be even; the
// first half is stage A, the second stage B. The transformed frames,
// gathered, are returned at stage B's root (world rank N/2); every other
// process returns nil.
func FFTStream(p *spmd.Proc, n, frames int, mode Mode, fill Fill) []*array.Dense2D[complex128] {
	if p.N()%2 != 0 || p.N() < 2 {
		panic(fmt.Sprintf("pipeline: world size %d must be even and positive", p.N()))
	}
	g, stage := spmd.Partition(p, p.N()/2, p.N()/2)
	if stage == 0 {
		runStageA(p, g, n, frames, mode, fill)
		return nil
	}
	return runStageB(p, g, n, frames, mode)
}

// partner returns the world rank of the same group-rank process in the
// other stage.
func partner(p *spmd.Proc, g *spmd.Group, stage int) int {
	if stage == 0 {
		return g.Rank() + g.N()
	}
	return g.Rank()
}

// runStageA computes row FFTs per frame and ships blocks to stage B. The
// inter-stage block stream is a typed channel: one (partner, tag, type)
// binding for the whole run instead of per-send tags and payloads.
func runStageA(p *spmd.Proc, g *spmd.Group, n, frames int, mode Mode, fill Fill) {
	dst := partner(p, g, 0)
	blocks := spmd.NewChan[[]complex128](p, dst, tagBlock)
	for f := 0; f < frames; f++ {
		grid := meshspectral.New2D[complex128](g, n, n, meshspectral.Rows(g.N()), 0)
		grid.Fill(func(gi, gj int) complex128 { return fill(f, gi, gj) })
		grid.RowOp(func(gi int, row []complex128) {
			fft.Transform(g, row, false)
		})
		block := grid.LocalDense()
		blocks.Send(block.Data)
		if mode == Lockstep {
			p.Recv(dst, tagAck)
		}
	}
}

// runStageB receives row-transformed blocks, performs the column FFTs via
// a within-group redistribution, and gathers each frame at the group
// root.
func runStageB(p *spmd.Proc, g *spmd.Group, n, frames int, mode Mode) []*array.Dense2D[complex128] {
	src := partner(p, g, 1)
	blocks := spmd.NewChan[[]complex128](p, src, tagBlock)
	var out []*array.Dense2D[complex128]
	for f := 0; f < frames; f++ {
		data := blocks.Recv()
		grid := meshspectral.New2D[complex128](g, n, n, meshspectral.Rows(g.N()), 0)
		x0, _ := grid.OwnedX()
		grid.Fill(func(gi, gj int) complex128 { return data[(gi-x0)*n+gj] })
		g.MemWords(float64(len(data)) * 2)

		cols := grid.Redistribute(meshspectral.Cols(g.N()))
		cols.ColOp(func(gj int, col []complex128) {
			fft.Transform(g, col, false)
		})
		full := meshspectral.GatherGrid(cols, 0)
		if g.Rank() == 0 {
			out = append(out, full)
		}
		if mode == Lockstep {
			p.Send(src, tagAck, nil)
		}
	}
	if g.Rank() != 0 {
		return nil
	}
	return out
}

// Makespan runs the stream on a fresh simulated world and reports the
// virtual makespan along with the transformed frames (from stage B's
// root).
func Makespan(nprocs, n, frames int, mode Mode, model *machine.Model, fill Fill) (float64, []*array.Dense2D[complex128], error) {
	var out []*array.Dense2D[complex128]
	res, err := core.Simulate(nprocs, model, func(p *spmd.Proc) {
		if r := FFTStream(p, n, frames, mode, fill); r != nil {
			out = r
		}
	})
	if err != nil {
		return 0, nil, err
	}
	return res.Makespan, out, nil
}
