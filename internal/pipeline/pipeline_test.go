package pipeline

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/machine"
)

func testFill(frame, i, j int) complex128 {
	return complex(math.Sin(float64(frame+1)*0.3*float64(i)), math.Cos(0.2*float64(j)))
}

// seqFrames computes the oracle: each frame transformed by the
// sequential 2D FFT.
func seqFrames(n, frames int) []*array.Dense2D[complex128] {
	out := make([]*array.Dense2D[complex128], frames)
	for f := 0; f < frames; f++ {
		a := array.New2D[complex128](n, n)
		a.Fill(func(i, j int) complex128 { return testFill(f, i, j) })
		fft.TwoDSeq(core.Nop, a, false)
		out[f] = a
	}
	return out
}

func TestPipelineCorrectness(t *testing.T) {
	const n, frames = 16, 3
	want := seqFrames(n, frames)
	for _, procs := range []int{2, 4, 8} {
		for _, mode := range []Mode{Overlapped, Lockstep} {
			_, got, err := Makespan(procs, n, frames, mode, machine.IBMSP(), testFill)
			if err != nil {
				t.Fatalf("procs=%d mode=%v: %v", procs, mode, err)
			}
			if len(got) != frames {
				t.Fatalf("procs=%d mode=%v: got %d frames, want %d", procs, mode, len(got), frames)
			}
			for f := range want {
				for k := range want[f].Data {
					if got[f].Data[k] != want[f].Data[k] {
						t.Fatalf("procs=%d mode=%v frame %d: differs at %d (not bit-identical)",
							procs, mode, f, k)
					}
				}
			}
		}
	}
}

func TestOverlapBeatsLockstep(t *testing.T) {
	// The point of composition: with more than one frame in flight, the
	// overlapped pipeline must finish sooner than the lockstep one.
	const n, frames, procs = 64, 6, 8
	over, _, err := Makespan(procs, n, frames, Overlapped, machine.IBMSP(), testFill)
	if err != nil {
		t.Fatal(err)
	}
	lock, _, err := Makespan(procs, n, frames, Lockstep, machine.IBMSP(), testFill)
	if err != nil {
		t.Fatal(err)
	}
	if over >= lock {
		t.Errorf("overlapped %g should beat lockstep %g", over, lock)
	}
	// And the saving should be substantial for a 6-frame stream —
	// ideally approaching 2x for balanced stages; demand at least 20%.
	if over > 0.8*lock {
		t.Errorf("overlap saved only %.1f%%, expected more", 100*(1-over/lock))
	}
}

func TestSingleFrameModesEquivalent(t *testing.T) {
	// With one frame there is nothing to overlap; the two modes should
	// cost about the same (lockstep adds only the final ack).
	const n, procs = 32, 4
	over, _, err := Makespan(procs, n, 1, Overlapped, machine.IBMSP(), testFill)
	if err != nil {
		t.Fatal(err)
	}
	lock, _, err := Makespan(procs, n, 1, Lockstep, machine.IBMSP(), testFill)
	if err != nil {
		t.Fatal(err)
	}
	if lock < over || lock > over*1.1 {
		t.Errorf("single-frame: lockstep %g vs overlapped %g", lock, over)
	}
}

func TestOddWorldRejected(t *testing.T) {
	_, _, err := Makespan(3, 8, 1, Overlapped, machine.IBMSP(), testFill)
	if err == nil {
		t.Error("odd world size should be rejected")
	}
}

func TestModeString(t *testing.T) {
	if Overlapped.String() != "overlapped" || Lockstep.String() != "lockstep" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}
