package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// traceEvent is one entry of the Chrome trace-event format
// (chrome://tracing, ui.perfetto.dev). Timestamps are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// sysTid is the thread id used for a run's system ring: one past the
// highest rank, so the system track sorts below the rank tracks.
func meta(pid, tid int, kind, name string) traceEvent {
	return traceEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

func appendRunEvents(out []traceEvent, pid int, rec *Recorder) []traceEvent {
	out = append(out, meta(pid, 0, "process_name", fmt.Sprintf("run %d: %s", pid, rec.Label())))
	n := rec.N()
	for rank := 0; rank < n; rank++ {
		out = append(out, meta(pid, rank, "thread_name", fmt.Sprintf("rank %d", rank)))
		ev, dropped := rec.Events(rank)
		for _, e := range ev {
			out = append(out, toTraceEvent(pid, rank, e))
		}
		if dropped > 0 {
			out = append(out, traceEvent{
				Name: "dropped-events", Ph: "i", S: "t", Pid: pid, Tid: rank,
				Args: map[string]any{"dropped": dropped},
			})
		}
	}
	out = append(out, meta(pid, n, "thread_name", "system"))
	sys, _ := rec.SysEvents()
	for _, e := range sys {
		out = append(out, toTraceEvent(pid, n, e))
	}
	return out
}

func toTraceEvent(pid, tid int, e Event) traceEvent {
	te := traceEvent{
		Name: e.Kind.String(),
		Ts:   float64(e.T) / 1e3,
		Pid:  pid,
		Tid:  tid,
		Args: map[string]any{},
	}
	if e.Dur > 0 {
		te.Ph = "X"
		te.Dur = float64(e.Dur) / 1e3
	} else {
		te.Ph = "i"
		te.S = "t"
	}
	if e.Peer >= 0 {
		te.Args["peer"] = e.Peer
	}
	if e.Tag != 0 {
		te.Args["tag"] = e.Tag
	}
	if e.Bytes != 0 {
		te.Args["bytes"] = e.Bytes
	}
	if e.Rank >= 0 && int(e.Rank) != tid {
		te.Args["rank"] = e.Rank
	}
	if len(te.Args) == 0 {
		te.Args = nil
	}
	return te
}

func (c *Collector) traceEvents() []traceEvent {
	var out []traceEvent
	if sched := c.SysEvents(); len(sched) > 0 {
		out = append(out, meta(0, 0, "process_name", "scheduler"), meta(0, 0, "thread_name", "sched"))
		for _, e := range sched {
			out = append(out, toTraceEvent(0, 0, e))
		}
	}
	for i, rec := range c.Runs() {
		out = appendRunEvents(out, i+1, rec)
	}
	return out
}

// WriteChrome writes the collector's full contents as Chrome
// trace-event JSON: pid 0 is the scheduler track, each run is its own
// process with one thread per rank plus a "system" thread.
func (c *Collector) WriteChrome(w io.Writer) error {
	return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: c.traceEvents(), DisplayTimeUnit: "ms"})
}

// ChromeJSON returns the trace as a JSON byte slice (the form archserve
// stores on a traced job).
func (c *Collector) ChromeJSON() ([]byte, error) {
	return json.Marshal(chromeTrace{TraceEvents: c.traceEvents(), DisplayTimeUnit: "ms"})
}

// WriteChromeFile writes the trace to path.
func (c *Collector) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = c.WriteChrome(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
