package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal Prometheus text-exposition (version 0.0.4)
// registry — counters, label-set counters, callback gauges, and
// cumulative histograms — enough for archserve's /metrics without an
// external client library. Metric names and label values are the
// caller's responsibility to keep exposition-legal (we escape label
// values but do not validate names).

type promMetric interface {
	write(w io.Writer) error
}

// Registry holds metrics in registration order and renders them as
// Prometheus text.
type Registry struct {
	mu      sync.Mutex
	metrics []promMetric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name string, m promMetric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// WriteText renders every registered metric in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]promMetric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
	return err
}

// CounterVec is a counter partitioned by one label.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	vals              map[string]*atomic.Int64
}

// CounterVec registers and returns a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	c := &CounterVec{name: name, help: help, label: label, vals: map[string]*atomic.Int64{}}
	r.register(name, c)
	return c
}

// With returns the counter cell for a label value, creating it at zero.
func (c *CounterVec) With(value string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.vals[value]
	if v == nil {
		v = new(atomic.Int64)
		c.vals[value] = v
	}
	return v
}

// Inc adds one to the cell for value.
func (c *CounterVec) Inc(value string) { c.With(value).Add(1) }

// Value returns the current count for a label value.
func (c *CounterVec) Value(value string) int64 { return c.With(value).Load() }

func (c *CounterVec) write(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type cell struct {
		k string
		v int64
	}
	cells := make([]cell, 0, len(keys))
	for _, k := range keys {
		cells = append(cells, cell{k, c.vals[k].Load()})
	}
	c.mu.Unlock()
	for _, cl := range cells {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", c.name, c.label, escapeLabel(cl.k), cl.v); err != nil {
			return err
		}
	}
	return nil
}

// Gauge reports a value sampled at scrape time via a callback.
type Gauge struct {
	name, help string
	fn         func() float64
}

// Gauge registers a callback gauge.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.register(name, &Gauge{name: name, help: help, fn: fn})
}

func (g *Gauge) write(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
	return err
}

// Histogram is a cumulative-bucket histogram.
type Histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending, +Inf implicit
	mu         sync.Mutex
	counts     []int64 // len(bounds)+1; last is the +Inf bucket
	sum        float64
	total      int64
}

// DurationBuckets is a decade ladder suited to run durations: 1 ms to
// ~2 minutes.
var DurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 30, 120}

// Histogram registers a histogram with the given ascending upper
// bounds; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]int64, len(bounds)+1)}
	r.register(name, h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) write(w io.Writer) error {
	if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
		return err
	}
	h.mu.Lock()
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	var cum int64
	for i, b := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.name, formatFloat(sum), h.name, total); err != nil {
		return err
	}
	return nil
}
