package obs

import (
	"context"
	"sync"
	"time"
)

// maxRuns bounds a collector's memory when it wraps a whole figure
// sweep: past this many runs new recorders are refused (the run
// proceeds untraced) and DroppedRuns reports how many.
const maxRuns = 256

// Collector aggregates the recorders of every run executed under one
// traced scope (one archdemo invocation, one archbench sweep, one
// traced archserve job). All recorders share the collector's epoch so
// their wall-clock events land on a single timeline, and the collector
// carries its own system ring for events that belong to no single run
// (scheduler enqueue/execute/cache-hit).
//
// A nil *Collector is valid and inert.
type Collector struct {
	// RingSize overrides the per-rank ring capacity (default 8192).
	// Set before any run starts.
	RingSize int

	mu          sync.Mutex
	epoch       time.Time
	runs        []*Recorder
	droppedRuns int
	sys         ring
}

// NewCollector returns an empty collector whose epoch is now.
func NewCollector() *Collector {
	return &Collector{epoch: time.Now()}
}

// NewRecorder registers and returns a recorder for a run with n ranks.
// Returns nil (run proceeds untraced) once the run cap is reached.
func (c *Collector) NewRecorder(n int, label string) *Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) >= maxRuns {
		c.droppedRuns++
		return nil
	}
	rcap := c.RingSize
	if rcap <= 0 {
		rcap = ringCapDefault
	}
	rec := &Recorder{label: label, n: n, epoch: c.epoch, ringCap: rcap, rings: make([]ring, n)}
	c.runs = append(c.runs, rec)
	return rec
}

// Emit records a collector-level event (scheduler activity) on the
// collector's own system ring, stamping e.T with the current collector
// time when the caller left it zero. Safe from any goroutine.
func (c *Collector) Emit(e Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e.T == 0 {
		e.T = int64(time.Since(c.epoch))
	}
	c.sys.write(ringCapDefault, e)
	c.mu.Unlock()
}

// Now returns nanoseconds since the collector's epoch, or 0 on a nil
// collector. Callers use it to build spans for Emit.
func (c *Collector) Now() int64 {
	if c == nil {
		return 0
	}
	return int64(time.Since(c.epoch))
}

// Runs returns the registered recorders in registration order.
func (c *Collector) Runs() []*Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Recorder, len(c.runs))
	copy(out, c.runs)
	return out
}

// Last returns the most recently registered recorder, or nil.
func (c *Collector) Last() *Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) == 0 {
		return nil
	}
	return c.runs[len(c.runs)-1]
}

// DroppedRuns reports how many runs were refused a recorder by the
// run cap.
func (c *Collector) DroppedRuns() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.droppedRuns
}

// SysEvents returns the collector-level (scheduler) events.
func (c *Collector) SysEvents() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ev, _ := c.sys.events()
	return ev
}

type ctxKey struct{}

// NewContext returns ctx carrying c. Transports created under this
// context (the context handed to backend.Runner.NewTransport flows from
// arch through core and spmd unchanged) record into c.
func NewContext(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the collector carried by ctx, or nil.
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}

// RunRecorder is the transport-side seam: it returns a recorder for an
// n-rank run if ctx carries a collector, and nil — the disabled, free
// case — otherwise. Every backend's NewTransport calls this once.
func RunRecorder(ctx context.Context, n int, label string) *Recorder {
	return FromContext(ctx).NewRecorder(n, label)
}
