package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Emit(0, Event{Kind: KindSend})
	r.EmitSys(Event{Kind: KindStart})
	if r.Now() != 0 || r.N() != 0 || r.Label() != "" {
		t.Fatal("nil recorder not inert")
	}
	if ev, d := r.Events(0); ev != nil || d != 0 {
		t.Fatal("nil recorder returned events")
	}
	if r.Summary() != nil {
		t.Fatal("nil recorder summary")
	}
	var c *Collector
	c.Emit(Event{Kind: KindEnqueue})
	if c.NewRecorder(4, "x") != nil || c.Last() != nil || c.Runs() != nil {
		t.Fatal("nil collector not inert")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carried a collector")
	}
	if RunRecorder(context.Background(), 4, "sim") != nil {
		t.Fatal("RunRecorder without collector must be nil")
	}
}

func TestRingOrderAndDrop(t *testing.T) {
	r := NewRecorder(1, "test")
	r.ringCap = 8
	for i := 0; i < 20; i++ {
		r.Emit(0, Event{T: int64(i), Kind: KindSend})
	}
	ev, dropped := r.Events(0)
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	if len(ev) != 8 {
		t.Fatalf("len = %d, want 8", len(ev))
	}
	for i, e := range ev {
		if e.T != int64(12+i) {
			t.Fatalf("ev[%d].T = %d, want %d (oldest must drop first)", i, e.T, 12+i)
		}
	}
}

func TestRingGrowsLazily(t *testing.T) {
	r := NewRecorder(1, "test")
	for i := 0; i < 3; i++ {
		r.Emit(0, Event{T: int64(i), Kind: KindSend})
	}
	if got := len(r.rings[0].buf); got != ringStart {
		t.Fatalf("ring grew to %d after 3 events, want %d", got, ringStart)
	}
	ev, dropped := r.Events(0)
	if len(ev) != 3 || dropped != 0 {
		t.Fatalf("events = %d dropped = %d", len(ev), dropped)
	}
}

func TestCollectorContextSeam(t *testing.T) {
	c := NewCollector()
	ctx := NewContext(context.Background(), c)
	if FromContext(ctx) != c {
		t.Fatal("FromContext lost the collector")
	}
	rec := RunRecorder(ctx, 4, "real")
	if rec == nil || rec.N() != 4 || rec.Label() != "real" {
		t.Fatalf("RunRecorder = %+v", rec)
	}
	if c.Last() != rec || len(c.Runs()) != 1 {
		t.Fatal("collector did not register the recorder")
	}
}

func TestCollectorRunCap(t *testing.T) {
	c := NewCollector()
	for i := 0; i < maxRuns; i++ {
		if c.NewRecorder(1, "x") == nil {
			t.Fatalf("run %d refused below cap", i)
		}
	}
	if c.NewRecorder(1, "x") != nil {
		t.Fatal("run above cap accepted")
	}
	if c.DroppedRuns() != 1 {
		t.Fatalf("DroppedRuns = %d", c.DroppedRuns())
	}
}

// TestConcurrentEmit exercises the documented concurrency contract under
// the race detector: each rank ring has exactly one writer; the system
// ring takes writes from everywhere.
func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder(8, "race")
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Emit(rank, Event{T: int64(i), Kind: KindSend, Peer: int32(rank)})
				if i%100 == 0 {
					r.EmitSys(Event{T: int64(i), Kind: KindHeartbeat, Rank: -1})
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank := 0; rank < 8; rank++ {
		ev, _ := r.Events(rank)
		if len(ev) != 1000 {
			t.Fatalf("rank %d has %d events", rank, len(ev))
		}
	}
	sys, _ := r.SysEvents()
	if len(sys) != 80 {
		t.Fatalf("system ring has %d events, want 80", len(sys))
	}
}

func TestSummary(t *testing.T) {
	r := NewRecorder(2, "sim")
	// rank 0: sends 2 msgs to rank 1 (100ns each inside Send), then
	// blocks 300ns receiving one back.
	r.Emit(0, Event{T: 0, Dur: 100, Bytes: 64, Peer: 1, Tag: 7, Kind: KindSend})
	r.Emit(0, Event{T: 200, Dur: 100, Bytes: 32, Peer: 1, Tag: 7, Kind: KindSend})
	r.Emit(0, Event{T: 400, Dur: 300, Bytes: 8, Peer: 1, Tag: 9, Kind: KindRecv})
	// rank 1: receives both, sends one back.
	r.Emit(1, Event{T: 0, Dur: 150, Bytes: 64, Peer: 0, Tag: 7, Kind: KindRecv})
	r.Emit(1, Event{T: 300, Dur: 50, Bytes: 32, Peer: 0, Tag: 7, Kind: KindRecvAny})
	r.Emit(1, Event{T: 600, Dur: 100, Bytes: 8, Peer: 0, Tag: 9, Kind: KindSend})
	s := r.Summary()
	if s.Procs != 2 || s.Label != "sim" {
		t.Fatalf("summary header: %+v", s)
	}
	if got, want := s.SpanSec, 700e-9; got != want {
		t.Fatalf("SpanSec = %g, want %g", got, want)
	}
	r0 := s.Ranks[0]
	if r0.CommSec != 200e-9 || r0.BlockedSec != 300e-9 {
		t.Fatalf("rank 0 comm/blocked: %+v", r0)
	}
	if want := 700e-9 - 200e-9 - 300e-9; r0.BusySec != want {
		t.Fatalf("rank 0 busy = %g, want %g", r0.BusySec, want)
	}
	if len(s.Edges) != 2 {
		t.Fatalf("edges: %+v", s.Edges)
	}
	e0 := s.Edges[0]
	if e0.Src != 0 || e0.Dst != 1 || e0.Msgs != 2 || e0.Bytes != 96 {
		t.Fatalf("edge 0->1: %+v", e0)
	}
	if s.CriticalPathSec <= 0 || s.CriticalPathSec > s.SpanSec {
		t.Fatalf("critical path %g outside (0, span]", s.CriticalPathSec)
	}
}

func TestChromeExport(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Kind: KindEnqueue, Rank: -1})
	rec := c.NewRecorder(2, "real")
	rec.Emit(0, Event{T: 1000, Dur: 500, Bytes: 8, Peer: 1, Tag: 3, Kind: KindSend})
	rec.Emit(1, Event{T: 1200, Dur: 250, Bytes: 8, Peer: 0, Tag: 3, Kind: KindRecv})
	rec.EmitSys(Event{T: 0, Rank: -1, Kind: KindStart})
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range trace.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event without ph: %v", e)
		}
		if name, ok := e["name"].(string); ok {
			names[name] = true
		}
		if ph == "X" {
			if _, ok := e["dur"].(float64); !ok {
				t.Fatalf("complete event without dur: %v", e)
			}
		}
	}
	for _, want := range []string{"send", "recv", "start", "enqueue", "process_name", "thread_name"} {
		if !names[want] {
			t.Fatalf("trace missing %q events; have %v", want, names)
		}
	}
	// send is a duration event at ts=1µs, dur=0.5µs on pid 1 / tid 0.
	found := false
	for _, e := range trace.TraceEvents {
		if e["name"] == "send" {
			found = e["ts"].(float64) == 1.0 && e["dur"].(float64) == 0.5 && e["pid"].(float64) == 1 && e["tid"].(float64) == 0
		}
	}
	if !found {
		t.Fatal("send event not exported with µs timestamps on run track")
	}
}

func TestPromText(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "total tests")
	c.Add(3)
	v := reg.CounterVec("test_jobs_total", "jobs by state", "state")
	v.Inc("done")
	v.Inc("done")
	v.Inc("failed")
	reg.Gauge("test_depth", "queue depth", func() float64 { return 4 })
	h := reg.Histogram("test_seconds", "durations", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_total total tests",
		"# TYPE test_total counter",
		"test_total 3",
		`test_jobs_total{state="done"} 2`,
		`test_jobs_total{state="failed"} 1`,
		"# TYPE test_depth gauge",
		"test_depth 4",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_sum 5.55",
		"test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exposition order is registration order and every line is either a
	// comment or name[{labels}] value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge_seconds", "x", []float64{1, 2})
	h.Observe(1) // le="1" includes the bound
	h.Observe(2)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`edge_seconds_bucket{le="1"} 1`, `edge_seconds_bucket{le="2"} 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
