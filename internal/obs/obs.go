// Package obs is the flight recorder: a low-overhead, per-rank event
// trace of everything the runtime does on behalf of a program — sends,
// receives (with blocked time), dist flushes/batches/delivers, elastic
// recovery events (lease, heartbeat, declared-dead, replay,
// resend-suppressed), world start/barrier/finish, scheduler
// enqueue/execute/cache-hit, and injected faults.
//
// The design center is the disabled case: every hot-path instrumentation
// site guards on a nil *Recorder, so a run without tracing costs one
// predictable not-taken branch per send/recv (the bench gate in CI pins
// this at <=3% on the fabric micros). When enabled, events go into
// per-rank ring buffers written only by that rank's goroutine — the
// backend.Transport contract already serializes per-rank calls — so the
// hot path takes no locks. Rings drop oldest on overflow and report a
// dropped count. Coordinator-side events (heartbeats, leases, scheduler
// activity) go to a mutex-guarded system ring, off the rank hot path.
//
// Timestamps are int64 nanoseconds. Wall-clock backends stamp events
// with Recorder.Now (monotonic ns since the owning Collector's epoch, so
// all runs under one collector share a timeline); the sim backend stamps
// events with virtual time (virtual seconds x 1e9) so a simulated trace
// shows the modeled schedule, not the host's.
//
// Exporters: Chrome trace-event JSON (Collector.WriteChrome — one
// Perfetto process per run, one thread track per rank) and per-run
// Summary (busy/blocked/comm per rank, per-edge message matrix,
// critical-path estimate) attached to arch.Report. The same package also
// hosts the Prometheus text-exposition registry archserve serves at
// /metrics (see prom.go). obs imports only the standard library, so any
// layer of the runtime can emit events without import cycles.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Kind identifies the event type. The zero value is invalid so that an
// all-zero Event (an unwritten ring slot) is recognizable.
type Kind uint8

const (
	// KindSend records a point-to-point send: Rank=src, Peer=dst,
	// Tag, Bytes (metered), Dur = time spent inside Send.
	KindSend Kind = 1 + iota
	// KindRecv records a matched receive: Rank=dst, Peer=src, Tag,
	// Bytes, Dur = time blocked waiting for the message.
	KindRecv
	// KindRecvAny is KindRecv for a wildcard-source receive; Peer is
	// the source that actually matched.
	KindRecvAny
	// KindFlush records a dist coordinator write-coalescing flush at a
	// block point: Bytes = frames put on the wire, Dur = flush time.
	KindFlush
	// KindBatch records that a flush coalesced multiple frames into
	// opBatch containers; Bytes = number of connections batched.
	KindBatch
	// KindDeliver records a dist deliver frame arriving in a rank's
	// coordinator inbox: Rank=dst, Peer=src, Tag, Bytes.
	KindDeliver
	// KindLease records an elastic rank being leased to a worker:
	// Rank = leased rank, Peer = worker id. System ring.
	KindLease
	// KindHeartbeat records a completed elastic heartbeat round trip:
	// Peer = worker id, Dur = round-trip time. System ring.
	KindHeartbeat
	// KindDeclaredDead records an elastic worker declared dead:
	// Peer = worker id. System ring.
	KindDeclaredDead
	// KindReplay records a logged receive replayed into a re-executed
	// elastic rank: Rank=dst, Peer=src, Tag, Bytes.
	KindReplay
	// KindResendSuppressed records an already-delivered send suppressed
	// during elastic re-execution: Rank=src, Peer=dst, Tag, Bytes.
	KindResendSuppressed
	// KindStart marks the world starting (system ring, T=0 on sim).
	KindStart
	// KindBarrier records a completed barrier on one rank; Dur is the
	// time from entering to leaving the barrier.
	KindBarrier
	// KindFinish marks a rank body returning (rank ring) or the world
	// finishing (system ring, Rank=-1).
	KindFinish
	// KindEnqueue records a sched cell entering the worker pool queue.
	KindEnqueue
	// KindExecute records a sched cell starting execution; Dur is the
	// time it waited in the queue.
	KindExecute
	// KindCacheHit records a sched cell answered from the cell cache.
	KindCacheHit
	// KindFault records a faultinject rule firing; Tag carries the
	// faultinject.Action code.
	KindFault
)

var kindNames = [...]string{
	KindSend:             "send",
	KindRecv:             "recv",
	KindRecvAny:          "recvany",
	KindFlush:            "flush",
	KindBatch:            "batch",
	KindDeliver:          "deliver",
	KindLease:            "lease",
	KindHeartbeat:        "heartbeat",
	KindDeclaredDead:     "declared-dead",
	KindReplay:           "replay",
	KindResendSuppressed: "resend-suppressed",
	KindStart:            "start",
	KindBarrier:          "barrier",
	KindFinish:           "finish",
	KindEnqueue:          "enqueue",
	KindExecute:          "execute",
	KindCacheHit:         "cache-hit",
	KindFault:            "fault",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded runtime event. The struct is fixed-size and
// pointer-free so a ring slot write is a straight memory copy.
type Event struct {
	T     int64 // start timestamp, ns (wall since collector epoch, or virtual)
	Dur   int64 // duration, ns; 0 for instant events
	Bytes int64 // metered payload bytes, or kind-specific count
	Rank  int32 // subject rank; -1 for system-wide events
	Peer  int32 // other endpoint (dst for sends, src for recvs, worker id); -1 if none
	Tag   int32 // message tag, or kind-specific code
	Kind  Kind
}

// ringCapDefault bounds per-rank memory at ~320 KB/rank fully grown;
// rings start small and double on demand, so cheap runs stay cheap.
const (
	ringCapDefault = 8192
	ringStart      = 256
)

// ring is a single-writer drop-oldest event buffer. Only the owning
// rank's goroutine writes; readers run strictly after the run finishes
// (the world's WaitGroup/Drive return is the happens-before edge). The
// trailing pad keeps adjacent ranks' write cursors off each other's
// cache lines.
type ring struct {
	buf  []Event
	head uint64 // total events ever written
	_    [88]byte
}

func (g *ring) write(max int, e Event) {
	n := len(g.buf)
	if n < max && int(g.head) >= n {
		grown := n * 2
		if grown < ringStart {
			grown = ringStart
		}
		if grown > max {
			grown = max
		}
		nb := make([]Event, grown)
		copy(nb, g.buf)
		g.buf = nb
		n = grown
	}
	g.buf[g.head%uint64(n)] = e
	g.head++
}

// events returns the ring contents in write order plus the number of
// dropped (overwritten) events. Post-run only.
func (g *ring) events() ([]Event, int64) {
	n := uint64(len(g.buf))
	if n == 0 {
		return nil, 0
	}
	if g.head <= n {
		out := make([]Event, g.head)
		copy(out, g.buf[:g.head])
		return out, 0
	}
	out := make([]Event, n)
	start := g.head % n
	copy(out, g.buf[start:])
	copy(out[n-start:], g.buf[:start])
	return out, int64(g.head - n)
}

// Recorder records the events of one run (one transport lifetime). A nil
// *Recorder is valid and inert: every method is a no-op, which is what
// makes the disabled trace a single branch at each instrumentation site.
type Recorder struct {
	label   string
	n       int
	epoch   time.Time
	ringCap int
	rings   []ring

	sysMu sync.Mutex
	sys   ring
}

// NewRecorder returns a standalone recorder for n ranks (used directly
// by tests; runs normally get recorders from a Collector so they share
// its epoch).
func NewRecorder(n int, label string) *Recorder {
	return &Recorder{label: label, n: n, epoch: time.Now(), ringCap: ringCapDefault, rings: make([]ring, n)}
}

// Label returns the backend label the recorder was created with.
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// N returns the number of rank rings.
func (r *Recorder) N() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Now returns the current wall-clock timestamp in recorder time
// (monotonic ns since the owning collector's epoch).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Emit records e on rank's ring. It must be called from the rank's own
// goroutine (the backend.Transport contract); it takes no locks.
// e.Rank is overwritten with rank.
func (r *Recorder) Emit(rank int, e Event) {
	if r == nil || rank < 0 || rank >= r.n {
		return
	}
	e.Rank = int32(rank)
	r.rings[rank].write(r.ringCap, e)
}

// EmitSys records a coordinator-side event (lease, heartbeat, world
// start/finish, ...) on the mutex-guarded system ring. Safe from any
// goroutine. e.Rank is preserved (set it to the subject rank, or -1).
func (r *Recorder) EmitSys(e Event) {
	if r == nil {
		return
	}
	r.sysMu.Lock()
	r.sys.write(r.ringCap, e)
	r.sysMu.Unlock()
}

// Events returns rank's recorded events in write order and the count of
// events dropped by ring overflow. Call only after the run has finished.
func (r *Recorder) Events(rank int) ([]Event, int64) {
	if r == nil || rank < 0 || rank >= r.n {
		return nil, 0
	}
	return r.rings[rank].events()
}

// SysEvents returns the system-ring events and its dropped count.
func (r *Recorder) SysEvents() ([]Event, int64) {
	if r == nil {
		return nil, 0
	}
	r.sysMu.Lock()
	defer r.sysMu.Unlock()
	return r.sys.events()
}

// AllEvents returns every recorded event (all ranks plus the system
// ring) sorted by start timestamp. Post-run only; intended for tests
// and exporters.
func (r *Recorder) AllEvents() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for rank := 0; rank < r.n; rank++ {
		ev, _ := r.Events(rank)
		out = append(out, ev...)
	}
	sys, _ := r.SysEvents()
	out = append(out, sys...)
	sortEvents(out)
	return out
}

func sortEvents(ev []Event) {
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].T < ev[j].T })
}
