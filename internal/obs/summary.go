package obs

import "sort"

// Summary is the per-run digest of a recorded trace, attached to
// arch.Report when tracing is on. Times are seconds (virtual seconds on
// the sim backend, wall seconds elsewhere).
type Summary struct {
	Label string `json:"label"`
	Procs int    `json:"procs"`
	// SpanSec is last event end minus first event start across all ranks.
	SpanSec float64       `json:"spanSec"`
	Ranks   []RankSummary `json:"ranks"`
	// Edges is the per-(src,dst) message matrix built from send events.
	Edges []Edge `json:"edges,omitempty"`
	// CriticalPathSec estimates a lower bound on the schedule: the
	// largest per-rank busy+comm time (time not spent blocked). A run
	// whose span is close to this bound has little blocking to recover.
	CriticalPathSec float64 `json:"criticalPathSec"`
	// Dropped counts events lost to ring overflow across all ranks;
	// non-zero means the numbers above undercount.
	Dropped int64 `json:"dropped,omitempty"`
}

// RankSummary decomposes one rank's span into communicating (inside
// Send), blocked (waiting in Recv/RecvAny), and busy (everything else).
type RankSummary struct {
	Rank       int     `json:"rank"`
	Events     int     `json:"events"`
	Dropped    int64   `json:"dropped,omitempty"`
	BusySec    float64 `json:"busySec"`
	BlockedSec float64 `json:"blockedSec"`
	CommSec    float64 `json:"commSec"`
}

// Edge is one cell of the message matrix.
type Edge struct {
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
}

// Summary digests the recorder's rank rings. Call after the run.
func (r *Recorder) Summary() *Summary {
	if r == nil {
		return nil
	}
	s := &Summary{Label: r.label, Procs: r.n}
	type edgeKey struct{ src, dst int32 }
	edges := map[edgeKey]*Edge{}
	var tMin, tMax int64
	first := true
	perRank := make([][]Event, r.n)
	for rank := 0; rank < r.n; rank++ {
		ev, dropped := r.Events(rank)
		perRank[rank] = ev
		s.Dropped += dropped
		s.Ranks = append(s.Ranks, RankSummary{Rank: rank, Events: len(ev), Dropped: dropped})
		for _, e := range ev {
			if first || e.T < tMin {
				tMin = e.T
				first = false
			}
			if end := e.T + e.Dur; end > tMax {
				tMax = end
			}
		}
	}
	if first {
		return s
	}
	s.SpanSec = float64(tMax-tMin) / 1e9
	for rank, ev := range perRank {
		rs := &s.Ranks[rank]
		for _, e := range ev {
			switch e.Kind {
			case KindSend:
				rs.CommSec += float64(e.Dur) / 1e9
				k := edgeKey{e.Rank, e.Peer}
				ed := edges[k]
				if ed == nil {
					ed = &Edge{Src: int(e.Rank), Dst: int(e.Peer)}
					edges[k] = ed
				}
				ed.Msgs++
				ed.Bytes += e.Bytes
			case KindRecv, KindRecvAny:
				rs.BlockedSec += float64(e.Dur) / 1e9
			}
		}
		rs.BusySec = s.SpanSec - rs.BlockedSec - rs.CommSec
		if rs.BusySec < 0 {
			rs.BusySec = 0
		}
		if cp := rs.BusySec + rs.CommSec; cp > s.CriticalPathSec {
			s.CriticalPathSec = cp
		}
	}
	for _, ed := range edges {
		s.Edges = append(s.Edges, *ed)
	}
	sort.Slice(s.Edges, func(i, j int) bool {
		if s.Edges[i].Src != s.Edges[j].Src {
			return s.Edges[i].Src < s.Edges[j].Src
		}
		return s.Edges[i].Dst < s.Edges[j].Dst
	})
	return s
}
