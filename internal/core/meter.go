package core

import "repro/internal/machine"

// Meter is the cost-accounting interface application code charges its work
// to. An spmd.Proc is a Meter (charges advance its virtual clock); a Tally
// accumulates seconds for sequential baselines; Nop discards charges (for
// version-1 debugging runs where timing is irrelevant).
//
// Archetype "fill in the blanks" functions receive a Meter so the same
// application code serves version 1 (sequential), the sequential cost
// baseline, and the SPMD version.
type Meter interface {
	// Charge adds sec seconds of computation.
	Charge(sec float64)
	// Flops charges n floating-point operations.
	Flops(n float64)
	// Cmps charges n comparison/exchange steps.
	Cmps(n float64)
	// MemWords charges n words of pure data movement.
	MemWords(n float64)
}

// Tally is a Meter that accumulates virtual seconds against a machine
// model; it is how sequential-baseline times are computed without running
// a world.
type Tally struct {
	Model   *machine.Model
	Seconds float64
}

// NewTally returns a Tally over the given model.
func NewTally(m *machine.Model) *Tally { return &Tally{Model: m} }

// Charge implements Meter.
func (t *Tally) Charge(sec float64) { t.Seconds += sec }

// Flops implements Meter.
func (t *Tally) Flops(n float64) { t.Seconds += n * t.Model.FlopTime }

// Cmps implements Meter.
func (t *Tally) Cmps(n float64) { t.Seconds += n * t.Model.CmpTime }

// MemWords implements Meter.
func (t *Tally) MemWords(n float64) { t.Seconds += n * t.Model.MemTime }

type nopMeter struct{}

func (nopMeter) Charge(float64)   {}
func (nopMeter) Flops(float64)    {}
func (nopMeter) Cmps(float64)     {}
func (nopMeter) MemWords(float64) {}

// Nop is a Meter that discards all charges.
var Nop Meter = nopMeter{}
