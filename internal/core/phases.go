package core

import (
	"fmt"
	"io"

	"repro/internal/collective"
	"repro/internal/spmd"
)

// PhaseTimer produces per-phase timing breakdowns of an SPMD program —
// the split/solve/merge anatomy of Figure 2, measured. Each Mark records
// the maximum virtual time any process spent since the previous mark
// (phases are separated by the equivalent of barrier synchronization, as
// §3.2 assumes between archetype operations).
//
// All processes must call Mark the same number of times with the same
// names; the collected table is valid on every process.
type PhaseTimer struct {
	c     spmd.Comm
	names []string
	times []float64
	last  float64
}

// NewPhaseTimer starts a timer at the communicator's current maximum
// clock.
func NewPhaseTimer(c spmd.Comm) *PhaseTimer {
	return &PhaseTimer{c: c, last: collective.MaxClock(c)}
}

// Mark ends the current phase under the given name.
func (t *PhaseTimer) Mark(name string) {
	now := collective.MaxClock(t.c)
	t.names = append(t.names, name)
	t.times = append(t.times, now-t.last)
	t.last = now
}

// Phases returns the recorded (name, seconds) pairs.
func (t *PhaseTimer) Phases() ([]string, []float64) {
	return append([]string(nil), t.names...), append([]float64(nil), t.times...)
}

// Total returns the sum of all recorded phases.
func (t *PhaseTimer) Total() float64 {
	sum := 0.0
	for _, v := range t.times {
		sum += v
	}
	return sum
}

// WriteBreakdown renders the phases as an aligned table with percentages.
func (t *PhaseTimer) WriteBreakdown(w io.Writer) error {
	total := t.Total()
	for i, name := range t.names {
		pct := 0.0
		if total > 0 {
			pct = 100 * t.times[i] / total
		}
		if _, err := fmt.Fprintf(w, "%16s %12.6fs %6.1f%%\n", name, t.times[i], pct); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%16s %12.6fs\n", "total", total)
	return err
}
