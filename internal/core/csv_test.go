package core

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	c1 := &Curve{Name: "a", Points: []Point{
		{Procs: 1, Speedup: 1, Time: 2},
		{Procs: 4, Speedup: 3.5, Time: 0.57},
	}}
	c2 := &Curve{Name: "b", Points: []Point{
		{Procs: 1, Speedup: 0.9, Time: 2.2},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c1, c2); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("want header + 2 rows, got %d", len(rows))
	}
	want := []string{"procs", "perfect", "a_speedup", "a_time_s", "b_speedup", "b_time_s"}
	for i, h := range want {
		if rows[0][i] != h {
			t.Errorf("header[%d] = %q, want %q", i, rows[0][i], h)
		}
	}
	if rows[1][2] != "1" || rows[2][2] != "3.5" {
		t.Errorf("speedups wrong: %v", rows)
	}
	// Short curve pads with empty cells.
	if rows[2][4] != "" {
		t.Errorf("missing point should be empty, got %q", rows[2][4])
	}
	if err := WriteCSV(&buf); err != nil {
		t.Errorf("no curves should be a no-op: %v", err)
	}
}
