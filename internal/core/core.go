// Package core implements the paper's primary contribution: the archetype
// program-development method.
//
// The method (§1.2) develops a parallel application in stages:
//
//  1. Start from a sequential algorithm and identify an archetype.
//  2. Write an initial archetype-based version (version 1) using
//     data-parallel constructs — the paper's parfor/forall, here ParFor —
//     which can be executed sequentially for debugging; for deterministic
//     programs sequential and concurrent execution give identical results.
//  3. Transform version 1 into an SPMD program (version 2) for a
//     distributed-memory message-passing machine, with communication
//     encapsulated in the archetype's library (package collective).
//  4. Measure: the Experiment type runs the SPMD program over a sweep of
//     process counts on a simulated machine (package machine/spmd) and
//     reports speedup curves in the form of the paper's figures.
//
// The two archetypes the paper develops — one-deep divide and conquer and
// mesh-spectral — live in packages onedeep and meshspectral and build on
// the machinery here.
package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/machine"
	"repro/internal/spmd"
)

// Mode selects how ParFor executes its iterations. The paper's version-1
// programs are written once and run in either mode with identical results
// (for deterministic programs) — Sequential is the debugging mode,
// Concurrent the execution mode.
type Mode int

const (
	// Sequential runs iterations in index order on the calling goroutine
	// (the paper's "replace parfor with for").
	Sequential Mode = iota
	// Concurrent runs all iterations in their own goroutines and waits.
	Concurrent
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParFor is the paper's parfor/forall construct: n independent iterations.
// The iterations must be independent — writing disjoint data — which is
// exactly the archetype precondition that makes the two modes equivalent.
func ParFor(m Mode, n int, body func(i int)) {
	switch m {
	case Sequential:
		for i := 0; i < n; i++ {
			body(i)
		}
	case Concurrent:
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func() {
				defer wg.Done()
				body(i)
			}()
		}
		wg.Wait()
	default:
		panic(fmt.Sprintf("core: invalid ParFor mode %d", int(m)))
	}
}

// Program is an SPMD program body: it is run once per process.
type Program func(p *spmd.Proc)

// Simulate runs prog on an n-process world over the given machine model
// and returns the run's virtual-time result.
func Simulate(n int, m *machine.Model, prog Program) (*spmd.Result, error) {
	return spmd.NewWorld(n, m).Run(prog)
}

// Experiment pairs a sequential baseline with an SPMD program so speedup
// curves can be produced the way the paper's figures define them:
// speedup(P) = T(sequential program) / T(SPMD program on P processes).
type Experiment struct {
	Name  string
	Model *machine.Model
	// Seq is the sequential algorithm, run on a 1-process world (no
	// communication is priced except self-copies). If nil, the baseline
	// is Par run with one process.
	Seq Program
	// Par is the SPMD program; it discovers the process count via
	// p.N().
	Par Program
}

// Point is one measurement of a speedup curve.
type Point struct {
	Procs   int
	Time    float64 // simulated parallel time, seconds
	Speedup float64 // SeqTime / Time
	Msgs    int64
	Bytes   int64
}

// Curve is a named speedup series, the unit the paper's figures plot.
type Curve struct {
	Name    string
	SeqTime float64
	Points  []Point
}

// Run produces the experiment's speedup curve over the given process
// counts.
func (e *Experiment) Run(procs []int) (*Curve, error) {
	seqProg := e.Seq
	if seqProg == nil {
		seqProg = e.Par
	}
	seqRes, err := Simulate(1, e.Model, seqProg)
	if err != nil {
		return nil, fmt.Errorf("experiment %q: sequential baseline: %w", e.Name, err)
	}
	c := &Curve{Name: e.Name, SeqTime: seqRes.Makespan}
	for _, n := range procs {
		res, err := Simulate(n, e.Model, e.Par)
		if err != nil {
			return nil, fmt.Errorf("experiment %q: %d processes: %w", e.Name, n, err)
		}
		c.Points = append(c.Points, Point{
			Procs:   n,
			Time:    res.Makespan,
			Speedup: seqRes.Makespan / res.Makespan,
			Msgs:    res.Msgs,
			Bytes:   res.Bytes,
		})
	}
	return c, nil
}

// Efficiency returns speedup divided by process count for the i-th point.
func (c *Curve) Efficiency(i int) float64 {
	pt := c.Points[i]
	return pt.Speedup / float64(pt.Procs)
}

// SpeedupAt returns the speedup measured at exactly n processes, or 0 if
// the curve has no such point.
func (c *Curve) SpeedupAt(n int) float64 {
	for _, pt := range c.Points {
		if pt.Procs == n {
			return pt.Speedup
		}
	}
	return 0
}

// WriteTable renders one or more curves sharing the same process counts as
// an aligned text table with a "perfect" column, the textual equivalent of
// the paper's speedup plots.
func WriteTable(w io.Writer, curves ...*Curve) error {
	if len(curves) == 0 {
		return nil
	}
	base := curves[0]
	if _, err := fmt.Fprintf(w, "%8s %10s", "procs", "perfect"); err != nil {
		return err
	}
	for _, c := range curves {
		fmt.Fprintf(w, " %16s", c.Name)
	}
	fmt.Fprintln(w)
	for i, pt := range base.Points {
		fmt.Fprintf(w, "%8d %10.2f", pt.Procs, float64(pt.Procs))
		for _, c := range curves {
			if i < len(c.Points) {
				fmt.Fprintf(w, " %16.2f", c.Points[i].Speedup)
			} else {
				fmt.Fprintf(w, " %16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// PowersOfTwo returns {1, 2, 4, ..., <=max}, the conventional sweep for
// speedup plots.
func PowersOfTwo(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}
