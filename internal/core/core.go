// Package core implements the paper's primary contribution: the archetype
// program-development method.
//
// The method (§1.2) develops a parallel application in stages:
//
//  1. Start from a sequential algorithm and identify an archetype.
//  2. Write an initial archetype-based version (version 1) using
//     data-parallel constructs — the paper's parfor/forall, here ParFor —
//     which can be executed sequentially for debugging; for deterministic
//     programs sequential and concurrent execution give identical results.
//  3. Transform version 1 into an SPMD program (version 2) for a
//     distributed-memory message-passing machine, with communication
//     encapsulated in the archetype's library (package collective).
//  4. Measure: the Experiment type runs the SPMD program over a sweep of
//     process counts and reports speedup curves in the form of the
//     paper's figures.
//
// Step 4 runs on a pluggable execution backend (package backend): the
// virtual-time simulator (backend.Sim, the default, deterministic
// makespans from a machine.Model) or the real shared-memory backend
// (backend.Real, goroutines over native channels metered by the wall
// clock). An Experiment selects its backend via the Backend field; Run
// and Simulate are the one-shot entry points. Sweeping a whole matrix of
// experiments concurrently is package sched's job.
//
// The two archetypes the paper develops — one-deep divide and conquer and
// mesh-spectral — live in packages onedeep and meshspectral and build on
// the machinery here.
package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/backend"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// Mode selects how ParFor executes its iterations. The paper's version-1
// programs are written once and run in either mode with identical results
// (for deterministic programs) — Sequential is the debugging mode,
// Concurrent the execution mode.
type Mode int

const (
	// Sequential runs iterations in index order on the calling goroutine
	// (the paper's "replace parfor with for").
	Sequential Mode = iota
	// Concurrent runs the iterations concurrently, chunked over
	// GOMAXPROCS worker goroutines, and waits for all of them.
	Concurrent
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParFor is the paper's parfor/forall construct: n independent iterations.
// The iterations must be independent — writing disjoint data and not
// communicating with each other — which is exactly the archetype
// precondition that makes the two modes equivalent. Concurrent mode chunks
// the index space over GOMAXPROCS worker goroutines rather than spawning
// one goroutine per iteration, so million-iteration parfors cost a handful
// of goroutines instead of a million.
func ParFor(m Mode, n int, body func(i int)) {
	switch m {
	case Sequential:
		for i := 0; i < n; i++ {
			body(i)
		}
	case Concurrent:
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers <= 1 {
			for i := 0; i < n; i++ {
				body(i)
			}
			return
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			lo, hi := n*w/workers, n*(w+1)/workers
			go func() {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					body(i)
				}
			}()
		}
		wg.Wait()
	default:
		panic(fmt.Sprintf("core: invalid ParFor mode %d", int(m)))
	}
}

// Program is an SPMD program body: it is run once per process.
type Program func(p *spmd.Proc)

// Run executes prog on an n-process world over the given machine model on
// the given execution backend. Cancelling ctx aborts the run mid-flight:
// processes blocked in communication unwind and Run returns ctx.Err().
func Run(ctx context.Context, r backend.Runner, n int, m *machine.Model, prog Program) (*spmd.Result, error) {
	w, err := spmd.NewWorldOn(ctx, r, n, m)
	if err != nil {
		return nil, err
	}
	return w.Run(prog)
}

// Simulate runs prog on an n-process world over the given machine model
// on the virtual-time simulator backend and returns the run's result.
func Simulate(n int, m *machine.Model, prog Program) (*spmd.Result, error) {
	return Run(context.Background(), backend.Default(), n, m, prog)
}

// Experiment pairs a sequential baseline with an SPMD program so speedup
// curves can be produced the way the paper's figures define them:
// speedup(P) = T(sequential program) / T(SPMD program on P processes).
type Experiment struct {
	Name  string
	Model *machine.Model
	// Backend is the execution backend runs go to; nil means the
	// virtual-time simulator.
	Backend backend.Runner
	// Seq is the sequential algorithm, run on a 1-process world (no
	// communication is priced except self-copies). If nil, the baseline
	// is Par run with one process.
	Seq Program
	// Par is the SPMD program; it discovers the process count via
	// p.N().
	Par Program
}

// Runner returns the experiment's execution backend, defaulting to the
// virtual-time simulator.
func (e *Experiment) Runner() backend.Runner {
	if e.Backend != nil {
		return e.Backend
	}
	return backend.Default()
}

// Baseline runs the experiment's sequential baseline — Seq, or Par with
// one process — and returns its result.
func (e *Experiment) Baseline(ctx context.Context) (*spmd.Result, error) {
	seqProg := e.Seq
	if seqProg == nil {
		seqProg = e.Par
	}
	res, err := Run(ctx, e.Runner(), 1, e.Model, seqProg)
	if err != nil {
		return nil, fmt.Errorf("experiment %q: sequential baseline: %w", e.Name, err)
	}
	return res, nil
}

// Point runs the experiment's SPMD program on n processes and returns the
// raw run result: one cell of the sweep matrix. Package sched dispatches
// Point calls concurrently.
func (e *Experiment) Point(ctx context.Context, n int) (*spmd.Result, error) {
	res, err := Run(ctx, e.Runner(), n, e.Model, e.Par)
	if err != nil {
		return nil, fmt.Errorf("experiment %q: %d processes: %w", e.Name, n, err)
	}
	return res, nil
}

// Point is one measurement of a speedup curve.
type Point struct {
	Procs   int
	Time    float64 // simulated parallel time, seconds
	Speedup float64 // SeqTime / Time
	Msgs    int64
	Bytes   int64
}

// Curve is a named speedup series, the unit the paper's figures plot.
type Curve struct {
	Name    string
	SeqTime float64
	Points  []Point
}

// Run produces the experiment's speedup curve over the given process
// counts, one cell at a time on the calling goroutine. Package sched runs
// the same cells concurrently with bounded parallelism; prefer it for
// multi-experiment sweeps.
func (e *Experiment) Run(ctx context.Context, procs []int) (*Curve, error) {
	seqRes, err := e.Baseline(ctx)
	if err != nil {
		return nil, err
	}
	c := &Curve{Name: e.Name, SeqTime: seqRes.Makespan}
	for _, n := range procs {
		res, err := e.Point(ctx, n)
		if err != nil {
			return nil, err
		}
		c.Points = append(c.Points, Point{
			Procs:   n,
			Time:    res.Makespan,
			Speedup: seqRes.Makespan / res.Makespan,
			Msgs:    res.Msgs,
			Bytes:   res.Bytes,
		})
	}
	return c, nil
}

// Efficiency returns speedup divided by process count for the i-th point.
func (c *Curve) Efficiency(i int) float64 {
	pt := c.Points[i]
	return pt.Speedup / float64(pt.Procs)
}

// SpeedupAt returns the speedup measured at exactly n processes, or 0 if
// the curve has no such point.
func (c *Curve) SpeedupAt(n int) float64 {
	for _, pt := range c.Points {
		if pt.Procs == n {
			return pt.Speedup
		}
	}
	return 0
}

// WriteTable renders one or more curves sharing the same process counts as
// an aligned text table with a "perfect" column, the textual equivalent of
// the paper's speedup plots.
func WriteTable(w io.Writer, curves ...*Curve) error {
	if len(curves) == 0 {
		return nil
	}
	base := curves[0]
	if _, err := fmt.Fprintf(w, "%8s %10s", "procs", "perfect"); err != nil {
		return err
	}
	for _, c := range curves {
		if _, err := fmt.Fprintf(w, " %16s", c.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, pt := range base.Points {
		if _, err := fmt.Fprintf(w, "%8d %10.2f", pt.Procs, float64(pt.Procs)); err != nil {
			return err
		}
		for _, c := range curves {
			var err error
			if i < len(c.Points) {
				_, err = fmt.Fprintf(w, " %16.2f", c.Points[i].Speedup)
			} else {
				_, err = fmt.Fprintf(w, " %16s", "-")
			}
			if err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// PowersOfTwo returns {1, 2, 4, ..., <=max}, the conventional sweep for
// speedup plots.
func PowersOfTwo(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}
