package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// parForGoroutinePerIteration is the pre-chunking Concurrent
// implementation — one goroutine per iteration — kept as the benchmark
// baseline the chunked version is measured against.
func parForGoroutinePerIteration(n int, body func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			body(i)
		}()
	}
	wg.Wait()
}

// benchBody is a tiny iteration body: the regime where per-iteration
// goroutine overhead dominates.
func benchBody(sink *int64) func(int) {
	return func(i int) {
		atomic.AddInt64(sink, int64(i&7))
	}
}

// BenchmarkParForChunked measures the chunked Concurrent mode at 10^6
// iterations (a handful of worker goroutines).
func BenchmarkParForChunked(b *testing.B) {
	const n = 1 << 20
	var sink int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ParFor(Concurrent, n, benchBody(&sink))
	}
}

// BenchmarkParForGoroutinePerIteration measures the old strategy on the
// same workload (10^6 goroutines per ParFor).
func BenchmarkParForGoroutinePerIteration(b *testing.B) {
	const n = 1 << 20
	var sink int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		parForGoroutinePerIteration(n, benchBody(&sink))
	}
}
