package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/spmd"
)

func TestParForSequentialOrder(t *testing.T) {
	var order []int
	ParFor(Sequential, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ParFor out of order: %v", order)
		}
	}
}

func TestParForConcurrentRunsAll(t *testing.T) {
	var count int64
	seen := make([]int64, 100)
	ParFor(Concurrent, 100, func(i int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[i], 1)
	})
	if count != 100 {
		t.Fatalf("ran %d iterations, want 100", count)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("iteration %d ran %d times", i, v)
		}
	}
}

func TestParForModesEquivalentForIndependentBodies(t *testing.T) {
	// The paper's claim for deterministic programs with independent
	// iterations: both modes produce identical results.
	n := 64
	a := make([]int, n)
	b := make([]int, n)
	ParFor(Sequential, n, func(i int) { a[i] = i * i })
	ParFor(Concurrent, n, func(i int) { b[i] = i * i })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("modes disagree at %d", i)
		}
	}
}

func TestParForConcurrentLargeN(t *testing.T) {
	// The chunked implementation must still visit every index exactly
	// once at iteration counts far beyond any sane goroutine budget.
	const n = 1 << 20
	marks := make([]int32, n)
	ParFor(Concurrent, n, func(i int) { atomic.AddInt32(&marks[i], 1) })
	for i, v := range marks {
		if v != 1 {
			t.Fatalf("iteration %d ran %d times", i, v)
		}
	}
}

func TestParForFewerIterationsThanWorkers(t *testing.T) {
	var count int64
	ParFor(Concurrent, 1, func(i int) {
		if i != 0 {
			t.Errorf("iteration index %d, want 0", i)
		}
		atomic.AddInt64(&count, 1)
	})
	if count != 1 {
		t.Fatalf("ran %d iterations, want 1", count)
	}
}

func TestParForZeroIterations(t *testing.T) {
	ran := false
	ParFor(Sequential, 0, func(int) { ran = true })
	ParFor(Concurrent, 0, func(int) { ran = true })
	if ran {
		t.Error("body ran for n=0")
	}
}

func TestModeString(t *testing.T) {
	if Sequential.String() != "sequential" || Concurrent.String() != "concurrent" {
		t.Error("mode names wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode should include value")
	}
}

func TestTallyAccumulates(t *testing.T) {
	m := machine.IBMSP()
	tl := NewTally(m)
	tl.Flops(100)
	tl.Cmps(10)
	tl.MemWords(4)
	tl.Charge(1e-6)
	want := 100*m.FlopTime + 10*m.CmpTime + 4*m.MemTime + 1e-6
	if diff := tl.Seconds - want; diff > 1e-18 || diff < -1e-18 {
		t.Errorf("tally = %g, want %g", tl.Seconds, want)
	}
}

func TestNopMeterDiscards(t *testing.T) {
	Nop.Flops(1e9)
	Nop.Cmps(1e9)
	Nop.MemWords(1e9)
	Nop.Charge(1e9) // must not panic or affect anything
}

func TestExperimentSpeedups(t *testing.T) {
	// A perfectly parallel program: each process does work/n flops.
	const work = 1e6
	exp := &Experiment{
		Name:  "embarrassing",
		Model: machine.IBMSP(),
		Par: func(p *spmd.Proc) {
			p.Flops(work / float64(p.N()))
		},
	}
	curve, err := exp.Run(context.Background(), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range curve.Points {
		if diff := pt.Speedup - float64(pt.Procs); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("point %d: speedup %g, want %d", i, pt.Speedup, pt.Procs)
		}
	}
	if sp := curve.SpeedupAt(4); sp < 3.99 || sp > 4.01 {
		t.Errorf("SpeedupAt(4) = %g, want ~4", sp)
	}
	if curve.SpeedupAt(3) != 0 {
		t.Error("SpeedupAt missing point should be 0")
	}
	if eff := curve.Efficiency(3); eff < 0.99 || eff > 1.01 {
		t.Errorf("efficiency = %g, want ~1", eff)
	}
}

func TestExperimentExplicitSeqBaseline(t *testing.T) {
	exp := &Experiment{
		Name:  "with-serial-fraction",
		Model: machine.IBMSP(),
		Seq:   func(p *spmd.Proc) { p.Flops(1e6) },
		Par: func(p *spmd.Proc) {
			p.Flops(2e6 / float64(p.N())) // parallel algorithm does 2x work
		},
	}
	curve, err := exp.Run(context.Background(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if sp := curve.Points[0].Speedup; sp < 0.99 || sp > 1.01 {
		t.Errorf("speedup = %g, want ~1 (2x work on 2 procs)", sp)
	}
}

func TestWriteTable(t *testing.T) {
	c1 := &Curve{Name: "alg-a", Points: []Point{{Procs: 1, Speedup: 1}, {Procs: 2, Speedup: 1.9}}}
	c2 := &Curve{Name: "alg-b", Points: []Point{{Procs: 1, Speedup: 1}, {Procs: 2, Speedup: 1.2}}}
	var buf bytes.Buffer
	if err := WriteTable(&buf, c1, c2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"procs", "perfect", "alg-a", "alg-b", "1.90", "1.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if err := WriteTable(&buf); err != nil {
		t.Errorf("empty table should be a no-op: %v", err)
	}
}

// errAfterWriter fails every write after the first n bytes, for testing
// error propagation.
type errAfterWriter struct {
	n       int
	written int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, fmt.Errorf("write limit %d exceeded", w.n)
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteTablePropagatesErrors(t *testing.T) {
	c := &Curve{Name: "alg", Points: []Point{{Procs: 1, Speedup: 1}, {Procs: 2, Speedup: 1.9}}}
	// A full render needs well over 40 bytes; every truncation point must
	// surface the write error rather than dropping it.
	for _, limit := range []int{0, 10, 20, 30, 40} {
		if err := WriteTable(&errAfterWriter{n: limit}, c); err == nil {
			t.Errorf("WriteTable with %d-byte writer: error dropped", limit)
		}
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(64)
	want := []int{1, 2, 4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("PowersOfTwo(64) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo(64) = %v", got)
		}
	}
	if len(PowersOfTwo(0)) != 0 {
		t.Error("PowersOfTwo(0) should be empty")
	}
}
