package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders one or more curves sharing the same process counts as
// CSV with a perfect-speedup column — plot-ready output for the figure
// tables.
func WriteCSV(w io.Writer, curves ...*Curve) error {
	if len(curves) == 0 {
		return nil
	}
	cw := csv.NewWriter(w)
	header := []string{"procs", "perfect"}
	for _, c := range curves {
		header = append(header, c.Name+"_speedup", c.Name+"_time_s")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: write csv header: %w", err)
	}
	for i, pt := range curves[0].Points {
		row := []string{strconv.Itoa(pt.Procs), strconv.Itoa(pt.Procs)}
		for _, c := range curves {
			if i < len(c.Points) {
				row = append(row,
					strconv.FormatFloat(c.Points[i].Speedup, 'g', 6, 64),
					strconv.FormatFloat(c.Points[i].Time, 'g', 6, 64))
			} else {
				row = append(row, "", "")
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("core: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
