package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/spmd"
)

func TestPhaseTimerMeasuresMaxAcrossProcs(t *testing.T) {
	var names []string
	var times []float64
	_, err := Simulate(4, machine.IBMSP(), func(p *spmd.Proc) {
		pt := NewPhaseTimer(p)
		// Phase 1: rank r works r+1 ms; the phase time is the max (4ms).
		p.Charge(float64(p.Rank()+1) * 1e-3)
		pt.Mark("work")
		// Phase 2: everyone 2ms.
		p.Charge(2e-3)
		pt.Mark("settle")
		if p.Rank() == 0 {
			names, times = pt.Phases()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "work" || names[1] != "settle" {
		t.Fatalf("phases = %v", names)
	}
	// Phase 1 max is 4ms (plus small collective costs).
	if times[0] < 4e-3 || times[0] > 5e-3 {
		t.Errorf("work phase = %g, want ~4ms", times[0])
	}
	if times[1] < 2e-3 || times[1] > 3e-3 {
		t.Errorf("settle phase = %g, want ~2ms", times[1])
	}
}

func TestPhaseTimerConsistentAcrossRanks(t *testing.T) {
	all := make([][]float64, 3)
	_, err := Simulate(3, machine.IBMSP(), func(p *spmd.Proc) {
		pt := NewPhaseTimer(p)
		p.Flops(float64(1000 * (p.Rank() + 1)))
		pt.Mark("a")
		p.Flops(500)
		pt.Mark("b")
		_, times := pt.Phases()
		all[p.Rank()] = times
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 3; r++ {
		for i := range all[0] {
			if all[r][i] != all[0][i] {
				t.Fatalf("rank %d phase %d differs: %g vs %g", r, i, all[r][i], all[0][i])
			}
		}
	}
}

func TestPhaseTimerBreakdown(t *testing.T) {
	var buf bytes.Buffer
	_, err := Simulate(2, machine.IBMSP(), func(p *spmd.Proc) {
		pt := NewPhaseTimer(p)
		p.Charge(1e-3)
		pt.Mark("alpha")
		p.Charge(3e-3)
		pt.Mark("beta")
		if p.Rank() == 0 {
			_, times := pt.Phases()
			sum := 0.0
			for _, v := range times {
				sum += v
			}
			if math.Abs(pt.Total()-sum) > 1e-12 {
				t.Error("total != sum of phases")
			}
			if err := pt.WriteBreakdown(&buf); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"alpha", "beta", "total", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}
