package onedeep

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// sumSpec is a minimal integer application exercising both phases:
// split partitions values by parity-of-bucket, solve doubles each value,
// merge re-buckets by magnitude. It is contrived but fully deterministic,
// so skeleton behaviour is directly checkable.
func sumSpec(strategy ParamStrategy) *Spec[[]int, []int, int, int] {
	ex := func() *Exchange[[]int, int] {
		return &Exchange[[]int, int]{
			Strategy: strategy,
			Sample: func(m core.Meter, local []int) int {
				s := 0
				for _, v := range local {
					s += v
				}
				return s
			},
			Plan: func(m core.Meter, samples []int) int {
				s := 0
				for _, v := range samples {
					s += v
				}
				return s
			},
			Partition: func(m core.Meter, local []int, total, n int) [][]int {
				parts := make([][]int, n)
				for _, v := range local {
					b := v % n
					if b < 0 {
						b += n
					}
					parts[b] = append(parts[b], v)
				}
				return parts
			},
			Combine: func(m core.Meter, parts [][]int) []int {
				var out []int
				for _, p := range parts {
					out = append(out, p...)
				}
				return out
			},
		}
	}
	return &Spec[[]int, []int, int, int]{
		Name:  "bucket-double",
		Split: ex(),
		Solve: func(m core.Meter, local []int) []int {
			out := make([]int, len(local))
			for i, v := range local {
				out[i] = 2 * v
			}
			return out
		},
		Merge: ex(),
	}
}

func inputsFor(n int) [][]int {
	in := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 10; j++ {
			in[i] = append(in[i], i*17+j*3)
		}
	}
	return in
}

func TestV1SequentialEqualsConcurrent(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		in := inputsFor(n)
		a := RunV1(core.Sequential, sumSpec(Centralized), in)
		b := RunV1(core.Concurrent, sumSpec(Centralized), in)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: V1 modes disagree", n)
		}
	}
}

func TestV1EqualsSPMDBothStrategies(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		in := inputsFor(n)
		for _, strat := range []ParamStrategy{Centralized, Replicated} {
			spec := sumSpec(strat)
			v1 := RunV1(core.Sequential, spec, in)
			v2 := make([][]int, n)
			w := spmd.MustWorld(n, machine.IBMSP())
			if _, err := w.Run(func(p *spmd.Proc) {
				v2[p.Rank()] = RunSPMD(p, spec, in[p.Rank()])
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(v1, v2) {
				t.Fatalf("n=%d strat=%v: V1 != SPMD\nv1=%v\nv2=%v", n, strat, v1, v2)
			}
		}
	}
}

func TestDegeneratePhases(t *testing.T) {
	// Spec with both phases degenerate: solve only.
	spec := &Spec[[]int, int, struct{}, struct{}]{
		Name: "sum-only",
		Solve: func(m core.Meter, local []int) int {
			s := 0
			for _, v := range local {
				s += v
			}
			return s
		},
	}
	in := [][]int{{1, 2}, {3, 4}, {5}}
	got := RunV1(core.Sequential, spec, in)
	if !reflect.DeepEqual(got, []int{3, 7, 5}) {
		t.Errorf("degenerate V1 = %v", got)
	}
	out := make([]int, 3)
	w := spmd.MustWorld(3, machine.IBMSP())
	res, err := w.Run(func(p *spmd.Proc) {
		out[p.Rank()] = RunSPMD(p, spec, in[p.Rank()])
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, got) {
		t.Errorf("degenerate SPMD = %v", out)
	}
	if res.Msgs != 0 {
		t.Errorf("fully degenerate spec should send no messages, sent %d", res.Msgs)
	}
}

func TestSpecValidation(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "Solve") {
			t.Errorf("expected Solve validation panic, got %v", r)
		}
	}()
	spec := &Spec[[]int, int, struct{}, struct{}]{Name: "broken"}
	RunV1(core.Sequential, spec, [][]int{{1}})
}

func TestExchangeValidation(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected incomplete exchange to panic")
		}
	}()
	spec := &Spec[[]int, []int, int, int]{
		Name:  "half-exchange",
		Split: &Exchange[[]int, int]{Sample: func(core.Meter, []int) int { return 0 }},
		Solve: func(m core.Meter, l []int) []int { return l },
	}
	RunV1(core.Sequential, spec, [][]int{{1}})
}

func TestPartitionArityChecked(t *testing.T) {
	spec := &Spec[[]int, []int, int, int]{
		Name: "bad-arity",
		Split: &Exchange[[]int, int]{
			Sample:    func(core.Meter, []int) int { return 0 },
			Plan:      func(core.Meter, []int) int { return 0 },
			Partition: func(m core.Meter, l []int, p, n int) [][]int { return [][]int{l} }, // wrong: always 1
			Combine: func(m core.Meter, parts [][]int) []int {
				var out []int
				for _, p := range parts {
					out = append(out, p...)
				}
				return out
			},
		},
		Solve: func(m core.Meter, l []int) []int { return l },
	}
	defer func() {
		if recover() == nil {
			t.Error("expected arity panic")
		}
	}()
	RunV1(core.Sequential, spec, [][]int{{1}, {2}})
}

func TestParamStrategyString(t *testing.T) {
	if Centralized.String() != "centralized" || Replicated.String() != "replicated" {
		t.Error("strategy names wrong")
	}
	if !strings.Contains(ParamStrategy(5).String(), "5") {
		t.Error("unknown strategy should include value")
	}
}

func TestRecursiveSkeletonSum(t *testing.T) {
	// Recursive sum-of-slice: checks tree routing and merge ordering.
	rec := &Recursive[[]int, int]{
		Name:      "tree-sum",
		Threshold: 2,
		Size:      func(d []int) int { return len(d) },
		Split: func(m core.Meter, d []int) ([]int, []int) {
			return d[:len(d)/2], d[len(d)/2:]
		},
		Base: func(m core.Meter, d []int) int {
			s := 0
			for _, v := range d {
				s += v
			}
			return s
		},
		Merge: func(m core.Meter, a, b int) int { return a + b },
	}
	data := make([]int, 100)
	want := 0
	for i := range data {
		data[i] = i
		want += i
	}
	if got := rec.SolveSeq(core.Nop, data); got != want {
		t.Fatalf("SolveSeq = %d, want %d", got, want)
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		var got int
		w := spmd.MustWorld(n, machine.IBMSP())
		if _, err := w.Run(func(p *spmd.Proc) {
			r := rec.RunSPMD(p, data)
			if p.Rank() == 0 {
				got = r
			}
		}); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: RunSPMD = %d, want %d", n, got, want)
		}
	}
}

func TestRecursiveValidation(t *testing.T) {
	rec := &Recursive[[]int, int]{Name: "incomplete", Threshold: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected validation panic")
		}
	}()
	rec.SolveSeq(core.Nop, []int{1})
}

func TestRecursiveMergeOrderIsTreeOrder(t *testing.T) {
	// With a non-commutative merge (string concat), the SPMD tree must
	// produce the same left-to-right order as sequential recursion.
	rec := &Recursive[[]string, string]{
		Name:      "concat",
		Threshold: 1,
		Size:      func(d []string) int { return len(d) },
		Split: func(m core.Meter, d []string) ([]string, []string) {
			return d[:len(d)/2], d[len(d)/2:]
		},
		Base: func(m core.Meter, d []string) string {
			if len(d) == 0 {
				return ""
			}
			return d[0]
		},
		Merge: func(m core.Meter, a, b string) string { return a + b },
	}
	data := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	want := rec.SolveSeq(core.Nop, data)
	if want != "abcdefgh" {
		t.Fatalf("SolveSeq = %q", want)
	}
	for _, n := range []int{2, 4, 8} {
		var got string
		w := spmd.MustWorld(n, machine.IBMSP())
		if _, err := w.Run(func(p *spmd.Proc) {
			r := rec.RunSPMD(p, data)
			if p.Rank() == 0 {
				got = r
			}
		}); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: tree order %q != sequential %q", n, got, want)
		}
	}
}
