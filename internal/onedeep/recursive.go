package onedeep

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/spmd"
)

// Tags for the recursive skeleton's tree protocol.
const (
	tagDistribute = collective.TagUser + iota
	tagCollect
)

// Recursive is the traditional recursive divide-and-conquer skeleton
// (Figure 1): the problem splits into two subproblems per level, a new
// process takes one of them, leaves solve sequentially, and subsolutions
// merge back up the tree. It exists as the baseline whose inefficiencies —
// serial split/merge at the top of the tree and full-data transfers —
// motivate the one-deep archetype; Figure 6 plots both.
type Recursive[D, S any] struct {
	Name string
	// Threshold is the size at or below which Base solves directly
	// during sequential recursion.
	Threshold int
	// Size reports the problem size used against Threshold.
	Size func(d D) int
	// Split divides a problem into two halves.
	Split func(m core.Meter, d D) (D, D)
	// Base solves a problem of size <= Threshold directly.
	Base func(m core.Meter, d D) S
	// Merge combines two subsolutions.
	Merge func(m core.Meter, a, b S) S
}

func (r *Recursive[D, S]) validate() {
	if r.Threshold < 1 {
		panic(fmt.Sprintf("onedeep: recursive %q needs Threshold >= 1", r.Name))
	}
	if r.Size == nil || r.Split == nil || r.Base == nil || r.Merge == nil {
		panic(fmt.Sprintf("onedeep: recursive %q must define Size, Split, Base and Merge", r.Name))
	}
}

// SolveSeq runs the plain sequential recursion — the "original sequential
// algorithm" of the paper's step 1 — charging its work to m.
func (r *Recursive[D, S]) SolveSeq(m core.Meter, d D) S {
	r.validate()
	return r.solveSeq(m, d)
}

func (r *Recursive[D, S]) solveSeq(m core.Meter, d D) S {
	if r.Size(d) <= r.Threshold {
		return r.Base(m, d)
	}
	a, b := r.Split(m, d)
	return r.Merge(m, r.solveSeq(m, a), r.solveSeq(m, b))
}

// RunSPMD executes the traditional parallelization (Figure 1) as process
// p's body. The world size must be a power of two. Process 0 holds the
// whole problem; at each tree level the owner of a rank range splits its
// data and ships one half to the range's midpoint rank; leaves solve with
// the sequential recursion; subsolutions merge back up the same tree.
// The final solution is returned at rank 0 (zero value elsewhere).
//
// The pattern's two inefficiencies (§2.1.1) are faithfully reproduced:
// splitting inspects and transfers all the data down the tree, and
// the number of active processes varies over the run (all N busy only
// during the solve phase).
func (r *Recursive[D, S]) RunSPMD(p spmd.Comm, root D) S {
	r.validate()
	n, rank := p.N(), p.Rank()
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("onedeep: recursive %q requires a power-of-two world, got %d", r.Name, n))
	}

	lo, hi := 0, n
	var d D
	if rank == 0 {
		d = root
	}
	parent := -1
	var children []int // midpoints this process shipped halves to, in descent order
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		switch {
		case rank == lo:
			dl, dr := r.Split(p, d)
			spmd.SendT(p, mid, tagDistribute, dr)
			d = dl
			children = append(children, mid)
			hi = mid
		case rank == mid:
			d = spmd.Recv[D](p, lo, tagDistribute)
			parent = lo
			lo = mid
		case rank < mid:
			hi = mid
		default:
			lo = mid
		}
	}

	s := r.solveSeq(p, d)

	// Merge back up: children were split off shallowest-first, so merge
	// deepest-first.
	for i := len(children) - 1; i >= 0; i-- {
		rs := spmd.Recv[S](p, children[i], tagCollect)
		s = r.Merge(p, s, rs)
	}
	if parent >= 0 {
		spmd.SendT(p, parent, tagCollect, s)
		var zero S
		return zero
	}
	return s
}
