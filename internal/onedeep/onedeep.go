// Package onedeep implements the paper's one-deep divide-and-conquer
// archetype (§2): a single level of split → solve → merge across N
// processes, instead of the traditional recursive tree.
//
// The structure follows §2.2 exactly:
//
//  1. Split problem P into N subproblems. Parameters for the split are
//     computed from a small sample of the data; once known, each process
//     partitions its data independently and an all-to-all redistribution
//     delivers the pieces.
//  2. Solve the subproblems independently with a sequential algorithm.
//  3. Merge the subsolutions: compute repartitioning parameters from
//     samples, repartition (all-to-all), and locally merge. The total
//     solution is the concatenation of the local results.
//
// Either phase may be degenerate (§2.2): mergesort and the skyline problem
// use a degenerate split (the initial distribution is the split), quicksort
// a degenerate merge (concatenation).
//
// Both program versions of the paper's method are provided: RunV1 is the
// initial archetype-based version (Figure 4 — parfor loops over logical
// processes, executable sequentially or concurrently with identical
// results), and RunSPMD is the transformed message-passing version
// (Figure 5). Package-level tests assert their equivalence, which is the
// paper's semantics-preservation claim.
//
// The traditional recursive parallelization (Figure 1) is provided by
// Recursive as the baseline that Figure 6 compares against.
package onedeep

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/spmd"
)

// ParamStrategy selects how exchange parameters (splitters) are computed
// and distributed — the alternatives enumerated in §2.3.
type ParamStrategy int

const (
	// Centralized gathers samples at process 0, runs Plan there once,
	// and broadcasts the result ("one master process ... and make its
	// results available").
	Centralized ParamStrategy = iota
	// Replicated all-gathers the samples and runs Plan redundantly on
	// every process ("all processes perform the same computation
	// concurrently").
	Replicated
)

// String returns the strategy name.
func (s ParamStrategy) String() string {
	switch s {
	case Centralized:
		return "centralized"
	case Replicated:
		return "replicated"
	default:
		return fmt.Sprintf("ParamStrategy(%d)", int(s))
	}
}

// Exchange describes one data-exchange phase (the split or the merge) over
// local data of type T with parameters of type P.
//
// The phase runs as: Sample locally → combine samples into global
// parameters with Plan → Partition locally into N parts → all-to-all
// redistribution → Combine the received parts into the new local value.
type Exchange[T, P any] struct {
	// Sample extracts this process's contribution to the parameter
	// computation from its local data (e.g. local splitter candidates,
	// local extrema). It should be cheap — "a small sample of the
	// problem data" (§2.2).
	Sample func(m core.Meter, local T) P
	// Plan combines the per-process samples, ordered by rank, into the
	// global parameters (e.g. the N-1 splitters of §2.5.2).
	Plan func(m core.Meter, samples []P) P
	// Partition cuts local data into n parts; part i is delivered to
	// process i.
	Partition func(m core.Meter, local T, params P, n int) []T
	// Combine merges the n received parts (indexed by source rank) into
	// the process's new local value (e.g. the multi-way merge of sorted
	// sublists).
	Combine func(m core.Meter, parts []T) T
	// Strategy selects parameter distribution; the zero value is
	// Centralized.
	Strategy ParamStrategy
}

// Spec is a complete one-deep divide-and-conquer algorithm: local problem
// data of type D, local solution data of type S, with split parameters PS
// and merge parameters PM. A nil Split or Merge marks that phase
// degenerate.
type Spec[D, S, PS, PM any] struct {
	Name  string
	Split *Exchange[D, PS]
	// Solve solves one subproblem sequentially — the only part of the
	// program the paper's application developer writes from scratch.
	Solve func(m core.Meter, local D) S
	Merge *Exchange[S, PM]
}

func (s *Spec[D, S, PS, PM]) validate() {
	if s.Solve == nil {
		panic(fmt.Sprintf("onedeep: spec %q has no Solve", s.Name))
	}
	validateExchange(s.Name, "split", s.Split)
	validateExchange(s.Name, "merge", s.Merge)
}

func validateExchange[T, P any](name, phase string, e *Exchange[T, P]) {
	if e == nil {
		return
	}
	if e.Sample == nil || e.Plan == nil || e.Partition == nil || e.Combine == nil {
		panic(fmt.Sprintf("onedeep: spec %q %s exchange must define Sample, Plan, Partition and Combine", name, phase))
	}
}

// RunV1 executes the initial archetype-based version of the algorithm
// (Figure 4): logical processes are parfor iterations over index i, with
// the exchanges expressed as shared-memory transposes. mode selects
// sequential (debugging) or concurrent execution; deterministic
// applications give identical results in both, and identical results to
// RunSPMD — the archetype's transformation-correctness property.
//
// inputs[i] is logical process i's local data; the result is indexed the
// same way. Costs are not metered (pass the result to application-level
// cost accounting if needed): version 1 exists for algorithm development
// and debugging, not measurement.
func RunV1[D, S, PS, PM any](mode core.Mode, spec *Spec[D, S, PS, PM], inputs []D) []S {
	spec.validate()
	n := len(inputs)
	data := make([]D, n)
	copy(data, inputs)

	if spec.Split != nil {
		data = exchangeV1(mode, spec.Split, data)
	}

	sols := make([]S, n)
	core.ParFor(mode, n, func(i int) {
		sols[i] = spec.Solve(core.Nop, data[i])
	})

	if spec.Merge != nil {
		sols = exchangeV1(mode, spec.Merge, sols)
	}
	return sols
}

func exchangeV1[T, P any](mode core.Mode, e *Exchange[T, P], data []T) []T {
	n := len(data)
	samples := make([]P, n)
	core.ParFor(mode, n, func(i int) {
		samples[i] = e.Sample(core.Nop, data[i])
	})
	params := e.Plan(core.Nop, samples)

	parts := make([][]T, n)
	core.ParFor(mode, n, func(i int) {
		parts[i] = e.Partition(core.Nop, data[i], params, n)
		if len(parts[i]) != n {
			panic(fmt.Sprintf("onedeep: Partition returned %d parts for %d processes", len(parts[i]), n))
		}
	})

	out := make([]T, n)
	core.ParFor(mode, n, func(i int) {
		recv := make([]T, n)
		for src := 0; src < n; src++ {
			recv[src] = parts[src][i]
		}
		out[i] = e.Combine(core.Nop, recv)
	})
	return out
}

// RunSPMD executes the transformed message-passing version of the
// algorithm (Figure 5) as process p's body: split exchange (if any), local
// solve, merge exchange (if any). It returns the process's local piece of
// the total solution; the total solution is the rank-order concatenation.
func RunSPMD[D, S, PS, PM any](p spmd.Comm, spec *Spec[D, S, PS, PM], local D) S {
	spec.validate()
	if spec.Split != nil {
		local = exchangeSPMD(p, spec.Split, local)
	}
	sol := spec.Solve(p, local)
	if spec.Merge != nil {
		sol = exchangeSPMD(p, spec.Merge, sol)
	}
	return sol
}

func exchangeSPMD[T, P any](p spmd.Comm, e *Exchange[T, P], local T) T {
	n := p.N()
	sample := e.Sample(p, local)

	// Compute and distribute the global parameters (§2.3, §2.4: either
	// gather+plan+broadcast, or all-gather with replicated planning).
	var params P
	switch e.Strategy {
	case Centralized:
		all := collective.Gather(p, 0, sample)
		if p.Rank() == 0 {
			params = e.Plan(p, all)
		}
		params = collective.Broadcast(p, 0, params)
	case Replicated:
		all := collective.AllGather(p, sample)
		params = e.Plan(p, all)
	default:
		panic(fmt.Sprintf("onedeep: invalid ParamStrategy %d", int(e.Strategy)))
	}

	parts := e.Partition(p, local, params, n)
	if len(parts) != n {
		panic(fmt.Sprintf("onedeep: Partition returned %d parts for %d processes", len(parts), n))
	}
	recv := collective.AllToAll(p, parts)
	return e.Combine(p, recv)
}
