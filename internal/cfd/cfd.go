// Package cfd implements the compressible-flow application of §3.7.1: a
// two-dimensional simulation of high-Mach-number flow on the 2D mesh
// archetype. The paper's two codes simulated shocks interacting with
// sinusoidal density interfaces (Figures 19 and 20 show density and
// vorticity images); this reproduction solves the same problem class —
// the 2D Euler equations with a planar shock driving into a sinusoidally
// perturbed density interface — with a Lax–Friedrichs finite-volume
// scheme (first-order, robust through shocks).
//
// The structure is pure mesh archetype: per step, one ghost-boundary
// exchange, a global max-reduction for the CFL time step (a
// copy-consistent global variable), and a grid operation computing the
// next state. The speedup experiment of Figure 16 runs this code.
package cfd

import (
	"math"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

// Cell holds the conserved variables (ρ, ρu, ρv, E) at one grid point.
type Cell = [4]float64

// Params configures a shock–interface problem on the unit square,
// cell-centred on an NX×NY grid, x open (transmissive), y periodic.
type Params struct {
	NX, NY int
	// Gamma is the ratio of specific heats.
	Gamma float64
	// CFL is the time-step safety factor.
	CFL float64
	// Mach is the shock Mach number (shock travels in +x).
	Mach float64
	// ShockX is the initial shock position.
	ShockX float64
	// InterfaceX, InterfaceAmp, InterfaceK describe the sinusoidal
	// density interface x = InterfaceX + InterfaceAmp·sin(2π·K·y).
	InterfaceX   float64
	InterfaceAmp float64
	InterfaceK   int
	// RhoHeavy is the density of the gas right of the interface
	// (the pre-shock light gas has density 1, pressure 1).
	RhoHeavy float64
}

// DefaultParams returns the Figure 19/20-style configuration: a Mach 1.5
// shock driving into a sinusoidal interface with a 3× density jump.
func DefaultParams(nx, ny int) Params {
	return Params{
		NX: nx, NY: ny,
		Gamma: 1.4, CFL: 0.4,
		Mach:   1.5,
		ShockX: 0.15, InterfaceX: 0.4, InterfaceAmp: 0.05, InterfaceK: 2,
		RhoHeavy: 3,
	}
}

// flopsPerPoint is the approximate per-point cost of one Lax–Friedrichs
// update (four flux evaluations plus the combination, four components).
const flopsPerPoint = 90

// waveFlops is the per-point cost of the local wave-speed scan.
const waveFlops = 12

// postShock returns the post-shock (ρ, u, p) state behind a Mach-M shock
// moving into quiescent gas with ρ=1, p=1, via the Rankine–Hugoniot
// relations.
func postShock(gamma, mach float64) (rho, u, p float64) {
	m2 := mach * mach
	p = (2*gamma*m2 - (gamma - 1)) / (gamma + 1)
	rho = (gamma + 1) * m2 / ((gamma-1)*m2 + 2)
	c1 := math.Sqrt(gamma) // sqrt(γ·p1/ρ1) with p1 = ρ1 = 1
	us := mach * c1        // shock speed
	u = us * (1 - 1/rho)
	return rho, u, p
}

// InitCell returns the initial conserved state at position (x, y).
func (pm *Params) InitCell(x, y float64) Cell {
	rho, u, p := 1.0, 0.0, 1.0
	xi := pm.InterfaceX + pm.InterfaceAmp*math.Sin(2*math.Pi*float64(pm.InterfaceK)*y)
	switch {
	case x < pm.ShockX:
		rho, u, p = postShock(pm.Gamma, pm.Mach)
	case x > xi:
		rho = pm.RhoHeavy
	}
	return prim2cons(pm.Gamma, rho, u, 0, p)
}

func prim2cons(gamma, rho, u, v, p float64) Cell {
	return Cell{rho, rho * u, rho * v, p/(gamma-1) + 0.5*rho*(u*u+v*v)}
}

// Pressure returns the pressure of a conserved-variable cell.
func Pressure(gamma float64, c Cell) float64 {
	rho, mx, my, e := c[0], c[1], c[2], c[3]
	return (gamma - 1) * (e - 0.5*(mx*mx+my*my)/rho)
}

// fluxes returns the x-direction and y-direction flux vectors of c.
func fluxes(gamma float64, c Cell) (Cell, Cell) {
	rho, mx, my, e := c[0], c[1], c[2], c[3]
	u, v := mx/rho, my/rho
	p := (gamma - 1) * (e - 0.5*(mx*mx+my*my)/rho)
	f := Cell{mx, mx*u + p, my * u, (e + p) * u}
	g := Cell{my, mx * v, my*v + p, (e + p) * v}
	return f, g
}

// waveSpeed returns (|u|+c)/dx + (|v|+c)/dy for the CFL condition.
func waveSpeed(gamma, dx, dy float64, c Cell) float64 {
	rho, mx, my := c[0], c[1], c[2]
	u, v := mx/rho, my/rho
	p := Pressure(gamma, c)
	if p < 1e-12 {
		p = 1e-12
	}
	snd := math.Sqrt(gamma * p / rho)
	return (math.Abs(u)+snd)/dx + (math.Abs(v)+snd)/dy
}

// lf computes the Lax–Friedrichs update from the four neighbours.
func lf(gamma, dtdx, dtdy float64, xm, xp, ym, yp Cell) Cell {
	fxm, _ := fluxes(gamma, xm)
	fxp, _ := fluxes(gamma, xp)
	_, gym := fluxes(gamma, ym)
	_, gyp := fluxes(gamma, yp)
	var out Cell
	for k := 0; k < 4; k++ {
		out[k] = 0.25*(xm[k]+xp[k]+ym[k]+yp[k]) -
			0.5*dtdx*(fxp[k]-fxm[k]) -
			0.5*dtdy*(gyp[k]-gym[k])
	}
	return out
}

// Sim is the distributed (SPMD) simulation state.
type Sim struct {
	Pm     Params
	U      *meshspectral.Grid2D[Cell]
	unew   *meshspectral.Grid2D[Cell]
	dtGlob *meshspectral.Global[float64]
	dx, dy float64
}

// NewSPMD builds the distributed simulation over layout l as process p's
// body.
func NewSPMD(p spmd.Comm, pm Params, l meshspectral.Layout) *Sim {
	s := &Sim{Pm: pm, dx: 1 / float64(pm.NX), dy: 1 / float64(pm.NY)}
	s.U = meshspectral.New2D[Cell](p, pm.NX, pm.NY, l, 1)
	s.U.SetPeriodic(false, true)
	s.unew = meshspectral.New2D[Cell](p, pm.NX, pm.NY, l, 1)
	s.unew.SetPeriodic(false, true)
	s.dtGlob = meshspectral.NewGlobal(p, 0.0)
	s.U.Fill(func(gi, gj int) Cell {
		return pm.InitCell((float64(gi)+0.5)*s.dx, (float64(gj)+0.5)*s.dy)
	})
	return s
}

// fillOpenX writes zero-gradient ghost cells at the global x boundaries
// (the y direction is periodic and handled by the exchange).
func (s *Sim) fillOpenX() {
	x0, x1 := s.U.OwnedX()
	y0, y1 := s.U.OwnedY()
	if x0 == 0 {
		for gj := y0; gj < y1; gj++ {
			s.U.Set(-1, gj, s.U.At(0, gj))
		}
	}
	if x1 == s.Pm.NX {
		for gj := y0; gj < y1; gj++ {
			s.U.Set(s.Pm.NX, gj, s.U.At(s.Pm.NX-1, gj))
		}
	}
}

// Step advances one time step and returns dt. The sequence is the mesh
// archetype's: boundary exchange, physical-boundary fill, wave-speed
// reduction (global variable), grid operation, swap.
func (s *Sim) Step() float64 {
	p := s.U.Proc()
	s.U.ExchangeBoundary()
	s.fillOpenX()

	x0, x1 := s.U.OwnedX()
	y0, y1 := s.U.OwnedY()
	localMax := 0.0
	for gi := x0; gi < x1; gi++ {
		for gj := y0; gj < y1; gj++ {
			localMax = math.Max(localMax, waveSpeed(s.Pm.Gamma, s.dx, s.dy, s.U.At(gi, gj)))
		}
	}
	p.Flops(waveFlops * float64((x1-x0)*(y1-y0)))
	dt := s.Pm.CFL / s.dtGlob.SetReduced(localMax, math.Max)

	dtdx, dtdy := dt/s.dx, dt/s.dy
	s.unew.Assign(flopsPerPoint, func(gi, gj int) Cell {
		return lf(s.Pm.Gamma, dtdx, dtdy,
			s.U.At(gi-1, gj), s.U.At(gi+1, gj),
			s.U.At(gi, gj-1), s.U.At(gi, gj+1))
	})
	s.U, s.unew = s.unew, s.U
	return dt
}

// Run advances n steps and returns the simulated physical time.
func (s *Sim) Run(n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += s.Step()
	}
	return t
}

// SeqSim is the sequential simulation, bit-identical to the SPMD version
// step for step (the max-reduction is exact and the per-point arithmetic
// is shared).
type SeqSim struct {
	Pm     Params
	U      *array.Dense2D[Cell]
	unew   *array.Dense2D[Cell]
	dx, dy float64
}

// NewSeq builds the sequential simulation.
func NewSeq(pm Params) *SeqSim {
	s := &SeqSim{Pm: pm, dx: 1 / float64(pm.NX), dy: 1 / float64(pm.NY)}
	s.U = array.New2D[Cell](pm.NX, pm.NY)
	s.unew = array.New2D[Cell](pm.NX, pm.NY)
	s.U.Fill(func(i, j int) Cell {
		return pm.InitCell((float64(i)+0.5)*s.dx, (float64(j)+0.5)*s.dy)
	})
	return s
}

// at reads with x clamped (zero gradient) and y wrapped (periodic) —
// exactly the values the distributed ghosts hold.
func (s *SeqSim) at(i, j int) Cell {
	if i < 0 {
		i = 0
	}
	if i >= s.Pm.NX {
		i = s.Pm.NX - 1
	}
	j = ((j % s.Pm.NY) + s.Pm.NY) % s.Pm.NY
	return s.U.At(i, j)
}

// Step advances one time step sequentially, charging m, and returns dt.
func (s *SeqSim) Step(m core.Meter) float64 {
	localMax := 0.0
	for i := 0; i < s.Pm.NX; i++ {
		for j := 0; j < s.Pm.NY; j++ {
			localMax = math.Max(localMax, waveSpeed(s.Pm.Gamma, s.dx, s.dy, s.U.At(i, j)))
		}
	}
	dt := s.Pm.CFL / localMax
	dtdx, dtdy := dt/s.dx, dt/s.dy
	for i := 0; i < s.Pm.NX; i++ {
		for j := 0; j < s.Pm.NY; j++ {
			s.unew.Set(i, j, lf(s.Pm.Gamma, dtdx, dtdy,
				s.at(i-1, j), s.at(i+1, j), s.at(i, j-1), s.at(i, j+1)))
		}
	}
	m.Flops(float64(s.Pm.NX*s.Pm.NY) * (flopsPerPoint + waveFlops))
	s.U, s.unew = s.unew, s.U
	return dt
}

// Run advances n steps and returns the simulated physical time.
func (s *SeqSim) Run(m core.Meter, n int) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += s.Step(m)
	}
	return t
}

// Density extracts the density field from a gathered cell array.
func Density(u *array.Dense2D[Cell]) *array.Dense2D[float64] {
	out := array.New2D[float64](u.NX, u.NY)
	for k, c := range u.Data {
		out.Data[k] = c[0]
	}
	return out
}

// Vorticity computes ω = ∂v/∂x − ∂u/∂y by central differences on a
// gathered cell array (one-sided at the x edges, periodic in y).
func Vorticity(u *array.Dense2D[Cell]) *array.Dense2D[float64] {
	nx, ny := u.NX, u.NY
	dx, dy := 1/float64(nx), 1/float64(ny)
	vel := func(i, j int) (float64, float64) {
		c := u.At(i, j)
		return c[1] / c[0], c[2] / c[0]
	}
	out := array.New2D[float64](nx, ny)
	for i := 0; i < nx; i++ {
		im, ip := i-1, i+1
		sx := 2 * dx
		if im < 0 {
			im, sx = 0, dx
		}
		if ip >= nx {
			ip, sx = nx-1, dx
		}
		for j := 0; j < ny; j++ {
			jm := ((j-1)%ny + ny) % ny
			jp := (j + 1) % ny
			_, vxp := vel(ip, j)
			_, vxm := vel(im, j)
			uyp, _ := vel(i, jp)
			uym, _ := vel(i, jm)
			out.Set(i, j, (vxp-vxm)/sx-(uyp-uym)/(2*dy))
		}
	}
	return out
}

// TotalMass returns the integral of density over the domain (conserved by
// the scheme up to boundary flux; with closed x boundaries before the
// shock exits it is constant to rounding).
func TotalMass(u *array.Dense2D[Cell]) float64 {
	sum := 0.0
	for _, c := range u.Data {
		sum += c[0]
	}
	return sum / float64(u.NX*u.NY)
}
