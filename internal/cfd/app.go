package cfd

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/meshspectral"
)

func init() {
	arch.Register(arch.App{
		Name:        "cfd",
		Desc:        "compressible shock/interface flow (§3.7.1)",
		DefaultSize: 128,
		Run:         runApp,
	})
}

// Program advances the shock/interface problem the given number of steps
// on a near-square decomposition and returns the final simulation time.
func Program(steps int) arch.Program[Params, float64] {
	return arch.SPMDRoot(func(p *arch.Proc, pm Params) float64 {
		return NewSPMD(p, pm, meshspectral.NearSquare(p.N())).Run(steps)
	})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	const steps = 100
	t, rep, err := arch.RunWith(ctx, Program(steps), s, DefaultParams(n, n/2))
	if err != nil {
		return "", rep, err
	}
	return fmt.Sprintf("CFD shock/interface %dx%d, %d steps to t=%.4f", n, n/2, steps, t), rep, nil
}
