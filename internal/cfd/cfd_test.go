package cfd

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func TestPostShockRankineHugoniot(t *testing.T) {
	rho, u, p := postShock(1.4, 1.5)
	// Textbook values for M=1.5, γ=1.4.
	if math.Abs(p-2.4583) > 1e-3 {
		t.Errorf("post-shock pressure = %g, want ~2.458", p)
	}
	if math.Abs(rho-1.8621) > 1e-3 {
		t.Errorf("post-shock density = %g, want ~1.862", rho)
	}
	if u <= 0 {
		t.Errorf("post-shock velocity should push in +x, got %g", u)
	}
	// M → 1 recovers the undisturbed state.
	rho1, u1, p1 := postShock(1.4, 1)
	if math.Abs(rho1-1) > 1e-12 || math.Abs(u1) > 1e-12 || math.Abs(p1-1) > 1e-12 {
		t.Errorf("M=1 shock should be trivial: %g %g %g", rho1, u1, p1)
	}
}

func TestPrimConsRoundtrip(t *testing.T) {
	c := prim2cons(1.4, 2, 0.5, -0.3, 1.7)
	if math.Abs(Pressure(1.4, c)-1.7) > 1e-12 {
		t.Errorf("pressure roundtrip = %g, want 1.7", Pressure(1.4, c))
	}
	if c[0] != 2 || math.Abs(c[1]/c[0]-0.5) > 1e-12 || math.Abs(c[2]/c[0]+0.3) > 1e-12 {
		t.Errorf("cons vars wrong: %v", c)
	}
}

func TestFluxesConsistency(t *testing.T) {
	// For a state with velocity u and no v, the mass flux is ρu and the
	// y-flux's mass component is 0.
	c := prim2cons(1.4, 2, 0.7, 0, 1)
	f, g := fluxes(1.4, c)
	if math.Abs(f[0]-1.4) > 1e-12 {
		t.Errorf("mass flux = %g, want 1.4", f[0])
	}
	if g[0] != 0 {
		t.Errorf("y mass flux = %g, want 0", g[0])
	}
	// Momentum flux includes pressure: ρu² + p = 2·0.49 + 1.
	if math.Abs(f[1]-(2*0.49+1)) > 1e-12 {
		t.Errorf("momentum flux = %g", f[1])
	}
}

func TestUniformFlowIsSteady(t *testing.T) {
	// A uniform state must be an exact fixed point of the scheme.
	pm := DefaultParams(16, 16)
	pm.Mach = 1         // no shock
	pm.RhoHeavy = 1     // no interface
	pm.InterfaceAmp = 0 //
	s := NewSeq(pm)
	before := s.U.Clone()
	s.Run(core.Nop, 5)
	for k := range before.Data {
		for c := 0; c < 4; c++ {
			if math.Abs(s.U.Data[k][c]-before.Data[k][c]) > 1e-12 {
				t.Fatalf("uniform flow drifted at %d comp %d", k, c)
			}
		}
	}
}

func TestShockMoves(t *testing.T) {
	pm := DefaultParams(64, 16)
	s := NewSeq(pm)
	rho0 := Density(s.U)
	s.Run(core.Nop, 30)
	rho1 := Density(s.U)
	// The density at a point ahead of the initial shock but behind where
	// it should have moved must have risen.
	moved := false
	for i := 0; i < 64; i++ {
		x := (float64(i) + 0.5) / 64
		if x > pm.ShockX && x < pm.InterfaceX {
			if rho1.At(i, 8) > rho0.At(i, 8)+0.1 {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("shock does not appear to propagate")
	}
}

func TestMassConservedWithoutShock(t *testing.T) {
	// With no shock (M=1) the flow is everywhere at rest; only numerical
	// diffusion acts at the interface, far from the boundaries, so total
	// mass is conserved to rounding.
	pm := DefaultParams(64, 32)
	pm.Mach = 1
	s := NewSeq(pm)
	m0 := TotalMass(s.U)
	s.Run(core.Nop, 20)
	m1 := TotalMass(s.U)
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Errorf("mass drifted by %g relative", rel)
	}
}

func TestShockInflowAddsMass(t *testing.T) {
	// The left boundary is a post-shock inflow: total mass must grow.
	pm := DefaultParams(64, 32)
	s := NewSeq(pm)
	m0 := TotalMass(s.U)
	s.Run(core.Nop, 20)
	if m1 := TotalMass(s.U); m1 <= m0 {
		t.Errorf("inflow should add mass: %g -> %g", m0, m1)
	}
}

func TestPositivity(t *testing.T) {
	pm := DefaultParams(64, 32)
	s := NewSeq(pm)
	s.Run(core.Nop, 100)
	for k, c := range s.U.Data {
		if c[0] <= 0 {
			t.Fatalf("negative density at %d: %g", k, c[0])
		}
		if p := Pressure(pm.Gamma, c); p <= 0 {
			t.Fatalf("negative pressure at %d: %g", k, p)
		}
	}
}

func TestSPMDMatchesSeqBitIdentical(t *testing.T) {
	pm := DefaultParams(32, 16)
	const steps = 15
	seq := NewSeq(pm)
	seq.Run(core.Nop, steps)
	want := seq.U

	for _, tc := range []struct {
		n int
		l meshspectral.Layout
	}{
		{1, meshspectral.Rows(1)},
		{3, meshspectral.Rows(3)},
		{4, meshspectral.Blocks(2, 2)},
		{6, meshspectral.Blocks(3, 2)},
	} {
		var got *array.Dense2D[Cell]
		var dtSum float64
		_, err := spmd.MustWorld(tc.n, machine.IntelDelta()).Run(func(p *spmd.Proc) {
			s := NewSPMD(p, pm, tc.l)
			dt := s.Run(steps)
			full := meshspectral.GatherGrid(s.U, 0)
			if p.Rank() == 0 {
				got = full
				dtSum = dt
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = dtSum
		for k := range want.Data {
			if got.Data[k] != want.Data[k] {
				t.Fatalf("n=%d %v: field differs at %d (not bit-identical)", tc.n, tc.l, k)
			}
		}
	}
}

func TestVorticityOfShear(t *testing.T) {
	// A linear shear u = (y, 0) has vorticity -du/dy = -1... using our
	// sign convention ω = ∂v/∂x − ∂u/∂y = -1.
	const n = 16
	u := array.New2D[Cell](n, n)
	u.Fill(func(i, j int) Cell {
		y := (float64(j) + 0.5) / n
		return prim2cons(1.4, 1, y, 0, 1)
	})
	w := Vorticity(u)
	// Interior points away from the periodic wrap should be ~-1.
	for i := 2; i < n-2; i++ {
		for j := 2; j < n-2; j++ {
			if math.Abs(w.At(i, j)+1) > 1e-9 {
				t.Fatalf("vorticity at (%d,%d) = %g, want -1", i, j, w.At(i, j))
			}
		}
	}
}

func TestDensityExtract(t *testing.T) {
	u := array.New2D[Cell](2, 2)
	u.Set(0, 1, Cell{7, 0, 0, 1})
	d := Density(u)
	if d.At(0, 1) != 7 || d.At(0, 0) != 0 {
		t.Error("Density extraction wrong")
	}
}

func TestInitCellRegions(t *testing.T) {
	pm := DefaultParams(10, 10)
	// Behind the shock: moving, compressed.
	c := pm.InitCell(0.05, 0.5)
	if c[1] <= 0 {
		t.Error("post-shock region should move in +x")
	}
	// Between shock and interface: quiescent light gas.
	c = pm.InitCell(0.3, 0.5)
	if c[0] != 1 || c[1] != 0 {
		t.Errorf("pre-shock light gas wrong: %v", c)
	}
	// Beyond the interface: heavy gas at rest.
	c = pm.InitCell(0.9, 0.5)
	if c[0] != pm.RhoHeavy || c[1] != 0 {
		t.Errorf("heavy gas wrong: %v", c)
	}
}
