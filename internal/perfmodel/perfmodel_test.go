package perfmodel

import (
	"math"
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/onedeep"
	"repro/internal/poisson"
	"repro/internal/sortapp"
	"repro/internal/spmd"
)

// within asserts prediction and measurement agree within tol (relative).
func within(t *testing.T, label string, predicted, measured, tol float64) {
	t.Helper()
	if measured <= 0 {
		t.Fatalf("%s: measurement %g not positive", label, measured)
	}
	rel := math.Abs(predicted-measured) / measured
	if rel > tol {
		t.Errorf("%s: predicted %.4g, measured %.4g (%.0f%% off, tol %.0f%%)",
			label, predicted, measured, 100*rel, 100*tol)
	}
}

func TestReduceRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 16: 4, 3: 3, 5: 4, 12: 5, 18: 6}
	for n, want := range cases {
		if got := ReduceRounds(n); got != want {
			t.Errorf("ReduceRounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAllReducePrediction(t *testing.T) {
	m := machine.IBMSP()
	for _, n := range []int{2, 4, 8, 16, 13} {
		res, err := core.Simulate(n, m, func(p *spmd.Proc) {
			collective.AllReduce(p, float64(p.Rank()), math.Max)
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "allreduce", AllReduceTime(m, n, 8), res.Makespan, 0.35)
	}
}

func TestBroadcastPrediction(t *testing.T) {
	m := machine.IBMSP()
	payload := make([]float64, 128)
	for _, n := range []int{2, 4, 8, 16, 32} {
		res, err := core.Simulate(n, m, func(p *spmd.Proc) {
			collective.Broadcast(p, 0, payload)
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "broadcast", BroadcastTime(m, n, 1024), res.Makespan, 0.35)
	}
}

func TestGatherPrediction(t *testing.T) {
	m := machine.IBMSP()
	payload := make([]float64, 64)
	for _, n := range []int{4, 16, 32} {
		res, err := core.Simulate(n, m, func(p *spmd.Proc) {
			collective.Gather(p, 0, payload)
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "gather", GatherTime(m, n, 512), res.Makespan, 0.5)
	}
}

func TestAllToAllPrediction(t *testing.T) {
	m := machine.IBMSP()
	for _, n := range []int{4, 8, 16} {
		res, err := core.Simulate(n, m, func(p *spmd.Proc) {
			parts := make([][]float64, n)
			for i := range parts {
				parts[i] = make([]float64, 32)
			}
			collective.AllToAll(p, parts)
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "alltoall", AllToAllTime(m, n, 256), res.Makespan, 0.35)
	}
}

func TestPoissonPrediction(t *testing.T) {
	m := machine.IBMSP()
	const nx, steps = 96, 30
	for _, tc := range []struct {
		n int
		l meshspectral.Layout
	}{
		{4, meshspectral.Blocks(2, 2)},
		{4, meshspectral.Rows(4)},
		{16, meshspectral.Blocks(4, 4)},
		{16, meshspectral.Rows(16)},
	} {
		pr := poisson.Manufactured(nx, nx, 0, steps)
		res, err := core.Simulate(tc.n, m, func(p *spmd.Proc) {
			poisson.SolveSPMD(p, pr, tc.l)
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "poisson "+tc.l.String(), Poisson(m, nx, nx, steps, tc.l), res.Makespan, 0.25)
	}
}

func TestPoissonModelGuidesLayoutChoice(t *testing.T) {
	// The model's purpose (§3.6.3): choose a distribution without
	// running. Check that the model ranks rows-vs-blocks the same way
	// the simulator does on a latency-dominated case.
	m := machine.IBMSP()
	const nx, steps, procs = 64, 20, 16
	layouts := []meshspectral.Layout{meshspectral.Rows(procs), meshspectral.Blocks(4, 4)}
	var measured, predicted [2]float64
	for i, l := range layouts {
		pr := poisson.Manufactured(nx, nx, 0, steps)
		res, err := core.Simulate(procs, m, func(p *spmd.Proc) {
			poisson.SolveSPMD(p, pr, l)
		})
		if err != nil {
			t.Fatal(err)
		}
		measured[i] = res.Makespan
		predicted[i] = Poisson(m, nx, nx, steps, l)
	}
	if (measured[0] < measured[1]) != (predicted[0] < predicted[1]) {
		t.Errorf("model ranks layouts differently than simulation: measured %v predicted %v",
			measured, predicted)
	}
}

func TestOneDeepSortPrediction(t *testing.T) {
	m := machine.IntelDelta()
	const n = 1 << 17
	data := sortapp.RandomInts(n, 21)
	for _, procs := range []int{4, 16, 32} {
		spec := sortapp.OneDeepMergesort(onedeep.Centralized)
		blocks := sortapp.BlockDistribute(data, procs)
		res, err := core.Simulate(procs, m, func(p *spmd.Proc) {
			onedeep.RunSPMD(p, spec, blocks[p.Rank()])
		})
		if err != nil {
			t.Fatal(err)
		}
		pred := OneDeepSort(m, OneDeepSortParams{N: n, Procs: procs, SampleCount: 32})
		within(t, "one-deep sort", pred, res.Makespan, 0.35)
	}
}

func TestExchangeScalesWithPerimeter(t *testing.T) {
	m := machine.IBMSP()
	small := &MeshParams{NX: 64, NY: 64, Layout: meshspectral.Blocks(4, 4), Halo: 1, ElemBytes: 8}
	large := &MeshParams{NX: 256, NY: 256, Layout: meshspectral.Blocks(4, 4), Halo: 1, ElemBytes: 8}
	ts, tl := ExchangeTime(m, small), ExchangeTime(m, large)
	if tl <= ts {
		t.Error("exchange time should grow with section perimeter")
	}
	if tl > 4*ts+1e-9 {
		t.Errorf("exchange should grow ~linearly with edge length: %g vs %g", tl, ts)
	}
	if ExchangeTime(m, &MeshParams{NX: 64, NY: 64, Layout: meshspectral.Rows(1), Halo: 1, ElemBytes: 8}) != 0 {
		t.Error("single process should need no exchange")
	}
	none := &MeshParams{NX: 64, NY: 64, Layout: meshspectral.Blocks(4, 4), Halo: 0, ElemBytes: 8}
	if ExchangeTime(m, none) != 0 {
		t.Error("halo 0 should need no exchange")
	}
}
