// Package perfmodel provides closed-form performance models for
// archetype applications — the paper's §1.1 claim that "archetypes may
// also be helpful in developing performance models for classes of
// programs with common structure" (the companion technical report it
// cites is Rifkin & Massingill's performance analysis for mesh and
// mesh-spectral applications).
//
// Because an archetype fixes the communication structure, a program's
// time decomposes into a handful of closed-form terms: per-point compute
// over the local section, boundary-exchange cost from the section's
// perimeter, collective costs from the process count. The models here
// predict the virtual makespans of the simulator within a documented
// tolerance (asserted by tests), so they can guide data-distribution
// choices (§3.6.3) without running anything.
package perfmodel

import (
	"math"

	"repro/internal/machine"
	"repro/internal/meshspectral"
)

// msgTime is the end-to-end time of one b-byte message.
func msgTime(m *machine.Model, b int) float64 { return m.MsgTime(b) }

// ReduceRounds returns the number of message rounds a recursive-doubling
// all-reduce takes for n processes (including the fold/unfold steps for
// non-powers of two).
func ReduceRounds(n int) int {
	if n <= 1 {
		return 0
	}
	pof2, logp := 1, 0
	for pof2*2 <= n {
		pof2 *= 2
		logp++
	}
	if pof2 == n {
		return logp
	}
	return logp + 2
}

// AllReduceTime predicts the recursive-doubling all-reduce of a payload
// of b bytes across n processes.
func AllReduceTime(m *machine.Model, n, b int) float64 {
	return float64(ReduceRounds(n)) * msgTime(m, b+8)
}

// BroadcastTime predicts a binomial broadcast of b bytes to n processes.
func BroadcastTime(m *machine.Model, n, b int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n))) * msgTime(m, b)
}

// GatherTime predicts a linear gather of b-byte items at a root from n
// processes. Senders transmit concurrently (links are independent in the
// machine model), so the root pays one transit plus n-1 receive
// overheads.
func GatherTime(m *machine.Model, n, b int) float64 {
	if n <= 1 {
		return 0
	}
	return m.SendOverhead + m.Latency + float64(b)/m.Bandwidth + float64(n-1)*m.RecvOverhead
}

// AllToAllTime predicts a pairwise all-to-all of b bytes per pair across
// n processes: n-1 serialized sends, one transit, n-1 retired receives.
func AllToAllTime(m *machine.Model, n, b int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1)*(m.SendOverhead+m.RecvOverhead) + m.Latency + float64(b)/m.Bandwidth
}

// MeshParams describes one step of a mesh-archetype computation for
// prediction.
type MeshParams struct {
	NX, NY int
	Layout meshspectral.Layout
	// Halo is the ghost width; ElemBytes the element size.
	Halo, ElemBytes int
	// FlopsPerPoint covers the grid operation(s) per step; ScanFlops any
	// additional per-point pass (e.g. the Poisson diffmax scan).
	FlopsPerPoint, ScanFlops float64
	// CopyWordsPerPoint covers per-point data movement (e.g. the
	// new-to-old copy), in 8-byte words.
	CopyWordsPerPoint float64
	// Reduce adds one scalar all-reduce per step.
	Reduce bool
}

// localSection returns the largest local block dimensions under the
// layout.
func (pr *MeshParams) localSection() (int, int) {
	lx := (pr.NX + pr.Layout.PX - 1) / pr.Layout.PX
	ly := (pr.NY + pr.Layout.PY - 1) / pr.Layout.PY
	return lx, ly
}

// ExchangeTime predicts the two-phase boundary exchange for the given
// parameters.
func ExchangeTime(m *machine.Model, pr *MeshParams) float64 {
	if pr.Halo == 0 {
		return 0
	}
	lx, ly := pr.localSection()
	t := 0.0
	words := float64(pr.ElemBytes) / 8
	// Per phase: both sends are issued (2 overheads), the two transits
	// overlap (one latency + serialization on the critical path), both
	// receives are retired, and each face is packed and unpacked.
	phase := func(faceElems int) float64 {
		b := float64(faceElems * pr.ElemBytes)
		return 2*(m.SendOverhead+m.RecvOverhead) + m.Latency + b/m.Bandwidth +
			4*float64(faceElems)*words*m.MemTime
	}
	if pr.Layout.PX > 1 {
		t += phase(pr.Halo * ly)
	}
	if pr.Layout.PY > 1 {
		t += phase(pr.Halo * (lx + 2*pr.Halo))
	}
	return t
}

// MeshStep predicts the virtual time of one mesh-archetype step.
func MeshStep(m *machine.Model, pr *MeshParams) float64 {
	lx, ly := pr.localSection()
	pts := float64(lx * ly)
	t := pts * (pr.FlopsPerPoint + pr.ScanFlops) * m.FlopTime
	t += pts * pr.CopyWordsPerPoint * m.MemTime
	t += ExchangeTime(m, pr)
	if pr.Reduce {
		t += AllReduceTime(m, pr.Layout.PX*pr.Layout.PY, 8)
	}
	return t
}

// PoissonStep predicts one Jacobi iteration of the §3.6 solver.
func PoissonStep(m *machine.Model, nx, ny int, l meshspectral.Layout) float64 {
	pr := &MeshParams{
		NX: nx, NY: ny, Layout: l,
		Halo: 1, ElemBytes: 8,
		FlopsPerPoint:     7,
		ScanFlops:         2,
		CopyWordsPerPoint: 1,
		Reduce:            true,
	}
	return MeshStep(m, pr)
}

// Poisson predicts the full fixed-step Poisson solve.
func Poisson(m *machine.Model, nx, ny, steps int, l meshspectral.Layout) float64 {
	return float64(steps) * PoissonStep(m, nx, ny, l)
}

// OneDeepSortParams describes the one-deep mergesort for prediction.
type OneDeepSortParams struct {
	N, Procs    int
	SampleCount int // samples per process (sortapp uses 32)
}

// OneDeepSort predicts the one-deep mergesort makespan: local sort,
// splitter planning (gather + plan + broadcast), partitioning, the
// all-to-all redistribution, and the k-way merge.
func OneDeepSort(m *machine.Model, pr OneDeepSortParams) float64 {
	n, p := float64(pr.N), float64(pr.Procs)
	local := n / p
	t := local * math.Log2(local+2) * m.CmpTime // local sort comparisons
	t += local / 2 * math.Log2(local+2) / 2 * m.MemTime
	if pr.Procs == 1 {
		// Degenerate exchange still runs: one self-copy plus merge.
		return t + local*m.CmpTime
	}
	samples := pr.SampleCount * 4 // bytes per sample block (int32)
	t += GatherTime(m, pr.Procs, samples)
	all := float64(pr.SampleCount * pr.Procs)
	t += all * math.Log2(all+2) * m.CmpTime // plan: sort the samples
	t += BroadcastTime(m, pr.Procs, 4*(pr.Procs-1))
	t += (p - 1) * math.Log2(local+2) * m.CmpTime  // partition (binary searches)
	t += AllToAllTime(m, pr.Procs, int(local/p)*4) // redistribution
	t += local * math.Log2(p) * m.CmpTime          // k-way merge comparisons
	t += local / 2 * m.MemTime                     // merge movement
	return t
}
