// Package machine defines the cost model for the simulated
// distributed-memory machines on which archetype programs run.
//
// The paper's evaluation was performed on the Intel Touchstone Delta, the
// Intel Paragon, the IBM SP, and networks of Sun and Pentium workstations.
// None of that hardware is available, so the reproduction substitutes a
// deterministic LogGP-style cost model: each simulated process carries a
// virtual clock; computation advances it by FlopTime per floating-point
// operation (or CmpTime per comparison), and a message of b bytes costs the
// sender SendOverhead, travels for Latency + b/Bandwidth, and costs the
// receiver RecvOverhead. Speedup curves produced under this model depend
// only on compute/communication ratios and serial fractions, which is what
// the paper's figures measure.
package machine

import "fmt"

// Model is a LogGP-style machine description. All times are in seconds,
// sizes in bytes. The zero Model is not useful; use one of the profile
// constructors or fill in every field.
type Model struct {
	Name string

	// FlopTime is the virtual cost of one floating-point operation.
	FlopTime float64
	// CmpTime is the virtual cost of one comparison/exchange step in
	// integer-sorting workloads (usually close to FlopTime but kept
	// separate so sorting and PDE workloads can be calibrated apart).
	CmpTime float64
	// MemTime is the virtual cost of touching one word of memory in
	// copy/pack/unpack loops (data movement without arithmetic).
	MemTime float64

	// Latency is the end-to-end wire latency of a message.
	Latency float64
	// Bandwidth is the per-link bandwidth in bytes/second.
	Bandwidth float64
	// SendOverhead and RecvOverhead are the processor occupancies for
	// issuing and retiring one message.
	SendOverhead float64
	RecvOverhead float64

	// MemPerProc, when positive, is the number of bytes a single process
	// can hold resident before it starts paging. When a process declares
	// more resident data than this (see spmd.Proc.SetResident), its
	// compute charges are multiplied by PagingFactor. This reproduces
	// the super-linear small-P speedups the paper attributes to paging
	// (Figure 18 caption).
	MemPerProc   float64
	PagingFactor float64
}

// Validate reports an error if the model is unusable.
func (m *Model) Validate() error {
	switch {
	case m.FlopTime <= 0:
		return fmt.Errorf("machine %q: FlopTime must be positive, got %g", m.Name, m.FlopTime)
	case m.CmpTime <= 0:
		return fmt.Errorf("machine %q: CmpTime must be positive, got %g", m.Name, m.CmpTime)
	case m.MemTime <= 0:
		return fmt.Errorf("machine %q: MemTime must be positive, got %g", m.Name, m.MemTime)
	case m.Latency < 0:
		return fmt.Errorf("machine %q: Latency must be non-negative, got %g", m.Name, m.Latency)
	case m.Bandwidth <= 0:
		return fmt.Errorf("machine %q: Bandwidth must be positive, got %g", m.Name, m.Bandwidth)
	case m.SendOverhead < 0 || m.RecvOverhead < 0:
		return fmt.Errorf("machine %q: overheads must be non-negative", m.Name)
	case m.MemPerProc > 0 && m.PagingFactor < 1:
		return fmt.Errorf("machine %q: PagingFactor must be >= 1 when MemPerProc is set", m.Name)
	}
	return nil
}

// MsgTime returns the full latency seen by a receiver that was already
// waiting when a message of b bytes was sent: send overhead, wire latency,
// serialization, and receive overhead.
func (m *Model) MsgTime(b int) float64 {
	return m.SendOverhead + m.Latency + float64(b)/m.Bandwidth + m.RecvOverhead
}

// IntelDelta returns a profile resembling the Intel Touchstone Delta
// (i860 nodes, 2D mesh interconnect) used for the paper's Figures 6 and 16:
// respectable per-node compute for its day, high message latency, modest
// bandwidth.
func IntelDelta() *Model {
	return &Model{
		Name:         "intel-delta",
		FlopTime:     150e-9, // ~7 Mflop/s sustained (i860 was hard to feed)
		CmpTime:      250e-9, // comparison-exchange step incl. data movement
		MemTime:      60e-9,
		Latency:      75e-6,
		Bandwidth:    10e6,
		SendOverhead: 25e-6,
		RecvOverhead: 25e-6,
	}
}

// IBMSP returns a profile resembling the IBM SP (POWER2 nodes, multistage
// switch) used for the paper's Figures 12, 15, 17, and 18: much faster
// nodes than the Delta, moderately better network, hence a lower
// computation-to-communication ratio for the same problem.
func IBMSP() *Model {
	return &Model{
		Name:         "ibm-sp",
		FlopTime:     25e-9, // ~40 Mflop/s sustained
		CmpTime:      20e-9,
		MemTime:      10e-9,
		Latency:      40e-6,
		Bandwidth:    35e6,
		SendOverhead: 15e-6,
		RecvOverhead: 15e-6,
	}
}

// IBMSPPaged returns the IBM SP profile with the memory-pressure model
// enabled: memPerProc bytes resident per process before paging sets in,
// with the given slowdown factor. The paper's Figure 18 explains its
// better-than-ideal small-P speedups by paging at the 5-processor base;
// this profile reproduces that effect.
func IBMSPPaged(memPerProc float64, factor float64) *Model {
	m := IBMSP()
	m.Name = "ibm-sp-paged"
	m.MemPerProc = memPerProc
	m.PagingFactor = factor
	return m
}

// Workstations returns a profile resembling a network of Sun/Pentium
// workstations on shared Ethernet: fast-ish nodes, very slow network.
func Workstations() *Model {
	return &Model{
		Name:         "workstations",
		FlopTime:     30e-9,
		CmpTime:      25e-9,
		MemTime:      12e-9,
		Latency:      700e-6,
		Bandwidth:    1e6,
		SendOverhead: 150e-6,
		RecvOverhead: 150e-6,
	}
}

// SMP returns a profile resembling a symmetric multiprocessor where
// "messages" are shared-memory copies: negligible latency, high bandwidth.
// The paper argues archetypes apply to shared-memory machines as well;
// this profile lets the same programs be costed under that regime.
func SMP() *Model {
	return &Model{
		Name:         "smp",
		FlopTime:     25e-9,
		CmpTime:      20e-9,
		MemTime:      10e-9,
		Latency:      2e-6,
		Bandwidth:    400e6,
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
	}
}

// Profiles returns all built-in machine profiles keyed by name.
func Profiles() map[string]*Model {
	ms := []*Model{IntelDelta(), IBMSP(), Workstations(), SMP()}
	out := make(map[string]*Model, len(ms))
	for _, m := range ms {
		out[m.Name] = m
	}
	return out
}
