package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValidate(t *testing.T) {
	for name, m := range Profiles() {
		if err := m.Validate(); err != nil {
			t.Errorf("profile %s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("profile keyed %q has Name %q", name, m.Name)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero flop", func(m *Model) { m.FlopTime = 0 }},
		{"negative cmp", func(m *Model) { m.CmpTime = -1 }},
		{"zero mem", func(m *Model) { m.MemTime = 0 }},
		{"negative latency", func(m *Model) { m.Latency = -1e-6 }},
		{"zero bandwidth", func(m *Model) { m.Bandwidth = 0 }},
		{"negative send overhead", func(m *Model) { m.SendOverhead = -1 }},
		{"negative recv overhead", func(m *Model) { m.RecvOverhead = -1 }},
		{"paging factor below one", func(m *Model) { m.MemPerProc = 1 << 20; m.PagingFactor = 0.5 }},
	}
	for _, tc := range cases {
		m := IBMSP()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error, got nil", tc.name)
		}
	}
}

func TestMsgTimeComponents(t *testing.T) {
	m := &Model{
		Name: "t", FlopTime: 1e-9, CmpTime: 1e-9, MemTime: 1e-9,
		Latency: 10e-6, Bandwidth: 1e6, SendOverhead: 2e-6, RecvOverhead: 3e-6,
	}
	got := m.MsgTime(1000) // 1000 bytes at 1 MB/s = 1 ms
	want := 2e-6 + 10e-6 + 1e-3 + 3e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MsgTime(1000) = %g, want %g", got, want)
	}
	if m.MsgTime(0) != 2e-6+10e-6+3e-6 {
		t.Errorf("MsgTime(0) should be pure overhead+latency")
	}
}

func TestMsgTimeMonotoneInSize(t *testing.T) {
	m := IntelDelta()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.MsgTime(x) <= m.MsgTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaSlowerThanSP(t *testing.T) {
	delta, sp := IntelDelta(), IBMSP()
	if delta.FlopTime <= sp.FlopTime {
		t.Error("Delta nodes should be slower than SP nodes")
	}
	if delta.MsgTime(8192) <= sp.MsgTime(8192) {
		t.Error("Delta messages should be more expensive than SP messages")
	}
}

func TestPagedProfile(t *testing.T) {
	m := IBMSPPaged(64<<20, 8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.MemPerProc != 64<<20 || m.PagingFactor != 8 {
		t.Errorf("paged profile fields not set: %+v", m)
	}
}
