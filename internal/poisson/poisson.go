// Package poisson implements the Poisson-solver example of §3.6: a
// numerical solution of ∇²u = f on the unit square with Dirichlet
// boundary condition u = g, by discretization and Jacobi iteration.
//
// The computation is the paper's exactly: two copies of u (uk for the
// current iteration, ukp for the next), a grid f of right-hand-side
// values, a grid operation computing ukp from uk's neighbours (preceded
// by a boundary exchange), a max-reduction computing the global variable
// diffmax used for loop control (kept copy-consistent via the reduction's
// postcondition), and a copy of new values onto old (Figures 13 and 14).
//
// Three versions are provided per the paper's method: SolveSeq (the
// original sequential program), SolveV1 (Figure 13 — the forall form),
// and SolveSPMD (Figure 14 — the message-passing form over a generic
// block distribution). All three produce bit-identical fields and
// iteration counts: the stencil arithmetic is per-point identical and the
// max-reduction is exact regardless of association order.
package poisson

import (
	"math"

	"repro/internal/array"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

// Problem describes a Poisson instance on the unit square, discretized on
// an NX×NY grid (including boundary points).
type Problem struct {
	NX, NY int
	// F is the right-hand side f(x, y) of ∇²u = f.
	F func(x, y float64) float64
	// G is the Dirichlet boundary value g(x, y).
	G func(x, y float64) float64
	// Tolerance stops iteration when max |u_{k+1}-u_k| falls below it.
	Tolerance float64
	// MaxIter bounds the iteration count (0 means no bound).
	MaxIter int
}

// Hx and Hy return the grid spacings.
func (pr *Problem) Hx() float64 { return 1 / float64(pr.NX-1) }

// Hy returns the y spacing.
func (pr *Problem) Hy() float64 { return 1 / float64(pr.NY-1) }

// XY returns the coordinates of grid point (i, j).
func (pr *Problem) XY(i, j int) (float64, float64) {
	return float64(i) * pr.Hx(), float64(j) * pr.Hy()
}

// flopsPerPoint is the per-point cost of one Jacobi update (the 5-point
// stencil plus the h²f term).
const flopsPerPoint = 7

// update computes the Jacobi step at one point. h2f is h²·f at the point.
func update(up, down, left, right, h2f float64) float64 {
	return (up + down + left + right - h2f) * 0.25
}

// Result reports a solve.
type Result struct {
	Iterations int
	DiffMax    float64
}

// SolveSeq runs the sequential Jacobi iteration, charging m, and returns
// the solution grid and convergence information — the "straightforward"
// sequential program of §3.6.1.
func SolveSeq(m core.Meter, pr *Problem) (*array.Dense2D[float64], Result) {
	h2 := pr.Hx() * pr.Hy()
	uk := array.New2D[float64](pr.NX, pr.NY)
	f := array.New2D[float64](pr.NX, pr.NY)
	initDense(pr, uk, f)
	ukp := uk.Clone()

	res := Result{DiffMax: math.Inf(1)}
	for res.DiffMax > pr.Tolerance && (pr.MaxIter == 0 || res.Iterations < pr.MaxIter) {
		diff := 0.0
		for i := 1; i < pr.NX-1; i++ {
			for j := 1; j < pr.NY-1; j++ {
				v := update(uk.At(i-1, j), uk.At(i+1, j), uk.At(i, j-1), uk.At(i, j+1), h2*f.At(i, j))
				ukp.Set(i, j, v)
				diff = math.Max(diff, math.Abs(v-uk.At(i, j)))
			}
		}
		m.Flops(float64((pr.NX - 2) * (pr.NY - 2) * (flopsPerPoint + 2)))
		uk, ukp = ukp, uk
		res.DiffMax = diff
		res.Iterations++
	}
	return uk, res
}

// SolveV1 is the initial archetype-based version (Figure 13): the grid
// operation and the difference computation are forall loops over rows;
// the reduction is an ordinary max fold. mode selects sequential or
// concurrent execution with identical results.
func SolveV1(mode core.Mode, pr *Problem) (*array.Dense2D[float64], Result) {
	h2 := pr.Hx() * pr.Hy()
	uk := array.New2D[float64](pr.NX, pr.NY)
	f := array.New2D[float64](pr.NX, pr.NY)
	initDense(pr, uk, f)
	ukp := uk.Clone()
	rowDiff := make([]float64, pr.NX)

	res := Result{DiffMax: math.Inf(1)}
	for res.DiffMax > pr.Tolerance && (pr.MaxIter == 0 || res.Iterations < pr.MaxIter) {
		core.ParFor(mode, pr.NX-2, func(r int) {
			i := r + 1
			d := 0.0
			for j := 1; j < pr.NY-1; j++ {
				v := update(uk.At(i-1, j), uk.At(i+1, j), uk.At(i, j-1), uk.At(i, j+1), h2*f.At(i, j))
				ukp.Set(i, j, v)
				d = math.Max(d, math.Abs(v-uk.At(i, j)))
			}
			rowDiff[i] = d
		})
		diff := 0.0
		for i := 1; i < pr.NX-1; i++ {
			diff = math.Max(diff, rowDiff[i])
		}
		uk, ukp = ukp, uk
		res.DiffMax = diff
		res.Iterations++
	}
	return uk, res
}

// SolveSPMD is the message-passing version (Figure 14) as process p's
// body, over the given block layout. Each iteration performs a boundary
// exchange, the grid operation on the intersection of the local section
// with the interior, a recursive-doubling max-reduction establishing the
// copy-consistent global diffmax, and the new-to-old copy. It returns the
// distributed solution and convergence information (identical on every
// process).
func SolveSPMD(p spmd.Comm, pr *Problem, l meshspectral.Layout) (*meshspectral.Grid2D[float64], Result) {
	h2 := pr.Hx() * pr.Hy()
	uk := meshspectral.New2D[float64](p, pr.NX, pr.NY, l, 1)
	ukp := meshspectral.New2D[float64](p, pr.NX, pr.NY, l, 1)
	f := meshspectral.New2D[float64](p, pr.NX, pr.NY, l, 1)
	f.Fill(func(gi, gj int) float64 {
		x, y := pr.XY(gi, gj)
		return pr.F(x, y)
	})
	init := func(gi, gj int) float64 {
		if gi == 0 || gi == pr.NX-1 || gj == 0 || gj == pr.NY-1 {
			x, y := pr.XY(gi, gj)
			return pr.G(x, y)
		}
		return 0
	}
	uk.Fill(init)
	ukp.Fill(init)

	ix0, ix1 := uk.InteriorX()
	iy0, iy1 := uk.InteriorY()
	diffmax := meshspectral.NewGlobal(p, math.Inf(1))

	res := Result{DiffMax: math.Inf(1)}
	for res.DiffMax > pr.Tolerance && (pr.MaxIter == 0 || res.Iterations < pr.MaxIter) {
		uk.ExchangeBoundary()
		ukp.AssignRegion(ix0, ix1, iy0, iy1, flopsPerPoint, func(gi, gj int) float64 {
			return update(uk.At(gi-1, gj), uk.At(gi+1, gj), uk.At(gi, gj-1), uk.At(gi, gj+1), h2*f.At(gi, gj))
		})
		local := 0.0
		for gi := ix0; gi < ix1; gi++ {
			for gj := iy0; gj < iy1; gj++ {
				local = math.Max(local, math.Abs(ukp.At(gi, gj)-uk.At(gi, gj)))
			}
		}
		if ix1 > ix0 && iy1 > iy0 {
			p.Flops(float64(2 * (ix1 - ix0) * (iy1 - iy0)))
		}
		res.DiffMax = diffmax.SetReduced(local, math.Max)
		uk.CopyFrom(ukp)
		res.Iterations++
	}
	return uk, res
}

// initDense fills a dense u with boundary values of G (interior zero) and
// f with F values.
func initDense(pr *Problem, u, f *array.Dense2D[float64]) {
	u.Fill(func(i, j int) float64 {
		if i == 0 || i == pr.NX-1 || j == 0 || j == pr.NY-1 {
			x, y := pr.XY(i, j)
			return pr.G(x, y)
		}
		return 0
	})
	f.Fill(func(i, j int) float64 {
		x, y := pr.XY(i, j)
		return pr.F(x, y)
	})
}

// Manufactured returns a problem with the exact solution
// u*(x,y) = sin(πx)·sin(πy), i.e. f = -2π²·u* and g = 0, so the computed
// solution can be validated against the analytic one.
func Manufactured(nx, ny int, tol float64, maxIter int) *Problem {
	return &Problem{
		NX: nx, NY: ny,
		F: func(x, y float64) float64 {
			return -2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		},
		G:         func(x, y float64) float64 { return 0 },
		Tolerance: tol,
		MaxIter:   maxIter,
	}
}

// Exact returns the manufactured problem's analytic solution at (x, y).
func Exact(x, y float64) float64 {
	return math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
}

// MaxError gathers the distributed solution at root and returns the
// maximum absolute error against the manufactured analytic solution
// (meaningful at root only; uses an all-reduce so every process gets it).
func MaxError(g *meshspectral.Grid2D[float64], pr *Problem) float64 {
	x0, x1 := g.OwnedX()
	y0, y1 := g.OwnedY()
	local := 0.0
	for gi := x0; gi < x1; gi++ {
		for gj := y0; gj < y1; gj++ {
			x, y := pr.XY(gi, gj)
			local = math.Max(local, math.Abs(g.At(gi, gj)-Exact(x, y)))
		}
	}
	return collective.AllReduce(g.Proc(), local, math.Max)
}
