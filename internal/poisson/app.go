package poisson

import (
	"context"
	"fmt"

	"repro/arch"
	"repro/internal/meshspectral"
)

func init() {
	arch.Register(arch.App{
		Name:        "poisson",
		Desc:        "Jacobi Poisson solver (§3.6)",
		DefaultSize: 65,
		Run:         runApp,
	})
}

// appOut is one solve's summary, produced at rank 0.
type appOut struct {
	Iters  int
	ErrMax float64
}

// Program solves a Poisson problem on the mesh archetype with a
// near-square block decomposition and reports the iteration count and
// maximum error against the analytic solution.
func Program() arch.Program[*Problem, appOut] {
	return arch.SPMDRoot(func(p *arch.Proc, pr *Problem) appOut {
		g, r := SolveSPMD(p, pr, meshspectral.NearSquare(p.N()))
		return appOut{Iters: r.Iterations, ErrMax: MaxError(g, pr)}
	})
}

func runApp(ctx context.Context, s arch.Settings) (string, arch.Report, error) {
	n := s.Size
	pr := Manufactured(n, n, 1e-7, 20000)
	out, rep, err := arch.RunWith(ctx, Program(), s, pr)
	if err != nil {
		return "", rep, err
	}
	return fmt.Sprintf("Poisson %dx%d, %d Jacobi iterations, max error %.2e", n, n, out.Iters, out.ErrMax), rep, nil
}
