package poisson

import (
	"math"
	"testing"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/meshspectral"
	"repro/internal/spmd"
)

func TestSeqConvergesToAnalytic(t *testing.T) {
	pr := Manufactured(33, 33, 1e-7, 0)
	u, res := SolveSeq(core.Nop, pr)
	if res.DiffMax > pr.Tolerance {
		t.Fatalf("did not converge: diffmax %g after %d iterations", res.DiffMax, res.Iterations)
	}
	maxErr := 0.0
	for i := 0; i < pr.NX; i++ {
		for j := 0; j < pr.NY; j++ {
			x, y := pr.XY(i, j)
			maxErr = math.Max(maxErr, math.Abs(u.At(i, j)-Exact(x, y)))
		}
	}
	// Discretization error is O(h²) ≈ 1e-3 at h = 1/32.
	if maxErr > 5e-3 {
		t.Errorf("max error vs analytic = %g, want < 5e-3", maxErr)
	}
	if maxErr < 1e-8 {
		t.Errorf("suspiciously exact (%g): is the solver actually iterating?", maxErr)
	}
}

func TestMaxIterRespected(t *testing.T) {
	pr := Manufactured(17, 17, 0, 5) // tolerance 0: never converges
	_, res := SolveSeq(core.Nop, pr)
	if res.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", res.Iterations)
	}
}

func TestDiffMaxDecreases(t *testing.T) {
	pr := Manufactured(17, 17, 0, 1)
	_, r1 := SolveSeq(core.Nop, pr)
	pr2 := Manufactured(17, 17, 0, 50)
	_, r50 := SolveSeq(core.Nop, pr2)
	if r50.DiffMax >= r1.DiffMax {
		t.Errorf("Jacobi not contracting: diffmax after 50 iters %g >= after 1 iter %g", r50.DiffMax, r1.DiffMax)
	}
}

func TestV1ModesIdentical(t *testing.T) {
	pr := Manufactured(21, 17, 1e-4, 200)
	a, ra := SolveV1(core.Sequential, pr)
	b, rb := SolveV1(core.Concurrent, pr)
	if ra != rb {
		t.Fatalf("results differ: %+v vs %+v", ra, rb)
	}
	for k := range a.Data {
		if a.Data[k] != b.Data[k] {
			t.Fatal("V1 fields differ between modes")
		}
	}
}

func TestV1MatchesSeq(t *testing.T) {
	pr := Manufactured(21, 17, 1e-4, 200)
	a, ra := SolveSeq(core.Nop, pr)
	b, rb := SolveV1(core.Sequential, pr)
	if ra != rb {
		t.Fatalf("results differ: %+v vs %+v", ra, rb)
	}
	for k := range a.Data {
		if a.Data[k] != b.Data[k] {
			t.Fatal("V1 field differs from sequential")
		}
	}
}

func gatherSPMD(t *testing.T, pr *Problem, n int, l meshspectral.Layout) (*array.Dense2D[float64], Result) {
	t.Helper()
	var full *array.Dense2D[float64]
	var res Result
	_, err := spmd.MustWorld(n, machine.IBMSP()).Run(func(p *spmd.Proc) {
		g, r := SolveSPMD(p, pr, l)
		out := meshspectral.GatherGrid(g, 0)
		if p.Rank() == 0 {
			full = out
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return full, res
}

func TestSPMDMatchesSeqBitIdentical(t *testing.T) {
	pr := Manufactured(25, 25, 1e-4, 300)
	want, wres := SolveSeq(core.Nop, pr)
	cases := []struct {
		n int
		l meshspectral.Layout
	}{
		{1, meshspectral.Rows(1)},
		{2, meshspectral.Rows(2)},
		{4, meshspectral.Rows(4)},
		{4, meshspectral.Cols(4)},
		{4, meshspectral.Blocks(2, 2)},
		{6, meshspectral.Blocks(2, 3)},
		{6, meshspectral.Blocks(3, 2)},
	}
	for _, tc := range cases {
		got, res := gatherSPMD(t, pr, tc.n, tc.l)
		if res != wres {
			t.Fatalf("n=%d %v: result %+v != sequential %+v", tc.n, tc.l, res, wres)
		}
		for k := range want.Data {
			if got.Data[k] != want.Data[k] {
				t.Fatalf("n=%d %v: field differs at %d (not bit-identical)", tc.n, tc.l, k)
			}
		}
	}
}

func TestSPMDResultConsistentAcrossRanks(t *testing.T) {
	pr := Manufactured(17, 17, 1e-7, 5000)
	results := make([]Result, 4)
	errs := make([]float64, 4)
	_, err := spmd.MustWorld(4, machine.IBMSP()).Run(func(p *spmd.Proc) {
		g, r := SolveSPMD(p, pr, meshspectral.Blocks(2, 2))
		results[p.Rank()] = r
		errs[p.Rank()] = MaxError(g, pr)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if results[r] != results[0] {
			t.Errorf("rank %d result %+v != rank 0 %+v", r, results[r], results[0])
		}
		if errs[r] != errs[0] {
			t.Errorf("rank %d MaxError %g != rank 0 %g", r, errs[r], errs[0])
		}
	}
	if errs[0] > 1e-2 {
		t.Errorf("MaxError = %g, too large", errs[0])
	}
}

func TestSPMDDeterministicMakespan(t *testing.T) {
	pr := Manufactured(17, 17, 1e-3, 50)
	var first float64
	for trial := 0; trial < 3; trial++ {
		res, err := spmd.MustWorld(4, machine.IBMSP()).Run(func(p *spmd.Proc) {
			SolveSPMD(p, pr, meshspectral.Blocks(2, 2))
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Makespan
		} else if res.Makespan != first {
			t.Fatalf("makespan varies: %g vs %g", res.Makespan, first)
		}
	}
}

func TestProblemGeometry(t *testing.T) {
	pr := Manufactured(11, 21, 1e-3, 10)
	if math.Abs(pr.Hx()-0.1) > 1e-15 || math.Abs(pr.Hy()-0.05) > 1e-15 {
		t.Errorf("spacings wrong: %g %g", pr.Hx(), pr.Hy())
	}
	x, y := pr.XY(10, 20)
	if math.Abs(x-1) > 1e-15 || math.Abs(y-1) > 1e-15 {
		t.Errorf("corner maps to (%g,%g), want (1,1)", x, y)
	}
}
