package backend_test

import (
	"os"
	"testing"

	"repro/internal/backend/dist"
	"repro/internal/elastic"
)

// TestMain lets this test binary self-spawn as dist workers: the parity
// table runs the dist backend in its default mode, which re-executes the
// current binary and relies on MaybeWorker to divert those processes into
// the worker loop.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	elastic.MaybeWorker()
	os.Exit(m.Run())
}
