package backend

import (
	"context"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Real returns the shared-memory backend: SPMD processes run as goroutines
// exchanging data through native channels at hardware speed, with no
// virtual pricing. Compute charges are discarded (real computation takes
// real time), clocks read elapsed wall-clock time, and the makespan is the
// run's wall-clock duration. Messages and bytes are counted exactly as the
// simulator counts them, so communication volume is comparable across
// backends and computational results are bit-identical for deterministic
// programs.
func Real() Runner {
	return realRunner{}
}

// RealWithClock returns a Real backend reading time from the given
// function (monotonic seconds). Tests inject a fake clock to keep
// wall-clock results deterministic.
func RealWithClock(clock func() float64) Runner {
	return realRunner{clock: clock}
}

// realRunner's zero clock means the host's monotonic clock.
type realRunner struct {
	clock func() float64
}

func (r realRunner) Name() string { return "real" }

func (r realRunner) Virtual() bool { return false }

func (r realRunner) NewTransport(ctx context.Context, n int, m *machine.Model) Transport {
	var elapsed func() float64
	if r.clock != nil {
		start := r.clock()
		elapsed = func() float64 { return r.clock() - start }
	} else {
		// time.Since uses the monotonic clock reading: immune to NTP
		// steps and slews, at full nanosecond resolution.
		start := time.Now()
		elapsed = func() float64 { return time.Since(start).Seconds() }
	}
	return &realTransport{mailbox: newMailbox(ctx, n), elapsed: elapsed, rec: obs.RunRecorder(ctx, n, "real")}
}

// realTransport carries messages at native channel speed and meters the
// run with the host clock.
type realTransport struct {
	*mailbox
	// elapsed reads seconds since the transport (the run) was created.
	elapsed func() float64
	rec     *obs.Recorder
}

func (t *realTransport) Recorder() *obs.Recorder { return t.rec }

// Charge discards modeled computation: on real hardware the computation
// itself already took the time.
func (t *realTransport) Charge(rank int, sec float64) {}

// SetResident is a no-op: the host's own memory system provides any paging
// behavior for real.
func (t *realTransport) SetResident(rank int, bytes float64) {}

func (t *realTransport) Clock(rank int) float64 { return t.elapsed() }

// Idle cannot advance a wall clock; waiting happens for real in Recv.
func (t *realTransport) Idle(rank int, at float64) {}

func (t *realTransport) Send(src, dst, tag int, data any, bytes int) {
	var start int64
	if t.rec != nil {
		start = t.rec.Now()
	}
	if src != dst {
		t.count(src, bytes)
	}
	t.push(src, dst, message{tag: tag, data: data, bytes: bytes})
	if t.rec != nil {
		t.rec.Emit(src, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(bytes), Peer: int32(dst), Tag: int32(tag), Kind: obs.KindSend})
	}
}

func (t *realTransport) Recv(src, dst, tag int) any {
	if t.rec == nil {
		return t.pop(src, dst, tag).data
	}
	start := t.rec.Now()
	msg := t.pop(src, dst, tag)
	t.rec.Emit(dst, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(msg.bytes), Peer: int32(src), Tag: int32(tag), Kind: obs.KindRecv})
	return msg.data
}

func (t *realTransport) RecvAny(dst, tag int) (int, any) {
	if t.rec == nil {
		src, msg := t.popAny(dst, tag)
		return src, msg.data
	}
	start := t.rec.Now()
	src, msg := t.popAny(dst, tag)
	t.rec.Emit(dst, obs.Event{T: start, Dur: t.rec.Now() - start, Bytes: int64(msg.bytes), Peer: int32(src), Tag: int32(tag), Kind: obs.KindRecvAny})
	return src, msg.data
}

func (t *realTransport) Finish() Result {
	elapsed := t.elapsed()
	res := Result{Makespan: elapsed, Clocks: make([]float64, t.n)}
	for i := range res.Clocks {
		res.Clocks[i] = elapsed
	}
	res.Msgs, res.Bytes = t.totals()
	t.release()
	return res
}

func init() { Register(Real()) }
