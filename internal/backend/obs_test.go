package backend_test

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/spmd"
)

// obsBackends is the full backend matrix the flight-recorder contracts
// are pinned over: one virtual-time and three wall-clock substrates.
func obsBackends() []backend.Runner {
	return []backend.Runner{
		backend.Sim(),
		backend.Real(),
		dist.New(),
		elastic.New(elastic.WithLocalWorkers(true)),
	}
}

// TestTraceParity pins the recorder's logical view of a run: the same
// deterministic program must yield the same multiset of communication
// events — (kind, rank, peer, tag, bytes) — on every backend. Timestamps
// and durations differ (virtual versus wall clock); what happened must
// not. Self-sends are part of the contract: every backend records them
// like any other message.
func TestTraceParity(t *testing.T) {
	const np = 4
	model := machine.IBMSP()
	prog := func(p *spmd.Proc) {
		r, n := p.Rank(), p.N()
		// One neighbor round with per-rank payload sizes, one self-send,
		// and a barrier: exercises send, recv, and barrier events.
		payload := make([]int32, 3+r)
		for i := range payload {
			payload[i] = int32(r*10 + i)
		}
		p.Send((r+1)%n, 200, payload)
		_ = spmd.Recv[[]int32](p, (r+n-1)%n, 200)
		p.Send(r, 201, int32(r))
		_ = spmd.Recv[int32](p, r, 201)
	}

	logical := func(b backend.Runner) []string {
		col := obs.NewCollector()
		ctx := obs.NewContext(context.Background(), col)
		if _, err := core.Run(ctx, b, np, model, prog); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		rec := col.Last()
		if rec == nil {
			t.Fatalf("%s: no recorder registered", b.Name())
		}
		var out []string
		for rank := 0; rank < np; rank++ {
			ev, dropped := rec.Events(rank)
			if dropped != 0 {
				t.Fatalf("%s: rank %d dropped %d events", b.Name(), rank, dropped)
			}
			for _, e := range ev {
				switch e.Kind {
				case obs.KindSend, obs.KindRecv, obs.KindRecvAny:
					out = append(out, fmt.Sprintf("%s r%d p%d t%d b%d", e.Kind, e.Rank, e.Peer, e.Tag, e.Bytes))
				}
			}
		}
		sort.Strings(out)
		return out
	}

	backends := obsBackends()
	want := logical(backends[0])
	if len(want) == 0 {
		t.Fatal("sim recorded no communication events")
	}
	for _, b := range backends[1:] {
		got := logical(b)
		if len(got) != len(want) {
			t.Fatalf("%s recorded %d communication events, sim %d:\nsim:  %v\n%s: %v",
				b.Name(), len(got), len(want), want, b.Name(), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s event multiset diverges from sim at %q (sim has %q)", b.Name(), got[i], want[i])
			}
		}
	}
}

// gid parses the current goroutine's id out of runtime.Stack — the only
// portable handle on goroutine identity, and exactly what the
// RankObserver contract ("on the rank's own goroutine") is about.
func gid() uint64 {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	// "goroutine 123 [running]:"
	f := strings.Fields(string(buf))
	id, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		panic("cannot parse goroutine id from " + string(buf))
	}
	return id
}

// rankCalls records RankReturned invocations: which goroutine, how many
// times, per rank.
type rankCalls struct {
	mu   sync.Mutex
	gids map[int][]uint64
}

func (c *rankCalls) record(rank int) {
	id := gid()
	c.mu.Lock()
	c.gids[rank] = append(c.gids[rank], id)
	c.mu.Unlock()
}

// observedRunner wraps a backend so every transport it creates reports
// RankReturned calls into the test's log, forwarding the inner
// transport's own capabilities (dist's final flush, elastic's Drive).
type observedRunner struct {
	backend.Runner
	calls *rankCalls
}

func (o observedRunner) NewTransport(ctx context.Context, n int, m *machine.Model) backend.Transport {
	inner := o.Runner.NewTransport(ctx, n, m)
	ot := &observedTransport{Transport: inner, calls: o.calls}
	if d, ok := inner.(backend.Driver); ok {
		return &observedDriverTransport{observedTransport: ot, d: d}
	}
	return ot
}

type observedTransport struct {
	backend.Transport
	calls *rankCalls
}

func (t *observedTransport) RankReturned(rank int) {
	t.calls.record(rank)
	if ro, ok := t.Transport.(backend.RankObserver); ok {
		ro.RankReturned(rank)
	}
}

type observedDriverTransport struct {
	*observedTransport
	d backend.Driver
}

func (t *observedDriverTransport) Drive(run func(rank int) error) error { return t.d.Drive(run) }

// TestRankReturnedOncePerRank pins the RankObserver contract against
// spmd.World.Run on every backend: RankReturned fires exactly once per
// rank, on the same goroutine that ran the rank's body, after the body
// returned — on the goroutine-per-rank path (sim, real, dist) and the
// transport-driven path (elastic) alike.
func TestRankReturnedOncePerRank(t *testing.T) {
	const np = 4
	model := machine.IBMSP()
	for _, inner := range obsBackends() {
		t.Run(inner.Name(), func(t *testing.T) {
			calls := &rankCalls{gids: map[int][]uint64{}}
			bodyGids := make([]uint64, np)
			bodyDone := make([]bool, np)
			prog, wantRing := ringObsProg(np, bodyGids, bodyDone)
			_, err := core.Run(context.Background(), observedRunner{Runner: inner, calls: calls}, np, model, prog)
			if err != nil {
				t.Fatalf("%s: %v", inner.Name(), err)
			}
			wantRing(t)
			calls.mu.Lock()
			defer calls.mu.Unlock()
			for rank := 0; rank < np; rank++ {
				got := calls.gids[rank]
				if len(got) != 1 {
					t.Fatalf("rank %d: RankReturned called %d times, want exactly 1", rank, len(got))
				}
				if !bodyDone[rank] {
					t.Fatalf("rank %d: RankReturned fired but the body never finished", rank)
				}
				if got[0] != bodyGids[rank] {
					t.Fatalf("rank %d: RankReturned on goroutine %d, body ran on %d", rank, got[0], bodyGids[rank])
				}
			}
		})
	}
}

// ringObsProg is a small deterministic ring exchange whose body records
// its goroutine id and completion as its last acts, so the RankObserver
// assertions can compare against them.
func ringObsProg(np int, bodyGids []uint64, bodyDone []bool) (core.Program, func(*testing.T)) {
	sums := make([]int, np)
	return func(p *spmd.Proc) {
			r, n := p.Rank(), p.N()
			p.Send((r+1)%n, 7, r+1)
			sums[r] = r + 1 + p.Recv((r+n-1)%n, 7).(int)
			bodyGids[r] = gid()
			bodyDone[r] = true
		}, func(t *testing.T) {
			t.Helper()
			for r := 0; r < np; r++ {
				prev := (r+np-1)%np + 1
				if sums[r] != r+1+prev {
					t.Fatalf("rank %d computed %d, want %d", r, sums[r], r+1+prev)
				}
			}
		}
}

// TestDisabledRecorderIsNil pins the zero-cost-off contract at the seam:
// a run whose context carries no collector must hand every transport a
// nil recorder, and a nil recorder must swallow everything without
// allocating.
func TestDisabledRecorderIsNil(t *testing.T) {
	for _, b := range obsBackends() {
		tr := b.NewTransport(context.Background(), 2, machine.IBMSP())
		tc, ok := tr.(backend.Traced)
		if !ok {
			t.Fatalf("%s transport does not implement backend.Traced", b.Name())
		}
		if rec := tc.Recorder(); rec != nil {
			t.Fatalf("%s: recorder without a collector context = %v, want nil", b.Name(), rec)
		}
		// Drain the transport so fabrics and worker processes release.
		done := make(chan struct{})
		go func() {
			defer close(done)
			if d, ok := tr.(backend.Driver); ok {
				_ = d.Drive(func(rank int) error { return nil })
			}
			tr.Finish()
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: transport did not finish", b.Name())
		}
	}
}
