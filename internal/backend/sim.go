package backend

import (
	"context"

	"repro/internal/machine"
	"repro/internal/obs"
)

// Sim returns the virtual-time simulator backend: the original substrate
// of this reproduction. Every rank carries a virtual clock advanced by
// explicit compute charges and by message costs from the machine model, so
// the same program yields deterministic makespans for any process count
// regardless of how the host schedules goroutines.
func Sim() Runner { return simRunner{} }

type simRunner struct{}

func (simRunner) Name() string { return "sim" }

func (simRunner) Virtual() bool { return true }

func (simRunner) NewTransport(ctx context.Context, n int, m *machine.Model) Transport {
	return &simTransport{
		mailbox:  newMailbox(ctx, n),
		model:    m,
		clocks:   make([]float64, n),
		resident: make([]float64, n),
		rec:      obs.RunRecorder(ctx, n, "sim"),
	}
}

// simTransport prices computation and communication in virtual time.
// clocks and resident are rank-indexed and only touched by the goroutine
// running that rank, so they need no locking.
type simTransport struct {
	*mailbox
	model    *machine.Model
	clocks   []float64
	resident []float64
	rec      *obs.Recorder
}

func (t *simTransport) Recorder() *obs.Recorder { return t.rec }

// vns converts virtual seconds to the trace's nanosecond timestamps: sim
// events sit on the modeled timeline, not the host's.
func vns(sec float64) int64 { return int64(sec * 1e9) }

// pagingFactor is the compute-cost multiplier implied by rank's current
// resident-set declaration.
func (t *simTransport) pagingFactor(rank int) float64 {
	m := t.model
	if m.MemPerProc > 0 && t.resident[rank] > m.MemPerProc {
		return m.PagingFactor
	}
	return 1
}

func (t *simTransport) Charge(rank int, sec float64) {
	t.clocks[rank] += sec * t.pagingFactor(rank)
}

func (t *simTransport) SetResident(rank int, bytes float64) {
	t.resident[rank] = bytes
}

func (t *simTransport) Clock(rank int) float64 { return t.clocks[rank] }

func (t *simTransport) Idle(rank int, at float64) {
	if at > t.clocks[rank] {
		t.clocks[rank] = at
	}
}

// Send prices the message and enqueues it with its availability time.
// Send to self is a memory copy: it costs copy time but no latency, and is
// delivered through the same FIFO so program structure is uniform.
func (t *simTransport) Send(src, dst, tag int, data any, bytes int) {
	m := t.model
	start := t.clocks[src]
	if dst == src {
		t.Charge(src, float64(bytes)/8*m.MemTime)
		t.push(src, dst, message{tag: tag, data: data, bytes: bytes, avail: t.clocks[src]})
	} else {
		t.clocks[src] += m.SendOverhead
		avail := t.clocks[src] + m.Latency + float64(bytes)/m.Bandwidth
		t.count(src, bytes)
		t.push(src, dst, message{tag: tag, data: data, bytes: bytes, avail: avail})
	}
	if t.rec != nil {
		t.rec.Emit(src, obs.Event{T: vns(start), Dur: vns(t.clocks[src] - start), Bytes: int64(bytes), Peer: int32(dst), Tag: int32(tag), Kind: obs.KindSend})
	}
}

// Recv dequeues the next message from src and advances dst's clock to the
// message's availability time plus receive overhead.
func (t *simTransport) Recv(src, dst, tag int) any {
	start := t.clocks[dst]
	msg := t.pop(src, dst, tag)
	if msg.avail > t.clocks[dst] {
		t.clocks[dst] = msg.avail
	}
	if src != dst {
		t.clocks[dst] += t.model.RecvOverhead
	}
	if t.rec != nil {
		t.rec.Emit(dst, obs.Event{T: vns(start), Dur: vns(t.clocks[dst] - start), Bytes: int64(msg.bytes), Peer: int32(src), Tag: int32(tag), Kind: obs.KindRecv})
	}
	return msg.data
}

func (t *simTransport) RecvAny(dst, tag int) (int, any) {
	start := t.clocks[dst]
	src, msg := t.popAny(dst, tag)
	if msg.avail > t.clocks[dst] {
		t.clocks[dst] = msg.avail
	}
	if src != dst {
		t.clocks[dst] += t.model.RecvOverhead
	}
	if t.rec != nil {
		t.rec.Emit(dst, obs.Event{T: vns(start), Dur: vns(t.clocks[dst] - start), Bytes: int64(msg.bytes), Peer: int32(src), Tag: int32(tag), Kind: obs.KindRecvAny})
	}
	return src, msg.data
}

func (t *simTransport) Finish() Result {
	res := Result{Clocks: append([]float64(nil), t.clocks...)}
	for _, c := range t.clocks {
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	res.Msgs, res.Bytes = t.totals()
	t.release()
	return res
}

func init() { Register(Sim()) }
