package dist_test

import (
	"context"
	"testing"

	"repro/internal/backend/dist"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spmd"
)

// BenchmarkPingPong mirrors hostbench's DistPingPong (1000 round trips
// of a one-word payload per op on a pooled two-worker world) so the dist
// package's hot path can be profiled in isolation:
//
//	go test ./internal/backend/dist/ -bench PingPong -cpuprofile cpu.out
func BenchmarkPingPong(b *testing.B) {
	model := machine.IBMSP()
	r := dist.New(dist.WithWorkerPool())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), r, 2, model, func(p *spmd.Proc) {
			peer := 1 - p.Rank()
			msg := []float64{1}
			for round := 0; round < 1000; round++ {
				if p.Rank() == 0 {
					spmd.SendT(p, peer, 1, msg)
					spmd.Recv[[]float64](p, peer, 1)
				} else {
					spmd.Recv[[]float64](p, peer, 1)
					spmd.SendT(p, peer, 1, msg)
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}
