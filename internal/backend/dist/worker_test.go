package dist

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/spmd"
)

// flakyListener injects transient Accept failures before delegating to a
// real listener — the EMFILE / momentarily-wedged-stack shape.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	fails int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.fails > 0 {
		l.fails--
		l.mu.Unlock()
		return nil, errors.New("accept: too many open files")
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

func (l *flakyListener) remaining() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fails
}

// TestServeRecoversFromTransientAcceptErrors is the Serve regression: a
// burst of transient Accept failures must not kill the serving loop — a
// world attaching right after them still runs — and Serve returns only
// when the listener itself closes.
func TestServeRecoversFromTransientAcceptErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln, fails: 3}
	served := make(chan error, 1)
	go func() { served <- Serve(fl) }()

	w, err := spmd.NewWorldOn(context.Background(), New(WithWorkers(ln.Addr().String())), 1, machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(p *spmd.Proc) {
		p.Send(0, 1, 42)
		if v := spmd.Recv[int](p, 0, 1); v != 42 {
			panic("self-send corrupted")
		}
	}); err != nil {
		t.Fatalf("world after transient accept errors: %v", err)
	}
	if got := fl.remaining(); got != 0 {
		t.Errorf("%d injected accept failures never hit the loop", got)
	}

	ln.Close()
	select {
	case err := <-served:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve = %v, want net.ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after its listener closed")
	}
}

// TestForwardDeadPeerFailsPromptly is the peer-dial regression: forward
// must bound the connect with peerDialTimeout so a dead peer address
// fails the world promptly instead of hanging the control loop for the
// OS connect timeout (~2 min). A genuinely blackholed address cannot be
// simulated portably (some environments transparently accept every
// connect), so the deadline's plumbing is pinned the other way around: an
// already-expired timeout must fail the dial even toward a healthy
// listener, which the old unbounded net.Dial would happily reach.
func TestForwardDeadPeerFailsPromptly(t *testing.T) {
	defer peerDialTimeout.set(time.Nanosecond)()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	w := &worker{
		rank:    0,
		n:       2,
		addrs:   []string{"", ln.Addr().String()},
		peers:   make([]*Writer, 2),
		conns:   make([]net.Conn, 2),
		control: NewWriter(io.Discard),
	}
	start := time.Now()
	err = w.forward(1, msgHeader(0, 1, 0, nil))
	if err == nil {
		t.Fatal("forward ignored the expired dial deadline: the peer dial is unbounded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded peer dial took %v", elapsed)
	}
}

// TestStalledPeerHelloTimesOut is the acceptPeers regression: an inbound
// data connection that never sends its peerhello must be dropped by the
// handshake deadline instead of pinning a goroutine and an fd forever.
func TestStalledPeerHelloTimesOut(t *testing.T) {
	defer peerHelloTimeout.set(200 * time.Millisecond)()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	w := &worker{rank: 0, n: 2, secret: "s", control: NewWriter(io.Discard)}
	go w.acceptPeers(ln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Send nothing. The worker must close the connection; our read then
	// errors with EOF/reset — hitting our own deadline instead means the
	// worker is still holding the stalled connection open.
	c.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := c.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled peer connection read = %v, want closed by the worker's handshake deadline", err)
	}
}

// TestCloseConnsClosesInbound pins world-end teardown of the inbound data
// plane: accepted connections close when the world ends, and connections
// accepted after the world ended are closed immediately.
func TestCloseConnsClosesInbound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	w := &worker{rank: 0, n: 2, secret: "s", control: NewWriter(io.Discard)}
	go w.acceptPeers(ln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		w.mu.Lock()
		tracked := len(w.inbound)
		w.mu.Unlock()
		if tracked == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("accepted connection never tracked")
		}
		time.Sleep(time.Millisecond)
	}

	w.closeConns()
	c.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := c.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("inbound connection read = %v, want closed at world end", err)
	}

	// A straggler connecting after the world ended is closed on accept.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return // listener already torn down: equally dead
	}
	defer c2.Close()
	c2.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := c2.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("post-world connection read = %v, want immediate close", err)
	}
}
