package dist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"strconv"

	"repro/internal/backoff"
)

// Environment keys of the self-spawn protocol: the coordinator launches
// its own binary again with envWorker pointing at its control listener,
// and MaybeWorker turns that process into a worker before the host
// program's main logic runs.
const (
	envWorker = "ARCHDIST_WORKER"
	envToken  = "ARCHDIST_TOKEN"
	// envCrashRank is a test hook: the worker whose assigned rank matches
	// kills itself upon its first send, simulating a mid-run crash.
	envCrashRank = "ARCHDIST_CRASH_RANK"
)

// MaybeWorker turns the current process into a dist worker when it was
// self-spawned by a dist coordinator (the ARCHDIST_WORKER environment
// variable is set) and never returns in that case; otherwise it is a
// no-op. Call it first thing in main (and in TestMain) of any binary
// that should support the dist backend's default self-spawn mode —
// cmd/archdemo, cmd/archbench, cmd/archworker, and the repository's test
// binaries all do.
func MaybeWorker() {
	addr := os.Getenv(envWorker)
	if addr == "" {
		return
	}
	if err := JoinWorld(addr, os.Getenv(envToken)); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// JoinWorld dials a coordinator's control address and serves one world as
// a worker, returning when the world finishes (nil) or dies (the error).
// The initial dial retries with exponential backoff and jitter (see
// backoff.Dial) instead of failing on the first connection-refused, so a
// worker started moments before its coordinator — the common race when
// both sides launch from one script — attaches instead of dying. An empty
// token falls back to the ARCHDIST_TOKEN environment variable, so
// explicit worker entry points (archworker -join, archdemo -worker)
// authenticate the same way self-spawned workers do.
func JoinWorld(addr, token string) error {
	if token == "" {
		token = os.Getenv(envToken)
	}
	var conn net.Conn
	err := backoff.Dial().Retry(context.Background(), func() error {
		var err error
		conn, err = net.Dial("tcp", addr)
		return err
	})
	if err != nil {
		return fmt.Errorf("dist: dialing coordinator %s: %w", addr, err)
	}
	return ServeConn(conn, token)
}

// Serve accepts coordinator connections on l and serves one world per
// connection, concurrently — the attach-mode worker loop behind
// cmd/archworker. It returns only when the listener fails (closing l is
// the way to stop it).
func Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := ServeConn(conn, ""); err != nil {
				fmt.Fprintf(os.Stderr, "dist worker: world failed: %v\n", err)
			}
		}()
	}
}

// ServeConn speaks the worker side of the control protocol on an
// established coordinator connection: handshake (hello → assign → ready),
// then the operation stream until opFinish (returns nil), the
// coordinator's disappearance (returns nil — a cancelled run tears
// workers down by closing their connections), or a substrate failure
// (returns the error; in a spawned worker process the nonzero exit is
// what tells the coordinator's process monitor the world is dead). token
// travels in the hello frame; self-spawned workers relay the coordinator's
// secret, attach-mode workers send the empty string (the coordinator
// dialed them, so the connection itself is the introduction).
func ServeConn(conn net.Conn, token string) error {
	defer conn.Close()

	// Peer listener: other workers dial here. Bind the same interface the
	// coordinator reached us on so multi-host attach topologies work.
	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		return fmt.Errorf("dist: worker local addr: %w", err)
	}
	peerLn, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return fmt.Errorf("dist: worker peer listener: %w", err)
	}
	defer peerLn.Close()

	if err := WriteFrame(conn, opHello, helloBody(token, peerLn.Addr().String(), os.Getpid())); err != nil {
		return fmt.Errorf("dist: worker hello: %w", err)
	}
	br := bufio.NewReader(conn)
	op, body, err := ReadFrame(br)
	if err != nil {
		return fmt.Errorf("dist: worker awaiting assignment: %w", err)
	}
	if op != opAssign {
		return fmt.Errorf("dist: worker expected assign frame, got op %d", op)
	}
	rank, n, peerSecret, addrs, err := parseAssign(body)
	if err != nil {
		return err
	}
	if rank < 0 || rank >= n {
		return fmt.Errorf("dist: assigned rank %d outside world of %d", rank, n)
	}

	w := &worker{
		rank:    rank,
		n:       n,
		addrs:   addrs,
		secret:  peerSecret,
		peers:   make([]net.Conn, n),
		q:       newInQueue(n),
		control: conn,
	}
	w.crash = os.Getenv(envCrashRank) == strconv.Itoa(rank)
	defer w.closePeers()

	go w.acceptPeers(peerLn)

	if err := WriteFrame(conn, opReady, nil); err != nil {
		return fmt.Errorf("dist: worker ready: %w", err)
	}

	// The reader feeds frames to the handler so a vanished coordinator
	// unblocks a handler parked in a queue wait: on read failure the
	// queue closes and the handler returns.
	type frame struct {
		op   byte
		body []byte
	}
	frames := make(chan frame, 64)
	handlerDone := make(chan struct{})
	defer close(handlerDone)
	go func() {
		defer close(frames)
		defer w.q.close()
		for {
			op, body, err := ReadFrame(br)
			if err != nil {
				return
			}
			select {
			case frames <- frame{op, body}:
			case <-handlerDone:
				return
			}
		}
	}()

	for f := range frames {
		switch f.op {
		case opSend:
			if w.crash {
				// Test hook: die exactly where a real fault would —
				// mid-run, with peers blocked on messages that will
				// never arrive.
				os.Exit(3)
			}
			dst, tag, metered, payload, err := parseMsgHeader(f.body)
			if err != nil {
				return err
			}
			if dst < 0 || dst >= n {
				return fmt.Errorf("dist: worker %d: send to invalid rank %d", rank, dst)
			}
			if err := w.forward(dst, tag, metered, payload); err != nil {
				return err
			}
		case opRecv:
			src, err := parseRecv(f.body)
			if err != nil {
				return err
			}
			if src < 0 || src >= n {
				return fmt.Errorf("dist: worker %d: recv from invalid rank %d", rank, src)
			}
			m, ok := w.q.pop(src)
			if !ok {
				return nil
			}
			if err := WriteFrame(conn, opMsg, msgHeader(m.src, m.tag, m.metered, m.payload)); err != nil {
				return fmt.Errorf("dist: worker %d: delivering message: %w", rank, err)
			}
		case opRecvAny:
			m, ok := w.q.popAny()
			if !ok {
				return nil
			}
			if err := WriteFrame(conn, opMsg, msgHeader(m.src, m.tag, m.metered, m.payload)); err != nil {
				return fmt.Errorf("dist: worker %d: delivering message: %w", rank, err)
			}
		case opFinish:
			// Finish barrier: acknowledge, then tear down.
			if err := WriteFrame(conn, opBye, nil); err != nil {
				return fmt.Errorf("dist: worker %d: bye: %w", rank, err)
			}
			return nil
		default:
			return fmt.Errorf("dist: worker %d: unexpected control op %d", rank, f.op)
		}
	}
	// Control connection gone without a finish frame: the coordinator
	// cancelled or crashed. Exiting quietly is the cancellation path.
	return nil
}

// worker is one rank's message endpoint: the per-rank OS process (or, in
// attach mode, per-world goroutine set) owning that rank's inbox and its
// outbound peer connections.
type worker struct {
	rank, n int
	addrs   []string
	// secret is the world's peer-plane secret from the assign frame:
	// sent in every outgoing peerhello, required on every incoming one.
	secret  string
	peers   []net.Conn // lazily dialed, handler-goroutine only
	q       *inQueue
	control net.Conn
	crash   bool
}

// forward routes a message from this worker's rank toward dst: local
// enqueue for self-sends, a peer connection otherwise (dialed on first
// use — per-peer connection management).
func (w *worker) forward(dst, tag, metered int, payload []byte) error {
	if dst == w.rank {
		w.q.push(inMsg{src: w.rank, tag: tag, metered: metered, payload: payload})
		return nil
	}
	pc := w.peers[dst]
	if pc == nil {
		c, err := net.Dial("tcp", w.addrs[dst])
		if err != nil {
			return fmt.Errorf("dist: worker %d dialing peer %d: %w", w.rank, dst, err)
		}
		if err := WriteFrame(c, opPeerHello, peerHelloBody(w.rank, w.secret)); err != nil {
			c.Close()
			return fmt.Errorf("dist: worker %d greeting peer %d: %w", w.rank, dst, err)
		}
		w.peers[dst] = c
		pc = c
	}
	if err := WriteFrame(pc, opData, msgHeader(w.rank, tag, metered, payload)); err != nil {
		return fmt.Errorf("dist: worker %d forwarding to peer %d: %w", w.rank, dst, err)
	}
	return nil
}

// acceptPeers drains incoming peer connections into the inbox, one
// goroutine per peer. It ends when the peer listener closes (world
// teardown).
func (w *worker) acceptPeers(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			br := bufio.NewReader(c)
			op, body, err := ReadFrame(br)
			if err != nil || op != opPeerHello {
				return
			}
			from, secret, err := parsePeerHello(body)
			if err != nil || from < 0 || from >= w.n || secret != w.secret {
				// Wrong world (or not a worker at all): drop the
				// connection before any data frame reaches the inbox.
				return
			}
			for {
				op, body, err := ReadFrame(br)
				if err != nil || op != opData {
					return
				}
				src, tag, metered, payload, err := parseMsgHeader(body)
				if err != nil || src != from {
					return
				}
				w.q.push(inMsg{src: src, tag: tag, metered: metered, payload: payload})
			}
		}()
	}
}

func (w *worker) closePeers() {
	for _, c := range w.peers {
		if c != nil {
			c.Close()
		}
	}
}
