package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
)

// Environment keys of the self-spawn protocol: the coordinator launches
// its own binary again with envWorker pointing at its control listener,
// and MaybeWorker turns that process into a worker before the host
// program's main logic runs.
const (
	envWorker = "ARCHDIST_WORKER"
	envToken  = "ARCHDIST_TOKEN"
	// envCrashRank is a test hook: the worker whose assigned rank matches
	// kills itself when the first message for its rank (or, in relay mode,
	// from its rank) reaches it, simulating a mid-run crash.
	envCrashRank = "ARCHDIST_CRASH_RANK"
	// envCrashPushRank is the eager-push twin: the worker whose assigned
	// rank matches kills itself just before its first opDeliver push up
	// the control connection — a crash in the middle of the delivery
	// path, with the receiving rank already parked on the coordinator
	// inbox.
	envCrashPushRank = "ARCHDIST_CRASH_PUSH_RANK"
)

// Timeouts of the worker's network edges, atomics so tests can shrink
// them without racing live workers: peerDialTimeout bounds dialing a
// peer's data listener (a dead peer address must fail the world
// promptly, not hang the handler for the OS connect timeout), and
// peerHelloTimeout bounds how long an accepted inbound data connection
// may stall before its peerhello (a connection that sends nothing must
// not pin a goroutine and an fd for the life of the process).
var (
	peerDialTimeout  = newTimeout(10 * time.Second)
	peerHelloTimeout = newTimeout(30 * time.Second)
)

type timeout struct{ atomic.Int64 }

func newTimeout(d time.Duration) *timeout {
	t := &timeout{}
	t.Store(int64(d))
	return t
}

func (t *timeout) get() time.Duration { return time.Duration(t.Load()) }

// set installs d and returns a restore function for tests.
func (t *timeout) set(d time.Duration) func() {
	old := t.Swap(int64(d))
	return func() { t.Store(old) }
}

// MaybeWorker turns the current process into a dist worker when it was
// self-spawned by a dist coordinator (the ARCHDIST_WORKER environment
// variable is set) and never returns in that case; otherwise it is a
// no-op. Call it first thing in main (and in TestMain) of any binary
// that should support the dist backend's default self-spawn mode —
// cmd/archdemo, cmd/archbench, cmd/archworker, and the repository's test
// binaries all do.
func MaybeWorker() {
	addr := os.Getenv(envWorker)
	if addr == "" {
		return
	}
	if err := JoinWorld(addr, os.Getenv(envToken)); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// JoinWorld dials a coordinator's control address and serves worlds as a
// worker until the coordinator closes the connection (nil) or a world
// dies (the error). The address is "host:port" for TCP or "unix:/path"
// for a coordinator on the same host (the self-spawn default: a
// unix-domain control socket shaves scheduler latency off every
// coordinator↔worker crossing). The initial dial retries with
// exponential backoff and jitter (see backoff.Dial) instead of failing
// on the first connection-refused, so a worker started moments before
// its coordinator — the common race when both sides launch from one
// script — attaches instead of dying. An empty token falls back to the
// ARCHDIST_TOKEN environment variable, so explicit worker entry points
// (archworker -join, archdemo -worker) authenticate the same way
// self-spawned workers do.
func JoinWorld(addr, token string) error {
	if token == "" {
		token = os.Getenv(envToken)
	}
	network, dialAddr := "tcp", addr
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, dialAddr = "unix", path
	}
	var conn net.Conn
	err := backoff.Dial().Retry(context.Background(), func() error {
		var err error
		conn, err = net.Dial(network, dialAddr)
		return err
	})
	if err != nil {
		return fmt.Errorf("dist: dialing coordinator %s: %w", addr, err)
	}
	return ServeConn(conn, token)
}

// Serve accepts coordinator connections on l and serves worlds on each,
// concurrently — the attach-mode worker loop behind cmd/archworker.
// Transient Accept failures (EMFILE, ECONNABORTED, a momentarily wedged
// stack) back off with capped exponential delay and keep serving — one
// bad accept must not kill the whole serving loop — so Serve returns
// only when the listener itself is closed (closing l is the way to stop
// it).
func Serve(l net.Listener) error {
	policy := backoff.Policy{Base: 5 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	fails := 0
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			time.Sleep(policy.Delay(fails))
			fails++
			continue
		}
		fails = 0
		go func() {
			if err := ServeConn(conn, ""); err != nil {
				fmt.Fprintf(os.Stderr, "dist worker: world failed: %v\n", err)
			}
		}()
	}
}

// Control-loop internal signals: errWorldFinished marks a world's clean
// finish barrier, errConnDone the coordinator's disappearance (the
// connection is the worker's lease on life — when it closes, between or
// during worlds, the worker is simply done; a cancelled run and a pooled
// worker's final release look identical from here).
var (
	errWorldFinished = errors.New("dist: world finished")
	errConnDone      = errors.New("dist: coordinator connection closed")
)

// ServeConn speaks the worker side of the control protocol on an
// established coordinator connection, serving worlds back to back: each
// iteration runs one world's handshake (hello → assign → ready), its
// message traffic, and its finish barrier, then offers a fresh hello for
// the next world on the same connection — which is how the coordinator's
// worker pool reuses a warm process instead of paying a spawn per world.
// It returns nil when the coordinator closes the connection (the normal
// end, whether after one world or many) and an error only for substrate
// failures; in a spawned worker process the nonzero exit is what tells
// the coordinator's process monitor the world is dead. token travels in
// every hello frame; self-spawned workers relay the coordinator's
// secret, attach-mode workers send the empty string (the coordinator
// dialed them, so the connection itself is the introduction).
func ServeConn(conn net.Conn, token string) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for first := true; ; first = false {
		err := serveWorld(conn, br, token, first)
		switch {
		case err == nil: // clean finish: offer the next world
		case errors.Is(err, errConnDone):
			return nil
		default:
			return err
		}
	}
}

// serveWorld runs one world on the control connection. The worker's hot
// path is the verbatim push: an opSend frame arriving here was routed by
// the coordinator down the *destination's* connection — this worker's
// rank is the addressee — so its body goes straight back up as an
// opDeliver, untouched. opRelay frames (peer-routing mode) are instead
// re-headered and forwarded across the worker↔worker data plane. Every
// writer follows the flush-on-idle discipline: frames accumulate in the
// connection's Writer while more input is already buffered, and flush as
// one (possibly multi-message) frame the moment the loop would block.
func serveWorld(conn net.Conn, br *bufio.Reader, token string, first bool) error {
	// Peer listener: other workers dial here, per world so its lifetime
	// and secret are the world's. Bind the interface the coordinator
	// reached us on so multi-host attach topologies work; a unix-domain
	// control connection has no host, so the peer plane (always TCP)
	// binds loopback — unix control implies a same-host world.
	host := "127.0.0.1"
	if h, _, err := net.SplitHostPort(conn.LocalAddr().String()); err == nil && h != "" {
		host = h
	}
	peerLn, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return fmt.Errorf("dist: worker peer listener: %w", err)
	}
	defer peerLn.Close()

	if err := WriteFrame(conn, opHello, helloBody(token, peerLn.Addr().String(), os.Getpid())); err != nil {
		if first {
			return fmt.Errorf("dist: worker hello: %w", err)
		}
		return errConnDone
	}
	op, body, err := ReadFrame(br)
	if err != nil {
		if first {
			return fmt.Errorf("dist: worker awaiting assignment: %w", err)
		}
		return errConnDone
	}
	if op != opAssign {
		return fmt.Errorf("dist: worker expected assign frame, got op %d", op)
	}
	rank, n, peerSecret, addrs, err := parseAssign(body)
	if err != nil {
		return err
	}
	if rank < 0 || rank >= n {
		return fmt.Errorf("dist: assigned rank %d outside world of %d", rank, n)
	}

	w := &worker{
		rank:    rank,
		n:       n,
		addrs:   addrs,
		secret:  peerSecret,
		peers:   make([]*Writer, n),
		conns:   make([]net.Conn, n),
		control: NewWriter(conn),
	}
	w.crash = os.Getenv(envCrashRank) == strconv.Itoa(rank)
	w.crashPush = os.Getenv(envCrashPushRank) == strconv.Itoa(rank)
	defer w.closeConns()

	go w.acceptPeers(peerLn)

	if err := WriteFrame(conn, opReady, nil); err != nil {
		return fmt.Errorf("dist: worker ready: %w", err)
	}

	// The control loop: read the coordinator's frames directly (nothing
	// here blocks on anything but the connection, so a vanished
	// coordinator unblocks the loop by failing the read), flushing dirty
	// writers only when no further frame is already buffered. Frames land
	// in a reused scratch buffer: every dispatch arm copies the body
	// onward (into the control Writer's pending buffer or fwdBuf) before
	// the next read, so the loop is allocation-free in steady state.
	var ctrlBuf, fwdBuf []byte
	for {
		op, body, err := readFrameInto(br, &ctrlBuf)
		if err != nil {
			// Control connection gone without a finish frame: the
			// coordinator cancelled, crashed, or released this pooled
			// worker. Exiting quietly is the expected path.
			return errConnDone
		}
		err = forEachFrame(op, body, func(op byte, b []byte) error {
			switch op {
			case opSend:
				// Destination-routed message for this worker's rank.
				if w.crash {
					// Test hook: die exactly where a real fault would —
					// mid-run, with ranks blocked on messages that will
					// never arrive.
					os.Exit(3)
				}
				if w.crashPush {
					os.Exit(3)
				}
				return w.control.Write(opDeliver, b)
			case opRelay:
				// Source-routed message from this worker's rank: carry it
				// across the peer plane.
				if w.crash {
					os.Exit(3)
				}
				dst, tag, metered, payload, err := parseMsgHeader(b)
				if err != nil {
					return err
				}
				if dst < 0 || dst >= n {
					return fmt.Errorf("dist: worker %d: relay to invalid rank %d", rank, dst)
				}
				fwdBuf = appendMsgHeader(fwdBuf[:0], w.rank, tag, metered)
				fwdBuf = append(fwdBuf, payload...)
				return w.forward(dst, fwdBuf)
			case opFinish:
				// Finish barrier: acknowledge, then tear down.
				if err := w.control.Write(opBye, nil); err != nil {
					return fmt.Errorf("dist: worker %d: bye: %w", rank, err)
				}
				return errWorldFinished
			default:
				return fmt.Errorf("dist: worker %d: unexpected control op %d", rank, op)
			}
		})
		if errors.Is(err, errWorldFinished) {
			return w.flushAll()
		}
		if err != nil {
			if connIOErr(err) {
				// A delivery push or relay failed at the socket level: the
				// coordinator tore the world down (cancellation, a peer's
				// failure) while frames were in flight. That is the same
				// quiet exit as the read path seeing the connection close —
				// only protocol violations deserve noise.
				return errConnDone
			}
			return err
		}
		if !pendingFrame(br) {
			if err := w.flushAll(); err != nil {
				if connIOErr(err) {
					return errConnDone
				}
				return err
			}
		}
	}
}

// connIOErr distinguishes connection-level I/O failures (the world is
// being torn down around this worker) from protocol violations (a
// malformed or unexpected frame — a bug worth reporting loudly).
func connIOErr(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// worker is one rank's message endpoint for one world: pushing messages
// addressed to its rank up to the coordinator and, in peer-routing mode,
// relaying its rank's sends across the worker↔worker data plane.
type worker struct {
	rank, n int
	addrs   []string
	// secret is the world's peer-plane secret from the assign frame:
	// sent in every outgoing peerhello, required on every incoming one.
	secret string
	// peers/conns are this worker's outbound data plane, lazily dialed,
	// control-loop only.
	peers []*Writer
	conns []net.Conn
	// control carries opDeliver pushes (from the control loop's verbatim
	// path and the peer-reader goroutines) and the finish bye; Writer
	// serializes them.
	control *Writer
	crash   bool
	// crashPush is the envCrashPushRank hook: exit just before the first
	// delivery push.
	crashPush bool

	// mu guards the inbound data connections accepted by acceptPeers so
	// closeConns can tear them down at world end; done marks the world
	// over, making late accepts close immediately.
	mu      sync.Mutex
	inbound []net.Conn
	done    bool
}

// forward routes an already-headered message (src, tag, metered,
// payload) from this worker's rank toward dst: a delivery straight back
// up the control conn for self-sends, a peer connection otherwise
// (dialed with a bounded timeout on first use — a dead peer address
// fails the world promptly instead of hanging for the OS connect
// timeout). The frame lands in the destination's Writer; the control
// loop flushes on idle.
func (w *worker) forward(dst int, body []byte) error {
	if dst == w.rank {
		if err := w.control.Write(opDeliver, body); err != nil {
			return fmt.Errorf("dist: worker %d: self delivery: %w", w.rank, err)
		}
		return nil
	}
	pw := w.peers[dst]
	if pw == nil {
		c, err := net.DialTimeout("tcp", w.addrs[dst], peerDialTimeout.get())
		if err != nil {
			return fmt.Errorf("dist: worker %d dialing peer %d: %w", w.rank, dst, err)
		}
		pw = NewWriter(c)
		// The peerhello rides the same flush as the first data frame.
		if err := pw.Write(opPeerHello, peerHelloBody(w.rank, w.secret)); err != nil {
			c.Close()
			return fmt.Errorf("dist: worker %d greeting peer %d: %w", w.rank, dst, err)
		}
		w.peers[dst], w.conns[dst] = pw, c
	}
	if err := pw.Write(opData, body); err != nil {
		return fmt.Errorf("dist: worker %d forwarding to peer %d: %w", w.rank, dst, err)
	}
	return nil
}

// flushAll flushes every dirty writer this worker owns — the control
// loop's idle point.
func (w *worker) flushAll() error {
	for dst, pw := range w.peers {
		if pw == nil {
			continue
		}
		if err := pw.Flush(); err != nil {
			return fmt.Errorf("dist: worker %d flushing peer %d: %w", w.rank, dst, err)
		}
	}
	if err := w.control.Flush(); err != nil {
		return fmt.Errorf("dist: worker %d flushing control: %w", w.rank, err)
	}
	return nil
}

// acceptPeers drains incoming peer connections, one reader goroutine per
// peer, each pushing arrived messages up the control conn as opDeliver
// frames. The accept loop ends when the peer listener closes (world
// teardown); closeConns closes the accepted connections themselves,
// unblocking their readers, so neither goroutines nor fds outlive the
// world.
func (w *worker) acceptPeers(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		if !w.trackInbound(c) {
			c.Close()
			return
		}
		go w.servePeer(c)
	}
}

// trackInbound registers an accepted data connection for world-end
// teardown, reporting false once the world is already over.
func (w *worker) trackInbound(c net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return false
	}
	w.inbound = append(w.inbound, c)
	return true
}

// servePeer validates one inbound data connection (the peerhello must
// arrive within peerHelloTimeout — a connection that sends nothing may
// not pin this goroutine forever) and then pushes every opData message
// up the control connection, batch-expanding coalesced frames and
// flushing on idle.
func (w *worker) servePeer(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(peerHelloTimeout.get())) //nolint:errcheck // enforced by the read
	// from stays -1 until a valid peerhello: the dialer coalesces its
	// peerhello into one batch container with the first data frames, so
	// the handshake is the first *logical* frame, not the first physical
	// one, and validation happens inside the batch expansion.
	from := -1
	var buf, readBuf []byte
	for {
		op, body, err := readFrameInto(br, &readBuf)
		if err != nil {
			return
		}
		c.SetReadDeadline(time.Time{}) //nolint:errcheck // handshake deadline served its purpose
		err = forEachFrame(op, body, func(op byte, b []byte) error {
			if from < 0 {
				if op != opPeerHello {
					return fmt.Errorf("dist: peer connection opened with op %d, not peerhello", op)
				}
				f, secret, err := parsePeerHello(b)
				if err != nil || f < 0 || f >= w.n || secret != w.secret {
					// Wrong world (or not a worker at all): drop the
					// connection before any data frame reaches the
					// coordinator.
					return fmt.Errorf("dist: bad peerhello")
				}
				from = f
				return nil
			}
			if op != opData {
				return fmt.Errorf("dist: unexpected peer op %d", op)
			}
			src, tag, metered, payload, err := parseMsgHeader(b)
			if err != nil || src != from {
				return fmt.Errorf("dist: bad peer data frame")
			}
			if w.crashPush {
				// Test hook: die mid-push, after the message crossed the
				// peer plane but before its delivery reaches the
				// coordinator inbox.
				os.Exit(3)
			}
			buf = appendMsgHeader(buf[:0], src, tag, metered)
			buf = append(buf, payload...)
			return w.control.Write(opDeliver, buf)
		})
		if err != nil {
			return
		}
		if !pendingFrame(br) {
			if err := w.control.Flush(); err != nil {
				return
			}
		}
	}
}

// closeConns tears down the worker's data plane at world end: outbound
// peer connections and every accepted inbound connection (whose readers
// unblock and exit).
func (w *worker) closeConns() {
	for _, c := range w.conns {
		if c != nil {
			c.Close()
		}
	}
	w.mu.Lock()
	inbound := w.inbound
	w.inbound, w.done = nil, true
	w.mu.Unlock()
	for _, c := range inbound {
		c.Close()
	}
}
